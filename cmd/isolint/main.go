// Command isolint runs the repo's domain linters — detrange, seededrand,
// latchorder, chanmerge — over module packages. It is self-contained
// (stdlib-only loader and type-checker) so `make lint` works in hermetic
// build environments with no module downloads.
//
// Usage:
//
//	isolint [-analyzers a,b] [package|dir ...]
//
// With no arguments (or "./...") every package of the enclosing module is
// analyzed. Findings print as file:line:col: analyzer: message and any
// finding makes the exit status 1. Waivers (//isolint:ordered,
// //isolint:allow) must carry a justification and must still suppress
// something — malformed, silent or stale directives are findings too.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"isolevel/internal/analysis"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list analyzers and exit")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: isolint [-analyzers a,b] [package|dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analysis.All
	if *analyzers != "" {
		suite = nil
		for _, name := range strings.Split(*analyzers, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "isolint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			suite = append(suite, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fatal(err)
	}

	var pkgs []*analysis.Package
	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && args[0] == "./...") {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fatal(err)
		}
	} else {
		for _, arg := range args {
			path := arg
			if strings.HasPrefix(arg, ".") || strings.HasPrefix(arg, "/") {
				path, err = loader.PathFor(arg)
				if err != nil {
					fatal(err)
				}
			}
			pkg, err := loader.Load(path)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	found := 0
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		diags = append(diags, pkg.Annotations.Malformed...)
		for _, a := range suite {
			diags = append(diags, analysis.Run(a, pkg)...)
		}
		analysis.SortDiagnostics(diags)
		for _, d := range diags {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "isolint: %d finding(s)\n", found)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "isolint: %v\n", err)
	os.Exit(2)
}
