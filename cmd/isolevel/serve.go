package main

import (
	"flag"
	"fmt"
	"net"
	"strings"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/loadgen"
	"isolevel/internal/locking"
	"isolevel/internal/mvcc"
	"isolevel/internal/obs"
	"isolevel/internal/obs/obshttp"
	"isolevel/internal/obs/wallclock"
	"isolevel/internal/server"
)

// serveDB builds the engine behind `isolevel serve`: one of the three
// servable families, optionally striped, with the family-appropriate
// default session level.
func serveDB(family string, shards int) (engine.DB, engine.Level, error) {
	switch family {
	case "locking":
		opts := []locking.Option{}
		if shards > 0 {
			opts = append(opts, locking.WithShards(shards))
		}
		return locking.NewDB(opts...), engine.Serializable, nil
	case "keyrange":
		opts := []locking.Option{locking.WithPhantomProtection(locking.PhantomKeyrange)}
		if shards > 0 {
			opts = append(opts, locking.WithShards(shards))
		}
		return locking.NewDB(opts...), engine.Serializable, nil
	case "mv", "mvcc":
		opts := []mvcc.Option{}
		if shards > 0 {
			opts = append(opts, mvcc.WithShards(shards))
		}
		return mvcc.NewDB(opts...), engine.SnapshotIsolation, nil
	}
	return nil, 0, fmt.Errorf("unknown family %q (locking, keyrange, mv)", family)
}

// cmdServe runs the network front-end: the wire protocol over one
// engine, until SIGINT/SIGTERM.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7401", "listen address for the wire protocol")
	family := fs.String("family", "keyrange", "engine family: locking, keyrange, mv")
	shards := fs.Int("shards", 0, "engine stripe count (0 = default)")
	levelName := fs.String("level", "", "default session isolation level (default: SERIALIZABLE for locking families, SNAPSHOT ISOLATION for mv)")
	maxSessions := fs.Int("max-sessions", server.DefaultMaxSessions, "admission control: concurrent sessions before -BUSY")
	maxInflight := fs.Int("max-inflight", server.DefaultMaxInflight, "backpressure: statements executing at once")
	maxQueued := fs.Int("max-queue", server.DefaultMaxQueued, "backpressure: statements waiting for a slot before -BUSY")
	preload := fs.Int("preload", 0, "preload this many acct:NNNNNN rows (value 100) so load runs start warm")
	httpAddr := fs.String("http", "", "serve /metrics, /debug/pprof/ and /debug/vars on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	db, level, err := serveDB(*family, *shards)
	if err != nil {
		return err
	}
	if *levelName != "" {
		lvl, err := parseLevel(*levelName)
		if err != nil {
			return err
		}
		level = lvl
	}
	if *preload > 0 {
		loadAccts(db, *preload)
	}
	// The engine histograms (lock waits, commit path, txn latency) ride
	// the same sink the bench uses, on the wall clock.
	sink := obs.NewSink(wallclock.New())
	if so, ok := db.(interface{ SetObs(*obs.Sink) }); ok {
		so.SetObs(sink)
	}
	srv := server.New(server.Config{
		DB:           db,
		DefaultLevel: level,
		Family:       *family,
		MaxSessions:  *maxSessions,
		MaxInflight:  *maxInflight,
		MaxQueued:    *maxQueued,
	})
	if *httpAddr != "" {
		counters := func() map[string]int64 {
			m := srv.Counters()
			for k, v := range lockCounters(db) {
				m[k] = v
			}
			return m
		}
		ep, err := obshttp.Serve(*httpAddr, obshttp.Source{Sink: sink, Counters: counters, Hists: srv.Hists})
		if err != nil {
			return err
		}
		defer func() { _ = ep.Close() }()
		fmt.Printf("obs: serving /metrics, /debug/pprof/ and /debug/vars on http://%s\n", ep.Addr())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serve: family=%s level=%s sessions<=%d inflight<=%d queue<=%d on %s\n",
		*family, level, *maxSessions, *maxInflight, *maxQueued, ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	waitForInterrupt()
	if err := srv.Close(); err != nil {
		return err
	}
	if err := <-serveErr; err != nil {
		return err
	}
	c := srv.Counters()
	fmt.Printf("serve: done; sessions=%d shed=%d stmts=%d commits=%d retryable=%d errors=%d\n",
		c["server_sessions_accepted"], c["server_sessions_shed"], c["server_stmts"],
		c["server_commits"], c["server_retryable_errors"], c["server_errors"])
	return nil
}

// loadAccts bulk-loads the loadgen's key space (acct:000000 ...).
func loadAccts(db engine.DB, n int) {
	tuples := make([]data.Tuple, n)
	for i := range tuples {
		tuples[i] = data.Tuple{Key: data.Key(fmt.Sprintf("acct:%06d", i)), Row: data.Scalar(100)}
	}
	db.Load(tuples...)
}

// cmdLoad runs the load generator against a running server and prints
// the run report.
func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7401", "server address")
	clients := fs.Int("clients", 4, "client connections")
	txns := fs.Int("txns", 1000, "transactions across admitted clients")
	rate := fs.Float64("rate", 0, "open-loop arrivals per second (0 = closed loop)")
	keys := fs.Int("keys", 64, "key-space size")
	hotKeys := fs.Int("hot-keys", 0, "hot-set size (0 = keys/16)")
	hotBias := fs.Float64("hot-bias", 0.5, "probability an op hits the hot set")
	ops := fs.Int("ops", 4, "data statements per transaction")
	readFrac := fs.Float64("read-frac", 0.5, "fraction of ops that GET")
	scanFrac := fs.Float64("scan-frac", 0, "fraction of ops that SCAN")
	delFrac := fs.Float64("del-frac", 0, "fraction of ops that DEL")
	levelsFlag := fs.String("levels", "", "comma list of isolation levels sampled per transaction (empty = server default)")
	retries := fs.Int("retries", 10, "max retries per transaction on -RETRY")
	seed := fs.Int64("seed", 1, "rng seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := loadgen.Config{
		Addr: *addr, Clients: *clients, Txns: *txns, Rate: *rate,
		Keys: *keys, HotKeys: *hotKeys, HotBias: *hotBias,
		OpsPerTxn: *ops, ReadFrac: *readFrac, ScanFrac: *scanFrac, DelFrac: *delFrac,
		Retries: *retries, Seed: *seed,
	}
	if *levelsFlag != "" {
		for _, name := range strings.Split(*levelsFlag, ",") {
			lvl, err := parseLevel(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			cfg.Levels = append(cfg.Levels, lvl)
		}
	}
	res, err := loadgen.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	if res.ProtoErrs > 0 {
		return fmt.Errorf("%d protocol error(s)", res.ProtoErrs)
	}
	return nil
}
