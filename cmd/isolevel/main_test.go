package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

// volatileNums masks every digit run: wall-clock durations, throughput,
// latency quantiles and timing-dependent wait counts all vary run to run,
// while the report's structure — line order, label order within the
// map-keyed stats lines, which sections appear — must not.
var volatileNums = regexp.MustCompile(`[0-9]+`)

func maskBench(s string) string { return volatileNums.ReplaceAllString(s, "N") }

// TestBenchTextByteStable runs the same bench twice and diffs the masked
// text: the map-keyed stats lines render through the shared name-sorted
// renderer (report.CountersLine), so two runs of the same configuration
// must produce the same lines in the same order.
func TestBenchTextByteStable(t *testing.T) {
	args := []string{"-scenario", "hotspot-lockstep", "-level", "READ COMMITTED", "-workers", "4", "-rounds", "10", "-obs"}
	var a, b bytes.Buffer
	if err := runBench(&a, args); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := runBench(&b, args); err != nil {
		t.Fatalf("second run: %v", err)
	}
	am, bm := maskBench(a.String()), maskBench(b.String())
	if am != bm {
		t.Errorf("bench text not byte-stable after masking numbers:\n--- first ---\n%s\n--- second ---\n%s", am, bm)
	}
	for _, want := range []string{"lock stats:", "latency histograms (ns):"} {
		if !strings.Contains(am, want) {
			t.Errorf("bench output missing %q:\n%s", want, am)
		}
	}
	// The shared renderer sorts counter names; spot-check the lock stats
	// line really is name-ordered.
	for _, line := range strings.Split(a.String(), "\n") {
		rest, ok := strings.CutPrefix(strings.TrimSpace(line), "lock stats: ")
		if !ok {
			continue
		}
		var names []string
		for _, kv := range strings.Fields(rest) {
			names = append(names, strings.SplitN(kv, "=", 2)[0])
		}
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Errorf("lock stats names not sorted: %q before %q in %q", names[i-1], names[i], rest)
			}
		}
	}
}

// TestUpgradeStormFlightDump forces deadlocks (the S->X upgrade storm) with
// the flight recorder attached and asserts the dump names the victim, the
// waits-for cycle, and the participants' recent events.
func TestUpgradeStormFlightDump(t *testing.T) {
	args := []string{"-scenario", "upgrade-storm", "-level", "REPEATABLE READ", "-workers", "4", "-rounds", "10", "-flight", "128"}
	var out bytes.Buffer
	if err := runBench(&out, args); err != nil {
		t.Fatalf("runBench: %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"first deadlock flight dump:",
		"deadlock: victim T",
		"waits-for cycle: T",
		"last 8 events per participant:",
		" upgrade key=storm:",
		" wait item key=storm:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("flight dump missing %q in:\n%s", want, text)
		}
	}
	// The cycle line must close: "T_a -> ... -> T_a".
	cyc := regexp.MustCompile(`waits-for cycle: (T[0-9]+) -> (?:T[0-9]+ -> )*(T[0-9]+)`)
	m := cyc.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("no waits-for cycle line in:\n%s", text)
	}
	if m[1] != m[2] {
		t.Errorf("cycle does not close: starts %s, ends %s", m[1], m[2])
	}
}
