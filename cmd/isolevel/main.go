// Command isolevel regenerates the evaluation artifacts of "A Critique of
// ANSI SQL Isolation Levels" (SIGMOD 1995) from live engines and analyzes
// histories in the paper's notation.
//
// Usage:
//
//	isolevel tables            regenerate Tables 1, 2, 3 and 4
//	isolevel table -n 4        regenerate one table (1, 2, 3 or 4)
//	isolevel figure2           compute the measured isolation hierarchy
//	isolevel check -history "w1[x] r2[x] c1 c2"
//	                           classify a history: phenomena + serializability
//	isolevel run -id A5B -level "SNAPSHOT ISOLATION"
//	                           execute one anomaly scenario on a live engine
//	isolevel scenarios         list the scenario catalog
//	isolevel paper             replay the paper's H1-H5 analyses
//	isolevel bench -scenario transfer -level "SNAPSHOT ISOLATION" -shards 16
//	                           run one workload scenario and print its metrics
//	isolevel serve -family keyrange -addr 127.0.0.1:7401
//	                           serve the wire protocol over one engine
//	isolevel load -addr 127.0.0.1:7401 -clients 8 -levels SER,SI
//	                           drive a running server with generated traffic
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"regexp"
	"sort"
	"strings"
	"sync"
	"syscall"

	"isolevel/internal/anomalies"
	"isolevel/internal/ansi"
	"isolevel/internal/deps"
	"isolevel/internal/engine"
	"isolevel/internal/exerciser"
	"isolevel/internal/history"
	"isolevel/internal/lock"
	"isolevel/internal/locking"
	"isolevel/internal/matrix"
	"isolevel/internal/obs"
	"isolevel/internal/obs/obshttp"
	"isolevel/internal/obs/wallclock"
	"isolevel/internal/phenomena"
	"isolevel/internal/report"
	"isolevel/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "tables":
		err = cmdTables()
	case "table":
		err = cmdTable(os.Args[2:])
	case "figure2":
		err = cmdFigure2()
	case "check":
		err = cmdCheck(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "scenarios":
		err = cmdScenarios()
	case "paper":
		err = cmdPaper()
	case "remarks":
		err = cmdRemarks()
	case "bench":
		err = cmdBench(os.Args[2:])
	case "fuzz":
		err = cmdFuzz(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "load":
		err = cmdLoad(os.Args[2:])
	case "benchjson":
		err = cmdBenchJSON(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "isolevel: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "isolevel:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `isolevel — reproduce "A Critique of ANSI SQL Isolation Levels" (SIGMOD 1995)

commands:
  tables                      regenerate Tables 1-4
  table -n N                  regenerate one table (1, 2, 3 or 4)
  figure2                     measured isolation hierarchy (Figure 2)
  check -history "w1[x] ..."  classify a history in the paper's notation
        -levels "T1=RR T2=RC" additionally judge it with the per-transaction
                              oracle (codes: D0 RU RC CS RR SER SI ORC)
  check -f FILE|-             classify histories from a file or stdin,
                              one per line (fuzz findings, corpus files);
                              a "# levels: T1=RR T2=RC" comment annotates
                              the next history for the per-transaction oracle
  run -id ID [-variant V] -level LEVEL   run one anomaly scenario live
  scenarios                   list the anomaly scenario catalog
  paper                       replay the paper's H1-H5 analyses
  remarks                     verify Remarks 1-10 on the live engines
  bench -scenario S           run one workload scenario and print metrics
        scenarios: transfer, skewed, batch, batch-disjoint, hotspot,
                   hotspot-lockstep, scan, readers, longrunner,
                   fanin, upgrade-storm, pred-mix, phantom-storm,
                   range-fanin
        knobs: -level L -shards N -workers W -iters I -accounts A
               -batch B -hot-bias F -rounds R
        -obs: attach the observability sink and print latency histograms
        -flight N: keep the last N engine events; a deadlock victim dumps
               the flight ring (who waited on whom, who was chosen)
        -http ADDR: serve /metrics (Prometheus text), /debug/pprof/ and
               /debug/vars during and after the run
        -shards stripes every engine family: multiversion store stripes
        and locking-engine lock-table stripes alike
        -phantom predicate|keyrange selects the locking engine's phantom
        protocol: the gated cross-stripe predicate table, or striped
        key-range (next-key) locks that never take the gate
  fuzz -seed S -n N           differential isolation fuzzing: generated
        schedules replayed on every engine family x level, traces checked
        against the Table 4 oracle; findings are shrunk to minimal
        histories in the paper's notation
        -mixed: per-transaction level assignments — every transaction at
        its own sampled level (all six locking degrees in one lock
        manager; SI + RC interleaved on the unified mv engine), judged by
        the per-transaction oracle (a phenomenon is a violation only when
        charged to a transaction whose own level forbids it)
        knobs: -txs -items -ops -abort -mix r:W,w:W,p:W,rc:W,wc:W,i:W,d:W,s:W
               -engines locking,keyrange,snapshot,oraclerc
                        (mixed: locking,keyrange,mv)
               -levels L1,L2 -workers W -shards N -start I -oracle LEVEL -v
               -escalation N (keyrange lock escalation threshold; coarse
                blocking is a deliberate divergence, so pair it with
                -engines keyrange for an oracle-only campaign)
               -http ADDR (live pprof/expvar/metrics while the campaign runs)
        findings carry a flight-recorder timeline: the engine-level event
        sequence (begins, waits, grants, upgrades, commits) behind the
        violating history, in deterministic virtual-clock ticks
        the keyrange family is the locking scheduler with key-range
        (next-key) phantom prevention; any divergence from the locking
        family is reported
  serve -addr A               serve the wire protocol over one engine:
        connection-per-session, BEGIN [ISOLATION LEVEL L] / SET
        TRANSACTION ISOLATION LEVEL, GET/SET/DEL/SCAN, COMMIT/ABORT;
        scheduler aborts surface as typed -RETRY errors (see README
        "Serving traffic" for the grammar and retry contract)
        knobs: -family locking|keyrange|mv -shards N -level L
               -max-sessions N (admission control; excess sessions
                are greeted -BUSY and closed)
               -max-inflight N -max-queue N (backpressure; statements
                past the queue are shed with -BUSY)
               -preload N (warm acct:NNNNNN rows for load runs)
               -http ADDR (live /metrics with server counters and the
                statement-latency histogram)
  load -addr A                drive a running server: closed loop
        (-clients N -txns T) or open loop (-rate R arrivals/sec), hot-key
        skew (-keys -hot-keys -hot-bias), op mix (-ops -read-frac
        -scan-frac -del-frac), mixed levels (-levels SER,SI,RC sampled per
        transaction), retry loop (-retries), seeded (-seed); reports
        commits/retries/shed/busy and p50/p90/p99 latency
  benchjson [-match RE]       convert "go test -bench" output on stdin to
        a JSON array, keeping only names matching RE (the make bench-*
        targets write the BENCH_*.json perf artifacts)
  benchjson -compare OLD.json NEW.json-as-positional
        regression guard: compare two benchjson artifacts and fail when a
        shared benchmark's metric (-metric, default allocs/op) regressed
        by more than -max-regress percent (default 25); flags before the
        positional NEW.json; -metric p50|p90|p99|max compare the latency
        summaries the benches report as p50-ns etc.
`)
}

func cmdTables() error {
	if err := cmdTableN(1); err != nil {
		return err
	}
	fmt.Println()
	if err := cmdTableN(2); err != nil {
		return err
	}
	fmt.Println()
	if err := cmdTableN(3); err != nil {
		return err
	}
	fmt.Println()
	return cmdTableN(4)
}

func cmdTable(args []string) error {
	fs := flag.NewFlagSet("table", flag.ExitOnError)
	n := fs.Int("n", 4, "table number (1-4)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return cmdTableN(*n)
}

func cmdTableN(n int) error {
	switch n {
	case 1:
		fmt.Print(matrix.RunTable1())
	case 2:
		tbl, mismatches, err := matrix.RunTable2()
		if err != nil {
			return err
		}
		fmt.Print(tbl)
		if len(mismatches) > 0 {
			return fmt.Errorf("table 2 probe mismatches: %s", strings.Join(mismatches, "; "))
		}
	case 3:
		fmt.Print(matrix.RunTable3())
	case 4:
		levels := append(append([]engine.Level{}, matrix.PaperLevels...), matrix.ExtensionLevels...)
		res, err := matrix.RunTable4(levels...)
		if err != nil {
			return err
		}
		fmt.Print(res.Report())
	default:
		return fmt.Errorf("no table %d (the paper has tables 1-4)", n)
	}
	return nil
}

func cmdFigure2() error {
	levels := append(append([]engine.Level{}, matrix.PaperLevels...), matrix.ExtensionLevels...)
	res, err := matrix.RunTable4(levels...)
	if err != nil {
		return err
	}
	fmt.Print(matrix.BuildHierarchy(res))
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	src := fs.String("history", "", "history in the paper's notation, e.g. \"w1[x] r2[x] c1 c2\"")
	levels := fs.String("levels", "", "per-transaction level assignment for -history, e.g. \"T1=RR T2=RC\" (codes: D0 RU RC CS RR SER SI ORC)")
	file := fs.String("f", "", "file of histories, one per line (# comments and blank lines skipped; a \"# levels: T1=RR T2=RC\" line annotates the next history); \"-\" reads stdin")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *src != "" && *file != "":
		return fmt.Errorf("check takes -history or -f, not both")
	case *src != "":
		h, err := history.Parse(*src)
		if err != nil {
			return err
		}
		var assign *exerciser.Assign
		if *levels != "" {
			a, err := exerciser.ParseAssign(*levels)
			if err != nil {
				return err
			}
			assign = &a
		}
		checkOne(h, assign)
		return nil
	case *file != "":
		return checkFile(*file)
	default:
		return fmt.Errorf("check needs -history or -f")
	}
}

// checkFile replays every history in the file (or stdin for "-") through
// the classifier — the replay path for fuzz findings and corpus files. A
// "# levels: T1=RR T2=RC" comment annotates the next history line with a
// per-transaction level assignment; annotated histories are additionally
// judged by the per-transaction oracle, plain ones keep the uniform
// classification only.
func checkFile(path string) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	n, bad := 0, 0
	var pending *exerciser.Assign
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# levels:"); ok {
				a, err := exerciser.ParseAssign(strings.TrimSpace(rest))
				if err != nil {
					return fmt.Errorf("levels annotation before history %d: %w", n+1, err)
				}
				pending = &a
			}
			continue
		}
		assign := pending
		pending = nil
		h, err := history.Parse(line)
		if err != nil {
			bad++
			fmt.Printf("== history %d: PARSE ERROR: %v\n\n", n+1, err)
			n++
			continue
		}
		fmt.Printf("== history %d ==\n", n+1)
		checkOne(h, assign)
		fmt.Println()
		n++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d histories failed to parse", bad, n)
	}
	if n == 0 {
		return fmt.Errorf("no histories in %s", path)
	}
	return nil
}

// checkOne classifies a single history: phenomena (batch matchers, whose
// matches are reused from Profile rather than re-detected per id),
// serializability, and Table 3 admission. With a per-transaction level
// assignment it additionally runs the per-transaction oracle: every
// witnessed phenomenon is charged to its victim, and only the charges a
// victim's own level forbids are violations.
func checkOne(h history.History, assign *exerciser.Assign) {
	fmt.Println("history:", h)
	if assign != nil {
		fmt.Println("levels: ", assign.Annotation())
	}
	fmt.Println()
	prof := phenomena.Profile(h)
	var ids []string
	for id := range prof {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	if len(ids) == 0 {
		fmt.Println("phenomena: none")
	} else {
		fmt.Println("phenomena:")
		for _, id := range ids {
			for _, m := range prof[phenomena.ID(id)] {
				fmt.Printf("  %-4s %-18s %s\n", id, phenomena.Name(phenomena.ID(id)), m.Comment)
			}
		}
	}
	if assign != nil {
		fmt.Println()
		fmt.Println("per-transaction oracle:")
		charges := exerciser.NewOracle().Charges(phenomena.Attribution(h), assign.Level)
		if len(charges) == 0 {
			if len(ids) == 0 {
				fmt.Println("  no phenomena witnessed")
			} else {
				fmt.Println("  no violation: every witnessed phenomenon is charged to a transaction whose level allows it (or excused by a below-degree-1 writer)")
			}
		} else {
			for _, c := range charges {
				fmt.Printf("  VIOLATION: %s charged to T%d (%s), against T%d (%s)\n",
					c.ID, c.Victim, assign.Level(c.Victim), c.Other, assign.Level(c.Other))
			}
		}
	}
	fmt.Println()
	if deps.Serializable(h) {
		fmt.Println("conflict-serializable: yes; equivalent serial order:", fmtOrder(deps.EquivalentSerialOrder(h)))
	} else {
		g := deps.BuildGraph(h)
		fmt.Println("conflict-serializable: NO; dependency cycle:", fmtOrder(g.Cycle()))
	}
	fmt.Println()
	fmt.Println("admitted by (phenomenon-based levels, Table 3):")
	for _, lvl := range ansi.Table3 {
		verdict := "admitted"
		if v := lvl.FirstViolation(h); v != "" {
			verdict = "rejected (" + string(v) + ")"
		}
		fmt.Printf("  %-18s %s\n", lvl.Name, verdict)
	}
}

func fmtOrder(order []int) string {
	if order == nil {
		return "-"
	}
	parts := make([]string, len(order))
	for i, tx := range order {
		parts[i] = fmt.Sprintf("T%d", tx)
	}
	return strings.Join(parts, " -> ")
}

func parseLevel(name string) (engine.Level, error) {
	// engine.ParseLevel accepts the paper's full names, the short codes
	// (SER, RR, SI, ...) and underscore forms — the same grammar the wire
	// protocol's BEGIN/SET TRANSACTION use.
	if lvl, ok := engine.ParseLevel(name); ok {
		return lvl, nil
	}
	return 0, fmt.Errorf("unknown level %q (try one of: %s)", name, levelNames())
}

func levelNames() string {
	var names []string
	for _, lvl := range engine.Levels {
		names = append(names, lvl.String())
	}
	return strings.Join(names, ", ")
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	id := fs.String("id", "A5B", "anomaly id (P0, P1, P4C, P4, P2, P3, A5A, A5B)")
	variant := fs.String("variant", "", "scenario variant (\"\", cursor, constraint, two-cursors)")
	levelName := fs.String("level", "SNAPSHOT ISOLATION", "isolation level")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := parseLevel(*levelName)
	if err != nil {
		return err
	}
	var sc *anomalies.Scenario
	for _, cand := range anomalies.Catalog() {
		if cand.ID == *id && cand.Variant == *variant {
			c := cand
			sc = &c
			break
		}
	}
	if sc == nil {
		return fmt.Errorf("no scenario %s/%s (see `isolevel scenarios`)", *id, *variant)
	}
	fmt.Printf("scenario %s (%s) at %s\n", sc.ID, sc.Description, level)
	out, res, err := anomalies.Run(*sc, level)
	if err != nil {
		return err
	}
	for _, st := range res.Steps {
		status := "ok"
		switch {
		case st.Skipped:
			status = "skipped"
		case st.Err != nil:
			status = st.Err.Error()
		case st.Blocked:
			status = "blocked, then completed"
		}
		val := ""
		if st.Value != nil {
			val = fmt.Sprintf(" -> %v", st.Value)
		}
		fmt.Printf("  %-24s %s%s\n", st.Name, status, val)
	}
	fmt.Println("verdict:", out)
	if len(res.History) > 0 {
		fmt.Println("recorded history:", res.History)
	}
	return nil
}

func cmdScenarios() error {
	for _, sc := range anomalies.Catalog() {
		v := sc.Variant
		if v == "" {
			v = "plain"
		}
		fmt.Printf("%-4s %-12s %s\n", sc.ID, v, sc.Description)
	}
	return nil
}

func cmdRemarks() error {
	results, err := matrix.VerifyRemarks()
	if err != nil {
		return err
	}
	failed := 0
	for _, r := range results {
		fmt.Println(r)
		if !r.OK {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d remark(s) failed to reproduce", failed)
	}
	fmt.Println("\nAll 10 remarks reproduced on the live engines.")
	return nil
}

func cmdBench(args []string) error { return runBench(os.Stdout, args) }

// runBench is cmdBench behind an explicit writer, so tests can capture a
// run's full text and assert the stats sections render byte-stably.
func runBench(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	scenario := fs.String("scenario", "transfer", "workload scenario (transfer, skewed, batch, batch-disjoint, hotspot, hotspot-lockstep, scan, readers, longrunner, fanin, upgrade-storm, pred-mix, phantom-storm, range-fanin)")
	levelName := fs.String("level", "SNAPSHOT ISOLATION", "isolation level")
	phantom := fs.String("phantom", "predicate", "locking-engine phantom protocol: predicate (gated cross-stripe table) or keyrange (striped next-key locks)")
	shards := fs.Int("shards", 0, "stripe count for every engine: multiversion store stripes and locking lock-table stripes (0 = default)")
	workers := fs.Int("workers", 4, "concurrent workers / sessions")
	iters := fs.Int("iters", 200, "transactions per worker (free-running scenarios)")
	accounts := fs.Int("accounts", 64, "number of account rows")
	batch := fs.Int("batch", 4, "keys written per transaction (batch scenarios)")
	hotBias := fs.Float64("hot-bias", 0.8, "probability a skewed-transfer source is drawn from the hot set")
	rounds := fs.Int("rounds", 50, "lockstep rounds (hotspot-lockstep, scan, fanin, upgrade-storm, pred-mix)")
	obsOn := fs.Bool("obs", false, "attach the observability sink (wall-clock) and print latency histograms after the run")
	flight := fs.Int("flight", 0, "flight-recorder depth: keep the last N engine events and print a dump when a deadlock victim is selected (implies -obs)")
	httpAddr := fs.String("http", "", "serve /metrics, /debug/pprof/ and /debug/vars on this address during and after the run (implies -obs; blocks after printing — Ctrl-C to exit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := parseLevel(*levelName)
	if err != nil {
		return err
	}
	var db engine.DB
	switch *phantom {
	case "", "predicate":
		db = anomalies.NewDBForShards(level, *shards)
	case "keyrange":
		// The phantom protocol is a locking-engine knob; multiversion
		// levels have no lock-based phantom prevention to swap.
		if level == engine.SnapshotIsolation || level == engine.ReadConsistency {
			return fmt.Errorf("-phantom keyrange applies to the locking levels, not %s", level)
		}
		opts := []locking.Option{locking.WithPhantomProtection(locking.PhantomKeyrange)}
		if *shards > 0 {
			opts = append(opts, locking.WithShards(*shards))
		}
		db = locking.NewDB(opts...)
	default:
		return fmt.Errorf("unknown phantom protocol %q (predicate, keyrange)", *phantom)
	}
	// Observability: a wall-clock sink, attached only on request so the
	// default bench path keeps its nil-sink zero-cost hooks.
	var sink *obs.Sink
	var deadlockDump string
	var dumpOnce sync.Once
	if *obsOn || *flight > 0 || *httpAddr != "" {
		sink = obs.NewSink(wallclock.New())
		if *flight > 0 {
			sink = sink.WithFlight(*flight)
			// Keep the first victim's dump: later deadlocks in the same
			// storm overwrite the ring but the first cycle is the story.
			sink.OnDeadlock(func(dump string) {
				dumpOnce.Do(func() { deadlockDump = dump })
			})
		}
		if so, ok := db.(interface{ SetObs(*obs.Sink) }); ok {
			so.SetObs(sink)
		} else {
			return fmt.Errorf("engine for %s does not support observability", level)
		}
	}
	var ep *obshttp.Endpoint
	if *httpAddr != "" {
		var err error
		ep, err = obshttp.Serve(*httpAddr, obshttp.Source{Sink: sink, Counters: func() map[string]int64 { return lockCounters(db) }})
		if err != nil {
			return err
		}
		defer func() { _ = ep.Close() }()
		fmt.Fprintf(w, "obs: serving /metrics, /debug/pprof/ and /debug/vars on http://%s\n", ep.Addr())
	}
	header := func() {
		fmt.Fprintf(w, "scenario %s at %s (workers=%d", *scenario, level, *workers)
		if s, ok := db.(interface{ ShardCount() int }); ok {
			fmt.Fprintf(w, ", shards=%d", s.ShardCount())
		}
		if l, ok := db.(*locking.DB); ok {
			fmt.Fprintf(w, ", phantom=%s", l.PhantomProtection())
		}
		fmt.Fprintln(w, ")")
	}
	switch *scenario {
	case "transfer":
		workload.LoadAccounts(db, *accounts, 100)
		m := workload.Transfer(db, level, *accounts, *workers, *iters)
		header()
		fmt.Fprintf(w, "  %s  throughput=%.0f tx/s\n", m, m.Throughput())
		fmt.Fprintf(w, "  total balance drift: %+d\n", workload.TotalBalance(db, *accounts)-int64(*accounts)*100)
	case "skewed":
		workload.LoadAccounts(db, *accounts, 100)
		m := workload.SkewedTransfer(db, level, *accounts, max(1, *accounts/8), *workers, *iters, *hotBias)
		header()
		fmt.Fprintf(w, "  %s  throughput=%.0f tx/s\n", m, m.Throughput())
		fmt.Fprintf(w, "  total balance drift: %+d\n", workload.TotalBalance(db, *accounts)-int64(*accounts)*100)
	case "batch", "batch-disjoint":
		disjoint := *scenario == "batch-disjoint"
		n := *batch
		if disjoint {
			n = *batch * *workers
		}
		if n > *accounts {
			return fmt.Errorf("need at least %d accounts for %s (-accounts)", n, *scenario)
		}
		workload.LoadAccounts(db, *accounts, 0)
		m := workload.BatchIncrement(db, level, *workers, *iters, *batch, disjoint)
		header()
		fmt.Fprintf(w, "  %s  throughput=%.0f tx/s\n", m, m.Throughput())
	case "hotspot":
		m := workload.HotspotCounter(db, level, *workers, *iters)
		header()
		fmt.Fprintf(w, "  %s  throughput=%.0f tx/s\n", m, m.Throughput())
		fmt.Fprintf(w, "  counter=%d (must equal commits)\n", db.ReadCommittedRow("hot").Val())
	case "hotspot-lockstep":
		m := workload.HotspotCounterLockstep(db, level, *workers, *rounds)
		header()
		fmt.Fprintf(w, "  %s\n", m)
		if level == engine.SnapshotIsolation {
			fmt.Fprintf(w, "  counter=%d over %d rounds (deterministic: one winner per round)\n",
				db.ReadCommittedRow("hot").Val(), *rounds)
		} else {
			fmt.Fprintf(w, "  counter=%d over %d rounds (%d committed increments lost)\n",
				db.ReadCommittedRow("hot").Val(), *rounds, m.Commits-db.ReadCommittedRow("hot").Val())
		}
	case "scan":
		if level != engine.SnapshotIsolation && level != engine.ReadConsistency {
			// The rendezvous would deadlock against long read locks: writers
			// block on scanner-held locks while scanners wait at the barrier
			// (see workload.SnapshotScanVsHotWriters).
			return fmt.Errorf("scenario scan needs a multiversion level (SNAPSHOT ISOLATION or READ CONSISTENCY), got %s", level)
		}
		workload.LoadAccounts(db, *accounts, 100)
		res := workload.SnapshotScanVsHotWriters(db, level, *accounts, max(1, *workers/2), max(1, *workers/2), *rounds)
		header()
		fmt.Fprintf(w, "  scanners: %s\n", res.Scanners)
		fmt.Fprintf(w, "  writers:  %s\n", res.Writers)
		fmt.Fprintf(w, "  unstable scans: %d/%d\n", res.UnstableScans, res.TotalScans)
	case "readers":
		workload.LoadAccounts(db, *accounts, 100)
		rm, wm := workload.ReadersVsWriters(db, level, *accounts, *workers, *workers, *iters)
		header()
		fmt.Fprintf(w, "  readers: %s\n", rm)
		fmt.Fprintf(w, "  writers: %s\n", wm)
	case "longrunner":
		workload.LoadAccounts(db, *accounts, 0)
		committed, longErr, short := workload.LongRunningUpdater(db, level, *accounts, *workers, *iters)
		header()
		fmt.Fprintf(w, "  long txn committed: %v (err: %v)\n", committed, longErr)
		fmt.Fprintf(w, "  short writers: %s\n", short)
	case "fanin":
		rds := max(1, *rounds) // the workloads clamp rounds the same way
		res, err := workload.ReadLockFanIn(db, level, *workers, rds)
		if err != nil {
			return err
		}
		header()
		fmt.Fprintf(w, "  readers: %s\n", res.Readers)
		fmt.Fprintf(w, "  writer:  %s\n", res.Writer)
		fmt.Fprintf(w, "  writer blocked in %d/%d rounds\n", res.WriterBlocked, rds)
	case "upgrade-storm":
		rds := max(1, *rounds)
		m, err := workload.UpgradeDeadlockStorm(db, level, *workers, rds)
		if err != nil {
			return err
		}
		header()
		fmt.Fprintf(w, "  %s\n", m)
		fmt.Fprintf(w, "  one survivor per round: %d commits over %d rounds\n", m.Commits, rds)
	case "pred-mix":
		res, err := workload.PredicateVsItemMix(db, level, *workers, max(1, *rounds))
		if err != nil {
			return err
		}
		header()
		fmt.Fprintf(w, "  scanner: %s\n", res.Scanner)
		fmt.Fprintf(w, "  writers: %s\n", res.Writers)
		fmt.Fprintf(w, "  phantom inserts blocked: %d/%d\n", res.BlockedInserts, res.MatchingInserts)
	case "phantom-storm":
		res, err := workload.PhantomInsertStorm(db, level, *workers, max(1, *rounds))
		if err != nil {
			return err
		}
		header()
		fmt.Fprintf(w, "  scanner: %s\n", res.Scanner)
		fmt.Fprintf(w, "  writers: %s\n", res.Writers)
		fmt.Fprintf(w, "  phantoms seen: %d; inserts blocked: %d\n", res.PhantomsSeen, res.BlockedInserts)
	case "range-fanin":
		res, err := workload.RangeScanVsInsertFanIn(db, level, *workers, max(1, *rounds))
		if err != nil {
			return err
		}
		header()
		fmt.Fprintf(w, "  scanner: %s\n", res.Scanner)
		fmt.Fprintf(w, "  writers: %s\n", res.Writers)
		fmt.Fprintf(w, "  in-range inserts blocked: %d/%d; out-of-range blocked: %d/%d\n",
			res.InsideBlocked, res.InsideTotal, res.OutsideBlocked, res.OutsideTotal)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	printLockStats(w, db)
	if sink != nil {
		printObs(w, sink, deadlockDump)
	}
	if ep != nil {
		fmt.Fprintln(w, "obs: run finished; endpoint still serving (Ctrl-C to exit)")
		waitForInterrupt()
		return ep.Close()
	}
	return nil
}

// printObs prints the sink's latency histograms (nanoseconds, wall clock)
// and, when a deadlock victim was selected under -flight, the captured
// flight-recorder dump.
func printObs(w io.Writer, sink *obs.Sink, deadlockDump string) {
	fmt.Fprintln(w, "  latency histograms (ns):")
	for _, nh := range sink.Histograms() {
		s := nh.H.Snapshot()
		if s.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "    %-14s %s\n", nh.Name, s.Summary())
	}
	if deadlockDump != "" {
		fmt.Fprintln(w, "  first deadlock flight dump:")
		for _, line := range strings.Split(strings.TrimRight(deadlockDump, "\n"), "\n") {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
}

// lockCounters flattens a lock-based engine's Stats into the counter map
// behind /metrics (empty for engines without a lock manager). Keys are the
// metric names; report.SortedCounters orders them everywhere they print.
func lockCounters(db engine.DB) map[string]int64 {
	ls, ok := db.(interface{ LockStats() lock.Stats })
	if !ok {
		return nil
	}
	st := ls.LockStats()
	return map[string]int64{
		"lock_grants":     st.Grants,
		"lock_waits":      st.Waits,
		"deadlocks":       st.Deadlocks,
		"upgrades":        st.Upgrades,
		"pred_grants":     st.PredGrants,
		"pred_waits":      st.PredWaits,
		"range_grants":    st.RangeGrants,
		"range_waits":     st.RangeWaits,
		"gap_grants":      st.GapGrants,
		"gap_waits":       st.GapWaits,
		"escalations":     st.Escalations,
		"frag_gcs":        st.FragGCs,
		"frags_reclaimed": st.FragsReclaimed,
		"gate_acquires":   st.GateAcquires,
	}
}

// printLockStats prints the lock manager counters of lock-based engines —
// the locking scheduler and Read Consistency's write-lock side — including
// the per-stripe contention map. Both summary lines render through the
// shared name-sorted counter renderer (report.CountersLine), so the text is
// byte-stable for a given set of counter values.
func printLockStats(w io.Writer, db engine.DB) {
	ls, ok := db.(interface{ LockStats() lock.Stats })
	if !ok {
		return
	}
	st := ls.LockStats()
	if st.Grants == 0 && st.Waits == 0 {
		return
	}
	fmt.Fprintf(w, "  lock stats: %s\n", report.CountersLine(map[string]int64{
		"grants": st.Grants, "waits": st.Waits, "deadlocks": st.Deadlocks,
		"upgrades": st.Upgrades, "pred-grants": st.PredGrants, "pred-waits": st.PredWaits,
	}))
	fmt.Fprintf(w, "  range stats: %s\n", report.CountersLine(map[string]int64{
		"range-grants": st.RangeGrants, "range-waits": st.RangeWaits,
		"gap-grants": st.GapGrants, "gap-waits": st.GapWaits, "gate-acquires": st.GateAcquires,
	}))
	var parts []string
	for i, ss := range st.PerStripe {
		if ss.Grants == 0 && ss.Waits == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%d:%d/%d", i, ss.Grants, ss.Waits))
	}
	fmt.Fprintf(w, "  stripe contention (stripe:grants/waits): %s\n", strings.Join(parts, " "))
	parts = parts[:0]
	for i, ss := range st.PerStripe {
		if ss.GapGrants == 0 && ss.GapWaits == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%d:%d/%d", i, ss.GapGrants, ss.GapWaits))
	}
	if len(parts) > 0 {
		fmt.Fprintf(w, "  gap contention (stripe:grants/waits): %s\n", strings.Join(parts, " "))
	}
}

func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "campaign seed (schedule i's seed derives from seed and start+i)")
	n := fs.Int("n", 100, "number of generated schedules")
	start := fs.Int("start", 0, "first schedule index (rerun a finding with -start I -n 1)")
	txs := fs.Int("txs", 0, "transactions per schedule (0 = default)")
	items := fs.Int("items", 0, "distinct data items (0 = default)")
	ops := fs.Int("ops", 0, "transaction size: each draws 1..2*ops non-terminal ops (0 = default)")
	abortFrac := fs.Float64("abort", -1, "scripted abort probability (negative = default)")
	mix := fs.String("mix", "", "op-kind weights, e.g. r:4,w:4,p:1,rc:1,wc:1,i:2,d:2,s:2 (i=insert, d=delete, s=range scan)")
	engines := fs.String("engines", "", "comma list of engine families (default all: locking,snapshot,oraclerc)")
	levels := fs.String("levels", "", "comma list of isolation levels (default: every level each family implements)")
	workers := fs.Int("workers", 1, "campaign worker goroutines (report is identical at any count)")
	shards := fs.Int("shards", 0, "engine stripe count (0 = default)")
	mixed := fs.Bool("mixed", false, "per-transaction level assignments: sample a level per transaction from each family's set and judge with the per-transaction oracle")
	escalation := fs.Int("escalation", 0, "keyrange lock-escalation fragment threshold (0 = off; > 0 coarsens blocking, so select -engines keyrange alone and expect oracle-only checking)")
	oracleLevel := fs.String("oracle", "", "check every trace against this level's forbidden set instead of its own (testing hook)")
	noShrink := fs.Bool("no-shrink", false, "skip minimizing findings")
	maxShrink := fs.Int("max-shrink", 5, "maximum findings to minimize (each minimization reruns the schedule many times)")
	verbose := fs.Bool("v", false, "print every finding in full")
	httpAddr := fs.String("http", "", "serve /debug/pprof/, /debug/vars and /metrics on this address during the campaign (blocks after the report — Ctrl-C to exit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ep *obshttp.Endpoint
	if *httpAddr != "" {
		// The campaign's engines carry per-run virtual-clock sinks, so the
		// endpoint serves the process views (pprof, expvar) plus an empty
		// /metrics; its value here is live profiling of the fuzzer itself.
		var err error
		ep, err = obshttp.Serve(*httpAddr, obshttp.Source{})
		if err != nil {
			return err
		}
		defer func() { _ = ep.Close() }()
		fmt.Printf("obs: serving /metrics, /debug/pprof/ and /debug/vars on http://%s\n", ep.Addr())
	}
	params := exerciser.DefaultParams()
	if *txs > 0 {
		params.Txs = *txs
	}
	if *items > 0 {
		params.Items = *items
	}
	if *ops > 0 {
		params.OpsPerTx = *ops
	}
	if *abortFrac >= 0 {
		params.AbortFrac = *abortFrac
	}
	if *mix != "" {
		m, err := parseMix(*mix)
		if err != nil {
			return err
		}
		params.Mix = m
	}
	opts := exerciser.Options{
		Seed: *seed, N: *n, Start: *start,
		Params: params, Shards: *shards, Workers: *workers,
		Mixed: *mixed, Escalation: *escalation,
		Shrink: !*noShrink, MaxShrink: *maxShrink,
	}
	if *engines != "" {
		opts.Families = strings.Split(*engines, ",")
	}
	if *levels != "" {
		for _, name := range strings.Split(*levels, ",") {
			lvl, err := parseLevel(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.Levels = append(opts.Levels, lvl)
		}
	}
	if *oracleLevel != "" {
		lvl, err := parseLevel(*oracleLevel)
		if err != nil {
			return err
		}
		opts.OracleLevel = &lvl
	}
	rep, err := exerciser.Run(opts)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	if *verbose || rep.Violations() > 0 {
		if d := rep.Detail(); d != "" {
			fmt.Print(d)
		}
	}
	if rep.Violations() > 0 {
		return fmt.Errorf("%d oracle violation(s)", rep.Violations())
	}
	fmt.Println("ok: no Table 4 oracle violations")
	if ep != nil {
		fmt.Println("obs: campaign finished; endpoint still serving (Ctrl-C to exit)")
		waitForInterrupt()
		return ep.Close()
	}
	return nil
}

// waitForInterrupt blocks until SIGINT or SIGTERM: the graceful shutdown
// point for commands that keep their observability endpoint (or server)
// alive after the work finishes, replacing the old unreachable select{}.
func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	signal.Stop(ch)
}

// cmdBenchJSON converts `go test -bench` output on stdin into a JSON
// array, one object per benchmark line: {"name": ..., "iterations": N,
// "metrics": {"ns/op": ..., ...}}. -match keeps only benchmark names
// matching a regexp, so one `make bench` run can be sliced into several
// per-subsystem artifacts. The Makefile's bench-* targets pipe bench
// output through it to emit the BENCH_*.json perf-trajectory artifacts.
func cmdBenchJSON(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	match := fs.String("match", "", "keep only benchmarks whose name matches this regexp")
	compare := fs.String("compare", "", "baseline JSON file; compare against the new JSON file given as the positional argument instead of converting stdin")
	metric := fs.String("metric", "allocs/op", "metric to compare in -compare mode (short aliases: p50, p90, p99, max for the *-ns latency summaries)")
	maxRegress := fs.Float64("max-regress", 25, "fail -compare when the metric regresses by more than this percentage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare != "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("benchjson -compare OLD.json takes exactly one positional argument (the new JSON file)")
		}
		// Short aliases for the latency summary metrics the benches report
		// via b.ReportMetric (`-metric p99` reads better than `p99-ns`).
		if full, ok := map[string]string{"p50": "p50-ns", "p90": "p90-ns", "p99": "p99-ns", "max": "max-ns"}[*metric]; ok {
			*metric = full
		}
		return benchCompare(*compare, fs.Arg(0), *metric, *match, *maxRegress)
	}
	var matchRE *regexp.Regexp
	if *match != "" {
		var err error
		if matchRE, err = regexp.Compile(*match); err != nil {
			return fmt.Errorf("benchjson: bad -match regexp: %v", err)
		}
	}
	type benchLine struct {
		Name       string             `json:"name"`
		Iterations int64              `json:"iterations"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	var out []benchLine
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if matchRE != nil && !matchRE.MatchString(fields[0]) {
			continue
		}
		var iters int64
		if _, err := fmt.Sscanf(fields[1], "%d", &iters); err != nil {
			continue
		}
		bl := benchLine{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			var v float64
			if _, err := fmt.Sscanf(fields[i], "%g", &v); err != nil {
				continue
			}
			bl.Metrics[fields[i+1]] = v
		}
		out = append(out, bl)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(out) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// benchCompare is the CI regression guard behind `benchjson -compare`: it
// loads two benchjson artifacts (the committed baseline and a fresh run)
// and fails when any shared benchmark's metric regressed by more than
// maxRegress percent. Benchmarks present in only one file are skipped —
// adding or retiring a bench must not wedge CI — and entries whose
// baseline metric is zero are skipped too (no meaningful ratio). All
// tracked metrics (ns/op, allocs/op, B/op, ...) are smaller-is-better, so
// "regression" always means new > old.
func benchCompare(oldPath, newPath, metric, match string, maxRegress float64) error {
	var matchRE *regexp.Regexp
	if match != "" {
		var err error
		if matchRE, err = regexp.Compile(match); err != nil {
			return fmt.Errorf("benchjson: bad -match regexp: %v", err)
		}
	}
	type benchLine struct {
		Name       string             `json:"name"`
		Iterations int64              `json:"iterations"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	load := func(path string) (map[string]map[string]float64, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var lines []benchLine
		if err := json.Unmarshal(raw, &lines); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		m := map[string]map[string]float64{}
		for _, bl := range lines {
			m[bl.Name] = bl.Metrics
		}
		return m, nil
	}
	oldM, err := load(oldPath)
	if err != nil {
		return err
	}
	newM, err := load(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(oldM))
	for name := range oldM {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	compared := 0
	for _, name := range names {
		if matchRE != nil && !matchRE.MatchString(name) {
			continue
		}
		ov, ok := oldM[name][metric]
		if !ok || ov == 0 {
			continue
		}
		nv, ok := newM[name][metric]
		if !ok {
			continue
		}
		compared++
		pct := (nv - ov) / ov * 100
		status := "ok"
		if pct > maxRegress {
			status = "REGRESSION"
			failures = append(failures, name)
		}
		fmt.Printf("%-60s %s: %g -> %g (%+.1f%%) %s\n", name, metric, ov, nv, pct, status)
	}
	if compared == 0 {
		return fmt.Errorf("benchjson: no comparable benchmarks between %s and %s", oldPath, newPath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed on %s by more than %.0f%%: %s",
			len(failures), metric, maxRegress, strings.Join(failures, ", "))
	}
	fmt.Printf("ok: %d benchmark(s) within %.0f%% on %s\n", compared, maxRegress, metric)
	return nil
}

// parseMix reads "r:4,w:4,p:1,rc:1,wc:1,i:2,d:2,s:2" (any subset;
// omitted kinds get 0). i/d/s are the DML kinds: inserts of fresh keys,
// deletes of live keys, and key-range scans.
func parseMix(src string) (exerciser.Mix, error) {
	var m exerciser.Mix
	for _, part := range strings.Split(src, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bad mix entry %q (want kind:weight)", part)
		}
		var w int
		if _, err := fmt.Sscanf(kv[1], "%d", &w); err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", kv[1])
		}
		switch kv[0] {
		case "r":
			m.Read = w
		case "w":
			m.Write = w
		case "p":
			m.PredRead = w
		case "rc":
			m.CurRead = w
		case "wc":
			m.CurWrite = w
		case "i":
			m.Insert = w
		case "d":
			m.Delete = w
		case "s":
			m.RangeRead = w
		default:
			return m, fmt.Errorf("unknown mix kind %q (r, w, p, rc, wc, i, d, s)", kv[0])
		}
	}
	return m, nil
}

func cmdPaper() error {
	fmt.Println("Replaying the paper's Section 3 and 4 history analyses:")
	cases := []struct {
		name string
		h    history.History
		note string
	}{
		{"H1", history.H1(), "inconsistent analysis — violates broad P1 only"},
		{"H2", history.H2(), "inconsistent analysis — violates broad P2 only"},
		{"H3", history.H3(), "phantom — violates broad P3 only"},
		{"H4", history.H4(), "lost update at READ COMMITTED"},
		{"H5", history.H5(), "write skew — passes ANOMALY SERIALIZABLE, not serializable"},
	}
	for _, c := range cases {
		fmt.Printf("\n%s: %s\n  (%s)\n", c.name, c.h, c.note)
		var ids []string
		for id := range phenomena.Profile(c.h) {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		fmt.Println("  phenomena:", strings.Join(ids, ", "))
		fmt.Println("  serializable:", deps.Serializable(c.h))
		fmt.Println("  ANOMALY SERIALIZABLE admits:", ansi.AnomalySerializable.Admits(c.h))
	}
	fmt.Println("\nH1.SI mapping (§4.2):")
	txns := deps.FromMVHistory(history.H1SI())
	sv := deps.MapToSV(txns)
	fmt.Println("  H1.SI   :", history.H1SI())
	fmt.Println("  maps to :", sv)
	fmt.Println("  serializable:", deps.Serializable(sv))
	return nil
}
