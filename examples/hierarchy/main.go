// Hierarchy regenerates the paper's Figure 2 from live engine runs: it
// measures Table 4 over all eight isolation levels (the paper's six rows
// plus Degree 0 and Oracle Read Consistency), computes the strength partial
// order, and prints the Hasse edges annotated with the phenomena that
// differentiate each pair — then verifies every strength claim from
// Remarks 1, 7, 8, 9 and §4.3.
package main

import (
	"fmt"
	"log"

	isolevel "isolevel"
)

func main() {
	fmt.Println("measuring Table 4 over all eight levels (live engines)...")
	res, err := isolevel.Table4AllLevels()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res.Report())
	fmt.Println()
	h := isolevel.Figure2(res)
	fmt.Print(h)
}
