// Phantomrange demonstrates key-range (next-key) locking — the practical
// predicate lock — against the paper's P3 phantom.
//
// A scanner SELECTs `active == 1` twice while a writer inserts a fresh
// matching row between the two scans:
//
//   - At READ COMMITTED the Table 2 protocol takes only short
//     predicate-read locks, so the range protection evaporates as soon as
//     the first scan returns: the insert proceeds and the second scan
//     sees the phantom.
//   - At SERIALIZABLE the scan's key-range lock is long: next-key
//     fragments cover every existing employee key and the gaps between
//     them, so the insert's covering-gap acquisition blocks until the
//     scanner commits. No phantom — and the lock manager's cross-stripe
//     gate is never taken (GateAcquires stays 0), which is the entire
//     point of trading the predicate table for key-range locks.
package main

import (
	"fmt"
	"log"
	"time"

	isolevel "isolevel"
)

func main() {
	for _, level := range []isolevel.Level{isolevel.ReadCommitted, isolevel.Serializable} {
		fmt.Printf("== scanning employees at %s under key-range locking ==\n", level)
		run(level)
		fmt.Println()
	}
}

func run(level isolevel.Level) {
	db := isolevel.NewKeyrangeDBShards(8)
	db.Load(
		isolevel.Tuple{Key: "emp:1", Row: isolevel.Row{"active": 1}},
		isolevel.Tuple{Key: "emp:2", Row: isolevel.Row{"active": 0}},
		isolevel.Tuple{Key: "emp:4", Row: isolevel.Row{"active": 1}},
	)
	pred := isolevel.MustPredicate("active == 1")

	scanner, err := db.Begin(level)
	if err != nil {
		log.Fatal(err)
	}
	first, err := scanner.Select(pred)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanner: first SELECT sees %d active employees\n", len(first))

	inserted := make(chan error, 1)
	go func() {
		writer, err := db.Begin(level)
		if err != nil {
			inserted <- err
			return
		}
		// emp:3 falls into the gap between emp:2 and emp:4 — a phantom
		// for the scanner's predicate.
		if err := writer.Put("emp:3", isolevel.Row{"active": 1}); err != nil {
			inserted <- err
			return
		}
		inserted <- writer.Commit()
	}()

	select {
	case err := <-inserted:
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("writer:  insert of emp:3 committed immediately (no long range lock)")
		second, err := scanner.Select(pred)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scanner: second SELECT sees %d — a P3 phantom appeared mid-transaction\n", len(second))
		if err := scanner.Commit(); err != nil {
			log.Fatal(err)
		}
	case <-time.After(100 * time.Millisecond):
		fmt.Println("writer:  insert of emp:3 BLOCKED on the covering gap lock")
		second, err := scanner.Select(pred)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scanner: second SELECT still sees %d — no phantom\n", len(second))
		if err := scanner.Commit(); err != nil {
			log.Fatal(err)
		}
		if err := <-inserted; err != nil {
			log.Fatal(err)
		}
		fmt.Println("writer:  insert committed after the scanner released its range")
	}

	st := db.LockStats()
	fmt.Printf("lock manager: range-grants=%d gap-grants=%d gap-waits=%d gate-acquires=%d\n",
		st.RangeGrants, st.GapGrants, st.GapWaits, st.GateAcquires)
}
