// Timetravel demonstrates §4.2's observation that Snapshot Isolation "gives
// the freedom to run transactions with very old timestamps, thereby
// allowing them to do time travel ... while never blocking or being blocked
// by writes" — and that such a transaction aborts if it tries to *update*
// anything modified since its snapshot.
package main

import (
	"errors"
	"fmt"
	"log"

	isolevel "isolevel"
)

func main() {
	db := isolevel.NewSnapshotDB()
	db.Load(isolevel.Scalar("price", 100))

	// Remember "yesterday's" timestamp, then let history move on.
	yesterday := db.CurrentTS()
	for i, p := range []int64{110, 125, 95} {
		tx, _ := db.Begin(isolevel.SnapshotIsolation)
		if err := isolevel.PutVal(tx, "price", p); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("update %d: price -> %d\n", i+1, p)
	}

	// A reader pinned at the old snapshot sees the old price, without
	// blocking anyone.
	old := db.BeginAsOf(yesterday)
	v, err := isolevel.GetVal(old, "price")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntime-travel read at ts=%d: price=%d (today it is %d)\n",
		yesterday, v, db.ReadCommittedRow("price").Val())
	if err := old.Commit(); err != nil {
		log.Fatal(err)
	}

	// An update from the old snapshot must abort: first-committer-wins.
	stale := db.BeginAsOf(yesterday)
	if err := isolevel.PutVal(stale, "price", 101); err != nil {
		log.Fatal(err)
	}
	err = stale.Commit()
	if errors.Is(err, isolevel.ErrWriteConflict) {
		fmt.Printf("stale update correctly aborted: %v\n", err)
	} else {
		log.Fatalf("expected first-committer-wins abort, got %v", err)
	}
}
