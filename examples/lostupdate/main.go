// Lostupdate replays H4 (§4.1) — two clients increment the same counter
// from stale reads — across the levels that tell the lost-update story:
// READ COMMITTED loses an update, Cursor Stability saves it when (and only
// when) the client uses a cursor, REPEATABLE READ turns the race into an
// upgrade deadlock, and Snapshot Isolation aborts the second committer.
package main

import (
	"fmt"
	"log"

	isolevel "isolevel"
)

func main() {
	fmt.Println("H4: r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1 — is T2's +20 lost?")
	for _, level := range []isolevel.Level{
		isolevel.ReadCommitted,
		isolevel.CursorStability,
		isolevel.RepeatableRead,
		isolevel.SnapshotIsolation,
	} {
		fmt.Printf("\n== %s, plain reads ==\n", level)
		runPlain(level)
	}
	fmt.Printf("\n== %s, reads through a cursor (the paper's rc/wc) ==\n", isolevel.CursorStability)
	runCursor(isolevel.CursorStability)
}

func runPlain(level isolevel.Level) {
	db := isolevel.NewDBFor(level)
	db.Load(isolevel.Scalar("x", 100))
	res, err := isolevel.RunSchedule(db, level, []isolevel.Step{
		readInto(1, "x"),
		readInto(2, "x"),
		addFromVar(2, "x", 20),
		isolevel.CommitStep(2),
		addFromVar(1, "x", 30),
		isolevel.CommitStep(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	describe(db, res)
}

func runCursor(level isolevel.Level) {
	db := isolevel.NewDBFor(level)
	db.Load(isolevel.Scalar("x", 100))
	res, err := isolevel.RunSchedule(db, level, []isolevel.Step{
		isolevel.OpStep(1, "rc1[x]", func(c *isolevel.ScheduleCtx) (any, error) {
			cur, err := c.Tx.OpenCursor(isolevel.MustPredicate(`key == "x"`))
			if err != nil {
				return nil, err
			}
			c.Vars["cur"] = cur
			tup, err := cur.Fetch()
			if err != nil {
				return nil, err
			}
			c.Vars["x"] = tup.Row.Val()
			return tup.Row.Val(), nil
		}),
		readInto(2, "x"),
		addFromVar(2, "x", 20),
		isolevel.CommitStep(2),
		isolevel.OpStep(1, "wc1[x]", func(c *isolevel.ScheduleCtx) (any, error) {
			return nil, c.Cursor("cur").UpdateCurrent(isolevel.Row{"val": c.Int("x") + 30})
		}),
		isolevel.CommitStep(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	describe(db, res)
}

func readInto(txn int, key isolevel.Key) isolevel.Step {
	return isolevel.OpStep(txn, fmt.Sprintf("r%d[%s]", txn, key), func(c *isolevel.ScheduleCtx) (any, error) {
		v, err := isolevel.GetVal(c.Tx, key)
		if err != nil {
			return nil, err
		}
		c.Vars[string(key)] = v
		return v, nil
	})
}

func addFromVar(txn int, key isolevel.Key, delta int64) isolevel.Step {
	return isolevel.OpStep(txn, fmt.Sprintf("w%d[%s+=%d]", txn, key, delta), func(c *isolevel.ScheduleCtx) (any, error) {
		return nil, isolevel.PutVal(c.Tx, key, c.Int(string(key))+delta)
	})
}

func describe(db isolevel.DB, res *isolevel.ScheduleResult) {
	final := db.ReadCommittedRow("x").Val()
	fmt.Printf("T1 committed: %v, T2 committed: %v, final x=%d\n",
		res.Committed[1], res.Committed[2], final)
	for name, err := range res.Errs() {
		fmt.Printf("  %s: %v\n", name, err)
	}
	switch {
	case res.Committed[1] && res.Committed[2] && final == 130:
		fmt.Println("LOST UPDATE (P4): T2's +20 vanished under T1's stale read-modify-write")
	case res.Committed[1] && res.Committed[2] && final == 120:
		fmt.Println("LOST UPDATE (P4): T1's +30 vanished — the cursor protected T1's own",
			"\nupdate, but T2 still read-modify-wrote from a stale value (the paper's",
			"\n'Sometimes Possible': only cursor-based clients are protected)")
	case res.Committed[1] && res.Committed[2] && final == 150:
		fmt.Println("both updates applied — fully serial outcome")
	default:
		fmt.Println("prevented: one transaction blocked or aborted; no update lost")
	}
}
