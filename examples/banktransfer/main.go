// Banktransfer replays the paper's H1 — the classical inconsistent
// analysis (§3) — live at three isolation levels. An auditor sums accounts
// x and y (total 100) while a transfer of 40 is in flight:
//
//	H1: r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1
//
// At READ UNCOMMITTED the auditor reads the transfer's dirty write and
// reports 60. At READ COMMITTED the dirty read blocks until the transfer
// finishes. Under Snapshot Isolation the auditor reads a consistent
// snapshot without blocking at all.
package main

import (
	"fmt"
	"log"

	isolevel "isolevel"
)

func main() {
	for _, level := range []isolevel.Level{
		isolevel.ReadUncommitted,
		isolevel.ReadCommitted,
		isolevel.SnapshotIsolation,
	} {
		fmt.Printf("== auditing during a transfer at %s ==\n", level)
		audit(level)
		fmt.Println()
	}
}

func audit(level isolevel.Level) {
	db := isolevel.NewDBFor(level)
	db.Load(isolevel.Scalar("x", 50), isolevel.Scalar("y", 50))

	steps := []isolevel.Step{
		// T1 is the transfer: debit x...
		isolevel.OpStep(1, "w1[x=10]", func(c *isolevel.ScheduleCtx) (any, error) {
			return nil, isolevel.PutVal(c.Tx, "x", 10)
		}),
		// ... T2 is the auditor, summing mid-transfer.
		isolevel.OpStep(2, "r2[x]", func(c *isolevel.ScheduleCtx) (any, error) {
			return isolevel.GetVal(c.Tx, "x")
		}),
		isolevel.OpStep(2, "r2[y]", func(c *isolevel.ScheduleCtx) (any, error) {
			return isolevel.GetVal(c.Tx, "y")
		}),
		isolevel.CommitStep(2),
		// T1 completes the credit side and commits.
		isolevel.OpStep(1, "w1[y=90]", func(c *isolevel.ScheduleCtx) (any, error) {
			return nil, isolevel.PutVal(c.Tx, "y", 90)
		}),
		isolevel.CommitStep(1),
	}
	res, err := isolevel.RunSchedule(db, level, steps)
	if err != nil {
		log.Fatal(err)
	}
	rx, _ := res.StepByName("r2[x]")
	ry, _ := res.StepByName("r2[y]")
	x, _ := rx.Value.(int64)
	y, _ := ry.Value.(int64)
	blocked := ""
	if rx.Blocked || ry.Blocked {
		blocked = " (auditor blocked mid-audit)"
	}
	fmt.Printf("auditor saw x=%d y=%d, total=%d%s\n", x, y, x+y, blocked)
	switch {
	case x+y == 100:
		fmt.Println("consistent: the engine prevented the inconsistent analysis")
	default:
		fmt.Println("INCONSISTENT ANALYSIS: the paper's H1 anomaly, live")
	}
	fmt.Printf("final state: x=%d y=%d\n", db.ReadCommittedRow("x").Val(), db.ReadCommittedRow("y").Val())
}
