// Quickstart: open each engine, run a transaction, and watch the defining
// behavior of the three concurrency-control families from the paper —
// blocking (locking), first-committer-wins (Snapshot Isolation), and
// statement snapshots (Read Consistency).
package main

import (
	"errors"
	"fmt"
	"log"

	isolevel "isolevel"
)

func main() {
	fmt.Println("== Locking engine (Table 2): SERIALIZABLE ==")
	lockingDemo()
	fmt.Println("\n== Snapshot Isolation (§4.2): first-committer-wins ==")
	snapshotDemo()
	fmt.Println("\n== Read Consistency (§4.3): statement-level snapshots ==")
	readConsistencyDemo()
}

func lockingDemo() {
	db := isolevel.NewLockingDB()
	db.Load(isolevel.Scalar("x", 50), isolevel.Scalar("y", 50))

	tx, err := db.Begin(isolevel.Serializable)
	if err != nil {
		log.Fatal(err)
	}
	x, _ := isolevel.GetVal(tx, "x")
	if err := isolevel.PutVal(tx, "x", x-40); err != nil {
		log.Fatal(err)
	}
	if err := isolevel.PutVal(tx, "y", 50+40); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transferred 40 from x to y: x=%d y=%d (total preserved)\n",
		db.ReadCommittedRow("x").Val(), db.ReadCommittedRow("y").Val())
}

func snapshotDemo() {
	db := isolevel.NewSnapshotDB()
	db.Load(isolevel.Scalar("x", 100))

	t1, _ := db.Begin(isolevel.SnapshotIsolation)
	t2, _ := db.Begin(isolevel.SnapshotIsolation)

	v1, _ := isolevel.GetVal(t1, "x")
	v2, _ := isolevel.GetVal(t2, "x")
	_ = isolevel.PutVal(t1, "x", v1+1)
	_ = isolevel.PutVal(t2, "x", v2+1)

	if err := t1.Commit(); err != nil {
		log.Fatal(err)
	}
	err := t2.Commit()
	fmt.Println("T1 commit: ok")
	if errors.Is(err, isolevel.ErrWriteConflict) {
		fmt.Println("T2 commit: first-committer-wins abort —", err)
	} else {
		log.Fatalf("expected write conflict, got %v", err)
	}
	fmt.Printf("x=%d (no lost update)\n", db.ReadCommittedRow("x").Val())
}

func readConsistencyDemo() {
	db := isolevel.NewOracleRCDB()
	db.Load(isolevel.Scalar("x", 1))

	t1, _ := db.Begin(isolevel.ReadConsistency)
	before, _ := isolevel.GetVal(t1, "x")

	// Another transaction commits between T1's two statements.
	t2, _ := db.Begin(isolevel.ReadConsistency)
	_ = isolevel.PutVal(t2, "x", 2)
	if err := t2.Commit(); err != nil {
		log.Fatal(err)
	}

	after, _ := isolevel.GetVal(t1, "x")
	fmt.Printf("T1's statements saw x=%d then x=%d — each statement gets a fresh snapshot\n", before, after)
	_ = t1.Commit()
}
