// Writeskew replays the paper's H5 (§4.2) — the anomaly that makes
// Snapshot Isolation non-serializable — in its classic banking form: two
// accounts may individually go negative as long as their sum stays
// positive. Two withdrawals check the constraint against the same snapshot
// and write to different accounts; SI's first-committer-wins never fires
// (disjoint write sets) and the committed state violates the constraint.
// The same schedule at SERIALIZABLE ends in an upgrade deadlock: one
// withdrawal aborts and the constraint survives.
package main

import (
	"errors"
	"fmt"
	"log"

	isolevel "isolevel"
)

func main() {
	fmt.Println("constraint: x + y > 0; each withdrawal checks it before writing")
	for _, level := range []isolevel.Level{isolevel.SnapshotIsolation, isolevel.Serializable} {
		fmt.Printf("\n== %s ==\n", level)
		run(level)
	}
}

func run(level isolevel.Level) {
	db := isolevel.NewDBFor(level)
	db.Load(isolevel.Scalar("x", 50), isolevel.Scalar("y", 50))

	withdraw := func(txn int, target isolevel.Key) []isolevel.Step {
		read := func(key isolevel.Key) isolevel.Step {
			name := fmt.Sprintf("r%d[%s]", txn, key)
			return isolevel.OpStep(txn, name, func(c *isolevel.ScheduleCtx) (any, error) {
				v, err := isolevel.GetVal(c.Tx, key)
				if err != nil {
					return nil, err
				}
				c.Vars[string(key)] = v
				return v, nil
			})
		}
		write := isolevel.OpStep(txn, fmt.Sprintf("w%d[%s]", txn, target), func(c *isolevel.ScheduleCtx) (any, error) {
			sum := c.Int("x") + c.Int("y")
			if sum-90 <= 0 {
				return nil, fmt.Errorf("withdrawal denied: would break constraint")
			}
			return nil, isolevel.PutVal(c.Tx, target, c.Int(string(target))-90)
		})
		return []isolevel.Step{read("x"), read("y"), write}
	}

	t1 := withdraw(1, "y")
	t2 := withdraw(2, "x")
	steps := []isolevel.Step{
		t1[0], t1[1], t2[0], t2[1], // both check the constraint: 100 > 90, fine
		t1[2], t2[2], // both withdraw
		isolevel.CommitStep(1),
		isolevel.CommitStep(2),
	}
	res, err := isolevel.RunSchedule(db, level, steps)
	if err != nil {
		log.Fatal(err)
	}
	x := db.ReadCommittedRow("x").Val()
	y := db.ReadCommittedRow("y").Val()
	fmt.Printf("T1 committed: %v, T2 committed: %v\n", res.Committed[1], res.Committed[2])
	for name, e := range res.Errs() {
		if errors.Is(e, isolevel.ErrDeadlock) {
			fmt.Printf("%s: deadlock victim (locking turned the skew into a cycle)\n", name)
		}
	}
	fmt.Printf("final: x=%d y=%d, x+y=%d\n", x, y, x+y)
	if x+y <= 0 {
		fmt.Println("WRITE SKEW: both withdrawals honored a stale constraint check (A5B)")
	} else {
		fmt.Println("constraint preserved")
	}
}
