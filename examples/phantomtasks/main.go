// Phantomtasks replays the paper's §4.2 closing example: a predicate
// constraint ("the tasks assigned to a worker may not exceed 8 hours") and
// two planners who each check the predicate, see 7 hours, and insert a
// 1-hour task. Because they insert *different* rows, Snapshot Isolation's
// first-committer-wins does not fire and the committed schedule has 9
// hours — the P3 phantom SI does not preclude. SERIALIZABLE's long
// predicate locks turn the same schedule into a deadlock; one planner
// retries and correctly refuses.
package main

import (
	"fmt"
	"log"

	isolevel "isolevel"
)

const limit = 8

func main() {
	for _, level := range []isolevel.Level{isolevel.SnapshotIsolation, isolevel.Serializable} {
		fmt.Printf("== planning tasks at %s (limit %dh) ==\n", level, limit)
		run(level)
		fmt.Println()
	}
}

func run(level isolevel.Level) {
	db := isolevel.NewDBFor(level)
	db.Load(
		isolevel.Tuple{Key: "task:1", Row: isolevel.Row{"hours": 4}},
		isolevel.Tuple{Key: "task:2", Row: isolevel.Row{"hours": 3}},
	)
	pred := isolevel.MustPredicate(`key ~ "task:"`)

	checkAndInsert := func(txn int, key isolevel.Key) []isolevel.Step {
		sum := isolevel.OpStep(txn, fmt.Sprintf("r%d[P]", txn), func(c *isolevel.ScheduleCtx) (any, error) {
			rows, err := c.Tx.Select(pred)
			if err != nil {
				return nil, err
			}
			var total int64
			for _, r := range rows {
				h, _ := r.Row.Get("hours")
				total += h
			}
			c.Vars["sum"] = total
			return total, nil
		})
		ins := isolevel.OpStep(txn, fmt.Sprintf("w%d[%s]", txn, key), func(c *isolevel.ScheduleCtx) (any, error) {
			if c.Int("sum")+1 > limit {
				return nil, fmt.Errorf("refused: %dh + 1h exceeds the limit", c.Int("sum"))
			}
			return nil, c.Tx.Put(key, isolevel.Row{"hours": 1})
		})
		return []isolevel.Step{sum, ins}
	}

	p1 := checkAndInsert(1, "task:3")
	p2 := checkAndInsert(2, "task:4")
	res, err := isolevel.RunSchedule(db, level, []isolevel.Step{
		p1[0], p2[0], // both see 7 hours
		p1[1], p2[1], // both insert a 1-hour task
		isolevel.CommitStep(1),
		isolevel.CommitStep(2),
	})
	if err != nil {
		log.Fatal(err)
	}

	var total int64
	tx, _ := db.Begin(level)
	rows, _ := tx.Select(pred)
	for _, r := range rows {
		h, _ := r.Row.Get("hours")
		total += h
	}
	_ = tx.Commit()

	fmt.Printf("T1 committed: %v, T2 committed: %v\n", res.Committed[1], res.Committed[2])
	fmt.Printf("committed schedule: %d tasks, %d hours\n", len(rows), total)
	if total > limit {
		fmt.Println("PHANTOM (P3): both inserts slipped past the predicate — SI has no predicate locks")
	} else {
		fmt.Println("limit enforced")
	}
}
