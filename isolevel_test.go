package isolevel_test

import (
	"errors"
	"testing"

	isolevel "isolevel"
)

// The doc.go quick start, as a test.
func TestQuickStart(t *testing.T) {
	db := isolevel.NewSnapshotDB()
	db.Load(isolevel.Scalar("x", 50), isolevel.Scalar("y", 50))
	tx, err := db.Begin(isolevel.SnapshotIsolation)
	if err != nil {
		t.Fatal(err)
	}
	v, err := isolevel.GetVal(tx, "x")
	if err != nil || v != 50 {
		t.Fatalf("read %d, %v", v, err)
	}
	if err := isolevel.PutVal(tx, "y", v+40); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.ReadCommittedRow("y").Val(); got != 90 {
		t.Fatalf("y = %d", got)
	}
}

func TestFacadeHistoryAnalysis(t *testing.T) {
	h := isolevel.MustHistory("w1[x] r2[x] c1 c2")
	if !isolevel.Exhibits("P1", h) {
		t.Fatal("P1 witness not detected through facade")
	}
	if isolevel.ConflictSerializable(isolevel.H1()) {
		t.Fatal("H1 should not be serializable")
	}
	if order := isolevel.EquivalentSerialOrder(isolevel.H1SISV()); len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	prof := isolevel.PhenomenaProfile(isolevel.H5())
	if !prof["A5B"] || prof["A1"] {
		t.Fatalf("H5 profile = %v", prof)
	}
}

func TestFacadeEngines(t *testing.T) {
	for _, lvl := range isolevel.Levels {
		db := isolevel.NewDBFor(lvl)
		db.Load(isolevel.Scalar("x", 1))
		tx, err := db.Begin(lvl)
		if err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		v, err := isolevel.GetVal(tx, "x")
		if err != nil || v != 1 {
			t.Fatalf("%s: read %d, %v", lvl, v, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
	}
}

func TestFacadeScenario(t *testing.T) {
	var writeSkew isolevel.Scenario
	for _, sc := range isolevel.Scenarios() {
		if sc.ID == "A5B" && sc.Variant == "" {
			writeSkew = sc
		}
	}
	out, err := isolevel.RunScenario(writeSkew, isolevel.SnapshotIsolation)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Anomaly {
		t.Fatal("write skew must occur under SI")
	}
	out, err = isolevel.RunScenario(writeSkew, isolevel.Serializable)
	if err != nil {
		t.Fatal(err)
	}
	if out.Anomaly {
		t.Fatal("write skew must be prevented at SERIALIZABLE")
	}
}

// A facade-level dirty-read script: the paper's P1 at READ UNCOMMITTED.
func TestFacadeSchedule(t *testing.T) {
	db := isolevel.NewLockingDB()
	db.Load(isolevel.Scalar("x", 0))
	res, err := isolevel.RunSchedule(db, isolevel.ReadUncommitted, []isolevel.Step{
		isolevel.OpStep(1, "w1[x=101]", func(c *isolevel.ScheduleCtx) (any, error) {
			return nil, isolevel.PutVal(c.Tx, "x", 101)
		}),
		isolevel.OpStep(2, "r2[x]", func(c *isolevel.ScheduleCtx) (any, error) {
			return isolevel.GetVal(c.Tx, "x")
		}),
		isolevel.AbortStep(1),
		isolevel.CommitStep(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, ok := res.StepByName("r2[x]")
	if !ok || r2.Value.(int64) != 101 {
		t.Fatalf("dirty read through facade: %+v", r2)
	}
	if !isolevel.Exhibits("A1", res.History) {
		t.Fatalf("recorded history should exhibit A1 (reader committed, writer aborted):\n%s", res.History)
	}
}

func TestFacadeTables(t *testing.T) {
	t1 := isolevel.Table1()
	if len(t1.Rows) != 4 {
		t.Fatalf("table1 rows = %d", len(t1.Rows))
	}
	t3 := isolevel.Table3()
	if len(t3.Rows) != 4 {
		t.Fatalf("table3 rows = %d", len(t3.Rows))
	}
}

func TestFacadeTable4AndFigure2(t *testing.T) {
	res, err := isolevel.Table4(isolevel.ReadCommitted, isolevel.SnapshotIsolation, isolevel.Serializable)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[isolevel.SnapshotIsolation]["A5B"].Cell != isolevel.Possible {
		t.Fatal("SI A5B should be Possible")
	}
	h := isolevel.Figure2(res)
	if h.Rel[isolevel.ReadCommitted][isolevel.SnapshotIsolation].String() != "«" {
		t.Fatalf("RC vs SI = %s", h.Rel[isolevel.ReadCommitted][isolevel.SnapshotIsolation])
	}
}

func TestFacadeErrors(t *testing.T) {
	db := isolevel.NewLockingDB()
	if _, err := db.Begin(isolevel.SnapshotIsolation); !errors.Is(err, isolevel.ErrUnsupported) {
		t.Fatalf("got %v", err)
	}
	tx, _ := db.Begin(isolevel.Serializable)
	if _, err := isolevel.GetVal(tx, "missing"); !errors.Is(err, isolevel.ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	_ = tx.Commit()
}

func TestFacadeWorkload(t *testing.T) {
	db := isolevel.NewSnapshotDB()
	isolevel.LoadAccounts(db, 4, 100)
	m := isolevel.TransferWorkload(db, isolevel.SnapshotIsolation, 4, 2, 10)
	if m.Commits == 0 {
		t.Fatal("no commits")
	}
	if got := isolevel.TotalBalance(db, 4); got != 400 {
		t.Fatalf("total = %d", got)
	}
}

func TestFacadePredicate(t *testing.T) {
	p := isolevel.MustPredicate("active == 1")
	db := isolevel.NewLockingDB()
	db.Load(isolevel.Tuple{Key: "e1", Row: isolevel.Row{"active": 1}})
	tx, _ := db.Begin(isolevel.Serializable)
	rows, err := tx.Select(p)
	if err != nil || len(rows) != 1 {
		t.Fatalf("select: %v, %v", rows, err)
	}
	_ = tx.Commit()
	if _, err := isolevel.ParsePredicate("bad =="); err == nil {
		t.Fatal("parse error expected")
	}
}

func TestFacadeMixedLevels(t *testing.T) {
	h := isolevel.MustHistory("w1[x] r2[x] c2 c1")
	assign, err := isolevel.ParseLevels("T1=RU T2=SER")
	if err != nil {
		t.Fatal(err)
	}
	charges := isolevel.JudgeHistory(h, assign)
	if len(charges) != 1 || charges[0].Victim != 2 || charges[0].ID != isolevel.PhenomenonID("P1") {
		t.Fatalf("charges = %v, want P1 charged to T2", charges)
	}
	// The same dirty read is excused when the writer runs below degree 1.
	weak, _ := isolevel.ParseLevels("T1=D0 T2=SER")
	if cs := isolevel.JudgeHistory(h, weak); len(cs) != 0 {
		t.Fatalf("D0 writer should excuse the reader, got %v", cs)
	}
	attr := isolevel.PhenomenaAttribution(h)
	if !attr[isolevel.PhenomenonID("P1")][isolevel.PhenomenonPair{A: 1, B: 2}] {
		t.Fatalf("attribution = %v", attr)
	}
	// A mixed fuzz mini-campaign through the facade.
	rep, err := isolevel.Fuzz(isolevel.FuzzOptions{Seed: 3, N: 4, Mixed: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations() != 0 {
		t.Fatalf("mixed facade campaign violations:\n%s%s", rep, rep.Detail())
	}
}
