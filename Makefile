GO ?= go

.PHONY: verify build test race vet lint isolint bench bench-all bench-keyrange bench-mv bench-locking bench-compare fuzz fuzz-mixed fuzz-keyrange fuzz-escalation fuzz-dml fuzz-determinism serve-smoke

verify: lint build race ## what CI runs: vet + isolint + build + race-enabled tests

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the repo's own isolint suite
# (cmd/isolint) — determinism (map-range order, unseeded randomness) and
# latch discipline (declared hierarchy, lock pairing, install-then-refresh)
# across every package.
lint: vet isolint

isolint:
	$(GO) run ./cmd/isolint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full bench suite. The shard-sweep lines are sliced into per-subsystem
# perf-trajectory artifacts by benchjson -match, out of the one shared
# run so BENCH_mv.json and BENCH_locking.json stay consistent with each
# other (same build, same host, same run).
bench:
	$(GO) test -bench=. -benchmem . > /tmp/bench-all.out
	cat /tmp/bench-all.out
	$(GO) run ./cmd/isolevel benchjson -match 'ShardSweepDisjointBatch|ShardSweepTransfer' < /tmp/bench-all.out > BENCH_mv.json
	$(GO) run ./cmd/isolevel benchjson -match 'ShardSweepLockingDisjoint|LockingLockstep' < /tmp/bench-all.out > BENCH_locking.json

# Key-range vs predicate phantom-prevention comparison, emitted as JSON so
# the perf trajectory has a machine-readable data point per PR: writers
# under an active scan (the gate contention story), scan install cost, and
# the lockstep phantom storm end to end.
# Two steps, not a pipeline: a failed bench assertion must fail the
# target (a pipe's exit status would be benchjson's, masking it).
bench-keyrange:
	$(GO) test -run '^$$' -bench 'Keyrange' -benchmem . > /tmp/bench-keyrange.out
	cat /tmp/bench-keyrange.out
	$(GO) run ./cmd/isolevel benchjson < /tmp/bench-keyrange.out > BENCH_keyrange.json

# The two bench slices alone, without the full suite: one shorter shared
# run, then the same -match split as `make bench`.
bench-mv bench-locking:
	$(GO) test -run '^$$' -bench 'ShardSweep|LockingLockstep' -benchmem . > /tmp/bench-sweeps.out
	cat /tmp/bench-sweeps.out
	$(GO) run ./cmd/isolevel benchjson -match 'ShardSweepDisjointBatch|ShardSweepTransfer' < /tmp/bench-sweeps.out > BENCH_mv.json
	$(GO) run ./cmd/isolevel benchjson -match 'ShardSweepLockingDisjoint|LockingLockstep' < /tmp/bench-sweeps.out > BENCH_locking.json

# All four perf-trajectory artifacts out of ONE shared run (same build,
# same host, same run): mv, locking, keyrange, escalation. This is what
# CI runs and uploads; regenerate + commit before a perf PR lands.
# Two steps, not a pipeline: a failed bench assertion must fail the
# target (a pipe's exit status would be benchjson's, masking it).
bench-all:
	$(GO) test -run '^$$' -bench 'ShardSweep|LockingLockstep|Keyrange|Escalation' -benchmem . > /tmp/bench-all4.out
	cat /tmp/bench-all4.out
	$(GO) run ./cmd/isolevel benchjson -match 'ShardSweepDisjointBatch|ShardSweepTransfer' < /tmp/bench-all4.out > BENCH_mv.json
	$(GO) run ./cmd/isolevel benchjson -match 'ShardSweepLockingDisjoint|LockingLockstep' < /tmp/bench-all4.out > BENCH_locking.json
	$(GO) run ./cmd/isolevel benchjson -match 'Keyrange' < /tmp/bench-all4.out > BENCH_keyrange.json
	$(GO) run ./cmd/isolevel benchjson -match 'Escalation' < /tmp/bench-all4.out > BENCH_escalation.json

# Alloc-regression guard: rerun the keyrange benches and compare
# allocs/op against the committed BENCH_keyrange.json baseline. CI runs
# this so an accidental return to per-key staging fails the build.
MAX_REGRESS ?= 25
bench-compare:
	$(GO) test -run '^$$' -bench 'Keyrange' -benchmem . > /tmp/bench-compare.out
	$(GO) run ./cmd/isolevel benchjson < /tmp/bench-compare.out > /tmp/BENCH_keyrange.new.json
	$(GO) run ./cmd/isolevel benchjson -compare BENCH_keyrange.json -metric allocs/op -max-regress $(MAX_REGRESS) /tmp/BENCH_keyrange.new.json

# Observability endpoint smoke: a bench run with -http must serve live
# /metrics (Prometheus text with the isolevel_* families), /debug/pprof/
# and /debug/vars while it blocks after the report. Background the
# bench, poll until the socket answers, probe all three, always kill.
HTTP_SMOKE_ADDR ?= 127.0.0.1:8723
http-smoke:
	$(GO) build -o /tmp/isolevel-http ./cmd/isolevel
	sh -c '/tmp/isolevel-http bench -scenario hotspot-lockstep -level "READ COMMITTED" -workers 4 -rounds 10 -obs -http $(HTTP_SMOKE_ADDR) > /tmp/isolevel-http.log 2>&1 & \
	pid=$$!; trap "kill $$pid 2>/dev/null" EXIT; ok=; \
	for i in $$(seq 1 50); do \
	  curl -fsS http://$(HTTP_SMOKE_ADDR)/metrics > /tmp/isolevel-metrics.out 2>/dev/null && ok=1 && break; \
	  sleep 0.2; \
	done; \
	test -n "$$ok" || { echo "http-smoke: endpoint never answered"; cat /tmp/isolevel-http.log; exit 1; }; \
	curl -fsS -o /dev/null http://$(HTTP_SMOKE_ADDR)/debug/pprof/ && \
	curl -fsS -o /dev/null http://$(HTTP_SMOKE_ADDR)/debug/vars && \
	grep -q "^isolevel_op_latency" /tmp/isolevel-metrics.out && \
	grep -q "^isolevel_lock_grants_total" /tmp/isolevel-metrics.out && \
	echo "http-smoke: ok"'

# Traffic-tier smoke: start `serve -family keyrange` with metrics, drive
# it with a fixed-seed mixed-level load (hot keys induce lock conflicts),
# and assert a healthy run: zero protocol errors, nonzero commits, and
# the server counter families live on /metrics. Background the server,
# poll until the HTTP endpoint answers, always kill.
SERVE_SMOKE_ADDR ?= 127.0.0.1:7431
SERVE_SMOKE_HTTP ?= 127.0.0.1:8731
serve-smoke:
	$(GO) build -o /tmp/isolevel-serve ./cmd/isolevel
	sh -c '/tmp/isolevel-serve serve -family keyrange -addr $(SERVE_SMOKE_ADDR) -preload 64 -http $(SERVE_SMOKE_HTTP) > /tmp/isolevel-serve.log 2>&1 & \
	pid=$$!; trap "kill $$pid 2>/dev/null" EXIT; ok=; \
	for i in $$(seq 1 50); do \
	  curl -fsS -o /dev/null http://$(SERVE_SMOKE_HTTP)/metrics 2>/dev/null && ok=1 && break; \
	  sleep 0.2; \
	done; \
	test -n "$$ok" || { echo "serve-smoke: server never answered"; cat /tmp/isolevel-serve.log; exit 1; }; \
	/tmp/isolevel-serve load -addr $(SERVE_SMOKE_ADDR) -clients 4 -txns 200 -keys 64 -hot-keys 4 -hot-bias 0.8 -scan-frac 0.2 -levels "SER,RR" -seed 1 > /tmp/isolevel-load.out 2>&1 || { cat /tmp/isolevel-load.out; exit 1; }; \
	cat /tmp/isolevel-load.out; \
	grep -q "proto-errors=0 " /tmp/isolevel-load.out && \
	grep -q "commits=[1-9]" /tmp/isolevel-load.out && \
	curl -fsS http://$(SERVE_SMOKE_HTTP)/metrics > /tmp/isolevel-serve-metrics.out && \
	grep -q "^isolevel_server_commits_total [1-9]" /tmp/isolevel-serve-metrics.out && \
	grep -q "^isolevel_server_stmt_latency_count [1-9]" /tmp/isolevel-serve-metrics.out && \
	grep -q "^isolevel_server_sessions_accepted_total 4" /tmp/isolevel-serve-metrics.out && \
	echo "serve-smoke: ok"'

# Differential isolation fuzzing: 1000 seeded schedules against every
# engine family at every level, checked against the Table 4 oracle.
fuzz:
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000

# Mixed isolation levels: every transaction of a schedule at its own
# sampled level (all six locking degrees in one lock manager, SI + RC on
# the unified mv engine), judged by the per-transaction oracle.
fuzz-mixed:
	$(GO) run ./cmd/isolevel fuzz -mixed -seed 1 -n 500

# The keyrange family alone: the locking scheduler under key-range
# (next-key) phantom prevention, uniform and mixed.
fuzz-keyrange:
	$(GO) run ./cmd/isolevel fuzz -engines keyrange -seed 1 -n 1000
	$(GO) run ./cmd/isolevel fuzz -engines keyrange -mixed -seed 1 -n 500

# Escalation on (threshold 2, 2 stripes so real runs escalate): coarse
# blocking deliberately diverges from the exact protocols, so the
# campaign is keyrange-alone and oracle-only — zero Table 4 violations
# is the bar, and determinism still holds byte for byte.
fuzz-escalation:
	$(GO) run ./cmd/isolevel fuzz -engines keyrange -escalation 2 -shards 2 -seed 1 -n 300 > /tmp/isolevel-fuzz-ea.out
	cat /tmp/isolevel-fuzz-ea.out
	$(GO) run ./cmd/isolevel fuzz -engines keyrange -escalation 2 -shards 2 -seed 1 -n 300 > /tmp/isolevel-fuzz-eb.out
	diff /tmp/isolevel-fuzz-ea.out /tmp/isolevel-fuzz-eb.out

# DML grammar: inserts, deletes, and range reads join the classic op
# mix, so every family replays schedules that create and destroy rows
# mid-history and range reads certify against the resulting phantoms.
# Keyrange campaigns exercise the gap-lock path continuously (the gaps
# column goes nonzero). Zero oracle violations AND zero predicate vs
# keyrange divergences, byte-for-byte identical across reruns and under
# the race detector with parallel campaign workers.
fuzz-dml:
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 500 -mix r:4,w:4,p:1,rc:1,wc:1,i:2,d:2,s:2 > /tmp/isolevel-fuzz-da.out
	cat /tmp/isolevel-fuzz-da.out
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 500 -mix r:4,w:4,p:1,rc:1,wc:1,i:2,d:2,s:2 > /tmp/isolevel-fuzz-db.out
	diff /tmp/isolevel-fuzz-da.out /tmp/isolevel-fuzz-db.out
	$(GO) run -race ./cmd/isolevel fuzz -seed 1 -n 500 -mix r:4,w:4,p:1,rc:1,wc:1,i:2,d:2,s:2 -workers 4 > /tmp/isolevel-fuzz-dc.out
	diff /tmp/isolevel-fuzz-da.out /tmp/isolevel-fuzz-dc.out

# The same campaign run twice must be byte-for-byte identical — uniform
# and mixed alike.
fuzz-determinism:
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000 > /tmp/isolevel-fuzz-a.out
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000 > /tmp/isolevel-fuzz-b.out
	diff /tmp/isolevel-fuzz-a.out /tmp/isolevel-fuzz-b.out
	$(GO) run ./cmd/isolevel fuzz -mixed -seed 1 -n 500 > /tmp/isolevel-fuzz-ma.out
	$(GO) run ./cmd/isolevel fuzz -mixed -seed 1 -n 500 > /tmp/isolevel-fuzz-mb.out
	diff /tmp/isolevel-fuzz-ma.out /tmp/isolevel-fuzz-mb.out
