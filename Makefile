GO ?= go

.PHONY: verify build test race vet bench fuzz fuzz-mixed fuzz-determinism

verify: vet build race ## what CI runs: vet + build + race-enabled tests

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Differential isolation fuzzing: 1000 seeded schedules against every
# engine family at every level, checked against the Table 4 oracle.
fuzz:
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000

# Mixed isolation levels: every transaction of a schedule at its own
# sampled level (all six locking degrees in one lock manager, SI + RC on
# the unified mv engine), judged by the per-transaction oracle.
fuzz-mixed:
	$(GO) run ./cmd/isolevel fuzz -mixed -seed 1 -n 500

# The same campaign run twice must be byte-for-byte identical — uniform
# and mixed alike.
fuzz-determinism:
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000 > /tmp/isolevel-fuzz-a.out
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000 > /tmp/isolevel-fuzz-b.out
	diff /tmp/isolevel-fuzz-a.out /tmp/isolevel-fuzz-b.out
	$(GO) run ./cmd/isolevel fuzz -mixed -seed 1 -n 500 > /tmp/isolevel-fuzz-ma.out
	$(GO) run ./cmd/isolevel fuzz -mixed -seed 1 -n 500 > /tmp/isolevel-fuzz-mb.out
	diff /tmp/isolevel-fuzz-ma.out /tmp/isolevel-fuzz-mb.out
