GO ?= go

.PHONY: verify build test race vet bench bench-keyrange fuzz fuzz-mixed fuzz-keyrange fuzz-determinism

verify: vet build race ## what CI runs: vet + build + race-enabled tests

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Key-range vs predicate phantom-prevention comparison, emitted as JSON so
# the perf trajectory has a machine-readable data point per PR: writers
# under an active scan (the gate contention story), scan install cost, and
# the lockstep phantom storm end to end.
# Two steps, not a pipeline: a failed bench assertion must fail the
# target (a pipe's exit status would be benchjson's, masking it).
bench-keyrange:
	$(GO) test -run '^$$' -bench 'Keyrange' -benchmem . > /tmp/bench-keyrange.out
	cat /tmp/bench-keyrange.out
	$(GO) run ./cmd/isolevel benchjson < /tmp/bench-keyrange.out > BENCH_keyrange.json

# Differential isolation fuzzing: 1000 seeded schedules against every
# engine family at every level, checked against the Table 4 oracle.
fuzz:
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000

# Mixed isolation levels: every transaction of a schedule at its own
# sampled level (all six locking degrees in one lock manager, SI + RC on
# the unified mv engine), judged by the per-transaction oracle.
fuzz-mixed:
	$(GO) run ./cmd/isolevel fuzz -mixed -seed 1 -n 500

# The keyrange family alone: the locking scheduler under key-range
# (next-key) phantom prevention, uniform and mixed.
fuzz-keyrange:
	$(GO) run ./cmd/isolevel fuzz -engines keyrange -seed 1 -n 1000
	$(GO) run ./cmd/isolevel fuzz -engines keyrange -mixed -seed 1 -n 500

# The same campaign run twice must be byte-for-byte identical — uniform
# and mixed alike.
fuzz-determinism:
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000 > /tmp/isolevel-fuzz-a.out
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000 > /tmp/isolevel-fuzz-b.out
	diff /tmp/isolevel-fuzz-a.out /tmp/isolevel-fuzz-b.out
	$(GO) run ./cmd/isolevel fuzz -mixed -seed 1 -n 500 > /tmp/isolevel-fuzz-ma.out
	$(GO) run ./cmd/isolevel fuzz -mixed -seed 1 -n 500 > /tmp/isolevel-fuzz-mb.out
	diff /tmp/isolevel-fuzz-ma.out /tmp/isolevel-fuzz-mb.out
