GO ?= go

.PHONY: verify build test race vet bench

verify: vet build race ## what CI runs: vet + build + race-enabled tests

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .
