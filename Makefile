GO ?= go

.PHONY: verify build test race vet bench fuzz fuzz-determinism

verify: vet build race ## what CI runs: vet + build + race-enabled tests

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Differential isolation fuzzing: 1000 seeded schedules against every
# engine family at every level, checked against the Table 4 oracle.
fuzz:
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000

# The same campaign run twice must be byte-for-byte identical.
fuzz-determinism:
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000 > /tmp/isolevel-fuzz-a.out
	$(GO) run ./cmd/isolevel fuzz -seed 1 -n 1000 > /tmp/isolevel-fuzz-b.out
	diff /tmp/isolevel-fuzz-a.out /tmp/isolevel-fuzz-b.out
