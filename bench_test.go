package isolevel_test

// The benchmark harness regenerates every evaluation artifact of the paper
// (Tables 1-4, Figure 2) and measures the operational counterparts of
// §4.2's qualitative performance claims. Run:
//
//	go test -bench=. -benchmem .
//
// Each table/figure bench executes one full regeneration per iteration and
// asserts it still matches the published values; the workload benches
// report commit throughput and abort rates as custom metrics so the
// "shape" claims (SI readers never block; FCW converts contention into
// aborts; long SI updaters starve) are visible in the output.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	isolevel "isolevel"
	"isolevel/internal/engine"
	"isolevel/internal/exerciser"
	"isolevel/internal/locking"
	"isolevel/internal/matrix"
	"isolevel/internal/obs"
	"isolevel/internal/obs/wallclock"
	"isolevel/internal/workload"
)

// latencyTimer records per-iteration latencies into an obs histogram and
// reports the distribution as p50-ns/p90-ns/p99-ns/max-ns bench metrics,
// which the benchjson pipeline embeds into the BENCH_*.json artifacts
// (compare with `benchjson -compare ... -metric p99`). ns/op only shows
// the mean; the percentiles expose tail effects — a gate convoy or an
// escalation stall widens p99 long before it moves the mean. The timer is
// harness-side: the engines under test keep their nil obs hooks, so the
// allocs/op regression guard measures the disabled-hook cost.
type latencyTimer struct {
	clk obs.Clock
	h   obs.Histogram
}

func newLatencyTimer() *latencyTimer { return &latencyTimer{clk: wallclock.New()} }

// time runs f and records its wall-clock duration. Safe for concurrent use
// (RunParallel bodies): the histogram is atomic.
func (t *latencyTimer) time(f func()) {
	start := t.clk.Now()
	f()
	t.h.Record(t.clk.Now() - start)
}

// start/stop are the closure-free form for per-op timing inside hot
// parallel loops, where a captured closure would add an allocation per
// operation and skew the allocs/op regression guard.
func (t *latencyTimer) start() int64 { return t.clk.Now() }

func (t *latencyTimer) stop(start int64) { t.h.Record(t.clk.Now() - start) }

func (t *latencyTimer) report(b *testing.B) {
	s := t.h.Snapshot()
	if s.Count == 0 {
		return
	}
	b.ReportMetric(float64(s.P50()), "p50-ns")
	b.ReportMetric(float64(s.P90()), "p90-ns")
	b.ReportMetric(float64(s.P99()), "p99-ns")
	b.ReportMetric(float64(s.Max), "max-ns")
}

// --- Table and figure regeneration benches ---

// BenchmarkTable1 regenerates Table 1 from the phenomenon-based acceptors.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := isolevel.Table1()
		if len(tbl.Rows) != 4 {
			b.Fatal("table 1 regeneration failed")
		}
	}
}

// BenchmarkTable2 regenerates Table 2 with live lock-duration probes.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, mismatches, err := isolevel.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(mismatches) != 0 {
			b.Fatalf("table 2 mismatches: %v", mismatches)
		}
	}
}

// BenchmarkTable3 regenerates the repaired Table 3.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := isolevel.Table3()
		if len(tbl.Rows) != 4 {
			b.Fatal("table 3 regeneration failed")
		}
	}
}

// BenchmarkTable4 regenerates the full Table 4 matrix on live engines and
// diffs it against the paper.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := isolevel.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if diffs := res.DiffPaper(); len(diffs) != 0 {
			b.Fatalf("table 4 diverged from the paper: %v", diffs)
		}
	}
}

// BenchmarkFigure2 measures the full eight-level hierarchy computation.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := isolevel.Table4AllLevels()
		if err != nil {
			b.Fatal(err)
		}
		h := isolevel.Figure2(res)
		if diffs := h.VerifyPaperAssertions(); len(diffs) != 0 {
			b.Fatalf("figure 2 diverged from the paper: %v", diffs)
		}
	}
}

// BenchmarkAnomalyScenario runs each Table 4 column's primary scenario at
// its most interesting level (one sub-bench per anomaly).
func BenchmarkAnomalyScenario(b *testing.B) {
	cases := []struct {
		id    string
		level isolevel.Level
	}{
		{"P0", isolevel.Degree0},
		{"P1", isolevel.ReadUncommitted},
		{"P4C", isolevel.CursorStability},
		{"P4", isolevel.ReadCommitted},
		{"P2", isolevel.ReadCommitted},
		{"P3", isolevel.RepeatableRead},
		{"A5A", isolevel.ReadCommitted},
		{"A5B", isolevel.SnapshotIsolation},
	}
	catalog := isolevel.Scenarios()
	for _, c := range cases {
		var sc isolevel.Scenario
		for _, cand := range catalog {
			if cand.ID == c.id && cand.Variant == "" {
				sc = cand
			}
		}
		b.Run(fmt.Sprintf("%s@%s", c.id, c.level), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := isolevel.RunScenario(sc, c.level); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §4.2 performance-claim benches ---

const (
	benchAccounts = 64
	benchIters    = 50
)

// BenchmarkReadersVsWriters sweeps writer count for a fixed reader pool at
// the levels that tell §4.2's story. Expected shape: SI readers commit all
// their scans with zero aborts at every writer count, while SERIALIZABLE
// readers serialize against the writers (lower reader throughput, possible
// deadlock aborts).
func BenchmarkReadersVsWriters(b *testing.B) {
	for _, level := range []isolevel.Level{
		isolevel.ReadCommitted, isolevel.Serializable, isolevel.SnapshotIsolation,
	} {
		for _, writers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/writers=%d", level, writers), func(b *testing.B) {
				var readerCommits, readerAborts, writerCommits int64
				for i := 0; i < b.N; i++ {
					db := isolevel.NewDBFor(level)
					isolevel.LoadAccounts(db, benchAccounts, 100)
					r, w := isolevel.ReadersVsWriters(db, level, benchAccounts, 4, writers, benchIters)
					readerCommits += r.Commits
					readerAborts += r.Aborts
					writerCommits += w.Commits
				}
				b.ReportMetric(float64(readerCommits)/float64(b.N), "reader-commits/run")
				b.ReportMetric(float64(readerAborts)/float64(b.N), "reader-aborts/run")
				b.ReportMetric(float64(writerCommits)/float64(b.N), "writer-commits/run")
			})
		}
	}
}

// BenchmarkContentionSweep hammers a single hot counter at increasing
// worker counts. Expected shape: locking levels serialize (zero aborts at
// SERIALIZABLE come out as deadlock aborts under read-modify-write);
// SI converts every race into a first-committer-wins abort, so its abort
// rate climbs with contention while the committed counter stays exact.
func BenchmarkContentionSweep(b *testing.B) {
	for _, level := range []isolevel.Level{
		isolevel.ReadCommitted, isolevel.Serializable,
		isolevel.SnapshotIsolation, isolevel.ReadConsistency,
	} {
		for _, workers := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", level, workers), func(b *testing.B) {
				var commits, aborts int64
				for i := 0; i < b.N; i++ {
					db := isolevel.NewDBFor(level)
					m := isolevel.HotspotCounter(db, level, workers, benchIters)
					commits += m.Commits
					aborts += m.Aborts
				}
				b.ReportMetric(float64(commits)/float64(b.N), "commits/run")
				b.ReportMetric(100*float64(aborts)/float64(max64(1, commits+aborts)), "abort-%")
			})
		}
	}
}

// BenchmarkLongRunningUpdater measures §4.2's long-transaction claim: the
// long SI updater is "unlikely to be the first writer of everything it
// writes" and aborts; the locking updater survives by blocking (or dies in
// a deadlock, never an FCW conflict).
func BenchmarkLongRunningUpdater(b *testing.B) {
	for _, level := range []isolevel.Level{isolevel.Serializable, isolevel.SnapshotIsolation} {
		b.Run(level.String(), func(b *testing.B) {
			var longCommits, fcwAborts int64
			for i := 0; i < b.N; i++ {
				db := isolevel.NewDBFor(level)
				isolevel.LoadAccounts(db, 16, 0)
				committed, err, _ := isolevel.LongRunningUpdate(db, level, 16, 4, 25)
				if committed {
					longCommits++
				} else if errors.Is(err, isolevel.ErrWriteConflict) {
					fcwAborts++
				}
			}
			b.ReportMetric(100*float64(longCommits)/float64(b.N), "long-commit-%")
			b.ReportMetric(100*float64(fcwAborts)/float64(b.N), "long-fcw-abort-%")
		})
	}
}

// BenchmarkTransferThroughput is the baseline cross-engine comparison on
// the uniform transfer workload (the invariant-preserving workload every
// engine must get right).
func BenchmarkTransferThroughput(b *testing.B) {
	for _, level := range []isolevel.Level{
		isolevel.ReadCommitted, isolevel.RepeatableRead, isolevel.Serializable,
		isolevel.SnapshotIsolation, isolevel.ReadConsistency,
	} {
		b.Run(level.String(), func(b *testing.B) {
			var commits, aborts int64
			for i := 0; i < b.N; i++ {
				db := isolevel.NewDBFor(level)
				isolevel.LoadAccounts(db, benchAccounts, 100)
				m := isolevel.TransferWorkload(db, level, benchAccounts, 4, benchIters)
				commits += m.Commits
				aborts += m.Aborts
			}
			b.ReportMetric(float64(commits)/float64(b.N), "commits/run")
			b.ReportMetric(100*float64(aborts)/float64(max64(1, commits+aborts)), "abort-%")
		})
	}
}

// BenchmarkShardSweepDisjointBatch measures the striped SI commit path on
// its best case: every worker owns a private key range, so no transaction
// ever conflicts and throughput is limited purely by commit-path
// serialization. shards=1 reproduces the old global-commit-mutex behavior
// (every commit queues); higher stripe counts let the disjoint write sets
// validate and install in parallel.
func BenchmarkShardSweepDisjointBatch(b *testing.B) {
	const workers, batch, iters = 8, 4, 100
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var commits, aborts int64
			lt := newLatencyTimer()
			for i := 0; i < b.N; i++ {
				db := isolevel.NewSnapshotDBShards(shards)
				isolevel.LoadAccounts(db, workers*batch, 0)
				var m isolevel.Metrics
				lt.time(func() {
					m = isolevel.BatchIncrementWorkload(db, isolevel.SnapshotIsolation, workers, iters, batch, true)
				})
				commits += m.Commits
				aborts += m.Aborts
			}
			if aborts != 0 {
				b.Fatalf("disjoint write sets aborted %d times", aborts)
			}
			b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "commits/s")
			lt.report(b)
		})
	}
}

// BenchmarkShardSweepTransfer sweeps the stripe count under the uniform
// transfer workload — mostly-disjoint write sets with occasional
// conflicts, the realistic middle ground between the disjoint-batch best
// case and the hotspot worst case.
func BenchmarkShardSweepTransfer(b *testing.B) {
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var commits int64
			lt := newLatencyTimer()
			for i := 0; i < b.N; i++ {
				db := isolevel.NewSnapshotDBShards(shards)
				isolevel.LoadAccounts(db, benchAccounts, 100)
				var m isolevel.Metrics
				lt.time(func() {
					m = isolevel.TransferWorkload(db, isolevel.SnapshotIsolation, benchAccounts, 8, benchIters)
				})
				commits += m.Commits
			}
			b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "commits/s")
			lt.report(b)
		})
	}
}

// BenchmarkShardSweepLockingDisjoint is the locking-engine mirror of the
// mv shard sweep: every worker owns a private key range, so no lock
// request ever conflicts and throughput is limited purely by lock-manager
// serialization. shards=1 reproduces the old single-latch lock manager
// (every acquire and release funnels through one mutex); higher stripe
// counts let the disjoint-key lock traffic proceed in parallel.
func BenchmarkShardSweepLockingDisjoint(b *testing.B) {
	const workers, batch, iters = 8, 4, 100
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var commits, aborts int64
			lt := newLatencyTimer()
			for i := 0; i < b.N; i++ {
				db := isolevel.NewLockingDBShards(shards)
				isolevel.LoadAccounts(db, workers*batch, 0)
				var m isolevel.Metrics
				lt.time(func() {
					m = isolevel.BatchIncrementWorkload(db, isolevel.Serializable, workers, iters, batch, true)
				})
				commits += m.Commits
				aborts += m.Aborts
			}
			if aborts != 0 {
				b.Fatalf("disjoint lock sets aborted %d times", aborts)
			}
			b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "commits/s")
			lt.report(b)
		})
	}
}

// --- Key-range vs predicate phantom-prevention benches ---
// (`make bench-keyrange` runs the Keyrange benches and converts their
// output into BENCH_keyrange.json, the perf-trajectory artifact.)

// BenchmarkKeyrangeWritersUnderScan is the headline comparison: a
// SERIALIZABLE scanner holds its phantom protection for the whole
// benchmark while concurrent writers update non-matching rows on spread
// keys. Under the predicate table every write funnels through the
// cross-stripe gate's exclusive side for its conflict check; under
// key-range locking writes consult only their own stripe's fragments.
// The gate-acquires/op metric is the direct evidence: zero on keyrange.
func BenchmarkKeyrangeWritersUnderScan(b *testing.B) {
	const keys = 128
	for _, proto := range []string{"predicate", "keyrange"} {
		for _, shards := range []int{1, 16} {
			b.Run(fmt.Sprintf("%s/shards=%d", proto, shards), func(b *testing.B) {
				db := isolevel.NewLockingDBShards(shards)
				if proto == "keyrange" {
					db = isolevel.NewKeyrangeDBShards(shards)
				}
				for i := 0; i < keys; i++ {
					db.Load(isolevel.Scalar(isolevel.Key(fmt.Sprintf("acct:%d", i)), int64(i)))
				}
				p := isolevel.MustPredicate("val >= 100000")
				scanner, err := db.Begin(isolevel.Serializable)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := scanner.Select(p); err != nil {
					b.Fatal(err)
				}
				var ctr atomic.Int64
				lt := newLatencyTimer()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := ctr.Add(1)
						key := isolevel.Key(fmt.Sprintf("acct:%d", int(i)%keys))
						t0 := lt.start()
						tx, err := db.Begin(isolevel.ReadCommitted)
						if err != nil {
							b.Fatal(err)
						}
						if err := isolevel.PutVal(tx, key, i%99999); err != nil {
							b.Fatal(err)
						}
						if err := tx.Commit(); err != nil {
							b.Fatal(err)
						}
						lt.stop(t0)
					}
				})
				b.StopTimer()
				if err := scanner.Commit(); err != nil {
					b.Fatal(err)
				}
				st := db.LockStats()
				if proto == "keyrange" && st.GateAcquires != 0 {
					b.Fatalf("keyrange writers took the gate %d times", st.GateAcquires)
				}
				if proto == "predicate" && st.GateAcquires == 0 {
					b.Fatal("predicate writers never took the gate — the bench is not exercising the contended path")
				}
				b.ReportMetric(float64(st.GateAcquires)/float64(b.N), "gate-acquires/op")
				lt.report(b)
			})
		}
	}
}

// BenchmarkKeyrangeScan prices the scan itself: a key-range scan installs
// one fragment per existing key in range where a predicate lock installs
// a single gated table entry — the honest cost side of trading the global
// gate for per-stripe locality.
func BenchmarkKeyrangeScan(b *testing.B) {
	for _, proto := range []string{"predicate", "keyrange"} {
		for _, keys := range []int{16, 128} {
			b.Run(fmt.Sprintf("%s/keys=%d", proto, keys), func(b *testing.B) {
				db := isolevel.NewLockingDBShards(16)
				if proto == "keyrange" {
					db = isolevel.NewKeyrangeDBShards(16)
				}
				for i := 0; i < keys; i++ {
					db.Load(isolevel.Scalar(isolevel.Key(fmt.Sprintf("acct:%d", i)), int64(i)))
				}
				p := isolevel.MustPredicate("val >= 100000")
				lt := newLatencyTimer()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t0 := lt.start()
					tx, err := db.Begin(isolevel.Serializable)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := tx.Select(p); err != nil {
						b.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
					lt.stop(t0)
				}
				lt.report(b)
			})
		}
	}
}

// BenchmarkKeyrangePhantomStorm runs the lockstep phantom scenario end to
// end under both protocols — identical exact outcomes, different
// lock-manager internals.
func BenchmarkKeyrangePhantomStorm(b *testing.B) {
	const writers, rounds = 4, 5
	for _, proto := range []string{"predicate", "keyrange"} {
		b.Run(proto, func(b *testing.B) {
			lt := newLatencyTimer()
			for i := 0; i < b.N; i++ {
				db := isolevel.NewLockingDBShards(16)
				if proto == "keyrange" {
					db = isolevel.NewKeyrangeDBShards(16)
				}
				t0 := lt.start()
				res, err := workload.PhantomInsertStorm(db, isolevel.Serializable, writers, rounds)
				lt.stop(t0)
				if err != nil {
					b.Fatal(err)
				}
				if res.PhantomsSeen != 0 || res.BlockedInserts != writers*rounds {
					b.Fatalf("storm drifted: %+v", res)
				}
			}
			b.ReportMetric(float64(b.N*rounds)/b.Elapsed().Seconds(), "rounds/s")
			lt.report(b)
		})
	}
}

// --- Lock escalation benches ---
// (`make bench-all` slices these into BENCH_escalation.json.)

// BenchmarkEscalationScan prices a whole-space scan under the three
// phantom-protection configurations: the gated predicate table, exact
// key-range fragments, and key-range with escalation (threshold 4 at 128
// keys over 16 stripes escalates every stripe, so the install collapses
// ~8 per-key fragments into one coarse entry per stripe). The
// escalations/op metric confirms the coarse path actually runs.
func BenchmarkEscalationScan(b *testing.B) {
	const keys, shards, threshold = 128, 16, 4
	for _, cfg := range []string{"predicate", "keyrange", "keyrange-esc"} {
		b.Run(cfg, func(b *testing.B) {
			var db *locking.DB
			switch cfg {
			case "predicate":
				db = isolevel.NewLockingDBShards(shards)
			case "keyrange":
				db = isolevel.NewKeyrangeDBShards(shards)
			case "keyrange-esc":
				db = isolevel.NewKeyrangeDBEscalated(shards, threshold)
			}
			for i := 0; i < keys; i++ {
				db.Load(isolevel.Scalar(isolevel.Key(fmt.Sprintf("acct:%d", i)), int64(i)))
			}
			p := isolevel.MustPredicate("val >= 100000")
			lt := newLatencyTimer()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := lt.start()
				tx, err := db.Begin(isolevel.Serializable)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tx.Select(p); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
				lt.stop(t0)
			}
			b.StopTimer()
			st := db.LockStats()
			if cfg != "predicate" && st.GateAcquires != 0 {
				b.Fatalf("keyrange scan took the gate %d times", st.GateAcquires)
			}
			if cfg == "keyrange-esc" && st.Escalations == 0 {
				b.Fatal("escalated config never escalated — threshold not exercised")
			}
			b.ReportMetric(float64(st.Escalations)/float64(b.N), "escalations/op")
			lt.report(b)
		})
	}
}

// BenchmarkEscalationStorm runs the lockstep escalation scenario end to
// end on all three configurations: same workload, increasingly coarse
// blocking. blocked-writes/round is the precision cost (0 exact, > 0
// escalated), rounds/s the throughput each configuration sustains.
func BenchmarkEscalationStorm(b *testing.B) {
	const keys, writers, rounds, shards, threshold = 64, 8, 5, 16, 4
	for _, cfg := range []string{"predicate", "keyrange", "keyrange-esc"} {
		b.Run(cfg, func(b *testing.B) {
			var blocked int64
			lt := newLatencyTimer()
			for i := 0; i < b.N; i++ {
				var db *locking.DB
				switch cfg {
				case "predicate":
					db = isolevel.NewLockingDBShards(shards)
				case "keyrange":
					db = isolevel.NewKeyrangeDBShards(shards)
				case "keyrange-esc":
					db = isolevel.NewKeyrangeDBEscalated(shards, threshold)
				}
				t0 := lt.start()
				res, err := workload.EscalationStorm(db, isolevel.Serializable, keys, writers, rounds)
				lt.stop(t0)
				if err != nil {
					b.Fatal(err)
				}
				if cfg != "predicate" && res.GateAcquires != 0 {
					b.Fatalf("gate acquired %d times", res.GateAcquires)
				}
				esc, _ := workload.EscalatedStripes(keys, shards, threshold)
				if cfg == "keyrange-esc" && res.Escalations != int64(rounds*esc) {
					b.Fatalf("escalations drifted: %d, want %d", res.Escalations, rounds*esc)
				}
				if cfg != "keyrange-esc" && res.BlockedWrites != 0 {
					b.Fatalf("exact protocol blocked %d non-matching writes", res.BlockedWrites)
				}
				blocked += int64(res.BlockedWrites)
			}
			b.ReportMetric(float64(blocked)/float64(b.N*rounds), "blocked-writes/round")
			b.ReportMetric(float64(b.N*rounds)/b.Elapsed().Seconds(), "rounds/s")
			lt.report(b)
		})
	}
}

// BenchmarkLockingLockstep measures the deterministic lock-manager
// scenarios end to end (schedule-runner overhead included): the upgrade
// storm's exact one-survivor-per-round outcome at increasing stripe
// counts.
func BenchmarkLockingLockstep(b *testing.B) {
	const sessions, rounds = 4, 10
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("upgrade-storm/shards=%d", shards), func(b *testing.B) {
			lt := newLatencyTimer()
			for i := 0; i < b.N; i++ {
				db := isolevel.NewLockingDBShards(shards)
				t0 := lt.start()
				m, err := isolevel.UpgradeStormWorkload(db, isolevel.Serializable, sessions, rounds)
				lt.stop(t0)
				if err != nil {
					b.Fatal(err)
				}
				if m.Commits != rounds || m.Aborts != rounds*(sessions-1) {
					b.Fatalf("storm drifted: %+v", m)
				}
			}
			b.ReportMetric(float64(b.N*rounds)/b.Elapsed().Seconds(), "rounds/s")
			lt.report(b)
		})
	}
}

// BenchmarkSkewedTransfer measures the skewed multi-key transfer scenario:
// first-committer-wins aborts concentrate on the hot keys while the
// uniform tail still commits in parallel through the striped path.
func BenchmarkSkewedTransfer(b *testing.B) {
	for _, level := range []isolevel.Level{isolevel.Serializable, isolevel.SnapshotIsolation} {
		b.Run(level.String(), func(b *testing.B) {
			var commits, aborts int64
			for i := 0; i < b.N; i++ {
				db := isolevel.NewDBFor(level)
				isolevel.LoadAccounts(db, benchAccounts, 100)
				m := isolevel.SkewedTransferWorkload(db, level, benchAccounts, 8, 4, benchIters, 0.8)
				commits += m.Commits
				aborts += m.Aborts
			}
			b.ReportMetric(float64(commits)/float64(b.N), "commits/run")
			b.ReportMetric(100*float64(aborts)/float64(max64(1, commits+aborts)), "abort-%")
		})
	}
}

// BenchmarkHotspotLockstep measures the deterministic contention driver:
// per round every session reads before any session commits, so the SI
// abort rate is exactly (sessions-1)/sessions by construction and the
// metric of interest is rounds per second (rendezvous overhead included).
func BenchmarkHotspotLockstep(b *testing.B) {
	for _, sessions := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			const rounds = 25
			var commits, aborts int64
			for i := 0; i < b.N; i++ {
				db := isolevel.NewSnapshotDB()
				m := isolevel.HotspotLockstep(db, isolevel.SnapshotIsolation, sessions, rounds)
				commits += m.Commits
				aborts += m.Aborts
			}
			if commits != int64(b.N*rounds) {
				b.Fatalf("lockstep commits drifted: %d, want %d", commits, b.N*rounds)
			}
			b.ReportMetric(float64(b.N*rounds)/b.Elapsed().Seconds(), "rounds/s")
			b.ReportMetric(100*float64(aborts)/float64(max64(1, commits+aborts)), "abort-%")
		})
	}
}

// BenchmarkFirstCommitterVsFirstUpdater is the ablation of the paper's
// commit-time validation against the eager write-time variant used by
// several modern systems: same anomaly guarantees, different abort timing.
func BenchmarkFirstCommitterVsFirstUpdater(b *testing.B) {
	run := func(b *testing.B, db engine.DB) {
		var commits, aborts int64
		for i := 0; i < b.N; i++ {
			m := workload.HotspotCounter(db, isolevel.SnapshotIsolation, 4, benchIters)
			commits += m.Commits
			aborts += m.Aborts
		}
		b.ReportMetric(100*float64(aborts)/float64(max64(1, commits+aborts)), "abort-%")
	}
	b.Run("first-committer-wins", func(b *testing.B) {
		run(b, isolevel.NewSnapshotDB())
	})
	b.Run("first-updater-wins", func(b *testing.B) {
		run(b, isolevel.NewSnapshotDBFirstUpdaterWins())
	})
}

// BenchmarkEngineMicro measures single-threaded engine primitives.
func BenchmarkEngineMicro(b *testing.B) {
	b.Run("locking/get-put-commit", func(b *testing.B) {
		db := isolevel.NewLockingDB()
		db.Load(isolevel.Scalar("x", 0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx, _ := db.Begin(isolevel.Serializable)
			v, _ := isolevel.GetVal(tx, "x")
			_ = isolevel.PutVal(tx, "x", v+1)
			_ = tx.Commit()
		}
	})
	b.Run("snapshot/get-put-commit", func(b *testing.B) {
		db := isolevel.NewSnapshotDB()
		db.Load(isolevel.Scalar("x", 0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx, _ := db.Begin(isolevel.SnapshotIsolation)
			v, _ := isolevel.GetVal(tx, "x")
			_ = isolevel.PutVal(tx, "x", v+1)
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("history/parse-H1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := isolevel.ParseHistory("r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("phenomena/profile-H5", func(b *testing.B) {
		h := isolevel.H5()
		for i := 0; i < b.N; i++ {
			if p := isolevel.PhenomenaProfile(h); !p["A5B"] {
				b.Fatal("profile lost A5B")
			}
		}
	})
	b.Run("deps/serializability-H1", func(b *testing.B) {
		h := isolevel.H1()
		for i := 0; i < b.N; i++ {
			if isolevel.ConflictSerializable(h) {
				b.Fatal("H1 became serializable")
			}
		}
	})
}

// BenchmarkCellSpot regenerates the two most expensive single cells.
func BenchmarkCellSpot(b *testing.B) {
	for _, c := range []struct {
		level isolevel.Level
		col   string
	}{
		{isolevel.CursorStability, "A5B"},
		{isolevel.SnapshotIsolation, "P3"},
	} {
		b.Run(fmt.Sprintf("%s/%s", c.level, c.col), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := matrix.RunCell(c.level, c.col); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- Differential fuzzer: checker throughput and campaign rate ---

// checkerHistory generates a deterministic history of roughly the given
// op count for the checker benches.
func checkerHistory(txs, opsPerTx int) isolevel.History {
	p := exerciser.DefaultParams()
	p.Txs = txs
	p.Items = 4
	p.OpsPerTx = opsPerTx
	return exerciser.Generate(42, p).History()
}

// BenchmarkCheckerBatch runs the batch phenomenon matchers (full-history
// rescans per identifier) over a generated history and reports
// histories/sec — the baseline the streaming checker is measured against.
func BenchmarkCheckerBatch(b *testing.B) {
	h := checkerHistory(8, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(isolevel.PhenomenaProfile(h)) == 0 {
			b.Fatal("generated history exhibits nothing")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "histories/sec")
	b.ReportMetric(float64(len(h)), "ops/history")
}

// BenchmarkCheckerStream runs the incremental checker over the same
// history: per-op work bounded by live transactions, not history length.
func BenchmarkCheckerStream(b *testing.B) {
	h := checkerHistory(8, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(isolevel.StreamingProfile(h)) == 0 {
			b.Fatal("generated history exhibits nothing")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "histories/sec")
	b.ReportMetric(float64(len(h)), "ops/history")
}

// BenchmarkCheckerStreamLong checks a campaign-length history (thousands
// of ops) that the batch matchers' quadratic-and-worse scans cannot
// sustain at bench speed.
func BenchmarkCheckerStreamLong(b *testing.B) {
	h := checkerHistory(64, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		isolevel.StreamingProfile(h)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "histories/sec")
	b.ReportMetric(float64(len(h)), "ops/history")
}

// BenchmarkFuzzSchedule measures the full differential pipeline for one
// schedule: generate, replay on every engine family at every level,
// normalize, stream-check, oracle-compare.
func BenchmarkFuzzSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := exerciser.Run(exerciser.Options{Seed: 1, Start: i, N: 1})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Violations() != 0 {
			b.Fatalf("oracle violation during bench:\n%s", rep.Detail())
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "schedules/sec")
}
