package phenomena

import (
	"reflect"
	"testing"

	"isolevel/internal/history"
)

// batchSet is Profile's key set, for comparison with the stream.
func batchSet(h history.History) map[ID]bool {
	out := map[ID]bool{}
	for id := range Profile(h) {
		out[id] = true
	}
	return out
}

func TestStreamMatchesBatchOnPaperHistories(t *testing.T) {
	cases := map[string]history.History{
		"H1":     history.H1(),
		"H2":     history.H2(),
		"H3":     history.H3(),
		"H4":     history.H4(),
		"H4C":    history.H4C(),
		"H5":     history.H5(),
		"H1SI":   history.H1SI(),
		"H1SISV": history.H1SISV(),
	}
	for name, h := range cases {
		if b, s := batchSet(h), StreamProfile(h); !reflect.DeepEqual(b, s) {
			t.Errorf("%s: batch %v != stream %v", name, b, s)
		}
	}
}

func TestStreamPerPhenomenon(t *testing.T) {
	cases := []struct {
		src  string
		want ID
	}{
		{"w1[x] w2[x] c1 c2", P0},
		{"w1[x] r2[x] c1 c2", P1},
		{"w1[x] r2[x] c2 a1", A1},
		{"r1[x] w2[x] c2 c1", P2},
		{"r1[x] w2[x] c2 r1[x] c1", A2},
		{"r1[P] w2[y in P] c2 c1", P3},
		{"r1[P] w2[y in P] c2 r1[P] c1", A3},
		{"r1[x] w2[x] w1[x] c1 c2", P4},
		{"rc1[x] w2[x] wc1[x] c1 c2", P4C},
		{"r1[x] w2[x] w2[y] c2 r1[y] c1", A5A},
		{"r1[x] r2[y] w1[y] w2[x] c1 c2", A5B},
	}
	for _, c := range cases {
		h := history.MustParse(c.src)
		if !StreamProfile(h)[c.want] {
			t.Errorf("%q: stream misses %s", c.src, c.want)
		}
		if !Exhibits(c.want, h) {
			t.Errorf("%q: batch misses %s (test case wrong)", c.src, c.want)
		}
	}
}

func TestStreamNegatives(t *testing.T) {
	cases := []struct {
		src string
		not ID
	}{
		// Terminal between the conflicting pair disarms the broad forms.
		{"w1[x] c1 w2[x] c2", P0},
		{"w1[x] a1 r2[x] c2", P1},
		{"r1[x] c1 w2[x] c2", P2},
		{"r1[P] c1 w2[y in P] c2", P3},
		// A1 needs writer abort AND reader commit.
		{"w1[x] r2[x] c2 c1", A1},
		{"w1[x] r2[x] a2 a1", A1},
		// A2 needs the reread after the writer's commit, then commit.
		{"r1[x] w2[x] r1[x] c2 c1", A2},
		{"r1[x] w2[x] c2 r1[x] a1", A2},
		// P4 needs T1 to commit.
		{"r1[x] w2[x] w1[x] a1 c2", P4},
		// A5A: the second read must come after the writer's commit.
		{"r1[x] w2[x] w2[y] r1[y] c2 c1", A5A},
		// A5B needs both to commit.
		{"r1[x] r2[y] w1[y] w2[x] c1 a2", A5B},
	}
	for _, c := range cases {
		h := history.MustParse(c.src)
		if StreamProfile(h)[c.not] {
			t.Errorf("%q: stream wrongly reports %s", c.src, c.not)
		}
		if Exhibits(c.not, h) {
			t.Errorf("%q: batch wrongly reports %s (test case wrong)", c.src, c.not)
		}
	}
}

// TestStreamIncremental checks Seen grows mid-history, not only at the end.
func TestStreamIncremental(t *testing.T) {
	s := NewStream()
	for _, op := range history.MustParse("w1[x] r2[x]") {
		s.Feed(op)
	}
	if !s.Exhibits(P1) {
		t.Error("P1 should be visible before any terminal arrives")
	}
	if s.Exhibits(A1) {
		t.Error("A1 needs the abort/commit pair")
	}
	for _, op := range history.MustParse("c2 a1") {
		s.Feed(op)
	}
	if !s.Exhibits(A1) {
		t.Error("A1 after reader commit + writer abort")
	}
}
