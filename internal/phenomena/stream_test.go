package phenomena

import (
	"reflect"
	"testing"

	"isolevel/internal/history"
)

// batchSet is Profile's key set, for comparison with the stream.
func batchSet(h history.History) map[ID]bool {
	out := map[ID]bool{}
	for id := range Profile(h) {
		out[id] = true
	}
	return out
}

func TestStreamMatchesBatchOnPaperHistories(t *testing.T) {
	cases := map[string]history.History{
		"H1":     history.H1(),
		"H2":     history.H2(),
		"H3":     history.H3(),
		"H4":     history.H4(),
		"H4C":    history.H4C(),
		"H5":     history.H5(),
		"H1SI":   history.H1SI(),
		"H1SISV": history.H1SISV(),
	}
	for name, h := range cases {
		if b, s := batchSet(h), StreamProfile(h); !reflect.DeepEqual(b, s) {
			t.Errorf("%s: batch %v != stream %v", name, b, s)
		}
	}
}

func TestStreamPerPhenomenon(t *testing.T) {
	cases := []struct {
		src  string
		want ID
	}{
		{"w1[x] w2[x] c1 c2", P0},
		{"w1[x] r2[x] c1 c2", P1},
		{"w1[x] r2[x] c2 a1", A1},
		{"r1[x] w2[x] c2 c1", P2},
		{"r1[x] w2[x] c2 r1[x] c1", A2},
		{"r1[P] w2[y in P] c2 c1", P3},
		{"r1[P] w2[y in P] c2 r1[P] c1", A3},
		{"r1[x] w2[x] w1[x] c1 c2", P4},
		{"rc1[x] w2[x] wc1[x] c1 c2", P4C},
		{"r1[x] w2[x] w2[y] c2 r1[y] c1", A5A},
		{"r1[x] r2[y] w1[y] w2[x] c1 c2", A5B},
	}
	for _, c := range cases {
		h := history.MustParse(c.src)
		if !StreamProfile(h)[c.want] {
			t.Errorf("%q: stream misses %s", c.src, c.want)
		}
		if !Exhibits(c.want, h) {
			t.Errorf("%q: batch misses %s (test case wrong)", c.src, c.want)
		}
	}
}

func TestStreamNegatives(t *testing.T) {
	cases := []struct {
		src string
		not ID
	}{
		// Terminal between the conflicting pair disarms the broad forms.
		{"w1[x] c1 w2[x] c2", P0},
		{"w1[x] a1 r2[x] c2", P1},
		{"r1[x] c1 w2[x] c2", P2},
		{"r1[P] c1 w2[y in P] c2", P3},
		// A1 needs writer abort AND reader commit.
		{"w1[x] r2[x] c2 c1", A1},
		{"w1[x] r2[x] a2 a1", A1},
		// A2 needs the reread after the writer's commit, then commit.
		{"r1[x] w2[x] r1[x] c2 c1", A2},
		{"r1[x] w2[x] c2 r1[x] a1", A2},
		// P4 needs T1 to commit.
		{"r1[x] w2[x] w1[x] a1 c2", P4},
		// A5A: the second read must come after the writer's commit.
		{"r1[x] w2[x] w2[y] r1[y] c2 c1", A5A},
		// A5B needs both to commit.
		{"r1[x] r2[y] w1[y] w2[x] c1 a2", A5B},
	}
	for _, c := range cases {
		h := history.MustParse(c.src)
		if StreamProfile(h)[c.not] {
			t.Errorf("%q: stream wrongly reports %s", c.src, c.not)
		}
		if Exhibits(c.not, h) {
			t.Errorf("%q: batch wrongly reports %s (test case wrong)", c.src, c.not)
		}
	}
}

// TestStreamIncremental checks Seen grows mid-history, not only at the end.
func TestStreamIncremental(t *testing.T) {
	s := NewStream()
	for _, op := range history.MustParse("w1[x] r2[x]") {
		s.Feed(op)
	}
	if !s.Exhibits(P1) {
		t.Error("P1 should be visible before any terminal arrives")
	}
	if s.Exhibits(A1) {
		t.Error("A1 needs the abort/commit pair")
	}
	for _, op := range history.MustParse("c2 a1") {
		s.Feed(op)
	}
	if !s.Exhibits(A1) {
		t.Error("A1 after reader commit + writer abort")
	}
}

// TestStreamAttributionMatchesBatch checks that the streaming checker
// attributes every phenomenon to exactly the transaction pairs the batch
// matchers report, over the paper histories plus shapes chosen to stress
// the identity-carrying state machines (multiple interveners, multiple
// victims, pairs that outlive their transactions).
func TestStreamAttributionMatchesBatch(t *testing.T) {
	cases := []string{
		// Paper shapes.
		"r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1",
		"r1[x=50] r2[x=50] w2[x=10] r2[y=50] w2[y=90] c2 r1[y=90] c1",
		"r1[P] w2[y in P] r2[z] w2[z] c2 r1[z] c1",
		"r1[x] r2[x] w2[x] c2 w1[x] c1",
		"rc1[x] r2[x] w2[x] c2 wc1[x] c1",
		"r1[x] r2[y] w1[y] w2[x] c1 c2",
		// Two distinct dirty writers of the same reader.
		"w1[x] r3[x] w2[y] r3[y] c3 a1 a2",
		// Two interveners in one lost update.
		"r1[x] w2[x] w3[x] w1[x] c1 c2 c3",
		// A2 with two committed overwriters armed by separate rereads.
		"r1[x] w2[x] c2 r1[x] w3[x] c3 r1[x] c1",
		// A3 with two committed predicate writers.
		"r1[P] w2[y in P] c2 r1[P] w3[z in P] c3 r1[P] c1",
		// A5A: two two-item writers skewing the same reader.
		"r1[x] w2[x] w2[y] c2 w3[x] w3[z] c3 r1[y] r1[z] c1",
		// A5B among three transactions: pairs (1,2) and (1,3).
		"r1[x] r2[y] r3[z] w1[y] w1[z] w2[x] w3[x] c1 c2 c3",
		// A1 in both terminal orders.
		"w1[x] r2[x] c2 a1",
		"w1[x] r2[x] a1",
		"w1[x] r2[x] w3[y] r2[y] a3 c2 a1",
		// P0 chain: three stacked uncommitted writers.
		"w1[x] w2[x] w3[x] c1 c2 c3",
	}
	for _, src := range cases {
		h := history.MustParse(src)
		batch := Attribution(h)
		stream := StreamAttribution(h)
		if !reflect.DeepEqual(batch, stream) {
			t.Errorf("%q:\n  batch  %v\n  stream %v", src, batch, stream)
		}
	}
}

// TestAttributionRoles pins the pair role convention (A = pattern's T1)
// for each identifier on its minimal history.
func TestAttributionRoles(t *testing.T) {
	cases := []struct {
		src  string
		id   ID
		want Pair
	}{
		{"w1[x] w2[x] c1 c2", P0, Pair{1, 2}},
		{"w2[x] r1[x] c2 c1", P1, Pair{2, 1}}, // A is the writer
		{"w2[x] r1[x] c1 a2", A1, Pair{2, 1}},
		{"r2[x] w1[x] c2 c1", P2, Pair{2, 1}}, // A is the reader
		{"r1[x] w2[x] c2 r1[x] c1", A2, Pair{1, 2}},
		{"r2[P] w1[y in P] c2 c1", P3, Pair{2, 1}},
		{"r1[P] w2[y in P] c2 r1[P] c1", A3, Pair{1, 2}},
		{"r2[x] w1[x] w2[x] c2 c1", P4, Pair{2, 1}},
		{"rc2[x] w1[x] wc2[x] c2 c1", P4C, Pair{2, 1}},
		{"r1[x] w2[x] w2[y] c2 r1[y] c1", A5A, Pair{1, 2}},
		{"r3[x] r2[y] w3[y] w2[x] c3 c2", A5B, Pair{2, 3}}, // normalized min/max
	}
	for _, c := range cases {
		h := history.MustParse(c.src)
		for name, attr := range map[string]map[ID]map[Pair]bool{
			"batch": Attribution(h), "stream": StreamAttribution(h),
		} {
			if !attr[c.id][c.want] {
				t.Errorf("%q: %s attribution of %s lacks %v (got %v)", c.src, name, c.id, c.want, attr[c.id])
			}
		}
	}
}
