package phenomena

import (
	"isolevel/internal/data"
	"isolevel/internal/history"
)

// Stream is the incremental phenomenon checker: it consumes a history one
// op at a time and maintains, per identifier, just enough state to decide
// whether the phenomenon has been exhibited so far. For every well-formed
// history, feeding all ops yields exactly the identifier set of the batch
// Profile — the streaming-vs-batch equivalence tests in this package and
// in internal/exerciser enforce that — but without the batch matchers'
// full-history rescans: per-op work is bounded by the number of live
// transactions touching the op's item, never by the history length, so
// fuzz campaigns can check long generated histories at bench speed.
//
// State is proportional to (live transactions × their footprints) plus,
// for the committed-pair anomalies (A1, A5B), compact per-transaction
// read/write summaries that survive commit.
type Stream struct {
	seen map[ID]bool
	seq  int
	term map[int]history.Kind // terminal kind, once a tx has one

	// Live-transaction index: which not-yet-terminated transactions have
	// written / read each item, and the reverse maps for O(footprint)
	// cleanup at terminals.
	activeWriters map[data.Key]map[int]bool
	activeReaders map[data.Key]map[int]bool
	touchedW      map[int]map[data.Key]bool
	touchedR      map[int]map[data.Key]bool

	// Predicate reads: registered under the read's first predicate name,
	// exactly like the batch P3/A3 matchers.
	activePredReaders map[string]map[int]bool
	touchedP          map[int]map[string]bool

	// A1: dirty-read pairs (writer -> readers and the reverse). A pair
	// fires when the writer has aborted and the reader has committed, in
	// either order, so pairs outlive the transactions.
	dirtyPairs map[int]map[int]bool
	dirtyRev   map[int]map[int]bool

	// A2: writer -> reader -> items the writer overwrote under the
	// reader's feet; promoted to a2Committed when the writer commits;
	// a reread of a promoted item arms the candidate flag, reported at
	// the reader's commit.
	a2Pending   map[int]map[int]map[data.Key]bool
	a2Committed map[int]map[data.Key]bool
	a2Candidate map[int]bool

	// A3: same shape over predicate names.
	a3Pending   map[int]map[int]map[string]bool
	a3Committed map[int]map[string]bool
	a3Candidate map[int]bool

	// P4/P4C: per (reader, item) lost-update state machine
	// read -> intervened (other-tx write) -> self write, reported at the
	// reader's commit.
	p4         map[int]map[data.Key]*luState
	p4Pending  map[int]bool
	p4cPending map[int]bool

	// A5A: per (writer t2, reader t1): the items x where t2 overwrote
	// t1's read, with the earliest such write's sequence number. When t2
	// commits, every item y != x that t2 wrote after one of those
	// overwrites becomes a watch: t1 reading it afterwards is read skew.
	a5aPairs map[int]map[int]map[data.Key]int
	a5aWatch map[int]map[data.Key]bool

	// A5B: per-transaction item read/write sequence lists, kept for
	// committed transactions so each new commit can be checked against
	// the earlier ones.
	reads     map[int]map[data.Key][]int
	writes    map[int]map[data.Key][]int
	committed []int
}

// NewStream returns an empty streaming checker.
func NewStream() *Stream {
	return &Stream{
		seen:              map[ID]bool{},
		term:              map[int]history.Kind{},
		activeWriters:     map[data.Key]map[int]bool{},
		activeReaders:     map[data.Key]map[int]bool{},
		touchedW:          map[int]map[data.Key]bool{},
		touchedR:          map[int]map[data.Key]bool{},
		activePredReaders: map[string]map[int]bool{},
		touchedP:          map[int]map[string]bool{},
		dirtyPairs:        map[int]map[int]bool{},
		dirtyRev:          map[int]map[int]bool{},
		a2Pending:         map[int]map[int]map[data.Key]bool{},
		a2Committed:       map[int]map[data.Key]bool{},
		a2Candidate:       map[int]bool{},
		a3Pending:         map[int]map[int]map[string]bool{},
		a3Committed:       map[int]map[string]bool{},
		a3Candidate:       map[int]bool{},
		p4:                map[int]map[data.Key]*luState{},
		p4Pending:         map[int]bool{},
		p4cPending:        map[int]bool{},
		a5aPairs:          map[int]map[int]map[data.Key]int{},
		a5aWatch:          map[int]map[data.Key]bool{},
		reads:             map[int]map[data.Key][]int{},
		writes:            map[int]map[data.Key][]int{},
	}
}

// luState is one (transaction, item) lost-update ladder.
type luState struct {
	read, readCur             bool // item was read (rc for the cursor rung)
	intervened, intervenedCur bool // another tx wrote after the read
}

// StreamProfile runs h through a fresh Stream and returns the exhibited
// identifier set — the streaming equivalent of the batch Profile's key set.
func StreamProfile(h history.History) map[ID]bool {
	s := NewStream()
	for _, op := range h {
		s.Feed(op)
	}
	return s.Seen()
}

// Seen returns a copy of the identifiers exhibited so far.
func (s *Stream) Seen() map[ID]bool {
	out := make(map[ID]bool, len(s.seen))
	for id := range s.seen {
		out[id] = true
	}
	return out
}

// Exhibits reports whether id has been exhibited by the ops fed so far.
func (s *Stream) Exhibits(id ID) bool { return s.seen[id] }

// Feed consumes the next op of the history. Ops of a transaction that
// already terminated are ignored (the batch matchers only see such ops in
// ill-formed histories, which Validate rejects).
func (s *Stream) Feed(op history.Op) {
	if _, done := s.term[op.Tx]; done {
		return
	}
	s.seq++
	switch {
	case op.Kind.IsTerminal():
		s.terminal(op.Tx, op.Kind)
	case op.Kind == history.PredRead:
		s.predRead(op)
	case op.Kind == history.Read || op.Kind == history.ReadCursor:
		s.itemRead(op)
	case op.Kind.IsWrite():
		s.write(op)
	}
}

func (s *Stream) itemRead(op history.Op) {
	t, item := op.Tx, op.Item
	// P1: the item has an uncommitted write by another transaction.
	for w := range s.activeWriters[item] {
		if w == t {
			continue
		}
		s.seen[P1] = true
		putPair(s.dirtyPairs, w, t)
		putPair(s.dirtyRev, t, w)
	}
	// A2: reread of an item a committed transaction overwrote under us.
	if s.a2Committed[t][item] {
		s.a2Candidate[t] = true
	}
	// A5A: read of the "other half" of a committed two-item update.
	if s.a5aWatch[t][item] {
		s.seen[A5A] = true
	}
	putItem(s.activeReaders, item, t)
	putKey(s.touchedR, t, item)
	st := s.lu(t, item)
	st.read = true
	if op.Kind == history.ReadCursor {
		st.readCur = true
	}
	m := s.reads[t]
	if m == nil {
		m = map[data.Key][]int{}
		s.reads[t] = m
	}
	m[item] = append(m[item], s.seq)
}

func (s *Stream) write(op history.Op) {
	t := op.Tx
	if item := op.Item; item != "" {
		// P0: the item has an uncommitted write by another transaction.
		for w := range s.activeWriters[item] {
			if w != t {
				s.seen[P0] = true
			}
		}
		// P2 + downstream (A2 pending, A5A overwrite-match): the item was
		// read by a still-active other transaction.
		for r := range s.activeReaders[item] {
			if r == t {
				continue
			}
			s.seen[P2] = true
			putKeyIn3(s.a2Pending, t, r, item)
			pairs := s.a5aPairs[t]
			if pairs == nil {
				pairs = map[int]map[data.Key]int{}
				s.a5aPairs[t] = pairs
			}
			matched := pairs[r]
			if matched == nil {
				matched = map[data.Key]int{}
				pairs[r] = matched
			}
			if _, ok := matched[item]; !ok {
				matched[item] = s.seq
			}
			// P4 intervention: the reader's lost-update ladder advances.
			if st := s.p4[r][item]; st != nil {
				if st.read {
					st.intervened = true
				}
				if st.readCur {
					st.intervenedCur = true
				}
			}
		}
		// Own write after an intervention completes the lost-update shape;
		// it becomes P4/P4C if the transaction goes on to commit.
		if st := s.p4[t][item]; st != nil {
			if st.intervened {
				s.p4Pending[t] = true
			}
			if st.intervenedCur {
				s.p4cPending[t] = true
			}
		}
		putItem(s.activeWriters, item, t)
		putKey(s.touchedW, t, item)
		m := s.writes[t]
		if m == nil {
			m = map[data.Key][]int{}
			s.writes[t] = m
		}
		m[item] = append(m[item], s.seq)
	}
	// P3: the write falls inside a predicate a still-active other
	// transaction has read (an item write annotated "in P", or a
	// predicate write naming P).
	for _, name := range op.Preds {
		for r := range s.activePredReaders[name] {
			if r == t {
				continue
			}
			s.seen[P3] = true
			putNameIn3(s.a3Pending, t, r, name)
		}
	}
}

func (s *Stream) predRead(op history.Op) {
	t := op.Tx
	// A3: re-evaluation of a predicate a committed transaction wrote into
	// under us. The batch matcher accepts the predicate in any position of
	// the reread's list, so check them all.
	for _, name := range op.Preds {
		if s.a3Committed[t][name] {
			s.a3Candidate[t] = true
		}
	}
	// Registration mirrors the batch P3/A3 matchers: the read is indexed
	// under its first predicate name only.
	if len(op.Preds) > 0 {
		name := op.Preds[0]
		set := s.activePredReaders[name]
		if set == nil {
			set = map[int]bool{}
			s.activePredReaders[name] = set
		}
		set[t] = true
		putName(s.touchedP, t, name)
	}
}

func (s *Stream) terminal(t int, kind history.Kind) {
	s.term[t] = kind
	if kind == history.Commit {
		// Promote A2/A3 overwrites made by t: its victims' rereads now
		// witness a committed change.
		for r, items := range s.a2Pending[t] {
			if _, done := s.term[r]; done {
				continue // the victim terminated first: no reread can follow
			}
			for item := range items {
				putKey(s.a2Committed, r, item)
			}
		}
		for r, names := range s.a3Pending[t] {
			if _, done := s.term[r]; done {
				continue
			}
			for name := range names {
				putName(s.a3Committed, r, name)
			}
		}
		// A5A: every item y that t wrote after overwriting some read item
		// x (y != x) becomes a watch for the overwritten reader.
		for r, matched := range s.a5aPairs[t] {
			if _, done := s.term[r]; done {
				continue
			}
			for y, seqs := range s.writes[t] {
				last := seqs[len(seqs)-1]
				for x, first := range matched {
					if x != y && first < last {
						putKey(s.a5aWatch, r, y)
						break
					}
				}
			}
		}
		// Anomalies armed earlier that required this commit.
		if s.a2Candidate[t] {
			s.seen[A2] = true
		}
		if s.a3Candidate[t] {
			s.seen[A3] = true
		}
		if s.p4Pending[t] {
			s.seen[P4] = true
		}
		if s.p4cPending[t] {
			s.seen[P4C] = true
		}
		// A1: t committed after reading a write that was rolled back.
		for w := range s.dirtyRev[t] {
			if s.term[w] == history.Abort {
				s.seen[A1] = true
			}
		}
		s.checkA5B(t)
		s.committed = append(s.committed, t)
	} else {
		// A1: t's write, read by an already-committed transaction, is now
		// rolled back.
		for r := range s.dirtyPairs[t] {
			if s.term[r] == history.Commit {
				s.seen[A1] = true
			}
		}
		// Aborted transactions can no longer contribute to the committed-
		// pair anomalies.
		delete(s.reads, t)
		delete(s.writes, t)
	}
	delete(s.a2Pending, t)
	delete(s.a3Pending, t)
	delete(s.a5aPairs, t)
	delete(s.a5aWatch, t)
	delete(s.a2Committed, t)
	delete(s.a3Committed, t)
	delete(s.a2Candidate, t)
	delete(s.a3Candidate, t)
	delete(s.p4, t)
	delete(s.p4Pending, t)
	delete(s.p4cPending, t)
	for item := range s.touchedW[t] {
		delete(s.activeWriters[item], t)
	}
	for item := range s.touchedR[t] {
		delete(s.activeReaders[item], t)
	}
	for name := range s.touchedP[t] {
		delete(s.activePredReaders[name], t)
	}
	delete(s.touchedW, t)
	delete(s.touchedR, t)
	delete(s.touchedP, t)
}

// checkA5B tests the freshly committed transaction b against every earlier
// committed transaction a for the write-skew shape: a read x and wrote y,
// b read y and wrote x (x != y), each read preceding the other side's
// first subsequent write of that item.
func (s *Stream) checkA5B(b int) {
	if s.seen[A5B] {
		return
	}
	for _, a := range s.committed {
		if s.a5bPair(a, b) {
			s.seen[A5B] = true
			return
		}
	}
}

func (s *Stream) a5bPair(a, b int) bool {
	for x, rax := range s.reads[a] {
		wbx := s.writes[b][x]
		if len(wbx) == 0 {
			continue
		}
		for y, rby := range s.reads[b] {
			if y == x {
				continue
			}
			way := s.writes[a][y]
			if len(way) == 0 {
				continue
			}
			// ∃ reads i of x by a, j of y by b such that a's first write of
			// y after i comes after j, and b's first write of x after j
			// comes after i — the batch matcher's "reads precede the
			// opposing writes" condition.
			for _, i := range rax {
				k1, ok := firstAfter(way, i)
				if !ok {
					continue
				}
				for _, j := range rby {
					if j >= k1 {
						continue
					}
					if k2, ok := firstAfter(wbx, j); ok && k2 > i {
						return true
					}
				}
			}
		}
	}
	return false
}

// firstAfter returns the first element of the ascending slice strictly
// greater than v.
func firstAfter(seqs []int, v int) (int, bool) {
	for _, s := range seqs {
		if s > v {
			return s, true
		}
	}
	return 0, false
}

func (s *Stream) lu(t int, item data.Key) *luState {
	m := s.p4[t]
	if m == nil {
		m = map[data.Key]*luState{}
		s.p4[t] = m
	}
	st := m[item]
	if st == nil {
		st = &luState{}
		m[item] = st
	}
	return st
}

func putPair(m map[int]map[int]bool, k, v int) {
	set := m[k]
	if set == nil {
		set = map[int]bool{}
		m[k] = set
	}
	set[v] = true
}

func putItem(m map[data.Key]map[int]bool, k data.Key, v int) {
	set := m[k]
	if set == nil {
		set = map[int]bool{}
		m[k] = set
	}
	set[v] = true
}

func putKey(m map[int]map[data.Key]bool, k int, v data.Key) {
	set := m[k]
	if set == nil {
		set = map[data.Key]bool{}
		m[k] = set
	}
	set[v] = true
}

func putName(m map[int]map[string]bool, k int, v string) {
	set := m[k]
	if set == nil {
		set = map[string]bool{}
		m[k] = set
	}
	set[v] = true
}

func putKeyIn3(m map[int]map[int]map[data.Key]bool, k1, k2 int, v data.Key) {
	m2 := m[k1]
	if m2 == nil {
		m2 = map[int]map[data.Key]bool{}
		m[k1] = m2
	}
	putKey(m2, k2, v)
}

func putNameIn3(m map[int]map[int]map[string]bool, k1, k2 int, v string) {
	m2 := m[k1]
	if m2 == nil {
		m2 = map[int]map[string]bool{}
		m[k1] = m2
	}
	putName(m2, k2, v)
}
