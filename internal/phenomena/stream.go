package phenomena

import (
	"sort"

	"isolevel/internal/data"
	"isolevel/internal/history"
)

// Stream is the incremental phenomenon checker: it consumes a history one
// op at a time and maintains, per identifier, just enough state to decide
// whether the phenomenon has been exhibited so far — and by which
// transaction pairs. For every well-formed history, feeding all ops yields
// exactly the identifier set of the batch Profile AND exactly the batch
// Attribution's pair sets — the streaming-vs-batch equivalence tests in
// this package and in internal/exerciser enforce both — but without the
// batch matchers' full-history rescans: per-op work is bounded by the
// number of live transactions touching the op's item, never by the history
// length, so fuzz campaigns can check long generated histories at bench
// speed.
//
// The pair attribution is what the per-transaction oracle of mixed
// isolation-level runs consumes: a phenomenon is only a violation when
// charged to a transaction whose own level forbids it, so "P1 happened"
// is not enough — the checker must know which transaction read whose
// dirty write.
//
// State is proportional to (live transactions × their footprints) plus,
// for the committed-pair anomalies (A1, A5B), compact per-transaction
// read/write summaries that survive commit.
type Stream struct {
	seen  map[ID]bool
	pairs map[ID]map[Pair]bool
	seq   int
	term  map[int]history.Kind // terminal kind, once a tx has one

	// Live-transaction index: which not-yet-terminated transactions have
	// written / read each item, and the reverse maps for O(footprint)
	// cleanup at terminals.
	activeWriters map[data.Key]map[int]bool
	activeReaders map[data.Key]map[int]bool
	touchedW      map[int]map[data.Key]bool
	touchedR      map[int]map[data.Key]bool

	// Predicate reads: registered under the read's first predicate name,
	// exactly like the batch P3/A3 matchers.
	activePredReaders map[string]map[int]bool
	touchedP          map[int]map[string]bool

	// A1: dirty-read pairs (writer -> readers and the reverse). A pair
	// fires when the writer has aborted and the reader has committed, in
	// either order, so pairs outlive the transactions.
	dirtyPairs map[int]map[int]bool
	dirtyRev   map[int]map[int]bool

	// A2: writer -> reader -> items the writer overwrote under the
	// reader's feet; promoted to a2Committed (reader -> item -> writers)
	// when the writer commits; a reread of a promoted item arms the
	// (reader, writer) candidate pairs, reported at the reader's commit.
	a2Pending   map[int]map[int]map[data.Key]bool
	a2Committed map[int]map[data.Key]map[int]bool
	a2Candidate map[int]map[int]bool

	// A3: same shape over predicate names.
	a3Pending   map[int]map[int]map[string]bool
	a3Committed map[int]map[string]map[int]bool
	a3Candidate map[int]map[int]bool

	// P4/P4C: per (reader, item) lost-update state machine
	// read -> intervened (other-tx write, identity kept) -> self write,
	// reported per intervener at the reader's commit.
	p4 map[int]map[data.Key]*luState
	// p4Pending / p4cPendingBy: interveners of the plain / cursor rung,
	// pending the reader's commit.
	p4Pending    map[int]map[int]bool
	p4cPendingBy map[int]map[int]bool

	// A5A: per (writer t2, reader t1): the items x where t2 overwrote
	// t1's read, with the earliest such write's sequence number. When t2
	// commits, every item y != x that t2 wrote after one of those
	// overwrites becomes a watch (keeping t2's identity): t1 reading it
	// afterwards is read skew by (t1, t2).
	a5aPairs map[int]map[int]map[data.Key]int
	a5aWatch map[int]map[data.Key]map[int]bool

	// A5B: per-transaction item read/write sequence lists, kept for
	// committed transactions so each new commit can be checked against
	// the earlier ones.
	reads     map[int]map[data.Key][]int
	writes    map[int]map[data.Key][]int
	committed []int
}

// NewStream returns an empty streaming checker.
func NewStream() *Stream {
	return &Stream{
		seen:              map[ID]bool{},
		pairs:             map[ID]map[Pair]bool{},
		term:              map[int]history.Kind{},
		activeWriters:     map[data.Key]map[int]bool{},
		activeReaders:     map[data.Key]map[int]bool{},
		touchedW:          map[int]map[data.Key]bool{},
		touchedR:          map[int]map[data.Key]bool{},
		activePredReaders: map[string]map[int]bool{},
		touchedP:          map[int]map[string]bool{},
		dirtyPairs:        map[int]map[int]bool{},
		dirtyRev:          map[int]map[int]bool{},
		a2Pending:         map[int]map[int]map[data.Key]bool{},
		a2Committed:       map[int]map[data.Key]map[int]bool{},
		a2Candidate:       map[int]map[int]bool{},
		a3Pending:         map[int]map[int]map[string]bool{},
		a3Committed:       map[int]map[string]map[int]bool{},
		a3Candidate:       map[int]map[int]bool{},
		p4:                map[int]map[data.Key]*luState{},
		p4Pending:         map[int]map[int]bool{},
		p4cPendingBy:      map[int]map[int]bool{},
		a5aPairs:          map[int]map[int]map[data.Key]int{},
		a5aWatch:          map[int]map[data.Key]map[int]bool{},
		reads:             map[int]map[data.Key][]int{},
		writes:            map[int]map[data.Key][]int{},
	}
}

// luState is one (transaction, item) lost-update ladder. by / byCur hold
// the identities of the transactions that wrote the item after this
// transaction's plain / cursor read of it.
type luState struct {
	read, readCur bool // item was read (rc for the cursor rung)
	by, byCur     map[int]bool
}

// StreamProfile runs h through a fresh Stream and returns the exhibited
// identifier set — the streaming equivalent of the batch Profile's key set.
func StreamProfile(h history.History) map[ID]bool {
	s := NewStream()
	for _, op := range h {
		s.Feed(op)
	}
	return s.Seen()
}

// StreamAttribution runs h through a fresh Stream and returns the
// exhibited identifiers with their participating transaction pairs — the
// streaming equivalent of the batch Attribution.
func StreamAttribution(h history.History) map[ID]map[Pair]bool {
	s := NewStream()
	for _, op := range h {
		s.Feed(op)
	}
	return s.Pairs()
}

// Seen returns a copy of the identifiers exhibited so far.
func (s *Stream) Seen() map[ID]bool {
	out := make(map[ID]bool, len(s.seen))
	for id := range s.seen {
		out[id] = true
	}
	return out
}

// Pairs returns a copy of the participating transaction pairs per
// exhibited identifier.
func (s *Stream) Pairs() map[ID]map[Pair]bool {
	out := make(map[ID]map[Pair]bool, len(s.pairs))
	for id, set := range s.pairs {
		cp := make(map[Pair]bool, len(set))
		for p := range set {
			cp[p] = true
		}
		out[id] = cp
	}
	return out
}

// PairsOf returns the pairs of one identifier, sorted (A, then B), for
// deterministic reports.
func (s *Stream) PairsOf(id ID) []Pair {
	set := s.pairs[id]
	out := make([]Pair, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Exhibits reports whether id has been exhibited by the ops fed so far.
func (s *Stream) Exhibits(id ID) bool { return s.seen[id] }

// hit records one attributed occurrence.
func (s *Stream) hit(id ID, a, b int) {
	s.seen[id] = true
	set := s.pairs[id]
	if set == nil {
		set = map[Pair]bool{}
		s.pairs[id] = set
	}
	set[Pair{a, b}] = true
}

// Feed consumes the next op of the history. Ops of a transaction that
// already terminated are ignored (the batch matchers only see such ops in
// ill-formed histories, which Validate rejects).
func (s *Stream) Feed(op history.Op) {
	if _, done := s.term[op.Tx]; done {
		return
	}
	s.seq++
	switch {
	case op.Kind.IsTerminal():
		s.terminal(op.Tx, op.Kind)
	case op.Kind == history.PredRead:
		s.predRead(op)
	case op.Kind == history.Read || op.Kind == history.ReadCursor:
		s.itemRead(op)
	case op.Kind.IsWrite():
		s.write(op)
	}
}

func (s *Stream) itemRead(op history.Op) {
	t, item := op.Tx, op.Item
	// P1: the item has an uncommitted write by another transaction.
	for w := range s.activeWriters[item] {
		if w == t {
			continue
		}
		s.hit(P1, w, t)
		putPair(s.dirtyPairs, w, t)
		putPair(s.dirtyRev, t, w)
	}
	// A2: reread of an item a committed transaction overwrote under us.
	for w := range s.a2Committed[t][item] {
		putPair(s.a2Candidate, t, w)
	}
	// A5A: read of the "other half" of a committed two-item update.
	for w := range s.a5aWatch[t][item] {
		s.hit(A5A, t, w)
	}
	putItem(s.activeReaders, item, t)
	putKey(s.touchedR, t, item)
	st := s.lu(t, item)
	st.read = true
	if op.Kind == history.ReadCursor {
		st.readCur = true
	}
	m := s.reads[t]
	if m == nil {
		m = map[data.Key][]int{}
		s.reads[t] = m
	}
	m[item] = append(m[item], s.seq)
}

func (s *Stream) write(op history.Op) {
	t := op.Tx
	if item := op.Item; item != "" {
		// P0: the item has an uncommitted write by another transaction.
		for w := range s.activeWriters[item] {
			if w != t {
				s.hit(P0, w, t)
			}
		}
		// P2 + downstream (A2 pending, A5A overwrite-match): the item was
		// read by a still-active other transaction.
		for r := range s.activeReaders[item] {
			if r == t {
				continue
			}
			s.hit(P2, r, t)
			putKeyIn3(s.a2Pending, t, r, item)
			pairs := s.a5aPairs[t]
			if pairs == nil {
				pairs = map[int]map[data.Key]int{}
				s.a5aPairs[t] = pairs
			}
			matched := pairs[r]
			if matched == nil {
				matched = map[data.Key]int{}
				pairs[r] = matched
			}
			if _, ok := matched[item]; !ok {
				matched[item] = s.seq
			}
			// P4 intervention: the reader's lost-update ladder advances,
			// remembering who intervened.
			if st := s.p4[r][item]; st != nil {
				if st.read {
					if st.by == nil {
						st.by = map[int]bool{}
					}
					st.by[t] = true
				}
				if st.readCur {
					if st.byCur == nil {
						st.byCur = map[int]bool{}
					}
					st.byCur[t] = true
				}
			}
		}
		// Own write after an intervention completes the lost-update shape;
		// it becomes P4/P4C against each intervener if the transaction goes
		// on to commit.
		if st := s.p4[t][item]; st != nil {
			for w := range st.by {
				putPair(s.p4Pending, t, w)
			}
			for w := range st.byCur {
				putPair(s.p4cPendingBy, t, w)
			}
		}
		putItem(s.activeWriters, item, t)
		putKey(s.touchedW, t, item)
		m := s.writes[t]
		if m == nil {
			m = map[data.Key][]int{}
			s.writes[t] = m
		}
		m[item] = append(m[item], s.seq)
	}
	// P3: the write falls inside a predicate a still-active other
	// transaction has read (an item write annotated "in P", or a
	// predicate write naming P).
	for _, name := range op.Preds {
		for r := range s.activePredReaders[name] {
			if r == t {
				continue
			}
			s.hit(P3, r, t)
			putNameIn3(s.a3Pending, t, r, name)
		}
	}
}

func (s *Stream) predRead(op history.Op) {
	t := op.Tx
	// A3: re-evaluation of a predicate a committed transaction wrote into
	// under us. The batch matcher accepts the predicate in any position of
	// the reread's list, so check them all.
	for _, name := range op.Preds {
		for w := range s.a3Committed[t][name] {
			putPair(s.a3Candidate, t, w)
		}
	}
	// Registration mirrors the batch P3/A3 matchers: the read is indexed
	// under its first predicate name only.
	if len(op.Preds) > 0 {
		name := op.Preds[0]
		set := s.activePredReaders[name]
		if set == nil {
			set = map[int]bool{}
			s.activePredReaders[name] = set
		}
		set[t] = true
		putName(s.touchedP, t, name)
	}
}

func (s *Stream) terminal(t int, kind history.Kind) {
	s.term[t] = kind
	if kind == history.Commit {
		// Promote A2/A3 overwrites made by t: its victims' rereads now
		// witness a committed change.
		for r, items := range s.a2Pending[t] {
			if _, done := s.term[r]; done {
				continue // the victim terminated first: no reread can follow
			}
			for item := range items {
				putTxIn3(s.a2Committed, r, item, t)
			}
		}
		for r, names := range s.a3Pending[t] {
			if _, done := s.term[r]; done {
				continue
			}
			for name := range names {
				putTxIn3(s.a3Committed, r, name, t)
			}
		}
		// A5A: every item y that t wrote after overwriting some read item
		// x (y != x) becomes a watch, by t, for the overwritten reader.
		for r, matched := range s.a5aPairs[t] {
			if _, done := s.term[r]; done {
				continue
			}
			for y, seqs := range s.writes[t] {
				last := seqs[len(seqs)-1]
				for x, first := range matched {
					if x != y && first < last {
						putTxIn3(s.a5aWatch, r, y, t)
						break
					}
				}
			}
		}
		// Anomalies armed earlier that required this commit.
		for w := range s.a2Candidate[t] {
			s.hit(A2, t, w)
		}
		for w := range s.a3Candidate[t] {
			s.hit(A3, t, w)
		}
		for w := range s.p4Pending[t] {
			s.hit(P4, t, w)
		}
		for w := range s.p4cPendingBy[t] {
			s.hit(P4C, t, w)
		}
		// A1: t committed after reading a write that was rolled back.
		for w := range s.dirtyRev[t] {
			if s.term[w] == history.Abort {
				s.hit(A1, w, t)
			}
		}
		s.checkA5B(t)
		s.committed = append(s.committed, t)
	} else {
		// A1: t's write, read by an already-committed transaction, is now
		// rolled back.
		for r := range s.dirtyPairs[t] {
			if s.term[r] == history.Commit {
				s.hit(A1, t, r)
			}
		}
		// Aborted transactions can no longer contribute to the committed-
		// pair anomalies.
		delete(s.reads, t)
		delete(s.writes, t)
	}
	delete(s.a2Pending, t)
	delete(s.a3Pending, t)
	delete(s.a5aPairs, t)
	delete(s.a5aWatch, t)
	delete(s.a2Committed, t)
	delete(s.a3Committed, t)
	delete(s.a2Candidate, t)
	delete(s.a3Candidate, t)
	delete(s.p4, t)
	delete(s.p4Pending, t)
	delete(s.p4cPendingBy, t)
	for item := range s.touchedW[t] {
		delete(s.activeWriters[item], t)
	}
	for item := range s.touchedR[t] {
		delete(s.activeReaders[item], t)
	}
	for name := range s.touchedP[t] {
		delete(s.activePredReaders[name], t)
	}
	delete(s.touchedW, t)
	delete(s.touchedR, t)
	delete(s.touchedP, t)
}

// checkA5B tests the freshly committed transaction b against every earlier
// committed transaction a for the write-skew shape: a read x and wrote y,
// b read y and wrote x (x != y), each read preceding the other side's
// first subsequent write of that item. The pattern is symmetric in its
// two roles, so one orientation per pair suffices; pairs are normalized
// (min, max) like the batch matcher's t1 < t2 emission rule.
func (s *Stream) checkA5B(b int) {
	for _, a := range s.committed {
		if s.a5bPair(a, b) {
			if a < b {
				s.hit(A5B, a, b)
			} else {
				s.hit(A5B, b, a)
			}
		}
	}
}

func (s *Stream) a5bPair(a, b int) bool {
	for x, rax := range s.reads[a] {
		wbx := s.writes[b][x]
		if len(wbx) == 0 {
			continue
		}
		for y, rby := range s.reads[b] {
			if y == x {
				continue
			}
			way := s.writes[a][y]
			if len(way) == 0 {
				continue
			}
			// ∃ reads i of x by a, j of y by b such that a's first write of
			// y after i comes after j, and b's first write of x after j
			// comes after i — the batch matcher's "reads precede the
			// opposing writes" condition.
			for _, i := range rax {
				k1, ok := firstAfter(way, i)
				if !ok {
					continue
				}
				for _, j := range rby {
					if j >= k1 {
						continue
					}
					if k2, ok := firstAfter(wbx, j); ok && k2 > i {
						return true
					}
				}
			}
		}
	}
	return false
}

// firstAfter returns the first element of the ascending slice strictly
// greater than v.
func firstAfter(seqs []int, v int) (int, bool) {
	for _, s := range seqs {
		if s > v {
			return s, true
		}
	}
	return 0, false
}

func (s *Stream) lu(t int, item data.Key) *luState {
	m := s.p4[t]
	if m == nil {
		m = map[data.Key]*luState{}
		s.p4[t] = m
	}
	st := m[item]
	if st == nil {
		st = &luState{}
		m[item] = st
	}
	return st
}

// putTxIn3 records t under m[k1][k2], creating the nested maps — the
// shared shape of the a2Committed / a3Committed / a5aWatch promotions.
func putTxIn3[K comparable](m map[int]map[K]map[int]bool, k1 int, k2 K, t int) {
	byKey := m[k1]
	if byKey == nil {
		byKey = map[K]map[int]bool{}
		m[k1] = byKey
	}
	set := byKey[k2]
	if set == nil {
		set = map[int]bool{}
		byKey[k2] = set
	}
	set[t] = true
}

func putPair(m map[int]map[int]bool, k, v int) {
	set := m[k]
	if set == nil {
		set = map[int]bool{}
		m[k] = set
	}
	set[v] = true
}

func putItem(m map[data.Key]map[int]bool, k data.Key, v int) {
	set := m[k]
	if set == nil {
		set = map[int]bool{}
		m[k] = set
	}
	set[v] = true
}

func putKey(m map[int]map[data.Key]bool, k int, v data.Key) {
	set := m[k]
	if set == nil {
		set = map[data.Key]bool{}
		m[k] = set
	}
	set[v] = true
}

func putName(m map[int]map[string]bool, k int, v string) {
	set := m[k]
	if set == nil {
		set = map[string]bool{}
		m[k] = set
	}
	set[v] = true
}

func putKeyIn3(m map[int]map[int]map[data.Key]bool, k1, k2 int, v data.Key) {
	m2 := m[k1]
	if m2 == nil {
		m2 = map[int]map[data.Key]bool{}
		m[k1] = m2
	}
	putKey(m2, k2, v)
}

func putNameIn3(m map[int]map[int]map[string]bool, k1, k2 int, v string) {
	m2 := m[k1]
	if m2 == nil {
		m2 = map[int]map[string]bool{}
		m[k1] = m2
	}
	putName(m2, k2, v)
}
