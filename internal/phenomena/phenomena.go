// Package phenomena turns the paper's phenomenon and anomaly definitions
// into executable pattern matchers over histories.
//
// The paper distinguishes broad interpretations (phenomena, P-numbers):
// action subsequences that *might* lead to anomalous behavior, from strict
// interpretations (anomalies, A-numbers): subsequences where something
// anomalous actually *has* happened (§2.2, §3). Section 3's Remark 5 gives
// the final forms, dropping the (c2 or a2) clauses that do not restrict
// histories:
//
//	P0: w1[x]...w2[x]...(c1 or a1)            Dirty Write
//	P1: w1[x]...r2[x]...(c1 or a1)            Dirty Read
//	P2: r1[x]...w2[x]...(c1 or a1)            Fuzzy / Non-Repeatable Read
//	P3: r1[P]...w2[y in P]...(c1 or a1)       Phantom
//	A1: w1[x]...r2[x]...(a1 and c2 either order)
//	A2: r1[x]...w2[x]...c2...r1[x]...c1
//	A3: r1[P]...w2[y in P]...c2...r1[P]...c1
//	P4: r1[x]...w2[x]...w1[x]...c1            Lost Update (§4.1)
//	P4C: rc1[x]...w2[x]...w1[x]...c1          Cursor Lost Update (§4.1)
//	A5A: r1[x]...w2[x]...w2[y]...c2...r1[y]...(c1 or a1)   Read Skew (§4.2)
//	A5B: r1[x]...r2[y]...w1[y]...w2[x]...(c1 and c2)       Write Skew (§4.2)
//
// Following the paper, a transaction that never terminates inside the given
// history is treated as still active; the "...(c1 or a1)" tail is satisfied
// if T1's terminal comes after the matched prefix or does not occur at all
// (the phenomenon has already happened; only an intervening terminal
// between the two conflicting actions disarms it).
//
//isolint:deterministic
package phenomena

import (
	"fmt"

	"isolevel/internal/history"
)

// ID names a phenomenon or anomaly from the paper.
type ID string

// The paper's phenomena (broad interpretations) and anomalies (strict).
const (
	P0  ID = "P0"  // Dirty Write
	P1  ID = "P1"  // Dirty Read (broad)
	A1  ID = "A1"  // Dirty Read (strict)
	P2  ID = "P2"  // Fuzzy Read (broad)
	A2  ID = "A2"  // Fuzzy Read (strict)
	P3  ID = "P3"  // Phantom (broad)
	A3  ID = "A3"  // Phantom (strict)
	P4  ID = "P4"  // Lost Update
	P4C ID = "P4C" // Cursor Lost Update
	A5A ID = "A5A" // Read Skew
	A5B ID = "A5B" // Write Skew
)

// All lists every matcher-backed identifier in presentation order
// (the column order of the paper's Table 4, plus the strict anomalies).
var All = []ID{P0, P1, A1, P2, A2, P3, A3, P4, P4C, A5A, A5B}

// Name returns the paper's prose name for the identifier.
func Name(id ID) string {
	switch id {
	case P0:
		return "Dirty Write"
	case P1, A1:
		return "Dirty Read"
	case P2, A2:
		return "Fuzzy Read"
	case P3, A3:
		return "Phantom"
	case P4:
		return "Lost Update"
	case P4C:
		return "Cursor Lost Update"
	case A5A:
		return "Read Skew"
	case A5B:
		return "Write Skew"
	}
	return string(id)
}

// Pair names the two transactions participating in a phenomenon, in the
// pattern's subscript order: A is the pattern's T1, B its T2. Every
// phenomenon and anomaly of the paper is a two-transaction pattern, so a
// pair fully attributes a match. Which participant a phenomenon is
// *charged* to — whose lock protocol was supposed to prevent it — is the
// per-transaction oracle's concern (internal/exerciser), not this
// package's; here A/B are purely positional:
//
//	P0:  A overwritten first writer, B second writer
//	P1:  A dirty writer,             B reader
//	A1:  A rolled-back writer,       B committed reader
//	P2:  A reader,                   B overwriter
//	A2:  A rereading reader,         B committed overwriter
//	P3:  A predicate reader,         B writer into the predicate
//	A3:  A re-evaluating reader,     B committed writer into the predicate
//	P4:  A read-modify-write committer, B intervening writer
//	P4C: A cursor read-modify-write committer, B intervening writer
//	A5A: A skewed reader,            B two-item committed writer
//	A5B: the two skewed writers, normalized A < B (the pattern is
//	     symmetric, so role order carries no information)
type Pair struct {
	A, B int
}

func (p Pair) String() string { return fmt.Sprintf("T%d/T%d", p.A, p.B) }

// Match records one occurrence of a phenomenon in a history: the indices of
// the ops forming the pattern, in pattern order, and the participating
// transaction pair.
type Match struct {
	ID      ID
	OpIdx   []int
	Txs     Pair
	Comment string
}

func (m Match) String() string {
	return fmt.Sprintf("%s at ops %v%s", m.ID, m.OpIdx, optComment(m.Comment))
}

func optComment(c string) string {
	if c == "" {
		return ""
	}
	return " (" + c + ")"
}

// Detect runs the matcher for id over h.
func Detect(id ID, h history.History) []Match {
	switch id {
	case P0:
		return DetectP0(h)
	case P1:
		return DetectP1(h)
	case A1:
		return DetectA1(h)
	case P2:
		return DetectP2(h)
	case A2:
		return DetectA2(h)
	case P3:
		return DetectP3(h)
	case A3:
		return DetectA3(h)
	case P4:
		return DetectP4(h)
	case P4C:
		return DetectP4C(h)
	case A5A:
		return DetectA5A(h)
	case A5B:
		return DetectA5B(h)
	}
	return nil
}

// Exhibits reports whether h contains at least one occurrence of id.
func Exhibits(id ID, h history.History) bool { return len(Detect(id, h)) > 0 }

// Profile returns every identifier h exhibits together with the matches
// that witness it (only exhibited identifiers appear as keys). Callers
// that need the evidence — the CLI's check command above all — reuse the
// returned matches instead of re-running Detect per identifier.
func Profile(h history.History) map[ID][]Match {
	out := map[ID][]Match{}
	for _, id := range All {
		if ms := Detect(id, h); len(ms) > 0 {
			out[id] = ms
		}
	}
	return out
}

// Attribution returns, per exhibited identifier, the set of participating
// transaction pairs — the batch equivalent of Stream.Pairs, and the shape
// the per-transaction oracle consumes.
func Attribution(h history.History) map[ID]map[Pair]bool {
	out := map[ID]map[Pair]bool{}
	for id, ms := range Profile(h) {
		set := map[Pair]bool{}
		for _, m := range ms {
			set[m.Txs] = true
		}
		out[id] = set
	}
	return out
}

// terminalBetween reports whether tx's commit/abort occurs strictly inside
// the open interval (i, j) of history indices.
func terminalBetween(h history.History, tx, i, j int) bool {
	for k := i + 1; k < j; k++ {
		if h[k].Tx == tx && h[k].Kind.IsTerminal() {
			return true
		}
	}
	return false
}

// isItemWrite reports whether the op writes the specific item (w, wc, or d
// — a delete conflicts with reads and writes of its item like any write).
func isItemWrite(op history.Op) bool {
	return op.Kind == history.Write || op.Kind == history.WriteCursor || op.Kind == history.Delete
}

// isItemRead reports whether the op reads the specific item (r or rc).
func isItemRead(op history.Op) bool {
	return op.Kind == history.Read || op.Kind == history.ReadCursor
}

// DetectP0 finds Dirty Writes: w1[x]...w2[x] with T1 still active in
// between (no c1/a1 separating them), T1 != T2.
func DetectP0(h history.History) []Match {
	var out []Match
	for i, a := range h {
		if !isItemWrite(a) {
			continue
		}
		for j := i + 1; j < len(h); j++ {
			b := h[j]
			if b.Tx == a.Tx && b.Kind.IsTerminal() {
				break // T1 terminated; later writes are not dirty w.r.t. this one
			}
			if isItemWrite(b) && b.Item == a.Item && b.Tx != a.Tx {
				out = append(out, Match{ID: P0, OpIdx: []int{i, j}, Txs: Pair{a.Tx, b.Tx},
					Comment: fmt.Sprintf("T%d overwrites T%d's uncommitted write of %s", b.Tx, a.Tx, a.Item)})
			}
		}
	}
	return out
}

// DetectP1 finds Dirty Reads (broad): w1[x]...r2[x] with T1 still active.
func DetectP1(h history.History) []Match {
	var out []Match
	for i, a := range h {
		if !isItemWrite(a) {
			continue
		}
		for j := i + 1; j < len(h); j++ {
			b := h[j]
			if b.Tx == a.Tx && b.Kind.IsTerminal() {
				break
			}
			if isItemRead(b) && b.Item == a.Item && b.Tx != a.Tx {
				out = append(out, Match{ID: P1, OpIdx: []int{i, j}, Txs: Pair{a.Tx, b.Tx},
					Comment: fmt.Sprintf("T%d reads T%d's uncommitted write of %s", b.Tx, a.Tx, a.Item)})
			}
		}
	}
	return out
}

// DetectA1 finds strict Dirty Reads: w1[x]...r2[x]...(a1 and c2 in either
// order) — the write is rolled back after being read, and the reader
// commits.
func DetectA1(h history.History) []Match {
	aborted := h.Aborted()
	committed := h.Committed()
	var out []Match
	for _, m := range DetectP1(h) {
		wIdx, rIdx := m.OpIdx[0], m.OpIdx[1]
		w, r := h[wIdx], h[rIdx]
		if aborted[w.Tx] && committed[r.Tx] {
			out = append(out, Match{ID: A1, OpIdx: m.OpIdx, Txs: Pair{w.Tx, r.Tx},
				Comment: fmt.Sprintf("T%d read data T%d later rolled back", r.Tx, w.Tx)})
		}
	}
	return out
}

// DetectP2 finds Fuzzy Reads (broad): r1[x]...w2[x] with T1 still active.
func DetectP2(h history.History) []Match {
	var out []Match
	for i, a := range h {
		if !isItemRead(a) {
			continue
		}
		for j := i + 1; j < len(h); j++ {
			b := h[j]
			if b.Tx == a.Tx && b.Kind.IsTerminal() {
				break
			}
			if isItemWrite(b) && b.Item == a.Item && b.Tx != a.Tx {
				out = append(out, Match{ID: P2, OpIdx: []int{i, j}, Txs: Pair{a.Tx, b.Tx},
					Comment: fmt.Sprintf("T%d overwrites %s read by still-active T%d", b.Tx, a.Item, a.Tx)})
			}
		}
	}
	return out
}

// DetectA2 finds strict Fuzzy Reads: r1[x]...w2[x]...c2...r1[x]...c1 —
// the same transaction rereads the item after the modifier committed, and
// itself commits.
func DetectA2(h history.History) []Match {
	var out []Match
	for i, r1 := range h {
		if !isItemRead(r1) {
			continue
		}
		for j := i + 1; j < len(h); j++ {
			w2 := h[j]
			if w2.Tx == r1.Tx && w2.Kind.IsTerminal() {
				break
			}
			if !isItemWrite(w2) || w2.Item != r1.Item || w2.Tx == r1.Tx {
				continue
			}
			c2 := h.TerminalIndex(w2.Tx)
			if c2 < 0 || h[c2].Kind != history.Commit || c2 < j {
				continue
			}
			c1 := h.TerminalIndex(r1.Tx)
			if c1 < 0 || h[c1].Kind != history.Commit {
				continue
			}
			for k := c2 + 1; k < c1; k++ {
				rr := h[k]
				if rr.Tx == r1.Tx && isItemRead(rr) && rr.Item == r1.Item {
					out = append(out, Match{ID: A2, OpIdx: []int{i, j, c2, k, c1}, Txs: Pair{r1.Tx, w2.Tx},
						Comment: fmt.Sprintf("T%d rereads %s after T%d's committed update", r1.Tx, r1.Item, w2.Tx)})
				}
			}
		}
	}
	return out
}

// DetectP3 finds Phantoms (broad): r1[P]...w2[y in P] with T1 still active.
// The write may be an item write annotated as falling in P, or a predicate
// write on P itself. Per Remark 5 the write can be an insert, update, or
// delete.
func DetectP3(h history.History) []Match {
	var out []Match
	for i, a := range h {
		if a.Kind != history.PredRead {
			continue
		}
		pred := a.Preds[0]
		for j := i + 1; j < len(h); j++ {
			b := h[j]
			if b.Tx == a.Tx && b.Kind.IsTerminal() {
				break
			}
			if b.Tx == a.Tx || !b.Kind.IsWrite() {
				continue
			}
			if b.InPred(pred) || (b.Kind == history.PredWrite && b.InPred(pred)) {
				out = append(out, Match{ID: P3, OpIdx: []int{i, j}, Txs: Pair{a.Tx, b.Tx},
					Comment: fmt.Sprintf("T%d writes into predicate %s read by still-active T%d", b.Tx, pred, a.Tx)})
			}
		}
	}
	return out
}

// DetectA3 finds strict Phantoms: r1[P]...w2[y in P]...c2...r1[P]...c1.
func DetectA3(h history.History) []Match {
	var out []Match
	for i, r1 := range h {
		if r1.Kind != history.PredRead {
			continue
		}
		pred := r1.Preds[0]
		for j := i + 1; j < len(h); j++ {
			w2 := h[j]
			if w2.Tx == r1.Tx && w2.Kind.IsTerminal() {
				break
			}
			if w2.Tx == r1.Tx || !w2.Kind.IsWrite() || !w2.InPred(pred) {
				continue
			}
			c2 := h.TerminalIndex(w2.Tx)
			if c2 < 0 || h[c2].Kind != history.Commit || c2 < j {
				continue
			}
			c1 := h.TerminalIndex(r1.Tx)
			if c1 < 0 || h[c1].Kind != history.Commit {
				continue
			}
			for k := c2 + 1; k < c1; k++ {
				rr := h[k]
				if rr.Tx == r1.Tx && rr.Kind == history.PredRead && rr.InPred(pred) {
					out = append(out, Match{ID: A3, OpIdx: []int{i, j, c2, k, c1}, Txs: Pair{r1.Tx, w2.Tx},
						Comment: fmt.Sprintf("T%d re-evaluates %s after T%d's committed write into it", r1.Tx, pred, w2.Tx)})
				}
			}
		}
	}
	return out
}

// DetectP4 finds Lost Updates: r1[x]...w2[x]...w1[x]...c1. T2 need not have
// committed for the pattern (H4 has c2 before w1[x], but the definition
// does not require it).
func DetectP4(h history.History) []Match {
	return detectLostUpdate(h, P4, func(op history.Op) bool { return isItemRead(op) })
}

// DetectP4C finds Cursor Lost Updates: rc1[x]...w2[x]...w1[x]...c1, where
// the first read is through a cursor (rc) and T1's write may be wc or w.
func DetectP4C(h history.History) []Match {
	return detectLostUpdate(h, P4C, func(op history.Op) bool { return op.Kind == history.ReadCursor })
}

func detectLostUpdate(h history.History, id ID, firstRead func(history.Op) bool) []Match {
	var out []Match
	for i, r1 := range h {
		if !firstRead(r1) {
			continue
		}
		c1 := h.TerminalIndex(r1.Tx)
		if c1 < 0 || h[c1].Kind != history.Commit {
			continue // P4/P4C require T1 to commit
		}
		for j := i + 1; j < c1; j++ {
			w2 := h[j]
			if !isItemWrite(w2) || w2.Item != r1.Item || w2.Tx == r1.Tx {
				continue
			}
			for k := j + 1; k < c1; k++ {
				w1 := h[k]
				if isItemWrite(w1) && w1.Item == r1.Item && w1.Tx == r1.Tx {
					out = append(out, Match{ID: id, OpIdx: []int{i, j, k, c1}, Txs: Pair{r1.Tx, w2.Tx},
						Comment: fmt.Sprintf("T%d's update of %s lost under T%d's read-modify-write", w2.Tx, r1.Item, r1.Tx)})
				}
			}
		}
	}
	return out
}

// DetectA5A finds Read Skew: r1[x]...w2[x]...w2[y]...c2...r1[y] with x != y
// and T1 not yet terminated before reading y.
func DetectA5A(h history.History) []Match {
	var out []Match
	for i, r1x := range h {
		if !isItemRead(r1x) {
			continue
		}
		t1End := h.TerminalIndex(r1x.Tx)
		limit := len(h)
		if t1End >= 0 {
			limit = t1End
		}
		for j := i + 1; j < limit; j++ {
			w2x := h[j]
			if !isItemWrite(w2x) || w2x.Item != r1x.Item || w2x.Tx == r1x.Tx {
				continue
			}
			c2 := h.TerminalIndex(w2x.Tx)
			if c2 < 0 || h[c2].Kind != history.Commit {
				continue
			}
			for k := j + 1; k < c2; k++ {
				w2y := h[k]
				if !isItemWrite(w2y) || w2y.Tx != w2x.Tx || w2y.Item == r1x.Item {
					continue
				}
				for l := c2 + 1; l < limit; l++ {
					r1y := h[l]
					if isItemRead(r1y) && r1y.Tx == r1x.Tx && r1y.Item == w2y.Item {
						out = append(out, Match{ID: A5A, OpIdx: []int{i, j, k, c2, l}, Txs: Pair{r1x.Tx, w2x.Tx},
							Comment: fmt.Sprintf("T%d read %s before and %s after T%d's committed update of both", r1x.Tx, r1x.Item, w2y.Item, w2x.Tx)})
					}
				}
			}
		}
	}
	return out
}

// DetectA5B finds Write Skew: r1[x]...r2[y]...w1[y]...w2[x] with both
// transactions committing. Also matches the symmetric interleaving where
// T2's read precedes T1's (the pattern is symmetric in T1/T2; the paper
// writes one representative order).
func DetectA5B(h history.History) []Match {
	committed := h.Committed()
	var out []Match
	for i, r1x := range h {
		if !isItemRead(r1x) || !committed[r1x.Tx] {
			continue
		}
		t1 := r1x.Tx
		for j := 0; j < len(h); j++ {
			r2y := h[j]
			if !isItemRead(r2y) || r2y.Tx == t1 || !committed[r2y.Tx] {
				continue
			}
			t2 := r2y.Tx
			if r2y.Item == r1x.Item {
				continue // write skew needs two distinct items
			}
			// T1 writes T2's item y after reading x; T2 writes T1's item x.
			var w1y, w2x = -1, -1
			for k := i + 1; k < len(h); k++ {
				op := h[k]
				if isItemWrite(op) && op.Tx == t1 && op.Item == r2y.Item {
					w1y = k
					break
				}
			}
			for k := j + 1; k < len(h); k++ {
				op := h[k]
				if isItemWrite(op) && op.Tx == t2 && op.Item == r1x.Item {
					w2x = k
					break
				}
			}
			if w1y < 0 || w2x < 0 {
				continue
			}
			// Both reads must precede the opposing writes (each transaction
			// decided from a state the other was about to invalidate).
			if i < w2x && j < w1y && t1 < t2 {
				out = append(out, Match{ID: A5B, OpIdx: []int{i, j, w1y, w2x}, Txs: Pair{t1, t2},
					Comment: fmt.Sprintf("T%d and T%d read {%s,%s} then wrote past each other", t1, t2, r1x.Item, r2y.Item)})
			}
		}
	}
	return out
}
