package phenomena

import (
	"math/rand"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/history"
)

// --- The paper's §3 classification results, as tests. ---

// H1 is the inconsistent-analysis history. The paper: "The history H1 does
// not violate any of the anomalies A1, A2, or A3. ... H1 indeed violates P1."
func TestH1ViolatesP1ButNoStrictAnomaly(t *testing.T) {
	h := history.H1()
	if !Exhibits(P1, h) {
		t.Error("H1 must exhibit broad P1")
	}
	for _, id := range []ID{A1, A2, A3, P0} {
		if Exhibits(id, h) {
			t.Errorf("H1 must not exhibit %s: %v", id, Detect(id, h))
		}
	}
}

// H2: "This time neither transaction reads dirty data. Thus P1 is
// satisfied. ... no data item is read twice ... Replacing A2 with P2 ...
// H2 would now be disqualified."
func TestH2ViolatesP2ButNotA2OrP1(t *testing.T) {
	h := history.H2()
	if !Exhibits(P2, h) {
		t.Error("H2 must exhibit broad P2")
	}
	if Exhibits(A2, h) {
		t.Errorf("H2 must not exhibit A2: %v", Detect(A2, h))
	}
	if Exhibits(P1, h) {
		t.Errorf("H2 must not exhibit P1: %v", Detect(P1, h))
	}
	if Exhibits(P0, h) {
		t.Error("H2 must not exhibit P0")
	}
}

// H2 is also a read skew (the paper notes P2 is a degenerate form of A5A;
// H2 matches the full A5A pattern with x and y).
func TestH2IsAlsoReadSkew(t *testing.T) {
	if !Exhibits(A5A, history.H2()) {
		t.Error("H2 matches the A5A pattern (reads x before, y after T2's update)")
	}
}

// H3: "This history is clearly not serializable, but is allowed by A3
// since no predicate is evaluated twice." P3 forbids it.
func TestH3ViolatesP3ButNotA3(t *testing.T) {
	h := history.H3()
	if !Exhibits(P3, h) {
		t.Error("H3 must exhibit broad P3")
	}
	if Exhibits(A3, h) {
		t.Errorf("H3 must not exhibit A3: %v", Detect(A3, h))
	}
}

// H4: the lost update at READ COMMITTED (§4.1). P4 matches; so does broad
// P2 (the paper: "forbidding P2 also precludes P4").
func TestH4LostUpdate(t *testing.T) {
	h := history.H4()
	if !Exhibits(P4, h) {
		t.Error("H4 must exhibit P4")
	}
	if !Exhibits(P2, h) {
		t.Error("H4 must exhibit broad P2 (w2[x] after r1[x] while T1 active)")
	}
	if Exhibits(P0, h) || Exhibits(P1, h) {
		t.Error("H4 exhibits neither P0 nor P1 (paper: H4 is allowed when forbidding P0 and P1)")
	}
	if Exhibits(P4C, h) {
		t.Error("H4 uses plain reads, not cursor reads; P4C must not match")
	}
}

// H4C: the cursor variant of H4 matches P4C (and hence P4).
func TestH4CCursorLostUpdate(t *testing.T) {
	h := history.H4C()
	if !Exhibits(P4C, h) {
		t.Error("H4C must exhibit P4C")
	}
	if !Exhibits(P4, h) {
		t.Error("a cursor lost update is in particular a lost update")
	}
}

// H5: write skew. "H5 is non-serializable ... neither A1, A2 nor A3" —
// the paper's proof that ANOMALY SERIALIZABLE is not serializable.
func TestH5WriteSkewButNoStrictAnomaly(t *testing.T) {
	h := history.H5()
	if !Exhibits(A5B, h) {
		t.Errorf("H5 must exhibit A5B; detect: %v", Detect(A5B, h))
	}
	for _, id := range []ID{A1, A2, A3, P0, P1} {
		if Exhibits(id, h) {
			t.Errorf("H5 must not exhibit %s: %v", id, Detect(id, h))
		}
	}
	// In the single-valued interpretation, H5 does violate broad P2
	// (paper: "forbidding P2 also precludes A5B").
	if !Exhibits(P2, h) {
		t.Error("H5 must exhibit broad P2 in the SV interpretation")
	}
}

func TestDirtyWriteHistory(t *testing.T) {
	h := history.DirtyWrite()
	if !Exhibits(P0, h) {
		t.Error("DirtyWrite history must exhibit P0")
	}
	if ms := DetectP0(h); len(ms) == 0 || ms[0].OpIdx[0] != 0 || ms[0].OpIdx[1] != 1 {
		t.Errorf("P0 match indices: %v", ms)
	}
}

func TestReadSkewHistory(t *testing.T) {
	h := history.ReadSkew()
	if !Exhibits(A5A, h) {
		t.Error("ReadSkew history must exhibit A5A")
	}
	if Exhibits(P1, h) {
		t.Error("ReadSkew history has no dirty read")
	}
}

func TestWriteSkewMinimalHistory(t *testing.T) {
	h := history.WriteSkew()
	if !Exhibits(A5B, h) {
		t.Error("WriteSkew history must exhibit A5B")
	}
}

// --- Interval / terminal semantics. ---

// Once T1 commits, a later write by T2 is not a dirty write.
func TestP0DisarmedByCommit(t *testing.T) {
	h := history.MustParse("w1[x] c1 w2[x] c2")
	if Exhibits(P0, h) {
		t.Error("write after writer committed is not P0")
	}
}

func TestP1DisarmedByCommit(t *testing.T) {
	h := history.MustParse("w1[x] c1 r2[x] c2")
	if Exhibits(P1, h) {
		t.Error("read after writer committed is not P1")
	}
}

func TestP1DisarmedByAbortBetween(t *testing.T) {
	h := history.MustParse("w1[x] a1 r2[x] c2")
	if Exhibits(P1, h) {
		t.Error("read after writer aborted is not P1 (undo restored the item)")
	}
}

func TestP2DisarmedByReaderTerminal(t *testing.T) {
	h := history.MustParse("r1[x] c1 w2[x] c2")
	if Exhibits(P2, h) {
		t.Error("write after reader committed is not P2")
	}
}

// P1 with both still active (no terminals at all) is still the phenomenon:
// it might lead to an anomaly (§2.2 broad interpretation).
func TestBroadPhenomenaMatchWithoutTerminals(t *testing.T) {
	if !Exhibits(P1, history.MustParse("w1[x] r2[x]")) {
		t.Error("P1 must match before any terminal")
	}
	if !Exhibits(P2, history.MustParse("r1[x] w2[x]")) {
		t.Error("P2 must match before any terminal")
	}
	if !Exhibits(P0, history.MustParse("w1[x] w2[x]")) {
		t.Error("P0 must match before any terminal")
	}
}

// A1 requires a1 AND c2: if the reader also aborts, only P1 matches.
func TestA1RequiresReaderCommit(t *testing.T) {
	h := history.MustParse("w1[x] r2[x] a1 a2")
	if Exhibits(A1, h) {
		t.Error("A1 needs c2")
	}
	if !Exhibits(P1, h) {
		t.Error("P1 still matches")
	}
	h2 := history.MustParse("w1[x] r2[x] a1 c2")
	if !Exhibits(A1, h2) {
		t.Error("A1 must match with a1 and c2")
	}
	h3 := history.MustParse("w1[x] r2[x] c2 a1")
	if !Exhibits(A1, h3) {
		t.Error("A1 matches with c2 and a1 in either order")
	}
}

// A2 requires the reread after c2 and before c1.
func TestA2Shape(t *testing.T) {
	h := history.MustParse("r1[x=50] w2[x=10] c2 r1[x=10] c1")
	if !Exhibits(A2, h) {
		t.Errorf("canonical A2 must match: %v", Detect(A2, h))
	}
	// Reread before c2: not A2 (value unchanged — T2 not committed; under
	// locking T2's write would not even be visible).
	h2 := history.MustParse("r1[x=50] w2[x=10] r1[x=50] c2 c1")
	if Exhibits(A2, h2) {
		t.Error("reread before c2 is not A2")
	}
	// T1 aborts: not A2.
	h3 := history.MustParse("r1[x=50] w2[x=10] c2 r1[x=10] a1")
	if Exhibits(A2, h3) {
		t.Error("A2 requires c1")
	}
}

func TestA3Shape(t *testing.T) {
	h := history.MustParse("r1[P] w2[y in P] c2 r1[P] c1")
	if !Exhibits(A3, h) {
		t.Errorf("canonical A3 must match: %v", Detect(A3, h))
	}
	h2 := history.MustParse("r1[P] w2[y in P] c2 r1[Q] c1")
	if Exhibits(A3, h2) {
		t.Error("re-evaluating a different predicate is not A3")
	}
}

// P3 matches updates and deletes into the predicate, not just inserts
// (Remark 5's restatement).
func TestP3CoversAnyWriteKind(t *testing.T) {
	h := history.MustParse("r1[P] w2[P] c2 c1") // predicate write (UPDATE WHERE P)
	if !Exhibits(P3, h) {
		t.Error("predicate write into P after r1[P] must match P3")
	}
}

func TestP4RequiresCommit(t *testing.T) {
	h := history.MustParse("r1[x] w2[x] w1[x] a1 c2")
	if Exhibits(P4, h) {
		t.Error("P4 requires c1 (T1 commits the clobbering write)")
	}
}

func TestP4OrderMatters(t *testing.T) {
	// w2 after w1: no lost update (T2's write is simply later).
	h := history.MustParse("r1[x] w1[x] c1 w2[x] c2")
	if Exhibits(P4, h) {
		t.Error("w2 after c1 is not P4")
	}
}

func TestA5ARequiresTwoItems(t *testing.T) {
	// Same-item version is P2/A2 territory, not A5A.
	h := history.MustParse("r1[x] w2[x] c2 r1[x] c1")
	if Exhibits(A5A, h) {
		t.Error("A5A requires a second item y != x")
	}
}

func TestA5ATailAllowsAbort(t *testing.T) {
	// Per the definition, T1 may commit or abort: ...r1[y]...(c1 or a1).
	h := history.MustParse("r1[x=50] w2[x=10] w2[y=90] c2 r1[y=90] a1")
	if !Exhibits(A5A, h) {
		t.Error("A5A matches even when T1 aborts")
	}
}

func TestA5BRequiresBothCommits(t *testing.T) {
	h := history.MustParse("r1[x] r2[y] w1[y] w2[x] c1 a2")
	if Exhibits(A5B, h) {
		t.Error("A5B requires both commits")
	}
}

func TestA5BNotMatchedWhenReadFollowsWrite(t *testing.T) {
	// T2 reads y only after T1 committed its write of y: no skew, plain
	// sequential flow.
	h := history.MustParse("r1[x] w1[y] c1 r2[y] w2[x] c2")
	if Exhibits(A5B, h) {
		t.Error("no write skew when the second reader sees the first writer's commit")
	}
}

// --- Profile and registry. ---

func TestProfileOfH1(t *testing.T) {
	p := Profile(history.H1())
	if len(p[P1]) == 0 || len(p[A1]) > 0 || len(p[A2]) > 0 || len(p[A3]) > 0 || len(p[P0]) > 0 {
		t.Errorf("H1 profile = %v", p)
	}
}

func TestNameAndAll(t *testing.T) {
	if len(All) != 11 {
		t.Fatalf("All has %d entries", len(All))
	}
	for _, id := range All {
		if Name(id) == "" || Name(id) == string(id) {
			t.Errorf("Name(%s) = %q", id, Name(id))
		}
	}
	if Detect(ID("nope"), history.H1()) != nil {
		t.Error("unknown ID should detect nothing")
	}
}

func TestMatchString(t *testing.T) {
	ms := DetectP0(history.DirtyWrite())
	if len(ms) == 0 {
		t.Fatal("no match")
	}
	if s := ms[0].String(); s == "" {
		t.Error("empty match string")
	}
}

// --- Properties. ---

// Strict anomalies imply the corresponding broad phenomena on arbitrary
// histories (the paper: broad interpretations prohibit strictly more).
func TestStrictImpliesBroadProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	pairs := []struct{ strict, broad ID }{{A1, P1}, {A2, P2}, {A3, P3}}
	for i := 0; i < 400; i++ {
		h := randomHistory(r)
		for _, pr := range pairs {
			if Exhibits(pr.strict, h) && !Exhibits(pr.broad, h) {
				t.Fatalf("%s without %s in %s", pr.strict, pr.broad, h)
			}
		}
		if Exhibits(P4C, h) && !Exhibits(P4, h) {
			t.Fatalf("P4C without P4 in %s", h)
		}
	}
}

// Serial histories exhibit none of the phenomena ("None of these phenomena
// could occur in a serial history", §2.2).
func TestSerialHistoriesCleanProperty(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 400; i++ {
		h := randomSerialHistory(r)
		for _, id := range All {
			if Exhibits(id, h) {
				t.Fatalf("serial history exhibits %s: %s\nmatches: %v", id, h, Detect(id, h))
			}
		}
	}
}

func randomHistory(r *rand.Rand) history.History {
	items := []data.Key{"x", "y", "z"}
	var h history.History
	done := map[int]bool{}
	n := 4 + r.Intn(12)
	for i := 0; i < n; i++ {
		tx := 1 + r.Intn(3)
		if done[tx] {
			continue
		}
		switch r.Intn(8) {
		case 0, 1:
			h = append(h, history.NewOp(tx, history.Read, items[r.Intn(3)]))
		case 2, 3:
			h = append(h, history.NewOp(tx, history.Write, items[r.Intn(3)]))
		case 4:
			h = append(h, history.Op{Tx: tx, Kind: history.PredRead, Preds: []string{"P"}, Version: -1})
		case 5:
			h = append(h, history.NewOp(tx, history.Write, items[r.Intn(3)]).WithPreds("P"))
		case 6:
			h = append(h, history.Op{Tx: tx, Kind: history.Commit, Version: -1})
			done[tx] = true
		case 7:
			h = append(h, history.Op{Tx: tx, Kind: history.Abort, Version: -1})
			done[tx] = true
		}
	}
	// Terminate stragglers so strict patterns have their commits available.
	for tx := 1; tx <= 3; tx++ {
		if !done[tx] && len(h.OpsOf(tx)) > 0 {
			h = append(h, history.Op{Tx: tx, Kind: history.Commit, Version: -1})
		}
	}
	return h
}

func randomSerialHistory(r *rand.Rand) history.History {
	items := []data.Key{"x", "y", "z"}
	var h history.History
	order := r.Perm(3)
	for _, idx := range order {
		tx := idx + 1
		n := 1 + r.Intn(5)
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				h = append(h, history.NewOp(tx, history.Read, items[r.Intn(3)]))
			case 1:
				h = append(h, history.NewOp(tx, history.Write, items[r.Intn(3)]))
			case 2:
				h = append(h, history.Op{Tx: tx, Kind: history.PredRead, Preds: []string{"P"}, Version: -1})
			case 3:
				h = append(h, history.NewOp(tx, history.Write, items[r.Intn(3)]).WithPreds("P"))
			}
		}
		term := history.Commit
		if r.Intn(4) == 0 {
			term = history.Abort
		}
		h = append(h, history.Op{Tx: tx, Kind: term, Version: -1})
	}
	return h
}
