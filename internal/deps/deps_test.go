package deps

import (
	"math/rand"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/history"
)

func TestConflictsBasic(t *testing.T) {
	h := history.MustParse("w1[x] r2[x] w2[x] c1 c2")
	cs := Conflicts(h)
	// w1-r2 (wr), w1-w2 (ww), r2 after w1... also r2[x]-? r2 and w2 same tx: no.
	want := map[ConflictKind]int{WR: 1, WW: 1}
	got := map[ConflictKind]int{}
	for _, c := range cs {
		got[c.Kind]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("conflicts %s: got %d want %d (all: %v)", k, got[k], n, cs)
		}
	}
}

func TestConflictsSameTxnIgnored(t *testing.T) {
	h := history.MustParse("w1[x] r1[x] w1[x] c1")
	if cs := Conflicts(h); len(cs) != 0 {
		t.Errorf("same-tx actions conflicted: %v", cs)
	}
}

func TestPredicateConflicts(t *testing.T) {
	h := history.MustParse("r1[P] w2[y in P] c1 c2")
	cs := Conflicts(h)
	found := false
	for _, c := range cs {
		if c.Kind == PredRW && c.FromTx == 1 && c.ToTx == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("predicate rw conflict missing: %v", cs)
	}
}

func TestPredicateWRConflict(t *testing.T) {
	h := history.MustParse("w1[y in P] r2[P] c1 c2")
	cs := Conflicts(h)
	found := false
	for _, c := range cs {
		if c.Kind == PredWR && c.FromTx == 1 && c.ToTx == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("predicate wr conflict missing: %v", cs)
	}
}

func TestCursorOpsConflictLikePlainOps(t *testing.T) {
	h := history.MustParse("rc1[x] w2[x] c1 c2")
	cs := Conflicts(h)
	if len(cs) != 1 || cs[0].Kind != RW {
		t.Errorf("cursor read should rw-conflict: %v", cs)
	}
}

// H1 is non-serializable: T1 -> T2 (wr on x) and T2 -> T1 (rw on y).
func TestH1NotSerializable(t *testing.T) {
	h := history.H1()
	g := BuildGraph(h)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatalf("H1 graph edges wrong:\n%s", g)
	}
	if Serializable(h) {
		t.Error("H1 must not be serializable")
	}
	if c := g.Cycle(); c == nil {
		t.Error("H1 graph must have a cycle")
	}
}

func TestH2NotSerializable(t *testing.T) {
	if Serializable(history.H2()) {
		t.Error("H2 must not be serializable (inconsistent analysis)")
	}
}

func TestH3NotSerializable(t *testing.T) {
	// H3's cycle runs through the predicate conflict: T1 r[P] -> T2 w[y in P]
	// (rw) and T2 w[z] -> T1 r[z] (wr).
	if Serializable(history.H3()) {
		t.Error("H3 must not be serializable")
	}
}

func TestH4NotSerializable(t *testing.T) {
	if Serializable(history.H4()) {
		t.Error("H4 (lost update) must not be serializable")
	}
}

func TestH5NotSerializable(t *testing.T) {
	if Serializable(history.H5()) {
		t.Error("H5 (write skew) must not be serializable")
	}
}

func TestH1SISVIsSerializable(t *testing.T) {
	if !Serializable(history.H1SISV()) {
		t.Error("H1.SI.SV must be serializable (paper §4.2)")
	}
	order := EquivalentSerialOrder(history.H1SISV())
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("H1.SI.SV serial order = %v, want [2 1] (T2 then T1)", order)
	}
}

func TestSerialHistorySerializable(t *testing.T) {
	h := history.MustParse("r1[x] w1[y] c1 r2[y] w2[x] c2")
	if !Serializable(h) {
		t.Error("serial history must be serializable")
	}
	if order := EquivalentSerialOrder(h); len(order) != 2 || order[0] != 1 {
		t.Errorf("order = %v", order)
	}
}

// Aborted transactions do not appear in the dependency graph (§2.1: "The
// actions of committed transactions in the history are represented as
// graph nodes").
func TestAbortedTxnsExcluded(t *testing.T) {
	h := history.MustParse("w1[x] r2[x] w2[x] a1 c2")
	g := BuildGraph(h)
	if len(g.Nodes) != 1 || g.Nodes[0] != 2 {
		t.Fatalf("nodes = %v", g.Nodes)
	}
	if !Serializable(h) {
		t.Error("history whose only cycle runs through an aborted txn is serializable")
	}
}

func TestEquivalent(t *testing.T) {
	a := history.MustParse("r1[x] w2[x] c1 c2")
	b := history.MustParse("r1[x] c1 w2[x] c2")
	if !Equivalent(a, b) {
		t.Error("same dependency graph, same committed txns: equivalent")
	}
	c := history.MustParse("w2[x] r1[x] c1 c2") // reversed dataflow
	if Equivalent(a, c) {
		t.Error("reversed conflict direction is not equivalent")
	}
	d := history.MustParse("r1[x] c1")
	if Equivalent(a, d) {
		t.Error("different committed sets are not equivalent")
	}
}

func TestCycleReporting(t *testing.T) {
	h := history.H1()
	c := BuildGraph(h).Cycle()
	if len(c) < 3 || c[0] != c[len(c)-1] {
		t.Fatalf("cycle = %v", c)
	}
	seen := map[int]bool{}
	for _, tx := range c[:len(c)-1] {
		if seen[tx] {
			t.Fatalf("cycle repeats node: %v", c)
		}
		seen[tx] = true
	}
}

func TestTopoOrderNilOnCycle(t *testing.T) {
	if order := BuildGraph(history.H1()).TopoOrder(); order != nil {
		t.Errorf("cyclic graph topo order = %v", order)
	}
}

func TestGraphString(t *testing.T) {
	s := BuildGraph(history.H1()).String()
	if s == "" {
		t.Error("graph string empty")
	}
}

// --- MV → SV mapping (§4.2). ---

func TestH1SIMapsToH1SISV(t *testing.T) {
	txns := FromMVHistory(history.H1SI())
	sv := MapToSV(txns)
	want := history.H1SISV().String()
	if sv.String() != want {
		t.Fatalf("MapToSV(H1.SI) =\n  %s\nwant\n  %s", sv.String(), want)
	}
	if !SISerializable(txns) {
		t.Error("H1.SI must map to a serializable SV history (paper §4.2)")
	}
}

// The write-skew execution under SI maps to a non-serializable SV history.
func TestWriteSkewSINotSerializable(t *testing.T) {
	txns := []MVTxn{
		{Tx: 1, Start: 1, Commit: 10, Committed: true,
			Reads:  history.MustParse("r1[x=50] r1[y=50]"),
			Writes: history.MustParse("w1[y=-40]"),
		},
		{Tx: 2, Start: 2, Commit: 11, Committed: true,
			Reads:  history.MustParse("r2[x=50] r2[y=50]"),
			Writes: history.MustParse("w2[x=-40]"),
		},
	}
	if SISerializable(txns) {
		t.Error("write-skew SI execution must not be serializable")
	}
	sv := MapToSV(txns)
	g := BuildGraph(sv)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Errorf("write-skew SV mapping should have a 2-cycle:\n%s", g)
	}
}

// Read-only SI transactions always map into serializable positions
// relative to a single writer.
func TestReadOnlySnapshotSerializable(t *testing.T) {
	txns := []MVTxn{
		{Tx: 1, Start: 1, Commit: 10, Committed: true,
			Reads:  history.MustParse("r1[x=0]"),
			Writes: history.MustParse("w1[x=1] w1[y=1]"),
		},
		{Tx: 2, Start: 5, Commit: 6, Committed: true,
			Reads: history.MustParse("r2[x=0] r2[y=0]"),
		},
	}
	if !SISerializable(txns) {
		t.Error("snapshot reader concurrent with one writer must be serializable")
	}
}

func TestAbortedMVTxnDropsWrites(t *testing.T) {
	txns := []MVTxn{
		{Tx: 1, Start: 1, Commit: 4, Committed: false,
			Reads:  history.MustParse("r1[x=0]"),
			Writes: history.MustParse("w1[x=1]"),
		},
		{Tx: 2, Start: 2, Commit: 3, Committed: true,
			Reads:  history.MustParse("r2[x=0]"),
			Writes: history.MustParse("w2[x=2]"),
		},
	}
	sv := MapToSV(txns)
	for _, op := range sv {
		if op.Tx == 1 && op.Kind.IsWrite() {
			t.Fatalf("aborted txn's write leaked into SV history: %s", sv)
		}
	}
	if !Serializable(sv) {
		t.Error("after dropping aborted writes the history is serializable")
	}
}

func TestFromMVHistoryTimestamps(t *testing.T) {
	txns := FromMVHistory(history.H1SI())
	byTx := map[int]MVTxn{}
	for _, tx := range txns {
		byTx[tx.Tx] = tx
	}
	t1, t2 := byTx[1], byTx[2]
	if !(t1.Start < t2.Start && t2.Start < t2.Commit && t2.Commit < t1.Commit) {
		t.Fatalf("timestamp order wrong: T1=[%d,%d] T2=[%d,%d]", t1.Start, t1.Commit, t2.Start, t2.Commit)
	}
	if !t1.Committed || !t2.Committed {
		t.Fatal("both committed")
	}
	if len(t1.Reads) != 2 || len(t1.Writes) != 2 || len(t2.Reads) != 2 || len(t2.Writes) != 0 {
		t.Fatalf("ops split wrong: %+v", txns)
	}
}

// --- Properties. ---

// The fundamental check behind the Serializability Theorem: a serial
// history is conflict-serializable, and its topo order is consistent with
// its execution order.
func TestRandomSerialHistoriesSerializableProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	items := []data.Key{"x", "y", "z"}
	for i := 0; i < 300; i++ {
		var h history.History
		perm := r.Perm(4)
		for _, idx := range perm {
			tx := idx + 1
			for k := 0; k < 1+r.Intn(4); k++ {
				kind := history.Read
				if r.Intn(2) == 0 {
					kind = history.Write
				}
				h = append(h, history.NewOp(tx, kind, items[r.Intn(3)]))
			}
			h = append(h, history.Op{Tx: tx, Kind: history.Commit, Version: -1})
		}
		if !Serializable(h) {
			t.Fatalf("serial history not serializable: %s", h)
		}
	}
}

// Equivalence is preserved when swapping adjacent non-conflicting actions.
func TestSwapNonConflictingPreservesEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	items := []data.Key{"x", "y", "z"}
	for i := 0; i < 300; i++ {
		var h history.History
		for k := 0; k < 8; k++ {
			tx := 1 + r.Intn(3)
			kind := history.Read
			if r.Intn(2) == 0 {
				kind = history.Write
			}
			h = append(h, history.NewOp(tx, kind, items[r.Intn(3)]))
		}
		for tx := 1; tx <= 3; tx++ {
			h = append(h, history.Op{Tx: tx, Kind: history.Commit, Version: -1})
		}
		// Pick an adjacent pair that does not conflict and is not ordered by
		// being in the same transaction; swap; equivalence must hold.
		for j := 0; j+1 < len(h); j++ {
			a, b := h[j], h[j+1]
			if a.Tx == b.Tx || a.Kind.IsTerminal() || b.Kind.IsTerminal() {
				continue
			}
			if _, conflicting := conflictBetween(a, b, j, j+1); conflicting {
				continue
			}
			swapped := append(history.History{}, h...)
			swapped[j], swapped[j+1] = swapped[j+1], swapped[j]
			if !Equivalent(h, swapped) {
				t.Fatalf("swap of non-conflicting ops changed equivalence:\n%s\n%s", h, swapped)
			}
			break
		}
	}
}

// MapToSV keeps exactly the committed transactions' writes and everyone's
// reads.
func TestMapToSVStructureProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	items := []data.Key{"x", "y", "z"}
	for i := 0; i < 200; i++ {
		var txns []MVTxn
		ts := int64(0)
		for tx := 1; tx <= 3; tx++ {
			start := ts
			ts++
			var reads, writes history.History
			for k := 0; k < r.Intn(3); k++ {
				reads = append(reads, history.NewOp(tx, history.Read, items[r.Intn(3)]))
			}
			for k := 0; k < r.Intn(3); k++ {
				writes = append(writes, history.NewOp(tx, history.Write, items[r.Intn(3)]))
			}
			commit := ts
			ts++
			txns = append(txns, MVTxn{Tx: tx, Start: start, Commit: commit,
				Committed: r.Intn(4) != 0, Reads: reads, Writes: writes})
		}
		sv := MapToSV(txns)
		if err := sv.Validate(); err != nil {
			t.Fatalf("mapped history invalid: %v\n%s", err, sv)
		}
		for _, txn := range txns {
			ops := sv.OpsOf(txn.Tx)
			var reads, writes int
			for _, op := range ops {
				if op.Kind.IsRead() {
					reads++
				}
				if op.Kind.IsWrite() {
					writes++
				}
			}
			if reads != len(txn.Reads) {
				t.Fatalf("reads lost for T%d", txn.Tx)
			}
			wantWrites := len(txn.Writes)
			if !txn.Committed {
				wantWrites = 0
			}
			if writes != wantWrites {
				t.Fatalf("writes wrong for T%d: got %d want %d", txn.Tx, writes, wantWrites)
			}
		}
	}
}
