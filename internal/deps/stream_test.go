package deps

import (
	"reflect"
	"testing"

	"isolevel/internal/history"
)

func TestStreamGraphMatchesBatch(t *testing.T) {
	cases := map[string]history.History{
		"H1":        history.H1(),
		"H2":        history.H2(),
		"H3":        history.H3(),
		"H4":        history.H4(),
		"H4C":       history.H4C(),
		"H5":        history.H5(),
		"serial":    history.MustParse("r1[x] w1[y] c1 r2[y] w2[x] c2"),
		"aborts":    history.MustParse("w1[x] a1 r2[x] w2[x] c2 r3[x] a3"),
		"pred":      history.MustParse("r1[P] w2[y in P] c2 w3[z in P,Q] r4[Q] c4 c3 c1"),
		"predwrite": history.MustParse("w1[P] w2[P] r3[P] c1 c2 c3"),
		"cursor":    history.MustParse("rc1[x] w2[x] wc1[x] c1 c2"),
	}
	for name, h := range cases {
		b, s := BuildGraph(h), StreamGraph(h)
		if !reflect.DeepEqual(b.Nodes, s.Nodes) {
			t.Errorf("%s: nodes %v != %v", name, b.Nodes, s.Nodes)
		}
		if b.String() != s.String() {
			t.Errorf("%s: edges differ\nbatch:\n%s\nstream:\n%s", name, b, s)
		}
		if (b.Cycle() == nil) != (s.Cycle() == nil) {
			t.Errorf("%s: cycle verdicts differ", name)
		}
		if !reflect.DeepEqual(b.TopoOrder(), s.TopoOrder()) {
			t.Errorf("%s: topo orders differ: %v vs %v", name, b.TopoOrder(), s.TopoOrder())
		}
	}
}

func TestBuilderSerializableIncremental(t *testing.T) {
	b := NewBuilder()
	for _, op := range history.MustParse("r1[x] w2[x] c2 w1[y] c1") {
		b.Feed(op)
	}
	if !b.Serializable() {
		t.Error("rw edge only: still serializable")
	}
	b2 := NewBuilder()
	for _, op := range history.MustParse("r1[x] w2[x] r2[y] w1[y] c1 c2") {
		b2.Feed(op)
	}
	if b2.Serializable() {
		t.Error("write-skew shape must be cyclic (rw both ways)")
	}
}

func TestMapEventsToSVOrdersByTSThenSeq(t *testing.T) {
	ev := []SVEvent{
		{TS: 2, Seq: 0, Ops: history.MustParse("w1[x] c1")},
		{TS: 1, Seq: 1, Ops: history.MustParse("r2[x]")},
		{TS: 2, Seq: 2, Ops: history.MustParse("c2")},
	}
	got := MapEventsToSV(ev).String()
	want := "r2[x] w1[x] c1 c2"
	if got != want {
		t.Errorf("MapEventsToSV = %q, want %q", got, want)
	}
}

// TestMapToSVUnchanged guards the refactor onto MapEventsToSV: the H1.SI
// mapping of the paper must still produce the documented single-valued
// form.
func TestMapToSVUnchanged(t *testing.T) {
	sv := MapToSV(FromMVHistory(history.H1SI()))
	if sv.String() != history.H1SISV().String() {
		t.Errorf("H1.SI maps to %q, want %q", sv, history.H1SISV())
	}
}
