// Package deps implements the paper's dependency-graph machinery (§2.1):
// conflicts, dependency graphs over committed transactions, equivalence of
// histories, and conflict-serializability, plus the multiversion-to-
// single-version mapping the paper uses to place Snapshot Isolation in the
// hierarchy (§4.2).
//
//isolint:deterministic
package deps

import (
	"fmt"
	"sort"
	"strings"

	"isolevel/internal/history"
)

// Conflict is a pair of conflicting actions: two actions of distinct
// transactions on the same data item (or a predicate and a write into it)
// where at least one is a write (§2.1).
type Conflict struct {
	FromIdx, ToIdx int // history indices, FromIdx < ToIdx
	FromTx, ToTx   int
	Kind           ConflictKind
	Item           string // item key or predicate name
}

// ConflictKind classifies the conflict by the modes of the two actions.
type ConflictKind int

// Conflict kinds: write-write, write-read, read-write, and the predicate
// forms (a predicate read conflicting with a later write into the
// predicate, or a write conflicting with a later predicate read).
const (
	WW ConflictKind = iota
	WR
	RW
	PredRW // r[P] ... w[y in P]
	PredWR // w[y in P] ... r[P]
)

func (k ConflictKind) String() string {
	switch k {
	case WW:
		return "ww"
	case WR:
		return "wr"
	case RW:
		return "rw"
	case PredRW:
		return "rw(pred)"
	case PredWR:
		return "wr(pred)"
	}
	return fmt.Sprintf("ConflictKind(%d)", int(k))
}

func (c Conflict) String() string {
	return fmt.Sprintf("T%d %s T%d on %s (ops %d,%d)", c.FromTx, c.Kind, c.ToTx, c.Item, c.FromIdx, c.ToIdx)
}

// Conflicts enumerates all conflicting action pairs in h, in (FromIdx,
// ToIdx) order. Only actions of distinct transactions conflict. Cursor
// reads/writes conflict exactly like plain reads/writes.
func Conflicts(h history.History) []Conflict {
	var out []Conflict
	for i := 0; i < len(h); i++ {
		a := h[i]
		for j := i + 1; j < len(h); j++ {
			b := h[j]
			if a.Tx == b.Tx {
				continue
			}
			if c, ok := conflictBetween(a, b, i, j); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

func conflictBetween(a, b history.Op, i, j int) (Conflict, bool) {
	aR, aW := a.Kind.IsRead(), a.Kind.IsWrite()
	bR, bW := b.Kind.IsRead(), b.Kind.IsWrite()
	if (!aR && !aW) || (!bR && !bW) {
		return Conflict{}, false
	}
	// Item-item conflicts.
	if a.Item != "" && b.Item != "" && a.Item == b.Item {
		switch {
		case aW && bW:
			return Conflict{i, j, a.Tx, b.Tx, WW, string(a.Item)}, true
		case aW && bR:
			return Conflict{i, j, a.Tx, b.Tx, WR, string(a.Item)}, true
		case aR && bW:
			return Conflict{i, j, a.Tx, b.Tx, RW, string(a.Item)}, true
		}
		return Conflict{}, false
	}
	// Predicate conflicts: r[P] vs a later write annotated as in P (or a
	// predicate write on P), and the converse.
	if a.Kind == history.PredRead && bW && writeInAnyPred(b, a.Preds) {
		return Conflict{i, j, a.Tx, b.Tx, PredRW, a.Preds[0]}, true
	}
	if aW && b.Kind == history.PredRead && writeInAnyPred(a, b.Preds) {
		return Conflict{i, j, a.Tx, b.Tx, PredWR, b.Preds[0]}, true
	}
	// Two predicate writes on the same predicate conflict (ww).
	if a.Kind == history.PredWrite && b.Kind == history.PredWrite && sharePred(a.Preds, b.Preds) {
		return Conflict{i, j, a.Tx, b.Tx, WW, a.Preds[0]}, true
	}
	return Conflict{}, false
}

func writeInAnyPred(w history.Op, preds []string) bool {
	for _, p := range preds {
		if w.InPred(p) {
			return true
		}
	}
	return false
}

func sharePred(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// Graph is a dependency graph: nodes are committed transactions, edges the
// temporal dataflow <op1, op2> between conflicting actions (§2.1).
type Graph struct {
	Nodes []int
	// Edges maps from-tx to the set of to-txs, with the conflicts that
	// induced each edge.
	Edges map[int]map[int][]Conflict
}

// BuildGraph constructs the dependency graph of h over its committed
// transactions.
func BuildGraph(h history.History) *Graph {
	committed := h.Committed()
	g := &Graph{Edges: map[int]map[int][]Conflict{}}
	for _, tx := range h.Txns() {
		if committed[tx] {
			g.Nodes = append(g.Nodes, tx)
		}
	}
	for _, c := range Conflicts(h) {
		if !committed[c.FromTx] || !committed[c.ToTx] {
			continue
		}
		if g.Edges[c.FromTx] == nil {
			g.Edges[c.FromTx] = map[int][]Conflict{}
		}
		g.Edges[c.FromTx][c.ToTx] = append(g.Edges[c.FromTx][c.ToTx], c)
	}
	return g
}

// HasEdge reports whether the graph has an edge from tx a to tx b.
func (g *Graph) HasEdge(a, b int) bool {
	return len(g.Edges[a][b]) > 0
}

// Cycle returns a dependency cycle as a list of transaction numbers
// (first == last), or nil if the graph is acyclic.
func (g *Graph) Cycle() []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[int]int{}
	parent := map[int]int{}
	var cycle []int

	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = grey
		// Deterministic order.
		var succs []int
		for v := range g.Edges[u] {
			succs = append(succs, v)
		}
		sort.Ints(succs)
		for _, v := range succs {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case grey:
				// Found cycle v -> ... -> u -> v.
				cycle = []int{v}
				for w := u; w != v; w = parent[w] {
					cycle = append(cycle, w)
				}
				cycle = append(cycle, v)
				// Reverse into forward order v -> ... -> v.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, n := range g.Nodes {
		if color[n] == white && dfs(n) {
			return cycle
		}
	}
	return nil
}

// TopoOrder returns a topological order of the committed transactions, or
// nil if the graph is cyclic. The order is an equivalent serial execution.
func (g *Graph) TopoOrder() []int {
	indeg := map[int]int{}
	for _, n := range g.Nodes {
		indeg[n] = 0
	}
	for _, tos := range g.Edges {
		for to := range tos {
			indeg[to]++
		}
	}
	var ready []int
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Ints(ready)
	var order []int
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		var succs []int
		for v := range g.Edges[n] {
			succs = append(succs, v)
		}
		sort.Ints(succs)
		for _, v := range succs {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
				sort.Ints(ready)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil
	}
	return order
}

// String renders the graph edges deterministically.
func (g *Graph) String() string {
	var b strings.Builder
	for _, from := range g.Nodes {
		var tos []int
		for to := range g.Edges[from] {
			tos = append(tos, to)
		}
		sort.Ints(tos)
		for _, to := range tos {
			kinds := map[string]bool{}
			for _, c := range g.Edges[from][to] {
				kinds[c.Kind.String()] = true
			}
			var ks []string
			for k := range kinds {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			fmt.Fprintf(&b, "T%d -> T%d [%s]\n", from, to, strings.Join(ks, ","))
		}
	}
	return b.String()
}

// Serializable reports whether h is conflict-serializable: its dependency
// graph over committed transactions is acyclic (the Serializability
// Theorem, §2.2).
func Serializable(h history.History) bool {
	return BuildGraph(h).Cycle() == nil
}

// EquivalentSerialOrder returns a serial order of committed transactions
// whose serial execution has the same dependency graph, or nil if h is not
// conflict-serializable.
func EquivalentSerialOrder(h history.History) []int {
	return BuildGraph(h).TopoOrder()
}

// Equivalent reports whether two histories are equivalent per §2.1: same
// committed transactions and same dependency graph.
func Equivalent(a, b history.History) bool {
	ca, cb := a.Committed(), b.Committed()
	if len(ca) != len(cb) {
		return false
	}
	for tx := range ca {
		if !cb[tx] {
			return false
		}
	}
	ga, gb := BuildGraph(a), BuildGraph(b)
	return sameEdges(ga, gb) && sameEdges(gb, ga)
}

func sameEdges(a, b *Graph) bool {
	for from, tos := range a.Edges {
		for to := range tos {
			if !b.HasEdge(from, to) {
				return false
			}
		}
	}
	return true
}
