package deps

import (
	"sort"

	"isolevel/internal/history"
)

// The paper (§4.2): "all Snapshot Isolation histories can be mapped to
// single-valued histories while preserving dataflow dependencies", and
// "Mapping of MV histories to SV histories is the only rigorous touchstone
// needed to place Snapshot Isolation in the Isolation Hierarchy."
//
// Under SI a transaction's reads all happen (logically) at its start
// timestamp and its writes become visible at its commit timestamp. The
// mapping therefore places each committed transaction's reads at its start
// timestamp and its writes (followed by its commit) at its commit
// timestamp, ordering events by timestamp. H1.SI maps to H1.SI.SV exactly
// this way.

// MVTxn is one transaction of a multiversion (Snapshot Isolation)
// execution: its interval timestamps and its read/write actions in program
// order. Timestamps must be distinct across all events of an execution
// (engines guarantee this; the syntactic converter synthesizes them from
// history positions).
type MVTxn struct {
	Tx        int
	Start     int64 // start timestamp (snapshot point)
	Commit    int64 // commit timestamp; meaningful only if Committed
	Committed bool
	Reads     []history.Op // item and predicate reads, program order
	Writes    []history.Op // item and predicate writes, program order
}

// SVEvent is one timestamped block of actions of a multiversion execution
// headed for the single-valued mapping: MapEventsToSV orders blocks by
// (TS, Seq) and concatenates their ops. Callers use Seq — assigned
// monotonically in whatever order they emit events — as the deterministic
// tie-break for blocks sharing a timestamp.
type SVEvent struct {
	TS  int64
	Seq int
	Ops history.History
}

// MapEventsToSV orders the event blocks by (TS, Seq) and concatenates
// them into a single-valued history, dropping version subscripts. This is
// the general form of the paper's MV→SV mapping: MapToSV uses it with the
// transaction-level snapshot (all reads at Start), the Read Consistency
// exerciser with statement-level read events.
func MapEventsToSV(events []SVEvent) history.History {
	sorted := make([]SVEvent, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].TS != sorted[j].TS {
			return sorted[i].TS < sorted[j].TS
		}
		return sorted[i].Seq < sorted[j].Seq
	})
	var out history.History
	for _, e := range sorted {
		for _, op := range e.Ops {
			op.Version = -1 // single-valued: drop version subscripts
			out = append(out, op)
		}
	}
	return out
}

// TxEvents returns the two event blocks one transaction contributes to
// the single-valued mapping: its reads at Start, and — committed — its
// writes plus commit at Commit, or — aborted — an abort back at Start
// (its writes never became visible to anyone). Seq and seq+1 are the
// blocks' tie-breaks; MapToSV and the mixed-run normalizer
// (internal/exerciser) both build their event streams from this one
// helper, so the slot placement cannot drift between them.
func TxEvents(t MVTxn, seq int) [2]SVEvent {
	reads := append(history.History{}, t.Reads...)
	var tail history.History
	tailTS := t.Start
	if t.Committed {
		tail = append(append(tail, t.Writes...), history.Op{Tx: t.Tx, Kind: history.Commit, Version: -1})
		tailTS = t.Commit
	} else {
		tail = history.History{{Tx: t.Tx, Kind: history.Abort, Version: -1}}
	}
	return [2]SVEvent{{t.Start, seq, reads}, {tailTS, seq + 1, tail}}
}

// MapToSV maps an SI execution to the paper's single-valued history:
// committed transactions contribute their reads at Start and their writes
// plus commit at Commit; aborted transactions contribute their reads at
// Start and an abort. Events are ordered by timestamp.
func MapToSV(txns []MVTxn) history.History {
	var events []SVEvent
	seq := 0
	for _, t := range txns {
		ev := TxEvents(t, seq)
		events = append(events, ev[0], ev[1])
		seq += 2
	}
	return MapEventsToSV(events)
}

// FromMVHistory converts a syntactic multiversion history (version
// subscripts as in H1.SI) into MVTxn form, synthesizing timestamps from
// history positions: a transaction's start timestamp is the position of its
// first action, its commit timestamp the position of its terminal.
func FromMVHistory(h history.History) []MVTxn {
	byTx := map[int]*MVTxn{}
	var order []int
	for i, op := range h {
		t, ok := byTx[op.Tx]
		if !ok {
			t = &MVTxn{Tx: op.Tx, Start: int64(i)}
			byTx[op.Tx] = t
			order = append(order, op.Tx)
		}
		switch {
		case op.Kind == history.Commit:
			t.Commit = int64(i)
			t.Committed = true
		case op.Kind == history.Abort:
			t.Commit = int64(i)
		case op.Kind.IsRead():
			t.Reads = append(t.Reads, op)
		case op.Kind.IsWrite():
			t.Writes = append(t.Writes, op)
		}
	}
	out := make([]MVTxn, 0, len(order))
	for _, tx := range order {
		out = append(out, *byTx[tx])
	}
	return out
}

// SISerializable reports whether the SI execution, mapped to its
// single-valued form, is conflict-serializable. Per §4.2 this is the
// touchstone for whether a particular SI execution had serializable
// dataflows (H1.SI does; the write-skew execution H5 does not).
func SISerializable(txns []MVTxn) bool {
	return Serializable(MapToSV(txns))
}
