package deps

import (
	"sort"

	"isolevel/internal/history"
)

// The paper (§4.2): "all Snapshot Isolation histories can be mapped to
// single-valued histories while preserving dataflow dependencies", and
// "Mapping of MV histories to SV histories is the only rigorous touchstone
// needed to place Snapshot Isolation in the Isolation Hierarchy."
//
// Under SI a transaction's reads all happen (logically) at its start
// timestamp and its writes become visible at its commit timestamp. The
// mapping therefore places each committed transaction's reads at its start
// timestamp and its writes (followed by its commit) at its commit
// timestamp, ordering events by timestamp. H1.SI maps to H1.SI.SV exactly
// this way.

// MVTxn is one transaction of a multiversion (Snapshot Isolation)
// execution: its interval timestamps and its read/write actions in program
// order. Timestamps must be distinct across all events of an execution
// (engines guarantee this; the syntactic converter synthesizes them from
// history positions).
type MVTxn struct {
	Tx        int
	Start     int64 // start timestamp (snapshot point)
	Commit    int64 // commit timestamp; meaningful only if Committed
	Committed bool
	Reads     []history.Op // item and predicate reads, program order
	Writes    []history.Op // item and predicate writes, program order
}

// MapToSV maps an SI execution to the paper's single-valued history:
// committed transactions contribute their reads at Start and their writes
// plus commit at Commit; aborted transactions contribute their reads at
// Start and an abort (their writes never became visible to anyone). Events
// are ordered by timestamp.
func MapToSV(txns []MVTxn) history.History {
	type event struct {
		ts  int64
		seq int
		ops history.History
	}
	var events []event
	seq := 0
	for _, t := range txns {
		reads := make(history.History, 0, len(t.Reads))
		for _, op := range t.Reads {
			op.Version = -1 // single-valued: drop version subscripts
			reads = append(reads, op)
		}
		if t.Committed {
			tail := make(history.History, 0, len(t.Writes)+1)
			for _, op := range t.Writes {
				op.Version = -1
				tail = append(tail, op)
			}
			tail = append(tail, history.Op{Tx: t.Tx, Kind: history.Commit, Version: -1})
			events = append(events,
				event{t.Start, seq, reads},
				event{t.Commit, seq + 1, tail})
		} else {
			tail := history.History{{Tx: t.Tx, Kind: history.Abort, Version: -1}}
			events = append(events,
				event{t.Start, seq, reads},
				event{t.Start, seq + 1, tail})
		}
		seq += 2
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		return events[i].seq < events[j].seq
	})
	var out history.History
	for _, e := range events {
		out = append(out, e.ops...)
	}
	return out
}

// FromMVHistory converts a syntactic multiversion history (version
// subscripts as in H1.SI) into MVTxn form, synthesizing timestamps from
// history positions: a transaction's start timestamp is the position of its
// first action, its commit timestamp the position of its terminal.
func FromMVHistory(h history.History) []MVTxn {
	byTx := map[int]*MVTxn{}
	var order []int
	for i, op := range h {
		t, ok := byTx[op.Tx]
		if !ok {
			t = &MVTxn{Tx: op.Tx, Start: int64(i)}
			byTx[op.Tx] = t
			order = append(order, op.Tx)
		}
		switch {
		case op.Kind == history.Commit:
			t.Commit = int64(i)
			t.Committed = true
		case op.Kind == history.Abort:
			t.Commit = int64(i)
		case op.Kind.IsRead():
			t.Reads = append(t.Reads, op)
		case op.Kind.IsWrite():
			t.Writes = append(t.Writes, op)
		}
	}
	out := make([]MVTxn, 0, len(order))
	for _, tx := range order {
		out = append(out, *byTx[tx])
	}
	return out
}

// SISerializable reports whether the SI execution, mapped to its
// single-valued form, is conflict-serializable. Per §4.2 this is the
// touchstone for whether a particular SI execution had serializable
// dataflows (H1.SI does; the write-skew execution H5 does not).
func SISerializable(txns []MVTxn) bool {
	return Serializable(MapToSV(txns))
}
