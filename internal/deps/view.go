package deps

import (
	"isolevel/internal/data"
	"isolevel/internal/history"
)

// View-serializability machinery. The paper's §4.2 appeals to view
// equivalence ("the MV histories are said to be View Equivalent with the
// SV histories, an approach covered in [BHG], Chapter 5"); this file
// implements the classical single-version notion so the repository can
// check both characterizations:
//
//   - two histories are view equivalent if they have the same committed
//     transactions, the same reads-from relation, and the same final
//     writers per item;
//   - a history is view serializable if it is view equivalent to some
//     serial ordering of its committed transactions.
//
// View serializability is NP-complete in general; ViewSerializable does an
// exact factorial search and is intended for the small (2–5 transaction)
// histories of the paper and the test suite.

// readsFrom computes, for each read in the committed projection, the
// transaction whose write it reads (0 = the initial state). Reads index by
// their position in the projected history.
func readsFrom(h history.History) map[int]int {
	out := map[int]int{}
	lastWriter := map[data.Key]int{}
	for i, op := range h {
		switch {
		case op.Kind.IsWrite() && op.Item != "":
			lastWriter[op.Item] = op.Tx
		case op.Kind.IsRead() && op.Item != "":
			out[i] = lastWriter[op.Item] // 0 if never written
		}
	}
	return out
}

// finalWriters returns the last committed writer of each item.
func finalWriters(h history.History) map[data.Key]int {
	out := map[data.Key]int{}
	for _, op := range h {
		if op.Kind.IsWrite() && op.Item != "" {
			out[op.Item] = op.Tx
		}
	}
	return out
}

// readsFromByOccurrence pairs each transaction's k-th read of item x with
// its source writer, independent of absolute history positions, so the
// relation can be compared across reorderings.
type readKey struct {
	tx    int
	item  data.Key
	index int // k-th read of item by tx
}

func readsFromRelation(h history.History) map[readKey]int {
	rf := readsFrom(h)
	counts := map[struct {
		tx   int
		item data.Key
	}]int{}
	out := map[readKey]int{}
	for i, op := range h {
		if !op.Kind.IsRead() || op.Item == "" {
			continue
		}
		ck := struct {
			tx   int
			item data.Key
		}{op.Tx, op.Item}
		k := counts[ck]
		counts[ck] = k + 1
		out[readKey{op.Tx, op.Item, k}] = rf[i]
	}
	return out
}

// ViewEquivalent reports whether two histories over the same committed
// transactions have identical reads-from relations and final writers.
func ViewEquivalent(a, b history.History) bool {
	ca, cb := a.Committed(), b.Committed()
	if len(ca) != len(cb) {
		return false
	}
	for tx := range ca {
		if !cb[tx] {
			return false
		}
	}
	pa, pb := a.CommittedProjection(), b.CommittedProjection()
	ra, rb := readsFromRelation(pa), readsFromRelation(pb)
	if len(ra) != len(rb) {
		return false
	}
	for k, v := range ra {
		if rb[k] != v {
			return false
		}
	}
	fa, fb := finalWriters(pa), finalWriters(pb)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if fb[k] != v {
			return false
		}
	}
	return true
}

// ViewSerializable reports whether h is view equivalent to some serial
// order of its committed transactions. Exponential in the number of
// committed transactions; intended for the paper's small histories.
func ViewSerializable(h history.History) bool {
	proj := h.CommittedProjection()
	var txns []int
	for _, tx := range proj.Txns() {
		txns = append(txns, tx)
	}
	if len(txns) <= 1 {
		return true
	}
	perm := make([]int, len(txns))
	copy(perm, txns)
	var try func(k int) bool
	try = func(k int) bool {
		if k == len(perm) {
			serial := proj.SerialOrder(perm...)
			return ViewEquivalent(proj, serial)
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if try(k + 1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	return try(0)
}
