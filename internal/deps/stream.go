package deps

import (
	"sort"

	"isolevel/internal/data"
	"isolevel/internal/history"
)

// Builder constructs the dependency graph of a history incrementally, one
// op at a time, without the batch Conflicts() pass over all op pairs.
//
// Per item (and per predicate name) it keeps only the *set* of
// transactions that have read or written it so far — an edge a -> b
// exists exactly when some access of a precedes a conflicting access of
// b, so set membership at the time of b's access is all the ordering
// information needed. Per-op work is bounded by the number of
// transactions that touched the op's item, and total edge state by the
// square of the transaction count, never by the history length. The
// streaming-vs-batch equivalence tests assert that Graph() agrees with
// BuildGraph on edges, cycles, and topological order.
type Builder struct {
	itemReaders map[data.Key]map[int]bool
	itemWriters map[data.Key]map[int]bool
	// predReaders indexes predicate reads under every name in their Preds
	// list; predWriters indexes item writes annotated "in P" (and
	// predicate writes) the same way. predWWriters holds predicate-write
	// ops only, for the pred-write/pred-write ww rule.
	predReaders map[string]map[int]bool
	predWriters map[string]map[int]bool
	predWWrites map[string]map[int]bool

	committed map[int]bool
	txs       []int
	seen      map[int]bool

	edges map[int]map[int][]Conflict
	idx   int
}

// NewBuilder returns an empty incremental graph builder.
func NewBuilder() *Builder {
	return &Builder{
		itemReaders: map[data.Key]map[int]bool{},
		itemWriters: map[data.Key]map[int]bool{},
		predReaders: map[string]map[int]bool{},
		predWriters: map[string]map[int]bool{},
		predWWrites: map[string]map[int]bool{},
		committed:   map[int]bool{},
		seen:        map[int]bool{},
		edges:       map[int]map[int][]Conflict{},
	}
}

// StreamGraph builds the dependency graph of h through a Builder — the
// incremental equivalent of BuildGraph.
func StreamGraph(h history.History) *Graph {
	b := NewBuilder()
	for _, op := range h {
		b.Feed(op)
	}
	return b.Graph()
}

// Feed consumes the next op of the history.
func (b *Builder) Feed(op history.Op) {
	t := op.Tx
	if !b.seen[t] {
		b.seen[t] = true
		b.txs = append(b.txs, t)
	}
	i := b.idx
	b.idx++
	switch {
	case op.Kind == history.Commit:
		b.committed[t] = true
		return
	case op.Kind == history.Abort:
		return
	case op.Kind == history.PredRead:
		// Conflicts with every earlier write into any of the read's
		// predicates (the batch PredWR rule), then register the reader.
		for _, name := range op.Preds {
			for w := range b.predWriters[name] {
				b.edge(w, t, PredWR, name, i)
			}
		}
		for _, name := range op.Preds {
			put(b.predReaders, name, t)
		}
	case op.Kind.IsRead():
		if op.Item != "" {
			for w := range b.itemWriters[op.Item] {
				b.edge(w, t, WR, string(op.Item), i)
			}
			put(b.itemReaders, op.Item, t)
		}
	case op.Kind.IsWrite():
		if op.Item != "" {
			for w := range b.itemWriters[op.Item] {
				b.edge(w, t, WW, string(op.Item), i)
			}
			for r := range b.itemReaders[op.Item] {
				b.edge(r, t, RW, string(op.Item), i)
			}
			put(b.itemWriters, op.Item, t)
		}
		// A write annotated as falling in P conflicts with earlier reads
		// of P (the batch PredRW rule); two predicate writes sharing a
		// name conflict ww.
		for _, name := range op.Preds {
			for r := range b.predReaders[name] {
				b.edge(r, t, PredRW, name, i)
			}
			if op.Kind == history.PredWrite {
				for w := range b.predWWrites[name] {
					b.edge(w, t, WW, name, i)
				}
			}
			put(b.predWriters, name, t)
			if op.Kind == history.PredWrite {
				put(b.predWWrites, name, t)
			}
		}
	}
}

// edge records a conflict edge from -> to (one representative Conflict
// per (from, to, kind) — enough for HasEdge, Cycle and TopoOrder).
func (b *Builder) edge(from, to int, kind ConflictKind, item string, toIdx int) {
	if from == to {
		return
	}
	tos := b.edges[from]
	if tos == nil {
		tos = map[int][]Conflict{}
		b.edges[from] = tos
	}
	for _, c := range tos[to] {
		if c.Kind == kind {
			return
		}
	}
	tos[to] = append(tos[to], Conflict{FromTx: from, ToTx: to, Kind: kind, Item: item, ToIdx: toIdx})
}

// Graph returns the dependency graph over the transactions committed so
// far, in the same shape BuildGraph produces.
func (b *Builder) Graph() *Graph {
	g := &Graph{Edges: map[int]map[int][]Conflict{}}
	nodes := append([]int{}, b.txs...)
	sort.Ints(nodes)
	for _, tx := range nodes {
		if b.committed[tx] {
			g.Nodes = append(g.Nodes, tx)
		}
	}
	for from, tos := range b.edges {
		if !b.committed[from] {
			continue
		}
		for to, cs := range tos {
			if !b.committed[to] {
				continue
			}
			if g.Edges[from] == nil {
				g.Edges[from] = map[int][]Conflict{}
			}
			g.Edges[from][to] = append(g.Edges[from][to], cs...)
		}
	}
	return g
}

// Serializable reports whether the committed projection seen so far is
// conflict-serializable.
func (b *Builder) Serializable() bool { return b.Graph().Cycle() == nil }

func put[K comparable](m map[K]map[int]bool, k K, v int) {
	set := m[k]
	if set == nil {
		set = map[int]bool{}
		m[k] = set
	}
	set[v] = true
}
