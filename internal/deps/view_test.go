package deps

import (
	"math/rand"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/history"
)

func TestViewEquivalentIdentity(t *testing.T) {
	h := history.H1()
	if !ViewEquivalent(h, h) {
		t.Fatal("history not view-equivalent to itself")
	}
}

func TestViewEquivalentIgnoresAbortedTxns(t *testing.T) {
	a := history.MustParse("w1[x] r2[x] a1 c2")
	b := history.MustParse("r2[x] w1[x] a1 c2")
	// After projecting away T1, both are just r2[x] reading the initial
	// state.
	if !ViewEquivalent(a, b) {
		t.Fatal("aborted transactions should not affect view equivalence")
	}
}

func TestViewEquivalentDetectsReadsFromChange(t *testing.T) {
	a := history.MustParse("w1[x] c1 r2[x] c2") // T2 reads from T1
	b := history.MustParse("r2[x] c2 w1[x] c1") // T2 reads initial state
	if ViewEquivalent(a, b) {
		t.Fatal("different reads-from must not be view equivalent")
	}
}

func TestViewEquivalentDetectsFinalWriterChange(t *testing.T) {
	a := history.MustParse("w1[x] w2[x] c1 c2") // final writer T2
	b := history.MustParse("w2[x] w1[x] c1 c2") // final writer T1
	if ViewEquivalent(a, b) {
		t.Fatal("different final writers must not be view equivalent")
	}
}

// The paper's histories: H1 and H5 are not view serializable either; the
// mapped H1.SI.SV is.
func TestPaperHistoriesViewSerializability(t *testing.T) {
	if ViewSerializable(history.H1()) {
		t.Error("H1 must not be view serializable")
	}
	if ViewSerializable(history.H5()) {
		t.Error("H5 (write skew) must not be view serializable")
	}
	if !ViewSerializable(history.H1SISV()) {
		t.Error("H1.SI.SV must be view serializable")
	}
	if !ViewSerializable(history.H4()) == false {
		// H4: r1[x] r2[x] w2[x] c2 w1[x] c1 — final writer T1, T1 reads
		// initial, T2 reads initial. Serial order T2,T1: r2 reads initial ✓,
		// w2, then T1 reads... T1 would read T2's write, not initial.
		// Serial order T1,T2: T2 reads T1's write. So not view serializable.
		t.Error("H4 must not be view serializable")
	}
}

func TestSerialHistoryAlwaysViewSerializable(t *testing.T) {
	h := history.MustParse("r1[x] w1[y] c1 r2[y] w2[x] c2")
	if !ViewSerializable(h) {
		t.Fatal("serial history must be view serializable")
	}
}

// Classical relationship: conflict-serializable ⇒ view-serializable.
// Checked on random small histories (the converse fails only with blind
// writes, which the generator includes).
func TestConflictImpliesViewProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	items := []data.Key{"x", "y"}
	for i := 0; i < 400; i++ {
		var h history.History
		n := 3 + r.Intn(6)
		for k := 0; k < n; k++ {
			tx := 1 + r.Intn(3)
			kind := history.Read
			if r.Intn(2) == 0 {
				kind = history.Write
			}
			h = append(h, history.NewOp(tx, kind, items[r.Intn(2)]))
		}
		for tx := 1; tx <= 3; tx++ {
			if len(h.OpsOf(tx)) > 0 {
				h = append(h, history.Op{Tx: tx, Kind: history.Commit, Version: -1})
			}
		}
		// Fix validity: Validate can fail only via post-terminal ops, which
		// the construction avoids.
		if err := h.Validate(); err != nil {
			t.Fatal(err)
		}
		if Serializable(h) && !ViewSerializable(h) {
			t.Fatalf("conflict-serializable but not view-serializable: %s", h)
		}
	}
}

// The classical blind-write separation (Papadimitriou): T1 and T2 write x
// and y in opposite orders (a ww cycle), but T3 blind-writes both items
// last, so the history is view equivalent to the serial T1 T2 T3 — view
// serializable without being conflict serializable.
func TestBlindWriteSeparation(t *testing.T) {
	h := history.MustParse("w1[x] w2[x] w2[y] c2 w1[y] c1 w3[x] w3[y] c3")
	if Serializable(h) {
		t.Fatal("blind-write history should not be conflict serializable (T1/T2 ww cycle)")
	}
	if !ViewSerializable(h) {
		t.Fatal("blind-write history should be view serializable (T3 final-writes everything, no reads)")
	}
}
