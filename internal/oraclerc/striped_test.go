package oraclerc

import (
	"fmt"
	"sync"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/engine"
)

// With the global commit mutex gone, disjoint writers must still never
// lose a committed update and statements must never observe a torn
// commit. Run with -race: this is the striped-commit regression test for
// the Read Consistency engine.
func TestStripedCommitDisjointWriters(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := NewDB(WithShards(shards))
			if got := db.ShardCount(); got != shards {
				t.Fatalf("ShardCount = %d, want %d", got, shards)
			}
			const workers, iters = 6, 50
			var tuples []data.Tuple
			for i := 0; i < workers; i++ {
				tuples = append(tuples, data.Tuple{Key: data.Key(fmt.Sprintf("k%d", i)), Row: data.Scalar(0)})
			}
			db.Load(tuples...)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					key := data.Key(fmt.Sprintf("k%d", w))
					for i := 0; i < iters; i++ {
						tx, _ := db.Begin(engine.ReadConsistency)
						v, err := engine.GetVal(tx, key)
						if err != nil {
							t.Errorf("get: %v", err)
							return
						}
						if err := engine.PutVal(tx, key, v+1); err != nil {
							t.Errorf("put: %v", err)
							return
						}
						if err := tx.Commit(); err != nil {
							t.Errorf("commit: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				key := data.Key(fmt.Sprintf("k%d", w))
				if got := db.ReadCommittedRow(key).Val(); got != iters {
					t.Fatalf("%s = %d, want %d (private key, no lost updates possible)", key, got, iters)
				}
			}
		})
	}
}

// Same-key writers serialize on the long write lock, not a commit mutex:
// the chain's ascending-commit-timestamp invariant must survive
// contention. Run with -race.
func TestStripedCommitSameKeyChainMonotonic(t *testing.T) {
	db := NewDB(WithShards(8))
	db.Load(data.Tuple{Key: "hot", Row: data.Scalar(0)})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				tx, _ := db.Begin(engine.ReadConsistency)
				v, _ := engine.GetVal(tx, "hot")
				_ = engine.PutVal(tx, "hot", v+1)
				_ = tx.Commit()
			}
		}()
	}
	wg.Wait()
	chain := db.Chain("hot")
	if len(chain) != 6*40+1 {
		t.Fatalf("chain length = %d, want %d", len(chain), 6*40+1)
	}
	for i := 1; i < len(chain); i++ {
		if chain[i].CommitTS <= chain[i-1].CommitTS {
			t.Fatalf("chain not ascending at %d: %d then %d", i, chain[i-1].CommitTS, chain[i].CommitTS)
		}
	}
}
