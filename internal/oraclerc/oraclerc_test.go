package oraclerc

import (
	"errors"
	"testing"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/predicate"
)

func load(db *DB, kv map[string]int64) {
	var ts []data.Tuple
	for k, v := range kv {
		ts = append(ts, data.Tuple{Key: data.Key(k), Row: data.Scalar(v)})
	}
	db.Load(ts...)
}

func begin(t *testing.T, db *DB) engine.Tx {
	t.Helper()
	tx, err := db.Begin(engine.ReadConsistency)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestBeginRejectsOtherLevels(t *testing.T) {
	db := NewDB()
	if _, err := db.Begin(engine.SnapshotIsolation); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("got %v", err)
	}
}

// Statement-level snapshots: each Get sees the latest committed value, so
// reads are NOT repeatable (P2 possible) — unlike SI.
func TestStatementSnapshotsAreFresh(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 50})
	t1 := begin(t, db)
	if v, _ := engine.GetVal(t1, "x"); v != 50 {
		t.Fatal("first read")
	}
	t2 := begin(t, db)
	_ = engine.PutVal(t2, "x", 10)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := engine.GetVal(t1, "x"); v != 10 {
		t.Fatalf("second statement read = %d, want 10 (fresh statement snapshot)", v)
	}
	_ = t1.Commit()
}

// No dirty reads: an uncommitted write is invisible (versions install at
// commit only).
func TestNoDirtyRead(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 1})
	t1 := begin(t, db)
	_ = engine.PutVal(t1, "x", 99)
	t2 := begin(t, db)
	if v, _ := engine.GetVal(t2, "x"); v != 1 {
		t.Fatalf("dirty read: %d", v)
	}
	_ = t1.Abort()
	_ = t2.Commit()
}

// First-writer-wins: the second writer BLOCKS (rather than aborting) and
// proceeds after the first commits.
func TestFirstWriterWinsBlocks(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 100})
	t1 := begin(t, db)
	t2 := begin(t, db)
	if err := engine.PutVal(t1, "x", 120); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- engine.PutVal(t2, "x", 130) }()
	select {
	case <-done:
		t.Fatal("second writer should block on the write lock")
	case <-time.After(50 * time.Millisecond):
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("blocked writer must succeed after lock grant (no FCW abort): %v", err)
	}
	if got := db.ReadCommittedRow("x").Val(); got != 130 {
		t.Fatalf("x = %d", got)
	}
}

// General lost update (P4) is possible: reads take no locks and writes are
// first-writer-wins, so H4 executes to completion with T2's update lost.
func TestH4LostUpdatePossible(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 100})
	t1 := begin(t, db)
	t2 := begin(t, db)
	v1, _ := engine.GetVal(t1, "x")
	v2, _ := engine.GetVal(t2, "x")
	_ = engine.PutVal(t2, "x", v2+20)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	_ = engine.PutVal(t1, "x", v1+30) // stale read-modify-write
	if err := t1.Commit(); err != nil {
		t.Fatalf("Read Consistency does not prevent P4: %v", err)
	}
	if got := db.ReadCommittedRow("x").Val(); got != 130 {
		t.Fatalf("x = %d; T2's increment should be lost (P4)", got)
	}
}

// Read skew (A5A) is possible: two statements, two snapshots.
func TestReadSkewPossible(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 50, "y": 50})
	t1 := begin(t, db)
	x, _ := engine.GetVal(t1, "x")
	t2 := begin(t, db)
	_ = engine.PutVal(t2, "x", 10)
	_ = engine.PutVal(t2, "y", 90)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	y, _ := engine.GetVal(t1, "y")
	if x+y == 100 {
		t.Fatalf("x+y = %d; A5A should be observable at Read Consistency", x+y)
	}
	_ = t1.Commit()
}

// Cursor sets are as of Open Cursor; UpdateCurrent on a row changed since
// then fails with ErrRowChanged — P4C not possible (§4.3: Read Consistency
// "disallows cursor lost updates (P4C)").
func TestCursorLostUpdatePrevented(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 100})
	t1 := begin(t, db)
	cur, err := t1.OpenCursor(predicate.KeyEq{Key: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Fetch(); err != nil { // rc1[x=100]
		t.Fatal(err)
	}
	t2 := begin(t, db)
	_ = engine.PutVal(t2, "x", 120)
	if err := t2.Commit(); err != nil { // w2[x=120] c2
		t.Fatal(err)
	}
	err = cur.UpdateCurrent(data.Scalar(130)) // wc1[x=130]
	if !errors.Is(err, engine.ErrRowChanged) {
		t.Fatalf("cursor update after row changed got %v, want ErrRowChanged", err)
	}
	_ = t1.Abort()
	if got := db.ReadCommittedRow("x").Val(); got != 120 {
		t.Fatalf("x = %d; T2's update must survive", got)
	}
}

func TestCursorUpdateCleanPath(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 100})
	t1 := begin(t, db)
	cur, _ := t1.OpenCursor(predicate.KeyEq{Key: "x"})
	_, _ = cur.Fetch()
	if err := cur.UpdateCurrent(data.Scalar(101)); err != nil {
		t.Fatal(err)
	}
	_ = cur.Close()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := db.ReadCommittedRow("x").Val(); got != 101 {
		t.Fatalf("x = %d", got)
	}
}

// Phantoms (P3) possible: two Selects in one transaction see different
// committed sets.
func TestPhantomsPossible(t *testing.T) {
	db := NewDB()
	db.Load(data.Tuple{Key: "e1", Row: data.Row{"active": 1}})
	p := predicate.MustParse("active == 1")
	t1 := begin(t, db)
	rows1, _ := t1.Select(p)
	t2 := begin(t, db)
	_ = t2.Put("e2", data.Row{"active": 1})
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	rows2, _ := t1.Select(p)
	if len(rows2) != len(rows1)+1 {
		t.Fatalf("phantom not observed: %d -> %d", len(rows1), len(rows2))
	}
	_ = t1.Commit()
}

func TestOwnWritesOverlay(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 1})
	t1 := begin(t, db)
	_ = engine.PutVal(t1, "x", 5)
	if v, _ := engine.GetVal(t1, "x"); v != 5 {
		t.Fatal("own write invisible")
	}
	_ = t1.Delete("x")
	if _, err := t1.Get("x"); !errors.Is(err, engine.ErrNotFound) {
		t.Fatal("own delete invisible")
	}
	rows, _ := t1.Select(predicate.True{})
	if len(rows) != 0 {
		t.Fatalf("select saw deleted row: %v", rows)
	}
	_ = t1.Abort()
}

func TestDeadlockBetweenWriters(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 1, "y": 1})
	t1 := begin(t, db)
	t2 := begin(t, db)
	_ = engine.PutVal(t1, "x", 2)
	_ = engine.PutVal(t2, "y", 2)
	first := make(chan error, 1)
	go func() { first <- engine.PutVal(t1, "y", 3) }()
	time.Sleep(30 * time.Millisecond)
	err := engine.PutVal(t2, "x", 3)
	if !errors.Is(err, engine.ErrDeadlock) {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
	_ = t2.Abort()
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	_ = t1.Commit()
}

func TestAbortDropsBufferedWrites(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 1})
	t1 := begin(t, db)
	_ = engine.PutVal(t1, "x", 9)
	_ = t1.Abort()
	if got := db.ReadCommittedRow("x").Val(); got != 1 {
		t.Fatalf("x = %d after abort", got)
	}
}

func TestTxDoneGuards(t *testing.T) {
	db := NewDB()
	t1 := begin(t, db)
	_ = t1.Commit()
	if _, err := t1.Get("x"); !errors.Is(err, engine.ErrTxDone) {
		t.Fatal("Get after commit")
	}
	if _, err := t1.Select(predicate.True{}); !errors.Is(err, engine.ErrTxDone) {
		t.Fatal("Select after commit")
	}
	if err := t1.Put("x", data.Scalar(1)); !errors.Is(err, engine.ErrTxDone) {
		t.Fatal("Put after commit")
	}
}
