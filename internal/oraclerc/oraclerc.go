// Package oraclerc is the Oracle-style Read Consistency facade over the
// unified multiversion engine (internal/mvcc): a DB restricted to the
// paper's §4.3 level, for callers that want a dedicated RC engine — the
// anomaly harness, the uniform fuzz families.
//
// The implementation — statement-level snapshots, long write locks
// (first-writer-wins), the cursor write-consistency check — lives in
// internal/mvcc (RCTx), where READ CONSISTENCY and SNAPSHOT ISOLATION
// transactions share one mv store and timestamp oracle so mixed-level
// histories can interleave them in a single engine. This package only
// narrows Begin to READ CONSISTENCY.
//
//isolint:deterministic
package oraclerc

import (
	"isolevel/internal/engine"
	"isolevel/internal/mvcc"
)

// DB is a Read Consistency database: the unified multiversion engine
// restricted to READ CONSISTENCY.
type DB = mvcc.DB

// Tx is a Read Consistency transaction.
type Tx = mvcc.RCTx

// TimedRead is one recorded read together with the statement-snapshot
// timestamp it executed at.
type TimedRead = mvcc.TimedRead

// Option configures a DB.
type Option = mvcc.Option

// WithShards sets the stripe count of the underlying multiversion store
// and of the write-lock manager's lock tables (default mv.DefaultShards).
func WithShards(n int) Option { return mvcc.WithShards(n) }

// NewDB returns an empty Read Consistency database.
func NewDB(opts ...Option) *DB {
	opts = append(opts, mvcc.WithLevels(engine.ReadConsistency))
	return mvcc.NewDB(opts...)
}
