package exerciser

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/history"
	"isolevel/internal/phenomena"
)

// The keyrange family must be behaviorally equivalent to the locking
// (predicate-table) family: image-refined next-key fragments admit exactly
// the conflicts a predicate lock admits, so the same schedule replayed on
// both engines must block at the same points, pick the same deadlock
// victims, record the same trace, and therefore report identical
// phenomena — at every level, and under per-transaction mixed
// assignments. These tests state that as a hard invariant over the
// regression corpus and a few hundred generated schedules; the fuzz
// campaign's cross-family divergence check enforces the profile half of
// it continuously.

func keyrangeTestFamilies(t *testing.T) (pred, keyrange Family) {
	t.Helper()
	var havePred, haveKR bool
	for _, fam := range Families() {
		switch fam.Name {
		case "locking":
			pred, havePred = fam, true
		case "keyrange":
			keyrange, haveKR = fam, true
		}
	}
	if !havePred || !haveKR {
		t.Fatal("families missing locking or keyrange")
	}
	return pred, keyrange
}

// assertEquivalent replays s on both engines under assign and requires
// identical traces, outcomes, attributed phenomena, and oracle charges.
func assertEquivalent(t *testing.T, s *Schedule, pred, keyrange Family, assign Assign, label string) {
	t.Helper()
	a, err := RunOne(s, pred, assign, 0)
	if err != nil {
		t.Fatalf("%s: locking: %v", label, err)
	}
	b, err := RunOne(s, keyrange, assign, 0)
	if err != nil {
		t.Fatalf("%s: keyrange: %v", label, err)
	}
	if !reflect.DeepEqual(sortedPreds(a.Normalized), sortedPreds(b.Normalized)) {
		t.Fatalf("%s: traces diverge\n locking:  %s\n keyrange: %s", label, a.Normalized, b.Normalized)
	}
	if !reflect.DeepEqual(a.Committed, b.Committed) || !reflect.DeepEqual(a.Aborted, b.Aborted) {
		t.Fatalf("%s: outcomes diverge: %v/%v vs %v/%v", label, a.Committed, a.Aborted, b.Committed, b.Aborted)
	}
	if !sameAttr(a.Attr, b.Attr) {
		t.Fatalf("%s: attributed phenomena diverge: %v vs %v", label, a.Attr, b.Attr)
	}
	o := NewOracle()
	ca := o.Charges(a.Attr, assign.Level)
	cb := o.Charges(b.Attr, assign.Level)
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("%s: oracle charges diverge: %v vs %v", label, ca, cb)
	}
}

// sortedPreds canonicalizes the order of each op's predicate annotations:
// the recorder collects them from a map, so their order is arbitrary (a
// set rendered as a slice), not an engine behavior.
func sortedPreds(h history.History) history.History {
	out := make(history.History, len(h))
	for i, op := range h {
		if len(op.Preds) > 1 {
			preds := append([]string(nil), op.Preds...)
			sort.Strings(preds)
			op.Preds = preds
		}
		out[i] = op
	}
	return out
}

func sameAttr(a, b map[phenomena.ID]map[phenomena.Pair]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id, pa := range a {
		pb, ok := b[id]
		if !ok || len(pa) != len(pb) {
			return false
		}
		for pair := range pa {
			if !pb[pair] {
				return false
			}
		}
	}
	return true
}

// TestKeyrangeEquivalenceGenerated: 200 generated schedules, every
// locking level, both engines — identical everything.
func TestKeyrangeEquivalenceGenerated(t *testing.T) {
	pred, keyrange := keyrangeTestFamilies(t)
	params := DefaultParams()
	for i := 0; i < 200; i++ {
		s := Generate(ScheduleSeed(20250729, i), params)
		for _, lvl := range pred.Levels {
			assertEquivalent(t, s, pred, keyrange, UniformAssign(lvl),
				fmt.Sprintf("schedule %d at %s", i, lvl))
		}
	}
}

// TestKeyrangeEquivalenceMixed: 200 generated schedules under the SAME
// per-transaction assignment on both engines — identical traces and
// identical per-transaction charges.
func TestKeyrangeEquivalenceMixed(t *testing.T) {
	pred, keyrange := keyrangeTestFamilies(t)
	params := DefaultParams()
	for i := 0; i < 200; i++ {
		seed := ScheduleSeed(424242, i)
		s := Generate(seed, params)
		assign := MixedAssign(seed, pred, params.Txs)
		assertEquivalent(t, s, pred, keyrange, assign, fmt.Sprintf("mixed schedule %d (%s)", i, assign))
	}
}

// TestKeyrangeEquivalenceDML: 200 schedules generated under the DML
// grammar — inserts, deletes, and range reads racing the classic ops —
// replayed at every locking level on both engines. This is the gap path
// under generated load: schedules that create and destroy rows inside
// scanned intervals must yield identical traces, profiles, and charges
// on the predicate-locking and keyrange engines.
func TestKeyrangeEquivalenceDML(t *testing.T) {
	pred, keyrange := keyrangeTestFamilies(t)
	params := DefaultParams()
	params.Mix = DMLMix()
	for i := 0; i < 200; i++ {
		s := Generate(ScheduleSeed(19950601, i), params)
		for _, lvl := range pred.Levels {
			assertEquivalent(t, s, pred, keyrange, UniformAssign(lvl),
				fmt.Sprintf("dml schedule %d at %s", i, lvl))
		}
	}
}

// TestKeyrangeEquivalenceInserts covers the half of the keyrange protocol
// the generator cannot reach: the grammar writes only preloaded items, so
// campaign schedules never take the insert/gap-lock path (AcquireGap,
// inheritance, stale anchors). These handcrafted schedules write items
// beyond Params.Items — absent keys, hence inserts — including the
// insert-abort-rescan-insert shape of the stale-anchor regression, and
// must behave identically on both engines at every level.
func TestKeyrangeEquivalenceInserts(t *testing.T) {
	pred, keyrange := keyrangeTestFamilies(t)
	op := func(txn int, kind OpKind, item int, val int64, p int) SOp {
		s := SOp{Txn: txn, Kind: kind, Value: val, Pred: p}
		if kind != OpPredRead && kind != OpCommit && kind != OpAbort {
			s.Item = itemName(item)
		}
		return s
	}
	// Predicate pool: 0 = true, 1 = val >= 1000 (Q), 2 = val < 1000 (R).
	cases := []struct {
		name string
		ops  []SOp
	}{
		{"phantom-insert", []SOp{
			op(1, OpPredRead, 0, 0, 1),
			op(2, OpWrite, 3, 1500, 0), // insert u, matches Q
			op(1, OpPredRead, 0, 0, 1),
			op(1, OpCommit, 0, 0, 0),
			op(2, OpCommit, 0, 0, 0),
		}},
		{"nonmatching-insert-through", []SOp{
			op(1, OpPredRead, 0, 0, 1),
			op(2, OpWrite, 3, 999, 0), // insert u, outside Q
			op(2, OpCommit, 0, 0, 0),
			op(1, OpPredRead, 0, 0, 1),
			op(1, OpCommit, 0, 0, 0),
		}},
		{"stale-anchor-shape", []SOp{
			op(1, OpPredRead, 0, 0, 1),
			op(2, OpWrite, 4, 998, 0), // insert v, outside Q; inherits T1's coverage
			op(2, OpAbort, 0, 0, 0),   // row gone, anchor stays while T1 lives
			op(3, OpPredRead, 0, 0, 1),
			op(4, OpWrite, 3, 1600, 0), // insert u below the stale anchor, matches Q
			op(3, OpPredRead, 0, 0, 1),
			op(1, OpCommit, 0, 0, 0),
			op(3, OpCommit, 0, 0, 0),
			op(4, OpCommit, 0, 0, 0),
		}},
		{"insert-then-update-into-pred", []SOp{
			op(1, OpPredRead, 0, 0, 1),
			op(2, OpWrite, 3, 997, 0),  // non-matching insert
			op(2, OpWrite, 3, 1700, 0), // updated into Q before committing
			op(2, OpCommit, 0, 0, 0),
			op(1, OpPredRead, 0, 0, 1),
			op(1, OpCommit, 0, 0, 0),
		}},
		// Two scans live at once: every anchor carries both scans'
		// fragments, so a granted insert inherits a multi-fragment cover
		// in one splice, and a second insert below the new anchor
		// evaluates against the inherited pair.
		{"dual-scan-inheritance", []SOp{
			op(1, OpPredRead, 0, 0, 1),
			op(2, OpPredRead, 0, 0, 2),
			op(3, OpWrite, 3, 996, 0), // insert u: matches R, blocks on T2
			op(2, OpCommit, 0, 0, 0),  // unblocks T3; u inherits T1's fragment
			op(3, OpCommit, 0, 0, 0),
			op(4, OpWrite, 4, 1800, 0), // insert v: matches Q, must find T1's coverage
			op(1, OpCommit, 0, 0, 0),
			op(4, OpCommit, 0, 0, 0),
		}},
		// Insert, commit, then a second scan starts and the row's own key
		// becomes one of its anchors — the install path that merges
		// lock-table-resident keys with store anchors.
		{"insert-commit-rescan", []SOp{
			op(1, OpPredRead, 0, 0, 1),
			op(2, OpWrite, 3, 995, 0), // non-matching insert, admitted
			op(2, OpCommit, 0, 0, 0),
			op(3, OpPredRead, 0, 0, 2), // scan sees u as a store anchor
			op(4, OpWrite, 4, 994, 0),  // matching-R insert blocks on T3
			op(3, OpCommit, 0, 0, 0),
			op(1, OpCommit, 0, 0, 0),
			op(4, OpCommit, 0, 0, 0),
		}},
	}
	for _, c := range cases {
		s := &Schedule{Seed: 0, Params: DefaultParams(), Ops: c.ops}
		for _, lvl := range pred.Levels {
			assertEquivalent(t, s, pred, keyrange, UniformAssign(lvl),
				fmt.Sprintf("%s at %s", c.name, lvl))
		}
	}
}

// TestKeyrangeEquivalenceCorpus replays every corpus history as a
// schedule through both engines at every level. Corpus files encode the
// paper's H1–H5 shapes and shrinker-minimized fuzz findings, so they
// concentrate exactly the interleavings phantom protection exists for.
func TestKeyrangeEquivalenceCorpus(t *testing.T) {
	pred, keyrange := keyrangeTestFamilies(t)
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.hist"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, file := range files {
		s, ok := corpusSchedule(t, file)
		if !ok {
			continue
		}
		for _, lvl := range pred.Levels {
			assertEquivalent(t, s, pred, keyrange, UniformAssign(lvl),
				fmt.Sprintf("%s at %s", filepath.Base(file), lvl))
		}
	}
}

// corpusSchedule parses a corpus history file into a replayable schedule:
// items map back to the generator's naming (x, y, z, ...), predicates to
// the pool names P/Q/R, write values carry over (or get fresh unique
// values when the history omits them).
func corpusSchedule(t *testing.T, file string) (*Schedule, bool) {
	t.Helper()
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var h history.History
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		h, err = history.Parse(line)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		break
	}
	if h == nil {
		t.Fatalf("%s: no history line", file)
	}

	itemIdx := map[data.Key]int{}
	maxItem := -1
	itemOf := func(k data.Key) (int, bool) {
		if _, ok := itemIdx[k]; !ok {
			// Invert the generator's naming so Setup() loads the item.
			found := false
			for i := 0; i < 64; i++ {
				if itemName(i) == k {
					itemIdx[k] = i
					found = true
					break
				}
			}
			if !found {
				return 0, false
			}
		}
		return itemIdx[k], true
	}
	predIdx := map[string]int{}
	for i, name := range predCanonNames {
		predIdx[name] = i
	}
	rangeIdx := map[string]int{}
	for i, name := range rangeCanonNames {
		rangeIdx[name] = i
	}

	s := &Schedule{Seed: 0}
	maxTxn := 0
	nextVal := int64(writeBase + 500)
	for _, op := range h {
		if op.Tx > maxTxn {
			maxTxn = op.Tx
		}
		sop := SOp{Txn: op.Tx}
		switch op.Kind {
		case history.Read:
			sop.Kind = OpRead
		case history.Write:
			sop.Kind = OpWrite
		case history.ReadCursor:
			sop.Kind = OpCurRead
		case history.WriteCursor:
			sop.Kind = OpCurWrite
		case history.Delete:
			sop.Kind = OpDelete
		case history.PredRead:
			if idx, ok := predIdx[op.Preds[0]]; ok {
				sop.Kind, sop.Pred = OpPredRead, idx
			} else if idx, ok := rangeIdx[op.Preds[0]]; ok {
				sop.Kind, sop.Pred = OpRangeRead, idx
			} else {
				t.Logf("%s: predicate %q outside the pools, skipping file", file, op.Preds[0])
				return nil, false
			}
		case history.Commit:
			sop.Kind = OpCommit
		case history.Abort:
			sop.Kind = OpAbort
		default:
			t.Logf("%s: op kind %v not replayable, skipping file", file, op.Kind)
			return nil, false
		}
		if op.Item != "" && op.Kind != history.Commit && op.Kind != history.Abort {
			idx, ok := itemOf(op.Item)
			if !ok {
				t.Logf("%s: item %q outside the generator naming, skipping file", file, op.Item)
				return nil, false
			}
			sop.Item = op.Item
			// Indices at or beyond the default preload are the insert
			// namespace: a write there is an insert, and neither it nor a
			// delete bumps Params.Items — Setup() must leave the row
			// absent so the gap path actually fires on replay.
			if idx >= DefaultParams().Items && op.Kind.IsWrite() {
				if sop.Kind == OpWrite {
					sop.Kind = OpInsert
				}
			} else if idx > maxItem {
				maxItem = idx
			}
		}
		if op.Kind.IsWrite() {
			if op.HasValue {
				sop.Value = op.Value
			} else {
				nextVal++
				sop.Value = nextVal
			}
		}
		s.Ops = append(s.Ops, sop)
	}
	s.Params = DefaultParams()
	s.Params.Txs = maxTxn
	if maxItem+1 > s.Params.Items {
		s.Params.Items = maxItem + 1
	}
	return s, true
}
