// Package exerciser is the differential isolation fuzzer: a seeded
// generator that manufactures random transaction schedules by the
// thousand, a harness that replays each schedule deterministically against
// every engine family at every isolation level it implements, streaming
// phenomenon checkers over the recorded traces, a Table 4 oracle that
// flags any engine admitting a phenomenon its level forbids, and a
// shrinker that minimizes failing schedules into the paper's history
// notation.
//
// Everything downstream of the seed is deterministic: Generate uses a
// single rand.New(rand.NewSource(seed)) stream, the schedule runner
// dispatches steps in script order with lock-wait observation (no sleeps),
// and campaign aggregation is by schedule index — so the same seed
// produces byte-for-byte identical reports regardless of worker count.
//
//isolint:deterministic
package exerciser

import (
	"fmt"
	"math/rand"
	"sort"

	"isolevel/internal/data"
	"isolevel/internal/history"
	"isolevel/internal/predicate"
)

// OpKind enumerates the generator's op grammar.
type OpKind int

// Generated op kinds. OpCurRead opens a cursor on the item and fetches it
// (the paper's rc); OpCurWrite writes through the transaction's most
// recently opened cursor (wc), degrading to a plain write if the
// transaction has no cursor open (the generator only emits it after an
// OpCurRead, but the shrinker may remove that read).
//
// The DML kinds create and destroy rows mid-history, which is what makes
// generated schedules reach the gap-locking path: OpInsert writes a key
// the setup never loaded (at the engine a plain Put of an absent key — an
// insert), OpDelete removes a key that was live at generation time (a
// delete of a key another transaction already removed is a tolerated
// no-op, so shrinking stays well-formed), and OpRangeRead scans a
// key-range predicate from RangePool, whose intervals straddle the
// preloaded and inserted key names.
const (
	OpRead OpKind = iota
	OpWrite
	OpPredRead
	OpCurRead
	OpCurWrite
	OpInsert
	OpDelete
	OpRangeRead
	OpCommit
	OpAbort
)

// SOp is one step of a generated schedule.
type SOp struct {
	Txn   int
	Kind  OpKind
	Item  data.Key
	Pred  int   // predicate pool index (OpPredRead) / range pool index (OpRangeRead)
	Value int64 // for OpWrite / OpCurWrite / OpInsert; unique per schedule
}

// Mix is the op-kind weighting of the generator's grammar.
type Mix struct {
	Read, Write, PredRead, CurRead, CurWrite int
	Insert, Delete, RangeRead                int
}

// DefaultMix weights plain reads and writes heavily, with a sprinkle of
// predicate reads and cursor traffic so P3/P4C-shaped interleavings occur.
// DML weights default to zero: the classic campaigns stay byte-identical.
func DefaultMix() Mix { return Mix{Read: 4, Write: 4, PredRead: 1, CurRead: 1, CurWrite: 1} }

// DMLMix adds inserts, deletes, and range reads on top of the default
// weights — the `make fuzz-dml` grammar. Every range read races rows
// being created and destroyed inside its interval, so keyrange campaigns
// exercise gap acquisition, fragment inheritance, and GC continuously.
func DMLMix() Mix {
	m := DefaultMix()
	m.Insert, m.Delete, m.RangeRead = 2, 2, 2
	return m
}

// Params parameterize schedule generation.
type Params struct {
	// Txs is the number of transactions per schedule.
	Txs int
	// Items is the number of distinct data items.
	Items int
	// OpsPerTx sizes transactions: each draws uniformly between 1 and
	// 2*OpsPerTx non-terminal ops (mean OpsPerTx + 1/2).
	OpsPerTx int
	// Mix weights the op grammar.
	Mix Mix
	// AbortFrac is the probability a transaction's scripted terminal is an
	// abort rather than a commit.
	AbortFrac float64
}

// DefaultParams is the fuzz subcommand's default shape: enough overlap on
// few items to hit every phenomenon class, small enough to run thousands
// of schedules per second.
func DefaultParams() Params {
	return Params{Txs: 4, Items: 3, OpsPerTx: 4, Mix: DefaultMix(), AbortFrac: 0.15}
}

// writeBase is the first value the generator assigns to writes. Initial
// item values are small (item index + 1), so written rows are exactly the
// rows with val >= writeBase — the predicate pool straddles that boundary
// to make writes move rows across a predicate.
const writeBase = 1000

// PredPool is the fixed predicate pool generated predicate reads draw
// from: a full scan, and the two halves of the written/unwritten boundary
// (updates move rows from the third predicate into the second, so item
// writes conflict with earlier predicate reads the way the paper's
// phantom histories require).
func PredPool() []predicate.P {
	return []predicate.P{
		predicate.True{},
		predicate.Field{Name: data.ValField, Op: predicate.GE, Arg: writeBase},
		predicate.Field{Name: data.ValField, Op: predicate.LT, Arg: writeBase},
	}
}

// predCanonNames are the paper-style names the intended history uses for
// the pool's predicates.
var predCanonNames = []string{"P", "Q", "R"}

// RangePool is the fixed pool of key-range predicates OpRangeRead draws
// from. Item names sort k6,k7,... < u < v < w < x < y < z, and inserts
// take the first free itemName index (u,v,w for the default 3-item
// schedules, then k6,k7,...), so every interval below straddles keys the
// setup loaded and keys DML creates mid-history — a generated range read
// can watch rows appear (insert phantoms) and vanish (delete phantoms)
// inside its interval.
func RangePool() []predicate.KeyRange {
	return []predicate.KeyRange{
		{Lo: "a", Hi: "{"}, // everything: all base items and all inserts
		{Lo: "k", Hi: "x"}, // the insert band k6..w, excluding the base tail
		{Lo: "u", Hi: "{"}, // letter-named items only, preloaded or inserted
	}
}

// rangeCanonNames are the paper-style names the intended history uses for
// the range pool (continuing predCanonNames' P, Q, R).
var rangeCanonNames = []string{"S", "T", "U"}

// Schedule is one generated interleaving, fully determined by (Seed,
// Params).
type Schedule struct {
	Seed   int64
	Params Params
	Ops    []SOp
}

// itemName names the i-th data item in paper style (x, y, z, ... then k6,
// k7, ...).
func itemName(i int) data.Key {
	letters := []string{"x", "y", "z", "u", "v", "w"}
	if i < len(letters) {
		return data.Key(letters[i])
	}
	return data.Key(fmt.Sprintf("k%d", i))
}

// Generate builds the schedule for (seed, p): per-transaction op lists
// drawn from the grammar, then a seeded random merge. The only randomness
// source is rand.New(rand.NewSource(seed)), so the result is byte-for-byte
// reproducible.
func Generate(seed int64, p Params) *Schedule {
	if p.Txs < 1 {
		p.Txs = 1
	}
	if p.Items < 1 {
		p.Items = 1
	}
	if p.OpsPerTx < 1 {
		p.OpsPerTx = 1
	}
	rng := rand.New(rand.NewSource(seed))
	weights := []int{
		p.Mix.Read, p.Mix.Write, p.Mix.PredRead, p.Mix.CurRead, p.Mix.CurWrite,
		p.Mix.Insert, p.Mix.Delete, p.Mix.RangeRead,
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		weights = []int{1, 1, 0, 0, 0, 0, 0, 0}
		total = 2
	}
	pick := func() OpKind {
		n := rng.Intn(total)
		for k, w := range weights {
			if n < w {
				return OpKind(k)
			}
			n -= w
		}
		return OpRead
	}

	nextVal := int64(writeBase)
	// The key pool: deletes target keys live at generation time (preloaded
	// items plus inserts emitted so far, across transactions), inserts
	// always pick the next fresh itemName index. Runtime state can differ —
	// an insert may abort, a concurrent delete may win — so the replay
	// treats deleting an absent key as a no-op rather than relying on the
	// pool being exact.
	liveKeys := make([]data.Key, 0, p.Items)
	for i := 0; i < p.Items; i++ {
		liveKeys = append(liveKeys, itemName(i))
	}
	nextInsert := p.Items
	perTx := make([][]SOp, p.Txs)
	for t := 0; t < p.Txs; t++ {
		txn := t + 1
		n := 1 + rng.Intn(2*p.OpsPerTx)
		var cursorItem data.Key // item under the tx's most recent cursor
		ops := make([]SOp, 0, n+1)
		for k := 0; k < n; k++ {
			kind := pick()
			if kind == OpCurWrite && cursorItem == "" {
				kind = OpWrite
			}
			if kind == OpDelete && len(liveKeys) == 0 {
				kind = OpRead // everything deleted: degrade deterministically
			}
			op := SOp{Txn: txn, Kind: kind}
			switch kind {
			case OpRead, OpCurRead:
				op.Item = itemName(rng.Intn(p.Items))
				if kind == OpCurRead {
					cursorItem = op.Item
				}
			case OpWrite:
				op.Item = itemName(rng.Intn(p.Items))
				nextVal++
				op.Value = nextVal
			case OpCurWrite:
				// Writes through the cursor currently parked on cursorItem;
				// Item doubles as the plain-write fallback target if the
				// shrinker later removes the cursor read.
				op.Item = cursorItem
				nextVal++
				op.Value = nextVal
			case OpPredRead:
				op.Pred = rng.Intn(len(PredPool()))
			case OpInsert:
				op.Item = itemName(nextInsert)
				nextInsert++
				liveKeys = append(liveKeys, op.Item)
				nextVal++
				op.Value = nextVal
			case OpDelete:
				i := rng.Intn(len(liveKeys))
				op.Item = liveKeys[i]
				liveKeys = append(liveKeys[:i], liveKeys[i+1:]...)
			case OpRangeRead:
				op.Pred = rng.Intn(len(RangePool()))
			}
			ops = append(ops, op)
		}
		term := SOp{Txn: txn, Kind: OpCommit}
		if rng.Float64() < p.AbortFrac {
			term.Kind = OpAbort
		}
		ops = append(ops, term)
		perTx[t] = ops
	}

	// Seeded random merge: repeatedly advance a uniformly chosen
	// non-exhausted transaction.
	pos := make([]int, p.Txs)
	var live []int
	for t := 0; t < p.Txs; t++ {
		live = append(live, t)
	}
	var merged []SOp
	for len(live) > 0 {
		i := rng.Intn(len(live))
		t := live[i]
		merged = append(merged, perTx[t][pos[t]])
		pos[t]++
		if pos[t] == len(perTx[t]) {
			live = append(live[:i], live[i+1:]...)
		}
	}
	return &Schedule{Seed: seed, Params: p, Ops: merged}
}

// Setup returns the initial committed state: every item loaded with a
// small distinct value (disjoint from all write values, so every read's
// provenance is unambiguous).
func (s *Schedule) Setup() []data.Tuple {
	out := make([]data.Tuple, s.Params.Items)
	for i := 0; i < s.Params.Items; i++ {
		out[i] = data.Tuple{Key: itemName(i), Row: data.Scalar(int64(i + 1))}
	}
	return out
}

// InitialValue returns item i's loaded value.
func InitialValue(i int) int64 { return int64(i + 1) }

// Txns returns the transaction numbers appearing in the schedule, ascending.
func (s *Schedule) Txns() []int {
	seen := map[int]bool{}
	var out []int
	for _, op := range s.Ops {
		if !seen[op.Txn] {
			seen[op.Txn] = true
			out = append(out, op.Txn)
		}
	}
	sort.Ints(out)
	return out
}

// WithoutTx returns a copy of the schedule with every op of txn removed.
func (s *Schedule) WithoutTx(txn int) *Schedule {
	out := &Schedule{Seed: s.Seed, Params: s.Params}
	for _, op := range s.Ops {
		if op.Txn != txn {
			out.Ops = append(out.Ops, op)
		}
	}
	return out
}

// WithoutOp returns a copy of the schedule with the i-th op removed.
func (s *Schedule) WithoutOp(i int) *Schedule {
	out := &Schedule{Seed: s.Seed, Params: s.Params}
	out.Ops = append(out.Ops, s.Ops[:i]...)
	out.Ops = append(out.Ops, s.Ops[i+1:]...)
	return out
}

// History renders the intended interleaving in the paper's notation —
// what the generator asked the engines to do, as opposed to the recorded
// trace of what the engines actually did. A cursor write whose cursor
// read was removed (by the shrinker) renders as a plain write, mirroring
// the step builder's fallback.
func (s *Schedule) History() history.History {
	type curKey struct {
		txn  int
		item data.Key
	}
	open := map[curKey]bool{}
	var h history.History
	for _, op := range s.Ops {
		switch op.Kind {
		case OpRead:
			h = append(h, history.NewOp(op.Txn, history.Read, op.Item))
		case OpWrite, OpInsert:
			// An insert IS a write of a never-loaded key; the notation does
			// not distinguish them.
			h = append(h, history.NewOp(op.Txn, history.Write, op.Item).WithValue(op.Value))
		case OpDelete:
			h = append(h, history.NewOp(op.Txn, history.Delete, op.Item))
		case OpPredRead:
			h = append(h, history.Op{Tx: op.Txn, Kind: history.PredRead,
				Preds: []string{predCanonNames[op.Pred]}, Version: -1})
		case OpRangeRead:
			h = append(h, history.Op{Tx: op.Txn, Kind: history.PredRead,
				Preds: []string{rangeCanonNames[op.Pred]}, Version: -1})
		case OpCurRead:
			open[curKey{op.Txn, op.Item}] = true
			h = append(h, history.NewOp(op.Txn, history.ReadCursor, op.Item))
		case OpCurWrite:
			kind := history.WriteCursor
			if !open[curKey{op.Txn, op.Item}] {
				kind = history.Write
			}
			h = append(h, history.NewOp(op.Txn, kind, op.Item).WithValue(op.Value))
		case OpCommit:
			h = append(h, history.Op{Tx: op.Txn, Kind: history.Commit, Version: -1})
		case OpAbort:
			h = append(h, history.Op{Tx: op.Txn, Kind: history.Abort, Version: -1})
		}
	}
	return h
}
