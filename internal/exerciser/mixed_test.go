package exerciser

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"isolevel/internal/engine"
	"isolevel/internal/history"
	"isolevel/internal/phenomena"
)

// --- Assignment plumbing. ---

func TestAssignRoundTrip(t *testing.T) {
	a := PerTxAssign(map[int]engine.Level{
		1: engine.Degree0, 2: engine.RepeatableRead, 3: engine.SnapshotIsolation, 4: engine.ReadConsistency,
	})
	ann := a.Annotation()
	if ann != "T1=D0 T2=RR T3=SI T4=ORC" {
		t.Fatalf("annotation = %q", ann)
	}
	b, err := ParseAssign(ann)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.PerTx, b.PerTx) {
		t.Fatalf("round trip: %v != %v", a.PerTx, b.PerTx)
	}
	// Full names parse too, case-insensitively.
	c, err := ParseAssign("T1=SERIALIZABLE t2=rc")
	if err != nil {
		t.Fatal(err)
	}
	if c.Level(1) != engine.Serializable || c.Level(2) != engine.ReadCommitted {
		t.Fatalf("parsed %v", c.PerTx)
	}
	for _, bad := range []string{"", "T1", "T1=XX", "1=RR", "T1=RR T1=RC"} {
		if _, err := ParseAssign(bad); err == nil {
			t.Errorf("ParseAssign(%q) accepted", bad)
		}
	}
}

func TestMixedAssignDeterministic(t *testing.T) {
	fams := MixedFamilies()
	for _, fam := range fams {
		a := MixedAssign(42, fam, 4)
		b := MixedAssign(42, fam, 4)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: assignments differ across calls", fam.Name)
		}
		if len(a.PerTx) != 4 {
			t.Fatalf("%s: %d assignments, want 4", fam.Name, len(a.PerTx))
		}
		for txn, lvl := range a.PerTx {
			ok := false
			for _, l := range fam.Levels {
				if l == lvl {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("%s: T%d assigned %s, outside the family's set", fam.Name, txn, lvl)
			}
		}
	}
	// Different families draw different assignments from the same seed
	// (statistically: check a seed where they differ).
	if reflect.DeepEqual(MixedAssign(42, fams[0], 4), MixedAssign(42, fams[1], 4)) &&
		reflect.DeepEqual(MixedAssign(43, fams[0], 4), MixedAssign(43, fams[1], 4)) {
		t.Fatal("family name does not split the assignment stream")
	}
}

// --- The per-transaction oracle's charging rules. ---

func TestPerTxOracleCharges(t *testing.T) {
	o := NewOracle()
	cases := []struct {
		name   string
		hist   string
		levels string
		want   []string // "Tn:ID" violations, in emission order
	}{
		// H1's dirty read charged to a SERIALIZABLE reader: violation.
		{"p1-strong-victim", "w1[x] r2[x] c2 c1", "T1=RU T2=SER", []string{"T2:P1"}},
		// Same pattern, reader at READ UNCOMMITTED: allowed.
		{"p1-weak-victim", "w1[x] r2[x] c2 c1", "T1=RU T2=RU", nil},
		// Degree 0 writer excuses the locked reader: the reader's own
		// protocol cannot prevent reading a write whose lock was already
		// dropped ([GLPT]'s "writers at least degree 1" assumption).
		{"p1-d0-writer-excuse", "w1[x] r2[x] c2 a1", "T1=D0 T2=RR", nil},
		// ... but a long-write-lock writer does not: strict form included.
		{"a1-charged", "w1[x] r2[x] c2 a1", "T1=RU T2=RR", []string{"T2:P1", "T2:A1"}},
		// P0 charged to the overwritten first writer.
		{"p0-victim-first-writer", "w1[x] w2[x] c1 c2", "T1=RU T2=D0", []string{"T1:P0"}},
		{"p0-d0-victim", "w1[x] w2[x] c1 c2", "T1=D0 T2=SER", nil},
		// P2 charged to the reader; the writer's level is irrelevant.
		{"p2-rr-victim", "r1[x] w2[x] c2 c1", "T1=RR T2=D0", []string{"T1:P2"}},
		{"p2-weak-victim", "r1[x] w2[x] c2 c1", "T1=D0 T2=RR", nil},
		// Lost update charged to the read-modify-write committer. (The
		// literal history also exhibits P0 — T1 overwrites T2's
		// uncommitted write — charged to T2, the overwritten writer.)
		{"p4-victim", "r1[x] w2[x] w1[x] c1 c2", "T1=RR T2=RC", []string{"T2:P0", "T1:P2", "T1:P4"}},
		{"p4-rc-victim", "r1[x] w2[x] w1[x] c1 c2", "T1=RC T2=RR", []string{"T2:P0"}},
		// Write skew needs both participants to forbid it: one strong
		// transaction mixed with a weak one legitimately exhibits the
		// pattern (the weak side's unlocked read is the enabler, and the
		// embedded P2 against it is equally allowed).
		{"a5b-one-sided", "r1[x] r2[y] w1[y] c1 w2[x] c2", "T1=SER T2=RU", nil},
		{"a5b-both-ser", "r1[x] r2[y] w1[y] c1 w2[x] c2", "T1=SER T2=SER", []string{"T2:P2", "T1:A5B"}},
		// Phantom charged to the predicate reader.
		{"p3-ser-victim", "r1[P] w2[y in P] c2 c1", "T1=SER T2=D0", []string{"T1:P3"}},
		{"p3-rr-victim", "r1[P] w2[y in P] c2 c1", "T1=RR T2=SER", nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := history.MustParse(c.hist)
			assign, err := ParseAssign(c.levels)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, ch := range o.Charges(phenomena.Attribution(h), assign.Level) {
				got = append(got, "T"+strconv.Itoa(ch.Victim)+":"+string(ch.ID))
			}
			// Streaming attribution must judge identically.
			var gotStream []string
			for _, ch := range o.Charges(phenomena.StreamAttribution(h), assign.Level) {
				gotStream = append(gotStream, "T"+strconv.Itoa(ch.Victim)+":"+string(ch.ID))
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Errorf("batch charges = %v, want %v", got, c.want)
			}
			if !reflect.DeepEqual(gotStream, c.want) {
				t.Errorf("stream charges = %v, want %v", gotStream, c.want)
			}
		})
	}
}

// TestUniformChargesMatchOldOracle: with a uniform assignment, the
// per-transaction oracle must flag exactly the identifiers the old
// whole-history oracle flagged (forbidden ∩ profile), on every corpus
// shape and a swath of generated histories.
func TestUniformChargesMatchOldOracle(t *testing.T) {
	o := NewOracle()
	p := DefaultParams()
	for _, lvl := range engine.Levels {
		forbidden := o.Forbidden(lvl)
		for seed := int64(1); seed <= 60; seed++ {
			h := Generate(seed, p).History()
			attr := phenomena.StreamAttribution(h)
			want := map[phenomena.ID]bool{}
			for id := range attr {
				if forbidden[id] {
					want[id] = true
				}
			}
			got := map[phenomena.ID]bool{}
			for _, ch := range o.Charges(attr, UniformAssign(lvl).Level) {
				got[ch.ID] = true
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s seed %d: per-tx %v != whole-history %v\n%s", lvl, seed, got, want, h)
			}
		}
	}
}

// --- Mixed campaigns end to end. ---

func TestMixedOracleHolds(t *testing.T) {
	opts := Options{Seed: 1, N: 40, Params: DefaultParams(), Mixed: true}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations() != 0 {
		t.Fatalf("mixed oracle violations on correct engines:\n%s%s", rep, rep.Detail())
	}
	if len(rep.Stats) != 3 {
		t.Fatalf("mixed campaign cells = %d, want locking + keyrange + mv", len(rep.Stats))
	}
	for _, st := range rep.Stats {
		if !st.Mixed || st.Runs != opts.N {
			t.Errorf("cell %s: mixed=%v runs=%d", st.Family, st.Mixed, st.Runs)
		}
		if len(st.Phenomena) == 0 {
			t.Errorf("cell %s: no phenomena observed — mixed runs are not exercising anything", st.Family)
		}
	}
}

func TestMixedCampaignWorkerInvariant(t *testing.T) {
	base := Options{Seed: 5, N: 16, Params: DefaultParams(), Mixed: true}
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Workers = 3
	rep, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != rep.String() {
		t.Fatalf("mixed reports differ across worker counts:\n%s\n---\n%s", serial, rep)
	}
}

// TestMixedMVWriteSkew: the unified mv family runs an SI and an RC
// transaction through the write-skew interleaving on one store — both
// commit (disjoint write sets: FCW passes, write locks don't collide),
// the mapped trace exhibits A5B, and the per-transaction oracle allows it
// (neither SI nor RC forbids write skew).
func TestMixedMVWriteSkew(t *testing.T) {
	s := &Schedule{
		Params: Params{Txs: 2, Items: 2, OpsPerTx: 2, Mix: DefaultMix()},
		Ops: []SOp{
			{Txn: 1, Kind: OpRead, Item: "x"},
			{Txn: 2, Kind: OpRead, Item: "y"},
			{Txn: 1, Kind: OpWrite, Item: "y", Value: 1001},
			{Txn: 2, Kind: OpWrite, Item: "x", Value: 1002},
			{Txn: 1, Kind: OpCommit},
			{Txn: 2, Kind: OpCommit},
		},
	}
	var mv Family
	for _, fam := range MixedFamilies() {
		if fam.Name == "mv" {
			mv = fam
		}
	}
	assign := PerTxAssign(map[int]engine.Level{1: engine.SnapshotIsolation, 2: engine.ReadConsistency})
	rr, err := RunOne(s, mv, assign, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Committed[1] || !rr.Committed[2] {
		t.Fatalf("disjoint write sets must both commit: aborted %v", rr.Aborted)
	}
	if !rr.Profile[phenomena.A5B] {
		t.Errorf("mapped mixed trace lacks write skew: %s", rr.Normalized)
	}
	if len(rr.MVTxns) != 1 || rr.MVTxns[0].Tx != 1 {
		t.Errorf("MVTxns should hold exactly the SI transaction: %v", rr.MVTxns)
	}
	if fs := Check(s, rr, NewOracle(), assign); len(fs) != 0 {
		t.Errorf("SI-vs-RC write skew is allowed, got findings: %v", fs)
	}
	// The same interleaving with the SI transaction judged at SERIALIZABLE
	// is still allowed — A5B needs both sides to forbid it.
	judge := PerTxAssign(map[int]engine.Level{1: engine.Serializable, 2: engine.ReadConsistency})
	if fs := Check(s, rr, NewOracle(), judge); len(fs) != 0 {
		t.Errorf("one-sided write skew wrongly charged: %v", fs)
	}
}

// TestMixedFaultInjection is the acceptance criterion's seeded fault
// probe: a transaction executes at READ COMMITTED inside a mixed locking
// run but is judged as REPEATABLE READ — the per-transaction oracle must
// charge it with the P2 it suffered, and the finding must shrink to a
// minimal history that replays under the finding's level annotation.
func TestMixedFaultInjection(t *testing.T) {
	fam := lockingFamily()
	o := NewOracle()
	p := DefaultParams()
	exec := PerTxAssign(map[int]engine.Level{
		1: engine.ReadCommitted, 2: engine.Degree0,
		3: engine.ReadUncommitted, 4: engine.ReadCommitted,
	})
	lie := PerTxAssign(map[int]engine.Level{
		1: engine.RepeatableRead, 2: engine.Degree0,
		3: engine.ReadUncommitted, 4: engine.ReadCommitted,
	})
	caught := false
	for seed := int64(1); seed <= 60 && !caught; seed++ {
		s := Generate(seed, p)
		rr, err := RunOne(s, fam, exec, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Judged by its own (actual) contract the run must be clean.
		if fs := Check(s, rr, o, exec); len(fs) != 0 {
			t.Fatalf("seed %d: honest mixed run flagged: %v", seed, fs)
		}
		for _, f := range Check(s, rr, o, lie) {
			if f.Kind != "oracle" || !strings.Contains(f.Detail, "P2 charged to T1=RR") {
				continue
			}
			caught = true
			if !f.Assign.Mixed() || !strings.Contains(f.String(), "levels: # levels: T1=RC") {
				t.Errorf("finding does not print the executed per-tx assignment:\n%s", f)
			}
			min := ShrinkFinding(s, f, fam, 0, o, lie)
			if min == nil {
				t.Fatalf("seed %d: finding does not reproduce for the shrinker", seed)
			}
			if len(min.Ops) >= len(s.Ops) {
				t.Errorf("seed %d: shrinker did not shrink (%d -> %d ops)", seed, len(s.Ops), len(min.Ops))
			}
			h := min.History()
			if _, err := history.Parse(h.String()); err != nil {
				t.Errorf("minimized history does not re-parse: %v", err)
			}
			// The minimized history + the printed annotation replay through
			// the per-transaction oracle and still convict T1.
			replayAssign, err := ParseAssign(lie.Annotation())
			if err != nil {
				t.Fatal(err)
			}
			convicted := false
			for _, ch := range o.Charges(phenomena.Attribution(h), replayAssign.Level) {
				if ch.ID == phenomena.P2 && ch.Victim == 1 {
					convicted = true
				}
			}
			if !convicted {
				t.Errorf("seed %d: minimized history %s does not convict T1 of P2 under %s", seed, h, lie.Annotation())
			}
		}
	}
	if !caught {
		t.Fatal("no seed produced an RR-judged P2 against T1 — fault injection found nothing")
	}
}
