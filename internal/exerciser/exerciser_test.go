package exerciser

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"isolevel/internal/deps"
	"isolevel/internal/engine"
	"isolevel/internal/history"
	"isolevel/internal/phenomena"
)

// --- Generator determinism. ---

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams()
	for seed := int64(1); seed <= 20; seed++ {
		a := Generate(seed, p)
		b := Generate(seed, p)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%s\n%s", seed, a.History(), b.History())
		}
	}
	if reflect.DeepEqual(Generate(1, p), Generate(2, p)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGeneratedHistoryWellFormed(t *testing.T) {
	p := DefaultParams()
	for seed := int64(1); seed <= 50; seed++ {
		h := Generate(seed, p).History()
		if err := h.Validate(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, h)
		}
		// The intended history round-trips through the parser, so shrinker
		// output and corpus entries replay via `isolevel check`.
		if _, err := history.Parse(h.String()); err != nil {
			t.Fatalf("seed %d: intended history does not re-parse: %v\n%s", seed, err, h)
		}
	}
}

// --- Campaign determinism and the oracle. ---

func smallOpts() Options {
	return Options{Seed: 1, N: 12, Params: DefaultParams(), Workers: 1}
}

func TestCampaignDeterministic(t *testing.T) {
	a, err := Run(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("serial campaigns differ:\n%s\n---\n%s", a, b)
	}
}

func TestCampaignWorkerCountInvariant(t *testing.T) {
	serial, err := Run(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.Workers = 3
	par, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Worker count changes wall-clock only: the full report — tallies
	// included — is byte-for-byte identical (per-schedule replays are
	// deterministic and aggregation is index-ordered).
	if serial.String() != par.String() {
		t.Fatalf("reports differ across worker counts:\n%s\n---\n%s", serial, par)
	}
}

// TestOracleHolds is the in-tree slice of the acceptance criterion: no
// engine family at any level admits a phenomenon its Table 4 row forbids.
func TestOracleHolds(t *testing.T) {
	opts := Options{Seed: 1, N: 40, Params: DefaultParams()}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations() != 0 {
		t.Fatalf("oracle violations on correct engines:\n%s%s", rep, rep.Detail())
	}
	if rep.Divergences != 0 {
		t.Fatalf("cross-family divergences:\n%s%s", rep, rep.Detail())
	}
	// The campaign must actually exercise the interesting cells: the weak
	// levels should witness the anomalies their rows allow.
	want := map[string]phenomena.ID{
		"DEGREE 0":         phenomena.P0,
		"READ UNCOMMITTED": phenomena.P1,
		"READ COMMITTED":   phenomena.P2,
	}
	for _, st := range rep.Stats {
		if id, ok := want[st.Level.String()]; ok && !st.Phenomena[id] {
			t.Errorf("%s: expected the campaign to observe %s (profile %s)", st.Level, id, idsString(st.Phenomena))
		}
	}
}

// TestCrossLevelOracle manufactures findings from correct engines: READ
// COMMITTED traces judged by the REPEATABLE READ contract must violate,
// and the shrinker must minimize a finding to a replayable history that
// still exhibits the violated phenomenon.
func TestCrossLevelOracle(t *testing.T) {
	rr := engine.RepeatableRead
	opts := Options{
		Seed: 1, N: 10,
		Params:      DefaultParams(),
		Families:    []string{"locking"},
		Levels:      []engine.Level{engine.ReadCommitted},
		OracleLevel: &rr,
		Shrink:      true,
		MaxShrink:   3,
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations() == 0 {
		t.Fatal("READ COMMITTED traces passed the REPEATABLE READ oracle — the fuzzer cannot detect level violations")
	}
	shrunk := 0
	for _, f := range rep.Findings {
		if f.Minimized == nil {
			continue
		}
		shrunk++
		orig := Generate(f.SchedSeed, opts.Params)
		if len(f.Minimized) >= len(orig.Ops) {
			t.Errorf("finding %d: shrinker did not shrink (%d ops -> %d)", f.Index, len(orig.Ops), len(f.Minimized))
		}
		// The minimized history replays: it parses, and it still exhibits
		// the violated phenomenon under both checkers.
		h, err := history.Parse(f.Minimized.String())
		if err != nil {
			t.Errorf("finding %d: minimized history does not parse: %v", f.Index, err)
			continue
		}
		if len(f.IDs) > 0 {
			id := f.IDs[0]
			if len(phenomena.Detect(id, h)) == 0 || !phenomena.StreamProfile(h)[id] {
				t.Errorf("finding %d: minimized history %s does not exhibit %s", f.Index, h, id)
			}
		}
	}
	if shrunk == 0 {
		t.Fatal("no finding was shrunk")
	}
}

// TestSnapshotNormalization replays the paper's write-skew shape on the
// snapshot engine and checks the mapped trace shows A5B but none of SI's
// forbidden phenomena.
func TestSnapshotNormalization(t *testing.T) {
	s := &Schedule{
		Seed:   0,
		Params: Params{Txs: 2, Items: 2, OpsPerTx: 2, Mix: DefaultMix()},
		Ops: []SOp{
			{Txn: 1, Kind: OpRead, Item: "x"},
			{Txn: 2, Kind: OpRead, Item: "y"},
			{Txn: 1, Kind: OpWrite, Item: "y", Value: 1001},
			{Txn: 2, Kind: OpWrite, Item: "x", Value: 1002},
			{Txn: 1, Kind: OpCommit},
			{Txn: 2, Kind: OpCommit},
		},
	}
	var snap Family
	for _, fam := range Families() {
		if fam.Name == "snapshot" {
			snap = fam
		}
	}
	rr, err := RunOne(s, snap, UniformAssign(engine.SnapshotIsolation), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Committed[1] || !rr.Committed[2] {
		t.Fatalf("disjoint write sets must both commit under SI: %v", rr.Aborted)
	}
	if !rr.Profile[phenomena.A5B] {
		t.Errorf("mapped SI trace lacks write skew: %s", rr.Normalized)
	}
	if fs := Check(s, rr, NewOracle(), UniformAssign(engine.SnapshotIsolation)); len(fs) != 0 {
		t.Errorf("write skew is allowed at SI, got findings: %v", fs)
	}
	// Write skew is the canonical non-serializable SI execution.
	if deps.Serializable(rr.Normalized) {
		t.Errorf("mapped write-skew history should not be serializable: %s", rr.Normalized)
	}
}

// TestSnapshotReadCertification checks the value-level oracle both ways:
// a correct SI run passes, and a doctored read — the value of an older
// version than the snapshot holds — is flagged as an mv-read finding
// even though it leaves the mapped-trace patterns untouched.
func TestSnapshotReadCertification(t *testing.T) {
	s := &Schedule{
		Params: Params{Txs: 2, Items: 1, OpsPerTx: 2, Mix: DefaultMix()},
		Ops: []SOp{
			{Txn: 1, Kind: OpWrite, Item: "x", Value: 1001},
			{Txn: 1, Kind: OpCommit},
			{Txn: 2, Kind: OpRead, Item: "x"},
			{Txn: 2, Kind: OpCommit},
		},
	}
	var snap Family
	for _, fam := range Families() {
		if fam.Name == "snapshot" {
			snap = fam
		}
	}
	rr, err := RunOne(s, snap, UniformAssign(engine.SnapshotIsolation), 0)
	if err != nil {
		t.Fatal(err)
	}
	if msg := checkSnapshotReads(s, rr); msg != "" {
		t.Fatalf("correct run flagged: %s", msg)
	}
	// Doctor T2's read to have returned the initial value despite T1's
	// earlier commit — a stale-snapshot read-path bug.
	for i := range rr.mvReads {
		if rr.mvReads[i].tx == 2 {
			rr.mvReads[i].val = InitialValue(0)
		}
	}
	if msg := checkSnapshotReads(s, rr); msg == "" {
		t.Fatal("stale snapshot read not flagged")
	}
}

// --- Streaming-vs-batch equivalence over generated histories. ---

func TestStreamingMatchesBatchOnGenerated(t *testing.T) {
	paramSets := []Params{
		DefaultParams(),
		{Txs: 6, Items: 2, OpsPerTx: 6, Mix: Mix{Read: 3, Write: 3, PredRead: 2, CurRead: 2, CurWrite: 2}, AbortFrac: 0.3},
		{Txs: 3, Items: 4, OpsPerTx: 8, Mix: Mix{Read: 5, Write: 5}, AbortFrac: 0},
	}
	for pi, p := range paramSets {
		for seed := int64(1); seed <= 120; seed++ {
			h := Generate(seed, p).History()
			batch := map[phenomena.ID]bool{}
			for id := range phenomena.Profile(h) {
				batch[id] = true
			}
			stream := phenomena.StreamProfile(h)
			if !reflect.DeepEqual(batch, stream) {
				t.Fatalf("params %d seed %d: batch %v != stream %v\n%s", pi, seed, batch, stream, h)
			}
			bg := deps.BuildGraph(h)
			sg := deps.StreamGraph(h)
			if !reflect.DeepEqual(bg.Nodes, sg.Nodes) || bg.String() != sg.String() {
				t.Fatalf("params %d seed %d: graphs differ\nbatch:\n%s\nstream:\n%s\n%s", pi, seed, bg, sg, h)
			}
			if (bg.Cycle() == nil) != (sg.Cycle() == nil) {
				t.Fatalf("params %d seed %d: cycle verdicts differ", pi, seed)
			}
		}
	}
}

// --- Corpus replay: batch checker, streaming checker, and expectations. ---

func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.hist"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var expect, wantCharged []string
			wantSer := ""
			var levels string
			var h history.History
			for _, line := range strings.Split(string(raw), "\n") {
				line = strings.TrimSpace(line)
				switch {
				case strings.HasPrefix(line, "# expect:"):
					expect = strings.Fields(strings.TrimPrefix(line, "# expect:"))
				case strings.HasPrefix(line, "# levels:"):
					levels = strings.TrimSpace(strings.TrimPrefix(line, "# levels:"))
				case strings.HasPrefix(line, "# charged:"):
					wantCharged = strings.Fields(strings.TrimPrefix(line, "# charged:"))
					if len(wantCharged) == 1 && wantCharged[0] == "none" {
						wantCharged = []string{}
					}
				case strings.HasPrefix(line, "# serializable:"):
					wantSer = strings.TrimSpace(strings.TrimPrefix(line, "# serializable:"))
				case line == "" || strings.HasPrefix(line, "#"):
				default:
					if h != nil {
						t.Fatalf("multiple histories in %s", path)
					}
					h, err = history.Parse(line)
					if err != nil {
						t.Fatalf("parse: %v", err)
					}
				}
			}
			if h == nil {
				t.Fatal("no history line")
			}
			want := map[phenomena.ID]bool{}
			for _, id := range expect {
				want[phenomena.ID(id)] = true
			}
			batch := map[phenomena.ID]bool{}
			for id := range phenomena.Profile(h) {
				batch[id] = true
			}
			if !reflect.DeepEqual(batch, want) {
				t.Errorf("batch profile %v, want %v", sortedIDs(batch), expect)
			}
			if stream := phenomena.StreamProfile(h); !reflect.DeepEqual(stream, want) {
				t.Errorf("streaming profile %v, want %v", sortedIDs(stream), expect)
			}
			if wantSer != "" {
				got := "no"
				if deps.Serializable(h) {
					got = "yes"
				}
				if got != wantSer {
					t.Errorf("serializable = %s, want %s", got, wantSer)
				}
				sg := deps.StreamGraph(h)
				if (sg.Cycle() == nil) != (wantSer == "yes") {
					t.Errorf("streaming serializability disagrees with expectation %s", wantSer)
				}
			}
			// Attribution: the batch matchers and the streaming checker must
			// report identical participating-transaction sets on every
			// corpus history, annotated or not.
			battr := phenomena.Attribution(h)
			sattr := phenomena.StreamAttribution(h)
			if !reflect.DeepEqual(battr, sattr) {
				t.Errorf("attribution differs:\n  batch  %v\n  stream %v", battr, sattr)
			}
			// Annotated files carry a per-transaction level assignment and
			// the exact charges the per-transaction oracle must produce
			// ("# charged: none" pins a negative: the phenomena are present
			// but nobody whose level forbids them is validly charged).
			if levels != "" {
				assign, err := ParseAssign(levels)
				if err != nil {
					t.Fatalf("levels annotation: %v", err)
				}
				if wantCharged == nil {
					t.Fatal("annotated corpus file lacks a # charged: line")
				}
				for name, attr := range map[string]map[phenomena.ID]map[phenomena.Pair]bool{
					"batch": battr, "stream": sattr,
				} {
					got := []string{}
					for _, ch := range NewOracle().Charges(attr, assign.Level) {
						got = append(got, fmt.Sprintf("T%d:%s", ch.Victim, ch.ID))
					}
					if !reflect.DeepEqual(got, wantCharged) {
						t.Errorf("%s charges = %v, want %v", name, got, wantCharged)
					}
				}
			}
		})
	}
}

func sortedIDs(set map[phenomena.ID]bool) []string {
	var out []string
	for id := range set {
		out = append(out, string(id))
	}
	sort.Strings(out)
	return out
}

// --- Shrinker unit behavior. ---

func TestShrinkIsDeterministicAndMinimal(t *testing.T) {
	p := DefaultParams()
	s := Generate(3, p)
	// Property: the schedule still contains a write by transaction 1.
	keep := func(c *Schedule) bool {
		for _, op := range c.Ops {
			if op.Txn == 1 && (op.Kind == OpWrite || op.Kind == OpCurWrite) {
				return true
			}
		}
		return false
	}
	if !keep(s) {
		t.Skip("seed 3 has no write by T1")
	}
	a := Shrink(s, keep)
	b := Shrink(s, keep)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("shrinking is not deterministic")
	}
	// 1-minimal for the property: a write op plus its terminal.
	nonTerm := 0
	for _, op := range a.Ops {
		if op.Kind != OpCommit && op.Kind != OpAbort {
			nonTerm++
		}
	}
	if nonTerm != 1 {
		t.Errorf("expected a single surviving non-terminal op, got %d: %s", nonTerm, a.History())
	}
}
