package exerciser

// Shrink minimizes a schedule while keep (the "still fails" predicate)
// holds: first whole transactions, then single non-terminal ops, repeated
// to a fixpoint. The sweeps are deterministic (ascending transactions,
// left-to-right ops), so the same failing schedule always minimizes to
// the same sub-schedule. If keep rejects the input itself (the finding
// does not reproduce), the input is returned unchanged.
func Shrink(s *Schedule, keep func(*Schedule) bool) *Schedule {
	if !keep(s) {
		return s
	}
	cur := s
	for changed := true; changed; {
		changed = false
		for _, txn := range cur.Txns() {
			cand := cur.WithoutTx(txn)
			if len(cand.Ops) == 0 {
				continue
			}
			if keep(cand) {
				cur = cand
				changed = true
			}
		}
		for i := 0; i < len(cur.Ops); i++ {
			if k := cur.Ops[i].Kind; k == OpCommit || k == OpAbort {
				continue // keep terminals so transaction fates stay scripted
			}
			cand := cur.WithoutOp(i)
			if keep(cand) {
				cur = cand
				changed = true
				i--
			}
		}
	}
	return cur
}

// ShrinkFinding minimizes the schedule behind a finding: the predicate
// reruns the candidate schedule on the finding's engine family under the
// finding's level assignment (per-transaction assignments survive
// shrinking unchanged — dropped transactions simply never Begin), judges
// it with the given oracle and judge assignment, and demands a finding of
// the same kind (and, for oracle findings, containing the same first
// violated identifier). Returns the minimized schedule, or nil if the
// finding does not reproduce on a rerun.
func ShrinkFinding(s *Schedule, f Finding, fam Family, shards int, o *Oracle, judge Assign) *Schedule {
	reproduces := func(cand *Schedule) bool {
		rr, err := RunOne(cand, fam, f.Assign, shards)
		if err != nil {
			return false
		}
		for _, g := range Check(cand, rr, o, judge) {
			if g.Kind != f.Kind {
				continue
			}
			if f.Kind == "oracle" {
				found := false
				for _, id := range g.IDs {
					if len(f.IDs) > 0 && id == f.IDs[0] {
						found = true
					}
				}
				if !found {
					continue
				}
			}
			return true
		}
		return false
	}
	if !reproduces(s) {
		return nil
	}
	return Shrink(s, reproduces)
}
