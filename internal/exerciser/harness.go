package exerciser

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/deps"
	"isolevel/internal/engine"
	"isolevel/internal/history"
	"isolevel/internal/lock"
	"isolevel/internal/locking"
	"isolevel/internal/mvcc"
	"isolevel/internal/obs"
	"isolevel/internal/oraclerc"
	"isolevel/internal/phenomena"
	"isolevel/internal/schedule"
	"isolevel/internal/snapshot"
)

// Family is one concurrency-control engine family and the isolation
// levels it implements.
type Family struct {
	Name   string
	Levels []engine.Level
	// Multiversion marks the families whose traces need the §4.2 MV→SV
	// mapping before checking (single-version families' recorded traces
	// are already in conflict order).
	Multiversion bool
	New          func(shards int) engine.DB
}

// Families lists the engine families of uniform campaigns. Together their
// level lists cover all eight levels of the extended Table 4; locking and
// keyrange implement the same six Table 2 degrees with different phantom
// protocols, so the campaign's cross-family divergence check doubles as a
// continuous equivalence proof between the predicate table and key-range
// locking.
func Families() []Family {
	return []Family{
		lockingFamily(),
		keyrangeFamily(0),
		{Name: "snapshot", Levels: []engine.Level{engine.SnapshotIsolation}, Multiversion: true, New: func(s int) engine.DB {
			if s > 0 {
				return snapshot.NewDB(snapshot.WithShards(s))
			}
			return snapshot.NewDB()
		}},
		{Name: "oraclerc", Levels: []engine.Level{engine.ReadConsistency}, Multiversion: true, New: func(s int) engine.DB {
			if s > 0 {
				return oraclerc.NewDB(oraclerc.WithShards(s))
			}
			return oraclerc.NewDB()
		}},
	}
}

// MixedFamilies lists the engine families of mixed-level campaigns: the
// locking scheduler (whose six Table 2 degrees interleave in one lock
// manager, under either phantom protocol) and the unified multiversion
// engine (whose SNAPSHOT ISOLATION and READ CONSISTENCY transactions
// share one store — see internal/mvcc). The snapshot/oraclerc facades
// disappear here: they are single-level restrictions of the mv family.
func MixedFamilies() []Family {
	return []Family{
		lockingFamily(),
		keyrangeFamily(0),
		{Name: "mv", Levels: []engine.Level{engine.SnapshotIsolation, engine.ReadConsistency}, Multiversion: true, New: func(s int) engine.DB {
			if s > 0 {
				return mvcc.NewDB(mvcc.WithShards(s))
			}
			return mvcc.NewDB()
		}},
	}
}

func lockingFamily() Family {
	return Family{Name: "locking", Levels: locking.LockingLevels, New: func(s int) engine.DB {
		if s > 0 {
			return locking.NewDB(locking.WithShards(s))
		}
		return locking.NewDB()
	}}
}

// keyrangeFamily is the locking scheduler with key-range (next-key)
// phantom prevention instead of the gated predicate table. Same Table 2
// levels, same oracle rows — any divergence from the locking family is a
// bug in one of the two protocols. With esc > 0 the family runs with lock
// escalation at that threshold: blocking turns strictly coarser than the
// predicate table's, so escalated campaigns must select this family alone
// (oracle-only — the Table 4 guarantees still hold; trace equivalence
// does not).
func keyrangeFamily(esc int) Family {
	return Family{Name: "keyrange", Levels: locking.LockingLevels, New: func(s int) engine.DB {
		opts := []locking.Option{locking.WithPhantomProtection(locking.PhantomKeyrange)}
		if s > 0 {
			opts = append(opts, locking.WithShards(s))
		}
		if esc > 0 {
			opts = append(opts, locking.WithEscalation(esc))
		}
		return locking.NewDB(opts...)
	}}
}

// RunResult is one schedule executed on one engine under one level
// assignment.
type RunResult struct {
	Family string
	// Assign is the per-transaction level assignment the run executed
	// under (uniform for non-mixed campaigns).
	Assign Assign
	// Raw is the recorder trace in script transaction numbers — the order
	// operations took effect inside the engine.
	Raw history.History
	// Normalized is the single-valued form the oracle checks: the raw
	// trace for the locking family (recorded under locks, so trace order
	// is conflict order), and the paper's MV→SV mapping for the
	// multiversion families — each SNAPSHOT ISOLATION transaction's reads
	// at its start timestamp and writes at its commit timestamp, each
	// READ CONSISTENCY transaction's reads at their statement snapshots —
	// merged into one event stream so mixed runs normalize coherently.
	Normalized history.History
	// Attr is the streaming attributed profile of Normalized: exhibited
	// phenomena with their participating transaction pairs.
	Attr map[phenomena.ID]map[phenomena.Pair]bool
	// Profile is Attr's key set (kept for stats and divergence checks).
	Profile map[phenomena.ID]bool
	// MVTxns are the SNAPSHOT ISOLATION transactions' timestamped exports
	// (nil for other families), used for the first-committer-wins interval
	// invariant.
	MVTxns []deps.MVTxn
	// mvReads / mvCommits are the multiversion families' timestamped
	// reads and committed write sets (nil for locking), for the
	// snapshot-read value certification.
	mvReads   []mvRead
	mvCommits []mvCommit
	// rangeReads are the multiversion families' timestamped range-scan
	// result sets, for the range-read (phantom) certification.
	rangeReads []rangeRead
	// Committed / Aborted index script transaction outcomes.
	Committed map[int]bool
	Aborted   map[int]bool
	// Locks snapshots the engine's lock-manager counters after the run
	// (zero value for engines without a lock manager). Campaigns aggregate
	// these; GapGrants > 0 is the proof generated DML reached the
	// key-range gap path.
	Locks lock.Stats
	// Sink is the run's observability sink: a virtual-clock flight
	// recorder attached to engines that support it (nil otherwise). The
	// virtual clock ticks once per recorded instant and the lockstep
	// runner executes at most one engine op at a time, so the event
	// stream — ticks included — is deterministic across reruns, worker
	// counts, and the race detector.
	Sink *obs.Sink
}

// mvRead is one exported read with the snapshot slot it executed at.
type mvRead struct {
	slot   int64
	tx     int
	key    data.Key
	val    int64
	hasVal bool
}

// mvVersion is one key's state after a committed write set applies:
// either a value or a tombstone (the row was deleted).
type mvVersion struct {
	val     int64
	deleted bool
}

// mvCommit is one committed transaction's final write values (or
// tombstones) at its commit slot.
type mvCommit struct {
	slot   int64
	writes map[data.Key]mvVersion
}

// rangeRead is one exported range scan: the snapshot slot it executed
// at, the scanned interval, and the result set it returned.
type rangeRead struct {
	slot   int64
	tx     int
	lo, hi data.Key
	keys   []data.Key
	vals   []int64
}

// mvExporter is implemented by mvcc.SITx.
type mvExporter interface {
	MVTxn() (start, commit int64, committed bool, reads, writes history.History)
}

// svExporter is implemented by mvcc.RCTx.
type svExporter interface {
	SVTrace() (committed bool, commitSlot int64, reads []mvcc.TimedRead, writes history.History)
}

// rangeExporter is implemented by mvcc.SITx and mvcc.RCTx.
type rangeExporter interface {
	RangeReads() []mvcc.RangeRead
}

// RunOne replays the schedule on a fresh engine of the family under the
// given per-transaction level assignment through the deterministic
// lockstep runner, then normalizes the recorded trace for checking.
// flightDepth is the per-run flight-recorder capacity: deep enough to
// hold every event a default-sized schedule emits, so finding timelines
// show the whole run rather than a truncated tail.
const flightDepth = 512

func RunOne(s *Schedule, fam Family, assign Assign, shards int) (*RunResult, error) {
	db := fam.New(shards)
	var sink *obs.Sink
	if so, ok := db.(interface{ SetObs(*obs.Sink) }); ok {
		sink = obs.NewSink(obs.NewVirtualClock()).WithFlight(flightDepth)
		so.SetObs(sink)
	}
	db.Load(s.Setup()...)
	steps, cap := s.Steps()
	// Every engine that can block reports waits through the lock
	// observer, so the step timeout is pure backstop; the default 250ms
	// is generous on an idle box but a CPU-starved parallel campaign can
	// exceed it and misclassify a merely slow op as blocked, which
	// perturbs dispatch order and breaks byte-for-byte determinism across
	// worker counts.
	opts := schedule.Options{
		Level: assign.Uniform, PerTx: assign.PerTx,
		StepTimeout: 10 * time.Second, DrainTimeout: 30 * time.Second,
	}
	res, err := schedule.Run(db, opts, steps)
	if err != nil {
		return nil, fmt.Errorf("exerciser: %s at %s (schedule seed %d): %w", fam.Name, assign, s.Seed, err)
	}
	rr := &RunResult{
		Family:    fam.Name,
		Assign:    assign,
		Raw:       res.History,
		Committed: res.Committed,
		Aborted:   res.Aborted,
		Sink:      sink,
	}
	if ls, ok := db.(interface{ LockStats() lock.Stats }); ok {
		rr.Locks = ls.LockStats()
	}
	if fam.Multiversion {
		rr.Normalized = mvNormalize(s, cap, rr)
	} else {
		rr.Normalized = res.History
	}
	rr.Attr = phenomena.StreamAttribution(rr.Normalized)
	rr.Profile = make(map[phenomena.ID]bool, len(rr.Attr))
	for id := range rr.Attr {
		rr.Profile[id] = true
	}
	return rr, nil
}

// mvNormalize maps a multiversion run — pure SI, pure RC, or mixed — to
// its single-valued history: every captured transaction contributes
// timestamped event blocks (per the slot convention shared by SITx.MVTxn
// and RCTx.SVTrace: commits at even slots 2*ts, snapshot reads at the odd
// slot just above, 2*ts+1), and one MapEventsToSV call orders them all.
// Along the way it collects the SI interval exports (for the FCW
// invariant) and every timestamped read / committed write set (for the
// snapshot-read value certification).
func mvNormalize(s *Schedule, cap *capture, rr *RunResult) history.History {
	var events []deps.SVEvent
	seq := 0
	for _, txn := range s.Txns() {
		if rx, ok := cap.tx(txn).(rangeExporter); ok {
			for _, x := range rx.RangeReads() {
				rr.rangeReads = append(rr.rangeReads, rangeRead{
					slot: x.Slot, tx: txn, lo: x.Lo, hi: x.Hi, keys: x.Keys, vals: x.Vals,
				})
			}
		}
		switch tx := cap.tx(txn).(type) {
		case svExporter:
			committed, commitSlot, reads, writes := tx.SVTrace()
			lastRead := int64(0)
			for _, r := range reads {
				op := r.Op
				op.Tx = txn
				events = append(events, deps.SVEvent{TS: int64(r.TS), Seq: seq, Ops: history.History{op}})
				seq++
				lastRead = int64(r.TS)
				rr.mvReads = append(rr.mvReads, mvRead{slot: int64(r.TS), tx: txn, key: op.Item, val: op.Value, hasVal: op.HasValue})
			}
			var tail history.History
			ts := lastRead
			if committed {
				for _, op := range writes {
					op.Tx = txn
					tail = append(tail, op)
				}
				tail = append(tail, history.Op{Tx: txn, Kind: history.Commit, Version: -1})
				ts = commitSlot
				if len(writes) > 0 {
					c := mvCommit{slot: commitSlot, writes: map[data.Key]mvVersion{}}
					for _, op := range writes {
						c.writes[op.Item] = commitVersion(op)
					}
					rr.mvCommits = append(rr.mvCommits, c)
				}
			} else {
				tail = history.History{{Tx: txn, Kind: history.Abort, Version: -1}}
			}
			events = append(events, deps.SVEvent{TS: ts, Seq: seq, Ops: tail})
			seq++
		case mvExporter:
			start, commit, committed, reads, writes := tx.MVTxn()
			t := deps.MVTxn{Tx: txn, Start: start, Commit: commit, Committed: committed}
			for _, op := range reads {
				op.Tx = txn
				t.Reads = append(t.Reads, op)
			}
			for _, op := range writes {
				op.Tx = txn
				t.Writes = append(t.Writes, op)
			}
			rr.MVTxns = append(rr.MVTxns, t)
			ev := deps.TxEvents(t, seq)
			events = append(events, ev[0], ev[1])
			seq += 2
			for _, op := range t.Reads {
				rr.mvReads = append(rr.mvReads, mvRead{slot: t.Start, tx: txn, key: op.Item, val: op.Value, hasVal: op.HasValue})
			}
			if committed && len(t.Writes) > 0 {
				c := mvCommit{slot: t.Commit, writes: map[data.Key]mvVersion{}}
				for _, op := range t.Writes {
					c.writes[op.Item] = commitVersion(op)
				}
				rr.mvCommits = append(rr.mvCommits, c)
			}
		}
	}
	return deps.MapEventsToSV(events)
}

// commitVersion maps an exported write op to the post-commit state of
// its key: Delete kind (no after-image) becomes a tombstone, everything
// else the written value.
func commitVersion(op history.Op) mvVersion {
	if op.Kind == history.Delete || !op.HasValue {
		return mvVersion{deleted: true}
	}
	return mvVersion{val: op.Value}
}

// Finding is one oracle violation (or divergence) discovered by a
// campaign.
type Finding struct {
	// Index and SchedSeed identify the schedule within the campaign:
	// `isolevel fuzz -seed <campaign seed> -start <Index> -n 1` reruns it.
	Index     int
	SchedSeed int64
	Family    string
	// Assign is the level assignment the schedule executed under: uniform
	// for plain campaigns, per-transaction for -mixed ones.
	Assign Assign
	// Kind classifies the finding: "oracle" (a phenomenon charged to a
	// transaction whose level forbids it), "serializability" (cyclic
	// dependency graph with every transaction at SERIALIZABLE), "fcw"
	// (overlapping committed write sets under Snapshot Isolation),
	// "provenance" (a read observed a value nobody wrote, or missed a row
	// that was loaded and never deleted), "mv-read" (a snapshot read
	// returning the wrong version's value or presence), "range-read" (a
	// range scan's result set disagrees with the newest committed state of
	// its interval below its snapshot slot), or "divergence" (two families
	// at the same level disagree on the phenomenon profile; informational).
	Kind   string
	IDs    []phenomena.ID
	Detail string
	// History is the normalized history that exhibits the finding,
	// predicate names canonicalized so it replays through `isolevel check`.
	History history.History
	// Minimized is the shrinker's output: the smallest sub-schedule that
	// still reproduces the finding, rendered as its intended history. Nil
	// when shrinking was not requested.
	Minimized history.History
	// Timeline is the run's flight-recorder tail (virtual-clock ticks, so
	// identical across reruns and worker counts): the engine-level event
	// sequence — begins, lock waits, grants, upgrades, escalations,
	// commits, aborts — that led to the finding.
	Timeline []string
}

func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] schedule %d (seed %d) on %s at %s", f.Kind, f.Index, f.SchedSeed, f.Family, f.Assign)
	if len(f.IDs) > 0 {
		ids := make([]string, len(f.IDs))
		for i, id := range f.IDs {
			ids[i] = string(id)
		}
		fmt.Fprintf(&b, ": %s", strings.Join(ids, ","))
	}
	if f.Detail != "" {
		fmt.Fprintf(&b, " (%s)", f.Detail)
	}
	fmt.Fprintf(&b, "\n  history: %s", f.History)
	if f.Minimized != nil {
		fmt.Fprintf(&b, "\n  minimized: %s", f.Minimized)
	}
	if len(f.Timeline) > 0 {
		fmt.Fprintf(&b, "\n  timeline (%d events):", len(f.Timeline))
		for _, ev := range f.Timeline {
			fmt.Fprintf(&b, "\n    %s", ev)
		}
	}
	if f.Assign.Mixed() {
		// The replay annotation: paste above either history in a file and
		// `isolevel check -f` classifies it with the same per-transaction
		// oracle.
		fmt.Fprintf(&b, "\n  levels: # levels: %s", f.Assign.Annotation())
	}
	return b.String()
}

// Check runs every oracle over the run result and returns its findings
// (without Index/SchedSeed, which the campaign fills in). The judge
// assignment is the per-transaction contract traces are held to —
// normally the assignment the run executed under (rr.Assign); campaigns
// with the -oracle override, and fault-injection tests, judge against a
// different one.
func Check(s *Schedule, rr *RunResult, o *Oracle, judge Assign) []Finding {
	var out []Finding
	base := Finding{
		SchedSeed: s.Seed,
		Family:    rr.Family,
		Assign:    rr.Assign,
		History:   canonPreds(rr.Normalized),
	}
	if rr.Sink != nil {
		// timelineTail bounds the events a finding reprints; the full ring
		// stays on rr.Sink for callers that want more.
		const timelineTail = 24
		base.Timeline = rr.Sink.Flight.TailStrings(timelineTail)
	}

	// Per-transaction Table 4 oracle: no witnessed phenomenon may be
	// charged to a transaction whose own level forbids it.
	if charges := o.Charges(rr.Attr, judge.Level); len(charges) > 0 {
		f := base
		f.Kind = "oracle"
		seen := map[phenomena.ID]bool{}
		var details []string
		for _, c := range charges {
			if !seen[c.ID] {
				seen[c.ID] = true
				f.IDs = append(f.IDs, c.ID)
			}
			details = append(details, fmt.Sprintf("%s charged to T%d=%s (vs T%d=%s)",
				c.ID, c.Victim, judge.Level(c.Victim).Code(), c.Other, judge.Level(c.Other).Code()))
		}
		f.Detail = strings.Join(details, "; ")
		out = append(out, f)
	}

	// Degree 3 is serializability itself: when every transaction of the
	// schedule ran at SERIALIZABLE, the committed projection of the trace
	// must have an acyclic dependency graph. (With any weaker transaction
	// in the mix the global graph may legally be cyclic — the weak
	// transaction accepted that — so the check applies only to all-SER
	// runs.)
	allSer := true
	for _, txn := range s.Txns() {
		if rr.Assign.Level(txn) != engine.Serializable {
			allSer = false
		}
	}
	if allSer {
		b := deps.NewBuilder()
		for _, op := range rr.Normalized {
			b.Feed(op)
		}
		if g := b.Graph(); g.Cycle() != nil {
			f := base
			f.Kind = "serializability"
			f.Detail = fmt.Sprintf("dependency cycle %v", g.Cycle())
			out = append(out, f)
		}
	}

	// First-committer-wins interval invariant: no two committed snapshot
	// transactions with overlapping execution intervals may have
	// intersecting write sets. (MVTxns holds exactly the SI transactions,
	// so in a mixed mv run RC transactions are — correctly — exempt.)
	if fcw := checkFCW(rr.MVTxns); fcw != "" {
		f := base
		f.Kind = "fcw"
		f.Detail = fcw
		out = append(out, f)
	}

	// Value provenance: every value a read observed must have been loaded
	// initially or written by some write in the raw trace (write values
	// are unique per schedule, so this certifies reads-from without
	// trusting engine timestamps).
	if prov := checkProvenance(s, rr.Raw); prov != "" {
		f := base
		f.Kind = "provenance"
		f.Detail = prov
		out = append(out, f)
	}

	// Snapshot-read certification (multiversion families): every exported
	// read must observe exactly the value of the newest committed write
	// below its snapshot slot (or the initial load, or the reader's own
	// write). This is the value-level check the mapped-trace patterns
	// cannot make: in the single-valued mapping reads sit at their
	// snapshot slot by construction, so a read-path bug — a dirty, fuzzy
	// or skewed read returning data from the wrong version — leaves the
	// mapped history looking clean. The values betray it.
	if msg := checkSnapshotReads(s, rr); msg != "" {
		f := base
		f.Kind = "mv-read"
		f.Detail = msg
		out = append(out, f)
	}

	// Range-read certification (multiversion families): every exported
	// range scan's result set must equal the newest committed state of its
	// interval below its snapshot slot — inserted rows visible once their
	// inserter committed in-snapshot, deleted rows gone, and nothing from
	// the future. This is the phantom check at the value level: a gap bug
	// that lets a scan miss a committed insert or resurrect a deleted row
	// shows up here even when the mapped trace happens to look clean.
	if msg := checkRangeReads(s, rr); msg != "" {
		f := base
		f.Kind = "range-read"
		f.Detail = msg
		out = append(out, f)
	}
	return out
}

// checkSnapshotReads verifies every timestamped read of a multiversion
// run against the run's committed write sets, presence included: a read
// below a row's creation or at-or-above its deletion must see no row,
// and a read of a live row must see the newest in-snapshot value.
// Own-write overlays (a cursor fetching a row its transaction already
// rewrote, a read after the transaction's own delete) are excused via
// the raw trace's per-transaction write and delete sets.
func checkSnapshotReads(s *Schedule, rr *RunResult) string {
	if len(rr.mvReads) == 0 {
		return ""
	}
	own := map[int]map[data.Key]map[int64]bool{}
	ownDel := map[int]map[data.Key]bool{}
	for _, op := range rr.Raw {
		if !op.Kind.IsWrite() || op.Item == "" {
			continue
		}
		if !op.HasValue {
			byKey := ownDel[op.Tx]
			if byKey == nil {
				byKey = map[data.Key]bool{}
				ownDel[op.Tx] = byKey
			}
			byKey[op.Item] = true
			continue
		}
		byKey := own[op.Tx]
		if byKey == nil {
			byKey = map[data.Key]map[int64]bool{}
			own[op.Tx] = byKey
		}
		vals := byKey[op.Item]
		if vals == nil {
			vals = map[int64]bool{}
			byKey[op.Item] = vals
		}
		vals[op.Value] = true
	}
	initial := map[data.Key]int64{}
	for i := 0; i < s.Params.Items; i++ {
		initial[itemName(i)] = InitialValue(i)
	}
	for _, r := range rr.mvReads {
		want, present := initial[r.key]
		bestSlot := int64(-1)
		for _, c := range rr.mvCommits {
			if c.slot >= r.slot || c.slot <= bestSlot {
				continue
			}
			if v, ok := c.writes[r.key]; ok {
				bestSlot = c.slot
				want, present = v.val, !v.deleted
			}
		}
		if r.hasVal && own[r.tx][r.key][r.val] {
			continue // own uncommitted write overlaid the snapshot
		}
		if !r.hasVal {
			if present && !ownDel[r.tx][r.key] {
				return fmt.Sprintf("T%d read %s at slot %d and saw no row; the snapshot holds %d", r.tx, r.key, r.slot, want)
			}
			continue
		}
		if !present {
			return fmt.Sprintf("T%d read %s=%d at slot %d; the snapshot holds no row", r.tx, r.key, r.val, r.slot)
		}
		if r.val != want {
			return fmt.Sprintf("T%d read %s=%d at slot %d; the snapshot holds %d", r.tx, r.key, r.val, r.slot, want)
		}
	}
	return ""
}

// checkRangeReads certifies every exported range scan's result set
// against the newest committed state of its interval below its snapshot
// slot. Keys the scanning transaction itself wrote or deleted are
// excused (its own uncommitted overlay legally perturbs its view of
// those keys); every other key of the interval must appear exactly when
// the snapshot holds it, with the snapshot's value.
func checkRangeReads(s *Schedule, rr *RunResult) string {
	if len(rr.rangeReads) == 0 {
		return ""
	}
	ownKeys := map[int]map[data.Key]bool{}
	for _, op := range rr.Raw {
		if op.Kind.IsWrite() && op.Item != "" {
			byKey := ownKeys[op.Tx]
			if byKey == nil {
				byKey = map[data.Key]bool{}
				ownKeys[op.Tx] = byKey
			}
			byKey[op.Item] = true
		}
	}
	for _, r := range rr.rangeReads {
		// Expected: initial rows of the interval, then every committed
		// write set below the scan's slot applied in commit order.
		expect := map[data.Key]int64{}
		for i := 0; i < s.Params.Items; i++ {
			if k := itemName(i); k >= r.lo && k < r.hi {
				expect[k] = InitialValue(i)
			}
		}
		var below []mvCommit
		for _, c := range rr.mvCommits {
			if c.slot < r.slot {
				below = append(below, c)
			}
		}
		sort.Slice(below, func(i, j int) bool { return below[i].slot < below[j].slot })
		for _, c := range below {
			for k, v := range c.writes {
				if k < r.lo || k >= r.hi {
					continue
				}
				if v.deleted {
					delete(expect, k)
				} else {
					expect[k] = v.val
				}
			}
		}
		actual := map[data.Key]int64{}
		for i, k := range r.keys {
			actual[k] = r.vals[i]
		}
		// Compare both directions in key order so a violation message is
		// deterministic across reruns.
		var keys []data.Key
		seen := map[data.Key]bool{}
		//isolint:ordered keys are sorted below before any comparison is reported
		for k := range expect {
			keys, seen[k] = append(keys, k), true
		}
		for k := range actual {
			if !seen[k] {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			if ownKeys[r.tx][k] {
				continue // scanning tx's own overlay governs this key
			}
			want, inSnap := expect[k]
			got, inScan := actual[k]
			switch {
			case inSnap && !inScan:
				return fmt.Sprintf("T%d scanned [%s, %s) at slot %d and missed %s; the snapshot holds %s=%d", r.tx, r.lo, r.hi, r.slot, k, k, want)
			case !inSnap && inScan:
				return fmt.Sprintf("T%d scanned [%s, %s) at slot %d and saw %s=%d; the snapshot holds no such row", r.tx, r.lo, r.hi, r.slot, k, got)
			case inSnap && inScan && got != want:
				return fmt.Sprintf("T%d scanned [%s, %s) at slot %d and saw %s=%d; the snapshot holds %d", r.tx, r.lo, r.hi, r.slot, k, got, want)
			}
		}
	}
	return ""
}

func checkFCW(txns []deps.MVTxn) string {
	for i := 0; i < len(txns); i++ {
		for j := i + 1; j < len(txns); j++ {
			a, b := txns[i], txns[j]
			if !a.Committed || !b.Committed {
				continue
			}
			if a.Commit <= b.Start || b.Commit <= a.Start {
				continue // disjoint execution intervals
			}
			for _, wa := range a.Writes {
				for _, wb := range b.Writes {
					if wa.Item != "" && wa.Item == wb.Item {
						return fmt.Sprintf("T%d and T%d both committed writes of %s with overlapping intervals", a.Tx, b.Tx, wa.Item)
					}
				}
			}
		}
	}
	return ""
}

func checkProvenance(s *Schedule, raw history.History) string {
	legal := map[data.Key]map[int64]bool{}
	preloaded := map[data.Key]bool{}
	for i := 0; i < s.Params.Items; i++ {
		legal[itemName(i)] = map[int64]bool{InitialValue(i): true}
		preloaded[itemName(i)] = true
	}
	deleted := map[data.Key]bool{}
	for _, op := range raw {
		if !op.Kind.IsWrite() || op.Item == "" {
			continue
		}
		if !op.HasValue {
			deleted[op.Item] = true // a delete: the row can legally vanish
			continue
		}
		set := legal[op.Item]
		if set == nil {
			set = map[int64]bool{}
			legal[op.Item] = set
		}
		set[op.Value] = true
	}
	for _, op := range raw {
		if !op.Kind.IsRead() || op.Item == "" {
			continue
		}
		if !op.HasValue {
			// A valueless read is legal only for a row that may be absent:
			// never loaded (an insert target) or deleted somewhere in the
			// trace. A preloaded, never-deleted row must always be found.
			if preloaded[op.Item] && !deleted[op.Item] {
				return fmt.Sprintf("T%d read %s and found no row (the item is loaded and never deleted)", op.Tx, op.Item)
			}
			continue
		}
		if !legal[op.Item][op.Value] {
			return fmt.Sprintf("T%d read %s=%d, a value nobody wrote", op.Tx, op.Item, op.Value)
		}
	}
	return ""
}

// canonPreds renames a recorded trace's predicate names (engine syntax
// like "val >= 1000") for emission. Pool predicates get the same fixed
// P/Q/R names the intended history (Schedule.History) uses, so a
// finding's "history:" and "minimized:" lines name each predicate
// identically; any other name falls back to first-appearance numbering.
// The result round-trips through the history parser.
func canonPreds(h history.History) history.History {
	names := map[string]string{}
	for i, p := range PredPool() {
		names[p.String()] = predCanonNames[i]
	}
	for i, kr := range RangePool() {
		names[kr.String()] = rangeCanonNames[i]
	}
	next := len(PredPool())
	canon := func(name string) string {
		if c, ok := names[name]; ok {
			return c
		}
		c := fmt.Sprintf("P%d", next)
		next++
		names[name] = c
		return c
	}
	out := make(history.History, len(h))
	for i, op := range h {
		if len(op.Preds) > 0 {
			renamed := make([]string, len(op.Preds))
			for j, p := range op.Preds {
				renamed[j] = canon(p)
			}
			op.Preds = renamed
		}
		out[i] = op
	}
	return out
}

// sortIDs returns the phenomena identifiers in presentation order.
func sortIDs(set map[phenomena.ID]bool) []phenomena.ID {
	var out []phenomena.ID
	for _, id := range phenomena.All {
		if set[id] {
			out = append(out, id)
		}
	}
	return out
}

// idsString renders a profile compactly for reports.
func idsString(set map[phenomena.ID]bool) string {
	ids := sortIDs(set)
	if len(ids) == 0 {
		return "-"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, " ")
}
