package exerciser

import (
	"fmt"
	"sort"

	"isolevel/internal/engine"
	"isolevel/internal/matrix"
	"isolevel/internal/phenomena"
)

// Oracle holds, per isolation level, the set of phenomenon identifiers a
// normalized trace from a correct engine at that level must never
// exhibit. It is derived from the paper's Table 4 (matrix.PaperTable4)
// plus the extension rows (matrix.ExtensionTable4), with three
// documented adjustments for trace semantics:
//
//   - A "Not Possible" broad cell implies its strict form is impossible
//     too: forbidding P1 also forbids A1, P2 forbids A2, P3 forbids A3.
//
//   - Snapshot Isolation traces are checked in their single-valued mapped
//     form (§4.2: reads at start timestamp, writes at commit timestamp).
//     In that form the *pattern* P2 — r1[x] ... w2[x] with T1 active — is
//     a legal artifact: a committed concurrent writer always lands
//     between a reader's start and commit slots, even though the reader's
//     snapshot makes the reread return the same value. Table 4's
//     "Not Possible" for SI/P2 refers to the anomaly, so the oracle drops
//     the P2 pattern and keeps the strict forms (A2, A5A).
//
// Be clear about what the mapped-trace patterns can and cannot catch for
// the multiversion families: the mapping places reads at their snapshot
// slot and writes inside their commit block *by construction*, so a
// read-path bug cannot perturb the mapped shape — of SI's forbidden set
// only the lost-update family (P4, P4C: a foreign commit landing inside
// the reader's interval) is reachable as a pattern. The rest is enforced
// at the value level by the harness's dedicated invariants: the
// first-committer-wins interval check (dirty/lost writes) and the
// snapshot-read certification (dirty, fuzzy and skewed reads — every
// exported read must equal the newest committed write below its snapshot
// slot). A3 for SI (Remark 10) is likewise unobservable through the
// mapping — predicate reads are not exported — and is deliberately NOT
// in the forbidden set; the reread-phantom impossibility is verified
// live by matrix.RunCell's P3 probes instead.
//
// "Sometimes Possible" cells are treated as allowed: the fuzzer's clients
// are arbitrary, not the careful cursor-parking clients those cells
// assume.
type Oracle struct {
	forbidden map[engine.Level]map[phenomena.ID]bool
}

// NewOracle derives the forbidden sets from the matrix tables.
func NewOracle() *Oracle {
	cells := map[engine.Level]map[string]matrix.Cell{}
	for lvl, row := range matrix.PaperTable4() {
		cells[lvl] = row
	}
	for lvl, row := range matrix.ExtensionTable4() {
		cells[lvl] = row
	}
	o := &Oracle{forbidden: map[engine.Level]map[phenomena.ID]bool{}}
	for lvl, row := range cells {
		set := map[phenomena.ID]bool{}
		for _, col := range matrix.Columns {
			if row[col] == matrix.NotPossible {
				set[phenomena.ID(col)] = true
			}
		}
		if set[phenomena.P1] {
			set[phenomena.A1] = true
		}
		if set[phenomena.P2] {
			set[phenomena.A2] = true
		}
		if set[phenomena.P3] {
			set[phenomena.A3] = true
		}
		if lvl == engine.SnapshotIsolation {
			delete(set, phenomena.P2) // mapped-trace artifact, see above
			set[phenomena.A2] = true
			set[phenomena.A5A] = true
		}
		o.forbidden[lvl] = set
	}
	return o
}

// Forbidden returns the identifiers traces at the level must not exhibit.
func (o *Oracle) Forbidden(level engine.Level) map[phenomena.ID]bool {
	return o.forbidden[level]
}

// forbids reports whether the level's contract rules out the identifier.
func (o *Oracle) forbids(level engine.Level, id phenomena.ID) bool {
	return o.forbidden[level][id]
}

// Charge is one per-transaction oracle violation: a witnessed phenomenon
// attributed to a victim transaction whose own isolation level forbids it.
type Charge struct {
	ID     phenomena.ID
	Victim int
	Other  int
}

func (c Charge) String() string {
	return fmt.Sprintf("%s charged to T%d (vs T%d)", c.ID, c.Victim, c.Other)
}

// Charges judges an attributed phenomenon profile against a per-transaction
// level assignment and returns the violations, in (phenomena.All, victim,
// other) order — deterministic for report emission.
//
// The mixed-level rules follow the degrees-of-consistency reading of
// Table 2: every pattern occurrence is charged to the one participant
// whose own lock acquisitions were supposed to prevent it, and only
// becomes a violation when that victim's level forbids the phenomenon AND
// the other participant held the minimum protocol the victim's guarantee
// assumes:
//
//   - P0 is charged to the overwritten first writer: long write locks
//     (every level above Degree 0) make the overwrite impossible, while
//     even a Degree 0 second writer's short lock respects them — so there
//     is no condition on the other side.
//   - P1/A1 are charged to the reader, but only count when the writer
//     holds long write locks (its level forbids P0): a Degree 0 writer
//     releases its write lock mid-transaction, and then even a carefully
//     locking reader reads uncommitted data — the reader's own protocol
//     cannot defend against it, exactly as [GLPT]'s mixed-degree theorem
//     assumes writers of at least degree 1.
//   - P2/A2, P3/A3, P4/P4C and A5A are charged to the reader side with no
//     condition: the victim's own (long item / predicate / cursor) read
//     locks block any other transaction's well-formed write, Degree 0
//     included.
//   - A5B only exists as a pair: a serializable transaction mixed with a
//     weaker one can legitimately exhibit the pattern (the weak side's
//     unlocked read sneaks between the strong side's lock points) while
//     the strong side's own view stays serializable, so the pattern is a
//     violation only when BOTH participants forbid it.
//
// A uniform assignment reduces these rules exactly to the old
// whole-history oracle (forbidden sets are monotone: every level that
// forbids P1 forbids P0).
func (o *Oracle) Charges(attr map[phenomena.ID]map[phenomena.Pair]bool, levelOf func(txn int) engine.Level) []Charge {
	var out []Charge
	for _, id := range phenomena.All {
		pairs := make([]phenomena.Pair, 0, len(attr[id]))
		for p := range attr[id] {
			pairs = append(pairs, p)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].A != pairs[j].A {
				return pairs[i].A < pairs[j].A
			}
			return pairs[i].B < pairs[j].B
		})
		for _, p := range pairs {
			if c, bad := o.judge(id, p, levelOf); bad {
				out = append(out, c)
			}
		}
	}
	return out
}

// judge applies the per-phenomenon charging rule to one attributed pair.
func (o *Oracle) judge(id phenomena.ID, p phenomena.Pair, levelOf func(txn int) engine.Level) (Charge, bool) {
	switch id {
	case phenomena.P0:
		return Charge{id, p.A, p.B}, o.forbids(levelOf(p.A), id)
	case phenomena.P1, phenomena.A1:
		bad := o.forbids(levelOf(p.B), id) && o.forbids(levelOf(p.A), phenomena.P0)
		return Charge{id, p.B, p.A}, bad
	case phenomena.A5B:
		bad := o.forbids(levelOf(p.A), id) && o.forbids(levelOf(p.B), id)
		return Charge{id, p.A, p.B}, bad
	default:
		// P2/A2, P3/A3, P4/P4C, A5A: pattern role A is the victim.
		return Charge{id, p.A, p.B}, o.forbids(levelOf(p.A), id)
	}
}
