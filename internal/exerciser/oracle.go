package exerciser

import (
	"isolevel/internal/engine"
	"isolevel/internal/matrix"
	"isolevel/internal/phenomena"
)

// Oracle holds, per isolation level, the set of phenomenon identifiers a
// normalized trace from a correct engine at that level must never
// exhibit. It is derived from the paper's Table 4 (matrix.PaperTable4)
// plus the extension rows (matrix.ExtensionTable4), with three
// documented adjustments for trace semantics:
//
//   - A "Not Possible" broad cell implies its strict form is impossible
//     too: forbidding P1 also forbids A1, P2 forbids A2, P3 forbids A3.
//
//   - Snapshot Isolation traces are checked in their single-valued mapped
//     form (§4.2: reads at start timestamp, writes at commit timestamp).
//     In that form the *pattern* P2 — r1[x] ... w2[x] with T1 active — is
//     a legal artifact: a committed concurrent writer always lands
//     between a reader's start and commit slots, even though the reader's
//     snapshot makes the reread return the same value. Table 4's
//     "Not Possible" for SI/P2 refers to the anomaly, so the oracle drops
//     the P2 pattern and keeps the strict forms (A2, A5A).
//
// Be clear about what the mapped-trace patterns can and cannot catch for
// the multiversion families: the mapping places reads at their snapshot
// slot and writes inside their commit block *by construction*, so a
// read-path bug cannot perturb the mapped shape — of SI's forbidden set
// only the lost-update family (P4, P4C: a foreign commit landing inside
// the reader's interval) is reachable as a pattern. The rest is enforced
// at the value level by the harness's dedicated invariants: the
// first-committer-wins interval check (dirty/lost writes) and the
// snapshot-read certification (dirty, fuzzy and skewed reads — every
// exported read must equal the newest committed write below its snapshot
// slot). A3 for SI (Remark 10) is likewise unobservable through the
// mapping — predicate reads are not exported — and is deliberately NOT
// in the forbidden set; the reread-phantom impossibility is verified
// live by matrix.RunCell's P3 probes instead.
//
// "Sometimes Possible" cells are treated as allowed: the fuzzer's clients
// are arbitrary, not the careful cursor-parking clients those cells
// assume.
type Oracle struct {
	forbidden map[engine.Level]map[phenomena.ID]bool
}

// NewOracle derives the forbidden sets from the matrix tables.
func NewOracle() *Oracle {
	cells := map[engine.Level]map[string]matrix.Cell{}
	for lvl, row := range matrix.PaperTable4() {
		cells[lvl] = row
	}
	for lvl, row := range matrix.ExtensionTable4() {
		cells[lvl] = row
	}
	o := &Oracle{forbidden: map[engine.Level]map[phenomena.ID]bool{}}
	for lvl, row := range cells {
		set := map[phenomena.ID]bool{}
		for _, col := range matrix.Columns {
			if row[col] == matrix.NotPossible {
				set[phenomena.ID(col)] = true
			}
		}
		if set[phenomena.P1] {
			set[phenomena.A1] = true
		}
		if set[phenomena.P2] {
			set[phenomena.A2] = true
		}
		if set[phenomena.P3] {
			set[phenomena.A3] = true
		}
		if lvl == engine.SnapshotIsolation {
			delete(set, phenomena.P2) // mapped-trace artifact, see above
			set[phenomena.A2] = true
			set[phenomena.A5A] = true
		}
		o.forbidden[lvl] = set
	}
	return o
}

// Forbidden returns the identifiers traces at the level must not exhibit.
func (o *Oracle) Forbidden(level engine.Level) map[phenomena.ID]bool {
	return o.forbidden[level]
}
