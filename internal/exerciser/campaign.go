package exerciser

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"isolevel/internal/engine"
	"isolevel/internal/phenomena"
)

// Options configure a fuzz campaign.
type Options struct {
	// Seed is the campaign seed; schedule i's generator seed is derived
	// from (Seed, Start+i) by a splitmix64 step, so campaigns are
	// resumable and any single schedule can be rerun with -start i -n 1.
	Seed  int64
	N     int
	Start int
	// Params shape the generated schedules.
	Params Params
	// Shards is the engine stripe count (0 = each engine's default).
	Shards int
	// Workers is the number of campaign goroutines (0 or 1 = serial).
	// Aggregation is by schedule index and each schedule's replay is
	// fully deterministic (the runner's quiescence protocol plus lock
	// grant parking execute at most one engine op at a time), so reports
	// are byte-for-byte identical at any worker count, on any GOMAXPROCS,
	// with or without the race detector.
	Workers int
	// Mixed switches the campaign to per-transaction level assignments:
	// each schedule runs once per MixedFamilies() family, every
	// transaction at a level sampled (deterministically from the schedule
	// seed and family name) from that family's supported set, and traces
	// are judged by the per-transaction oracle — a phenomenon is a
	// violation only when charged to a transaction whose own level
	// forbids it.
	Mixed bool
	// Families restricts the engine families ran (nil/empty = all).
	Families []string
	// Escalation, when > 0, runs the keyrange family with lock escalation
	// at that fragment threshold. Escalated blocking is strictly coarser
	// than the predicate table's, so an escalated campaign should select
	// the keyrange family alone and is judged oracle-only: zero Table 4
	// violations are still required, cross-family trace equivalence is
	// not expected.
	Escalation int
	// Levels restricts the isolation levels ran — for mixed campaigns,
	// the set levels are sampled from (nil/empty = all).
	Levels []engine.Level
	// OracleLevel, when non-nil, checks every trace against that level's
	// forbidden set instead of the executing levels' own — the testing
	// hook that makes findings manufacturable from correct engines (a
	// weak level's traces judged by a stronger level's contract is
	// exactly the "engine claims a level it does not implement" bug
	// class). In mixed mode it judges every transaction at that level
	// regardless of the level it executed at.
	OracleLevel *engine.Level
	// Shrink minimizes findings; MaxShrink caps how many (default 5 —
	// each minimization reruns the schedule many times). The report notes
	// when findings were left unminimized because of the cap.
	Shrink    bool
	MaxShrink int
}

// config is one cell of the campaign matrix: a (family, level) pair for
// uniform campaigns, or a family whose levels are sampled per transaction
// for mixed ones.
type config struct {
	fam   Family
	level engine.Level
	mixed bool
}

// LevelStats aggregates one campaign cell across the campaign.
type LevelStats struct {
	Family string
	Level  engine.Level
	// Mixed marks a per-transaction-assignment cell; Level is meaningless
	// there and the report prints "mixed".
	Mixed     bool
	Runs      int
	Commits   int
	Aborts    int
	Phenomena map[phenomena.ID]bool // union of observed profiles
	Findings  int
	// GapGrants sums the cell's lock-manager gap-lock grants across the
	// campaign: nonzero proves generated inserts ran under range activity
	// and reached the key-range phantom path (always zero for families
	// without a lock manager).
	GapGrants int64
}

func (st LevelStats) levelLabel() string {
	if st.Mixed {
		return "mixed"
	}
	return st.Level.String()
}

// Report is the campaign outcome.
type Report struct {
	Opts     Options
	Configs  int
	Runs     int
	Stats    []LevelStats
	Findings []Finding
	// Shrunk counts the findings the shrinker minimized (bounded by
	// Options.MaxShrink).
	Shrunk int
	// Divergences counts same-level profile disagreements between
	// families (informational; zero whenever, as today, each level is
	// implemented by exactly one family; not applicable to mixed
	// campaigns, whose families sample from different level sets).
	Divergences int
}

// splitmix64 is the per-index seed derivation (Steele et al.'s SplitMix64
// finalizer): statistically independent schedule seeds from (seed, index)
// with no shared rand stream across workers.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ScheduleSeed derives the generator seed of campaign schedule index i.
func ScheduleSeed(campaignSeed int64, index int) int64 {
	return int64(splitmix64(uint64(campaignSeed) ^ splitmix64(uint64(index))))
}

func (o Options) configs() []config {
	famFilter := map[string]bool{}
	for _, f := range o.Families {
		famFilter[f] = true
	}
	lvlFilter := map[engine.Level]bool{}
	for _, l := range o.Levels {
		lvlFilter[l] = true
	}
	var out []config
	if o.Mixed {
		for _, fam := range MixedFamilies() {
			if len(famFilter) > 0 && !famFilter[fam.Name] {
				continue
			}
			if o.Escalation > 0 && fam.Name == "keyrange" {
				fam = keyrangeFamily(o.Escalation)
			}
			if len(lvlFilter) > 0 {
				var kept []engine.Level
				for _, lvl := range fam.Levels {
					if lvlFilter[lvl] {
						kept = append(kept, lvl)
					}
				}
				if len(kept) == 0 {
					continue
				}
				fam.Levels = kept
			}
			out = append(out, config{fam: fam, mixed: true})
		}
		return out
	}
	for _, fam := range Families() {
		if len(famFilter) > 0 && !famFilter[fam.Name] {
			continue
		}
		if o.Escalation > 0 && fam.Name == "keyrange" {
			fam = keyrangeFamily(o.Escalation)
		}
		for _, lvl := range fam.Levels {
			if len(lvlFilter) > 0 && !lvlFilter[lvl] {
				continue
			}
			out = append(out, config{fam: fam, level: lvl})
		}
	}
	return out
}

// indexResult is everything one schedule produced, pending ordered
// aggregation.
type indexResult struct {
	commits  []int // per config
	aborts   []int
	profiles []map[phenomena.ID]bool
	outcomes []string // canonical committed/aborted sets, per config
	gaps     []int64
	findings []Finding
	err      error
}

// outcomeKey renders a run's committed/aborted transaction sets in a
// canonical form, so two runs of the same schedule can be tested for
// identical outcomes before their phenomenon profiles are compared.
func outcomeKey(rr *RunResult) string {
	var c, a []int
	for txn, ok := range rr.Committed {
		if ok {
			c = append(c, txn)
		}
	}
	for txn, ok := range rr.Aborted {
		if ok {
			a = append(a, txn)
		}
	}
	sort.Ints(c)
	sort.Ints(a)
	return fmt.Sprintf("c%va%v", c, a)
}

// Run executes the campaign: N schedules, each replayed on every selected
// cell, checked against the (per-transaction) oracle, findings optionally
// shrunk. The report is deterministic in (Seed, Start, N, Params, Shards,
// Mixed, filters) — worker count only changes wall-clock time.
func Run(opts Options) (*Report, error) {
	if opts.N < 0 {
		opts.N = 0
	}
	if opts.Params.Txs == 0 {
		opts.Params = DefaultParams()
	}
	if opts.MaxShrink == 0 {
		opts.MaxShrink = 5
	}
	configs := opts.configs()
	if len(configs) == 0 {
		return nil, fmt.Errorf("exerciser: no engine/level selected")
	}
	oracle := NewOracle()
	// judgeFor is the contract a run's traces are held to: the executing
	// assignment, unless the campaign overrides the oracle level.
	judgeFor := func(exec Assign) Assign {
		if opts.OracleLevel != nil {
			return UniformAssign(*opts.OracleLevel)
		}
		return exec
	}

	results := make([]indexResult, opts.N)
	runIndex := func(i int) indexResult {
		seed := ScheduleSeed(opts.Seed, opts.Start+i)
		sched := Generate(seed, opts.Params)
		res := indexResult{
			commits:  make([]int, len(configs)),
			aborts:   make([]int, len(configs)),
			profiles: make([]map[phenomena.ID]bool, len(configs)),
			outcomes: make([]string, len(configs)),
			gaps:     make([]int64, len(configs)),
		}
		for ci, cfg := range configs {
			assign := UniformAssign(cfg.level)
			if cfg.mixed {
				assign = MixedAssign(seed, cfg.fam, opts.Params.Txs)
			}
			rr, err := RunOne(sched, cfg.fam, assign, opts.Shards)
			if err != nil {
				res.err = err
				return res
			}
			for _, ok := range rr.Committed {
				if ok {
					res.commits[ci]++
				}
			}
			for _, ok := range rr.Aborted {
				if ok {
					res.aborts[ci]++
				}
			}
			res.profiles[ci] = rr.Profile
			res.outcomes[ci] = outcomeKey(rr)
			res.gaps[ci] = rr.Locks.GapGrants
			for _, f := range Check(sched, rr, oracle, judgeFor(assign)) {
				f.Index = opts.Start + i
				res.findings = append(res.findings, f)
			}
		}
		// Cross-family differential: families running the same uniform
		// level must agree on the phenomenon profile of the same schedule —
		// provided they reached the same outcome. Deadlock-victim selection
		// legitimately differs between phantom protocols (a predicate-table
		// cycle need not exist under key-range locks and vice versa); when
		// the families abort different transactions the surviving histories
		// differ and their profiles are incomparable, so the equivalence
		// claim is conditional on matching committed/aborted sets. (Mixed
		// cells sample different level sets per family, so their profiles
		// legitimately differ.)
		if !opts.Mixed {
			byLevel := map[engine.Level]int{}
			for ci, cfg := range configs {
				if prev, ok := byLevel[cfg.level]; ok {
					if res.outcomes[prev] != res.outcomes[ci] {
						continue
					}
					if !sameProfile(res.profiles[prev], res.profiles[ci]) {
						res.findings = append(res.findings, Finding{
							Index:     opts.Start + i,
							SchedSeed: seed,
							Family:    configs[prev].fam.Name + " vs " + cfg.fam.Name,
							Assign:    UniformAssign(cfg.level),
							Kind:      "divergence",
							Detail: fmt.Sprintf("profiles differ: %s vs %s",
								idsString(res.profiles[prev]), idsString(res.profiles[ci])),
						})
					}
				} else {
					byLevel[cfg.level] = ci
				}
			}
		}
		return res
	}

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > opts.N && opts.N > 0 {
		workers = opts.N
	}
	if workers <= 1 {
		for i := 0; i < opts.N; i++ {
			results[i] = runIndex(i)
		}
	} else {
		idxCh := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					results[i] = runIndex(i)
				}
			}()
		}
		for i := 0; i < opts.N; i++ {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
	}

	rep := &Report{Opts: opts, Configs: len(configs)}
	for _, cfg := range configs {
		rep.Stats = append(rep.Stats, LevelStats{
			Family: cfg.fam.Name, Level: cfg.level, Mixed: cfg.mixed,
			Phenomena: map[phenomena.ID]bool{},
		})
	}
	for i := 0; i < opts.N; i++ {
		res := results[i]
		if res.err != nil {
			return nil, res.err
		}
		for ci := range configs {
			st := &rep.Stats[ci]
			st.Runs++
			st.Commits += res.commits[ci]
			st.Aborts += res.aborts[ci]
			st.GapGrants += res.gaps[ci]
			for id := range res.profiles[ci] {
				st.Phenomena[id] = true
			}
			rep.Runs++
		}
		for _, f := range res.findings {
			if f.Kind == "divergence" {
				rep.Divergences++
			} else {
				for ci, cfg := range configs {
					if cfg.fam.Name != f.Family || cfg.mixed != f.Assign.Mixed() {
						continue
					}
					if !cfg.mixed && cfg.level != f.Assign.Uniform {
						continue
					}
					rep.Stats[ci].Findings++
				}
			}
			rep.Findings = append(rep.Findings, f)
		}
	}

	if opts.Shrink {
		for fi := range rep.Findings {
			if rep.Shrunk >= opts.MaxShrink {
				break
			}
			f := &rep.Findings[fi]
			if f.Kind == "divergence" {
				continue
			}
			fam, ok := familyByName(f.Family, opts.Mixed, opts.Escalation)
			if !ok {
				continue
			}
			sched := Generate(f.SchedSeed, opts.Params)
			if min := ShrinkFinding(sched, *f, fam, opts.Shards, oracle, judgeFor(f.Assign)); min != nil {
				f.Minimized = min.History()
				rep.Shrunk++
			}
		}
	}
	return rep, nil
}

// familyByName resolves a finding's family for reproduction (the
// shrinker); esc re-applies the campaign's escalation threshold so the
// replayed engine blocks exactly like the one that produced the finding.
func familyByName(name string, mixed bool, esc int) (Family, bool) {
	fams := Families()
	if mixed {
		fams = MixedFamilies()
	}
	for _, fam := range fams {
		if fam.Name == name {
			if esc > 0 && name == "keyrange" {
				fam = keyrangeFamily(esc)
			}
			return fam, true
		}
	}
	return Family{}, false
}

func sameProfile(a, b map[phenomena.ID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

// GapGrants totals the aggregated gap-lock grants across every cell —
// the campaign-level proof that generated DML reached the gap path.
func (r *Report) GapGrants() int64 {
	var n int64
	for _, st := range r.Stats {
		n += st.GapGrants
	}
	return n
}

// Violations counts the non-divergence findings.
func (r *Report) Violations() int {
	n := 0
	for _, f := range r.Findings {
		if f.Kind != "divergence" {
			n++
		}
	}
	return n
}

// String renders the campaign report deterministically.
func (r *Report) String() string {
	var b strings.Builder
	p := r.Opts.Params
	mode := ""
	if r.Opts.Mixed {
		mode = " mode=mixed"
	}
	fmt.Fprintf(&b, "fuzz: seed=%d schedules=%d (start %d) txs=%d items=%d ops~%d abort=%.2f shards=%d%s\n",
		r.Opts.Seed, r.Opts.N, r.Opts.Start, p.Txs, p.Items, p.OpsPerTx, p.AbortFrac, r.Opts.Shards, mode)
	if r.Opts.OracleLevel != nil {
		fmt.Fprintf(&b, "oracle override: checking every trace against %s\n", *r.Opts.OracleLevel)
	}
	fmt.Fprintf(&b, "%-9s %-19s %6s %8s %8s %6s %4s  %s\n", "family", "level", "runs", "commits", "aborts", "gaps", "viol", "phenomena observed")
	for _, st := range r.Stats {
		fmt.Fprintf(&b, "%-9s %-19s %6d %8d %8d %6d %4d  %s\n",
			st.Family, st.levelLabel(), st.Runs, st.Commits, st.Aborts, st.GapGrants, st.Findings, idsString(st.Phenomena))
	}
	sort.SliceStable(r.Findings, func(i, j int) bool { return r.Findings[i].Index < r.Findings[j].Index })
	fmt.Fprintf(&b, "runs=%d findings=%d divergences=%d\n", r.Runs, r.Violations(), r.Divergences)
	if r.Opts.Shrink && r.Violations() > r.Shrunk {
		fmt.Fprintf(&b, "minimized %d of %d findings (raise -max-shrink for more)\n", r.Shrunk, r.Violations())
	}
	return b.String()
}

// Detail renders every finding (for -v and for failing CI output).
func (r *Report) Detail() string {
	var b strings.Builder
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%s\n", f.String())
	}
	return b.String()
}
