package exerciser

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"isolevel/internal/engine"
)

// Assign is a per-transaction isolation level assignment — the paper's
// Table 2 framing made executable: each transaction of a schedule runs its
// own lock protocol (or multiversion policy), and the oracle judges each
// transaction against its own contract. A nil PerTx is a uniform
// assignment (every transaction at Uniform), which is the pre-mixed-mode
// behavior of the whole stack.
type Assign struct {
	Uniform engine.Level
	PerTx   map[int]engine.Level
}

// UniformAssign assigns every transaction the same level.
func UniformAssign(l engine.Level) Assign { return Assign{Uniform: l} }

// PerTxAssign wraps an explicit per-transaction map (uniform fallback for
// transactions outside the map: the map's lowest-numbered entry's level,
// so a fully covered schedule behaves identically however it is queried).
func PerTxAssign(perTx map[int]engine.Level) Assign {
	a := Assign{PerTx: perTx}
	first := -1
	//isolint:ordered the fold keeps the minimum-keyed entry, the same for any visit order
	for txn, l := range perTx {
		if first < 0 || txn < first {
			first, a.Uniform = txn, l
		}
	}
	return a
}

// Level returns the level transaction txn runs at.
func (a Assign) Level(txn int) engine.Level {
	if l, ok := a.PerTx[txn]; ok {
		return l
	}
	return a.Uniform
}

// Mixed reports whether the assignment is per-transaction.
func (a Assign) Mixed() bool { return len(a.PerTx) > 0 }

// String renders the assignment: the bare level name for uniform
// assignments (matching the pre-mixed finding format), or the annotation
// form "T1=D0 T2=RR ..." for per-transaction ones.
func (a Assign) String() string {
	if !a.Mixed() {
		return a.Uniform.String()
	}
	return a.Annotation()
}

// Annotation renders the per-transaction form "T1=D0 T2=RR ..." (level
// short codes, ascending transaction number) — exactly the syntax
// `isolevel check -f` accepts on a "# levels:" line, so a finding's
// assignment can be pasted in front of its minimized history to replay it.
func (a Assign) Annotation() string {
	txns := make([]int, 0, len(a.PerTx))
	for txn := range a.PerTx {
		txns = append(txns, txn)
	}
	sort.Ints(txns)
	parts := make([]string, len(txns))
	for i, txn := range txns {
		parts[i] = fmt.Sprintf("T%d=%s", txn, a.PerTx[txn].Code())
	}
	return strings.Join(parts, " ")
}

// ParseAssign reads the annotation form "T1=RR T2=RC ..." — levels as
// short codes or spaceless full names ("SERIALIZABLE", "REPEATABLE_READ"),
// case-insensitive; multi-word names need the underscore form because
// assignments split on whitespace.
func ParseAssign(src string) (Assign, error) {
	perTx := map[int]engine.Level{}
	for _, field := range strings.Fields(src) {
		eq := strings.IndexByte(field, '=')
		if eq < 0 || len(field) < 4 || (field[0] != 'T' && field[0] != 't') {
			return Assign{}, fmt.Errorf("bad level assignment %q (want Tn=LEVEL)", field)
		}
		txn, err := strconv.Atoi(field[1:eq])
		if err != nil {
			return Assign{}, fmt.Errorf("bad transaction number in %q", field)
		}
		lvl, ok := engine.ParseLevel(field[eq+1:])
		if !ok {
			return Assign{}, fmt.Errorf("unknown level %q in %q (codes: D0 RU RC CS RR SER SI ORC)", field[eq+1:], field)
		}
		if _, dup := perTx[txn]; dup {
			return Assign{}, fmt.Errorf("duplicate assignment for T%d", txn)
		}
		perTx[txn] = lvl
	}
	if len(perTx) == 0 {
		return Assign{}, fmt.Errorf("empty level assignment")
	}
	return PerTxAssign(perTx), nil
}

// MixedAssign samples a level per transaction from the family's supported
// set, deterministically from (seed, family name): the same schedule index
// always re-runs under the same assignment, on any worker count, so mixed
// campaigns stay byte-for-byte reproducible and findings replayable.
func MixedAssign(seed int64, fam Family, txs int) Assign {
	rng := rand.New(rand.NewSource(int64(splitmix64(uint64(seed) ^ hash64(fam.Name)))))
	perTx := make(map[int]engine.Level, txs)
	for txn := 1; txn <= txs; txn++ {
		perTx[txn] = fam.Levels[rng.Intn(len(fam.Levels))]
	}
	return Assign{Uniform: fam.Levels[0], PerTx: perTx}
}

// hash64 is FNV-1a over s (a fixed seed split per family, independent of
// process state).
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
