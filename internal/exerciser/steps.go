package exerciser

import (
	"errors"
	"fmt"
	"sync"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/predicate"
	"isolevel/internal/schedule"
)

// capture collects the live engine.Tx handle of every script transaction
// as its first step runs, so the harness can pull the multiversion
// engines' timestamped exports after the run.
type capture struct {
	mu  sync.Mutex
	txs map[int]engine.Tx
}

func (c *capture) note(txn int, tx engine.Tx) {
	c.mu.Lock()
	if _, ok := c.txs[txn]; !ok {
		c.txs[txn] = tx
	}
	c.mu.Unlock()
}

func (c *capture) tx(txn int) engine.Tx {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.txs[txn]
}

// Steps compiles the schedule into the lockstep runner's step list. Every
// closure is self-contained per run: cursors travel in the per-transaction
// Ctx.Vars under "cur:<item>", so repeated compilation of the same
// schedule shares no state across runs.
func (s *Schedule) Steps() ([]schedule.Step, *capture) {
	cap := &capture{txs: map[int]engine.Tx{}}
	pool := PredPool()
	ranges := RangePool()
	var steps []schedule.Step
	for _, op := range s.Ops {
		op := op
		switch op.Kind {
		case OpRead:
			name := fmt.Sprintf("r%d[%s]", op.Txn, op.Item)
			steps = append(steps, schedule.OpStep(op.Txn, name, func(c *schedule.Ctx) (any, error) {
				cap.note(op.Txn, c.Tx)
				v, err := engine.GetVal(c.Tx, op.Item)
				if errors.Is(err, engine.ErrNotFound) {
					return nil, nil
				}
				return v, err
			}))
		case OpWrite, OpInsert:
			// An insert is a plain Put of a key the setup never loaded; the
			// engines' write paths make it an insert (and, under keyrange
			// locking, a gap acquisition).
			name := fmt.Sprintf("w%d[%s=%d]", op.Txn, op.Item, op.Value)
			steps = append(steps, schedule.OpStep(op.Txn, name, func(c *schedule.Ctx) (any, error) {
				cap.note(op.Txn, c.Tx)
				return nil, engine.PutVal(c.Tx, op.Item, op.Value)
			}))
		case OpDelete:
			name := fmt.Sprintf("d%d[%s]", op.Txn, op.Item)
			steps = append(steps, schedule.OpStep(op.Txn, name, func(c *schedule.Ctx) (any, error) {
				cap.note(op.Txn, c.Tx)
				// Deleting an already-absent key is a no-op, not an error:
				// generation-time liveness is only a heuristic (a concurrent
				// delete may have won, an insert may have aborted), and the
				// tolerance keeps shrunk schedules well-formed.
				if err := c.Tx.Delete(op.Item); err != nil && !errors.Is(err, engine.ErrNotFound) {
					return nil, err
				}
				return nil, nil
			}))
		case OpRangeRead:
			kr := ranges[op.Pred]
			name := fmt.Sprintf("r%d[%s]", op.Txn, rangeCanonNames[op.Pred])
			steps = append(steps, schedule.OpStep(op.Txn, name, func(c *schedule.Ctx) (any, error) {
				cap.note(op.Txn, c.Tx)
				rows, err := c.Tx.Select(kr)
				if err != nil {
					return nil, err
				}
				return int64(len(rows)), nil
			}))
		case OpPredRead:
			p := pool[op.Pred]
			name := fmt.Sprintf("r%d[%s]", op.Txn, predCanonNames[op.Pred])
			steps = append(steps, schedule.OpStep(op.Txn, name, func(c *schedule.Ctx) (any, error) {
				cap.note(op.Txn, c.Tx)
				rows, err := c.Tx.Select(p)
				if err != nil {
					return nil, err
				}
				return int64(len(rows)), nil
			}))
		case OpCurRead:
			name := fmt.Sprintf("rc%d[%s]", op.Txn, op.Item)
			steps = append(steps, schedule.OpStep(op.Txn, name, func(c *schedule.Ctx) (any, error) {
				cap.note(op.Txn, c.Tx)
				cur, err := c.Tx.OpenCursor(predicate.KeyEq{Key: op.Item})
				if err != nil {
					return nil, err
				}
				tup, err := cur.Fetch()
				if errors.Is(err, engine.ErrNotFound) {
					_ = cur.Close()
					return nil, nil
				}
				if err != nil {
					return nil, err
				}
				c.Vars["cur:"+string(op.Item)] = cur
				return tup.Row.Val(), nil
			}))
		case OpCurWrite:
			name := fmt.Sprintf("wc%d[%s=%d]", op.Txn, op.Item, op.Value)
			steps = append(steps, schedule.OpStep(op.Txn, name, func(c *schedule.Ctx) (any, error) {
				cap.note(op.Txn, c.Tx)
				if cur := c.Cursor("cur:" + string(op.Item)); cur != nil {
					return nil, cur.UpdateCurrent(data.Scalar(op.Value))
				}
				// Cursor read shrunk away (or its fetch found nothing):
				// degrade to the plain write the intended history shows.
				return nil, engine.PutVal(c.Tx, op.Item, op.Value)
			}))
		case OpCommit:
			steps = append(steps, schedule.CommitStep(op.Txn))
		case OpAbort:
			steps = append(steps, schedule.AbortStep(op.Txn))
		}
	}
	return steps, cap
}
