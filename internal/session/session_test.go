package session_test

import (
	"fmt"
	"strings"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/locking"
	"isolevel/internal/mvcc"
	"isolevel/internal/session"
)

// exec runs one statement and fails the test on an unexpected reply.
func exec(t *testing.T, s *session.Session, line, want string) {
	t.Helper()
	got, quit := s.Exec(line)
	if got != want {
		t.Fatalf("Exec(%q) = %q, want %q", line, got, want)
	}
	if quit {
		t.Fatalf("Exec(%q) asked to quit", line)
	}
}

func TestSessionLifecycle(t *testing.T) {
	db := mvcc.NewDB()
	var stats session.Stats
	s := session.New(db, engine.SnapshotIsolation, &stats)

	exec(t, s, "PING", "+PONG")
	exec(t, s, "LEVEL", "+SNAPSHOT ISOLATION")

	reply, _ := s.Exec("BEGIN")
	if !strings.HasPrefix(reply, "+OK T") || !strings.HasSuffix(reply, " SI") {
		t.Fatalf("BEGIN = %q, want +OK T<id> SI", reply)
	}
	if !s.InTx() {
		t.Fatal("InTx() = false after BEGIN")
	}
	exec(t, s, "SET x 41", "+OK")
	exec(t, s, "GET x", ":41")
	exec(t, s, "GET missing", "$-1")
	exec(t, s, "COMMIT", "+OK")
	if s.InTx() {
		t.Fatal("InTx() = true after COMMIT")
	}

	// Autocommit statements: one transaction each.
	exec(t, s, "GET x", ":41")
	exec(t, s, "SET x 42", "+OK")
	exec(t, s, "DEL x", "+OK")
	exec(t, s, "GET x", "$-1")

	// Explicit abort discards the write.
	exec(t, s, "BEGIN", "+OK T6 SI")
	exec(t, s, "SET y 7", "+OK")
	exec(t, s, "ABORT", "+OK")
	exec(t, s, "GET y", "$-1")

	if got := stats.Errors.Load(); got != 0 {
		t.Fatalf("Errors = %d, want 0", got)
	}
	// Begins: 1 explicit + 4 autocommit + 1 explicit + 1 autocommit = 7.
	if got := stats.Begins.Load(); got != 7 {
		t.Fatalf("Begins = %d, want 7", got)
	}
	// Commits: 1 explicit + 4 autocommit (the aborted tx and the final
	// autocommit GET) ... recount: explicit COMMIT (1) + autocommit
	// GET/SET/DEL/DEL (4) + final GET (1) = 6.
	if got := stats.Commits.Load(); got != 6 {
		t.Fatalf("Commits = %d, want 6", got)
	}
	if got := stats.Aborts.Load(); got != 1 {
		t.Fatalf("Aborts = %d, want 1", got)
	}
}

func TestSessionScanReply(t *testing.T) {
	db := locking.NewDB(locking.WithPhantomProtection(locking.PhantomKeyrange))
	db.Load(
		data.Tuple{Key: "acct:01", Row: data.Scalar(10)},
		data.Tuple{Key: "acct:02", Row: data.Scalar(20)},
		data.Tuple{Key: "acct:03", Row: data.Scalar(30)},
		data.Tuple{Key: "other:x", Row: data.Scalar(99)},
	)
	s := session.New(db, engine.Serializable, nil)
	defer s.Close()

	exec(t, s, "SCAN acct:01 acct:03", "*2\r\n+acct:01 10\r\n+acct:02 20")
	exec(t, s, "SCAN acct: acct:~", "*3\r\n+acct:01 10\r\n+acct:02 20\r\n+acct:03 30")
	exec(t, s, "SCAN zz zz", "*0")
}

func TestSessionSetTransaction(t *testing.T) {
	db := mvcc.NewDB()
	s := session.New(db, engine.SnapshotIsolation, nil)
	defer s.Close()

	exec(t, s, "SET TRANSACTION ISOLATION LEVEL READ CONSISTENCY", "+OK")
	exec(t, s, "LEVEL", "+READ CONSISTENCY")
	reply, _ := s.Exec("BEGIN")
	if !strings.HasSuffix(reply, " ORC") {
		t.Fatalf("BEGIN after SET TRANSACTION = %q, want ... ORC", reply)
	}
	// Rejected inside an open transaction.
	reply, _ = s.Exec("SET TRANSACTION ISOLATION LEVEL SNAPSHOT ISOLATION")
	if !strings.HasPrefix(reply, "-ERR") {
		t.Fatalf("SET TRANSACTION in tx = %q, want -ERR", reply)
	}
	exec(t, s, "COMMIT", "+OK")

	// BEGIN's one-shot level override does not change the session default.
	reply, _ = s.Exec("BEGIN ISOLATION LEVEL SNAPSHOT ISOLATION")
	if !strings.HasSuffix(reply, " SI") {
		t.Fatalf("BEGIN ISOLATION LEVEL = %q, want ... SI", reply)
	}
	exec(t, s, "COMMIT", "+OK")
	exec(t, s, "LEVEL", "+READ CONSISTENCY")
}

func TestSessionErrors(t *testing.T) {
	db := mvcc.NewDB()
	var stats session.Stats
	s := session.New(db, engine.SnapshotIsolation, &stats)
	defer s.Close()

	for _, line := range []string{
		"FROB x",
		"COMMIT",
		"ABORT",
		"GET",
		"SET x notanint",
		"SCAN lo",
		"BEGIN ISOLATION LEVEL NONSENSE",
		"SET TRANSACTION ISOLATION LEVEL",
	} {
		reply, _ := s.Exec(line)
		if !strings.HasPrefix(reply, "-ERR") {
			t.Errorf("Exec(%q) = %q, want -ERR ...", line, reply)
		}
	}
	exec(t, s, "BEGIN", "+OK T1 SI")
	reply, _ := s.Exec("BEGIN")
	if !strings.HasPrefix(reply, "-ERR") {
		t.Fatalf("nested BEGIN = %q, want -ERR", reply)
	}
	if got := stats.Errors.Load(); got != 9 {
		t.Fatalf("Errors = %d, want 9", got)
	}
	if got := stats.Retryable.Load(); got != 0 {
		t.Fatalf("Retryable = %d, want 0", got)
	}
}

// TestSessionRetryWriteConflict pins the retry contract: a
// First-Committer-Wins loser's COMMIT replies -RETRY WRITECONFLICT, the
// transaction is already rolled back, and the session can BEGIN again
// immediately.
func TestSessionRetryWriteConflict(t *testing.T) {
	db := mvcc.NewDB()
	db.Load(data.Tuple{Key: "x", Row: data.Scalar(0)})
	var stats session.Stats
	s1 := session.New(db, engine.SnapshotIsolation, &stats)
	s2 := session.New(db, engine.SnapshotIsolation, &stats)
	defer s1.Close()
	defer s2.Close()

	exec(t, s1, "BEGIN", "+OK T1 SI")
	exec(t, s2, "BEGIN", "+OK T2 SI")
	exec(t, s1, "SET x 1", "+OK")
	exec(t, s2, "SET x 2", "+OK")
	exec(t, s1, "COMMIT", "+OK")

	reply, _ := s2.Exec("COMMIT")
	if !strings.HasPrefix(reply, "-RETRY WRITECONFLICT ") {
		t.Fatalf("losing COMMIT = %q, want -RETRY WRITECONFLICT ...", reply)
	}
	if s2.InTx() {
		t.Fatal("InTx() = true after -RETRY; session must be rolled back")
	}
	if got := stats.Retryable.Load(); got != 1 {
		t.Fatalf("Retryable = %d, want 1", got)
	}
	if got := stats.Errors.Load(); got != 0 {
		t.Fatalf("Errors = %d, want 0", got)
	}
	// The rerun-from-BEGIN contract: the same session retries and wins.
	exec(t, s2, "BEGIN", "+OK T3 SI")
	exec(t, s2, "SET x 2", "+OK")
	exec(t, s2, "COMMIT", "+OK")
	exec(t, s2, "GET x", ":2")
}

func TestSessionQuitAbortsOpenTx(t *testing.T) {
	db := mvcc.NewDB()
	s := session.New(db, engine.SnapshotIsolation, nil)
	exec(t, s, "BEGIN", "+OK T1 SI")
	exec(t, s, "SET q 1", "+OK")
	reply, quit := s.Exec("QUIT")
	if reply != "+BYE" || !quit {
		t.Fatalf("QUIT = (%q, %v), want (+BYE, true)", reply, quit)
	}
	s2 := session.New(db, engine.SnapshotIsolation, nil)
	defer s2.Close()
	exec(t, s2, "GET q", "$-1")
}

func TestSessionDefaultLevelPerFamily(t *testing.T) {
	// The serve default levels: SER for locking families, SI for mv.
	for _, tc := range []struct {
		db    engine.DB
		level engine.Level
		code  string
	}{
		{locking.NewDB(), engine.Serializable, "SER"},
		{mvcc.NewDB(), engine.SnapshotIsolation, "SI"},
	} {
		s := session.New(tc.db, tc.level, nil)
		reply, _ := s.Exec("BEGIN")
		if want := fmt.Sprintf("+OK T1 %s", tc.code); reply != want {
			t.Errorf("BEGIN at %s = %q, want %q", tc.level, reply, want)
		}
		exec(t, s, "COMMIT", "+OK")
		s.Close()
	}
}
