// Package session implements the statement lifecycle of one client
// connection: a line-oriented, RESP-flavored text protocol executed
// against any engine.DB. A session owns at most one open transaction
// (the engine's one-transaction-per-goroutine contract is preserved by
// the server driving each session from its connection goroutine) and
// maps the engine's sentinel errors onto typed wire errors:
//
//	BEGIN [ISOLATION LEVEL <level>]     -> +OK T<id> <code>
//	SET TRANSACTION ISOLATION LEVEL <l> -> +OK         (session default)
//	GET <key>                           -> :<val> | $-1
//	SET <key> <int>                     -> +OK
//	DEL <key>                           -> +OK | $-1
//	SCAN <lo> <hi>                      -> *<n> then n "+<key> <val>" lines
//	COMMIT / ABORT / ROLLBACK           -> +OK
//	LEVEL / PING / QUIT                 -> +<level> / +PONG / +BYE
//
// Error replies carry the retry contract: "-RETRY <KIND> <msg>" means the
// scheduler aborted the transaction (deadlock victim, First-Committer-Wins
// conflict, row-changed) and the client should rerun it from BEGIN — the
// session has already rolled the transaction back, so no ABORT is needed.
// "-ERR <msg>" is a non-retryable failure. Level names are the paper's §3
// names or codes, resolved by engine.ParseLevel ("REPEATABLE READ", "RR",
// "SNAPSHOT_ISOLATION", ...).
//
// Data statements outside an open transaction autocommit: a one-statement
// transaction at the session's default level.
//
// This package deliberately lives outside the //isolint:deterministic set:
// sessions are driven by network peers at wall-clock pace, unlike the
// fuzzer's scripted schedules.
package session

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/predicate"
)

// Stats aggregates statement outcomes across all sessions of a server.
// All fields are atomics; one Stats is shared by every session.
type Stats struct {
	Statements atomic.Int64 // statements executed (non-empty lines)
	Begins     atomic.Int64 // transactions opened (BEGIN + autocommit)
	Commits    atomic.Int64 // successful commits (COMMIT + autocommit)
	Aborts     atomic.Int64 // explicit ABORT/ROLLBACK statements
	Retryable  atomic.Int64 // -RETRY replies (scheduler-initiated aborts)
	Errors     atomic.Int64 // -ERR replies
}

// Session is the per-connection statement executor. Not safe for
// concurrent use: the owning connection goroutine calls Exec serially.
type Session struct {
	db    engine.DB
	level engine.Level // session default level (SET TRANSACTION changes it)
	tx    engine.Tx
	stats *Stats
}

// New returns a session over db whose transactions default to level.
// stats may be nil (a private Stats is allocated).
func New(db engine.DB, level engine.Level, stats *Stats) *Session {
	if stats == nil {
		stats = &Stats{}
	}
	return &Session{db: db, level: level, stats: stats}
}

// InTx reports whether the session has an open transaction.
func (s *Session) InTx() bool { return s.tx != nil }

// Close aborts any open transaction. Tolerates transactions the
// scheduler already terminated (the Abort's ErrTxDone is discarded) —
// teardown after a dropped connection must never fail.
func (s *Session) Close() {
	if s.tx != nil {
		_ = s.tx.Abort()
		s.tx = nil
	}
}

// Exec executes one statement line and returns the wire reply (no
// trailing line terminator; multi-line replies embed "\r\n") plus
// whether the session asked to quit. An empty line yields an empty
// reply: nothing to write.
func (s *Session) Exec(line string) (reply string, quit bool) {
	f := strings.Fields(line)
	if len(f) == 0 {
		return "", false
	}
	s.stats.Statements.Add(1)
	switch verb := strings.ToUpper(f[0]); verb {
	case "PING":
		return "+PONG", false
	case "QUIT":
		s.Close()
		return "+BYE", true
	case "LEVEL":
		return "+" + s.level.String(), false
	case "BEGIN":
		return s.begin(f), false
	case "SET":
		if len(f) >= 2 && strings.EqualFold(f[1], "TRANSACTION") {
			return s.setTransaction(f), false
		}
		return s.put(f), false
	case "GET":
		return s.get(f), false
	case "DEL":
		return s.del(f), false
	case "SCAN":
		return s.scan(f), false
	case "COMMIT":
		return s.commit(), false
	case "ABORT", "ROLLBACK":
		return s.abort(), false
	default:
		return s.errf("unknown statement %q", verb), false
	}
}

func (s *Session) begin(f []string) string {
	if s.tx != nil {
		return s.errf("transaction already open (T%d)", s.tx.ID())
	}
	lvl := s.level
	if len(f) > 1 {
		if len(f) < 4 || !strings.EqualFold(f[1], "ISOLATION") || !strings.EqualFold(f[2], "LEVEL") {
			return s.errf("syntax: BEGIN [ISOLATION LEVEL <level>]")
		}
		l, ok := engine.ParseLevel(strings.Join(f[3:], " "))
		if !ok {
			return s.errf("unknown isolation level %q", strings.Join(f[3:], " "))
		}
		lvl = l
	}
	tx, err := s.db.Begin(lvl)
	if err != nil {
		return s.errf("BEGIN at %s: %v", lvl, err)
	}
	s.tx = tx
	s.stats.Begins.Add(1)
	return fmt.Sprintf("+OK T%d %s", tx.ID(), lvl.Code())
}

func (s *Session) setTransaction(f []string) string {
	if s.tx != nil {
		return s.errf("SET TRANSACTION inside an open transaction")
	}
	if len(f) < 5 || !strings.EqualFold(f[2], "ISOLATION") || !strings.EqualFold(f[3], "LEVEL") {
		return s.errf("syntax: SET TRANSACTION ISOLATION LEVEL <level>")
	}
	lvl, ok := engine.ParseLevel(strings.Join(f[4:], " "))
	if !ok {
		return s.errf("unknown isolation level %q", strings.Join(f[4:], " "))
	}
	s.level = lvl
	return "+OK"
}

func (s *Session) commit() string {
	if s.tx == nil {
		return s.errf("COMMIT without a transaction")
	}
	tx := s.tx
	s.tx = nil
	if err := tx.Commit(); err != nil {
		// A failed commit (e.g. First-Committer-Wins) may or may not have
		// terminated the transaction; the cleanup Abort tolerates both.
		_ = tx.Abort()
		return s.fail(err)
	}
	s.stats.Commits.Add(1)
	return "+OK"
}

func (s *Session) abort() string {
	if s.tx == nil {
		return s.errf("ABORT without a transaction")
	}
	tx := s.tx
	s.tx = nil
	if err := tx.Abort(); err != nil && !errors.Is(err, engine.ErrTxDone) {
		return s.fail(err)
	}
	s.stats.Aborts.Add(1)
	return "+OK"
}

func (s *Session) get(f []string) string {
	if len(f) != 2 {
		return s.errf("syntax: GET <key>")
	}
	return s.data(func(tx engine.Tx) (string, error) {
		v, err := engine.GetVal(tx, data.Key(f[1]))
		if errors.Is(err, engine.ErrNotFound) {
			return "$-1", nil
		}
		if err != nil {
			return "", err
		}
		return ":" + strconv.FormatInt(v, 10), nil
	})
}

func (s *Session) put(f []string) string {
	if len(f) != 3 {
		return s.errf("syntax: SET <key> <int>")
	}
	v, err := strconv.ParseInt(f[2], 10, 64)
	if err != nil {
		return s.errf("SET value %q is not an integer", f[2])
	}
	return s.data(func(tx engine.Tx) (string, error) {
		if err := engine.PutVal(tx, data.Key(f[1]), v); err != nil {
			return "", err
		}
		return "+OK", nil
	})
}

func (s *Session) del(f []string) string {
	if len(f) != 2 {
		return s.errf("syntax: DEL <key>")
	}
	return s.data(func(tx engine.Tx) (string, error) {
		err := tx.Delete(data.Key(f[1]))
		if errors.Is(err, engine.ErrNotFound) {
			return "$-1", nil
		}
		if err != nil {
			return "", err
		}
		return "+OK", nil
	})
}

func (s *Session) scan(f []string) string {
	if len(f) != 3 {
		return s.errf("syntax: SCAN <lo> <hi>")
	}
	return s.data(func(tx engine.Tx) (string, error) {
		tuples, err := tx.Select(predicate.KeyRange{Lo: data.Key(f[1]), Hi: data.Key(f[2])})
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "*%d", len(tuples))
		for _, t := range tuples {
			fmt.Fprintf(&b, "\r\n+%s %d", t.Key, t.Row.Val())
		}
		return b.String(), nil
	})
}

// data runs one data statement, opening and committing an autocommit
// transaction when none is open. On any engine error the transaction is
// rolled back (the engine contract: errors other than ErrNotFound leave
// the transaction abort-only) and the error is classified retryable or
// not.
func (s *Session) data(op func(tx engine.Tx) (string, error)) string {
	tx := s.tx
	autocommit := tx == nil
	if autocommit {
		var err error
		tx, err = s.db.Begin(s.level)
		if err != nil {
			return s.errf("autocommit BEGIN at %s: %v", s.level, err)
		}
		s.stats.Begins.Add(1)
	}
	reply, err := op(tx)
	if err != nil {
		_ = tx.Abort()
		s.tx = nil
		return s.fail(err)
	}
	if autocommit {
		if err := tx.Commit(); err != nil {
			_ = tx.Abort()
			return s.fail(err)
		}
		s.stats.Commits.Add(1)
	}
	return reply
}

// fail renders an engine error as a wire error. Retryable errors
// (engine.IsRetryable: deadlock victim, FCW conflict, row-changed) become
// "-RETRY <KIND> <msg>"; the session's transaction is already rolled back
// by the callers, so the client's contract is simply to rerun from BEGIN.
func (s *Session) fail(err error) string {
	if engine.IsRetryable(err) {
		s.stats.Retryable.Add(1)
		return "-RETRY " + retryKind(err) + " " + err.Error()
	}
	s.stats.Errors.Add(1)
	return "-ERR " + err.Error()
}

func (s *Session) errf(format string, args ...any) string {
	s.stats.Errors.Add(1)
	return "-ERR " + fmt.Sprintf(format, args...)
}

// retryKind names the retryable class for the wire: DEADLOCK,
// WRITECONFLICT or ROWCHANGED.
func retryKind(err error) string {
	switch {
	case errors.Is(err, engine.ErrDeadlock):
		return "DEADLOCK"
	case errors.Is(err, engine.ErrWriteConflict):
		return "WRITECONFLICT"
	case errors.Is(err, engine.ErrRowChanged):
		return "ROWCHANGED"
	}
	return "RETRYABLE"
}
