package mv

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"isolevel/internal/data"
)

func TestOracleWatermark(t *testing.T) {
	var o Oracle
	if o.Safe() != 0 {
		t.Fatal("zero oracle watermark should be 0")
	}
	a, b, c := o.Next(), o.Next(), o.Next() // 1, 2, 3
	o.Done(b)                               // out of order: gap at 1
	if o.Safe() != 0 {
		t.Fatalf("watermark advanced over a gap: %d", o.Safe())
	}
	o.Done(a)
	if o.Safe() != 2 {
		t.Fatalf("watermark = %d, want 2 (1 and 2 installed)", o.Safe())
	}
	o.Done(c)
	if o.Safe() != 3 {
		t.Fatalf("watermark = %d, want 3", o.Safe())
	}
	if o.Current() != 3 {
		t.Fatalf("current = %d, want 3", o.Current())
	}
}

func TestOracleWatermarkConcurrent(t *testing.T) {
	var o Oracle
	var wg sync.WaitGroup
	const goroutines, per = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o.Done(o.Next())
			}
		}()
	}
	wg.Wait()
	if o.Safe() != TS(goroutines*per) {
		t.Fatalf("watermark = %d, want %d", o.Safe(), goroutines*per)
	}
}

func TestStoreShardCount(t *testing.T) {
	if NewStore().ShardCount() != DefaultShards {
		t.Fatalf("default shards = %d", NewStore().ShardCount())
	}
	if NewStoreShards(0).ShardCount() != 1 {
		t.Fatal("n < 1 should clamp to one shard")
	}
	if NewStoreShards(7).ShardCount() != 7 {
		t.Fatal("explicit shard count ignored")
	}
}

// Every public read path must agree across stripes regardless of shard
// count: the striping is invisible to callers.
func TestStripingInvisibleToReaders(t *testing.T) {
	for _, n := range []int{1, 2, 16, 64} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			s := NewStoreShards(n)
			for i := 0; i < 40; i++ {
				s.Install(TS(i+1), i, map[data.Key]data.Row{
					data.Key(fmt.Sprintf("k%02d", i)): data.Scalar(int64(i)),
				})
			}
			if got := len(s.Keys()); got != 40 {
				t.Fatalf("keys = %d", got)
			}
			ks := s.Keys()
			for i := 1; i < len(ks); i++ {
				if ks[i-1] >= ks[i] {
					t.Fatalf("keys not sorted: %s before %s", ks[i-1], ks[i])
				}
			}
			if got := len(s.SnapshotAt(40)); got != 40 {
				t.Fatalf("snapshot size = %d", got)
			}
			if got := len(s.SnapshotAt(10)); got != 10 {
				t.Fatalf("snapshot at 10 = %d", got)
			}
			if v, ok := s.ReadAt("k05", 40); !ok || v.Row.Val() != 5 {
				t.Fatalf("ReadAt k05: %v %v", v, ok)
			}
			if s.LatestCommitTS("k39") != 40 {
				t.Fatalf("latest k39 = %d", s.LatestCommitTS("k39"))
			}
		})
	}
}

func TestLockWriteSetExclusion(t *testing.T) {
	s := NewStoreShards(4)
	keys := []data.Key{"a", "b", "c", "a"} // duplicates must not self-deadlock
	release := s.LockWriteSet(keys)
	started := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		close(started)
		r := s.LockWriteSet([]data.Key{"a"})
		r()
		close(acquired)
	}()
	<-started
	time.Sleep(10 * time.Millisecond) // give the goroutine time to block
	select {
	case <-acquired:
		t.Fatal("overlapping write set acquired latches while held")
	default:
	}
	release()
	<-acquired // must now proceed

	// Empty set is a no-op.
	s.LockWriteSet(nil)()
}

// Concurrent committers locking overlapping stripe sets in any key order
// must never deadlock (latches are taken in ascending stripe order). Run
// with -race.
func TestLockWriteSetNoDeadlock(t *testing.T) {
	s := NewStoreShards(8)
	keySets := [][]data.Key{
		{"a", "b", "c"},
		{"c", "b", "a"},
		{"b", "d", "a"},
		{"d", "c"},
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				release := s.LockWriteSet(keySets[(g+i)%len(keySets)])
				release()
			}
		}(g)
	}
	wg.Wait()
}
