package mv

import (
	"sync"
	"testing"
	"testing/quick"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

func TestOracleMonotonic(t *testing.T) {
	var o Oracle
	prev := o.Current()
	for i := 0; i < 100; i++ {
		ts := o.Next()
		if ts <= prev {
			t.Fatalf("non-monotonic: %d after %d", ts, prev)
		}
		prev = ts
	}
}

func TestOracleConcurrentUnique(t *testing.T) {
	var o Oracle
	var mu sync.Mutex
	seen := map[TS]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ts := o.Next()
				mu.Lock()
				if seen[ts] {
					t.Errorf("duplicate ts %d", ts)
				}
				seen[ts] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestReadAtVisibility(t *testing.T) {
	s := NewStore()
	s.Install(5, 1, map[data.Key]data.Row{"x": data.Scalar(50)})
	s.Install(9, 2, map[data.Key]data.Row{"x": data.Scalar(90)})

	if _, ok := s.ReadAt("x", 4); ok {
		t.Fatal("version visible before first commit")
	}
	if v, ok := s.ReadAt("x", 5); !ok || v.Row.Val() != 50 {
		t.Fatalf("at ts 5: %v %v", v, ok)
	}
	if v, ok := s.ReadAt("x", 8); !ok || v.Row.Val() != 50 {
		t.Fatalf("at ts 8: %v %v", v, ok)
	}
	if v, ok := s.ReadAt("x", 9); !ok || v.Row.Val() != 90 {
		t.Fatalf("at ts 9: %v %v", v, ok)
	}
	if v, ok := s.ReadAt("x", 100); !ok || v.Row.Val() != 90 {
		t.Fatalf("at ts 100: %v %v", v, ok)
	}
}

func TestTombstoneVisibility(t *testing.T) {
	s := NewStore()
	s.Install(1, 1, map[data.Key]data.Row{"x": data.Scalar(1)})
	s.Install(2, 2, map[data.Key]data.Row{"x": nil}) // delete
	if _, ok := s.ReadAt("x", 1); !ok {
		t.Fatal("pre-delete version invisible")
	}
	if _, ok := s.ReadAt("x", 2); ok {
		t.Fatal("tombstone visible as a row")
	}
	if s.VersionCount("x") != 2 {
		t.Fatalf("version count = %d", s.VersionCount("x"))
	}
}

func TestLatestCommitTS(t *testing.T) {
	s := NewStore()
	if s.LatestCommitTS("x") != 0 {
		t.Fatal("unwritten key should report 0")
	}
	s.Install(3, 1, map[data.Key]data.Row{"x": data.Scalar(1)})
	s.Install(7, 2, map[data.Key]data.Row{"x": data.Scalar(2)})
	if s.LatestCommitTS("x") != 7 {
		t.Fatalf("latest = %d", s.LatestCommitTS("x"))
	}
}

func TestSelectAt(t *testing.T) {
	s := NewStore()
	s.Install(1, 1, map[data.Key]data.Row{
		"e1": {"active": 1}, "e2": {"active": 0},
	})
	s.Install(5, 2, map[data.Key]data.Row{"e3": {"active": 1}})
	p := predicate.MustParse("active == 1")
	if got := s.SelectAt(p, 1); len(got) != 1 || got[0].Key != "e1" {
		t.Fatalf("at ts 1: %v", got)
	}
	if got := s.SelectAt(p, 5); len(got) != 2 {
		t.Fatalf("at ts 5: %v", got)
	}
	if got := s.SnapshotAt(5); len(got) != 3 {
		t.Fatalf("snapshot at 5: %v", got)
	}
}

func TestLoadAndKeys(t *testing.T) {
	s := NewStore()
	var o Oracle
	s.Load(o.Next(), data.Tuple{Key: "b", Row: data.Scalar(2)}, data.Tuple{Key: "a", Row: data.Scalar(1)})
	ks := s.Keys()
	if len(ks) != 2 || ks[0] != "a" || ks[1] != "b" {
		t.Fatalf("keys = %v", ks)
	}
}

func TestChainCopies(t *testing.T) {
	s := NewStore()
	s.Install(1, 7, map[data.Key]data.Row{"x": data.Scalar(1)})
	c := s.Chain("x")
	if len(c) != 1 || c[0].Writer != 7 {
		t.Fatalf("chain = %v", c)
	}
	c[0].Row[data.ValField] = 99
	if v, _ := s.ReadAt("x", 1); v.Row.Val() != 1 {
		t.Fatal("Chain leaked internal storage")
	}
}

func TestReadAtReturnsCopy(t *testing.T) {
	s := NewStore()
	s.Install(1, 1, map[data.Key]data.Row{"x": data.Scalar(1)})
	v, _ := s.ReadAt("x", 1)
	v.Row[data.ValField] = 99
	if v2, _ := s.ReadAt("x", 1); v2.Row.Val() != 1 {
		t.Fatal("ReadAt leaked internal storage")
	}
}

// Property: visibility is monotone — a version visible at ts is visible at
// every ts' >= ts until a newer version covers it; reading at increasing
// timestamps never goes back to an older version.
func TestVisibilityMonotoneProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		s := NewStore()
		ts := TS(0)
		var stamps []TS
		for i, v := range raw {
			if len(stamps) > 8 {
				break
			}
			ts += TS(v%3 + 1)
			stamps = append(stamps, ts)
			s.Install(ts, i, map[data.Key]data.Row{"x": data.Scalar(int64(i))})
		}
		prev := int64(-1)
		for q := TS(0); q <= ts+2; q++ {
			if v, ok := s.ReadAt("x", q); ok {
				if v.Row.Val() < prev {
					return false
				}
				prev = v.Row.Val()
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
