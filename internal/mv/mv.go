// Package mv is the multiversion row store and timestamp oracle behind the
// Snapshot Isolation engine (§4.2) and the Oracle-style Read Consistency
// engine (§4.3).
//
// Each data item carries a chain of committed versions stamped with the
// commit timestamp of their writer. A read at snapshot timestamp ts sees
// the version with the largest commit timestamp <= ts ("Updates by other
// transactions active after the transaction Start-Timestamp are invisible
// to the transaction"). Reads never block and never block writers.
//
// The store records, for every key, the full committed version chain; this
// is both the visibility mechanism and the "remembered updates" that
// First-Committer-Wins validation checks ("First-committer-wins requires
// the system to remember all updates belonging to any transaction that
// commits after the Start-Timestamp of each active transaction").
//
// # Striping
//
// The store is sharded: keys hash onto a fixed set of stripes, each with
// its own read-write latch over its slice of the version chains, plus a
// commit latch used by the engines' validate+install critical sections.
// Transactions whose write sets land on disjoint stripes validate and
// commit fully in parallel; only same-stripe (in particular same-key)
// committers serialize. LockWriteSet acquires the commit latches of every
// stripe a write set covers, in ascending stripe order, so concurrent
// committers can never deadlock.
//
// Because commits no longer funnel through one global mutex, "the newest
// committed snapshot" is no longer a single atomic fact: a commit
// timestamp is allocated before its versions finish installing. The
// Oracle therefore keeps a watermark (Safe) alongside the allocation
// counter (Current): Safe is the largest timestamp t such that every
// commit with timestamp <= t has fully installed. Engines start snapshots
// at Safe, never Current, so a snapshot can never observe half of a
// concurrent commit and no version with CommitTS <= a started snapshot
// can appear after the fact.
//
//isolint:deterministic
package mv

import (
	"sort"
	"sync"
	"sync/atomic"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

// TS is a timestamp drawn from the Oracle.
type TS uint64

// Oracle issues monotonically increasing timestamps and tracks the
// installed watermark. The zero value is ready to use; the first timestamp
// issued is 1.
//
// Contract: every timestamp obtained via Next for a commit (or Load) must
// be reported back via Done once its versions are installed; Safe advances
// only over Done timestamps.
type Oracle struct {
	now     atomic.Uint64
	applied atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]struct{} // Done out of order, waiting for the gap to fill
}

// Next returns a fresh timestamp larger than every previously issued one.
func (o *Oracle) Next() TS { return TS(o.now.Add(1)) }

// Current returns the latest issued timestamp (the newest allocation, not
// necessarily installed — see Safe).
func (o *Oracle) Current() TS { return TS(o.now.Load()) }

// Done marks ts as fully installed and advances the Safe watermark across
// every consecutive installed timestamp.
func (o *Oracle) Done(ts TS) {
	o.mu.Lock()
	defer o.mu.Unlock()
	applied := o.applied.Load()
	if uint64(ts) != applied+1 {
		if o.pending == nil {
			o.pending = map[uint64]struct{}{}
		}
		o.pending[uint64(ts)] = struct{}{}
		return
	}
	applied++
	for {
		if _, ok := o.pending[applied+1]; !ok {
			break
		}
		delete(o.pending, applied+1)
		applied++
	}
	o.applied.Store(applied)
}

// Safe returns the installed watermark: the largest timestamp t such that
// every commit with timestamp <= t has fully installed. Snapshots started
// at Safe are stable — no version with CommitTS <= Safe can appear later.
func (o *Oracle) Safe() TS { return TS(o.applied.Load()) }

// Version is one committed version of a data item. Deleted marks a
// tombstone (the delete is itself a committed version).
type Version struct {
	CommitTS TS
	Writer   int // transaction id of the writer, for dataflow analysis
	Row      data.Row
	Deleted  bool
}

// DefaultShards is the stripe count of NewStore. It trades map-latch
// contention against per-operation hashing cost; engines expose it as a
// knob (snapshot.WithShards, oraclerc.WithShards) for sweeps.
const DefaultShards = 16

// shard is one stripe of the store: a latch-protected slice of the chains
// plus the commit latch engines hold across validate+install.
type shard struct {
	mu     sync.RWMutex
	chains map[data.Key][]Version

	// commitMu is the stripe's commit latch. It is separate from mu so
	// that holding a write-set's commit latches (potentially across a
	// validation loop) never blocks plain snapshot reads of the stripe;
	// readers only wait during the brief chain append inside Install.
	commitMu sync.Mutex
}

// Store is a striped multiversion row store.
type Store struct {
	striper data.Striper
	shards  []*shard
}

// NewStore returns an empty multiversion store with DefaultShards stripes.
func NewStore() *Store { return NewStoreShards(DefaultShards) }

// NewStoreShards returns an empty multiversion store striped across n
// latches (n < 1 is treated as 1; n = 1 degenerates to the old global-latch
// behavior, useful as a baseline in shard sweeps).
func NewStoreShards(n int) *Store {
	striper := data.NewStriper(n)
	s := &Store{striper: striper, shards: make([]*shard, striper.Count())}
	for i := range s.shards {
		s.shards[i] = &shard{chains: map[data.Key][]Version{}}
	}
	return s
}

// ShardCount returns the number of stripes.
func (s *Store) ShardCount() int { return len(s.shards) }

func (s *Store) shardOf(key data.Key) *shard {
	return s.shards[s.shardIndex(key)]
}

func (s *Store) shardIndex(key data.Key) int { return s.striper.Index(key) }

// LockWriteSet acquires the commit latches of every stripe covered by keys,
// in ascending stripe order (deadlock-free), and returns the release
// function. Engines hold these latches across First-Committer-Wins
// validation and version install so that same-key committers serialize
// while disjoint-stripe committers proceed in parallel. An empty key set
// returns a no-op release.
func (s *Store) LockWriteSet(keys []data.Key) (release func()) {
	if len(keys) == 0 {
		return func() {}
	}
	idx := make([]int, 0, len(keys))
	seen := map[int]bool{}
	for _, k := range keys {
		i := s.shardIndex(k)
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	for _, i := range idx {
		s.shards[i].commitMu.Lock()
	}
	return func() {
		for j := len(idx) - 1; j >= 0; j-- {
			s.shards[idx[j]].commitMu.Unlock()
		}
	}
}

// Load installs initial versions at commit timestamp ts (setup helper).
func (s *Store) Load(ts TS, tuples ...data.Tuple) {
	for _, t := range tuples {
		sh := s.shardOf(t.Key)
		sh.mu.Lock()
		sh.chains[t.Key] = append(sh.chains[t.Key], Version{CommitTS: ts, Row: t.Row.Clone()})
		sh.mu.Unlock()
	}
}

// ReadAt returns the version of key visible at snapshot ts: the committed
// version with the largest CommitTS <= ts. ok is false if no version is
// visible (never written, or the visible version is a tombstone — the
// tombstone itself is returned so callers can distinguish).
func (s *Store) ReadAt(key data.Key, ts TS) (v Version, ok bool) {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	chain := sh.chains[key]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].CommitTS <= ts {
			if chain[i].Deleted {
				return chain[i], false
			}
			out := chain[i]
			out.Row = out.Row.Clone()
			return out, true
		}
	}
	return Version{}, false
}

// LatestCommitTS returns the commit timestamp of the newest committed
// version of key, or 0 if the key has never been written. This is the
// First-Committer-Wins validation primitive: T1 may commit only if no key
// in its write set has LatestCommitTS > T1's start timestamp. Stable
// answers for a whole write set require holding the set's commit latches
// (LockWriteSet) across the checks.
func (s *Store) LatestCommitTS(key data.Key) TS {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	chain := sh.chains[key]
	if len(chain) == 0 {
		return 0
	}
	return chain[len(chain)-1].CommitTS
}

// Install appends committed versions for writer at commit timestamp ts.
// The caller (the engine's commit critical section, under LockWriteSet)
// guarantees ts exceeds every CommitTS already in the touched chains.
func (s *Store) Install(ts TS, writer int, writes map[data.Key]data.Row) {
	//isolint:ordered per-key chain appends at one commit timestamp; each key's chain is unaffected by visit order
	for key, row := range writes {
		v := Version{CommitTS: ts, Writer: writer}
		if row == nil {
			v.Deleted = true
		} else {
			v.Row = row.Clone()
		}
		sh := s.shardOf(key)
		sh.mu.Lock()
		sh.chains[key] = append(sh.chains[key], v)
		sh.mu.Unlock()
	}
}

// SelectAt returns copies of all tuples visible at ts that satisfy p,
// sorted by key.
func (s *Store) SelectAt(p predicate.P, ts TS) []data.Tuple {
	var out []data.Tuple
	for _, k := range s.Keys() {
		if v, ok := s.ReadAt(k, ts); ok {
			t := data.Tuple{Key: k, Row: v.Row}
			if p.Match(t) {
				out = append(out, t)
			}
		}
	}
	data.SortTuples(out)
	return out
}

// SnapshotAt returns every visible tuple at ts, sorted by key.
func (s *Store) SnapshotAt(ts TS) []data.Tuple {
	return s.SelectAt(predicate.True{}, ts)
}

// VersionCount returns the number of committed versions of key (tombstones
// included) — used by tests and the time-travel example.
func (s *Store) VersionCount(key data.Key) int {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.chains[key])
}

// Chain returns a copy of key's version chain in commit order.
func (s *Store) Chain(key data.Key) []Version {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make([]Version, len(sh.chains[key]))
	copy(out, sh.chains[key])
	for i := range out {
		out[i].Row = out[i].Row.Clone()
	}
	return out
}

// Keys returns every key that has at least one version, sorted.
func (s *Store) Keys() []data.Key {
	var out []data.Key
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k := range sh.chains {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
