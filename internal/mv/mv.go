// Package mv is the multiversion row store and timestamp oracle behind the
// Snapshot Isolation engine (§4.2) and the Oracle-style Read Consistency
// engine (§4.3).
//
// Each data item carries a chain of committed versions stamped with the
// commit timestamp of their writer. A read at snapshot timestamp ts sees
// the version with the largest commit timestamp <= ts ("Updates by other
// transactions active after the transaction Start-Timestamp are invisible
// to the transaction"). Reads never block and never b lock writers.
//
// The store records, for every key, the full committed version chain; this
// is both the visibility mechanism and the "remembered updates" that
// First-Committer-Wins validation checks ("First-committer-wins requires
// the system to remember all updates belonging to any transaction that
// commits after the Start-Timestamp of each active transaction").
package mv

import (
	"sort"
	"sync"
	"sync/atomic"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

// TS is a timestamp drawn from the Oracle.
type TS uint64

// Oracle issues monotonically increasing timestamps. The zero value is
// ready to use; the first timestamp issued is 1.
type Oracle struct {
	now atomic.Uint64
}

// Next returns a fresh timestamp larger than every previously issued one.
func (o *Oracle) Next() TS { return TS(o.now.Add(1)) }

// Current returns the latest issued timestamp (the newest possible
// snapshot).
func (o *Oracle) Current() TS { return TS(o.now.Load()) }

// Version is one committed version of a data item. Deleted marks a
// tombstone (the delete is itself a committed version).
type Version struct {
	CommitTS TS
	Writer   int // transaction id of the writer, for dataflow analysis
	Row      data.Row
	Deleted  bool
}

// Store is a multiversion row store.
type Store struct {
	mu     sync.RWMutex
	chains map[data.Key][]Version // ascending CommitTS
}

// NewStore returns an empty multiversion store.
func NewStore() *Store {
	return &Store{chains: map[data.Key][]Version{}}
}

// Load installs initial versions at commit timestamp ts (setup helper).
func (s *Store) Load(ts TS, tuples ...data.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range tuples {
		s.chains[t.Key] = append(s.chains[t.Key], Version{CommitTS: ts, Row: t.Row.Clone()})
	}
}

// ReadAt returns the version of key visible at snapshot ts: the committed
// version with the largest CommitTS <= ts. ok is false if no version is
// visible (never written, or the visible version is a tombstone — the
// tombstone itself is returned so callers can distinguish).
func (s *Store) ReadAt(key data.Key, ts TS) (v Version, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[key]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].CommitTS <= ts {
			if chain[i].Deleted {
				return chain[i], false
			}
			out := chain[i]
			out.Row = out.Row.Clone()
			return out, true
		}
	}
	return Version{}, false
}

// LatestCommitTS returns the commit timestamp of the newest committed
// version of key, or 0 if the key has never been written. This is the
// First-Committer-Wins validation primitive: T1 may commit only if no key
// in its write set has LatestCommitTS > T1's start timestamp.
func (s *Store) LatestCommitTS(key data.Key) TS {
	s.mu.RLock()
	defer s.mu.RUnlock()
	chain := s.chains[key]
	if len(chain) == 0 {
		return 0
	}
	return chain[len(chain)-1].CommitTS
}

// Install appends committed versions for writer at commit timestamp ts.
// The caller (the engine's commit critical section) guarantees ts exceeds
// every CommitTS already in the touched chains.
func (s *Store) Install(ts TS, writer int, writes map[data.Key]data.Row) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, row := range writes {
		v := Version{CommitTS: ts, Writer: writer}
		if row == nil {
			v.Deleted = true
		} else {
			v.Row = row.Clone()
		}
		s.chains[key] = append(s.chains[key], v)
	}
}

// SelectAt returns copies of all tuples visible at ts that satisfy p,
// sorted by key.
func (s *Store) SelectAt(p predicate.P, ts TS) []data.Tuple {
	s.mu.RLock()
	keys := make([]data.Key, 0, len(s.chains))
	for k := range s.chains {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	var out []data.Tuple
	for _, k := range keys {
		if v, ok := s.ReadAt(k, ts); ok {
			t := data.Tuple{Key: k, Row: v.Row}
			if p.Match(t) {
				out = append(out, t)
			}
		}
	}
	data.SortTuples(out)
	return out
}

// SnapshotAt returns every visible tuple at ts, sorted by key.
func (s *Store) SnapshotAt(ts TS) []data.Tuple {
	return s.SelectAt(predicate.True{}, ts)
}

// VersionCount returns the number of committed versions of key (tombstones
// included) — used by tests and the time-travel example.
func (s *Store) VersionCount(key data.Key) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chains[key])
}

// Chain returns a copy of key's version chain in commit order.
func (s *Store) Chain(key data.Key) []Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Version, len(s.chains[key]))
	copy(out, s.chains[key])
	for i := range out {
		out[i].Row = out[i].Row.Clone()
	}
	return out
}

// Keys returns every key that has at least one version, sorted.
func (s *Store) Keys() []data.Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]data.Key, 0, len(s.chains))
	for k := range s.chains {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
