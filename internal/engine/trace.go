package engine

import (
	"sort"
	"sync"
	"sync/atomic"

	"isolevel/internal/data"
	"isolevel/internal/history"
	"isolevel/internal/predicate"
)

// Recorder captures the history actually executed by an engine, in the
// order operations took effect, so live runs can be fed to the same
// phenomenon matchers and dependency-graph analyses as the paper's
// hand-written histories.
//
// Engines record each operation while still holding the lock (or inside
// the commit critical section) that orders it against conflicting
// operations, so for locked operations the recorded order is a faithful
// linearization of the conflict order. Unlocked dirty reads (Degree 0 /
// READ UNCOMMITTED) are recorded at execution time on a best-effort basis.
type Recorder struct {
	// on is checked lock-free on every engine operation: a disabled
	// recorder (every benchmark workload) must not serialize concurrent
	// transactions on the recorder mutex.
	on    atomic.Bool
	mu    sync.Mutex
	ops   history.History
	preds map[string]predicate.P // every predicate ever read, by name
}

// NewRecorder returns a disabled recorder; call Enable to start capturing.
func NewRecorder() *Recorder {
	return &Recorder{preds: map[string]predicate.P{}}
}

// Enable turns on capture.
func (r *Recorder) Enable() {
	r.on.Store(true)
}

// Enabled reports whether the recorder captures operations.
func (r *Recorder) Enabled() bool {
	return r.on.Load()
}

// Record appends an op if capture is enabled.
func (r *Recorder) Record(op history.Op) {
	if !r.on.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
}

// RecordPredRead appends a predicate read and registers the predicate so
// later writes can be annotated with it.
func (r *Recorder) RecordPredRead(tx int, p predicate.P) {
	if !r.on.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name := p.String()
	r.preds[name] = p
	r.ops = append(r.ops, history.Op{Tx: tx, Kind: history.PredRead, Preds: []string{name}, Version: -1})
}

// RecordWrite appends a write annotated with every previously read
// predicate that covers either image (this is what makes recorded
// histories carry the paper's "w2[y in P]" information). A nil after
// image is a delete and records as the Delete kind ("d1[x]"), so the
// trace distinguishes removing a row from writing one.
func (r *Recorder) RecordWrite(tx int, key data.Key, before, after data.Row) {
	if !r.on.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	op := history.Op{Tx: tx, Kind: history.Write, Item: key, Version: -1}
	if after != nil {
		op.Value, op.HasValue = after.Val(), true
	} else {
		op.Kind = history.Delete
	}
	var matched []string
	for name, p := range r.preds {
		if predicate.MatchEither(p, key, before, after) {
			matched = append(matched, name)
		}
	}
	sort.Strings(matched)
	op.Preds = matched
	r.ops = append(r.ops, op)
}

// History returns a copy of the captured history.
func (r *Recorder) History() history.History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(history.History, len(r.ops))
	copy(out, r.ops)
	return out
}

// Reset clears the captured ops (but keeps registered predicates).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = nil
}
