// Package engine defines the contract every concurrency-control engine in
// this repository implements: the locking scheduler of Table 2, the
// Snapshot Isolation engine of §4.2, and the Oracle-style Read Consistency
// engine of §4.3. The anomaly harness, the examples, and the benchmarks
// program against these interfaces only.
//
//isolint:deterministic
package engine

import (
	"errors"
	"fmt"
	"strings"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

// Level is an isolation level, covering the locking levels of Table 2 and
// the multiversion levels of §4.
type Level int

// Isolation levels in increasing (partial) strength order. The names
// follow the paper's Table 2 and §4; Degree 1–3 are the [GLPT] aliases.
const (
	// Degree0 requires only well-formed (short) write locks: action
	// atomicity. Dirty writes are possible.
	Degree0 Level = iota
	// ReadUncommitted (Degree 1) holds long write locks: no dirty writes,
	// but reads are unlocked and may be dirty.
	ReadUncommitted
	// ReadCommitted (Degree 2) adds well-formed short read locks.
	ReadCommitted
	// CursorStability (§4.1) extends ReadCommitted: the lock on the row
	// under a cursor is held until the cursor moves, preventing P4C.
	CursorStability
	// RepeatableRead holds long item read locks but only short predicate
	// read locks: everything but phantoms.
	RepeatableRead
	// Serializable (Degree 3) holds long read locks on items and
	// predicates: full two-phase locking.
	Serializable
	// SnapshotIsolation is the multiversion level defined by the paper's
	// §4.2: snapshot reads at the start timestamp plus First-Committer-Wins.
	SnapshotIsolation
	// ReadConsistency is Oracle's statement-level snapshot isolation
	// (§4.3): each statement reads the latest committed state as of the
	// statement's start; writes take long write locks (first-writer-wins).
	ReadConsistency
)

// Levels lists all levels in declaration order.
var Levels = []Level{Degree0, ReadUncommitted, ReadCommitted, CursorStability,
	RepeatableRead, Serializable, SnapshotIsolation, ReadConsistency}

func (l Level) String() string {
	switch l {
	case Degree0:
		return "DEGREE 0"
	case ReadUncommitted:
		return "READ UNCOMMITTED"
	case ReadCommitted:
		return "READ COMMITTED"
	case CursorStability:
		return "CURSOR STABILITY"
	case RepeatableRead:
		return "REPEATABLE READ"
	case Serializable:
		return "SERIALIZABLE"
	case SnapshotIsolation:
		return "SNAPSHOT ISOLATION"
	case ReadConsistency:
		return "READ CONSISTENCY"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Code returns the short mnemonic used by per-transaction level
// annotations ("# levels: T1=RR T2=SI ...") and by mixed-run reports:
// D0, RU, RC, CS, RR, SER, SI, ORC.
func (l Level) Code() string {
	switch l {
	case Degree0:
		return "D0"
	case ReadUncommitted:
		return "RU"
	case ReadCommitted:
		return "RC"
	case CursorStability:
		return "CS"
	case RepeatableRead:
		return "RR"
	case Serializable:
		return "SER"
	case SnapshotIsolation:
		return "SI"
	case ReadConsistency:
		return "ORC"
	}
	return fmt.Sprintf("L%d", int(l))
}

// ParseLevel resolves a level from its full name ("REPEATABLE READ"), its
// short code ("RR"), or the full name with spaces dropped or replaced by
// underscores ("REPEATABLEREAD", "repeatable_read") — the last form is
// what single-token contexts like "# levels: T1=REPEATABLE_READ" need.
// Case-insensitive.
func ParseLevel(s string) (Level, bool) {
	squeezed := strings.ReplaceAll(s, "_", "")
	for _, l := range Levels {
		if strings.EqualFold(s, l.String()) || strings.EqualFold(s, l.Code()) ||
			strings.EqualFold(squeezed, strings.ReplaceAll(l.String(), " ", "")) {
			return l, true
		}
	}
	return 0, false
}

// Engine errors. Engines wrap these (errors.Is-compatible) so detectors can
// classify how an anomaly was prevented.
var (
	// ErrDeadlock: the operation was chosen as a deadlock victim; the
	// transaction must be aborted by the caller.
	ErrDeadlock = errors.New("engine: deadlock victim")
	// ErrWriteConflict: Snapshot Isolation First-Committer-Wins failed the
	// commit ("the transaction successfully commits only if no other
	// transaction with a Commit-Timestamp in its execution interval wrote
	// data that it also wrote").
	ErrWriteConflict = errors.New("engine: first-committer-wins write-write conflict")
	// ErrRowChanged: Read Consistency detected that the row under a cursor
	// changed since the cursor opened (write consistency check).
	ErrRowChanged = errors.New("engine: row changed since cursor snapshot")
	// ErrTxDone: operation on a committed or aborted transaction.
	ErrTxDone = errors.New("engine: transaction already terminated")
	// ErrNoCursor: cursor operation without an open cursor row.
	ErrNoCursor = errors.New("engine: no current cursor row")
	// ErrUnsupported: the engine does not implement the operation (e.g.
	// AsOf on a locking engine).
	ErrUnsupported = errors.New("engine: unsupported operation")
	// ErrNotFound: Get on an absent row. Distinct from a nil error with a
	// nil row so detectors never confuse "absent" with "zero".
	ErrNotFound = errors.New("engine: row not found")
)

// DB is a database engine instance: a store plus a concurrency-control
// scheduler. Engines are safe for concurrent use by multiple goroutines,
// one transaction per goroutine.
type DB interface {
	// Begin starts a transaction at the given isolation level. Engines
	// reject levels they do not implement with ErrUnsupported.
	Begin(level Level) (Tx, error)
	// Load bulk-inserts rows outside any transaction (test/bench setup).
	Load(tuples ...data.Tuple)
	// ReadCommitted returns the current committed value of key as seen by a
	// fresh observer (final-state checks in detectors), or nil if absent.
	ReadCommittedRow(key data.Key) data.Row
	// Levels lists the isolation levels this engine implements.
	Levels() []Level
}

// Tx is one transaction. Methods must be called from a single goroutine.
// Any error other than ErrNotFound leaves the transaction in a state where
// the caller must Abort it.
type Tx interface {
	// ID returns the engine-assigned transaction identifier (unique per DB).
	ID() int
	// Level returns the isolation level the transaction runs at.
	Level() Level

	// Get reads a single row; ErrNotFound if absent (or invisible).
	Get(key data.Key) (data.Row, error)
	// Put inserts or updates a row.
	Put(key data.Key, row data.Row) error
	// Delete removes a row.
	Delete(key data.Key) error
	// Select returns all visible rows satisfying p, sorted by key.
	Select(p predicate.P) ([]data.Tuple, error)

	// OpenCursor opens a cursor over the rows satisfying p (§4.1). Multiple
	// cursors may be open; each holds its own current-row lock per the
	// level's protocol.
	OpenCursor(p predicate.P) (Cursor, error)

	// Commit terminates the transaction, making its writes durable and
	// visible. Under Snapshot Isolation it may fail with ErrWriteConflict.
	Commit() error
	// Abort rolls the transaction back.
	Abort() error
}

// Cursor is a SQL-style cursor (§4.1): FETCH advances to the next row and
// (at Cursor Stability) moves the current-row lock with it; UpdateCurrent
// writes through the cursor ("wc").
type Cursor interface {
	// Fetch advances to the next row, returning ErrNotFound when exhausted.
	Fetch() (data.Tuple, error)
	// Current returns the tuple the cursor is on.
	Current() (data.Tuple, error)
	// UpdateCurrent overwrites the row under the cursor.
	UpdateCurrent(row data.Row) error
	// Close releases the cursor and any lock it still holds.
	Close() error
}

// GetVal is a convenience wrapper returning the scalar ValField of key.
func GetVal(tx Tx, key data.Key) (int64, error) {
	row, err := tx.Get(key)
	if err != nil {
		return 0, err
	}
	return row.Val(), nil
}

// PutVal is a convenience wrapper writing a scalar row.
func PutVal(tx Tx, key data.Key, v int64) error {
	return tx.Put(key, data.Scalar(v))
}

// IsPrevention reports whether err is one of the errors by which an engine
// prevents an anomaly (deadlock victim, FCW conflict, row-changed).
func IsPrevention(err error) bool {
	return IsRetryable(err)
}

// IsRetryable reports whether err means the transaction was aborted by the
// scheduler rather than by application logic — a deadlock victim, a failed
// First-Committer-Wins check, or a Read Consistency row-changed detection.
// Retrying the whole transaction from the top is the correct client
// response; the error set is exactly IsPrevention's, but the two names keep
// the detectors' question ("was this anomaly prevented?") separate from the
// traffic tier's ("should the client retry?"). Matches wrapped errors via
// errors.Is.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrDeadlock) || errors.Is(err, ErrWriteConflict) || errors.Is(err, ErrRowChanged)
}

// SelectRange is a convenience wrapper for the half-open key-range scan
// [lo, hi): Select with a predicate.KeyRange, which key-range locking maps
// onto gap fragments covering exactly the scanned interval.
func SelectRange(tx Tx, lo, hi data.Key) ([]data.Tuple, error) {
	return tx.Select(predicate.KeyRange{Lo: lo, Hi: hi})
}
