// Terminated-transaction audit: every engine family must answer Commit or
// Abort on an already-terminated transaction with engine.ErrTxDone — never
// a panic, never a silent success. The server's session teardown
// unconditionally aborts whatever transaction a dropped connection left
// behind, including transactions the scheduler already killed (deadlock
// victims, failed First-Committer-Wins commits), so this contract must be
// uniform across families.
package engine_test

import (
	"errors"
	"runtime"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/locking"
	"isolevel/internal/mvcc"
	"isolevel/internal/oraclerc"
	"isolevel/internal/snapshot"
)

// families lists one constructor per engine configuration with the level
// its transactions run at.
func families() map[string]struct {
	db    engine.DB
	level engine.Level
} {
	return map[string]struct {
		db    engine.DB
		level engine.Level
	}{
		"locking-predicate": {locking.NewDB(), engine.Serializable},
		"locking-keyrange":  {locking.NewDB(locking.WithPhantomProtection(locking.PhantomKeyrange)), engine.Serializable},
		"mvcc-si":           {mvcc.NewDB(), engine.SnapshotIsolation},
		"mvcc-rc":           {mvcc.NewDB(), engine.ReadConsistency},
		"snapshot":          {snapshot.NewDB(), engine.SnapshotIsolation},
		"oraclerc":          {oraclerc.NewDB(), engine.ReadConsistency},
	}
}

func wantTxDone(t *testing.T, op string, err error) {
	t.Helper()
	if !errors.Is(err, engine.ErrTxDone) {
		t.Errorf("%s on terminated tx = %v, want ErrTxDone", op, err)
	}
}

// TestTerminatedTxUniform drives every family through the four
// terminate-then-terminate-again orders plus data operations on a dead
// transaction.
func TestTerminatedTxUniform(t *testing.T) {
	for name, f := range families() {
		t.Run(name, func(t *testing.T) {
			f.db.Load(data.Tuple{Key: "x", Row: data.Scalar(1)})

			// Commit, then Commit/Abort again.
			tx, err := f.db.Begin(f.level)
			if err != nil {
				t.Fatalf("Begin: %v", err)
			}
			if err := engine.PutVal(tx, "x", 2); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("Commit: %v", err)
			}
			wantTxDone(t, "second Commit", tx.Commit())
			wantTxDone(t, "Abort after Commit", tx.Abort())

			// Abort, then Abort/Commit again.
			tx, err = f.db.Begin(f.level)
			if err != nil {
				t.Fatalf("Begin: %v", err)
			}
			if err := engine.PutVal(tx, "x", 3); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := tx.Abort(); err != nil {
				t.Fatalf("Abort: %v", err)
			}
			wantTxDone(t, "second Abort", tx.Abort())
			wantTxDone(t, "Commit after Abort", tx.Commit())

			// Data operations on a terminated transaction.
			if _, err := tx.Get("x"); !errors.Is(err, engine.ErrTxDone) {
				t.Errorf("Get on terminated tx = %v, want ErrTxDone", err)
			}
			wantTxDone(t, "Put", tx.Put("x", data.Scalar(4)))
			wantTxDone(t, "Delete", tx.Delete("x"))
		})
	}
}

// TestTxDoneAfterFailedFCWCommit: a Snapshot Isolation commit that loses
// First-Committer-Wins terminates the transaction — the teardown Abort that
// follows must report ErrTxDone, not succeed a second time.
func TestTxDoneAfterFailedFCWCommit(t *testing.T) {
	for _, name := range []string{"mvcc-si", "snapshot"} {
		t.Run(name, func(t *testing.T) {
			var db engine.DB
			if name == "mvcc-si" {
				db = mvcc.NewDB()
			} else {
				db = snapshot.NewDB()
			}
			db.Load(data.Tuple{Key: "x", Row: data.Scalar(0)})
			t1, err := db.Begin(engine.SnapshotIsolation)
			if err != nil {
				t.Fatalf("Begin t1: %v", err)
			}
			t2, err := db.Begin(engine.SnapshotIsolation)
			if err != nil {
				t.Fatalf("Begin t2: %v", err)
			}
			if err := engine.PutVal(t1, "x", 1); err != nil {
				t.Fatalf("t1 Put: %v", err)
			}
			if err := engine.PutVal(t2, "x", 2); err != nil {
				t.Fatalf("t2 Put: %v", err)
			}
			if err := t1.Commit(); err != nil {
				t.Fatalf("t1 Commit: %v", err)
			}
			if err := t2.Commit(); !errors.Is(err, engine.ErrWriteConflict) {
				t.Fatalf("t2 Commit = %v, want ErrWriteConflict", err)
			}
			wantTxDone(t, "Abort after failed FCW Commit", t2.Abort())
			wantTxDone(t, "Commit retry after failed FCW Commit", t2.Commit())
		})
	}
}

// TestTxDoneAfterDeadlockVictim: a deadlock victim's transaction is NOT
// terminated by the error itself — the caller owns the Abort (one Abort
// succeeds, releasing the locks; the second reports ErrTxDone).
func TestTxDoneAfterDeadlockVictim(t *testing.T) {
	db := locking.NewDB()
	db.Load(data.Tuple{Key: "x", Row: data.Scalar(0)}, data.Tuple{Key: "y", Row: data.Scalar(0)})
	t1, err := db.Begin(engine.Serializable)
	if err != nil {
		t.Fatalf("Begin t1: %v", err)
	}
	t2, err := db.Begin(engine.Serializable)
	if err != nil {
		t.Fatalf("Begin t2: %v", err)
	}
	if err := engine.PutVal(t1, "x", 1); err != nil {
		t.Fatalf("t1 Put x: %v", err)
	}
	if err := engine.PutVal(t2, "y", 1); err != nil {
		t.Fatalf("t2 Put y: %v", err)
	}
	t1done := make(chan error, 1)
	go func() { t1done <- engine.PutVal(t1, "y", 2) }()
	// Wait for t1 to actually block (the waits counter increments at
	// enqueue, before the requester parks), so t2 is the one that closes
	// the cycle — and, under requester-is-victim, the victim.
	for i := 0; db.LockStats().Waits == 0; i++ {
		if i > 1_000_000 {
			t.Fatal("t1 never blocked on y")
		}
		runtime.Gosched()
	}
	if err := engine.PutVal(t2, "x", 2); !errors.Is(err, engine.ErrDeadlock) {
		t.Fatalf("t2 Put x = %v, want ErrDeadlock", err)
	}
	if err := t2.Abort(); err != nil {
		t.Fatalf("victim Abort: %v", err)
	}
	wantTxDone(t, "victim second Abort", t2.Abort())
	wantTxDone(t, "victim Commit after Abort", t2.Commit())
	if err := <-t1done; err != nil {
		t.Fatalf("t1 Put y after victim released: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("t1 Commit: %v", err)
	}
}
