package engine

import (
	"errors"
	"fmt"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/history"
	"isolevel/internal/predicate"
)

func TestLevelStrings(t *testing.T) {
	want := map[Level]string{
		Degree0:           "DEGREE 0",
		ReadUncommitted:   "READ UNCOMMITTED",
		ReadCommitted:     "READ COMMITTED",
		CursorStability:   "CURSOR STABILITY",
		RepeatableRead:    "REPEATABLE READ",
		Serializable:      "SERIALIZABLE",
		SnapshotIsolation: "SNAPSHOT ISOLATION",
		ReadConsistency:   "READ CONSISTENCY",
	}
	for lvl, s := range want {
		if lvl.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(lvl), lvl.String(), s)
		}
	}
	if len(Levels) != len(want) {
		t.Fatalf("Levels has %d entries", len(Levels))
	}
}

func TestIsPrevention(t *testing.T) {
	for _, err := range []error{ErrDeadlock, ErrWriteConflict, ErrRowChanged} {
		if !IsPrevention(err) {
			t.Errorf("%v should be a prevention error", err)
		}
		if !IsPrevention(fmt.Errorf("wrapped: %w", err)) {
			t.Errorf("wrapped %v should be a prevention error", err)
		}
	}
	for _, err := range []error{ErrNotFound, ErrTxDone, ErrUnsupported, errors.New("other")} {
		if IsPrevention(err) {
			t.Errorf("%v should not be a prevention error", err)
		}
	}
}

// TestIsRetryable: the retryable set is exactly the prevention set —
// scheduler-initiated aborts a client should retry — matched through
// wrapping, and nothing else (nil included).
func TestIsRetryable(t *testing.T) {
	for _, err := range []error{ErrDeadlock, ErrWriteConflict, ErrRowChanged} {
		if !IsRetryable(err) {
			t.Errorf("%v should be retryable", err)
		}
		if !IsRetryable(fmt.Errorf("T7: %w", err)) {
			t.Errorf("wrapped %v should be retryable", err)
		}
	}
	for _, err := range []error{nil, ErrNotFound, ErrTxDone, ErrNoCursor, ErrUnsupported, errors.New("other")} {
		if IsRetryable(err) {
			t.Errorf("%v should not be retryable", err)
		}
	}
}

func TestRecorderDisabledByDefault(t *testing.T) {
	r := NewRecorder()
	r.Record(history.Op{Tx: 1, Kind: history.Read, Item: "x", Version: -1})
	if len(r.History()) != 0 {
		t.Fatal("disabled recorder captured an op")
	}
	if r.Enabled() {
		t.Fatal("recorder should start disabled")
	}
}

func TestRecorderCapturesAndResets(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	r.Record(history.Op{Tx: 1, Kind: history.Read, Item: "x", Version: -1})
	r.Record(history.Op{Tx: 1, Kind: history.Commit, Version: -1})
	h := r.History()
	if len(h) != 2 || h[0].Kind != history.Read {
		t.Fatalf("history = %v", h)
	}
	r.Reset()
	if len(r.History()) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRecorderAnnotatesWritesWithPredicates(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	p := predicate.MustParse("active == 1")
	r.RecordPredRead(1, p)
	// A write whose after-image matches the registered predicate.
	r.RecordWrite(2, "e9", nil, data.Row{"active": 1})
	// A write that does not match.
	r.RecordWrite(2, "e8", nil, data.Row{"active": 0})
	h := r.History()
	if len(h) != 3 {
		t.Fatalf("history = %v", h)
	}
	if h[0].Kind != history.PredRead || h[0].Preds[0] != p.String() {
		t.Fatalf("pred read op = %+v", h[0])
	}
	if !h[1].InPred(p.String()) {
		t.Fatalf("matching write not annotated: %+v", h[1])
	}
	if h[2].InPred(p.String()) {
		t.Fatalf("non-matching write annotated: %+v", h[2])
	}
}

func TestRecorderHistoryIsCopy(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	r.Record(history.Op{Tx: 1, Kind: history.Read, Item: "x", Version: -1})
	h := r.History()
	h[0].Tx = 99
	if r.History()[0].Tx != 1 {
		t.Fatal("History() leaked internal storage")
	}
}

// GetVal/PutVal against a minimal fake Tx.
type fakeTx struct {
	Tx
	rows map[data.Key]data.Row
}

func (f *fakeTx) Get(k data.Key) (data.Row, error) {
	r, ok := f.rows[k]
	if !ok {
		return nil, ErrNotFound
	}
	return r, nil
}

func (f *fakeTx) Put(k data.Key, r data.Row) error {
	f.rows[k] = r
	return nil
}

func TestGetValPutVal(t *testing.T) {
	tx := &fakeTx{rows: map[data.Key]data.Row{}}
	if err := PutVal(tx, "x", 7); err != nil {
		t.Fatal(err)
	}
	v, err := GetVal(tx, "x")
	if err != nil || v != 7 {
		t.Fatalf("GetVal = %d, %v", v, err)
	}
	if _, err := GetVal(tx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
}
