// Package server is the network front-end: a connection-per-session TCP
// server speaking the session package's line protocol over any
// engine.DB. Each accepted connection gets its own goroutine and
// session, preserving the engine's one-transaction-per-goroutine
// contract; a dropped connection's open transaction is aborted on
// teardown.
//
// Two protection mechanisms bound the traffic tier:
//
//   - Admission control: at most MaxSessions connections are admitted at
//     once. Excess connections are greeted with "-BUSY ..." and closed —
//     the admission decision is serialized, so shed counts are exact.
//   - Backpressure: at most MaxInflight statements execute concurrently;
//     up to MaxQueued more may wait for a slot, and statements beyond
//     that are shed with "-BUSY ..." instead of growing an unbounded
//     queue.
//
// The server keeps a statement-latency histogram (internal/obs) and a
// counter set shaped for obshttp's /metrics page.
//
// This package deliberately lives outside the //isolint:deterministic
// set: it serves real sockets at wall-clock pace, unlike the fuzzer's
// scripted schedules.
package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"isolevel/internal/engine"
	"isolevel/internal/obs"
	"isolevel/internal/obs/wallclock"
	"isolevel/internal/session"
)

// Defaults for Config's zero values.
const (
	DefaultMaxSessions = 1024
	DefaultMaxInflight = 256
	DefaultMaxQueued   = 1024
)

// Config configures a Server. DB is required; zero limits take the
// package defaults.
type Config struct {
	DB           engine.DB
	DefaultLevel engine.Level // level for sessions that never SET/BEGIN one
	Family       string       // engine family name, echoed in the greeting
	MaxSessions  int          // admitted connections at once
	MaxInflight  int          // statements executing at once
	MaxQueued    int          // statements waiting for an inflight slot
	Clock        obs.Clock    // latency clock; nil = wall clock
}

// Server serves the wire protocol over a Config's engine.
type Server struct {
	cfg   Config
	clock obs.Clock
	gate  chan struct{} // inflight-statement slots

	stats       session.Stats
	stmtLatency obs.Histogram

	accepted     atomic.Int64
	shedSessions atomic.Int64
	shedStmts    atomic.Int64
	queued       atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// New returns an unstarted server. Drive it with Serve (accept loop) or
// ServeConn (one pre-established connection, e.g. a net.Pipe in tests).
func New(cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = DefaultMaxQueued
	}
	clock := cfg.Clock
	if clock == nil {
		clock = wallclock.New()
	}
	return &Server{
		cfg:   cfg,
		clock: clock,
		gate:  make(chan struct{}, cfg.MaxInflight),
		conns: map[net.Conn]struct{}{},
	}
}

// Serve accepts connections on ln until Close. Each admitted connection
// runs on its own goroutine; connections beyond MaxSessions are greeted
// with -BUSY and closed. Returns nil after Close, or the first
// unexpected Accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if !s.admit(conn) {
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ServeConn admits and serves one pre-established connection, blocking
// until the peer quits or the connection drops. Admission control
// applies exactly as in Serve.
func (s *Server) ServeConn(conn net.Conn) {
	if !s.admit(conn) {
		return
	}
	s.wg.Add(1)
	defer s.wg.Done()
	s.handle(conn)
}

// admit decides, under the connection lock, whether conn gets a session.
// Rejected connections see one "-BUSY ..." line and are closed; admitted
// ones see the "+HELLO ..." greeting.
func (s *Server) admit(conn net.Conn) bool {
	s.mu.Lock()
	if s.closed || len(s.conns) >= s.cfg.MaxSessions {
		closed := s.closed
		if !closed {
			s.shedSessions.Add(1)
		}
		s.mu.Unlock()
		if !closed {
			fmt.Fprintf(conn, "-BUSY server at max sessions (%d)\r\n", s.cfg.MaxSessions)
		}
		conn.Close()
		return false
	}
	s.conns[conn] = struct{}{}
	s.accepted.Add(1)
	s.mu.Unlock()
	fmt.Fprintf(conn, "+HELLO isolevel family=%s level=%s\r\n", s.cfg.Family, s.cfg.DefaultLevel.Code())
	return true
}

// handle drives one admitted connection's session loop.
func (s *Server) handle(conn net.Conn) {
	sess := session.New(s.cfg.DB, s.cfg.DefaultLevel, &s.stats)
	defer func() {
		sess.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		if strings.TrimSpace(line) == "" {
			continue
		}
		// Backpressure applies to data statements only: COMMIT/ABORT and
		// the other control statements always run, because shedding the
		// statement that releases locks would wedge the very queue it is
		// waiting behind.
		var release func()
		if isDataStmt(line) {
			var ok bool
			if release, ok = s.acquireSlot(); !ok {
				s.shedStmts.Add(1)
				bw.WriteString("-BUSY statement shed (queue full)\r\n")
				if bw.Flush() != nil {
					return
				}
				continue
			}
		}
		start := s.clock.Now()
		reply, quit := sess.Exec(line)
		s.stmtLatency.Record(s.clock.Now() - start)
		if release != nil {
			release()
		}
		if reply != "" {
			bw.WriteString(reply)
			bw.WriteString("\r\n")
		}
		if bw.Flush() != nil {
			return
		}
		if quit {
			return
		}
	}
}

// isDataStmt reports whether line is a data statement (GET/SET/DEL/SCAN
// — the statements that do row work and may block on locks). SET
// TRANSACTION is a control statement.
func isDataStmt(line string) bool {
	f := strings.Fields(line)
	if len(f) == 0 {
		return false
	}
	switch strings.ToUpper(f[0]) {
	case "GET", "DEL", "SCAN":
		return true
	case "SET":
		return len(f) < 2 || !strings.EqualFold(f[1], "TRANSACTION")
	}
	return false
}

// acquireSlot takes an inflight-statement slot, waiting in the bounded
// queue if none is free. ok == false means the queue is full and the
// statement must be shed.
func (s *Server) acquireSlot() (release func(), ok bool) {
	release = func() { <-s.gate }
	select {
	case s.gate <- struct{}{}:
		return release, true
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueued) {
		s.queued.Add(-1)
		return nil, false
	}
	s.gate <- struct{}{}
	s.queued.Add(-1)
	return release, true
}

// Close stops accepting, closes every live connection (their sessions
// abort any open transaction on teardown), and waits for the handlers
// to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// Stats exposes the shared session statistics.
func (s *Server) Stats() *session.Stats { return &s.stats }

// SessionsShed returns the number of connections refused by admission
// control.
func (s *Server) SessionsShed() int64 { return s.shedSessions.Load() }

// StatementsShed returns the number of statements shed by backpressure.
func (s *Server) StatementsShed() int64 { return s.shedStmts.Load() }

// StatementsQueued returns the number of statements currently waiting
// for an inflight slot (tests poll this to order backpressure scenarios).
func (s *Server) StatementsQueued() int64 { return s.queued.Load() }

// Counters returns the server's counter set in the flat shape
// obshttp.Source.Counters expects.
func (s *Server) Counters() map[string]int64 {
	s.mu.Lock()
	active := int64(len(s.conns))
	s.mu.Unlock()
	return map[string]int64{
		"server_sessions_accepted": s.accepted.Load(),
		"server_sessions_active":   active,
		"server_sessions_shed":     s.shedSessions.Load(),
		"server_stmts":             s.stats.Statements.Load(),
		"server_stmts_shed":        s.shedStmts.Load(),
		"server_begins":            s.stats.Begins.Load(),
		"server_commits":           s.stats.Commits.Load(),
		"server_aborts":            s.stats.Aborts.Load(),
		"server_retryable_errors":  s.stats.Retryable.Load(),
		"server_errors":            s.stats.Errors.Load(),
	}
}

// Hists returns the server's histograms in the shape
// obshttp.Source.Hists expects.
func (s *Server) Hists() []obs.NamedHist {
	return []obs.NamedHist{{Name: "server_stmt_latency", H: &s.stmtLatency}}
}
