package server_test

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/loadgen"
	"isolevel/internal/locking"
	"isolevel/internal/mvcc"
	"isolevel/internal/server"
)

// wireClient is a test-side peer of one server connection.
type wireClient struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

// pipeClient serves one net.Pipe connection on srv and returns the
// client side with the greeting consumed and checked.
func pipeClient(t *testing.T, srv *server.Server, wantGreeting string) *wireClient {
	t.Helper()
	sc, cc := net.Pipe()
	go srv.ServeConn(sc)
	c := &wireClient{t: t, conn: cc, br: bufio.NewReader(cc)}
	t.Cleanup(func() { cc.Close() })
	if got := c.readLine(); got != wantGreeting {
		t.Fatalf("greeting = %q, want %q", got, wantGreeting)
	}
	return c
}

func (c *wireClient) send(line string) {
	c.t.Helper()
	c.conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := fmt.Fprintf(c.conn, "%s\r\n", line); err != nil {
		c.t.Fatalf("send %q: %v", line, err)
	}
}

func (c *wireClient) readLine() string {
	c.t.Helper()
	c.conn.SetDeadline(time.Now().Add(10 * time.Second))
	line, err := c.br.ReadString('\n')
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	return strings.TrimRight(line, "\r\n")
}

// do sends one statement and asserts its single-line reply.
func (c *wireClient) do(line, want string) {
	c.t.Helper()
	c.send(line)
	if got := c.readLine(); got != want {
		c.t.Fatalf("%q -> %q, want %q", line, got, want)
	}
}

func TestServerPipeLifecycle(t *testing.T) {
	db := mvcc.NewDB()
	srv := server.New(server.Config{DB: db, DefaultLevel: engine.SnapshotIsolation, Family: "mv"})
	defer srv.Close()

	c := pipeClient(t, srv, "+HELLO isolevel family=mv level=SI")
	c.do("PING", "+PONG")
	c.do("BEGIN", "+OK T1 SI")
	c.do("SET x 41", "+OK")
	c.do("GET x", ":41")
	c.do("COMMIT", "+OK")
	c.do("GET x", ":41") // autocommit read
	c.send("SCAN a z")
	if got := c.readLine(); got != "*1" {
		t.Fatalf("SCAN header = %q, want *1", got)
	}
	if got := c.readLine(); got != "+x 41" {
		t.Fatalf("SCAN row = %q, want +x 41", got)
	}
	c.send("QUIT")
	if got := c.readLine(); got != "+BYE" {
		t.Fatalf("QUIT = %q, want +BYE", got)
	}
	// Commits: explicit COMMIT + autocommit GET + autocommit SCAN.
	if got := srv.Counters()["server_commits"]; got != 3 {
		t.Fatalf("server_commits = %d, want 3", got)
	}
}

// TestServerMixedLevelSessions interleaves a SNAPSHOT ISOLATION session
// and a READ CONSISTENCY session on one mvcc engine: the SI reader keeps
// its transaction-start snapshot across a concurrent committed write,
// while the RC reader's next statement sees it.
func TestServerMixedLevelSessions(t *testing.T) {
	db := mvcc.NewDB()
	db.Load(data.Tuple{Key: "x", Row: data.Scalar(1)})
	srv := server.New(server.Config{DB: db, DefaultLevel: engine.SnapshotIsolation, Family: "mv"})
	defer srv.Close()

	si := pipeClient(t, srv, "+HELLO isolevel family=mv level=SI")
	rc := pipeClient(t, srv, "+HELLO isolevel family=mv level=SI")
	wr := pipeClient(t, srv, "+HELLO isolevel family=mv level=SI")

	si.do("BEGIN ISOLATION LEVEL SNAPSHOT ISOLATION", "+OK T1 SI")
	si.do("GET x", ":1")
	rc.do("BEGIN ISOLATION LEVEL READ CONSISTENCY", "+OK T2 ORC")
	rc.do("GET x", ":1")

	wr.do("SET x 2", "+OK") // autocommit write on a third session

	si.do("GET x", ":1") // SI: still the start-of-txn snapshot
	rc.do("GET x", ":2") // RC: statement-level read timestamp sees it
	si.do("COMMIT", "+OK")
	rc.do("COMMIT", "+OK")
}

// TestServerDeadlockRetry forces a lock-order deadlock between two
// sessions on the keyrange locking family and asserts the victim's
// statement surfaces as a typed retryable wire error, after which the
// session can immediately rerun from BEGIN.
func TestServerDeadlockRetry(t *testing.T) {
	db := locking.NewDB(locking.WithPhantomProtection(locking.PhantomKeyrange))
	srv := server.New(server.Config{DB: db, DefaultLevel: engine.Serializable, Family: "keyrange"})
	defer srv.Close()

	c1 := pipeClient(t, srv, "+HELLO isolevel family=keyrange level=SER")
	c2 := pipeClient(t, srv, "+HELLO isolevel family=keyrange level=SER")

	c1.do("BEGIN", "+OK T1 SER")
	c2.do("BEGIN", "+OK T2 SER")
	c1.do("SET x 1", "+OK")
	c2.do("SET y 1", "+OK")

	// c1 -> SET y blocks on c2's lock; wait until that waiter is parked
	// (Waits increments at enqueue), then c2 -> SET x closes the cycle
	// and is chosen as the deterministic victim.
	c1.send("SET y 2")
	for i := 0; db.LockStats().Waits == 0; i++ {
		if i > 1_000_000 {
			t.Fatal("c1's SET y never blocked")
		}
		runtime.Gosched()
	}
	c2.send("SET x 2")
	reply := c2.readLine()
	if !strings.HasPrefix(reply, "-RETRY DEADLOCK ") {
		t.Fatalf("victim reply = %q, want -RETRY DEADLOCK ...", reply)
	}
	// The survivor's blocked statement completes and it commits.
	if got := c1.readLine(); got != "+OK" {
		t.Fatalf("survivor SET y = %q, want +OK", got)
	}
	c1.do("COMMIT", "+OK")
	// The victim's transaction is already rolled back server-side: the
	// retry contract is rerun-from-BEGIN, no ABORT needed.
	c2.do("BEGIN", "+OK T3 SER")
	c2.do("SET x 2", "+OK")
	c2.do("COMMIT", "+OK")

	if got := srv.Stats().Retryable.Load(); got != 1 {
		t.Fatalf("Retryable = %d, want 1", got)
	}
	if got := srv.Counters()["server_retryable_errors"]; got != 1 {
		t.Fatalf("server_retryable_errors = %d, want 1", got)
	}
}

// TestServerBackpressureShed pins the statement gate exactly: with one
// inflight slot and a one-statement queue, a third concurrent data
// statement is shed with -BUSY while control statements (COMMIT) bypass
// the gate — the commit that releases the blocking lock can never be
// shed behind the statements waiting on it.
func TestServerBackpressureShed(t *testing.T) {
	db := locking.NewDB()
	srv := server.New(server.Config{
		DB: db, DefaultLevel: engine.Serializable, Family: "locking",
		MaxInflight: 1, MaxQueued: 1,
	})
	defer srv.Close()

	const hello = "+HELLO isolevel family=locking level=SER"
	c1 := pipeClient(t, srv, hello)
	c2 := pipeClient(t, srv, hello)
	c3 := pipeClient(t, srv, hello)
	c4 := pipeClient(t, srv, hello)

	c1.do("BEGIN", "+OK T1 SER")
	c1.do("SET x 1", "+OK") // slot taken and released; x stays locked

	// c2's write blocks on c1's lock while holding the single slot.
	c2.do("BEGIN", "+OK T2 SER")
	c2.send("SET x 2")
	for i := 0; db.LockStats().Waits == 0; i++ {
		if i > 1_000_000 {
			t.Fatal("c2's SET x never blocked")
		}
		runtime.Gosched()
	}

	// c3's statement occupies the one queue seat.
	c3.send("SET y 1")
	for i := 0; srv.StatementsQueued() == 0; i++ {
		if i > 1_000_000 {
			t.Fatal("c3's SET y never queued")
		}
		runtime.Gosched()
	}

	// c4's statement finds slot and queue full: shed, exactly once.
	c4.send("SET z 1")
	if got := c4.readLine(); got != "-BUSY statement shed (queue full)" {
		t.Fatalf("c4 reply = %q, want -BUSY statement shed (queue full)", got)
	}

	// COMMIT bypasses the gate, releasing the lock and unwinding the
	// queue: c2 completes, then c3.
	c1.do("COMMIT", "+OK")
	if got := c2.readLine(); got != "+OK" {
		t.Fatalf("c2 SET x after unblock = %q, want +OK", got)
	}
	if got := c3.readLine(); got != "+OK" {
		t.Fatalf("c3 SET y after unblock = %q, want +OK", got)
	}
	c2.do("COMMIT", "+OK")

	if got := srv.StatementsShed(); got != 1 {
		t.Fatalf("StatementsShed = %d, want 1", got)
	}
}

// TestServerLoadgenAdmissionExact drives the in-process load generator
// at a server whose admission control is smaller than the fleet and
// asserts the exact shed split on both sides of the wire. Runs the full
// stack (listener, sessions, mixed-level traffic) under -race.
func TestServerLoadgenAdmissionExact(t *testing.T) {
	db := mvcc.NewDB()
	tuples := make([]data.Tuple, 32)
	for i := range tuples {
		tuples[i] = data.Tuple{Key: data.Key(fmt.Sprintf("acct:%06d", i)), Row: data.Scalar(100)}
	}
	db.Load(tuples...)

	srv := server.New(server.Config{
		DB: db, DefaultLevel: engine.SnapshotIsolation, Family: "mv",
		MaxSessions: 4,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	const txns = 120
	res, err := loadgen.Run(loadgen.Config{
		Addr:    ln.Addr().String(),
		Clients: 6, Txns: txns, Keys: 32, OpsPerTxn: 3,
		ReadFrac: 0.5, ScanFrac: 0.2,
		Levels: []engine.Level{engine.SnapshotIsolation, engine.ReadConsistency},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.String())

	if res.Admitted != 4 || res.Shed != 2 {
		t.Fatalf("admitted=%d shed=%d, want 4/2", res.Admitted, res.Shed)
	}
	if got := srv.SessionsShed(); got != 2 {
		t.Fatalf("server SessionsShed = %d, want 2", got)
	}
	if res.ProtoErrs != 0 {
		t.Fatalf("proto errors = %d, want 0", res.ProtoErrs)
	}
	if res.Commits+res.GaveUp != txns {
		t.Fatalf("commits=%d + gave-up=%d != txns=%d", res.Commits, res.GaveUp, txns)
	}
	if res.Commits == 0 {
		t.Fatal("no transactions committed")
	}
	if res.Txn.Count != res.Commits {
		t.Fatalf("txn latency count = %d, want %d", res.Txn.Count, res.Commits)
	}
	c := srv.Counters()
	if c["server_commits"] < res.Commits {
		t.Fatalf("server_commits = %d < loadgen commits %d", c["server_commits"], res.Commits)
	}
	if c["server_sessions_accepted"] != 4 || c["server_sessions_shed"] != 2 {
		t.Fatalf("counter sessions accepted/shed = %d/%d, want 4/2",
			c["server_sessions_accepted"], c["server_sessions_shed"])
	}
}

// TestServerLoadgenDMLKeyrange drives a SCAN/SET/DEL-heavy mixed-level
// fleet at a keyrange-protected locking server — the gap-lock protocol
// on its network path rather than the exerciser's lockstep one. DELs
// empty out intervals and later SETs re-insert into them, so scans
// continuously certify against rows appearing and vanishing mid-flight,
// and inserts take the gap-acquisition path for real. Asserts a clean
// wire (zero protocol errors), forward progress under deadlock retries,
// DML actually flowing, and GapGrants > 0 — the insert/gap machinery
// fired. Runs under -race with the full stack live.
func TestServerLoadgenDMLKeyrange(t *testing.T) {
	db := locking.NewDB(locking.WithPhantomProtection(locking.PhantomKeyrange))
	tuples := make([]data.Tuple, 32)
	for i := range tuples {
		tuples[i] = data.Tuple{Key: data.Key(fmt.Sprintf("acct:%06d", i)), Row: data.Scalar(100)}
	}
	db.Load(tuples...)

	srv := server.New(server.Config{
		DB: db, DefaultLevel: engine.Serializable, Family: "keyrange",
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	const txns = 200
	res, err := loadgen.Run(loadgen.Config{
		Addr:    ln.Addr().String(),
		Clients: 4, Txns: txns, Keys: 32, HotKeys: 8, HotBias: 0.6, OpsPerTxn: 4,
		ReadFrac: 0.2, ScanFrac: 0.3, DelFrac: 0.25,
		Levels: []engine.Level{engine.Serializable, engine.RepeatableRead, engine.ReadCommitted},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.String())

	if res.ProtoErrs != 0 {
		t.Fatalf("proto errors = %d, want 0", res.ProtoErrs)
	}
	if res.Commits == 0 {
		t.Fatal("no transactions committed")
	}
	if res.Commits+res.GaveUp != txns {
		t.Fatalf("commits=%d + gave-up=%d != txns=%d", res.Commits, res.GaveUp, txns)
	}
	if res.Dels == 0 || res.Scans == 0 || res.Writes == 0 {
		t.Fatalf("mix starved: reads=%d writes=%d scans=%d dels=%d",
			res.Reads, res.Writes, res.Scans, res.Dels)
	}
	if st := db.LockStats(); st.GapGrants == 0 {
		t.Fatalf("GapGrants = 0: the insert/gap path never fired (stats %+v)", st)
	}
}
