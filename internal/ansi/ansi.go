// Package ansi models the ANSI SQL-92 phenomenon-based isolation level
// definitions (the paper's Table 1) and the repaired definitions of Remark
// 5 (Table 3): an isolation level is the set of histories that exhibit none
// of the level's forbidden phenomena.
//
// Table 1 gives each level two readings — one forbidding the strict
// anomalies (A1, A2, A3), one forbidding the broad phenomena (P1, P2, P3).
// The paper's §3 shows the strict readings have "unintended weaknesses"
// (H1–H3 slip through), and even the broad readings omit P0 and admit
// non-serializable histories such as H5; this package makes both failures
// checkable.
//
//isolint:deterministic
package ansi

import (
	"isolevel/internal/history"
	"isolevel/internal/phenomena"
)

// Level is a phenomenon-based isolation level: a name plus the set of
// phenomena histories at this level must not exhibit.
type Level struct {
	Name      string
	Forbidden []phenomena.ID
}

// Admits reports whether the history satisfies the level, i.e. exhibits
// none of the forbidden phenomena.
func (l Level) Admits(h history.History) bool {
	return l.FirstViolation(h) == ""
}

// FirstViolation returns the first forbidden phenomenon the history
// exhibits, or "" if the history is admitted.
func (l Level) FirstViolation(h history.History) phenomena.ID {
	for _, id := range l.Forbidden {
		if phenomena.Exhibits(id, h) {
			return id
		}
	}
	return ""
}

// Violations returns every forbidden phenomenon the history exhibits.
func (l Level) Violations(h history.History) []phenomena.ID {
	var out []phenomena.ID
	for _, id := range l.Forbidden {
		if phenomena.Exhibits(id, h) {
			out = append(out, id)
		}
	}
	return out
}

// --- Table 1: the original ANSI definitions. ---
//
// "Each isolation level is characterized by the phenomena that a
// transaction is forbidden to experience (broad or strict
// interpretations)." Strict variants carry the Anomaly suffix.

// Strict (anomaly) readings of Table 1.
var (
	ReadUncommittedA1 = Level{Name: "ANSI READ UNCOMMITTED (strict)", Forbidden: nil}
	ReadCommittedA1   = Level{Name: "ANSI READ COMMITTED (strict)", Forbidden: []phenomena.ID{phenomena.A1}}
	RepeatableReadA1  = Level{Name: "ANSI REPEATABLE READ (strict)", Forbidden: []phenomena.ID{phenomena.A1, phenomena.A2}}
	// AnomalySerializable is Table 1's bottom row under the strict reading:
	// "disallowing the three phenomena implies serializability" is the
	// common misconception the paper refutes (H5 passes, yet is not
	// serializable).
	AnomalySerializable = Level{Name: "ANOMALY SERIALIZABLE", Forbidden: []phenomena.ID{phenomena.A1, phenomena.A2, phenomena.A3}}
)

// Broad (phenomenon) readings of Table 1.
var (
	ReadUncommittedP = Level{Name: "ANSI READ UNCOMMITTED (broad)", Forbidden: nil}
	ReadCommittedP   = Level{Name: "ANSI READ COMMITTED (broad)", Forbidden: []phenomena.ID{phenomena.P1}}
	RepeatableReadP  = Level{Name: "ANSI REPEATABLE READ (broad)", Forbidden: []phenomena.ID{phenomena.P1, phenomena.P2}}
	SerializableP    = Level{Name: "ANSI SERIALIZABLE (broad, phenomena only)", Forbidden: []phenomena.ID{phenomena.P1, phenomena.P2, phenomena.P3}}
)

// Table1Strict lists the strict-reading levels in Table 1 row order.
var Table1Strict = []Level{ReadUncommittedA1, ReadCommittedA1, RepeatableReadA1, AnomalySerializable}

// Table1Broad lists the broad-reading levels in Table 1 row order.
var Table1Broad = []Level{ReadUncommittedP, ReadCommittedP, RepeatableReadP, SerializableP}

// --- Table 3: the repaired definitions (Remark 5). ---
//
// "P0, P1, P2, and P3 are disguised redefinitions of locking behavior"
// (Remark 6): these levels coincide with the locking levels of Table 2.

var (
	// ReadUncommitted forbids P0 only: even the weakest level must hold
	// long write locks (Remark 3).
	ReadUncommitted = Level{Name: "READ UNCOMMITTED", Forbidden: []phenomena.ID{phenomena.P0}}
	// ReadCommitted adds P1: well-formed short read locks.
	ReadCommitted = Level{Name: "READ COMMITTED", Forbidden: []phenomena.ID{phenomena.P0, phenomena.P1}}
	// RepeatableRead adds P2: long item read locks; phantoms remain.
	RepeatableRead = Level{Name: "REPEATABLE READ", Forbidden: []phenomena.ID{phenomena.P0, phenomena.P1, phenomena.P2}}
	// Serializable adds P3: long predicate read locks.
	Serializable = Level{Name: "SERIALIZABLE", Forbidden: []phenomena.ID{phenomena.P0, phenomena.P1, phenomena.P2, phenomena.P3}}
)

// Table3 lists the repaired levels in Table 3 row order.
var Table3 = []Level{ReadUncommitted, ReadCommitted, RepeatableRead, Serializable}

// Stronger reports whether every history admitted by a is also admitted by
// b... on the given corpus of witness histories. True strength comparisons
// quantify over all histories; on a finite corpus this is the observable
// approximation the table regenerators use.
func Stronger(stronger, weaker Level, corpus []history.History) bool {
	for _, h := range corpus {
		if stronger.Admits(h) && !weaker.Admits(h) {
			return false
		}
	}
	return true
}
