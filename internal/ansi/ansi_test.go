package ansi

import (
	"testing"

	"isolevel/internal/deps"
	"isolevel/internal/history"
	"isolevel/internal/phenomena"
)

// §3's central argument: H1 is admitted by every strict-reading level up to
// ANOMALY SERIALIZABLE, despite being non-serializable — and rejected once
// the broad P1 is forbidden.
func TestH1SlipsThroughStrictButNotBroad(t *testing.T) {
	h := history.H1()
	if !AnomalySerializable.Admits(h) {
		t.Fatalf("H1 must pass ANOMALY SERIALIZABLE; violations: %v", AnomalySerializable.Violations(h))
	}
	if deps.Serializable(h) {
		t.Fatal("H1 is not serializable")
	}
	if ReadCommittedP.Admits(h) {
		t.Fatal("broad READ COMMITTED (forbid P1) must reject H1")
	}
}

// H2 slips through strict A2 but is rejected by broad P2.
func TestH2SlipsThroughA2ButNotP2(t *testing.T) {
	h := history.H2()
	if !RepeatableReadA1.Admits(h) {
		t.Fatalf("H2 must pass strict REPEATABLE READ; violations: %v", RepeatableReadA1.Violations(h))
	}
	if RepeatableReadP.Admits(h) {
		t.Fatal("broad REPEATABLE READ (forbid P2) must reject H2")
	}
	if deps.Serializable(h) {
		t.Fatal("H2 is not serializable")
	}
}

// H3 slips through strict A3 but is rejected by broad P3.
func TestH3SlipsThroughA3ButNotP3(t *testing.T) {
	h := history.H3()
	if !AnomalySerializable.Admits(h) {
		t.Fatalf("H3 must pass ANOMALY SERIALIZABLE; violations: %v", AnomalySerializable.Violations(h))
	}
	if SerializableP.Admits(h) {
		t.Fatal("broad phenomenon SERIALIZABLE (forbid P3) must reject H3")
	}
	if deps.Serializable(h) {
		t.Fatal("H3 is not serializable")
	}
}

// The paper's headline: ANOMALY SERIALIZABLE is not serializable. H5
// (write skew) passes all of A1, A2, A3 yet has a dependency cycle.
func TestAnomalySerializableIsNotSerializable(t *testing.T) {
	h := history.H5()
	if !AnomalySerializable.Admits(h) {
		t.Fatalf("H5 must pass ANOMALY SERIALIZABLE; violations: %v", AnomalySerializable.Violations(h))
	}
	if deps.Serializable(h) {
		t.Fatal("H5 must not be serializable")
	}
}

// Remark 3 / Table 3: even READ UNCOMMITTED forbids P0.
func TestTable3ReadUncommittedForbidsDirtyWrite(t *testing.T) {
	h := history.DirtyWrite()
	if ReadUncommitted.Admits(h) {
		t.Fatal("Table 3 READ UNCOMMITTED must reject dirty writes")
	}
	if v := ReadUncommitted.FirstViolation(h); v != phenomena.P0 {
		t.Fatalf("violation = %v, want P0", v)
	}
	// Table 1's ANSI levels, by contrast, do NOT exclude P0 below
	// SERIALIZABLE ("ANSI SQL does not exclude this anomalous behavior").
	if !ReadCommittedP.Admits(h) {
		t.Fatal("Table 1 broad READ COMMITTED says nothing about P0 — DirtyWrite history has no dirty read")
	}
}

// Table 3's levels are totally ordered by their forbidden sets; check the
// chain on the canonical corpus.
func TestTable3Chain(t *testing.T) {
	corpus := []history.History{
		history.H1(), history.H2(), history.H3(), history.H4(), history.H5(),
		history.DirtyWrite(), history.ReadSkew(), history.WriteSkew(),
		history.MustParse("w1[x] r2[x] a1 c2"),
		history.MustParse("r1[P] w2[y in P] c2 r1[P] c1"),
	}
	levels := Table3
	for i := 0; i+1 < len(levels); i++ {
		if !Stronger(levels[i+1], levels[i], corpus) {
			t.Errorf("%s should be stronger than %s on corpus", levels[i+1].Name, levels[i].Name)
		}
	}
	// And strictly so: find a witness the weaker admits but stronger rejects.
	witnesses := map[string]history.History{
		"READ COMMITTED":  history.MustParse("w1[x] r2[x] c1 c2"),       // P1
		"REPEATABLE READ": history.MustParse("r1[x] w2[x] c2 r1[x] c1"), // P2
		"SERIALIZABLE":    history.MustParse("r1[P] w2[y in P] c2 c1"),  // P3
	}
	for i := 1; i < len(levels); i++ {
		w := witnesses[levels[i].Name]
		if !levels[i-1].Admits(w) || levels[i].Admits(w) {
			t.Errorf("witness for %s vs %s wrong", levels[i].Name, levels[i-1].Name)
		}
	}
}

func TestTable1RowsMatchPaper(t *testing.T) {
	// Row: READ UNCOMMITTED — P1, P2, P3 all possible.
	p1 := history.MustParse("w1[x] r2[x] c1 c2")
	p2 := history.MustParse("r1[x] w2[x] c1 c2")
	p3 := history.MustParse("r1[P] w2[y in P] c1 c2")
	if !ReadUncommittedP.Admits(p1) || !ReadUncommittedP.Admits(p2) || !ReadUncommittedP.Admits(p3) {
		t.Error("READ UNCOMMITTED forbids nothing among P1-P3")
	}
	// Row: READ COMMITTED — P1 not possible, P2, P3 possible.
	if ReadCommittedP.Admits(p1) {
		t.Error("READ COMMITTED must reject P1 witness")
	}
	if !ReadCommittedP.Admits(p2) || !ReadCommittedP.Admits(p3) {
		t.Error("READ COMMITTED allows P2 and P3")
	}
	// Row: REPEATABLE READ — P1, P2 not possible, P3 possible.
	if RepeatableReadP.Admits(p2) {
		t.Error("REPEATABLE READ must reject P2 witness")
	}
	if !RepeatableReadP.Admits(p3) {
		t.Error("REPEATABLE READ allows P3")
	}
	// Row: SERIALIZABLE (phenomena) — all three rejected.
	if SerializableP.Admits(p1) || SerializableP.Admits(p2) || SerializableP.Admits(p3) {
		t.Error("phenomenon SERIALIZABLE rejects P1, P2, P3")
	}
}

func TestViolationsLists(t *testing.T) {
	h := history.MustParse("w1[x] r2[x] r1[y] w2[y] c1 c2") // P1 and P2
	vs := Serializable.Violations(h)
	if len(vs) < 2 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestFirstViolationEmptyOnClean(t *testing.T) {
	h := history.MustParse("r1[x] c1 w2[x] c2")
	if v := Serializable.FirstViolation(h); v != "" {
		t.Fatalf("clean serial history flagged: %v", v)
	}
}
