package locking

import (
	"errors"
	"sync"
	"testing"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/deps"
	"isolevel/internal/engine"
	"isolevel/internal/predicate"
)

func mustBegin(t *testing.T, db *DB, level engine.Level) engine.Tx {
	t.Helper()
	tx, err := db.Begin(level)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func loadScalars(db *DB, kv map[string]int64) {
	var ts []data.Tuple
	for k, v := range kv {
		ts = append(ts, data.Tuple{Key: data.Key(k), Row: data.Scalar(v)})
	}
	db.Load(ts...)
}

func TestBeginRejectsMVLevels(t *testing.T) {
	db := NewDB()
	for _, lvl := range []engine.Level{engine.SnapshotIsolation, engine.ReadConsistency} {
		if _, err := db.Begin(lvl); !errors.Is(err, engine.ErrUnsupported) {
			t.Errorf("Begin(%s) = %v, want ErrUnsupported", lvl, err)
		}
	}
}

func TestCommitMakesWritesVisible(t *testing.T) {
	db := NewDB()
	tx := mustBegin(t, db, engine.Serializable)
	if err := engine.PutVal(tx, "x", 42); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := mustBegin(t, db, engine.Serializable)
	v, err := engine.GetVal(tx2, "x")
	if err != nil || v != 42 {
		t.Fatalf("read back %d, %v", v, err)
	}
	_ = tx2.Commit()
}

func TestAbortRollsBack(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"x": 1})
	tx := mustBegin(t, db, engine.Serializable)
	_ = engine.PutVal(tx, "x", 99)
	_ = engine.PutVal(tx, "y", 5) // insert
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if db.ReadCommittedRow("x").Val() != 1 {
		t.Fatal("update not rolled back")
	}
	if db.ReadCommittedRow("y") != nil {
		t.Fatal("insert not rolled back")
	}
}

func TestDeleteAndNotFound(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"x": 1})
	tx := mustBegin(t, db, engine.Serializable)
	if err := tx.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Get("x"); !errors.Is(err, engine.ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	_ = tx.Commit()
	tx2 := mustBegin(t, db, engine.Serializable)
	if _, err := tx2.Get("x"); !errors.Is(err, engine.ErrNotFound) {
		t.Fatal("delete not durable")
	}
	_ = tx2.Commit()
}

func TestOpsAfterTerminalRejected(t *testing.T) {
	db := NewDB()
	tx := mustBegin(t, db, engine.Serializable)
	_ = tx.Commit()
	if _, err := tx.Get("x"); !errors.Is(err, engine.ErrTxDone) {
		t.Fatal("Get after commit")
	}
	if err := tx.Put("x", data.Scalar(1)); !errors.Is(err, engine.ErrTxDone) {
		t.Fatal("Put after commit")
	}
	if err := tx.Commit(); !errors.Is(err, engine.ErrTxDone) {
		t.Fatal("double commit")
	}
	if err := tx.Abort(); !errors.Is(err, engine.ErrTxDone) {
		t.Fatal("abort after commit")
	}
}

// Degree 0: short write locks — a second writer does not block (dirty
// write), and undo corrupts, exactly the paper's §3 scenario.
func TestDegree0AllowsDirtyWrite(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"x": 0})
	t1 := mustBegin(t, db, engine.Degree0)
	t2 := mustBegin(t, db, engine.Degree0)
	if err := engine.PutVal(t1, "x", 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- engine.PutVal(t2, "x", 2) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("Degree 0 write blocked — dirty write should be possible")
	}
	_ = t1.Abort() // restores T1's before-image 0, wiping T2's write
	if got := db.ReadCommittedRow("x").Val(); got != 0 {
		t.Fatalf("x = %d; undo of dirty write should have wiped T2's value", got)
	}
	_ = t2.Commit()
}

// READ UNCOMMITTED: long write locks — dirty writes blocked.
func TestReadUncommittedBlocksDirtyWrite(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"x": 0})
	t1 := mustBegin(t, db, engine.ReadUncommitted)
	t2 := mustBegin(t, db, engine.ReadUncommitted)
	_ = engine.PutVal(t1, "x", 1)
	done := make(chan error, 1)
	go func() { done <- engine.PutVal(t2, "x", 2) }()
	select {
	case <-done:
		t.Fatal("second write should block until T1 terminates")
	case <-time.After(50 * time.Millisecond):
	}
	_ = t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_ = t2.Commit()
	if got := db.ReadCommittedRow("x").Val(); got != 2 {
		t.Fatalf("x = %d", got)
	}
}

// READ UNCOMMITTED: reads take no locks and see uncommitted data.
func TestReadUncommittedDirtyRead(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"x": 0})
	t1 := mustBegin(t, db, engine.ReadUncommitted)
	t2 := mustBegin(t, db, engine.ReadUncommitted)
	_ = engine.PutVal(t1, "x", 1)
	v, err := engine.GetVal(t2, "x")
	if err != nil || v != 1 {
		t.Fatalf("dirty read = %d, %v (should see uncommitted 1)", v, err)
	}
	_ = t1.Abort()
	_ = t2.Commit()
}

// READ COMMITTED: short read locks — reads block on uncommitted writes and
// see only committed data; but reads are not repeatable.
func TestReadCommittedNoDirtyReadButFuzzy(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"x": 0})
	t1 := mustBegin(t, db, engine.ReadCommitted)
	t2 := mustBegin(t, db, engine.ReadCommitted)
	_ = engine.PutVal(t1, "x", 1)
	got := make(chan int64, 1)
	go func() {
		v, _ := engine.GetVal(t2, "x")
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("read of dirty row should block at READ COMMITTED")
	case <-time.After(50 * time.Millisecond):
	}
	_ = t1.Commit()
	if v := <-got; v != 1 {
		t.Fatalf("read %d after commit, want 1", v)
	}
	// Fuzzy read: another writer can change x between T2's reads.
	t3 := mustBegin(t, db, engine.ReadCommitted)
	_ = engine.PutVal(t3, "x", 7)
	_ = t3.Commit()
	v2, _ := engine.GetVal(t2, "x")
	if v2 != 7 {
		t.Fatalf("second read = %d, want 7 (non-repeatable at RC)", v2)
	}
	_ = t2.Commit()
}

// REPEATABLE READ: long item read locks — a writer blocks until the reader
// commits, so rereads are stable.
func TestRepeatableReadBlocksWriter(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"x": 0})
	t1 := mustBegin(t, db, engine.RepeatableRead)
	t2 := mustBegin(t, db, engine.RepeatableRead)
	if v, _ := engine.GetVal(t1, "x"); v != 0 {
		t.Fatal("setup")
	}
	done := make(chan error, 1)
	go func() { done <- engine.PutVal(t2, "x", 9) }()
	select {
	case <-done:
		t.Fatal("write should block on long read lock")
	case <-time.After(50 * time.Millisecond):
	}
	if v, _ := engine.GetVal(t1, "x"); v != 0 {
		t.Fatal("reread changed under long read lock")
	}
	_ = t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_ = t2.Commit()
}

// REPEATABLE READ allows phantoms: predicate locks are short, so an insert
// into a previously read predicate proceeds.
func TestRepeatableReadAllowsPhantom(t *testing.T) {
	db := NewDB()
	db.Load(
		data.Tuple{Key: "e1", Row: data.Row{"active": 1}},
		data.Tuple{Key: "e2", Row: data.Row{"active": 1}},
	)
	p := predicate.MustParse("active == 1")
	t1 := mustBegin(t, db, engine.RepeatableRead)
	rows, err := t1.Select(p)
	if err != nil || len(rows) != 2 {
		t.Fatalf("first select: %v, %v", rows, err)
	}
	t2 := mustBegin(t, db, engine.RepeatableRead)
	if err := t2.Put("e3", data.Row{"active": 1}); err != nil {
		t.Fatalf("phantom insert blocked at RR: %v", err)
	}
	_ = t2.Commit()
	rows2, _ := t1.Select(p)
	if len(rows2) != 3 {
		t.Fatalf("phantom not observed: %d rows", len(rows2))
	}
	_ = t1.Commit()
}

// SERIALIZABLE: long predicate locks — the phantom insert blocks.
func TestSerializableBlocksPhantom(t *testing.T) {
	db := NewDB()
	db.Load(data.Tuple{Key: "e1", Row: data.Row{"active": 1}})
	p := predicate.MustParse("active == 1")
	t1 := mustBegin(t, db, engine.Serializable)
	if _, err := t1.Select(p); err != nil {
		t.Fatal(err)
	}
	t2 := mustBegin(t, db, engine.Serializable)
	done := make(chan error, 1)
	go func() { done <- t2.Put("e9", data.Row{"active": 1}) }()
	select {
	case <-done:
		t.Fatal("phantom insert should block at SERIALIZABLE")
	case <-time.After(50 * time.Millisecond):
	}
	_ = t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_ = t2.Commit()
}

// Non-matching inserts are not blocked by the predicate lock.
func TestSerializablePredicateIgnoresNonMatching(t *testing.T) {
	db := NewDB()
	db.Load(data.Tuple{Key: "e1", Row: data.Row{"active": 1}})
	p := predicate.MustParse("active == 1")
	t1 := mustBegin(t, db, engine.Serializable)
	_, _ = t1.Select(p)
	t2 := mustBegin(t, db, engine.Serializable)
	if err := t2.Put("e9", data.Row{"active": 0}); err != nil {
		t.Fatalf("non-matching insert blocked: %v", err)
	}
	_ = t2.Commit()
	_ = t1.Commit()
}

// Deadlock: two RR transactions read then upgrade — the second upgrader is
// the victim.
func TestUpgradeDeadlockVictim(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"x": 100})
	t1 := mustBegin(t, db, engine.RepeatableRead)
	t2 := mustBegin(t, db, engine.RepeatableRead)
	_, _ = engine.GetVal(t1, "x")
	_, _ = engine.GetVal(t2, "x")
	first := make(chan error, 1)
	go func() { first <- engine.PutVal(t1, "x", 130) }()
	time.Sleep(30 * time.Millisecond)
	err := engine.PutVal(t2, "x", 120)
	if !errors.Is(err, engine.ErrDeadlock) {
		t.Fatalf("second upgrader got %v, want ErrDeadlock", err)
	}
	_ = t2.Abort()
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	_ = t1.Commit()
	if got := db.ReadCommittedRow("x").Val(); got != 130 {
		t.Fatalf("x = %d", got)
	}
}

// Select under SERIALIZABLE re-reads rows under their item locks, so a row
// changed while waiting is reported with its committed value.
func TestSelectRereadsUnderLock(t *testing.T) {
	db := NewDB()
	db.Load(data.Tuple{Key: "e1", Row: data.Row{"active": 1, "v": 1}})
	t1 := mustBegin(t, db, engine.ReadCommitted)
	t2 := mustBegin(t, db, engine.ReadCommitted)
	// T1 updates e1 but keeps it active.
	if err := t1.Put("e1", data.Row{"active": 1, "v": 2}); err != nil {
		t.Fatal(err)
	}
	got := make(chan []data.Tuple, 1)
	go func() {
		rows, _ := t2.Select(predicate.MustParse("active == 1"))
		got <- rows
	}()
	select {
	case <-got:
		t.Fatal("select should block on the dirty row")
	case <-time.After(50 * time.Millisecond):
	}
	_ = t1.Commit()
	rows := <-got
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if v, _ := rows[0].Row.Get("v"); v != 2 {
		t.Fatalf("select returned stale row: %v", rows[0])
	}
	_ = t2.Commit()
}

// --- Cursor Stability. ---

func TestCursorStabilityHoldsCurrentRowLock(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"x": 100})
	t1 := mustBegin(t, db, engine.CursorStability)
	cur, err := t1.OpenCursor(predicate.KeyEq{Key: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Fetch(); err != nil {
		t.Fatal(err)
	}
	// While the cursor sits on x, a writer must block.
	t2 := mustBegin(t, db, engine.CursorStability)
	done := make(chan error, 1)
	go func() { done <- engine.PutVal(t2, "x", 120) }()
	select {
	case <-done:
		t.Fatal("write should block while cursor is on the row")
	case <-time.After(50 * time.Millisecond):
	}
	// UpdateCurrent upgrades and commits; T2 then proceeds.
	if err := cur.UpdateCurrent(data.Scalar(130)); err != nil {
		t.Fatal(err)
	}
	_ = cur.Close()
	_ = t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_ = t2.Commit()
	if got := db.ReadCommittedRow("x").Val(); got != 120 {
		t.Fatalf("x = %d (T2's later write wins)", got)
	}
}

func TestCursorLockReleasedOnMove(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"a": 1, "b": 2})
	t1 := mustBegin(t, db, engine.CursorStability)
	cur, _ := t1.OpenCursor(predicate.True{})
	if _, err := cur.Fetch(); err != nil { // on "a"
		t.Fatal(err)
	}
	if _, err := cur.Fetch(); err != nil { // moved to "b": lock on "a" released
		t.Fatal(err)
	}
	t2 := mustBegin(t, db, engine.CursorStability)
	if err := engine.PutVal(t2, "a", 9); err != nil {
		t.Fatalf("write to released cursor row blocked: %v", err)
	}
	_ = t2.Commit()
	_ = t1.Commit()
}

func TestCursorWriteLockSurvivesMove(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"a": 1, "b": 2})
	t1 := mustBegin(t, db, engine.CursorStability)
	cur, _ := t1.OpenCursor(predicate.True{})
	_, _ = cur.Fetch() // on "a"
	if err := cur.UpdateCurrent(data.Scalar(10)); err != nil {
		t.Fatal(err)
	}
	_, _ = cur.Fetch() // move to "b" — X lock on "a" must persist
	t2 := mustBegin(t, db, engine.CursorStability)
	done := make(chan error, 1)
	go func() { done <- engine.PutVal(t2, "a", 99) }()
	select {
	case <-done:
		t.Fatal("write lock on updated row should persist after cursor moves (paper §4.1)")
	case <-time.After(50 * time.Millisecond):
	}
	_ = t1.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	_ = t2.Commit()
}

func TestCursorSkipsDeletedRows(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"a": 1, "b": 2})
	t1 := mustBegin(t, db, engine.Serializable)
	cur, _ := t1.OpenCursor(predicate.True{})
	_ = t1.Delete("a")
	tup, err := cur.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if tup.Key != "b" {
		t.Fatalf("fetched %v, want b (a was deleted)", tup)
	}
	_ = t1.Commit()
}

func TestCursorCurrentAndErrors(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"a": 1})
	t1 := mustBegin(t, db, engine.ReadCommitted)
	cur, _ := t1.OpenCursor(predicate.True{})
	if _, err := cur.Current(); !errors.Is(err, engine.ErrNoCursor) {
		t.Fatal("Current before Fetch should fail")
	}
	if err := cur.UpdateCurrent(data.Scalar(5)); !errors.Is(err, engine.ErrNoCursor) {
		t.Fatal("UpdateCurrent before Fetch should fail")
	}
	if _, err := cur.Fetch(); err != nil {
		t.Fatal(err)
	}
	if tup, err := cur.Current(); err != nil || tup.Key != "a" {
		t.Fatalf("Current = %v, %v", tup, err)
	}
	if _, err := cur.Fetch(); !errors.Is(err, engine.ErrNotFound) {
		t.Fatal("Fetch past end should report ErrNotFound")
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	_ = t1.Commit()
}

// --- Recorded histories. ---

// Two-phase locked executions at SERIALIZABLE produce conflict-serializable
// recorded histories — the fundamental serialization theorem, checked on a
// live concurrent run.
func TestSerializableRecordedHistorySerializable(t *testing.T) {
	db := NewDB()
	loadScalars(db, map[string]int64{"a": 10, "b": 10, "c": 10})
	db.Recorder().Enable()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			keys := []data.Key{"a", "b", "c"}
			for i := 0; i < 25; i++ {
				tx, err := db.Begin(engine.Serializable)
				if err != nil {
					t.Error(err)
					return
				}
				k1 := keys[(int(seed)+i)%3]
				k2 := keys[(int(seed)+i+1)%3]
				v, err := engine.GetVal(tx, k1)
				if err == nil {
					err = engine.PutVal(tx, k2, v+1)
				}
				if err != nil {
					_ = tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(int64(g))
	}
	wg.Wait()
	h := db.Recorder().History()
	if err := h.Validate(); err != nil {
		t.Fatalf("recorded history invalid: %v", err)
	}
	if !deps.Serializable(h) {
		g := deps.BuildGraph(h)
		t.Fatalf("recorded SERIALIZABLE history not serializable; cycle %v", g.Cycle())
	}
}

func TestProtocolsTableComplete(t *testing.T) {
	for _, lvl := range LockingLevels {
		p, ok := Protocols[lvl]
		if !ok {
			t.Fatalf("no protocol for %s", lvl)
		}
		if p.Level != lvl {
			t.Fatalf("protocol level mismatch for %s", lvl)
		}
		if lvl == engine.Degree0 {
			if p.WriteItem != DurShort {
				t.Error("Degree 0 must use short write locks")
			}
		} else if p.WriteItem != DurLong {
			t.Errorf("%s must use long write locks (Remark 3)", lvl)
		}
	}
}

func TestDurationString(t *testing.T) {
	if DurNone.String() != "none" || DurShort.String() != "short" ||
		DurLong.String() != "long" || DurCursor.String() != "while-current" {
		t.Fatal("duration strings")
	}
}
