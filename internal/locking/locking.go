// Package locking implements the single-version lock-based engine of the
// paper's Table 2: Degree 0, READ UNCOMMITTED, READ COMMITTED, Cursor
// Stability, REPEATABLE READ, and SERIALIZABLE, differing only in the
// durations of the read/write locks they request (see Protocols).
//
// The engine writes in place against an sv.Store and rolls back with
// before-image undo, exactly the recovery model whose interaction with
// Dirty Writes the paper discusses in §3.
package locking

import (
	"errors"
	"fmt"
	"sync/atomic"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/lock"
	"isolevel/internal/predicate"
	"isolevel/internal/sv"
)

// Option configures a DB.
type Option func(*DB)

// WithShards sets the stripe count of the lock manager's item lock tables
// and of the underlying row store (default lock.DefaultShards). One
// stripe reproduces the old single-latch lock manager and is the baseline
// of the shard-sweep benchmarks; higher counts let disjoint-key lock
// traffic proceed in parallel.
func WithShards(n int) Option {
	return func(db *DB) { db.shards = n }
}

// DB is a locking-scheduler database.
type DB struct {
	store  *sv.Store
	lm     *lock.Manager
	seq    atomic.Int64
	rec    *engine.Recorder
	shards int
}

// NewDB returns an empty locking database.
func NewDB(opts ...Option) *DB {
	db := &DB{shards: lock.DefaultShards, rec: engine.NewRecorder()}
	for _, o := range opts {
		o(db)
	}
	db.store = sv.NewStoreShards(db.shards)
	db.lm = lock.NewManagerShards(db.shards)
	return db
}

// ShardCount reports the stripe count of the lock manager (the row store
// uses the same count).
func (db *DB) ShardCount() int { return db.lm.ShardCount() }

// SetObserver forwards a wait observer to the lock manager (the schedule
// runner's deterministic block detection).
func (db *DB) SetObserver(o lock.Observer) { db.lm.SetObserver(o) }

// ParkGrants forwards grant parking to the lock manager (the schedule
// runner's one-op-at-a-time delivery of lock grants).
func (db *DB) ParkGrants(on bool) { db.lm.ParkGrants(on) }

// DeliverNextGrant wakes the oldest parked waiter, if any.
func (db *DB) DeliverNextGrant() (lock.TxID, bool) { return db.lm.DeliverNextGrant() }

// Recorder exposes the execution recorder.
func (db *DB) Recorder() *engine.Recorder { return db.rec }

// LockStats returns the lock manager counters.
func (db *DB) LockStats() lock.Stats { return db.lm.Stats() }

// Load implements engine.DB.
func (db *DB) Load(tuples ...data.Tuple) { db.store.Load(tuples...) }

// ReadCommittedRow implements engine.DB. For the single-version store the
// current row is whatever is in place; callers use it only after all
// transactions have terminated.
func (db *DB) ReadCommittedRow(key data.Key) data.Row { return db.store.Get(key) }

// Levels implements engine.DB.
func (db *DB) Levels() []engine.Level { return LockingLevels }

// Begin implements engine.DB.
func (db *DB) Begin(level engine.Level) (engine.Tx, error) {
	proto, ok := Protocols[level]
	if !ok {
		return nil, fmt.Errorf("%w: locking engine does not implement %s", engine.ErrUnsupported, level)
	}
	id := int(db.seq.Add(1))
	return &Tx{db: db, id: id, proto: proto}, nil
}

// Tx is a locking transaction.
type Tx struct {
	db    *DB
	id    int
	proto Protocol
	undo  sv.UndoLog
	done  bool
}

var _ engine.Tx = (*Tx)(nil)

// ID implements engine.Tx.
func (t *Tx) ID() int { return t.id }

// Level implements engine.Tx.
func (t *Tx) Level() engine.Level { return t.proto.Level }

func (t *Tx) lockErr(err error) error {
	if errors.Is(err, lock.ErrDeadlock) {
		return fmt.Errorf("%w (T%d)", engine.ErrDeadlock, t.id)
	}
	return err
}

// Get implements engine.Tx. The read lock duration follows the protocol:
// none (dirty reads allowed), short (released right after the read), or
// long (held to commit — repeatable).
func (t *Tx) Get(key data.Key) (data.Row, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	switch t.proto.ReadItem {
	case DurNone:
		// No read locks: sees in-place uncommitted data.
	case DurShort, DurLong:
		if err := t.db.lm.AcquireItem(lock.TxID(t.id), key, lock.S, lock.Images{Before: t.db.store.Get(key)}); err != nil {
			return nil, t.lockErr(err)
		}
	}
	row := t.db.store.Get(key)
	t.recordRead(key, row)
	if t.proto.ReadItem == DurShort {
		t.db.lm.ReleaseItem(lock.TxID(t.id), key)
	}
	if row == nil {
		return nil, engine.ErrNotFound
	}
	return row, nil
}

// Put implements engine.Tx: Exclusive item lock (long everywhere except
// Degree 0), in-place write, before-image to the undo log.
func (t *Tx) Put(key data.Key, row data.Row) error {
	return t.write(key, row.Clone())
}

// Delete implements engine.Tx.
func (t *Tx) Delete(key data.Key) error {
	return t.write(key, nil)
}

func (t *Tx) write(key data.Key, after data.Row) error {
	if t.done {
		return engine.ErrTxDone
	}
	peek := t.db.store.Get(key) // image for predicate-lock conflicts
	im := lock.Images{Before: peek, After: after}
	if err := t.db.lm.AcquireItem(lock.TxID(t.id), key, lock.X, im); err != nil {
		return t.lockErr(err)
	}
	var before data.Row
	if after == nil {
		before = t.db.store.Delete(key)
	} else {
		before = t.db.store.Put(key, after)
	}
	t.undo.Note(key, before)
	t.db.rec.RecordWrite(t.id, key, before, after)
	if t.proto.WriteItem == DurShort {
		// Degree 0: well-formed writes only — the lock does not outlive the
		// action, so dirty writes become possible.
		t.db.lm.ReleaseItem(lock.TxID(t.id), key)
	}
	return nil
}

// Select implements engine.Tx: a predicate Shared lock per the protocol,
// then per-row item locks on the matching rows.
func (t *Tx) Select(p predicate.P) ([]data.Tuple, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	var ph lock.PredHandle
	if t.proto.ReadPred != DurNone {
		h, err := t.db.lm.AcquirePred(lock.TxID(t.id), p, lock.S)
		if err != nil {
			return nil, t.lockErr(err)
		}
		ph = h
	}
	matches := t.db.store.Select(p)
	var out []data.Tuple
	for _, m := range matches {
		switch t.proto.ReadItem {
		case DurNone:
			out = append(out, m)
		case DurShort, DurLong:
			if err := t.db.lm.AcquireItem(lock.TxID(t.id), m.Key, lock.S, lock.Images{Before: m.Row}); err != nil {
				if t.proto.ReadPred == DurShort {
					t.db.lm.ReleasePred(lock.TxID(t.id), ph)
				}
				return nil, t.lockErr(err)
			}
			// Re-read under the lock: the row may have changed (or vanished)
			// while we waited.
			row := t.db.store.Get(m.Key)
			if row != nil && p.Match(data.Tuple{Key: m.Key, Row: row}) {
				out = append(out, data.Tuple{Key: m.Key, Row: row})
			}
			if t.proto.ReadItem == DurShort {
				t.db.lm.ReleaseItem(lock.TxID(t.id), m.Key)
			}
		}
	}
	t.db.rec.RecordPredRead(t.id, p)
	if t.proto.ReadPred == DurShort {
		t.db.lm.ReleasePred(lock.TxID(t.id), ph)
	}
	return out, nil
}

// Commit implements engine.Tx: record, then release every lock (the end of
// all long-duration locks).
func (t *Tx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.done = true
	t.db.rec.Record(historyOp(t.id, true))
	t.db.lm.ReleaseAll(lock.TxID(t.id))
	return nil
}

// Abort implements engine.Tx: roll back by restoring before-images in
// reverse order, then release locks. At Degree 0 (short write locks) this
// undo is exactly the unsound procedure of §3 — the engine performs it
// anyway; the store-level corruption is the demonstrated anomaly.
func (t *Tx) Abort() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.done = true
	t.undo.Rollback(t.db.store)
	t.db.rec.Record(historyOp(t.id, false))
	t.db.lm.ReleaseAll(lock.TxID(t.id))
	return nil
}

func (t *Tx) recordRead(key data.Key, row data.Row) {
	op := readOp(t.id, key, row)
	t.db.rec.Record(op)
}
