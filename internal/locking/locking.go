// Package locking implements the single-version lock-based engine of the
// paper's Table 2: Degree 0, READ UNCOMMITTED, READ COMMITTED, Cursor
// Stability, REPEATABLE READ, and SERIALIZABLE, differing only in the
// durations of the read/write locks they request (see Protocols).
//
// The engine writes in place against an sv.Store and rolls back with
// before-image undo, exactly the recovery model whose interaction with
// Dirty Writes the paper discusses in §3.
//
// Phantom prevention — the predicate-lock rows of Table 2 — comes in two
// interchangeable protocols (WithPhantomProtection): the paper's literal
// predicate table behind the lock manager's cross-stripe gate, or
// key-range (next-key) locking, which decomposes each scan's protection
// into striped next-key fragments and gives inserts a covering-gap lock.
// The Table 2 durations apply identically to both, and the differential
// fuzzer holds them behaviorally equivalent at every level.
//
//isolint:deterministic
package locking

import (
	"errors"
	"fmt"
	"sync/atomic"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/lock"
	"isolevel/internal/obs"
	"isolevel/internal/predicate"
	"isolevel/internal/sv"
)

// Option configures a DB.
type Option func(*DB)

// WithShards sets the stripe count of the lock manager's item lock tables
// and of the underlying row store (default lock.DefaultShards). One
// stripe reproduces the old single-latch lock manager and is the baseline
// of the shard-sweep benchmarks; higher counts let disjoint-key lock
// traffic proceed in parallel.
func WithShards(n int) Option {
	return func(db *DB) { db.shards = n }
}

// WithEscalation sets the keyrange protocol's lock-escalation threshold
// (default 0, off): a scan handle holding that many next-key fragments in
// one lock stripe collapses them into a single coarse whole-stripe entry —
// the [GLPT] granularity move, trading precision for fragment population.
// Escalated entries block unrefined (any other transaction's write in the
// stripe, any insert anywhere), so blocking is strictly coarser than the
// exact protocol: behavioral equivalence with the predicate engine no
// longer holds, but every Table-4 guarantee still does. No effect on the
// predicate protocol.
func WithEscalation(threshold int) Option {
	return func(db *DB) { db.escalation = threshold }
}

// Phantom selects the engine's phantom-prevention protocol: how the lock
// scheduler implements the predicate-lock rows of Table 2.
type Phantom uint8

const (
	// PhantomPredicate is the paper's literal mechanism: one predicate
	// lock per Select, in the lock manager's cross-stripe table behind the
	// shared-exclusive gate.
	PhantomPredicate Phantom = iota
	// PhantomKeyrange is the practical mechanism real schedulers use:
	// key-range (next-key) locks. A Select locks the existing keys of its
	// predicate's key range plus the gaps between them (per-stripe
	// fragments, image-refined — see internal/lock/keyrange.go), and an
	// insert acquires its covering gap's exclusive lock. Behaviorally
	// equivalent to PhantomPredicate — same conflicts, same waits, same
	// deadlock victims — but with no cross-stripe gate on any path.
	PhantomKeyrange
)

func (p Phantom) String() string {
	if p == PhantomKeyrange {
		return "keyrange"
	}
	return "predicate"
}

// WithPhantomProtection selects the phantom-prevention protocol (default
// PhantomPredicate, the paper's). The Table 2 lock durations are shared:
// a keyrange engine holds its range locks exactly as long as a predicate
// engine holds its predicate locks.
func WithPhantomProtection(p Phantom) Option {
	return func(db *DB) { db.phantom = p }
}

// DB is a locking-scheduler database.
type DB struct {
	store   *sv.Store
	lm      *lock.Manager
	seq     atomic.Int64
	rec        *engine.Recorder
	shards     int
	phantom    Phantom
	escalation int
	obs        *obs.Sink
}

// NewDB returns an empty locking database.
func NewDB(opts ...Option) *DB {
	db := &DB{shards: lock.DefaultShards, rec: engine.NewRecorder()}
	for _, o := range opts {
		o(db)
	}
	db.store = sv.NewStoreShards(db.shards)
	db.lm = lock.NewManagerShards(db.shards)
	// Row presence feeds the lock manager's fragment GC (dead-anchor
	// sweeps); harmless on the predicate protocol, which never installs
	// fragments.
	db.lm.SetRowPresent(db.store.Exists)
	if db.escalation > 0 {
		db.lm.SetEscalation(db.escalation)
	}
	return db
}

// ShardCount reports the stripe count of the lock manager (the row store
// uses the same count).
func (db *DB) ShardCount() int { return db.lm.ShardCount() }

// PhantomProtection reports the engine's phantom-prevention protocol.
func (db *DB) PhantomProtection() Phantom { return db.phantom }

// SetObserver forwards a wait observer to the lock manager (the schedule
// runner's deterministic block detection).
func (db *DB) SetObserver(o lock.Observer) { db.lm.SetObserver(o) }

// ParkGrants forwards grant parking to the lock manager (the schedule
// runner's one-op-at-a-time delivery of lock grants).
func (db *DB) ParkGrants(on bool) { db.lm.ParkGrants(on) }

// DeliverNextGrant wakes the oldest parked waiter, if any.
func (db *DB) DeliverNextGrant() (lock.TxID, bool) { return db.lm.DeliverNextGrant() }

// SetObs attaches an observability sink to the engine, its lock manager
// and its store: engine-level op/commit latency here, lock events and
// wait/hold latencies in the manager, scan latency in the store. Nil
// detaches. Must be called before concurrent use, like SetObserver.
func (db *DB) SetObs(s *obs.Sink) {
	db.obs = s
	db.lm.SetObs(s)
	db.store.SetObs(s)
}

// Obs returns the attached observability sink (nil when detached) —
// drivers use it to time whole transactions against the same clock.
func (db *DB) Obs() *obs.Sink { return db.obs }

// Recorder exposes the execution recorder.
func (db *DB) Recorder() *engine.Recorder { return db.rec }

// LockStats returns the lock manager counters.
func (db *DB) LockStats() lock.Stats { return db.lm.Stats() }

// Load implements engine.DB.
func (db *DB) Load(tuples ...data.Tuple) { db.store.Load(tuples...) }

// ReadCommittedRow implements engine.DB. For the single-version store the
// current row is whatever is in place; callers use it only after all
// transactions have terminated.
func (db *DB) ReadCommittedRow(key data.Key) data.Row { return db.store.Get(key) }

// Levels implements engine.DB.
func (db *DB) Levels() []engine.Level { return LockingLevels }

// Begin implements engine.DB.
func (db *DB) Begin(level engine.Level) (engine.Tx, error) {
	proto, ok := Protocols[level]
	if !ok {
		return nil, fmt.Errorf("%w: locking engine does not implement %s", engine.ErrUnsupported, level)
	}
	id := int(db.seq.Add(1))
	db.obs.Begin(id, level.Code())
	return &Tx{db: db, id: id, proto: proto}, nil
}

// Tx is a locking transaction.
type Tx struct {
	db    *DB
	id    int
	proto Protocol
	undo  sv.UndoLog
	done  bool
	// doomed is set when the lock manager refuses this transaction as a
	// deadlock victim. A victim must roll back: every later op fails fast
	// with the same deadlock error and Commit refuses and rolls back
	// instead. Without this, a caller that queued a commit behind a
	// refused op would commit a transaction with some of its effects
	// silently missing.
	doomed bool
}

var _ engine.Tx = (*Tx)(nil)

// ID implements engine.Tx.
func (t *Tx) ID() int { return t.id }

// Level implements engine.Tx.
func (t *Tx) Level() engine.Level { return t.proto.Level }

func (t *Tx) lockErr(err error) error {
	if errors.Is(err, lock.ErrDeadlock) {
		t.doomed = true
		return t.doomErr()
	}
	return err
}

// doomErr is the error every op (and the commit) of a deadlock victim
// returns; the format matches the original refusal so repeated failures
// read identically.
func (t *Tx) doomErr() error {
	return fmt.Errorf("%w (T%d)", engine.ErrDeadlock, t.id)
}

// Get implements engine.Tx. The read lock duration follows the protocol:
// none (dirty reads allowed), short (released right after the read), or
// long (held to commit — repeatable).
func (t *Tx) Get(key data.Key) (data.Row, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	if t.doomed {
		return nil, t.doomErr()
	}
	start := t.db.obs.Now()
	switch t.proto.ReadItem {
	case DurNone:
		// No read locks: sees in-place uncommitted data.
	case DurShort, DurLong:
		if err := t.db.lm.AcquireItem(lock.TxID(t.id), key, lock.S, lock.Images{Before: t.db.store.Get(key)}); err != nil {
			t.db.obs.RecordOp(start)
			return nil, t.lockErr(err)
		}
	}
	row := t.db.store.Get(key)
	t.recordRead(key, row)
	if t.proto.ReadItem == DurShort {
		t.db.lm.ReleaseItem(lock.TxID(t.id), key)
	}
	t.db.obs.RecordOp(start)
	if row == nil {
		return nil, engine.ErrNotFound
	}
	return row, nil
}

// Put implements engine.Tx: Exclusive item lock (long everywhere except
// Degree 0), in-place write, before-image to the undo log.
func (t *Tx) Put(key data.Key, row data.Row) error {
	return t.write(key, row.Clone())
}

// Delete implements engine.Tx.
func (t *Tx) Delete(key data.Key) error {
	return t.write(key, nil)
}

func (t *Tx) write(key data.Key, after data.Row) error {
	if t.done {
		return engine.ErrTxDone
	}
	if t.doomed {
		return t.doomErr()
	}
	start := t.db.obs.Now()
	peek := t.db.store.Get(key) // image for predicate-lock conflicts
	im := lock.Images{Before: peek, After: after}
	if err := t.lockForWrite(key, peek, im); err != nil {
		t.db.obs.RecordOp(start)
		return t.lockErr(err)
	}
	var before data.Row
	if after == nil {
		before = t.db.store.Delete(key)
	} else {
		before = t.db.store.Put(key, after)
	}
	t.undo.Note(key, before)
	t.db.rec.RecordWrite(t.id, key, before, after)
	if t.proto.WriteItem == DurShort {
		// Degree 0: well-formed writes only — the lock does not outlive the
		// action, so dirty writes become possible.
		t.db.lm.ReleaseItem(lock.TxID(t.id), key)
	}
	t.db.obs.RecordOp(start)
	return nil
}

// scanGuard is the phantom-protection lock a Select or OpenCursor holds
// while evaluating its predicate: a predicate lock (PhantomPredicate) or a
// key-range lock (PhantomKeyrange). The guard's lifetime follows the
// protocol's predicate-read duration either way.
type scanGuard struct {
	t       *Tx
	held    bool
	isRange bool
	pred    lock.PredHandle
	rng     lock.RangeHandle
}

// acquireScanGuard takes the protocol's phantom-protection lock for p — a
// no-op guard when the level requests none (ReadPred DurNone).
func (t *Tx) acquireScanGuard(p predicate.P) (scanGuard, error) {
	g := scanGuard{t: t}
	if t.proto.ReadPred == DurNone {
		return g, nil
	}
	if t.db.phantom == PhantomKeyrange {
		lo, hi, bounded := predicate.KeyBounds(p)
		// The anchor set is snapshotted by the lock manager at install
		// time, under its range mutex — not here — so a key inserted and
		// committed on the way to the acquisition still gets a fragment.
		// SnapshotInto appends the per-stripe runs into the manager's
		// reusable buffer: the snapshot allocates nothing at steady state.
		h, err := t.db.lm.AcquireRange(lock.TxID(t.id), lock.RangeSpec{
			Pred: p,
			SnapshotInto: func(r *data.KeyRuns) data.Key {
				return t.db.store.AppendRangeAnchors(r, lo, hi, bounded)
			},
			Lo: lo, Hi: hi, Bounded: bounded,
		})
		if err != nil {
			return g, t.lockErr(err)
		}
		g.held, g.isRange, g.rng = true, true, h
		return g, nil
	}
	h, err := t.db.lm.AcquirePred(lock.TxID(t.id), p, lock.S)
	if err != nil {
		return g, t.lockErr(err)
	}
	g.held, g.pred = true, h
	return g, nil
}

// releaseShort releases the guard when the protocol's predicate-read locks
// are short-duration (long guards fall to ReleaseAll at commit/abort).
func (g scanGuard) releaseShort() {
	if !g.held || g.t.proto.ReadPred != DurShort {
		return
	}
	if g.isRange {
		g.t.db.lm.ReleaseRange(lock.TxID(g.t.id), g.rng)
	} else {
		g.t.db.lm.ReleasePred(lock.TxID(g.t.id), g.pred)
	}
}

// lockForWrite acquires the locks that guard installing im.After at key —
// shared by Tx.write and Cursor.UpdateCurrent (which can also re-create a
// row another transaction deleted under the cursor). Under the keyrange
// protocol a write that creates a row must hold the covering gap's
// exclusive lock: when the pre-lock peek saw no row, the gap lock is
// taken before the item lock; and whenever the row is absent *under* the
// item lock — the pre-lock peek may have raced a concurrent delete, or a
// scan may have started between the gap check and the item install — the
// gap is (re)verified with the item lock already visible, so either the
// scan's conflict sweep sees this writer or this recheck sees the scan's
// fragments. Both extra steps are no-ops on the predicate protocol and,
// for existing rows, on scripted runs.
func (t *Tx) lockForWrite(key data.Key, peek data.Row, im lock.Images) error {
	tid := lock.TxID(t.id)
	keyrange := t.db.phantom == PhantomKeyrange
	if keyrange && peek == nil && im.After != nil {
		if err := t.db.lm.AcquireGap(tid, key, im); err != nil {
			return err
		}
	}
	if err := t.db.lm.AcquireItem(tid, key, lock.X, im); err != nil {
		return err
	}
	if keyrange && im.After != nil && !t.db.store.Exists(key) {
		if err := t.db.lm.RecheckGap(tid, key, im); err != nil {
			return err
		}
	}
	return nil
}

// Select implements engine.Tx: a phantom-protection lock (predicate or
// key-range, per the engine's protocol) for the scan, then per-row item
// locks on the matching rows.
func (t *Tx) Select(p predicate.P) ([]data.Tuple, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	if t.doomed {
		return nil, t.doomErr()
	}
	start := t.db.obs.Now()
	g, err := t.acquireScanGuard(p)
	if err != nil {
		t.db.obs.RecordOp(start)
		return nil, err
	}
	matches := t.db.store.Select(p)
	var out []data.Tuple
	for _, m := range matches {
		switch t.proto.ReadItem {
		case DurNone:
			out = append(out, m)
		case DurShort, DurLong:
			if err := t.db.lm.AcquireItem(lock.TxID(t.id), m.Key, lock.S, lock.Images{Before: m.Row}); err != nil {
				g.releaseShort()
				t.db.obs.RecordOp(start)
				return nil, t.lockErr(err)
			}
			// Re-read under the lock: the row may have changed (or vanished)
			// while we waited.
			row := t.db.store.Get(m.Key)
			if row != nil && p.Match(data.Tuple{Key: m.Key, Row: row}) {
				out = append(out, data.Tuple{Key: m.Key, Row: row})
			}
			if t.proto.ReadItem == DurShort {
				t.db.lm.ReleaseItem(lock.TxID(t.id), m.Key)
			}
		}
	}
	t.db.rec.RecordPredRead(t.id, p)
	g.releaseShort()
	t.db.obs.RecordOp(start)
	return out, nil
}

// Commit implements engine.Tx: record, then release every lock (the end of
// all long-duration locks).
func (t *Tx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	if t.doomed {
		// A deadlock victim cannot commit: some of its ops were refused,
		// so committing would publish a transaction with effects missing.
		// Roll back instead and report the refusal to the caller.
		t.done = true
		t.undo.Rollback(t.db.store)
		t.db.rec.Record(historyOp(t.id, false))
		t.db.obs.Abort(t.id)
		t.db.lm.ReleaseAll(lock.TxID(t.id))
		return t.doomErr()
	}
	t.done = true
	start := t.db.obs.Now()
	t.db.rec.Record(historyOp(t.id, true))
	// The commit event marks the commit point; the lock releases (and the
	// grants they cause) follow it in the flight recorder.
	t.db.obs.Commit(t.id)
	t.db.lm.ReleaseAll(lock.TxID(t.id))
	t.db.obs.RecordCommitLatency(start)
	return nil
}

// Abort implements engine.Tx: roll back by restoring before-images in
// reverse order, then release locks. At Degree 0 (short write locks) this
// undo is exactly the unsound procedure of §3 — the engine performs it
// anyway; the store-level corruption is the demonstrated anomaly.
func (t *Tx) Abort() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.done = true
	t.undo.Rollback(t.db.store)
	t.db.rec.Record(historyOp(t.id, false))
	t.db.obs.Abort(t.id)
	t.db.lm.ReleaseAll(lock.TxID(t.id))
	return nil
}

func (t *Tx) recordRead(key data.Key, row data.Row) {
	op := readOp(t.id, key, row)
	t.db.rec.Record(op)
}
