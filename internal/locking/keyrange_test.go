package locking

import (
	"testing"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/predicate"
)

func newKeyrangeDB(shards int) *DB {
	opts := []Option{WithPhantomProtection(PhantomKeyrange)}
	if shards > 0 {
		opts = append(opts, WithShards(shards))
	}
	return NewDB(opts...)
}

func TestPhantomProtectionKnob(t *testing.T) {
	if got := NewDB().PhantomProtection(); got != PhantomPredicate {
		t.Fatalf("default protocol = %v, want predicate", got)
	}
	if got := newKeyrangeDB(0).PhantomProtection(); got != PhantomKeyrange {
		t.Fatalf("keyrange knob = %v", got)
	}
	if PhantomKeyrange.String() != "keyrange" || PhantomPredicate.String() != "predicate" {
		t.Fatal("Phantom.String wrong")
	}
}

// TestKeyrangeBlocksPhantomInsert: under SERIALIZABLE the scan's gap locks
// block a matching insert until the scanner commits — and the gate is
// never taken.
func TestKeyrangeBlocksPhantomInsert(t *testing.T) {
	db := newKeyrangeDB(8)
	loadScalars(db, map[string]int64{"a": 1, "m": 2})
	p := predicate.Field{Name: "active", Op: predicate.EQ, Arg: 1}
	db.Load(data.Tuple{Key: "emp:1", Row: data.Row{"active": 1}})

	scanner := mustBegin(t, db, engine.Serializable)
	rows, err := scanner.Select(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("scan saw %d rows, want 1", len(rows))
	}

	inserted := make(chan error, 1)
	go func() {
		w := mustBegin(t, db, engine.Serializable)
		if err := w.Put("emp:2", data.Row{"active": 1}); err != nil {
			inserted <- err
			return
		}
		inserted <- w.Commit()
	}()
	select {
	case err := <-inserted:
		t.Fatalf("phantom insert not blocked (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	// A non-matching insert into the same range sails through (refined
	// gap locks — same admission as the predicate table).
	w2 := mustBegin(t, db, engine.Serializable)
	if err := w2.Put("emp:0", data.Row{"active": 0}); err != nil {
		t.Fatalf("non-matching insert blocked: %v", err)
	}
	if err := w2.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := scanner.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-inserted; err != nil {
		t.Fatalf("insert after scanner commit: %v", err)
	}
	if st := db.LockStats(); st.GateAcquires != 0 {
		t.Fatalf("GateAcquires = %d on the keyrange engine, want 0", st.GateAcquires)
	} else if st.RangeGrants == 0 || st.GapWaits == 0 {
		t.Fatalf("range stats not counted: %+v", st)
	}
}

// TestKeyrangeAdmitsPhantomAtRepeatableRead: REPEATABLE READ holds only
// short range locks (Table 2: short predicate read locks), so the phantom
// appears between the two scans — exactly as with the predicate table.
func TestKeyrangeAdmitsPhantomAtRepeatableRead(t *testing.T) {
	db := newKeyrangeDB(8)
	db.Load(data.Tuple{Key: "emp:1", Row: data.Row{"active": 1}})
	p := predicate.Field{Name: "active", Op: predicate.EQ, Arg: 1}

	scanner := mustBegin(t, db, engine.RepeatableRead)
	first, err := scanner.Select(p)
	if err != nil {
		t.Fatal(err)
	}
	w := mustBegin(t, db, engine.RepeatableRead)
	if err := w.Put("emp:2", data.Row{"active": 1}); err != nil {
		t.Fatalf("insert blocked at RR: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	second, err := scanner.Select(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != len(first)+1 {
		t.Fatalf("phantom not admitted at RR: %d -> %d rows", len(first), len(second))
	}
	if err := scanner.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestKeyrangeUpdateIntoPredicateBlocked: the non-insert phantom source —
// updating an existing non-matching row so it starts matching — must
// conflict with a SERIALIZABLE scan's fragments on the row's key.
func TestKeyrangeUpdateIntoPredicateBlocked(t *testing.T) {
	db := newKeyrangeDB(8)
	db.Load(
		data.Tuple{Key: "emp:1", Row: data.Row{"active": 1}},
		data.Tuple{Key: "emp:2", Row: data.Row{"active": 0}},
	)
	p := predicate.Field{Name: "active", Op: predicate.EQ, Arg: 1}
	scanner := mustBegin(t, db, engine.Serializable)
	if _, err := scanner.Select(p); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		w := mustBegin(t, db, engine.Serializable)
		if err := w.Put("emp:2", data.Row{"active": 1}); err != nil {
			done <- err
			return
		}
		done <- w.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("update into the predicate not blocked (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := scanner.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestKeyrangeCursorGuard: OpenCursor takes the range guard under the
// keyrange protocol; at SERIALIZABLE it pins the cursor set's range.
func TestKeyrangeCursorGuard(t *testing.T) {
	db := newKeyrangeDB(4)
	db.Load(data.Tuple{Key: "t:1", Row: data.Scalar(5)})
	tx := mustBegin(t, db, engine.Serializable)
	cur, err := tx.OpenCursor(predicate.KeyPrefix{Prefix: "t:"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Fetch(); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		w := mustBegin(t, db, engine.Serializable)
		if err := w.Put("t:2", data.Scalar(9)); err != nil {
			blocked <- err
			return
		}
		blocked <- w.Commit()
	}()
	select {
	case err := <-blocked:
		t.Fatalf("insert into the cursor's prefix range not blocked (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}

// TestKeyrangeStaleAnchorPhantom is the end-to-end regression for the
// stale-anchor shadowing bug: an aborted insert leaves its key anchoring
// an older scan's inherited fragments; a newer scan starting after the
// abort must still get gap coverage below that stale anchor, or a
// matching insert slips into its range — a P3 phantom at SERIALIZABLE.
func TestKeyrangeStaleAnchorPhantom(t *testing.T) {
	db := newKeyrangeDB(8)
	db.Load(
		data.Tuple{Key: "a", Row: data.Row{"active": 0}},
		data.Tuple{Key: "r", Row: data.Row{"active": 0}},
	)
	p5 := predicate.Field{Name: "active", Op: predicate.EQ, Arg: 5}
	p4 := predicate.Field{Name: "active", Op: predicate.EQ, Arg: 4}

	// T5's long scan; T0 inserts a non-matching row m and aborts — the
	// undo removes m from the store but T5's inherited fragment keeps m
	// as a lock-table anchor.
	t5 := mustBegin(t, db, engine.Serializable)
	if _, err := t5.Select(p5); err != nil {
		t.Fatal(err)
	}
	t0 := mustBegin(t, db, engine.Serializable)
	if err := t0.Put("m", data.Row{"active": 0}); err != nil {
		t.Fatal(err)
	}
	if err := t0.Abort(); err != nil {
		t.Fatal(err)
	}

	// T4 scans after the abort; its store-derived anchors are {a, r}.
	t4 := mustBegin(t, db, engine.Serializable)
	first, err := t4.Select(p4)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 0 {
		t.Fatalf("first scan saw %d rows, want 0", len(first))
	}

	// Insert g in (a, m) matching T4's predicate: must block on T4's
	// coverage even though the covering anchor is the stale m.
	done := make(chan error, 1)
	go func() {
		t6 := mustBegin(t, db, engine.Serializable)
		if err := t6.Put("g", data.Row{"active": 4}); err != nil {
			done <- err
			return
		}
		done <- t6.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("phantom insert admitted through the stale anchor (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	second, err := t4.Select(p4)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 0 {
		t.Fatalf("second scan saw %d rows — phantom at SERIALIZABLE", len(second))
	}
	if err := t4.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := t5.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestKeyrangeCursorResurrectBlocked: UpdateCurrent re-creating a row
// another transaction deleted under the cursor is an insert, and must go
// through the covering gap lock — otherwise a SERIALIZABLE scan that
// started after the delete (and so has no fragment anchored at the dead
// key) gets a P3 phantom the predicate protocol would have blocked.
func TestKeyrangeCursorResurrectBlocked(t *testing.T) {
	db := newKeyrangeDB(8)
	db.Load(data.Tuple{Key: "e1", Row: data.Row{"val": 5}})
	p := predicate.Field{Name: "val", Op: predicate.GE, Arg: 1}

	// t1 (READ COMMITTED: short cursor locks) parks a cursor on e1.
	t1 := mustBegin(t, db, engine.ReadCommitted)
	cur, err := t1.OpenCursor(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Fetch(); err != nil {
		t.Fatal(err)
	}
	// t2 deletes e1 and commits.
	t2 := mustBegin(t, db, engine.Serializable)
	if err := t2.Delete("e1"); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// t3's SERIALIZABLE scan sees no rows; its fragments cannot anchor at
	// the absent e1.
	t3 := mustBegin(t, db, engine.Serializable)
	if rows, err := t3.Select(p); err != nil || len(rows) != 0 {
		t.Fatalf("scan = %d rows, err %v; want 0", len(rows), err)
	}
	// t1 now writes through the stale cursor, resurrecting e1 — a phantom
	// for t3 that must block on the covering gap.
	done := make(chan error, 1)
	go func() {
		if err := cur.UpdateCurrent(data.Row{"val": 9}); err != nil {
			done <- err
			return
		}
		done <- t1.Commit()
	}()
	select {
	case err := <-done:
		t.Fatalf("cursor resurrection not blocked by the gap lock (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if rows, err := t3.Select(p); err != nil || len(rows) != 0 {
		t.Fatalf("re-scan = %d rows, err %v; want 0 (phantom)", len(rows), err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestKeyrangeInsertRollbackKeepsCoverage: an aborted non-matching insert
// under a live scan must leave the scan's protection intact (inherited
// fragments outlive the undo).
func TestKeyrangeInsertRollbackKeepsCoverage(t *testing.T) {
	db := newKeyrangeDB(8)
	db.Load(data.Tuple{Key: "emp:9", Row: data.Row{"active": 1}})
	p := predicate.Field{Name: "active", Op: predicate.EQ, Arg: 1}
	scanner := mustBegin(t, db, engine.Serializable)
	if _, err := scanner.Select(p); err != nil {
		t.Fatal(err)
	}
	w := mustBegin(t, db, engine.Serializable)
	if err := w.Put("emp:3", data.Row{"active": 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	// The gap below emp:9 must still be covered.
	blocked := make(chan error, 1)
	go func() {
		w2 := mustBegin(t, db, engine.Serializable)
		if err := w2.Put("emp:5", data.Row{"active": 1}); err != nil {
			blocked <- err
			return
		}
		blocked <- w2.Commit()
	}()
	select {
	case err := <-blocked:
		t.Fatalf("coverage lost after insert rollback (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := scanner.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
}
