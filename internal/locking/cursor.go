package locking

import (
	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/history"
	"isolevel/internal/lock"
	"isolevel/internal/predicate"
)

// Cursor is a SQL-style cursor over the rows matching a predicate (§4.1).
// At Cursor Stability the Shared lock on the current row is held until the
// cursor moves or closes; if the transaction updates the row through the
// cursor, the upgraded Exclusive lock persists to commit even after the
// cursor moves on — exactly the paper's description.
type Cursor struct {
	tx     *Tx
	pred   predicate.P
	keys   []data.Key
	pos    int // index into keys of current row; -1 before first fetch
	curKey data.Key
	holds  bool // currently holding the while-current lock
	closed bool
}

var _ engine.Cursor = (*Cursor)(nil)

// OpenCursor implements engine.Tx. The scan guard — predicate lock or
// key-range lock, per the engine's phantom protocol — follows the
// protocol's predicate read duration (short at CS: the membership of the
// cursor set is evaluated once, under a short guard).
func (t *Tx) OpenCursor(p predicate.P) (engine.Cursor, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	g, err := t.acquireScanGuard(p)
	if err != nil {
		return nil, err
	}
	matches := t.db.store.Select(p)
	keys := make([]data.Key, len(matches))
	for i, m := range matches {
		keys[i] = m.Key
	}
	g.releaseShort()
	return &Cursor{tx: t, pred: p, keys: keys, pos: -1}, nil
}

// Fetch implements engine.Cursor: release the previous current-row lock
// (while-current duration only — a row the transaction wrote keeps its
// Exclusive lock via reference counting), advance, lock the new current
// row per the protocol.
func (c *Cursor) Fetch() (data.Tuple, error) {
	if c.closed || c.tx.done {
		return data.Tuple{}, engine.ErrTxDone
	}
	c.releaseCurrent()
	for {
		c.pos++
		if c.pos >= len(c.keys) {
			return data.Tuple{}, engine.ErrNotFound
		}
		key := c.keys[c.pos]
		switch c.tx.proto.CursorRead {
		case DurNone:
			// No lock.
		case DurShort:
			if err := c.tx.db.lm.AcquireItem(lock.TxID(c.tx.id), key, lock.S, lock.Images{Before: c.tx.db.store.Get(key)}); err != nil {
				return data.Tuple{}, c.tx.lockErr(err)
			}
		case DurCursor, DurLong:
			if err := c.tx.db.lm.AcquireItem(lock.TxID(c.tx.id), key, lock.S, lock.Images{Before: c.tx.db.store.Get(key)}); err != nil {
				return data.Tuple{}, c.tx.lockErr(err)
			}
			if c.tx.proto.CursorRead == DurCursor {
				c.holds = true
			}
		}
		c.curKey = key
		row := c.tx.db.store.Get(key)
		if c.tx.proto.CursorRead == DurShort {
			c.tx.db.lm.ReleaseItem(lock.TxID(c.tx.id), key)
		}
		if row == nil {
			// Row deleted since the cursor set was built: skip it.
			c.releaseCurrent()
			continue
		}
		c.tx.db.rec.Record(cursorReadOp(c.tx.id, key, row))
		return data.Tuple{Key: key, Row: row}, nil
	}
}

// Current implements engine.Cursor.
func (c *Cursor) Current() (data.Tuple, error) {
	if c.closed || c.tx.done {
		return data.Tuple{}, engine.ErrTxDone
	}
	if c.pos < 0 || c.pos >= len(c.keys) {
		return data.Tuple{}, engine.ErrNoCursor
	}
	row := c.tx.db.store.Get(c.curKey)
	if row == nil {
		return data.Tuple{}, engine.ErrNotFound
	}
	return data.Tuple{Key: c.curKey, Row: row}, nil
}

// UpdateCurrent implements engine.Cursor: upgrade to a long Exclusive lock
// on the current row and write through it ("the Fetching transaction can
// update the row, and in that case a write lock will be held on the row
// until the transaction commits, even after the cursor moves on").
func (c *Cursor) UpdateCurrent(row data.Row) error {
	if c.closed || c.tx.done {
		return engine.ErrTxDone
	}
	if c.pos < 0 || c.pos >= len(c.keys) {
		return engine.ErrNoCursor
	}
	t := c.tx
	after := row.Clone()
	peek := t.db.store.Get(c.curKey)
	// lockForWrite, not a bare item lock: if another transaction deleted
	// the row under the cursor, this write re-creates it — an insert that
	// the keyrange protocol must route through the covering gap lock.
	if err := t.lockForWrite(c.curKey, peek, lock.Images{Before: peek, After: after}); err != nil {
		return t.lockErr(err)
	}
	before := t.db.store.Put(c.curKey, after)
	t.undo.Note(c.curKey, before)
	t.db.rec.Record(cursorWriteOp(t.id, c.curKey, after))
	// The while-current reference is now subsumed by the X hold: when the
	// cursor moves it will release one reference, leaving the write lock in
	// place until commit.
	return nil
}

// Close implements engine.Cursor.
func (c *Cursor) Close() error {
	if c.closed {
		return nil
	}
	c.releaseCurrent()
	c.closed = true
	return nil
}

func (c *Cursor) releaseCurrent() {
	if c.holds {
		c.tx.db.lm.ReleaseItem(lock.TxID(c.tx.id), c.curKey)
		c.holds = false
	}
}

// --- history.Op constructors used by the recorder. ---

func readOp(tx int, key data.Key, row data.Row) history.Op {
	op := history.Op{Tx: tx, Kind: history.Read, Item: key, Version: -1}
	if row != nil {
		op.Value, op.HasValue = row.Val(), true
	}
	return op
}

func cursorReadOp(tx int, key data.Key, row data.Row) history.Op {
	op := history.Op{Tx: tx, Kind: history.ReadCursor, Item: key, Version: -1}
	if row != nil {
		op.Value, op.HasValue = row.Val(), true
	}
	return op
}

func cursorWriteOp(tx int, key data.Key, row data.Row) history.Op {
	op := history.Op{Tx: tx, Kind: history.WriteCursor, Item: key, Version: -1}
	if row != nil {
		op.Value, op.HasValue = row.Val(), true
	}
	return op
}

func historyOp(tx int, commit bool) history.Op {
	kind := history.Abort
	if commit {
		kind = history.Commit
	}
	return history.Op{Tx: tx, Kind: kind, Version: -1}
}
