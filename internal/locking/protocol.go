package locking

import (
	"fmt"

	"isolevel/internal/engine"
)

// Duration is a lock duration class from Table 2.
type Duration uint8

// Durations. DurCursor is the Cursor Stability rule: the lock on the row
// under a cursor is "held on current of cursor" — released when the cursor
// moves or closes (unless the row was written, in which case the write lock
// persists to commit).
const (
	DurNone   Duration = iota // no lock requested
	DurShort                  // released immediately after the action
	DurLong                   // held until commit/abort
	DurCursor                 // held while the cursor is positioned on the row
)

func (d Duration) String() string {
	switch d {
	case DurNone:
		return "none"
	case DurShort:
		return "short"
	case DurLong:
		return "long"
	case DurCursor:
		return "while-current"
	}
	return fmt.Sprintf("Duration(%d)", int(d))
}

// Protocol is one row of the paper's Table 2: the lock scopes, modes and
// durations a locking isolation level requests. Write locks are always
// Exclusive on data items; read locks are Shared on items and predicates.
type Protocol struct {
	Level engine.Level
	// ReadItem is the duration of Shared locks on individual data items
	// read by Get and by Select's row accesses.
	ReadItem Duration
	// ReadPred is the duration of Shared predicate locks taken by Select
	// (and by OpenCursor's predicate evaluation).
	ReadPred Duration
	// WriteItem is the duration of Exclusive locks on written items. Only
	// Degree 0 uses short write locks; everything stronger is long
	// (Remark 3: recovery requires long write locks).
	WriteItem Duration
	// CursorRead is the duration of the Shared lock taken by a cursor
	// Fetch on the row it lands on.
	CursorRead Duration
}

// Protocols is Table 2 as executable data. The Table 2 regenerator prints
// this map and then verifies each entry behaviorally with live probes.
var Protocols = map[engine.Level]Protocol{
	// Degree 0: "none required" for reads; "Well-formed Writes" only —
	// short write locks, action atomicity.
	engine.Degree0: {
		Level:    engine.Degree0,
		ReadItem: DurNone, ReadPred: DurNone,
		WriteItem: DurShort, CursorRead: DurNone,
	},
	// Degree 1 = Locking READ UNCOMMITTED: long write locks, no read locks.
	engine.ReadUncommitted: {
		Level:    engine.ReadUncommitted,
		ReadItem: DurNone, ReadPred: DurNone,
		WriteItem: DurLong, CursorRead: DurNone,
	},
	// Degree 2 = Locking READ COMMITTED: short read locks (items and
	// predicates), long write locks.
	engine.ReadCommitted: {
		Level:    engine.ReadCommitted,
		ReadItem: DurShort, ReadPred: DurShort,
		WriteItem: DurLong, CursorRead: DurShort,
	},
	// Cursor Stability: READ COMMITTED plus "Read locks held on current of
	// cursor"; predicate read locks stay short.
	engine.CursorStability: {
		Level:    engine.CursorStability,
		ReadItem: DurShort, ReadPred: DurShort,
		WriteItem: DurLong, CursorRead: DurCursor,
	},
	// Locking REPEATABLE READ: long data-item read locks, short predicate
	// read locks (phantoms remain possible), long write locks.
	engine.RepeatableRead: {
		Level:    engine.RepeatableRead,
		ReadItem: DurLong, ReadPred: DurShort,
		WriteItem: DurLong, CursorRead: DurLong,
	},
	// Degree 3 = Locking SERIALIZABLE: long read locks on items and
	// predicates — well-formed two-phase locking.
	engine.Serializable: {
		Level:    engine.Serializable,
		ReadItem: DurLong, ReadPred: DurLong,
		WriteItem: DurLong, CursorRead: DurLong,
	},
}

// LockingLevels lists the levels the locking engine implements, in Table 2
// row order.
var LockingLevels = []engine.Level{
	engine.Degree0, engine.ReadUncommitted, engine.ReadCommitted,
	engine.CursorStability, engine.RepeatableRead, engine.Serializable,
}
