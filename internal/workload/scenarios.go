// Additional workload scenarios: read-only snapshot scans racing hot
// writers, skewed multi-key transfers, and batched increments. The scan
// scenario uses the deterministic driver (driver.go) so the read–write
// overlap it measures is guaranteed on any GOMAXPROCS; the transfer and
// batch scenarios are free-running and exist to measure the striped
// commit path (disjoint write sets must scale with shard count).
package workload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"isolevel/internal/engine"
	"isolevel/internal/schedule"
)

// ScanResult reports SnapshotScanVsHotWriters outcomes.
type ScanResult struct {
	Scanners Metrics
	Writers  Metrics
	// TotalScans counts completed scan transactions; UnstableScans counts
	// those whose two in-transaction scans disagreed. Snapshot Isolation
	// guarantees UnstableScans == 0 ("each transaction never sees the
	// updates of concurrent transactions"); statement-snapshot Read
	// Consistency permits them (that is its P2/A5A behavior).
	TotalScans    int64
	UnstableScans int64
}

// SnapshotScanVsHotWriters drives scanners read-only full scans against
// writers incrementing the first account row, in deterministic lockstep:
// each round every scanner sums all accounts, then the writers race to
// commit an increment of account 0, then every scanner re-scans inside
// the same transaction and checks the two sums agree. The rendezvous
// guarantees every scan transaction overlaps a committed write, so a
// snapshot-stability violation cannot hide behind scheduling luck —
// and a stability guarantee (SI) is actually exercised.
//
// The scenario is for the §4 multiversion engines, whose reads never
// block writers. Under the long-read-lock locking levels the phase-B
// writers would block on the scanners' read locks while the scanners
// wait at the rendezvous — a barrier/lock deadlock no detector sees
// (which is the paper's concurrency argument for SI read-only
// transactions, made operational). Callers load accounts first
// (LoadAccounts).
func SnapshotScanVsHotWriters(db engine.DB, level engine.Level, accounts, scanners, writers, rounds int) ScanResult {
	var sc, wc counters
	var totalScans, unstable atomic.Int64
	start := time.Now()
	scan := func(tx engine.Tx, c *counters) (int64, error) {
		var sum int64
		for a := 0; a < accounts; a++ {
			v, err := engine.GetVal(tx, AccountKey(a))
			if err != nil {
				return 0, err
			}
			c.reads.Add(1)
			sum += v
		}
		return sum, nil
	}
	RunInterleaved(scanners+writers, func(sess int, bar *schedule.Barrier) {
		isScanner := sess < scanners
		for r := 0; r < rounds; r++ {
			tx, err := db.Begin(level)
			var sum1 int64
			if err == nil && isScanner {
				sum1, err = scan(tx, &sc)
			}
			var wv int64
			if err == nil && !isScanner {
				wv, err = engine.GetVal(tx, AccountKey(0))
				wc.reads.Add(1)
			}
			bar.Await() // scanners have scanned, writers have read
			if !isScanner {
				if err == nil {
					if err = engine.PutVal(tx, AccountKey(0), wv+1); err == nil {
						wc.writes.Add(1)
						err = tx.Commit()
					} else {
						_ = tx.Abort()
					}
				} else if tx != nil {
					_ = tx.Abort()
				}
				wc.classify(err)
			}
			bar.Await() // writer commits are settled and visible
			if isScanner {
				if err == nil {
					var sum2 int64
					if sum2, err = scan(tx, &sc); err == nil {
						totalScans.Add(1)
						if sum1 != sum2 {
							unstable.Add(1)
						}
						err = tx.Commit()
					} else {
						_ = tx.Abort()
					}
				} else if tx != nil {
					_ = tx.Abort()
				}
				sc.classify(err)
			}
			bar.Await() // round boundary
		}
		bar.Leave()
	})
	wall := time.Since(start)
	return ScanResult{
		Scanners:      sc.metrics(wall),
		Writers:       wc.metrics(wall),
		TotalScans:    totalScans.Load(),
		UnstableScans: unstable.Load(),
	}
}

// SkewedTransfer is the contended cousin of Transfer: each transaction
// moves one unit from each of two source accounts to one destination, and
// sources are drawn from a small hot set with probability hotBias (0..1)
// — the skewed access pattern where first-committer-wins aborts
// concentrate. The total balance is invariant under every engine that
// prevents lost updates. Callers load accounts first (LoadAccounts).
func SkewedTransfer(db engine.DB, level engine.Level, accounts, hotKeys, workers, iters int, hotBias float64) Metrics {
	if hotKeys < 1 || hotKeys > accounts {
		hotKeys = 1
	}
	var c counters
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			pick := func() int {
				if rng.Float64() < hotBias {
					return rng.Intn(hotKeys)
				}
				return rng.Intn(accounts)
			}
			for i := 0; i < iters; i++ {
				a, b, dst := pick(), pick(), rng.Intn(accounts)
				if a == b || a == dst || b == dst {
					continue
				}
				err := runTxn(db, level, func(tx engine.Tx) error {
					var vals [3]int64
					for j, key := range [3]int{a, b, dst} {
						v, err := engine.GetVal(tx, AccountKey(key))
						if err != nil {
							return err
						}
						c.reads.Add(1)
						vals[j] = v
					}
					for j, key := range [3]int{a, b, dst} {
						delta := int64(-1)
						if j == 2 {
							delta = 2
						}
						if err := engine.PutVal(tx, AccountKey(key), vals[j]+delta); err != nil {
							return err
						}
						c.writes.Add(1)
					}
					return nil
				})
				c.classify(err)
			}
		}(int64(w)*7919 + 1)
	}
	wg.Wait()
	return c.metrics(time.Since(start))
}

// BatchIncrement runs workers transactions that each increment batch
// accounts. With disjoint=true every worker owns a private key range, so
// no transaction ever conflicts: every attempt must commit, and commit
// throughput is limited purely by the commit path — the scenario behind
// the shard-sweep benchmarks (a single global commit mutex flatlines it;
// striped latches scale it). With disjoint=false all workers share the
// range [0,batch), the fully contended baseline. Callers load accounts
// first (LoadAccounts with >= workers*batch accounts for disjoint mode).
func BatchIncrement(db engine.DB, level engine.Level, workers, iters, batch int, disjoint bool) Metrics {
	var c counters
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := 0
			if disjoint {
				base = w * batch
			}
			for i := 0; i < iters; i++ {
				err := runTxn(db, level, func(tx engine.Tx) error {
					for k := 0; k < batch; k++ {
						key := AccountKey(base + k)
						v, err := engine.GetVal(tx, key)
						if err != nil {
							return err
						}
						c.reads.Add(1)
						if err := engine.PutVal(tx, key, v+1); err != nil {
							return err
						}
						c.writes.Add(1)
					}
					return nil
				})
				c.classify(err)
			}
		}(w)
	}
	wg.Wait()
	return c.metrics(time.Since(start))
}
