// Lockstep locking-engine scenarios.
//
// The free-running generators exercise the striped MVCC commit path; the
// scenarios below exercise the striped lock manager, and they must do it
// deterministically on GOMAXPROCS=1 (the CI determinism gate). They are
// therefore driven by the schedule runner, whose lock-wait observer makes
// "this operation blocked" an observed fact rather than a timing guess:
//
//   - ReadLockFanIn: many readers share an S lock on one key per round
//     while a writer's X request fans in behind them — the contended
//     read-lock pattern. At the long-read-lock levels the writer blocks
//     exactly once per round; at the short-read-lock and multiversion
//     levels it never does.
//   - UpgradeDeadlockStorm: every session reads then writes the same key,
//     the classic S→X upgrade storm. Under the locking levels the
//     deterministic requester-is-victim rule leaves exactly one survivor
//     per round; under Snapshot Isolation first-committer-wins produces
//     the same 1-commit-per-round shape through aborts at commit instead.
//   - PredicateVsItemMix: a scanner holds a predicate lock while writers
//     insert matching and non-matching rows across stripes — the
//     cross-stripe predicate-vs-item conflict (phantom prevention) that
//     the lock manager's shared-exclusive gate exists for.
//
// Keys are spread over rounds (one fresh key per round) so every stripe of
// a striped lock manager sees traffic; the outcomes must be identical at
// every stripe count.
package workload

import (
	"fmt"
	"strings"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/predicate"
	"isolevel/internal/schedule"
)

func fanKey(r int) data.Key { return data.Key(fmt.Sprintf("fan:%d", r)) }

func stormKey(r int) data.Key { return data.Key(fmt.Sprintf("storm:%d", r)) }

// FanInResult reports a ReadLockFanIn run.
type FanInResult struct {
	Readers Metrics
	Writer  Metrics
	// WriterBlocked counts rounds in which the writer's update had to
	// wait behind the readers' Share locks. Long-read-lock levels
	// (REPEATABLE READ, SERIALIZABLE) block every round; short-read-lock
	// and multiversion levels never block.
	WriterBlocked int
}

// ReadLockFanIn runs `rounds` lockstep rounds; in each, `readers`
// transactions read one fresh key (sharing its S lock) and then a writer
// updates the same key, fanning in behind every reader. All transactions
// commit every round — the scenario measures blocking, not aborts.
func ReadLockFanIn(db engine.DB, level engine.Level, readers, rounds int) (FanInResult, error) {
	if readers < 1 {
		readers = 1
	}
	if rounds < 1 {
		rounds = 1
	}
	tuples := make([]data.Tuple, rounds)
	for r := range tuples {
		tuples[r] = data.Tuple{Key: fanKey(r), Row: data.Scalar(0)}
	}
	db.Load(tuples...)

	var steps []schedule.Step
	writerTxns := map[int]bool{}
	txn := 0
	for r := 0; r < rounds; r++ {
		key := fanKey(r)
		readerTxns := make([]int, readers)
		for i := range readerTxns {
			txn++
			t := txn
			readerTxns[i] = t
			steps = append(steps, schedule.OpStep(t, fmt.Sprintf("r%d[%s]", t, key), func(c *schedule.Ctx) (any, error) {
				return engine.GetVal(c.Tx, key)
			}))
		}
		txn++
		w := txn
		writerTxns[w] = true
		val := int64(r + 1)
		steps = append(steps, schedule.OpStep(w, fmt.Sprintf("w%d[%s]", w, key), func(c *schedule.Ctx) (any, error) {
			return nil, engine.PutVal(c.Tx, key, val)
		}))
		for _, t := range readerTxns {
			steps = append(steps, schedule.CommitStep(t))
		}
		steps = append(steps, schedule.CommitStep(w))
	}

	start := time.Now()
	res, err := schedule.Run(db, schedule.Options{Level: level}, steps)
	if err != nil {
		return FanInResult{}, err
	}
	wall := time.Since(start)
	var out FanInResult
	out.Writer, out.Readers = splitMetrics(res, writerTxns, wall)
	for _, st := range res.Steps {
		if writerTxns[st.TxN] && strings.HasPrefix(st.Name, "w") && st.Blocked {
			out.WriterBlocked++
		}
	}
	return out, nil
}

// UpgradeDeadlockStorm runs `rounds` lockstep rounds in which every one of
// `sessions` transactions reads one fresh key and then writes it — the
// classic S→X upgrade storm. At the long-read-lock locking levels the
// deterministic requester-is-victim rule kills every upgrader whose wait
// would close the cycle, leaving exactly one commit and sessions-1
// deadlock aborts per round; Snapshot Isolation reaches the same count
// through first-committer-wins aborts at commit time.
func UpgradeDeadlockStorm(db engine.DB, level engine.Level, sessions, rounds int) (Metrics, error) {
	if sessions < 2 {
		sessions = 2
	}
	if rounds < 1 {
		rounds = 1
	}
	tuples := make([]data.Tuple, rounds)
	for r := range tuples {
		tuples[r] = data.Tuple{Key: stormKey(r), Row: data.Scalar(0)}
	}
	db.Load(tuples...)

	var steps []schedule.Step
	txn := 0
	var c counters
	for r := 0; r < rounds; r++ {
		key := stormKey(r)
		roundTxns := make([]int, sessions)
		for i := range roundTxns {
			txn++
			t := txn
			roundTxns[i] = t
			steps = append(steps, schedule.OpStep(t, fmt.Sprintf("r%d[%s]", t, key), func(ctx *schedule.Ctx) (any, error) {
				v, err := engine.GetVal(ctx.Tx, key)
				if err == nil {
					c.reads.Add(1)
					ctx.Vars["v"] = v
				}
				return v, err
			}))
		}
		for _, t := range roundTxns {
			steps = append(steps, schedule.OpStep(t, fmt.Sprintf("w%d[%s]", t, key), func(ctx *schedule.Ctx) (any, error) {
				err := engine.PutVal(ctx.Tx, key, ctx.Int("v")+1)
				if err == nil {
					c.writes.Add(1)
				}
				return nil, err
			}))
		}
		for _, t := range roundTxns {
			steps = append(steps, schedule.CommitStep(t))
		}
	}

	start := time.Now()
	res, err := schedule.Run(db, schedule.Options{Level: level}, steps)
	if err != nil {
		return Metrics{}, err
	}
	m := c.metrics(time.Since(start))
	m.Commits = int64(len(res.Committed))
	m.Aborts = int64(len(res.AutoAborted))
	return m, nil
}

// PredItemResult reports a PredicateVsItemMix run.
type PredItemResult struct {
	Scanner Metrics
	Writers Metrics
	// MatchingInserts counts inserts whose row satisfies the scanner's
	// predicate; BlockedInserts counts how many of them had to wait on
	// the predicate lock. SERIALIZABLE blocks all of them (phantom
	// prevention across every stripe); every weaker level blocks none.
	MatchingInserts int
	BlockedInserts  int
}

// PredicateVsItemMix runs `rounds` lockstep rounds; in each, one scanner
// SELECTs `active == 1` and then `writers` transactions insert fresh rows,
// alternating matching (active=1) and non-matching (active=0) ones whose
// keys spread across lock-table stripes. Matching inserts are phantoms for
// the scanner: under SERIALIZABLE its long predicate lock blocks each of
// them in whatever stripe it lands, while non-matching inserts sail
// through.
func PredicateVsItemMix(db engine.DB, level engine.Level, writers, rounds int) (PredItemResult, error) {
	if writers < 1 {
		writers = 1
	}
	if rounds < 1 {
		rounds = 1
	}
	p := predicate.MustParse("active == 1")

	// One schedule.Run per round: Run drains every pending operation
	// before returning, so a round's inserts can never pipeline into the
	// next round's scan — that independence is what keeps the blocked
	// counts exact on GOMAXPROCS=1.
	var out PredItemResult
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var steps []schedule.Step
		matching := map[string]bool{} // names of matching insert steps
		const s = 1                   // scanner transaction number
		steps = append(steps, schedule.OpStep(s, "sel", func(ctx *schedule.Ctx) (any, error) {
			rows, err := ctx.Tx.Select(p)
			return len(rows), err
		}))
		for w := 0; w < writers; w++ {
			t := s + 1 + w
			key := data.Key(fmt.Sprintf("emp:%d:%d", r, w))
			active := int64(0)
			name := fmt.Sprintf("ins%d[%s]", t, key)
			if w%2 == 0 {
				active = 1
				matching[name] = true
			}
			steps = append(steps, schedule.OpStep(t, name, func(ctx *schedule.Ctx) (any, error) {
				return nil, ctx.Tx.Put(key, data.Row{"active": active})
			}))
		}
		steps = append(steps, schedule.CommitStep(s))
		for w := 0; w < writers; w++ {
			steps = append(steps, schedule.CommitStep(s+1+w))
		}
		res, err := schedule.Run(db, schedule.Options{Level: level}, steps)
		if err != nil {
			return PredItemResult{}, err
		}
		scan, write := splitMetrics(res, map[int]bool{s: true}, 0)
		out.Scanner.Commits += scan.Commits
		out.Scanner.Aborts += scan.Aborts
		out.Writers.Commits += write.Commits
		out.Writers.Aborts += write.Aborts
		out.MatchingInserts += len(matching)
		for _, st := range res.Steps {
			if matching[st.Name] && st.Blocked {
				out.BlockedInserts++
			}
		}
	}
	wall := time.Since(start)
	out.Scanner.WallClock, out.Writers.WallClock = wall, wall
	return out, nil
}

// PhantomStormResult reports a PhantomInsertStorm run.
type PhantomStormResult struct {
	Scanner Metrics
	Writers Metrics
	// PhantomsSeen counts rows the scanner's second SELECT saw beyond its
	// first — phantoms that got in between the two scans. SERIALIZABLE
	// admits none (under either phantom protocol: the gated predicate
	// table or striped key-range locks); REPEATABLE READ and below admit
	// every matching insert, because Table 2 gives them only short
	// predicate-read locks.
	PhantomsSeen int
	// BlockedInserts counts inserts that had to wait on the scanner's
	// phantom protection.
	BlockedInserts int
}

// PhantomInsertStorm runs `rounds` lockstep rounds; in each, one scanner
// SELECTs `val >= 100`, then `writers` transactions each insert a fresh
// matching row, then the scanner re-SELECTs and everyone commits. The
// phantom counts are exact at any GOMAXPROCS, shard count, and phantom
// protocol — the keyrange-vs-predicate differential for the paper's P3.
func PhantomInsertStorm(db engine.DB, level engine.Level, writers, rounds int) (PhantomStormResult, error) {
	if writers < 1 {
		writers = 1
	}
	if rounds < 1 {
		rounds = 1
	}
	p := predicate.MustParse(fmt.Sprintf("%s >= 100", data.ValField))
	db.Load(data.Tuple{Key: "storm:seed", Row: data.Scalar(100)})

	var out PhantomStormResult
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var steps []schedule.Step
		const s = 1
		var firstCount, secondCount int
		steps = append(steps, schedule.OpStep(s, "scan1", func(ctx *schedule.Ctx) (any, error) {
			rows, err := ctx.Tx.Select(p)
			firstCount = len(rows)
			return firstCount, err
		}))
		insertNames := map[string]bool{}
		for w := 0; w < writers; w++ {
			t := s + 1 + w
			key := data.Key(fmt.Sprintf("storm:%d:%d", r, w))
			name := fmt.Sprintf("ins%d[%s]", t, key)
			insertNames[name] = true
			steps = append(steps, schedule.OpStep(t, name, func(ctx *schedule.Ctx) (any, error) {
				return nil, ctx.Tx.Put(key, data.Scalar(100+int64(w)))
			}))
		}
		steps = append(steps, schedule.OpStep(s, "scan2", func(ctx *schedule.Ctx) (any, error) {
			rows, err := ctx.Tx.Select(p)
			secondCount = len(rows)
			return secondCount, err
		}))
		steps = append(steps, schedule.CommitStep(s))
		for w := 0; w < writers; w++ {
			steps = append(steps, schedule.CommitStep(s+1+w))
		}
		res, err := schedule.Run(db, schedule.Options{Level: level}, steps)
		if err != nil {
			return PhantomStormResult{}, err
		}
		scan, write := splitMetrics(res, map[int]bool{s: true}, 0)
		out.Scanner.Commits += scan.Commits
		out.Scanner.Aborts += scan.Aborts
		out.Writers.Commits += write.Commits
		out.Writers.Aborts += write.Aborts
		out.PhantomsSeen += secondCount - firstCount
		for _, st := range res.Steps {
			if insertNames[st.Name] && st.Blocked {
				out.BlockedInserts++
			}
		}
	}
	wall := time.Since(start)
	out.Scanner.WallClock, out.Writers.WallClock = wall, wall
	return out, nil
}

// RangeFanInResult reports a RangeScanVsInsertFanIn run.
type RangeFanInResult struct {
	Scanner Metrics
	Writers Metrics
	// InsideBlocked counts inserts into the scanned prefix range that had
	// to wait; OutsideTotal/OutsideBlocked the inserts landing outside it.
	// At SERIALIZABLE every inside insert blocks and — this is the
	// key-range locality claim — no outside insert ever does: under
	// keyrange protection the outside writers never touch a cross-stripe
	// gate, under the predicate table they conflict-check against the
	// scanner's predicate and pass.
	InsideTotal    int
	InsideBlocked  int
	OutsideTotal   int
	OutsideBlocked int
}

// RangeScanVsInsertFanIn runs `rounds` lockstep rounds; in each, one
// scanner SELECTs the key-prefix range `key ~ "acct:"` and holds it per
// the level's protocol while `writers` transactions fan in with inserts —
// even-numbered writers inside the prefix range, odd-numbered ones
// outside it. The blocked counts are exact at any GOMAXPROCS and shard
// count.
func RangeScanVsInsertFanIn(db engine.DB, level engine.Level, writers, rounds int) (RangeFanInResult, error) {
	if writers < 2 {
		writers = 2
	}
	if rounds < 1 {
		rounds = 1
	}
	p := predicate.MustParse(`key ~ "acct:"`)
	db.Load(data.Tuple{Key: "acct:seed", Row: data.Scalar(1)})

	var out RangeFanInResult
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var steps []schedule.Step
		const s = 1
		steps = append(steps, schedule.OpStep(s, "scan", func(ctx *schedule.Ctx) (any, error) {
			rows, err := ctx.Tx.Select(p)
			return len(rows), err
		}))
		inside := map[string]bool{}
		outside := map[string]bool{}
		for w := 0; w < writers; w++ {
			t := s + 1 + w
			var key data.Key
			name := ""
			if w%2 == 0 {
				key = data.Key(fmt.Sprintf("acct:%d:%d", r, w))
				name = fmt.Sprintf("in%d[%s]", t, key)
				inside[name] = true
			} else {
				key = data.Key(fmt.Sprintf("other:%d:%d", r, w))
				name = fmt.Sprintf("out%d[%s]", t, key)
				outside[name] = true
			}
			steps = append(steps, schedule.OpStep(t, name, func(ctx *schedule.Ctx) (any, error) {
				return nil, ctx.Tx.Put(key, data.Scalar(int64(w)))
			}))
		}
		steps = append(steps, schedule.CommitStep(s))
		for w := 0; w < writers; w++ {
			steps = append(steps, schedule.CommitStep(s+1+w))
		}
		res, err := schedule.Run(db, schedule.Options{Level: level}, steps)
		if err != nil {
			return RangeFanInResult{}, err
		}
		scan, write := splitMetrics(res, map[int]bool{s: true}, 0)
		out.Scanner.Commits += scan.Commits
		out.Scanner.Aborts += scan.Aborts
		out.Writers.Commits += write.Commits
		out.Writers.Aborts += write.Aborts
		out.InsideTotal += len(inside)
		out.OutsideTotal += len(outside)
		for _, st := range res.Steps {
			switch {
			case inside[st.Name] && st.Blocked:
				out.InsideBlocked++
			case outside[st.Name] && st.Blocked:
				out.OutsideBlocked++
			}
		}
	}
	wall := time.Since(start)
	out.Scanner.WallClock, out.Writers.WallClock = wall, wall
	return out, nil
}

// splitMetrics divides a schedule result's commit/abort counts between the
// transactions in `in` and the rest.
func splitMetrics(res *schedule.Result, in map[int]bool, wall time.Duration) (inM, outM Metrics) {
	inM.WallClock, outM.WallClock = wall, wall
	for t := range res.Committed {
		if in[t] {
			inM.Commits++
		} else {
			outM.Commits++
		}
	}
	for t := range res.AutoAborted {
		if in[t] {
			inM.Aborts++
		} else {
			outM.Aborts++
		}
	}
	return inM, outM
}
