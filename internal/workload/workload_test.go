package workload

import (
	"errors"
	"runtime"
	"testing"

	"isolevel/internal/engine"
	"isolevel/internal/locking"
	"isolevel/internal/oraclerc"
	"isolevel/internal/snapshot"
)

func TestTransferPreservesTotalSerializable(t *testing.T) {
	db := locking.NewDB()
	LoadAccounts(db, 8, 100)
	m := Transfer(db, engine.Serializable, 8, 4, 40)
	if m.Commits == 0 {
		t.Fatal("no commits")
	}
	if m.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", m)
	}
	if got := TotalBalance(db, 8); got != 800 {
		t.Fatalf("total = %d, want 800", got)
	}
}

func TestTransferPreservesTotalSnapshot(t *testing.T) {
	db := snapshot.NewDB()
	LoadAccounts(db, 8, 100)
	m := Transfer(db, engine.SnapshotIsolation, 8, 4, 40)
	if m.Commits == 0 {
		t.Fatal("no commits")
	}
	if got := TotalBalance(db, 8); got != 800 {
		t.Fatalf("total = %d, want 800 (FCW must prevent lost updates)", got)
	}
}

// At READ COMMITTED the same workload can lose updates — the total drifts.
// (Drift is probabilistic; we only assert the workload runs and commits.)
func TestTransferRunsAtReadCommitted(t *testing.T) {
	db := locking.NewDB()
	LoadAccounts(db, 4, 100)
	m := Transfer(db, engine.ReadCommitted, 4, 4, 30)
	if m.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestReadersVsWritersSnapshotReadersNeverAbort(t *testing.T) {
	db := snapshot.NewDB()
	LoadAccounts(db, 16, 100)
	readers, writers := ReadersVsWriters(db, engine.SnapshotIsolation, 16, 3, 3, 20)
	if readers.Aborts != 0 || readers.Errors != 0 {
		t.Fatalf("SI readers must never abort: %+v", readers)
	}
	if readers.Commits != 3*20 {
		t.Fatalf("reader commits = %d", readers.Commits)
	}
	if writers.Commits == 0 {
		t.Fatal("writers starved")
	}
}

func TestReadersVsWritersLockingCompletes(t *testing.T) {
	db := locking.NewDB()
	LoadAccounts(db, 8, 100)
	readers, writers := ReadersVsWriters(db, engine.Serializable, 8, 2, 2, 10)
	if readers.Commits+readers.Aborts != 2*10 {
		t.Fatalf("reader attempts = %d", readers.Commits+readers.Aborts)
	}
	if writers.Commits+writers.Aborts != 2*10 {
		t.Fatalf("writer attempts = %d", writers.Commits+writers.Aborts)
	}
	if readers.Errors != 0 || writers.Errors != 0 {
		t.Fatalf("unexpected errors: r=%+v w=%+v", readers, writers)
	}
}

func TestHotspotLockingSerializesWithoutLostUpdates(t *testing.T) {
	db := locking.NewDB()
	m := HotspotCounter(db, engine.Serializable, 4, 25)
	final := db.ReadCommittedRow("hot").Val()
	if final != m.Commits {
		t.Fatalf("hot = %d but commits = %d (every committed increment must stick)", final, m.Commits)
	}
}

func TestHotspotSnapshotAbortsButNeverLoses(t *testing.T) {
	// The lockstep driver forces every session's read to happen before any
	// session's commit, so the first-committer-wins outcome is exact on
	// every run — no scheduler luck required, even with GOMAXPROCS=1
	// (the free-running HotspotCounter never overlaps transactions on a
	// single-core host and the FCW path looks dead).
	const sessions, rounds = 8, 50
	db := snapshot.NewDB()
	m := HotspotCounterLockstep(db, engine.SnapshotIsolation, sessions, rounds)
	final := db.ReadCommittedRow("hot").Val()
	if final != m.Commits {
		t.Fatalf("hot = %d but commits = %d", final, m.Commits)
	}
	if m.Commits != rounds {
		t.Fatalf("commits = %d, want exactly %d (one winner per round)", m.Commits, rounds)
	}
	if m.Aborts != rounds*(sessions-1) {
		t.Fatalf("aborts = %d, want exactly %d (every other session loses FCW)", m.Aborts, rounds*(sessions-1))
	}
	if m.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", m)
	}
}

// The free-running hotspot generator keeps its original exactness
// invariant (committed increments never get lost) even though its abort
// count is scheduler-dependent.
func TestHotspotSnapshotFreeRunningNeverLoses(t *testing.T) {
	db := snapshot.NewDB()
	m := HotspotCounter(db, engine.SnapshotIsolation, 8, 50)
	final := db.ReadCommittedRow("hot").Val()
	if final != m.Commits {
		t.Fatalf("hot = %d but commits = %d", final, m.Commits)
	}
}

// Regression for the single-core flake: even when the runtime is pinned to
// one scheduler thread, the deterministic driver must still force
// write-write overlap and observe first-committer-wins aborts.
func TestHotspotLockstepSingleCore(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	db := snapshot.NewDB()
	m := HotspotCounterLockstep(db, engine.SnapshotIsolation, 4, 10)
	if m.Aborts < 1 {
		t.Fatalf("GOMAXPROCS=1 hotspot saw no FCW aborts: %+v", m)
	}
	if m.Commits != 10 || m.Aborts != 30 {
		t.Fatalf("lockstep outcome not exact under GOMAXPROCS=1: %+v", m)
	}
	if got := db.ReadCommittedRow("hot").Val(); got != m.Commits {
		t.Fatalf("hot = %d but commits = %d", got, m.Commits)
	}
}

// First-updater-wins is the eager ablation: same exact winner-per-round
// arithmetic, conflicts just surface at write time.
func TestHotspotLockstepFirstUpdaterWins(t *testing.T) {
	db := snapshot.NewDB(snapshot.FirstUpdaterWins())
	m := HotspotCounterLockstep(db, engine.SnapshotIsolation, 4, 20)
	if m.Commits != 20 {
		t.Fatalf("commits = %d, want 20", m.Commits)
	}
	if got := db.ReadCommittedRow("hot").Val(); got != 20 {
		t.Fatalf("hot = %d", got)
	}
}

func TestHotspotOracleRCLosesUpdates(t *testing.T) {
	db := oraclerc.NewDB()
	m := HotspotCounter(db, engine.ReadConsistency, 4, 25)
	final := db.ReadCommittedRow("hot").Val()
	// First-writer-wins does not protect the read-modify-write cycle: the
	// counter must not exceed commits, and with contention it usually loses
	// some. We assert only the direction (no phantom increments).
	if final > m.Commits {
		t.Fatalf("hot = %d exceeds commits = %d", final, m.Commits)
	}
	if m.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestLongRunningUpdaterAbortsUnderSI(t *testing.T) {
	db := snapshot.NewDB()
	LoadAccounts(db, 8, 0)
	committed, err, short := LongRunningUpdater(db, engine.SnapshotIsolation, 8, 3, 20)
	if short.Commits == 0 {
		t.Fatal("short writers starved")
	}
	if committed {
		t.Fatal("the long SI updater should lose first-committer-wins against the hot short writers")
	}
	if err == nil {
		t.Fatal("expected an error from the long transaction")
	}
}

// Under locking, the same scenario either commits the long transaction (by
// blocking the shorts) or kills a participant via deadlock — the paper's
// parenthetical: "this scenario would cause a real problem in locking
// implementations as well". What locking never does is fail the long
// transaction with a first-committer-wins conflict.
func TestLongRunningUpdaterLockingFailureModeIsDeadlockNotFCW(t *testing.T) {
	db := locking.NewDB()
	LoadAccounts(db, 8, 0)
	committed, err, short := LongRunningUpdater(db, engine.Serializable, 8, 2, 5)
	if !committed && !errors.Is(err, engine.ErrDeadlock) {
		t.Fatalf("long locking updater failed with %v; only deadlock is a legitimate locking outcome", err)
	}
	if errors.Is(err, engine.ErrWriteConflict) {
		t.Fatal("locking engines have no first-committer-wins aborts")
	}
	if short.Commits+short.Aborts != 2*5 {
		t.Fatalf("short attempts = %d", short.Commits+short.Aborts)
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := Metrics{Commits: 75, Aborts: 25, WallClock: 1e9}
	if m.AbortRate() != 0.25 {
		t.Fatalf("abort rate = %f", m.AbortRate())
	}
	if m.Throughput() != 75 {
		t.Fatalf("throughput = %f", m.Throughput())
	}
	if m.String() == "" {
		t.Fatal("empty string")
	}
	var zero Metrics
	if zero.AbortRate() != 0 || zero.Throughput() != 0 {
		t.Fatal("zero metrics division")
	}
}
