package workload

import (
	"fmt"
	"testing"

	"isolevel/internal/engine"
	"isolevel/internal/locking"
)

// The two phantom protocols must produce identical scenario outcomes at
// every level and stripe count; only the lock-manager internals differ
// (gate acquisitions vs striped range fragments).

func phantomDBs(shards int) map[string]*locking.DB {
	return map[string]*locking.DB{
		"predicate": locking.NewDB(locking.WithShards(shards)),
		"keyrange":  locking.NewDB(locking.WithShards(shards), locking.WithPhantomProtection(locking.PhantomKeyrange)),
	}
}

func TestPhantomInsertStormSerializableBlocksAll(t *testing.T) {
	const writers, rounds = 4, 3
	for _, shards := range lockingShardCounts() {
		for proto, db := range phantomDBs(shards) {
			t.Run(fmt.Sprintf("%s/shards=%d", proto, shards), func(t *testing.T) {
				res, err := PhantomInsertStorm(db, engine.Serializable, writers, rounds)
				if err != nil {
					t.Fatal(err)
				}
				if res.PhantomsSeen != 0 {
					t.Fatalf("%d phantoms at SERIALIZABLE, want 0", res.PhantomsSeen)
				}
				if res.BlockedInserts != writers*rounds {
					t.Fatalf("blocked %d of %d inserts", res.BlockedInserts, writers*rounds)
				}
				if res.Scanner.Commits != rounds || res.Writers.Commits != int64(writers*rounds) {
					t.Fatalf("commits: scanner=%d writers=%d", res.Scanner.Commits, res.Writers.Commits)
				}
				st := db.LockStats()
				if proto == "keyrange" {
					if st.GateAcquires != 0 {
						t.Fatalf("keyrange hot path took the gate %d times", st.GateAcquires)
					}
					if st.RangeGrants == 0 || st.GapWaits == 0 {
						t.Fatalf("range stats empty: %+v", st)
					}
				} else if st.GateAcquires == 0 {
					t.Fatal("predicate protocol reported zero gate acquisitions")
				}
			})
		}
	}
}

func TestPhantomInsertStormWeakLevelsAdmitAll(t *testing.T) {
	const writers, rounds = 3, 2
	for _, level := range []engine.Level{engine.ReadUncommitted, engine.ReadCommitted, engine.RepeatableRead} {
		for proto, db := range phantomDBs(8) {
			t.Run(fmt.Sprintf("%s/%s", proto, level), func(t *testing.T) {
				res, err := PhantomInsertStorm(db, level, writers, rounds)
				if err != nil {
					t.Fatal(err)
				}
				if res.PhantomsSeen != writers*rounds {
					t.Fatalf("phantoms=%d, want %d (Table 2 gives %s only short predicate locks)",
						res.PhantomsSeen, writers*rounds, level)
				}
				if res.BlockedInserts != 0 {
					t.Fatalf("blocked %d inserts at %s, want 0", res.BlockedInserts, level)
				}
			})
		}
	}
}

func TestRangeScanVsInsertFanIn(t *testing.T) {
	const writers, rounds = 6, 3
	for _, shards := range lockingShardCounts() {
		for proto, db := range phantomDBs(shards) {
			t.Run(fmt.Sprintf("%s/shards=%d", proto, shards), func(t *testing.T) {
				res, err := RangeScanVsInsertFanIn(db, engine.Serializable, writers, rounds)
				if err != nil {
					t.Fatal(err)
				}
				if res.InsideBlocked != res.InsideTotal || res.InsideTotal != (writers/2)*rounds {
					t.Fatalf("inside inserts blocked %d/%d", res.InsideBlocked, res.InsideTotal)
				}
				if res.OutsideBlocked != 0 {
					t.Fatalf("outside inserts blocked %d times, want 0 (range locality)", res.OutsideBlocked)
				}
				if res.Scanner.Commits != rounds || res.Writers.Commits != int64(writers*rounds) {
					t.Fatalf("commits: scanner=%d writers=%d", res.Scanner.Commits, res.Writers.Commits)
				}
				if proto == "keyrange" {
					if st := db.LockStats(); st.GateAcquires != 0 {
						t.Fatalf("keyrange fan-in took the gate %d times", st.GateAcquires)
					}
				}
			})
		}
	}
}
