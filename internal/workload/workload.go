// Package workload provides the concurrent workload generators behind the
// benchmark harness — the operational counterpart of §4.2's qualitative
// performance claims:
//
//   - SI's "optimistic approach has a clear concurrency advantage for
//     read-only transactions" (readers never block and never block
//     writers), measured by ReadersVsWriters;
//   - first-committer-wins converts write-write contention into aborts
//     where locking converts it into blocking, measured by HotspotCounter
//     abort/block rates across a contention sweep;
//   - "it probably isn't good for long-running update transactions
//     competing with high-contention short transactions, since the
//     long-running transactions are unlikely to be the first writer of
//     everything they write", measured by LongRunningUpdater.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/obs"
)

// Metrics aggregates the outcome of a workload run.
type Metrics struct {
	Commits   int64
	Aborts    int64 // prevention aborts (deadlock victims, FCW conflicts)
	Errors    int64 // unexpected errors
	Reads     int64
	Writes    int64
	WallClock time.Duration
}

// Throughput returns committed transactions per second.
func (m Metrics) Throughput() float64 {
	if m.WallClock <= 0 {
		return 0
	}
	return float64(m.Commits) / m.WallClock.Seconds()
}

// AbortRate returns aborts / (commits + aborts).
func (m Metrics) AbortRate() float64 {
	total := m.Commits + m.Aborts
	if total == 0 {
		return 0
	}
	return float64(m.Aborts) / float64(total)
}

func (m Metrics) String() string {
	return fmt.Sprintf("commits=%d aborts=%d (%.1f%%) reads=%d writes=%d in %v",
		m.Commits, m.Aborts, 100*m.AbortRate(), m.Reads, m.Writes, m.WallClock)
}

type counters struct {
	commits, aborts, errs, reads, writes atomic.Int64
}

func (c *counters) metrics(wall time.Duration) Metrics {
	return Metrics{
		Commits:   c.commits.Load(),
		Aborts:    c.aborts.Load(),
		Errors:    c.errs.Load(),
		Reads:     c.reads.Load(),
		Writes:    c.writes.Load(),
		WallClock: wall,
	}
}

// classify records the fate of a transaction attempt.
func (c *counters) classify(err error) {
	switch {
	case err == nil:
		c.commits.Add(1)
	case engine.IsPrevention(err):
		c.aborts.Add(1)
	default:
		c.errs.Add(1)
	}
}

// AccountKey names the i-th account row.
func AccountKey(i int) data.Key { return data.Key(fmt.Sprintf("acct:%d", i)) }

// LoadAccounts installs n accounts with the given starting balance.
func LoadAccounts(db engine.DB, n int, balance int64) {
	tuples := make([]data.Tuple, n)
	for i := 0; i < n; i++ {
		tuples[i] = data.Tuple{Key: AccountKey(i), Row: data.Scalar(balance)}
	}
	db.Load(tuples...)
}

// runTxn executes one transaction attempt with automatic rollback on error.
// Engines that expose an observability sink (Obs() *obs.Sink) get the whole
// attempt's latency recorded into the sink's txn_latency histogram; the
// interface assertion keeps workload decoupled from the concrete engines.
func runTxn(db engine.DB, level engine.Level, body func(tx engine.Tx) error) error {
	var sink *obs.Sink
	if o, ok := db.(interface{ Obs() *obs.Sink }); ok {
		sink = o.Obs()
	}
	start := sink.Now()
	err := runTxnBody(db, level, body)
	sink.RecordTxn(start)
	return err
}

func runTxnBody(db engine.DB, level engine.Level, body func(tx engine.Tx) error) error {
	tx, err := db.Begin(level)
	if err != nil {
		return err
	}
	if err := body(tx); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// Transfer runs the classic bank transfer workload: each of the workers
// goroutines performs iters transactions moving 1 unit between two randomly
// chosen accounts. The total balance is an invariant every engine must
// preserve through commits (lost updates would break it).
func Transfer(db engine.DB, level engine.Level, accounts, workers, iters int) Metrics {
	var c counters
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				from := AccountKey(rng.Intn(accounts))
				to := AccountKey(rng.Intn(accounts))
				if from == to {
					continue
				}
				err := runTxn(db, level, func(tx engine.Tx) error {
					fv, err := engine.GetVal(tx, from)
					if err != nil {
						return err
					}
					tv, err := engine.GetVal(tx, to)
					if err != nil {
						return err
					}
					c.reads.Add(2)
					if err := engine.PutVal(tx, from, fv-1); err != nil {
						return err
					}
					if err := engine.PutVal(tx, to, tv+1); err != nil {
						return err
					}
					c.writes.Add(2)
					return nil
				})
				c.classify(err)
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	return c.metrics(time.Since(start))
}

// TotalBalance sums all account balances in the committed state.
func TotalBalance(db engine.DB, accounts int) int64 {
	var total int64
	for i := 0; i < accounts; i++ {
		if row := db.ReadCommittedRow(AccountKey(i)); row != nil {
			total += row.Val()
		}
	}
	return total
}

// ReadersVsWriters runs readerWorkers read-only scans (each reading every
// account once) against writerWorkers update transactions on random
// accounts, and reports separate metrics for each population. Under SI the
// readers neither block nor abort regardless of writer count; under the
// long-read-lock locking levels they serialize against the writers.
func ReadersVsWriters(db engine.DB, level engine.Level, accounts, readerWorkers, writerWorkers, iters int) (readers, writers Metrics) {
	var rc, wc counters
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < readerWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := runTxn(db, level, func(tx engine.Tx) error {
					for a := 0; a < accounts; a++ {
						if _, err := engine.GetVal(tx, AccountKey(a)); err != nil && !errors.Is(err, engine.ErrNotFound) {
							return err
						}
						rc.reads.Add(1)
					}
					return nil
				})
				rc.classify(err)
			}
		}(int64(w) + 1)
	}
	for w := 0; w < writerWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed * 97))
			for i := 0; i < iters; i++ {
				key := AccountKey(rng.Intn(accounts))
				err := runTxn(db, level, func(tx engine.Tx) error {
					v, err := engine.GetVal(tx, key)
					if err != nil {
						return err
					}
					wc.reads.Add(1)
					wc.writes.Add(1)
					return engine.PutVal(tx, key, v+1)
				})
				wc.classify(err)
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	wall := time.Since(start)
	return rc.metrics(wall), wc.metrics(wall)
}

// HotspotCounter increments a single hot row from many workers — maximal
// write-write contention. Locking levels serialize on the write lock;
// SI turns the conflicts into first-committer-wins aborts.
func HotspotCounter(db engine.DB, level engine.Level, workers, iters int) Metrics {
	db.Load(data.Tuple{Key: "hot", Row: data.Scalar(0)})
	var c counters
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := runTxn(db, level, func(tx engine.Tx) error {
					v, err := engine.GetVal(tx, "hot")
					if err != nil {
						return err
					}
					c.reads.Add(1)
					c.writes.Add(1)
					return engine.PutVal(tx, "hot", v+1)
				})
				c.classify(err)
			}
		}()
	}
	wg.Wait()
	return c.metrics(time.Since(start))
}

// LongRunningUpdater runs one long update transaction that touches span
// accounts (reading then writing each, with the writes at the end), while
// short hot writers hammer the same accounts. It reports whether the long
// transaction managed to commit and the short writers' metrics. Under SI
// the long transaction is "unlikely to be the first writer of everything it
// writes" and aborts; under locking it blocks the short writers instead.
func LongRunningUpdater(db engine.DB, level engine.Level, span, shortWorkers, shortIters int) (longCommitted bool, longErr error, short Metrics) {
	var c counters
	start := time.Now()
	var wg sync.WaitGroup
	startShort := make(chan struct{})
	var startOnce sync.Once
	release := func() { startOnce.Do(func() { close(startShort) }) }
	defer wg.Wait()
	defer release() // even if the long transaction fails before releasing
	for w := 0; w < shortWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			<-startShort
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < shortIters; i++ {
				key := AccountKey(rng.Intn(span))
				err := runTxn(db, level, func(tx engine.Tx) error {
					v, err := engine.GetVal(tx, key)
					if err != nil {
						return err
					}
					return engine.PutVal(tx, key, v+1)
				})
				c.classify(err)
			}
		}(int64(w) + 1)
	}

	longErr = runTxn(db, level, func(tx engine.Tx) error {
		// Read everything first.
		vals := make([]int64, span)
		for a := 0; a < span; a++ {
			v, err := engine.GetVal(tx, AccountKey(a))
			if err != nil {
				return err
			}
			vals[a] = v
		}
		// Let the short transactions race while the long one is mid-flight.
		release()
		time.Sleep(10 * time.Millisecond)
		for a := 0; a < span; a++ {
			if err := engine.PutVal(tx, AccountKey(a), vals[a]+100); err != nil {
				return err
			}
		}
		return nil
	})
	longCommitted = longErr == nil
	wg.Wait()
	return longCommitted, longErr, c.metrics(time.Since(start))
}
