package workload

import (
	"fmt"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/locking"
)

// EscalationStorm's counts must be exact functions of the DB's geometry:
// per round, one escalation per stripe holding >= threshold keys, one
// blocked write per writer whose key hashes into an escalated stripe, and
// zero of both with escalation off — at every shard count, with the gate
// never taken.
func TestEscalationStormExactCounts(t *testing.T) {
	const keys, writers, rounds = 24, 8, 3
	for _, shards := range lockingShardCounts() {
		for _, threshold := range []int{0, 2, 4} {
			t.Run(fmt.Sprintf("shards=%d/threshold=%d", shards, threshold), func(t *testing.T) {
				opts := []locking.Option{
					locking.WithShards(shards),
					locking.WithPhantomProtection(locking.PhantomKeyrange),
				}
				if threshold > 0 {
					opts = append(opts, locking.WithEscalation(threshold))
				}
				db := locking.NewDB(opts...)
				res, err := EscalationStorm(db, engine.Serializable, keys, writers, rounds)
				if err != nil {
					t.Fatal(err)
				}
				striper := data.NewStriper(db.ShardCount())
				perStripe := map[int]int{}
				for i := 0; i < keys; i++ {
					perStripe[striper.Index(escKey(i))]++
				}
				escalated := map[int]bool{}
				if threshold > 0 {
					for sp, n := range perStripe {
						if n >= threshold {
							escalated[sp] = true
						}
					}
				}
				wantEsc := int64(rounds * len(escalated))
				wantBlocked := 0
				for w := 0; w < writers; w++ {
					if escalated[striper.Index(escKey(w))] {
						wantBlocked += rounds
					}
				}
				gotStripes, _ := EscalatedStripes(keys, db.ShardCount(), threshold)
				if gotStripes != len(escalated) {
					t.Fatalf("EscalatedStripes = %d, want %d", gotStripes, len(escalated))
				}
				if res.Escalations != wantEsc {
					t.Fatalf("Escalations = %d, want %d", res.Escalations, wantEsc)
				}
				if res.BlockedWrites != wantBlocked {
					t.Fatalf("BlockedWrites = %d, want %d", res.BlockedWrites, wantBlocked)
				}
				if res.GateAcquires != 0 {
					t.Fatalf("GateAcquires = %d, want 0", res.GateAcquires)
				}
				if res.Scanner.Commits != rounds || res.Writers.Commits != int64(writers*rounds) {
					t.Fatalf("commits: scanner=%d writers=%d", res.Scanner.Commits, res.Writers.Commits)
				}
			})
		}
	}
}
