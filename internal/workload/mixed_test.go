package workload

import (
	"testing"

	"isolevel/internal/engine"
	"isolevel/internal/locking"
	"isolevel/internal/mvcc"
)

// TestMixedDirtyReadFanOutExact is the mixed-level determinism gate: the
// Degree 1 writer vs CS/RR/SER readers scenario must produce exactly the
// same counts on every run, at any GOMAXPROCS (CI runs this package with
// GOMAXPROCS=1) and any lock-table stripe count, including under -race.
func TestMixedDirtyReadFanOutExact(t *testing.T) {
	const rounds = 20
	for _, shards := range []int{1, 4, 16} {
		db := locking.NewDB(locking.WithShards(shards))
		res, err := MixedDirtyReadFanOut(db, rounds)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.DirtyReads != rounds {
			t.Errorf("shards=%d: dirty reads = %d, want %d (the RU witness must see every uncommitted write)",
				shards, res.DirtyReads, rounds)
		}
		if want := 3 * rounds; res.BlockedReads != want {
			t.Errorf("shards=%d: blocked reads = %d, want %d (CS, RR and SER must block every round)",
				shards, res.BlockedReads, want)
		}
		if want := 3 * rounds; res.RestoredReads != want {
			t.Errorf("shards=%d: restored reads = %d, want %d (no locked level may see the rolled-back value)",
				shards, res.RestoredReads, want)
		}
	}
}

// TestHotspotCounterLockstepLevels drives mixed SNAPSHOT ISOLATION and
// READ CONSISTENCY sessions against one hot row of the unified mv engine.
// The barrier guarantees read-write overlap every round; RC sessions
// (first-writer-wins) always commit, SI sessions commit only when they
// win first-committer-wins against the round's other committers.
func TestHotspotCounterLockstepLevels(t *testing.T) {
	const rounds = 25
	levels := []engine.Level{
		engine.SnapshotIsolation, engine.SnapshotIsolation,
		engine.ReadConsistency, engine.ReadConsistency,
	}
	db := mvcc.NewDB()
	m := HotspotCounterLockstepLevels(db, levels, rounds)
	attempts := int64(len(levels) * rounds)
	if m.Commits+m.Aborts != attempts {
		t.Fatalf("commits %d + aborts %d != attempts %d", m.Commits, m.Aborts, attempts)
	}
	if m.Errors != 0 {
		t.Fatalf("unexpected errors: %d", m.Errors)
	}
	// The RC sessions never abort (their writes block instead), so at
	// least half the attempts commit; every abort is an SI session losing
	// first-committer-wins.
	if minCommits := int64(2 * rounds); m.Commits < minCommits {
		t.Errorf("commits = %d, want >= %d (RC sessions must always commit)", m.Commits, minCommits)
	}
	counter := db.ReadCommittedRow("hot").Val()
	if counter < 1 || counter > m.Commits {
		t.Errorf("counter = %d, commits = %d: conservation violated", counter, m.Commits)
	}
}
