// Mixed isolation-level scenarios: transactions at different Table 2
// degrees interleaving in one scheduler, the per-transaction framing the
// paper's histories assume. Two entry points:
//
//   - MixedDirtyReadFanOut drives the locking engine through the schedule
//     runner with a per-transaction level assignment
//     (schedule.Options.PerTx): a Degree 1 (READ UNCOMMITTED) hot writer
//     against CURSOR STABILITY, REPEATABLE READ and SERIALIZABLE readers
//     plus one unlocked READ UNCOMMITTED witness. The outcome is exact at
//     any GOMAXPROCS and shard count — the CI determinism gate for mixed
//     locking, like the stripe scenarios in locking.go.
//   - HotspotCounterLockstepLevels is the per-client-level variant of the
//     lockstep barrier driver: session s runs every round at levels[s],
//     so free-running mixed workloads (SI vs RC on the unified mv engine
//     above all) get guaranteed read-write overlap per round.
package workload

import (
	"fmt"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/schedule"
)

func mixKey(r int) data.Key { return data.Key(fmt.Sprintf("mix:%d", r)) }

// MixedFanOutResult reports a MixedDirtyReadFanOut run.
type MixedFanOutResult struct {
	Rounds int
	// DirtyReads counts rounds in which the READ UNCOMMITTED witness
	// observed the writer's uncommitted value (expected: every round).
	DirtyReads int
	// BlockedReads counts reader steps that had to wait on the writer's
	// long write lock (expected: the CS, RR and SER readers, every round).
	BlockedReads int
	// RestoredReads counts blocked readers that then observed the rolled-
	// back (restored) value once the writer aborted (expected: all of
	// them — none of the locked levels ever sees dirty data from a
	// degree >= 1 writer).
	RestoredReads int
}

// MixedDirtyReadFanOut runs `rounds` schedule-runner rounds on a locking
// engine. In each round, on a fresh key loaded with 0:
//
//	w[k=100+r]   READ UNCOMMITTED writer takes its long write lock
//	r[k]         READ UNCOMMITTED witness reads through it (dirty: 100+r)
//	r[k] x3      CS / RR / SER readers block on the write lock
//	a(writer)    rollback restores 0 and releases the lock
//	             the blocked readers resume and read 0
//	c(readers)
//
// Every count in the result is exact: the runner's lock-wait observer
// makes "blocked" an observed fact, and the per-transaction levels ride
// schedule.Options.PerTx. Fresh keys per round spread the traffic over
// every lock-table stripe, so the outcome must be identical at any shard
// count.
func MixedDirtyReadFanOut(db engine.DB, rounds int) (MixedFanOutResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	tuples := make([]data.Tuple, rounds)
	for r := range tuples {
		tuples[r] = data.Tuple{Key: mixKey(r), Row: data.Scalar(0)}
	}
	db.Load(tuples...)

	lockedLevels := []engine.Level{engine.CursorStability, engine.RepeatableRead, engine.Serializable}
	perTx := map[int]engine.Level{}
	var steps []schedule.Step
	type readStep struct {
		name  string
		dirty bool // the unlocked witness
	}
	reads := map[string]readStep{}
	txn := 0
	for r := 0; r < rounds; r++ {
		key := mixKey(r)
		dirtyVal := int64(100 + r)

		txn++
		writer := txn
		perTx[writer] = engine.ReadUncommitted
		steps = append(steps, schedule.OpStep(writer, fmt.Sprintf("w%d[%s]", writer, key), func(c *schedule.Ctx) (any, error) {
			return nil, engine.PutVal(c.Tx, key, dirtyVal)
		}))

		txn++
		witness := txn
		perTx[witness] = engine.ReadUncommitted
		name := fmt.Sprintf("r%d[%s]", witness, key)
		reads[name] = readStep{name: name, dirty: true}
		steps = append(steps, schedule.OpStep(witness, name, func(c *schedule.Ctx) (any, error) {
			return engine.GetVal(c.Tx, key)
		}))

		readers := make([]int, len(lockedLevels))
		for i, lvl := range lockedLevels {
			txn++
			t := txn
			perTx[t] = lvl
			readers[i] = t
			name := fmt.Sprintf("r%d[%s]", t, key)
			reads[name] = readStep{name: name}
			steps = append(steps, schedule.OpStep(t, name, func(c *schedule.Ctx) (any, error) {
				return engine.GetVal(c.Tx, key)
			}))
		}

		steps = append(steps, schedule.AbortStep(writer))
		steps = append(steps, schedule.CommitStep(witness))
		for _, t := range readers {
			steps = append(steps, schedule.CommitStep(t))
		}
	}

	res, err := schedule.Run(db, schedule.Options{Level: engine.ReadUncommitted, PerTx: perTx}, steps)
	if err != nil {
		return MixedFanOutResult{}, err
	}
	out := MixedFanOutResult{Rounds: rounds}
	for _, st := range res.Steps {
		rs, ok := reads[st.Name]
		if !ok {
			continue
		}
		v, _ := st.Value.(int64)
		if rs.dirty {
			if !st.Blocked && v >= 100 {
				out.DirtyReads++
			}
			continue
		}
		if st.Blocked {
			out.BlockedReads++
			if v == 0 {
				out.RestoredReads++
			}
		}
	}
	return out, nil
}

// HotspotCounterLockstepLevels is HotspotCounterLockstep with a
// per-client level assignment: session s runs all its rounds at
// levels[s] (one session per entry). Sessions rendezvous at the barrier
// between their reads and their writes exactly like the uniform variant,
// so the write sets of every round overlap in time regardless of
// GOMAXPROCS — the guaranteed-overlap harness for mixed SI/RC traffic on
// the unified multiversion engine, and for mixed-degree locking traffic.
func HotspotCounterLockstepLevels(db engine.DB, levels []engine.Level, rounds int) Metrics {
	db.Load(data.Tuple{Key: "hot", Row: data.Scalar(0)})
	var c counters
	start := time.Now()
	RunInterleaved(len(levels), func(sess int, bar *schedule.Barrier) {
		level := levels[sess]
		for r := 0; r < rounds; r++ {
			var v int64
			tx, err := db.Begin(level)
			if err == nil {
				v, err = engine.GetVal(tx, "hot")
				c.reads.Add(1)
			}
			bar.Await() // every session has read; nobody has written
			if err == nil {
				if err = engine.PutVal(tx, "hot", v+1); err == nil {
					c.writes.Add(1)
					err = tx.Commit()
				} else {
					_ = tx.Abort()
				}
			} else if tx != nil {
				_ = tx.Abort()
			}
			c.classify(err)
			bar.Await() // round boundary: commits settled before the next reads
		}
		bar.Leave()
	})
	return c.metrics(time.Since(start))
}
