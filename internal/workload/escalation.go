// EscalationStorm: the lockstep demonstration of key-range lock
// escalation's coarsened blocking.
package workload

import (
	"fmt"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/lock"
	"isolevel/internal/predicate"
	"isolevel/internal/schedule"
)

func escKey(i int) data.Key { return data.Key(fmt.Sprintf("esc:%03d", i)) }

// EscalationStormResult reports an EscalationStorm run. All counts are
// exact at any GOMAXPROCS — the scenario is schedule-driven — and depend
// only on the DB's shard count and escalation threshold.
type EscalationStormResult struct {
	Scanner Metrics
	Writers Metrics
	// Escalations is the lock manager's escalation-counter delta over the
	// run: with threshold t > 0, exactly one per lock stripe holding >= t
	// of the table's keys, per round (the scanner's whole-space scan
	// installs its fragments fresh each round and escalates at install).
	Escalations int64
	// GateAcquires is the manager's exclusive-gate counter after the run:
	// 0 on the keyrange protocol, escalated or not — escalation coarsens
	// within the striped structures, it never reintroduces the gate.
	GateAcquires int64
	// BlockedWrites counts writer updates that had to wait for the
	// scanner. The writers' values never satisfy the scanner's predicate,
	// so the exact (escalation-off) protocol blocks none of them; a
	// coarse escalated stripe entry blocks every other-transaction write
	// in its stripe, so with escalation on exactly the writers whose keys
	// hash into escalated stripes block — precision traded for fragment
	// population, measured.
	BlockedWrites int
}

// lockStatser is the corner of *locking.DB the scenario needs for its
// exact counter assertions.
type lockStatser interface {
	LockStats() lock.Stats
}

// EscalatedStripes returns how many of `shards` lock stripes hold at
// least `threshold` of the first `keys` EscalationStorm keys — the
// per-round escalation count a storm over a DB with that geometry must
// produce (0 when escalation is off). Exported so tests and benchmarks
// derive their expected counts from the same striping the managers use.
func EscalatedStripes(keys, shards, threshold int) (stripes, coveredKeys int) {
	if threshold <= 0 {
		return 0, 0
	}
	striper := data.NewStriper(shards)
	perStripe := make(map[int]int, shards)
	for i := 0; i < keys; i++ {
		perStripe[striper.Index(escKey(i))]++
	}
	for _, n := range perStripe {
		if n >= threshold {
			stripes++
			coveredKeys += n
		}
	}
	return stripes, coveredKeys
}

// EscalationStorm runs `rounds` lockstep rounds against a pre-configured
// DB (shards and escalation threshold are the DB's): `keys` rows are
// loaded up front; in each round one scanner SELECTs `val >= 100` — which
// matches nothing, but at SERIALIZABLE installs whole-space key-range
// protection — and then `writers` transactions each update one fixed
// existing key to a value that also never matches. The scanner then
// commits and the writers drain. Under the exact keyrange protocol the
// image-refined fragments admit every update concurrently; under
// escalation the coarse stripe entries block exactly the writers in
// escalated stripes.
func EscalationStorm(db engine.DB, level engine.Level, keys, writers, rounds int) (EscalationStormResult, error) {
	if keys < 1 {
		keys = 1
	}
	if writers < 1 {
		writers = 1
	}
	if writers > keys {
		writers = keys
	}
	if rounds < 1 {
		rounds = 1
	}
	p := predicate.MustParse(fmt.Sprintf("%s >= 100", data.ValField))
	for i := 0; i < keys; i++ {
		db.Load(data.Tuple{Key: escKey(i), Row: data.Scalar(1)})
	}
	var startStats lock.Stats
	statser, hasStats := db.(lockStatser)
	if hasStats {
		startStats = statser.LockStats()
	}

	var out EscalationStormResult
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var steps []schedule.Step
		const s = 1
		steps = append(steps, schedule.OpStep(s, "scan", func(ctx *schedule.Ctx) (any, error) {
			rows, err := ctx.Tx.Select(p)
			return len(rows), err
		}))
		writeNames := map[string]bool{}
		for w := 0; w < writers; w++ {
			t := s + 1 + w
			key := escKey(w)
			name := fmt.Sprintf("upd%d[%s]", t, key)
			writeNames[name] = true
			val := int64(2 + r)
			steps = append(steps, schedule.OpStep(t, name, func(ctx *schedule.Ctx) (any, error) {
				return nil, ctx.Tx.Put(key, data.Scalar(val))
			}))
		}
		steps = append(steps, schedule.CommitStep(s))
		for w := 0; w < writers; w++ {
			steps = append(steps, schedule.CommitStep(s+1+w))
		}
		res, err := schedule.Run(db, schedule.Options{Level: level}, steps)
		if err != nil {
			return EscalationStormResult{}, err
		}
		scan, write := splitMetrics(res, map[int]bool{s: true}, 0)
		out.Scanner.Commits += scan.Commits
		out.Scanner.Aborts += scan.Aborts
		out.Writers.Commits += write.Commits
		out.Writers.Aborts += write.Aborts
		for _, st := range res.Steps {
			if writeNames[st.Name] && st.Blocked {
				out.BlockedWrites++
			}
		}
	}
	wall := time.Since(start)
	out.Scanner.WallClock, out.Writers.WallClock = wall, wall
	if hasStats {
		end := statser.LockStats()
		out.Escalations = end.Escalations - startStats.Escalations
		out.GateAcquires = end.GateAcquires
	}
	return out, nil
}
