package workload

import (
	"testing"

	"isolevel/internal/engine"
	"isolevel/internal/oraclerc"
	"isolevel/internal/snapshot"
)

func TestSnapshotScanStableUnderSI(t *testing.T) {
	db := snapshot.NewDB()
	LoadAccounts(db, 8, 100)
	res := SnapshotScanVsHotWriters(db, engine.SnapshotIsolation, 8, 2, 3, 15)
	if res.TotalScans == 0 {
		t.Fatal("no scans completed")
	}
	if res.UnstableScans != 0 {
		t.Fatalf("SI snapshot scans must be stable: %d/%d unstable", res.UnstableScans, res.TotalScans)
	}
	if res.Scanners.Aborts != 0 || res.Scanners.Errors != 0 {
		t.Fatalf("SI read-only scanners must never abort: %+v", res.Scanners)
	}
	// Exactly one writer wins each round (same FCW arithmetic as the
	// hotspot lockstep).
	if res.Writers.Commits != 15 {
		t.Fatalf("writer commits = %d, want 15", res.Writers.Commits)
	}
	if res.Writers.Aborts != 15*2 {
		t.Fatalf("writer aborts = %d, want 30", res.Writers.Aborts)
	}
}

// Under statement-snapshot Read Consistency the same driver must observe
// unstable scans: each re-scan takes a fresh statement snapshot that
// includes the writer commit the rendezvous guaranteed in between. This
// is §4.3's P2/A5A behavior made deterministic.
func TestSnapshotScanUnstableUnderReadConsistency(t *testing.T) {
	db := oraclerc.NewDB()
	LoadAccounts(db, 8, 100)
	res := SnapshotScanVsHotWriters(db, engine.ReadConsistency, 8, 2, 2, 10)
	if res.TotalScans == 0 {
		t.Fatal("no scans completed")
	}
	if res.UnstableScans != res.TotalScans {
		t.Fatalf("RC re-scans should all see the guaranteed interleaved commit: %d/%d unstable",
			res.UnstableScans, res.TotalScans)
	}
}

func TestSkewedTransferPreservesTotalSnapshot(t *testing.T) {
	db := snapshot.NewDB()
	LoadAccounts(db, 16, 100)
	m := SkewedTransfer(db, engine.SnapshotIsolation, 16, 2, 4, 50, 0.8)
	if m.Commits == 0 {
		t.Fatal("no commits")
	}
	if m.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", m)
	}
	if got := TotalBalance(db, 16); got != 16*100 {
		t.Fatalf("total = %d, want %d (FCW must prevent lost updates)", got, 16*100)
	}
}

func TestBatchIncrementDisjointAllCommit(t *testing.T) {
	const workers, iters, batch = 4, 25, 4
	db := snapshot.NewDB()
	LoadAccounts(db, workers*batch, 0)
	m := BatchIncrement(db, engine.SnapshotIsolation, workers, iters, batch, true)
	if m.Aborts != 0 || m.Errors != 0 {
		t.Fatalf("disjoint write sets must never conflict: %+v", m)
	}
	if m.Commits != workers*iters {
		t.Fatalf("commits = %d, want %d", m.Commits, workers*iters)
	}
	for w := 0; w < workers; w++ {
		for k := 0; k < batch; k++ {
			if got := db.ReadCommittedRow(AccountKey(w*batch + k)).Val(); got != iters {
				t.Fatalf("acct %d = %d, want %d", w*batch+k, got, iters)
			}
		}
	}
}

func TestBatchIncrementContendedStaysExact(t *testing.T) {
	const workers, iters, batch = 4, 15, 3
	db := snapshot.NewDB()
	LoadAccounts(db, batch, 0)
	m := BatchIncrement(db, engine.SnapshotIsolation, workers, iters, batch, false)
	if m.Errors != 0 {
		t.Fatalf("unexpected errors: %+v", m)
	}
	// Every committed batch bumps all batch keys together, so each key
	// must equal the commit count exactly — a torn (half-installed) batch
	// or a lost update would break this.
	for k := 0; k < batch; k++ {
		if got := db.ReadCommittedRow(AccountKey(k)).Val(); got != m.Commits {
			t.Fatalf("acct %d = %d but commits = %d", k, got, m.Commits)
		}
	}
}
