// Deterministic interleaving driver.
//
// The free-running generators in this package (Transfer, HotspotCounter,
// ...) rely on the Go scheduler to overlap transactions. On a single-core
// host that reliance fails: a whole read-modify-write transaction fits in
// one scheduler quantum, transactions execute back to back, and the
// contention phenomena the paper predicts — first-committer-wins aborts
// above all — simply never occur (HISTEX makes the same observation:
// isolation tests must force interleavings, not hope for them).
//
// The driver below forces the overlap. Sessions run one goroutine each
// and rendezvous at a schedule.Barrier between the read phase and the
// write/commit phase of every round, so every session's reads happen
// before any session's commit — guaranteed write-write overlap on every
// round, independent of GOMAXPROCS. Outcomes become deterministic for the
// multiversion engines: under Snapshot Isolation exactly one session per
// round wins first-committer-wins and the rest abort.
package workload

import (
	"sync"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/schedule"
)

// RunInterleaved runs sessions concurrent session goroutines that share a
// step barrier. Every session must call bar.Await the same number of
// times (or bar.Leave when bailing out early); the driver returns when
// all sessions finish.
func RunInterleaved(sessions int, fn func(sess int, bar *schedule.Barrier)) {
	bar := schedule.NewBarrier(sessions)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fn(s, bar)
		}(s)
	}
	wg.Wait()
}

// HotspotCounterLockstep is the deterministic-interleaving variant of
// HotspotCounter: sessions increment one hot row in lockstep rounds. In
// each round every session reads the counter, the sessions rendezvous,
// and only then do they all write and commit — so the write sets of a
// round always overlap in time.
//
// Under Snapshot Isolation the outcome is exact on every run, even with
// GOMAXPROCS=1: per round exactly one session commits and sessions-1
// lose first-committer-wins, so Commits == rounds, Aborts ==
// rounds*(sessions-1), and the final counter equals Commits. The locking
// engines resolve each round's read-to-write upgrade race via deadlock
// detection instead (a mix of commits and deadlock aborts).
func HotspotCounterLockstep(db engine.DB, level engine.Level, sessions, rounds int) Metrics {
	db.Load(data.Tuple{Key: "hot", Row: data.Scalar(0)})
	var c counters
	start := time.Now()
	RunInterleaved(sessions, func(sess int, bar *schedule.Barrier) {
		for r := 0; r < rounds; r++ {
			var v int64
			tx, err := db.Begin(level)
			if err == nil {
				v, err = engine.GetVal(tx, "hot")
				c.reads.Add(1)
			}
			bar.Await() // every session has read; nobody has written
			if err == nil {
				if err = engine.PutVal(tx, "hot", v+1); err == nil {
					c.writes.Add(1)
					err = tx.Commit()
				} else {
					_ = tx.Abort()
				}
			} else if tx != nil {
				_ = tx.Abort()
			}
			c.classify(err)
			bar.Await() // round boundary: commits settled before the next reads
		}
		bar.Leave()
	})
	return c.metrics(time.Since(start))
}
