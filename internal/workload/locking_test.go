package workload

import (
	"fmt"
	"testing"

	"isolevel/internal/engine"
	"isolevel/internal/locking"
	"isolevel/internal/snapshot"
)

// The lockstep locking scenarios must be exact at every stripe count —
// including on GOMAXPROCS=1, where the schedule runner (not the Go
// scheduler) provides the interleavings.

func lockingShardCounts() []int { return []int{1, 4, 16} }

func TestReadLockFanInBlocksLongReadLocks(t *testing.T) {
	const readers, rounds = 3, 5
	for _, shards := range lockingShardCounts() {
		for _, level := range []engine.Level{engine.RepeatableRead, engine.Serializable} {
			t.Run(fmt.Sprintf("%s/shards=%d", level, shards), func(t *testing.T) {
				db := locking.NewDB(locking.WithShards(shards))
				res, err := ReadLockFanIn(db, level, readers, rounds)
				if err != nil {
					t.Fatal(err)
				}
				if res.Readers.Commits != readers*rounds || res.Readers.Aborts != 0 {
					t.Fatalf("readers = %+v", res.Readers)
				}
				if res.Writer.Commits != rounds || res.Writer.Aborts != 0 {
					t.Fatalf("writer = %+v", res.Writer)
				}
				if res.WriterBlocked != rounds {
					t.Fatalf("writer blocked %d rounds, want %d", res.WriterBlocked, rounds)
				}
				st := db.LockStats()
				if st.Waits < int64(rounds) {
					t.Fatalf("lock stats recorded %d waits, want >= %d", st.Waits, rounds)
				}
			})
		}
	}
}

func TestReadLockFanInNeverBlocksShortOrSnapshotReads(t *testing.T) {
	const readers, rounds = 3, 4
	cases := []struct {
		name string
		db   engine.DB
		lvl  engine.Level
	}{
		{"READ COMMITTED", locking.NewDB(), engine.ReadCommitted},
		{"SNAPSHOT ISOLATION", snapshot.NewDB(), engine.SnapshotIsolation},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := ReadLockFanIn(c.db, c.lvl, readers, rounds)
			if err != nil {
				t.Fatal(err)
			}
			if res.WriterBlocked != 0 {
				t.Fatalf("writer blocked %d rounds, want 0", res.WriterBlocked)
			}
			if res.Writer.Commits != rounds || res.Readers.Commits != readers*rounds {
				t.Fatalf("commits: writer %+v readers %+v", res.Writer, res.Readers)
			}
		})
	}
}

func TestUpgradeDeadlockStormExactVictimCount(t *testing.T) {
	const sessions, rounds = 4, 6
	for _, shards := range lockingShardCounts() {
		for _, level := range []engine.Level{engine.RepeatableRead, engine.Serializable} {
			t.Run(fmt.Sprintf("%s/shards=%d", level, shards), func(t *testing.T) {
				db := locking.NewDB(locking.WithShards(shards))
				m, err := UpgradeDeadlockStorm(db, level, sessions, rounds)
				if err != nil {
					t.Fatal(err)
				}
				if m.Commits != rounds {
					t.Fatalf("commits = %d, want %d (one survivor per round)", m.Commits, rounds)
				}
				if m.Aborts != rounds*(sessions-1) {
					t.Fatalf("aborts = %d, want %d (requester-is-victim)", m.Aborts, rounds*(sessions-1))
				}
				st := db.LockStats()
				if st.Deadlocks != int64(rounds*(sessions-1)) {
					t.Fatalf("deadlocks = %d, want %d", st.Deadlocks, rounds*(sessions-1))
				}
				if st.Upgrades == 0 {
					t.Fatal("no upgrades counted in an upgrade storm")
				}
				// Every committed increment survives: one per round.
				for r := 0; r < rounds; r++ {
					if got := db.ReadCommittedRow(stormKey(r)).Val(); got != 1 {
						t.Fatalf("round %d counter = %d, want 1", r, got)
					}
				}
			})
		}
	}
}

func TestUpgradeDeadlockStormSnapshotSameShape(t *testing.T) {
	const sessions, rounds = 4, 6
	db := snapshot.NewDB()
	m, err := UpgradeDeadlockStorm(db, engine.SnapshotIsolation, sessions, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if m.Commits != rounds || m.Aborts != rounds*(sessions-1) {
		t.Fatalf("SI storm = %+v, want %d commits / %d aborts", m, rounds, rounds*(sessions-1))
	}
}

func TestPredicateVsItemMixBlocksPhantomsAcrossStripes(t *testing.T) {
	const writers, rounds = 4, 3
	wantMatching := rounds * ((writers + 1) / 2)
	for _, shards := range lockingShardCounts() {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := locking.NewDB(locking.WithShards(shards))
			res, err := PredicateVsItemMix(db, engine.Serializable, writers, rounds)
			if err != nil {
				t.Fatal(err)
			}
			if res.MatchingInserts != wantMatching {
				t.Fatalf("matching inserts = %d, want %d", res.MatchingInserts, wantMatching)
			}
			if res.BlockedInserts != wantMatching {
				t.Fatalf("blocked inserts = %d, want %d (every phantom must wait)", res.BlockedInserts, wantMatching)
			}
			if res.Scanner.Commits != rounds || res.Writers.Commits != writers*rounds {
				t.Fatalf("commits: scanner %+v writers %+v", res.Scanner, res.Writers)
			}
			if res.Scanner.Aborts != 0 || res.Writers.Aborts != 0 {
				t.Fatalf("aborts: scanner %+v writers %+v", res.Scanner, res.Writers)
			}
			st := db.LockStats()
			if st.PredGrants < int64(rounds) {
				t.Fatalf("pred grants = %d, want >= %d", st.PredGrants, rounds)
			}
		})
	}
}

func TestPredicateVsItemMixWeakLevelsAdmitPhantoms(t *testing.T) {
	const writers, rounds = 4, 3
	db := locking.NewDB()
	res, err := PredicateVsItemMix(db, engine.RepeatableRead, writers, rounds)
	if err != nil {
		t.Fatal(err)
	}
	// REPEATABLE READ's predicate locks are short: phantoms never wait.
	if res.BlockedInserts != 0 {
		t.Fatalf("blocked inserts = %d, want 0 at REPEATABLE READ", res.BlockedInserts)
	}
	if res.Scanner.Commits != rounds || res.Writers.Commits != writers*rounds {
		t.Fatalf("commits: scanner %+v writers %+v", res.Scanner, res.Writers)
	}
}
