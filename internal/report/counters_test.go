package report

import "testing"

func TestSortedCounters(t *testing.T) {
	m := map[string]int64{"waits": 3, "grants": 10, "deadlocks": 0}
	kvs := SortedCounters(m)
	want := []KV{{"deadlocks", 0}, {"grants", 10}, {"waits", 3}}
	if len(kvs) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(kvs), len(want))
	}
	for i := range want {
		if kvs[i] != want[i] {
			t.Errorf("pair %d: got %+v, want %+v", i, kvs[i], want[i])
		}
	}
}

func TestCountersLine(t *testing.T) {
	got := CountersLine(map[string]int64{"b": 2, "a": 1, "c": 0})
	if got != "a=1 b=2 c=0" {
		t.Errorf("CountersLine = %q, want %q", got, "a=1 b=2 c=0")
	}
	if CountersLine(nil) != "" {
		t.Errorf("CountersLine(nil) = %q, want empty", CountersLine(nil))
	}
}
