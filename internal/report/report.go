// Package report renders the regenerated tables in the paper's layout:
// plain-text grids with a header row, suitable for terminal output and for
// embedding into EXPERIMENTS.md as fenced blocks.
//
//isolint:deterministic
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a rectangular grid with a title and column headers.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are appended under the grid, one per line.
	Notes []string
}

// AddRow appends a row (padded/truncated to the header width).
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// KV is one named counter of a stats line.
type KV struct {
	Name  string
	Value int64
}

// SortedCounters flattens a counter map into name-sorted pairs — the one
// deterministic order for map-keyed stats, shared by the bench output and
// the /metrics page so the same run renders byte-identically everywhere.
func SortedCounters(m map[string]int64) []KV {
	out := make([]KV, 0, len(m))
	for name, v := range m {
		out = append(out, KV{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CountersLine renders a counter map as one "name=value" line, name-sorted.
// Zero-valued counters are kept: a stats line whose fields appear and
// disappear between runs cannot be diffed.
func CountersLine(m map[string]int64) string {
	var b strings.Builder
	for i, kv := range SortedCounters(m) {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", kv.Name, kv.Value)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}
