// Package report renders the regenerated tables in the paper's layout:
// plain-text grids with a header row, suitable for terminal output and for
// embedding into EXPERIMENTS.md as fenced blocks.
//
//isolint:deterministic
package report

import (
	"fmt"
	"strings"
)

// Table is a rectangular grid with a title and column headers.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are appended under the grid, one per line.
	Notes []string
}

// AddRow appends a row (padded/truncated to the header width).
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}
