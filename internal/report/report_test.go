package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Demo",
		Headers: []string{"Level", "P1", "P2"},
		Notes:   []string{"note one"},
	}
	t.AddRow("READ COMMITTED", "Not Possible", "Possible")
	t.AddRow("SERIALIZABLE", "Not Possible")
	return t
}

func TestStringLayout(t *testing.T) {
	out := sample().String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, separator, two rows, one note.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Level") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[3], "READ COMMITTED") {
		t.Fatalf("row = %q", lines[3])
	}
	if lines[5] != "note one" {
		t.Fatalf("note = %q", lines[5])
	}
	// Columns aligned: each row has the header-derived width.
	if !strings.Contains(lines[3], "Not Possible  Possible") {
		t.Fatalf("column spacing wrong: %q", lines[3])
	}
}

func TestShortRowPadded(t *testing.T) {
	out := sample().String()
	if !strings.Contains(out, "SERIALIZABLE") {
		t.Fatal("short row missing")
	}
}

func TestMarkdown(t *testing.T) {
	md := sample().Markdown()
	if !strings.Contains(md, "**Demo**") {
		t.Fatal("markdown title missing")
	}
	if !strings.Contains(md, "| Level | P1 | P2 |") {
		t.Fatalf("markdown header wrong:\n%s", md)
	}
	if !strings.Contains(md, "| --- | --- | --- |") {
		t.Fatal("markdown separator missing")
	}
	if !strings.Contains(md, "| READ COMMITTED | Not Possible | Possible |") {
		t.Fatal("markdown row missing")
	}
	if !strings.Contains(md, "note one") {
		t.Fatal("markdown note missing")
	}
}

func TestNoTitle(t *testing.T) {
	tbl := &Table{Headers: []string{"A"}}
	tbl.AddRow("x")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Fatal("leading blank line without title")
	}
}
