// Barrier is the synchronization primitive behind controlled
// interleavings. The scripted runner in this package forces the paper's
// interleavings one step at a time; the workload driver
// (internal/workload) instead runs free-running sessions that rendezvous
// at barriers, which guarantees read–write overlap between concurrent
// transactions regardless of GOMAXPROCS — on a single-core host a
// transaction otherwise finishes inside one scheduler quantum and
// contention anomalies (first-committer-wins aborts, lost updates) never
// get a chance to occur.

package schedule

import "sync"

// Barrier is a reusable rendezvous for a fixed number of parties: the
// n-th call to Await releases everyone, and the barrier resets for the
// next cycle (like Java's CyclicBarrier). A party that exits early must
// call Leave so the remaining parties do not wait for it forever.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int // parties still participating
	waiting int // parties blocked in Await this cycle
	cycle   uint64
}

// NewBarrier returns a barrier for n parties (n < 1 is treated as 1).
func NewBarrier(n int) *Barrier {
	if n < 1 {
		n = 1
	}
	b := &Barrier{parties: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until every participating party has called Await, then
// releases them all and resets the barrier for the next cycle.
func (b *Barrier) Await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.waiting++
	if b.waiting >= b.parties {
		b.openLocked()
		return
	}
	cycle := b.cycle
	for cycle == b.cycle {
		b.cond.Wait()
	}
}

// Leave permanently removes one party from the barrier (a session that
// finished early or failed). If the departure completes the current
// cycle, the waiting parties are released.
func (b *Barrier) Leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties--
	if b.waiting > 0 && b.waiting >= b.parties {
		b.openLocked()
	}
}

// openLocked releases the current cycle. Callers hold b.mu.
func (b *Barrier) openLocked() {
	b.waiting = 0
	b.cycle++
	b.cond.Broadcast()
}
