package schedule

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// Phases must be strict: no party may enter cycle k+1 before every party
// finished cycle k — on any GOMAXPROCS, including 1 (the property the
// workload driver's determinism rests on).
func TestBarrierPhasesAreStrict(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	const parties, cycles = 5, 50
	b := NewBarrier(parties)
	var inPhase atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				inPhase.Add(1)
				b.Await()
				// Everyone arrived: the counter must read a full house
				// before anyone resets it for the next cycle.
				if got := inPhase.Load(); got > parties || got < 1 {
					t.Errorf("phase counter = %d", got)
				}
				b.Await()
				inPhase.Add(-1)
				b.Await()
			}
		}()
	}
	wg.Wait()
}

func TestBarrierLeaveReleasesWaiters(t *testing.T) {
	b := NewBarrier(3)
	done := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func() {
			b.Await()
			done <- struct{}{}
		}()
	}
	// The third party bails out instead of arriving; the two waiters must
	// be released.
	b.Leave()
	<-done
	<-done
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 3; i++ {
		b.Await() // must never block
	}
	if NewBarrier(0) == nil {
		t.Fatal("nil barrier")
	}
}
