// Package schedule executes scripted interleavings — the paper's histories
// — against live engines, one goroutine per transaction.
//
// The controller dispatches each step to its transaction's goroutine and
// then waits for either (a) the operation to complete, or (b) a
// notification from the engine's lock manager that the transaction has
// started waiting. Case (b) is what makes the runner deterministic: when
// the paper says "w2[x] now blocks until T1 commits", the runner knows the
// op blocked without resorting to sleeps, marks the step Blocked, and moves
// on to the next step of the script exactly as the history prescribes. The
// blocked operation's completion is recorded when it eventually resumes.
//
// Deadlock victims (ErrDeadlock), first-committer-wins aborts
// (ErrWriteConflict) and cursor write-consistency failures (ErrRowChanged)
// cause the runner to roll the victim back automatically, mirroring what a
// real system's transaction monitor does; detectors then classify the
// outcome as "prevented by abort".
//
//isolint:deterministic
package schedule

import (
	"fmt"
	"sort"
	"time"

	"isolevel/internal/engine"
	"isolevel/internal/history"
	"isolevel/internal/lock"
)

// Ctx is the per-transaction execution context handed to step closures. It
// carries the live transaction plus a variable bag for values that flow
// between steps of the same transaction (read registers, open cursors).
type Ctx struct {
	Tx   engine.Tx
	Vars map[string]any
}

// Int returns the int64 stored under name (0 if absent or of another type).
func (c *Ctx) Int(name string) int64 {
	v, _ := c.Vars[name].(int64)
	return v
}

// Cursor returns the cursor stored under name, or nil.
func (c *Ctx) Cursor(name string) engine.Cursor {
	v, _ := c.Vars[name].(engine.Cursor)
	return v
}

// Kind classifies a step for the runner's bookkeeping.
type Kind int

// Step kinds.
const (
	Op Kind = iota
	Commit
	Abort
)

// Step is one action of the script.
type Step struct {
	// TxN is the script transaction number (1-based, the subscript of
	// w1[x]).
	TxN int
	// Kind tells the runner whether this is a plain operation or a
	// terminal.
	Kind Kind
	// Name labels the step in results ("r1[x]", "w2[x=120]").
	Name string
	// Do performs the operation. nil for Commit/Abort kinds.
	Do func(*Ctx) (any, error)
}

// OpStep builds a plain operation step.
func OpStep(txn int, name string, do func(*Ctx) (any, error)) Step {
	return Step{TxN: txn, Kind: Op, Name: name, Do: do}
}

// CommitStep builds a commit step.
func CommitStep(txn int) Step {
	return Step{TxN: txn, Kind: Commit, Name: fmt.Sprintf("c%d", txn)}
}

// AbortStep builds an abort step.
func AbortStep(txn int) Step {
	return Step{TxN: txn, Kind: Abort, Name: fmt.Sprintf("a%d", txn)}
}

// StepResult records one step's fate.
type StepResult struct {
	Index int
	TxN   int
	Name  string
	// Blocked reports that the op did not complete when dispatched (it
	// waited on a lock); its Value/Err are from its eventual completion.
	Blocked bool
	// Skipped reports the step was not dispatched because its transaction
	// had already terminated (e.g. rolled back as a deadlock victim).
	Skipped bool
	Value   any
	Err     error
}

// Result is the outcome of running a script.
type Result struct {
	Steps []StepResult
	// Committed/AutoAborted/ScriptAborted per script transaction number.
	Committed   map[int]bool
	Aborted     map[int]bool
	AutoAborted map[int]bool
	// History is the engine-recorded execution (empty if the engine has no
	// recorder).
	History history.History
}

// StepByName returns the first step result with the given name.
func (r *Result) StepByName(name string) (StepResult, bool) {
	for _, s := range r.Steps {
		if s.Name == name {
			return s, true
		}
	}
	return StepResult{}, false
}

// Errs returns the non-nil errors of all steps, keyed by step name.
func (r *Result) Errs() map[string]error {
	out := map[string]error{}
	for _, s := range r.Steps {
		if s.Err != nil {
			out[s.Name] = s.Err
		}
	}
	return out
}

// AnyBlocked reports whether any step blocked.
func (r *Result) AnyBlocked() bool {
	for _, s := range r.Steps {
		if s.Blocked {
			return true
		}
	}
	return false
}

// Options configure a run.
type Options struct {
	// Level is the isolation level for every script transaction unless
	// overridden in PerTx.
	Level engine.Level
	// PerTx overrides the level per script transaction number.
	PerTx map[int]engine.Level
	// StepTimeout is the backstop for deciding an op blocked when the
	// engine exposes no wait observer (default 250ms; the observer path is
	// the normal, deterministic one).
	StepTimeout time.Duration
	// DrainTimeout bounds the end-of-script drain (default 5s).
	DrainTimeout time.Duration
}

func (o *Options) levelFor(txn int) engine.Level {
	if l, ok := o.PerTx[txn]; ok {
		return l
	}
	return o.Level
}

// observable is implemented by engines whose lock manager can report waits.
type observable interface {
	SetObserver(lock.Observer)
}

// grantParker is implemented by engines whose lock manager can withhold
// waiter wake-ups until the controller asks for them (lock.ParkGrants).
type grantParker interface {
	ParkGrants(on bool)
	DeliverNextGrant() (lock.TxID, bool)
}

// recorded is implemented by engines exposing an execution recorder.
type recorded interface {
	Recorder() *engine.Recorder
}

// completion is what a transaction goroutine reports back.
type completion struct {
	txn   int
	index int
	value any
	err   error
}

type txWorker struct {
	txn   int
	ctx   *Ctx
	steps chan func()
}

// runEvent is one message on the controller's single event stream: a step
// completion, a lock wait/grant notification, or a drain-abort
// acknowledgement. The single stream is load-bearing for determinism:
// causally ordered emissions — a worker's op completion followed by its
// next op's wait note, or a grant followed by the granted op's completion
// — land in one channel in emission order, where separate channels would
// let the controller observe them inverted and mistake a parked
// transaction for a running one (or vice versa).
type runEvent struct {
	kind runEventKind
	comp completion
	tx   lock.TxID // for evWaiting / evGranted
}

type runEventKind int

const (
	evComplete runEventKind = iota
	evWaiting
	evGranted
	evAbortDone
)

// waitObserver forwards lock wait/grant notifications into the
// controller's event stream. The buffer is far larger than any script's
// event count; if it ever overflows the drop degrades the quiescence
// protocol to a timeout, never to a hang.
type waitObserver struct {
	ch chan runEvent
}

func (o *waitObserver) TxWaiting(tx lock.TxID, on []lock.TxID) {
	select {
	case o.ch <- runEvent{kind: evWaiting, tx: tx}:
	default:
	}
}

func (o *waitObserver) TxGranted(tx lock.TxID) {
	select {
	case o.ch <- runEvent{kind: evGranted, tx: tx}:
	default:
	}
}

// Run executes the script on db. Each transaction is begun lazily at its
// first step. The returned Result always covers every step; Run errors only
// on script-level misuse (unknown transaction in a step, Begin failure).
func Run(db engine.DB, opts Options, steps []Step) (*Result, error) {
	if opts.StepTimeout == 0 {
		opts.StepTimeout = 250 * time.Millisecond
	}
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = 5 * time.Second
	}

	events := make(chan runEvent, 4*len(steps)+4096)
	waits := &waitObserver{ch: events}
	if o, ok := db.(observable); ok {
		o.SetObserver(waits)
	}
	// Park lock grants: a mid-op release then only installs the waiter's
	// lock; the waiter itself resumes when the controller delivers the
	// wake-up at a step boundary (settle), so at most one engine op runs
	// at a time and outcomes cannot depend on goroutine scheduling.
	parker, _ := db.(grantParker)
	if parker != nil {
		parker.ParkGrants(true)
		defer parker.ParkGrants(false)
	}
	var rec *engine.Recorder
	if rp, ok := db.(recorded); ok {
		rec = rp.Recorder()
		rec.Enable()
	}

	res := &Result{
		Committed:   map[int]bool{},
		Aborted:     map[int]bool{},
		AutoAborted: map[int]bool{},
	}
	res.Steps = make([]StepResult, len(steps))

	workers := map[int]*txWorker{}
	engineID := map[int]int{}  // script txn -> engine tx id
	scriptTxn := map[int]int{} // engine tx id -> script txn
	pendingOps := map[int]int{}
	terminated := map[int]bool{}
	// abortWanted marks transactions whose op failed with a prevention
	// error while a later op of theirs was still queued/blocked: the
	// rollback is deferred until their in-flight ops drain (aborting
	// through the worker immediately would queue the abort behind a
	// lock-waiting op while this controller stops dispatching — deadlock).
	abortWanted := map[int]bool{}
	// resumed tracks transactions with an op executing concurrently with
	// the controller: a blocked op whose lock was granted (TxGranted), or
	// a queued op that started after its predecessor completed. The
	// controller settles this set to empty before dispatching another
	// step — otherwise the in-flight op's remaining lock acquisitions race
	// the next step's, and the run's outcome depends on goroutine
	// scheduling instead of the script.
	resumed := map[int]bool{}
	abortsPending := 0 // drain-phase aborts awaiting their evAbortDone

	startWorker := func(txn int) (*txWorker, error) {
		tx, err := db.Begin(opts.levelFor(txn))
		if err != nil {
			return nil, fmt.Errorf("schedule: begin T%d: %w", txn, err)
		}
		w := &txWorker{
			txn:   txn,
			ctx:   &Ctx{Tx: tx, Vars: map[string]any{}},
			steps: make(chan func(), len(steps)),
		}
		engineID[txn] = tx.ID()
		scriptTxn[tx.ID()] = txn
		go func() {
			for fn := range w.steps {
				fn()
			}
		}()
		workers[txn] = w
		return w, nil
	}

	// autoAbort rolls back a transaction whose op failed with a prevention
	// error. Only called once the transaction's op queue is idle, so the
	// abort closure runs immediately rather than queueing behind a
	// lock-waiting op.
	autoAbort := func(txn int) {
		w := workers[txn]
		if w == nil || terminated[txn] {
			return
		}
		terminated[txn] = true
		res.Aborted[txn] = true
		res.AutoAborted[txn] = true
		done := make(chan struct{})
		w.steps <- func() { _ = w.ctx.Tx.Abort(); close(done) }
		<-done
	}

	recordCompletion := func(c completion) {
		sr := &res.Steps[c.index]
		sr.Value = c.value
		sr.Err = c.err
		pendingOps[c.txn]--
		if pendingOps[c.txn] > 0 {
			// The worker immediately starts the next queued op: still
			// concurrent with the controller.
			resumed[c.txn] = true
		} else {
			delete(resumed, c.txn)
		}
		step := steps[c.index]
		switch step.Kind {
		case Commit:
			if c.err == nil {
				res.Committed[c.txn] = true
				terminated[c.txn] = true
			} else {
				// Failed commit (first-committer-wins): the engine has
				// already aborted the transaction.
				res.Aborted[c.txn] = true
				res.AutoAborted[c.txn] = true
				terminated[c.txn] = true
			}
		case Abort:
			res.Aborted[c.txn] = true
			terminated[c.txn] = true
		default:
			if c.err != nil && engine.IsPrevention(c.err) {
				abortWanted[c.txn] = true
			}
		}
		if abortWanted[c.txn] && pendingOps[c.txn] == 0 && !terminated[c.txn] {
			delete(abortWanted, c.txn)
			autoAbort(c.txn)
		}
	}

	// processEvent folds one event-stream message into controller state. A
	// grant means the transaction's blocked op is now executing; a wait
	// means it parked (again).
	processEvent := func(ev runEvent) {
		switch ev.kind {
		case evComplete:
			recordCompletion(ev.comp)
		case evAbortDone:
			abortsPending--
		case evGranted:
			if txn, ok := scriptTxn[int(ev.tx)]; ok && pendingOps[txn] > 0 && !terminated[txn] {
				resumed[txn] = true
			}
		case evWaiting:
			if txn, ok := scriptTxn[int(ev.tx)]; ok {
				delete(resumed, txn)
			}
		}
	}

	// deliverGrant wakes the oldest parked waiter, if any, and marks its
	// transaction resumed so settle waits for the continuation to finish
	// or park again.
	deliverGrant := func() bool {
		if parker == nil {
			return false
		}
		tx, ok := parker.DeliverNextGrant()
		if !ok {
			return false
		}
		if txn, ok2 := scriptTxn[int(tx)]; ok2 && pendingOps[txn] > 0 && !terminated[txn] {
			resumed[txn] = true
		}
		return true
	}

	// settle brings the run to quiescence: process pending events, then
	// alternate between waiting out resumed ops and delivering parked lock
	// grants one at a time, until no op executes concurrently with the
	// controller and no wake-up is owed. The timeout is a pure backstop (a
	// dropped event under pathological load); on expiry the controller
	// proceeds as it did before the quiescence protocol.
	settle := func() {
		var timer *time.Timer
		defer func() {
			if timer != nil {
				timer.Stop()
			}
		}()
		for {
			for {
				select {
				case ev := <-events:
					processEvent(ev)
					continue
				default:
				}
				break
			}
			if len(resumed) == 0 {
				if deliverGrant() {
					continue
				}
				return
			}
			if timer == nil {
				timer = time.NewTimer(opts.StepTimeout)
			}
			select {
			case ev := <-events:
				processEvent(ev)
			case <-timer.C:
				return
			}
		}
	}

	for i, step := range steps {
		res.Steps[i] = StepResult{Index: i, TxN: step.TxN, Name: step.Name}

		// Settle resumed ops and drain completions of previously blocked
		// steps: no engine call may be in flight when the next one is
		// dispatched, or their lock acquisitions race nondeterministically.
		settle()

		if terminated[step.TxN] || abortWanted[step.TxN] {
			// Terminated, or doomed to auto-abort as soon as its in-flight
			// ops drain: either way no further step of it is dispatched.
			res.Steps[i].Skipped = true
			continue
		}
		w := workers[step.TxN]
		if w == nil {
			var err error
			w, err = startWorker(step.TxN)
			if err != nil {
				return res, err
			}
		}

		idx := i
		st := step
		ctx := w.ctx
		dispatch := func() {
			var v any
			var err error
			switch st.Kind {
			case Commit:
				err = ctx.Tx.Commit()
			case Abort:
				err = ctx.Tx.Abort()
			default:
				v, err = st.Do(ctx)
			}
			events <- runEvent{kind: evComplete, comp: completion{txn: st.TxN, index: idx, value: v, err: err}}
		}

		if pendingOps[step.TxN] > 0 {
			// The transaction is still blocked on an earlier step; queue
			// this step behind it (the worker runs steps in order) and mark
			// it blocked by inheritance.
			res.Steps[i].Blocked = true
			pendingOps[step.TxN]++
			w.steps <- dispatch
			continue
		}

		pendingOps[step.TxN]++
		w.steps <- dispatch

		// Wait for completion, a wait-notification for this transaction, or
		// the backstop timeout.
		expect := lock.TxID(engineID[step.TxN])
		timer := time.NewTimer(opts.StepTimeout)
	wait:
		for {
			select {
			case ev := <-events:
				processEvent(ev)
				if ev.kind == evComplete && ev.comp.index == i {
					break wait
				}
				if ev.kind == evWaiting && ev.tx == expect {
					res.Steps[i].Blocked = true
					break wait
				}
			case <-timer.C:
				res.Steps[i].Blocked = true
				break wait
			}
		}
		timer.Stop()
	}

	// End of script: abort transactions the script left open. Aborting an
	// idle transaction releases its locks, which lets blocked ops of other
	// transactions complete; loop until everything settles. Transactions
	// are drained in ascending script order — map iteration order here
	// would randomize lock-release order across runs, and with it which
	// blocked op wins a grant or a deadlock, breaking the byte-for-byte
	// reproducibility the fuzz harness depends on.
	deadline := time.After(opts.DrainTimeout)
	txnOrder := make([]int, 0, len(workers))
	for txn := range workers {
		txnOrder = append(txnOrder, txn)
	}
	sort.Ints(txnOrder)
	for {
		// Settle resumed ops and owed grant wake-ups before the next
		// abort, and abort one transaction at a time: each abort releases
		// locks and grants blocked ops, whose continuations must finish
		// (or park again) before the following abort's releases.
		for len(resumed) > 0 || abortsPending > 0 {
			select {
			case ev := <-events:
				processEvent(ev)
			case <-deadline:
				return res, fmt.Errorf("schedule: drain timeout with %d resumed ops and %d aborts in flight", len(resumed), abortsPending)
			}
		}
		if deliverGrant() {
			continue
		}
		enqueued := false
		for _, txn := range txnOrder {
			w := workers[txn]
			if terminated[txn] || pendingOps[txn] > 0 {
				continue
			}
			terminated[txn] = true
			res.Aborted[txn] = true
			res.AutoAborted[txn] = true
			ww := w
			abortsPending++
			ww.steps <- func() { _ = ww.ctx.Tx.Abort(); events <- runEvent{kind: evAbortDone} }
			enqueued = true
			break
		}
		if enqueued {
			continue
		}
		busy := 0
		for _, n := range pendingOps {
			busy += n
		}
		allTerminated := true
		for txn := range workers {
			if !terminated[txn] {
				allTerminated = false
			}
		}
		if busy == 0 && abortsPending == 0 && allTerminated {
			break
		}
		select {
		case ev := <-events:
			processEvent(ev)
		case <-deadline:
			return res, fmt.Errorf("schedule: drain timeout with %d ops in flight", busy)
		}
	}
	for _, w := range workers {
		close(w.steps)
	}
	if rec != nil {
		res.History = remapHistory(rec.History(), scriptTxn)
	}
	return res, nil
}

// remapHistory rewrites engine transaction ids to script transaction
// numbers so recorded histories line up with the paper's notation.
func remapHistory(h history.History, scriptTxn map[int]int) history.History {
	out := make(history.History, 0, len(h))
	for _, op := range h {
		if txn, ok := scriptTxn[op.Tx]; ok {
			op.Tx = txn
			out = append(out, op)
		}
	}
	return out
}
