package schedule

import (
	"errors"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/locking"
	"isolevel/internal/oraclerc"
	"isolevel/internal/phenomena"
	"isolevel/internal/snapshot"
)

// Step helpers shared by tests (the anomalies package builds its own).

func get(txn int, key data.Key) Step {
	return OpStep(txn, "r"+itoa(txn)+"["+string(key)+"]", func(c *Ctx) (any, error) {
		v, err := engine.GetVal(c.Tx, key)
		if err != nil {
			return nil, err
		}
		c.Vars["last:"+string(key)] = v
		return v, nil
	})
}

func put(txn int, key data.Key, v int64) Step {
	return OpStep(txn, "w"+itoa(txn)+"["+string(key)+"]", func(c *Ctx) (any, error) {
		return nil, engine.PutVal(c.Tx, key, v)
	})
}

func itoa(n int) string { return string(rune('0' + n)) }

func loadScalars(db engine.DB, kv map[string]int64) {
	var ts []data.Tuple
	for k, v := range kv {
		ts = append(ts, data.Tuple{Key: data.Key(k), Row: data.Scalar(v)})
	}
	db.Load(ts...)
}

// A serial script runs to completion with no blocking.
func TestSerialScript(t *testing.T) {
	db := locking.NewDB()
	loadScalars(db, map[string]int64{"x": 1})
	res, err := Run(db, Options{Level: engine.Serializable}, []Step{
		get(1, "x"),
		put(1, "x", 2),
		CommitStep(1),
		get(2, "x"),
		CommitStep(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AnyBlocked() {
		t.Fatalf("serial script blocked: %+v", res.Steps)
	}
	if !res.Committed[1] || !res.Committed[2] {
		t.Fatal("both txns should commit")
	}
	r2, _ := res.StepByName("r2[x]")
	if r2.Value.(int64) != 2 {
		t.Fatalf("T2 read %v", r2.Value)
	}
}

// Dirty read observed at READ UNCOMMITTED, with no blocking.
func TestDirtyReadScript(t *testing.T) {
	db := locking.NewDB()
	loadScalars(db, map[string]int64{"x": 0})
	res, err := Run(db, Options{Level: engine.ReadUncommitted}, []Step{
		put(1, "x", 101),
		get(2, "x"),
		AbortStep(1),
		CommitStep(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := res.StepByName("r2[x]")
	if r2.Blocked {
		t.Fatal("dirty read must not block at RU")
	}
	if r2.Value.(int64) != 101 {
		t.Fatalf("dirty read saw %v, want 101", r2.Value)
	}
}

// The same script at READ COMMITTED: the read blocks until T1 aborts, then
// sees the restored value. The runner must detect the block via the
// observer and keep going.
func TestBlockedReadDetected(t *testing.T) {
	db := locking.NewDB()
	loadScalars(db, map[string]int64{"x": 0})
	res, err := Run(db, Options{Level: engine.ReadCommitted}, []Step{
		put(1, "x", 101),
		get(2, "x"),
		AbortStep(1),
		CommitStep(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := res.StepByName("r2[x]")
	if !r2.Blocked {
		t.Fatal("read of dirty row must block at RC")
	}
	if r2.Value.(int64) != 0 {
		t.Fatalf("read %v after abort, want 0", r2.Value)
	}
	if !res.Committed[2] {
		t.Fatal("T2 should commit")
	}
}

// Deadlock: the victim's remaining steps are skipped and it is auto-aborted.
func TestDeadlockAutoAbort(t *testing.T) {
	db := locking.NewDB()
	loadScalars(db, map[string]int64{"x": 100})
	res, err := Run(db, Options{Level: engine.RepeatableRead}, []Step{
		get(1, "x"),
		get(2, "x"),
		put(2, "x", 120), // T2's upgrade waits on T1's S
		put(1, "x", 130), // T1's upgrade closes the cycle: T1 is the victim
		CommitStep(2),
		CommitStep(1), // skipped: T1 was rolled back
	})
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := res.StepByName("w1[x]")
	if !errors.Is(w1.Err, engine.ErrDeadlock) {
		t.Fatalf("w1[x] err = %v, want deadlock", w1.Err)
	}
	if !res.AutoAborted[1] || !res.Aborted[1] {
		t.Fatal("T1 should be auto-aborted")
	}
	c1, _ := res.StepByName("c1")
	if !c1.Skipped {
		t.Fatal("c1 should be skipped after auto-abort")
	}
	if !res.Committed[2] {
		t.Fatal("T2 should commit")
	}
	if got := db.ReadCommittedRow("x").Val(); got != 120 {
		t.Fatalf("x = %d, want T2's 120", got)
	}
}

// First-committer-wins surfaces on the commit step under SI.
func TestSICommitConflict(t *testing.T) {
	db := snapshot.NewDB()
	loadScalars(db, map[string]int64{"x": 100})
	res, err := Run(db, Options{Level: engine.SnapshotIsolation}, []Step{
		get(1, "x"),
		get(2, "x"),
		put(2, "x", 120),
		CommitStep(2),
		put(1, "x", 130),
		CommitStep(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := res.StepByName("c1")
	if !errors.Is(c1.Err, engine.ErrWriteConflict) {
		t.Fatalf("c1 err = %v, want write conflict", c1.Err)
	}
	if res.Committed[1] || !res.Aborted[1] {
		t.Fatal("T1 must be recorded aborted")
	}
	if !res.Committed[2] {
		t.Fatal("T2 must commit")
	}
}

// Unterminated transactions are aborted in the drain, releasing waiters.
func TestDrainAbortsOpenTxns(t *testing.T) {
	db := locking.NewDB()
	loadScalars(db, map[string]int64{"x": 0})
	res, err := Run(db, Options{Level: engine.Serializable}, []Step{
		put(1, "x", 1),
		get(2, "x"), // blocks on T1's X lock; script ends here
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := res.StepByName("r2[x]")
	if !r2.Blocked {
		t.Fatal("r2 should have blocked")
	}
	if !res.Aborted[1] || !res.Aborted[2] {
		t.Fatal("both open txns should be drained by abort")
	}
	// T1 aborted, so its write was rolled back; T2 read 0.
	if r2.Value.(int64) != 0 {
		t.Fatalf("r2 read %v", r2.Value)
	}
}

// Steps queued behind a blocked step run in order and inherit Blocked.
func TestQueuedBehindBlocked(t *testing.T) {
	db := locking.NewDB()
	loadScalars(db, map[string]int64{"x": 0, "y": 0})
	res, err := Run(db, Options{Level: engine.Serializable}, []Step{
		put(1, "x", 1),
		get(2, "x"),    // blocks
		put(2, "y", 2), // queued behind the blocked read
		CommitStep(1),  // unblocks T2
		CommitStep(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := res.StepByName("w2[y]")
	if !w2.Blocked {
		t.Fatal("queued step should inherit Blocked")
	}
	if w2.Err != nil {
		t.Fatal(w2.Err)
	}
	if !res.Committed[1] || !res.Committed[2] {
		t.Fatalf("commits: %v", res.Committed)
	}
	if db.ReadCommittedRow("y").Val() != 2 {
		t.Fatal("queued write lost")
	}
}

// Per-transaction levels: a SERIALIZABLE reader alongside a READ
// UNCOMMITTED writer on a locking engine.
func TestPerTxLevels(t *testing.T) {
	db := locking.NewDB()
	loadScalars(db, map[string]int64{"x": 0})
	res, err := Run(db, Options{
		Level: engine.Serializable,
		PerTx: map[int]engine.Level{2: engine.ReadUncommitted},
	}, []Step{
		put(1, "x", 5),
		get(2, "x"), // RU: no read lock, sees dirty 5
		CommitStep(1),
		CommitStep(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := res.StepByName("r2[x]")
	if r2.Blocked || r2.Value.(int64) != 5 {
		t.Fatalf("RU reader: blocked=%v v=%v", r2.Blocked, r2.Value)
	}
}

// The recorded history is remapped to script transaction numbers and
// classified by the same matchers as the paper's histories.
func TestRecordedHistoryRemap(t *testing.T) {
	db := locking.NewDB()
	loadScalars(db, map[string]int64{"x": 0})
	res, err := Run(db, Options{Level: engine.ReadUncommitted}, []Step{
		put(1, "x", 101),
		get(2, "x"),
		CommitStep(1),
		CommitStep(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no recorded history")
	}
	if !phenomena.Exhibits(phenomena.P1, res.History) {
		t.Fatalf("recorded history should exhibit P1: %s", res.History)
	}
	for _, op := range res.History {
		if op.Tx != 1 && op.Tx != 2 {
			t.Fatalf("unmapped tx id in %s", res.History)
		}
	}
}

// Read Consistency engine also works under the runner (write locks +
// observer).
func TestOracleRCUnderRunner(t *testing.T) {
	db := oraclerc.NewDB()
	loadScalars(db, map[string]int64{"x": 100})
	res, err := Run(db, Options{Level: engine.ReadConsistency}, []Step{
		put(1, "x", 120),
		put(2, "x", 130), // blocks on T1's write lock (first-writer-wins)
		CommitStep(1),
		CommitStep(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := res.StepByName("w2[x]")
	if !w2.Blocked {
		t.Fatal("second writer should block")
	}
	if !res.Committed[1] || !res.Committed[2] {
		t.Fatal("both should commit (no FCW abort at Read Consistency)")
	}
	if got := db.ReadCommittedRow("x").Val(); got != 130 {
		t.Fatalf("x = %d", got)
	}
}

func TestResultHelpers(t *testing.T) {
	db := locking.NewDB()
	loadScalars(db, map[string]int64{"x": 0})
	res, err := Run(db, Options{Level: engine.Serializable}, []Step{
		get(1, "x"),
		CommitStep(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.StepByName("r1[x]"); !ok {
		t.Fatal("StepByName miss")
	}
	if _, ok := res.StepByName("nope"); ok {
		t.Fatal("StepByName false positive")
	}
	if len(res.Errs()) != 0 {
		t.Fatalf("errs = %v", res.Errs())
	}
}

func TestCtxHelpers(t *testing.T) {
	c := &Ctx{Vars: map[string]any{"n": int64(7)}}
	if c.Int("n") != 7 || c.Int("missing") != 0 {
		t.Fatal("Ctx.Int")
	}
	if c.Cursor("nope") != nil {
		t.Fatal("Ctx.Cursor on missing name")
	}
}
