package anomalies

import (
	"testing"

	"isolevel/internal/engine"
	"isolevel/internal/phenomena"
)

// expect runs scenario sc at level and asserts the anomaly verdict.
func expect(t *testing.T, sc Scenario, level engine.Level, wantAnomaly bool) Outcome {
	t.Helper()
	out, res, err := Run(sc, level)
	if err != nil {
		t.Fatalf("%s/%s at %s: runner error: %v", sc.ID, sc.Variant, level, err)
	}
	if out.Anomaly != wantAnomaly {
		t.Errorf("%s/%s at %s: anomaly=%v, want %v — %s\nsteps: %+v",
			sc.ID, sc.Variant, level, out.Anomaly, wantAnomaly, out.Details, res.Steps)
	}
	return out
}

// --- P0 Dirty Write ---

func TestP0OnlyAtDegree0(t *testing.T) {
	sc := P0DirtyWrite()
	expect(t, sc, engine.Degree0, true)
	for _, lvl := range []engine.Level{
		engine.ReadUncommitted, engine.ReadCommitted, engine.CursorStability,
		engine.RepeatableRead, engine.Serializable,
		engine.SnapshotIsolation, engine.ReadConsistency,
	} {
		expect(t, sc, lvl, false)
	}
}

func TestP0PreventionMechanisms(t *testing.T) {
	out := expect(t, P0DirtyWrite(), engine.ReadUncommitted, false)
	if out.Mechanism != "blocked" {
		t.Errorf("RU should prevent P0 by blocking, got %s", out.Mechanism)
	}
	out = expect(t, P0DirtyWrite(), engine.SnapshotIsolation, false)
	if out.Mechanism != "aborted" {
		t.Errorf("SI should prevent P0 by first-committer-wins abort, got %s", out.Mechanism)
	}
}

// --- P1 Dirty Read ---

func TestP1Matrix(t *testing.T) {
	sc := P1DirtyRead()
	expect(t, sc, engine.Degree0, true)
	expect(t, sc, engine.ReadUncommitted, true)
	for _, lvl := range []engine.Level{
		engine.ReadCommitted, engine.CursorStability, engine.RepeatableRead,
		engine.Serializable, engine.SnapshotIsolation, engine.ReadConsistency,
	} {
		expect(t, sc, lvl, false)
	}
}

func TestP1SnapshotPreventionIsNonBlocking(t *testing.T) {
	out := expect(t, P1DirtyRead(), engine.SnapshotIsolation, false)
	if out.Mechanism != "snapshot" {
		t.Errorf("SI prevents P1 without blocking, got %s", out.Mechanism)
	}
	out = expect(t, P1DirtyRead(), engine.ReadConsistency, false)
	if out.Mechanism != "snapshot" {
		t.Errorf("Read Consistency prevents P1 without blocking, got %s", out.Mechanism)
	}
	out = expect(t, P1DirtyRead(), engine.ReadCommitted, false)
	if out.Mechanism != "blocked" {
		t.Errorf("locking RC prevents P1 by blocking, got %s", out.Mechanism)
	}
}

// --- P4C Cursor Lost Update ---

func TestP4CMatrix(t *testing.T) {
	sc := P4CCursorLostUpdate()
	expect(t, sc, engine.ReadUncommitted, true)
	expect(t, sc, engine.ReadCommitted, true)
	for _, lvl := range []engine.Level{
		engine.CursorStability, engine.RepeatableRead, engine.Serializable,
		engine.SnapshotIsolation, engine.ReadConsistency,
	} {
		expect(t, sc, lvl, false)
	}
}

func TestP4CPreventionMechanisms(t *testing.T) {
	out := expect(t, P4CCursorLostUpdate(), engine.CursorStability, false)
	if out.Mechanism != "blocked" {
		t.Errorf("CS prevents P4C by holding the cursor lock, got %s", out.Mechanism)
	}
	out = expect(t, P4CCursorLostUpdate(), engine.ReadConsistency, false)
	if out.Mechanism != "aborted" {
		t.Errorf("Read Consistency prevents P4C via row-changed abort, got %s", out.Mechanism)
	}
	out = expect(t, P4CCursorLostUpdate(), engine.SnapshotIsolation, false)
	if out.Mechanism != "aborted" {
		t.Errorf("SI prevents P4C via first-committer-wins, got %s", out.Mechanism)
	}
}

// --- P4 Lost Update ---

func TestP4Matrix(t *testing.T) {
	sc := P4LostUpdate()
	expect(t, sc, engine.ReadUncommitted, true)
	expect(t, sc, engine.ReadCommitted, true)
	expect(t, sc, engine.CursorStability, true) // plain reads: the "sometimes" half
	expect(t, sc, engine.ReadConsistency, true) // §4.3: P4 possible
	expect(t, sc, engine.RepeatableRead, false) // upgrade deadlock
	expect(t, sc, engine.Serializable, false)
	expect(t, sc, engine.SnapshotIsolation, false) // FCW
}

func TestP4PreventionMechanisms(t *testing.T) {
	out := expect(t, P4LostUpdate(), engine.RepeatableRead, false)
	if out.Mechanism != "aborted" {
		t.Errorf("RR prevents P4 via deadlock abort, got %s", out.Mechanism)
	}
	out = expect(t, P4LostUpdate(), engine.SnapshotIsolation, false)
	if out.Mechanism != "aborted" {
		t.Errorf("SI prevents P4 via FCW abort, got %s", out.Mechanism)
	}
}

// The guarded (cursor) variant of the lost update is P4C — prevented at CS:
// together these two results are Table 4's "Sometimes Possible".
func TestP4SometimesPossibleAtCursorStability(t *testing.T) {
	plain := expect(t, P4LostUpdate(), engine.CursorStability, true)
	guarded := expect(t, P4CCursorLostUpdate(), engine.CursorStability, false)
	if !plain.Anomaly || guarded.Anomaly {
		t.Fatal("CS: plain lost update occurs, cursor-guarded is prevented")
	}
}

// --- P2 Fuzzy Read ---

func TestP2Matrix(t *testing.T) {
	sc := P2FuzzyRead()
	expect(t, sc, engine.ReadUncommitted, true)
	expect(t, sc, engine.ReadCommitted, true)
	expect(t, sc, engine.CursorStability, true) // plain reads
	expect(t, sc, engine.ReadConsistency, true) // statement snapshots move
	expect(t, sc, engine.RepeatableRead, false)
	expect(t, sc, engine.Serializable, false)
	expect(t, sc, engine.SnapshotIsolation, false)
}

func TestP2CursorGuardedAtCS(t *testing.T) {
	guarded, _ := Guarded("P2")
	expect(t, guarded, engine.CursorStability, false)
	expect(t, guarded, engine.ReadCommitted, true) // short cursor locks don't help
}

// --- P3 Phantom ---

func TestP3RereadMatrix(t *testing.T) {
	sc := P3PhantomReread()
	expect(t, sc, engine.ReadUncommitted, true)
	expect(t, sc, engine.ReadCommitted, true)
	expect(t, sc, engine.CursorStability, true)
	expect(t, sc, engine.RepeatableRead, true) // short predicate locks: phantoms!
	expect(t, sc, engine.ReadConsistency, true)
	expect(t, sc, engine.Serializable, false)      // long predicate locks
	expect(t, sc, engine.SnapshotIsolation, false) // stable snapshot: no A3
}

func TestP3ConstraintMatrix(t *testing.T) {
	sc := P3PhantomConstraint()
	expect(t, sc, engine.ReadCommitted, true)
	expect(t, sc, engine.RepeatableRead, true)
	expect(t, sc, engine.SnapshotIsolation, true) // the paper's SI phantom
	expect(t, sc, engine.Serializable, false)
}

// --- A5A Read Skew ---

func TestA5AMatrix(t *testing.T) {
	sc := A5AReadSkew()
	expect(t, sc, engine.ReadUncommitted, true)
	expect(t, sc, engine.ReadCommitted, true)
	expect(t, sc, engine.CursorStability, true)
	expect(t, sc, engine.ReadConsistency, true)
	expect(t, sc, engine.RepeatableRead, false)
	expect(t, sc, engine.Serializable, false)
	expect(t, sc, engine.SnapshotIsolation, false)
}

// --- A5B Write Skew ---

func TestA5BMatrix(t *testing.T) {
	sc := A5BWriteSkew()
	expect(t, sc, engine.ReadUncommitted, true)
	expect(t, sc, engine.ReadCommitted, true)
	expect(t, sc, engine.CursorStability, true)   // plain reads
	expect(t, sc, engine.ReadConsistency, true)   // disjoint write locks don't conflict
	expect(t, sc, engine.SnapshotIsolation, true) // THE SI anomaly (H5)
	expect(t, sc, engine.RepeatableRead, false)   // long read locks: deadlock
	expect(t, sc, engine.Serializable, false)
}

func TestA5BTwoCursorGuardedAtCS(t *testing.T) {
	guarded, ok := Guarded("A5B")
	if !ok {
		t.Fatal("no guarded A5B variant")
	}
	expect(t, guarded, engine.CursorStability, false) // upgrade deadlock
	expect(t, guarded, engine.ReadUncommitted, true)  // no cursor locks at RU
}

// --- Cross-validation with the formal matchers ---

// When an anomaly occurs on a locking engine, the recorded execution
// history must exhibit the corresponding formal phenomenon.
func TestRecordedHistoriesExhibitPhenomena(t *testing.T) {
	cases := []struct {
		sc    Scenario
		level engine.Level
		id    phenomena.ID
	}{
		{P0DirtyWrite(), engine.Degree0, phenomena.P0},
		{P1DirtyRead(), engine.ReadUncommitted, phenomena.P1},
		{P4LostUpdate(), engine.ReadCommitted, phenomena.P4},
		{P4CCursorLostUpdate(), engine.ReadCommitted, phenomena.P4C},
		{P2FuzzyRead(), engine.ReadCommitted, phenomena.A2},
		{P3PhantomReread(), engine.RepeatableRead, phenomena.A3},
		{A5AReadSkew(), engine.ReadCommitted, phenomena.A5A},
		{A5BWriteSkew(), engine.ReadCommitted, phenomena.A5B},
	}
	for _, c := range cases {
		out, res, err := Run(c.sc, c.level)
		if err != nil {
			t.Fatalf("%s at %s: %v", c.sc.ID, c.level, err)
		}
		if !out.Anomaly {
			t.Fatalf("%s at %s should occur", c.sc.ID, c.level)
		}
		if len(res.History) == 0 {
			t.Fatalf("%s at %s: no recorded history", c.sc.ID, c.level)
		}
		if !phenomena.Exhibits(c.id, res.History) {
			t.Errorf("%s at %s: recorded history does not exhibit %s:\n%s",
				c.sc.ID, c.level, c.id, res.History)
		}
	}
}

// And the converse: when the engine prevents the anomaly, the recorded
// history must NOT exhibit the strict form of the phenomenon.
func TestPreventedRunsAreClean(t *testing.T) {
	cases := []struct {
		sc    Scenario
		level engine.Level
		id    phenomena.ID
	}{
		{P1DirtyRead(), engine.ReadCommitted, phenomena.A1},
		{P2FuzzyRead(), engine.RepeatableRead, phenomena.A2},
		{P3PhantomReread(), engine.Serializable, phenomena.A3},
		{P4LostUpdate(), engine.Serializable, phenomena.P4},
	}
	for _, c := range cases {
		out, res, err := Run(c.sc, c.level)
		if err != nil {
			t.Fatalf("%s at %s: %v", c.sc.ID, c.level, err)
		}
		if out.Anomaly {
			t.Fatalf("%s at %s should be prevented", c.sc.ID, c.level)
		}
		if phenomena.Exhibits(c.id, res.History) {
			t.Errorf("%s at %s: prevented run still shows %s:\n%s",
				c.sc.ID, c.level, c.id, res.History)
		}
	}
}

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) != 11 {
		t.Fatalf("catalog has %d scenarios", len(cat))
	}
	for _, id := range []string{"P0", "P1", "P4C", "P4", "P2", "P3", "A5A", "A5B"} {
		sc := Primary(id)
		if sc.ID != id || len(sc.Steps()) == 0 || sc.Check == nil {
			t.Errorf("primary %s malformed", id)
		}
	}
	for _, id := range []string{"P2", "A5B"} {
		if _, ok := Guarded(id); !ok {
			t.Errorf("missing guarded variant for %s", id)
		}
	}
	if _, ok := Guarded("P1"); ok {
		t.Error("P1 should have no guarded variant")
	}
}

func TestOutcomeString(t *testing.T) {
	if (Outcome{Anomaly: true, Details: "boom"}).String() == "" {
		t.Fatal("empty string")
	}
	if (Outcome{Mechanism: "blocked", Details: "ok"}).String() == "" {
		t.Fatal("empty string")
	}
}
