// Package anomalies is the executable catalog of the paper's anomalies:
// for every column of Table 4 (P0, P1, P4C, P4, P2, P3, A5A, A5B) it
// provides a live scenario — initial data, a scripted interleaving taken
// from the paper's own histories, and a detector that inspects the observed
// reads and the final committed state to decide whether the anomaly
// actually happened.
//
// Columns whose Table 4 cells say "Sometimes Possible" additionally carry a
// guarded variant: the same anomaly attempted by a more careful client
// (e.g. one that parks cursors on the rows it intends to update, the
// technique §4.1 describes for parlaying Cursor Stability into effective
// REPEATABLE READ). A level earns "Sometimes Possible" when the plain
// variant succeeds but the guarded variant is prevented.
//
//isolint:deterministic
package anomalies

import (
	"fmt"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/predicate"
	"isolevel/internal/schedule"
)

// Outcome describes what happened when a scenario ran at some level.
type Outcome struct {
	// Anomaly reports whether the anomaly manifested (the detector's
	// verdict on reads + final state).
	Anomaly bool
	// Mechanism explains how the engine prevented the anomaly (or "" when
	// it occurred): "blocked", "aborted", "snapshot".
	Mechanism string
	// Details is a human-readable account for reports.
	Details string
}

func (o Outcome) String() string {
	if o.Anomaly {
		return "ANOMALY: " + o.Details
	}
	return fmt.Sprintf("prevented (%s): %s", o.Mechanism, o.Details)
}

// Scenario is one runnable anomaly experiment.
type Scenario struct {
	// ID is the phenomenon this scenario witnesses (Table 4 column).
	ID string
	// Variant distinguishes plain from guarded scripts ("", "cursor",
	// "constraint", "two-cursors").
	Variant string
	// Description quotes the shape of the history being run.
	Description string
	// Setup is the initial committed state.
	Setup []data.Tuple
	// Steps builds a fresh script (closures capture no cross-run state).
	Steps func() []schedule.Step
	// Check inspects the result.
	Check func(db engine.DB, res *schedule.Result) Outcome
}

// mechanism classifies how a non-anomalous run was prevented.
func mechanism(res *schedule.Result) string {
	for _, a := range res.AutoAborted {
		if a {
			return "aborted"
		}
	}
	if res.AnyBlocked() {
		return "blocked"
	}
	return "snapshot"
}

// --- step helpers ---

func scalarSetup(kv map[string]int64) []data.Tuple {
	var out []data.Tuple
	for k, v := range kv {
		out = append(out, data.Tuple{Key: data.Key(k), Row: data.Scalar(v)})
	}
	data.SortTuples(out)
	return out
}

// rd reads key and remembers the value under var name key.
func rd(txn int, key string) schedule.Step {
	name := fmt.Sprintf("r%d[%s]", txn, key)
	return schedule.OpStep(txn, name, func(c *schedule.Ctx) (any, error) {
		v, err := engine.GetVal(c.Tx, data.Key(key))
		if err != nil {
			return nil, err
		}
		c.Vars[key] = v
		return v, nil
	})
}

// wr writes a constant.
func wr(txn int, key string, v int64) schedule.Step {
	name := fmt.Sprintf("w%d[%s=%d]", txn, key, v)
	return schedule.OpStep(txn, name, func(c *schedule.Ctx) (any, error) {
		return nil, engine.PutVal(c.Tx, data.Key(key), v)
	})
}

// wrDelta writes Vars[from] + delta into key (read-modify-write from the
// transaction's own earlier read — the lost-update shape).
func wrDelta(txn int, key, from string, delta int64) schedule.Step {
	name := fmt.Sprintf("w%d[%s=%s%+d]", txn, key, from, delta)
	return schedule.OpStep(txn, name, func(c *schedule.Ctx) (any, error) {
		return nil, engine.PutVal(c.Tx, data.Key(key), c.Int(from)+delta)
	})
}

// insert writes a full row.
func insert(txn int, key string, row data.Row) schedule.Step {
	name := fmt.Sprintf("w%d[insert %s]", txn, key)
	return schedule.OpStep(txn, name, func(c *schedule.Ctx) (any, error) {
		return nil, c.Tx.Put(data.Key(key), row)
	})
}

// selCount evaluates pred and remembers the row count under varName.
func selCount(txn int, varName, pred string) schedule.Step {
	p := predicate.MustParse(pred)
	name := fmt.Sprintf("r%d[P:%s]", txn, varName)
	return schedule.OpStep(txn, name, func(c *schedule.Ctx) (any, error) {
		rows, err := c.Tx.Select(p)
		if err != nil {
			return nil, err
		}
		c.Vars[varName] = int64(len(rows))
		return int64(len(rows)), nil
	})
}

// selSum evaluates pred and remembers sum(field) under varName.
func selSum(txn int, varName, pred, field string) schedule.Step {
	p := predicate.MustParse(pred)
	name := fmt.Sprintf("r%d[P:%s]", txn, varName)
	return schedule.OpStep(txn, name, func(c *schedule.Ctx) (any, error) {
		rows, err := c.Tx.Select(p)
		if err != nil {
			return nil, err
		}
		var sum int64
		for _, r := range rows {
			v, _ := r.Row.Get(field)
			sum += v
		}
		c.Vars[varName] = sum
		return sum, nil
	})
}

// openFetch opens a cursor on exactly key and fetches it (the paper's
// rc action), remembering the cursor under curName and the value under key.
func openFetch(txn int, curName, key string) schedule.Step {
	name := fmt.Sprintf("rc%d[%s]", txn, key)
	return schedule.OpStep(txn, name, func(c *schedule.Ctx) (any, error) {
		cur, err := c.Tx.OpenCursor(predicate.KeyEq{Key: data.Key(key)})
		if err != nil {
			return nil, err
		}
		c.Vars[curName] = cur
		tup, err := cur.Fetch()
		if err != nil {
			return nil, err
		}
		c.Vars[key] = tup.Row.Val()
		return tup.Row.Val(), nil
	})
}

// curRead re-reads the cursor's current row, remembering under varName.
func curRead(txn int, curName, varName string) schedule.Step {
	name := fmt.Sprintf("rc%d[%s again]", txn, varName)
	return schedule.OpStep(txn, name, func(c *schedule.Ctx) (any, error) {
		cur := c.Cursor(curName)
		if cur == nil {
			return nil, engine.ErrNoCursor
		}
		tup, err := cur.Current()
		if err != nil {
			return nil, err
		}
		c.Vars[varName] = tup.Row.Val()
		return tup.Row.Val(), nil
	})
}

// curUpdate writes v through the cursor (the paper's wc action).
func curUpdate(txn int, curName string, v int64) schedule.Step {
	name := fmt.Sprintf("wc%d[%s=%d]", txn, curName, v)
	return schedule.OpStep(txn, name, func(c *schedule.Ctx) (any, error) {
		cur := c.Cursor(curName)
		if cur == nil {
			return nil, engine.ErrNoCursor
		}
		return nil, cur.UpdateCurrent(data.Scalar(v))
	})
}

// curUpdateDelta writes Vars[from]+delta through the cursor.
func curUpdateDelta(txn int, curName, from string, delta int64) schedule.Step {
	name := fmt.Sprintf("wc%d[%s=%s%+d]", txn, curName, from, delta)
	return schedule.OpStep(txn, name, func(c *schedule.Ctx) (any, error) {
		cur := c.Cursor(curName)
		if cur == nil {
			return nil, engine.ErrNoCursor
		}
		return nil, cur.UpdateCurrent(data.Scalar(c.Int(from) + delta))
	})
}

func val(db engine.DB, key string) int64 {
	row := db.ReadCommittedRow(data.Key(key))
	return row.Val()
}

func stepInt(res *schedule.Result, name string) (int64, bool) {
	sr, ok := res.StepByName(name)
	if !ok || sr.Err != nil || sr.Value == nil {
		return 0, false
	}
	v, ok := sr.Value.(int64)
	return v, ok
}
