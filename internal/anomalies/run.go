package anomalies

import (
	"isolevel/internal/engine"
	"isolevel/internal/locking"
	"isolevel/internal/oraclerc"
	"isolevel/internal/schedule"
	"isolevel/internal/snapshot"
)

// NewDBFor instantiates the engine implementing the given isolation level:
// the Table 2 locking scheduler for the locking levels, the §4.2
// multiversion engine for SNAPSHOT ISOLATION, and the §4.3 statement-
// snapshot engine for READ CONSISTENCY.
func NewDBFor(level engine.Level) engine.DB {
	switch level {
	case engine.SnapshotIsolation:
		return snapshot.NewDB()
	case engine.ReadConsistency:
		return oraclerc.NewDB()
	default:
		return locking.NewDB()
	}
}

// NewDBForShards is NewDBFor with an explicit stripe count, honored by
// every engine family: the multiversion engines stripe their store (and,
// for Read Consistency, the write-lock manager), the locking engine its
// lock tables. shards <= 0 means each engine's default.
func NewDBForShards(level engine.Level, shards int) engine.DB {
	if shards <= 0 {
		return NewDBFor(level)
	}
	switch level {
	case engine.SnapshotIsolation:
		return snapshot.NewDB(snapshot.WithShards(shards))
	case engine.ReadConsistency:
		return oraclerc.NewDB(oraclerc.WithShards(shards))
	default:
		return locking.NewDB(locking.WithShards(shards))
	}
}

// Run executes the scenario on a fresh engine at the given level and
// returns the detector's verdict alongside the raw schedule result.
func Run(sc Scenario, level engine.Level) (Outcome, *schedule.Result, error) {
	db := NewDBFor(level)
	db.Load(sc.Setup...)
	res, err := schedule.Run(db, schedule.Options{Level: level}, sc.Steps())
	if err != nil {
		return Outcome{}, res, err
	}
	return sc.Check(db, res), res, nil
}
