package anomalies

import (
	"fmt"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/schedule"
)

// Catalog returns the full scenario catalog, keyed by Table 4 column and
// variant. Fresh scenarios are built on each call; they carry no state.
func Catalog() []Scenario {
	return []Scenario{
		P0DirtyWrite(),
		P1DirtyRead(),
		P4CCursorLostUpdate(),
		P4LostUpdate(),
		P2FuzzyRead(),
		P2FuzzyReadCursorGuarded(),
		P3PhantomReread(),
		P3PhantomConstraint(),
		A5AReadSkew(),
		A5BWriteSkew(),
		A5BWriteSkewCursorGuarded(),
	}
}

// Primary returns the plain scenario for a Table 4 column.
func Primary(id string) Scenario {
	for _, sc := range Catalog() {
		if sc.ID == id && sc.Variant == "" {
			return sc
		}
	}
	panic("anomalies: no primary scenario for " + id)
}

// Guarded returns the guarded variant for a column, if any.
func Guarded(id string) (Scenario, bool) {
	for _, sc := range Catalog() {
		if sc.ID == id && sc.Variant != "" && sc.Variant != "constraint" {
			return sc, true
		}
	}
	return Scenario{}, false
}

// P0DirtyWrite runs the paper's §3 dirty-write history
// w1[x=1] w2[x=2] w2[y=2] c2 w1[y=1] c1 against the constraint x == y.
// Interleaved uncommitted writes leave x=2, y=1.
func P0DirtyWrite() Scenario {
	return Scenario{
		ID:          "P0",
		Description: "w1[x=1] w2[x=2] w2[y=2] c2 w1[y=1] c1 under constraint x == y",
		Setup:       scalarSetup(map[string]int64{"x": 0, "y": 0}),
		Steps: func() []schedule.Step {
			return []schedule.Step{
				wr(1, "x", 1),
				wr(2, "x", 2),
				wr(2, "y", 2),
				schedule.CommitStep(2),
				wr(1, "y", 1),
				schedule.CommitStep(1),
			}
		},
		Check: func(db engine.DB, res *schedule.Result) Outcome {
			x, y := val(db, "x"), val(db, "y")
			if x != y {
				return Outcome{Anomaly: true,
					Details: fmtDetails("final x=%d y=%d violates x == y (both writers' values survive partially)", x, y)}
			}
			return Outcome{Mechanism: mechanism(res),
				Details: fmtDetails("final x=%d y=%d consistent", x, y)}
		},
	}
}

// P1DirtyRead runs the inconsistent-analysis read of an uncommitted
// transfer: w1[x=10] r2[x] r2[y] c2 a1 against invariant x + y == 100.
func P1DirtyRead() Scenario {
	return Scenario{
		ID:          "P1",
		Description: "w1[x=10] r2[x] r2[y] c2 a1: T2 sums a 40-in-flight transfer",
		Setup:       scalarSetup(map[string]int64{"x": 50, "y": 50}),
		Steps: func() []schedule.Step {
			return []schedule.Step{
				wr(1, "x", 10),
				rd(2, "x"),
				rd(2, "y"),
				schedule.CommitStep(2),
				schedule.AbortStep(1),
			}
		},
		Check: func(db engine.DB, res *schedule.Result) Outcome {
			x, okx := stepInt(res, "r2[x]")
			y, oky := stepInt(res, "r2[y]")
			if okx && oky && x+y != 100 {
				return Outcome{Anomaly: true,
					Details: fmtDetails("T2 saw x+y = %d (read uncommitted, later rolled-back data)", x+y)}
			}
			return Outcome{Mechanism: mechanism(res),
				Details: fmtDetails("T2 saw x+y = %d", x+y)}
		},
	}
}

// P4CCursorLostUpdate runs H4's cursor form (§4.1):
// rc1[x=100] w2[x=120] c2 wc1[x=130] c1.
func P4CCursorLostUpdate() Scenario {
	return Scenario{
		ID:          "P4C",
		Description: "H4C: rc1[x=100] w2[x=120] c2 wc1[x=130] c1",
		Setup:       scalarSetup(map[string]int64{"x": 100}),
		Steps: func() []schedule.Step {
			return []schedule.Step{
				openFetch(1, "cur", "x"),
				wr(2, "x", 120),
				schedule.CommitStep(2),
				curUpdateDelta(1, "cur", "x", 30),
				schedule.CommitStep(1),
			}
		},
		Check: lostUpdateCheck,
	}
}

// P4LostUpdate runs H4 (§4.1):
// r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1.
func P4LostUpdate() Scenario {
	return Scenario{
		ID:          "P4",
		Description: "H4: r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1",
		Setup:       scalarSetup(map[string]int64{"x": 100}),
		Steps: func() []schedule.Step {
			return []schedule.Step{
				rd(1, "x"),
				rd(2, "x"),
				wrDelta(2, "x", "x", 20),
				schedule.CommitStep(2),
				wrDelta(1, "x", "x", 30),
				schedule.CommitStep(1),
			}
		},
		Check: lostUpdateCheck,
	}
}

// lostUpdateCheck: both committed and T2's +20 vanished (final 130 instead
// of 150).
func lostUpdateCheck(db engine.DB, res *schedule.Result) Outcome {
	x := val(db, "x")
	if res.Committed[1] && res.Committed[2] && x == 130 {
		return Outcome{Anomaly: true,
			Details: fmtDetails("final x=%d: T2's +20 was overwritten by T1's stale read-modify-write", x)}
	}
	return Outcome{Mechanism: mechanism(res),
		Details: fmtDetails("final x=%d, committed T1=%v T2=%v", x, res.Committed[1], res.Committed[2])}
}

// P2FuzzyRead runs the strict-A2 manifestation:
// r1[x=50] w2[x=10] c2 r1[x] c1 — T1's two reads differ.
func P2FuzzyRead() Scenario {
	return Scenario{
		ID:          "P2",
		Description: "r1[x=50] w2[x=10] c2 r1[x again] c1",
		Setup:       scalarSetup(map[string]int64{"x": 50}),
		Steps: func() []schedule.Step {
			return []schedule.Step{
				rd(1, "x"),
				wr(2, "x", 10),
				schedule.CommitStep(2),
				reread(1, "x", "x2"),
				schedule.CommitStep(1),
			}
		},
		Check: func(db engine.DB, res *schedule.Result) Outcome {
			first, ok1 := stepInt(res, "r1[x]")
			second, ok2 := stepInt(res, "r1[x again]")
			if ok1 && ok2 && first != second {
				return Outcome{Anomaly: true,
					Details: fmtDetails("T1 read %d then %d (non-repeatable)", first, second)}
			}
			return Outcome{Mechanism: mechanism(res),
				Details: fmtDetails("T1 read %d then %d", first, second)}
		},
	}
}

func reread(txn int, key, varName string) schedule.Step {
	s := rd(txn, key)
	s.Name = fmtDetails("r%d[%s again]", txn, key)
	inner := s.Do
	s.Do = func(c *schedule.Ctx) (any, error) {
		v, err := inner(c)
		if err == nil {
			c.Vars[varName] = v
		}
		return v, err
	}
	return s
}

// P2FuzzyReadCursorGuarded is the guarded variant: T1 parks a cursor on x
// (§4.1's stabilization technique), so at Cursor Stability the overwrite
// blocks and the reread is stable.
func P2FuzzyReadCursorGuarded() Scenario {
	return Scenario{
		ID:          "P2",
		Variant:     "cursor",
		Description: "rc1[x=50] w2[x=10] rc1[x again] c1 c2 — cursor parked on x",
		Setup:       scalarSetup(map[string]int64{"x": 50}),
		Steps: func() []schedule.Step {
			return []schedule.Step{
				openFetch(1, "cur", "x"),
				wr(2, "x", 10),
				curRead(1, "cur", "x2"),
				schedule.CommitStep(1),
				schedule.CommitStep(2),
			}
		},
		Check: func(db engine.DB, res *schedule.Result) Outcome {
			first, ok1 := stepInt(res, "rc1[x]")
			second, ok2 := stepInt(res, "rc1[x2 again]")
			if ok1 && ok2 && first != second {
				return Outcome{Anomaly: true,
					Details: fmtDetails("cursor read %d then %d", first, second)}
			}
			return Outcome{Mechanism: mechanism(res),
				Details: fmtDetails("cursor reads stable at %d", first)}
		},
	}
}

// P3PhantomReread runs H3's shape as a strict-A3 manifestation: T1 counts
// active employees, T2 inserts one and commits, T1 re-counts.
func P3PhantomReread() Scenario {
	return Scenario{
		ID:          "P3",
		Description: "r1[P] w2[insert e3 in P] c2 r1[P again] c1, P = active employees",
		Setup: []data.Tuple{
			{Key: "emp:1", Row: data.Row{"active": 1}},
			{Key: "emp:2", Row: data.Row{"active": 1}},
		},
		Steps: func() []schedule.Step {
			return []schedule.Step{
				selCount(1, "n1", "active == 1"),
				insert(2, "emp:3", data.Row{"active": 1}),
				schedule.CommitStep(2),
				selCount(1, "n2", "active == 1"),
				schedule.CommitStep(1),
			}
		},
		Check: func(db engine.DB, res *schedule.Result) Outcome {
			n1, ok1 := stepInt(res, "r1[P:n1]")
			n2, ok2 := stepInt(res, "r1[P:n2]")
			if ok1 && ok2 && n1 != n2 {
				return Outcome{Anomaly: true,
					Details: fmtDetails("predicate returned %d then %d rows (phantom)", n1, n2)}
			}
			return Outcome{Mechanism: mechanism(res),
				Details: fmtDetails("predicate stable at %d rows", n1)}
		},
	}
}

// P3PhantomConstraint is the paper's §4.2 closing example: tasks under a
// predicate must sum to <= 8 hours; two transactions each see 7, each
// insert a 1-hour task (disjoint keys!), both commit — the committed state
// has 9 hours. This is the P3 phantom Snapshot Isolation does NOT preclude.
func P3PhantomConstraint() Scenario {
	return Scenario{
		ID:          "P3",
		Variant:     "constraint",
		Description: "two txns check sum(hours)<=8 then insert disjoint 1h tasks (SI's P3)",
		Setup: []data.Tuple{
			{Key: "task:1", Row: data.Row{"hours": 4}},
			{Key: "task:2", Row: data.Row{"hours": 3}},
		},
		Steps: func() []schedule.Step {
			return []schedule.Step{
				selSum(1, "s1", `key ~ "task:"`, "hours"),
				selSum(2, "s2", `key ~ "task:"`, "hours"),
				insert(1, "task:3", data.Row{"hours": 1}),
				insert(2, "task:4", data.Row{"hours": 1}),
				schedule.CommitStep(1),
				schedule.CommitStep(2),
			}
		},
		Check: func(db engine.DB, res *schedule.Result) Outcome {
			var sum int64
			for _, k := range []string{"task:1", "task:2", "task:3", "task:4"} {
				if row := db.ReadCommittedRow(data.Key(k)); row != nil {
					h, _ := row.Get("hours")
					sum += h
				}
			}
			if res.Committed[1] && res.Committed[2] && sum > 8 {
				return Outcome{Anomaly: true,
					Details: fmtDetails("committed sum(hours)=%d > 8 — both inserts slipped past the predicate", sum)}
			}
			return Outcome{Mechanism: mechanism(res),
				Details: fmtDetails("committed sum(hours)=%d", sum)}
		},
	}
}

// A5AReadSkew runs r1[x=50] w2[x=10] w2[y=90] c2 r1[y] c1 against the
// invariant x + y == 100.
func A5AReadSkew() Scenario {
	return Scenario{
		ID:          "A5A",
		Description: "r1[x=50] w2[x=10] w2[y=90] c2 r1[y] c1, invariant x+y == 100",
		Setup:       scalarSetup(map[string]int64{"x": 50, "y": 50}),
		Steps: func() []schedule.Step {
			return []schedule.Step{
				rd(1, "x"),
				wr(2, "x", 10),
				wr(2, "y", 90),
				schedule.CommitStep(2),
				rd(1, "y"),
				schedule.CommitStep(1),
			}
		},
		Check: func(db engine.DB, res *schedule.Result) Outcome {
			x, okx := stepInt(res, "r1[x]")
			y, oky := stepInt(res, "r1[y]")
			if okx && oky && x+y != 100 {
				return Outcome{Anomaly: true,
					Details: fmtDetails("T1 saw x+y = %d (x before, y after T2's consistent update)", x+y)}
			}
			return Outcome{Mechanism: mechanism(res),
				Details: fmtDetails("T1 saw x+y = %d", x+y)}
		},
	}
}

// A5BWriteSkew runs H5 (§4.2): r1[x] r1[y] r2[x] r2[y] w1[y=-40] w2[x=-40]
// c1 c2 against the constraint x + y > 0.
func A5BWriteSkew() Scenario {
	return Scenario{
		ID:          "A5B",
		Description: "H5: r1[x] r1[y] r2[x] r2[y] w1[y=-40] w2[x=-40] c1 c2, constraint x+y > 0",
		Setup:       scalarSetup(map[string]int64{"x": 50, "y": 50}),
		Steps: func() []schedule.Step {
			return []schedule.Step{
				rd(1, "x"),
				rd(1, "y"),
				rd(2, "x"),
				rd(2, "y"),
				wr(1, "y", -40),
				wr(2, "x", -40),
				schedule.CommitStep(1),
				schedule.CommitStep(2),
			}
		},
		Check: writeSkewCheck,
	}
}

// A5BWriteSkewCursorGuarded: each transaction parks cursors on both x and y
// before writing (multiple cursors, §4.1's workaround), turning the skew
// into an upgrade deadlock at Cursor Stability.
func A5BWriteSkewCursorGuarded() Scenario {
	return Scenario{
		ID:          "A5B",
		Variant:     "two-cursors",
		Description: "H5 with both txns holding cursors on x and y before writing",
		Setup:       scalarSetup(map[string]int64{"x": 50, "y": 50}),
		Steps: func() []schedule.Step {
			return []schedule.Step{
				openFetch(1, "c1x", "x"),
				openFetch(1, "c1y", "y"),
				openFetch(2, "c2x", "x"),
				openFetch(2, "c2y", "y"),
				curUpdate(1, "c1y", -40),
				curUpdate(2, "c2x", -40),
				schedule.CommitStep(1),
				schedule.CommitStep(2),
			}
		},
		Check: writeSkewCheck,
	}
}

func writeSkewCheck(db engine.DB, res *schedule.Result) Outcome {
	x, y := val(db, "x"), val(db, "y")
	if res.Committed[1] && res.Committed[2] && x+y < 0 {
		return Outcome{Anomaly: true,
			Details: fmtDetails("committed x+y = %d < 0 — both withdrawals honored a stale constraint check", x+y)}
	}
	return Outcome{Mechanism: mechanism(res),
		Details: fmtDetails("committed x+y = %d, committed T1=%v T2=%v", x+y, res.Committed[1], res.Committed[2])}
}

func fmtDetails(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
