package anomalies

import (
	"testing"

	"isolevel/internal/engine"
	"isolevel/internal/phenomena"
)

// Exhaustive smoke: every scenario in the catalog runs at every level
// without runner errors, and with structurally sane results — the full
// 11 × 8 sweep behind Table 4 and its variants.
func TestFullCatalogAcrossAllLevels(t *testing.T) {
	for _, sc := range Catalog() {
		for _, level := range engine.Levels {
			out, res, err := Run(sc, level)
			if err != nil {
				t.Fatalf("%s/%s at %s: %v", sc.ID, sc.Variant, level, err)
			}
			if out.Anomaly && out.Mechanism != "" {
				t.Errorf("%s/%s at %s: occurred outcome carries a mechanism %q", sc.ID, sc.Variant, level, out.Mechanism)
			}
			if !out.Anomaly && out.Mechanism == "" {
				t.Errorf("%s/%s at %s: prevented outcome lacks a mechanism", sc.ID, sc.Variant, level)
			}
			// Every step is accounted for: completed, skipped, or blocked
			// then completed; none left dangling.
			for _, st := range res.Steps {
				if !st.Skipped && st.Err == nil && st.Name == "" {
					t.Errorf("%s/%s at %s: anonymous step result %+v", sc.ID, sc.Variant, level, st)
				}
			}
			// The recorded history (when present) is structurally valid.
			if len(res.History) > 0 {
				if err := res.History.Validate(); err != nil {
					t.Errorf("%s/%s at %s: invalid recorded history: %v\n%s", sc.ID, sc.Variant, level, err, res.History)
				}
			}
		}
	}
}

// Monotonicity across the locking chain: if a locking level prevents a
// scenario, every stronger locking level prevents it too (Remark 1
// operationally, over the whole catalog).
func TestLockingChainMonotonicity(t *testing.T) {
	chain := []engine.Level{
		engine.Degree0, engine.ReadUncommitted, engine.ReadCommitted,
		engine.CursorStability, engine.RepeatableRead, engine.Serializable,
	}
	for _, sc := range Catalog() {
		prevented := false
		for _, level := range chain {
			out, _, err := Run(sc, level)
			if err != nil {
				t.Fatalf("%s/%s at %s: %v", sc.ID, sc.Variant, level, err)
			}
			if prevented && out.Anomaly {
				t.Errorf("%s/%s: prevented at a weaker level but occurred at %s", sc.ID, sc.Variant, level)
			}
			if !out.Anomaly {
				prevented = true
			}
		}
	}
}

// SERIALIZABLE prevents every scenario in the catalog; Degree 0 prevents
// none of them.
func TestExtremesOfTheChain(t *testing.T) {
	for _, sc := range Catalog() {
		out, _, err := Run(sc, engine.Serializable)
		if err != nil {
			t.Fatalf("%s/%s: %v", sc.ID, sc.Variant, err)
		}
		if out.Anomaly {
			t.Errorf("%s/%s occurred at SERIALIZABLE: %s", sc.ID, sc.Variant, out.Details)
		}
		out, _, err = Run(sc, engine.Degree0)
		if err != nil {
			t.Fatalf("%s/%s: %v", sc.ID, sc.Variant, err)
		}
		if !out.Anomaly {
			t.Errorf("%s/%s prevented at Degree 0 (%s): the weakest level should allow it",
				sc.ID, sc.Variant, out.Mechanism)
		}
	}
}

// Deterministic: the same scenario at the same level yields the same
// verdict on repeated runs (the runner is observer-driven, not timing-
// driven).
func TestScenarioDeterminism(t *testing.T) {
	interesting := []struct {
		id    string
		level engine.Level
	}{
		{"P4", engine.RepeatableRead},     // deadlock path
		{"A5B", engine.SnapshotIsolation}, // FCW path
		{"P4C", engine.CursorStability},   // blocking path
		{"P3", engine.Serializable},       // predicate-lock path
	}
	for _, c := range interesting {
		sc := Primary(c.id)
		first, _, err := Run(sc, c.level)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			out, _, err := Run(sc, c.level)
			if err != nil {
				t.Fatal(err)
			}
			if out.Anomaly != first.Anomaly || out.Mechanism != first.Mechanism {
				t.Fatalf("%s at %s: run %d diverged: %v vs %v", c.id, c.level, i, out, first)
			}
		}
	}
}

// The live scenarios and the syntactic paper histories agree: for each
// locking level, the phenomena its Table 3 acceptor forbids are exactly
// those whose scenarios it prevents (already covered per-cell in matrix;
// here as a catalog-wide consistency pass over the strict manifestations).
func TestScenarioVsMatcherConsistency(t *testing.T) {
	cases := []struct {
		id      string
		level   engine.Level
		matcher phenomena.ID
	}{
		{"P1", engine.ReadUncommitted, phenomena.P1},
		{"P2", engine.ReadCommitted, phenomena.P2},
		{"P4", engine.CursorStability, phenomena.P4},
		{"A5A", engine.CursorStability, phenomena.A5A},
		{"A5B", engine.ReadCommitted, phenomena.A5B},
	}
	for _, c := range cases {
		out, res, err := Run(Primary(c.id), c.level)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Anomaly {
			t.Fatalf("%s at %s expected to occur", c.id, c.level)
		}
		if len(res.History) > 0 && !phenomena.Exhibits(c.matcher, res.History) {
			t.Errorf("%s at %s: detector fired but matcher %s found nothing in:\n%s",
				c.id, c.level, c.matcher, res.History)
		}
	}
}
