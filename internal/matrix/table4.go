// Package matrix regenerates the paper's evaluation artifacts — Tables 1,
// 2, 3, 4 and Figure 2 — from live engine runs and from the formal
// acceptors, and diffs them against the paper's published values.
//
//isolint:deterministic
package matrix

import (
	"fmt"

	"isolevel/internal/anomalies"
	"isolevel/internal/engine"
	"isolevel/internal/report"
)

// Cell is one entry of Table 4.
type Cell int

// Cell values, ordered by how much the level allows.
const (
	NotPossible Cell = iota
	SometimesPossible
	Possible
)

func (c Cell) String() string {
	switch c {
	case NotPossible:
		return "Not Possible"
	case SometimesPossible:
		return "Sometimes Possible"
	case Possible:
		return "Possible"
	}
	return fmt.Sprintf("Cell(%d)", int(c))
}

// Columns is Table 4's column order.
var Columns = []string{"P0", "P1", "P4C", "P4", "P2", "P3", "A5A", "A5B"}

// PaperLevels are the rows of the paper's Table 4, in row order.
var PaperLevels = []engine.Level{
	engine.ReadUncommitted, engine.ReadCommitted, engine.CursorStability,
	engine.RepeatableRead, engine.SnapshotIsolation, engine.Serializable,
}

// ExtensionLevels are the additional rows this reproduction measures:
// Degree 0 ([GLPT]'s weakest level, Table 2 row 1) and Oracle Read
// Consistency (§4.3; it appears in Figure 2 but not in Table 4).
var ExtensionLevels = []engine.Level{engine.Degree0, engine.ReadConsistency}

// CellResult is one measured cell with its evidence.
type CellResult struct {
	Cell    Cell
	Primary anomalies.Outcome
	// Guard is the guarded-variant outcome where one exists (cursor-parked
	// P2, cursor-form P4, two-cursor A5B, re-read form of P3).
	Guard *anomalies.Outcome
}

// Table4Result is the measured matrix.
type Table4Result struct {
	Levels []engine.Level
	Cells  map[engine.Level]map[string]CellResult
}

// guardScenario returns the guarded variant used for a column's
// "Sometimes Possible" determination.
func guardScenario(col string) (anomalies.Scenario, bool) {
	switch col {
	case "P4":
		// The guarded form of the lost update is the cursor form — P4C's
		// own scenario (§4.1: Cursor Stability prevents exactly that).
		return anomalies.Primary("P4C"), true
	case "P2", "A5B":
		return anomalies.Guarded(col)
	}
	return anomalies.Scenario{}, false
}

// RunCell measures one (level, column) cell.
//
// Rules (matching how the paper assigns "Sometimes Possible"):
//
//   - The primary scenario prevented ⇒ Not Possible — except for P3, where
//     the paper's SI analysis distinguishes the re-read phantom (A3 form,
//     impossible under SI) from the constraint phantom (possible): if the
//     re-read form is prevented but the constraint form occurs, the cell is
//     Sometimes Possible (the SI row's "Sometimes Possible" for P3).
//   - The primary occurred and a guarded variant exists and is prevented ⇒
//     Sometimes Possible (a careful client can protect itself — the Cursor
//     Stability row's P4/P2/A5B cells).
//   - Otherwise ⇒ Possible.
func RunCell(level engine.Level, col string) (CellResult, error) {
	if col == "P3" {
		return runP3Cell(level)
	}
	primary, _, err := anomalies.Run(anomalies.Primary(col), level)
	if err != nil {
		return CellResult{}, fmt.Errorf("matrix: %s at %s: %w", col, level, err)
	}
	out := CellResult{Primary: primary}
	if !primary.Anomaly {
		out.Cell = NotPossible
		return out, nil
	}
	if guard, ok := guardScenario(col); ok {
		g, _, err := anomalies.Run(guard, level)
		if err != nil {
			return CellResult{}, fmt.Errorf("matrix: %s guard at %s: %w", col, level, err)
		}
		out.Guard = &g
		if !g.Anomaly {
			out.Cell = SometimesPossible
			return out, nil
		}
	}
	out.Cell = Possible
	return out, nil
}

func runP3Cell(level engine.Level) (CellResult, error) {
	reread, _, err := anomalies.Run(anomalies.Primary("P3"), level)
	if err != nil {
		return CellResult{}, fmt.Errorf("matrix: P3 at %s: %w", level, err)
	}
	constraint, _, err := anomalies.Run(constraintP3(), level)
	if err != nil {
		return CellResult{}, fmt.Errorf("matrix: P3 constraint at %s: %w", level, err)
	}
	out := CellResult{Primary: reread, Guard: &constraint}
	switch {
	case reread.Anomaly:
		out.Cell = Possible
	case constraint.Anomaly:
		out.Cell = SometimesPossible
	default:
		out.Cell = NotPossible
	}
	return out, nil
}

func constraintP3() anomalies.Scenario {
	for _, sc := range anomalies.Catalog() {
		if sc.ID == "P3" && sc.Variant == "constraint" {
			return sc
		}
	}
	panic("matrix: constraint P3 scenario missing")
}

// RunTable4 measures the full matrix for the given levels (defaults to the
// paper's six rows when levels is empty).
func RunTable4(levels ...engine.Level) (*Table4Result, error) {
	if len(levels) == 0 {
		levels = PaperLevels
	}
	res := &Table4Result{Levels: levels, Cells: map[engine.Level]map[string]CellResult{}}
	for _, lvl := range levels {
		res.Cells[lvl] = map[string]CellResult{}
		for _, col := range Columns {
			cr, err := RunCell(lvl, col)
			if err != nil {
				return nil, err
			}
			res.Cells[lvl][col] = cr
		}
	}
	return res, nil
}

// PaperTable4 is the published Table 4 ("Isolation Types Characterized by
// Possible Anomalies Allowed").
func PaperTable4() map[engine.Level]map[string]Cell {
	P, S, N := Possible, SometimesPossible, NotPossible
	return map[engine.Level]map[string]Cell{
		engine.ReadUncommitted:   {"P0": N, "P1": P, "P4C": P, "P4": P, "P2": P, "P3": P, "A5A": P, "A5B": P},
		engine.ReadCommitted:     {"P0": N, "P1": N, "P4C": P, "P4": P, "P2": P, "P3": P, "A5A": P, "A5B": P},
		engine.CursorStability:   {"P0": N, "P1": N, "P4C": N, "P4": S, "P2": S, "P3": P, "A5A": P, "A5B": S},
		engine.RepeatableRead:    {"P0": N, "P1": N, "P4C": N, "P4": N, "P2": N, "P3": P, "A5A": N, "A5B": N},
		engine.SnapshotIsolation: {"P0": N, "P1": N, "P4C": N, "P4": N, "P2": N, "P3": S, "A5A": N, "A5B": P},
		engine.Serializable:      {"P0": N, "P1": N, "P4C": N, "P4": N, "P2": N, "P3": N, "A5A": N, "A5B": N},
	}
}

// ExtensionTable4 is the expected Table 4 rows for this reproduction's two
// extension levels, in the same cell convention as PaperTable4:
//
//   - Degree 0 ([GLPT], Table 2 row 1): short write locks only — action
//     atomicity and nothing else. Every phenomenon including Dirty Write
//     is possible.
//   - Oracle Read Consistency (§4.3): statement snapshots never expose
//     uncommitted data (no P0/P1), and the cursor write-consistency check
//     prevents the cursor form of the lost update — but only the cursor
//     form, so P4C is Sometimes Possible (a client that reads through the
//     cursor but writes around it still loses the update). Everything
//     else — P4, P2, P3, A5A, A5B — remains possible.
//
// The differential fuzzer (internal/exerciser) uses these rows, merged
// with PaperTable4, as its oracle for the extension levels.
func ExtensionTable4() map[engine.Level]map[string]Cell {
	P, S, N := Possible, SometimesPossible, NotPossible
	return map[engine.Level]map[string]Cell{
		engine.Degree0:         {"P0": P, "P1": P, "P4C": P, "P4": P, "P2": P, "P3": P, "A5A": P, "A5B": P},
		engine.ReadConsistency: {"P0": N, "P1": N, "P4C": S, "P4": P, "P2": P, "P3": P, "A5A": P, "A5B": P},
	}
}

// DiffPaper compares the measured matrix against the published Table 4 for
// the paper's rows and returns a list of mismatches (empty = exact
// reproduction).
func (r *Table4Result) DiffPaper() []string {
	var diffs []string
	want := PaperTable4()
	for _, lvl := range r.Levels {
		expected, ok := want[lvl]
		if !ok {
			continue // extension row, not in the paper
		}
		for _, col := range Columns {
			got := r.Cells[lvl][col].Cell
			if got != expected[col] {
				diffs = append(diffs, fmt.Sprintf("%s %s: measured %s, paper says %s",
					lvl, col, got, expected[col]))
			}
		}
	}
	return diffs
}

// Report renders the measured matrix in the paper's Table 4 layout.
func (r *Table4Result) Report() *report.Table {
	t := &report.Table{
		Title: "Table 4. Isolation Types Characterized by Possible Anomalies Allowed (measured)",
		Headers: append([]string{"Isolation level"},
			"P0 Dirty Write", "P1 Dirty Read", "P4C Cursor Lost Update", "P4 Lost Update",
			"P2 Fuzzy Read", "P3 Phantom", "A5A Read Skew", "A5B Write Skew"),
	}
	for _, lvl := range r.Levels {
		row := []string{lvl.String()}
		for _, col := range Columns {
			row = append(row, r.Cells[lvl][col].Cell.String())
		}
		t.AddRow(row...)
	}
	if diffs := r.DiffPaper(); len(diffs) == 0 {
		t.Notes = append(t.Notes, "All cells for the paper's six rows match the published Table 4.")
	} else {
		for _, d := range diffs {
			t.Notes = append(t.Notes, "MISMATCH: "+d)
		}
	}
	return t
}
