package matrix

import (
	"fmt"
	"time"

	"isolevel/internal/ansi"
	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/history"
	"isolevel/internal/locking"
	"isolevel/internal/phenomena"
	"isolevel/internal/predicate"
	"isolevel/internal/report"
)

// --- Table 1 and Table 3 ---

// phenomenonWitness returns a minimal history exhibiting exactly the given
// broad phenomenon (and none of the stronger ones), used to probe the
// phenomenon-based level acceptors.
func phenomenonWitness(id phenomena.ID) history.History {
	switch id {
	case phenomena.P0:
		return history.MustParse("w1[x] w2[x] c1 c2")
	case phenomena.P1:
		return history.MustParse("w1[x] r2[x] c1 c2")
	case phenomena.P2:
		return history.MustParse("r1[x] w2[x] c2 c1")
	case phenomena.P3:
		return history.MustParse("r1[P] w2[y in P] c2 c1")
	}
	panic("matrix: no witness for " + string(id))
}

// RunTable1 regenerates the paper's Table 1 under the broad reading: for
// each ANSI level, a phenomenon is "Possible" iff the level's acceptor
// admits the phenomenon's witness history.
func RunTable1() *report.Table {
	t := &report.Table{
		Title:   "Table 1. ANSI SQL Isolation Levels Defined in terms of the Three Original Phenomena (regenerated, broad interpretation)",
		Headers: []string{"Isolation Level", "P1 (or A1) Dirty Read", "P2 (or A2) Fuzzy Read", "P3 (or A3) Phantom"},
	}
	cols := []phenomena.ID{phenomena.P1, phenomena.P2, phenomena.P3}
	for _, lvl := range ansi.Table1Broad {
		row := []string{lvl.Name}
		for _, col := range cols {
			if lvl.Admits(phenomenonWitness(col)) {
				row = append(row, "Possible")
			} else {
				row = append(row, "Not Possible")
			}
		}
		t.AddRow(row...)
	}
	// The paper's §3 punchlines, verified live by the acceptors:
	if ansi.AnomalySerializable.Admits(history.H5()) {
		t.Notes = append(t.Notes,
			"Note: H5 (write skew) passes ANOMALY SERIALIZABLE yet is not serializable — Table 1 is not a serializability definition.")
	}
	if ansi.ReadCommittedA1.Admits(history.H1()) && !ansi.ReadCommittedP.Admits(history.H1()) {
		t.Notes = append(t.Notes,
			"Note: H1 passes the strict (A1) reading of READ COMMITTED but not the broad (P1) reading — Remark 4.")
	}
	return t
}

// RunTable3 regenerates Table 3 (the repaired, P0-including definitions).
func RunTable3() *report.Table {
	t := &report.Table{
		Title:   "Table 3. ANSI SQL Isolation Levels Defined in terms of the four phenomena (regenerated)",
		Headers: []string{"Isolation Level", "P0 Dirty Write", "P1 Dirty Read", "P2 Fuzzy Read", "P3 Phantom"},
	}
	cols := []phenomena.ID{phenomena.P0, phenomena.P1, phenomena.P2, phenomena.P3}
	for _, lvl := range ansi.Table3 {
		row := []string{lvl.Name}
		for _, col := range cols {
			if lvl.Admits(phenomenonWitness(col)) {
				row = append(row, "Possible")
			} else {
				row = append(row, "Not Possible")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// VerifyRemark6 checks Remark 6: the phenomenon-based levels of Table 3
// coincide with the behavior of the locking engine of Table 2. For each of
// the four shared levels and each phenomenon P0–P3 it compares (a) whether
// the ansi acceptor admits the phenomenon's witness against (b) whether the
// live locking engine lets the corresponding anomaly occur (from a measured
// Table 4). Returns mismatches.
func VerifyRemark6(measured *Table4Result) []string {
	pairs := []struct {
		level engine.Level
		ansiL ansi.Level
	}{
		{engine.ReadUncommitted, ansi.ReadUncommitted},
		{engine.ReadCommitted, ansi.ReadCommitted},
		{engine.RepeatableRead, ansi.RepeatableRead},
		{engine.Serializable, ansi.Serializable},
	}
	var out []string
	for _, pr := range pairs {
		for _, col := range []phenomena.ID{phenomena.P0, phenomena.P1, phenomena.P2, phenomena.P3} {
			admits := pr.ansiL.Admits(phenomenonWitness(col))
			cell, ok := measured.Cells[pr.level][string(col)]
			if !ok {
				continue
			}
			occurs := cell.Cell != NotPossible
			if admits != occurs {
				out = append(out, fmt.Sprintf("Remark 6: %s %s: acceptor admits=%v, locking engine occurs=%v",
					pr.level, col, admits, occurs))
			}
		}
	}
	return out
}

// --- Table 2 ---

// MeasuredProtocol is the behaviorally probed lock protocol of one level.
type MeasuredProtocol struct {
	Level      engine.Level
	ReadItem   locking.Duration
	ReadPred   locking.Duration
	WriteItem  locking.Duration
	CursorRead locking.Duration
}

const probeWait = 60 * time.Millisecond

// probe runs fn on its own goroutine and reports whether it finished
// within the window. The returned channel closes when fn eventually
// returns; callers must receive from it before reusing fn's transaction.
func probe(fn func()) (blocked bool, done <-chan struct{}) {
	ch := make(chan struct{})
	go func() { fn(); close(ch) }()
	select {
	case <-ch:
		return false, ch
	case <-time.After(probeWait):
		return true, ch
	}
}

// ProbeLevel measures the lock durations of a locking level with live
// conflict probes, regenerating Table 2's entries observationally:
//
//	write-item:  does a second writer block while the first is uncommitted?
//	read-item:   does a reader block on an uncommitted write (short or
//	             long), and does a writer block after the read (long)?
//	read-pred:   the same two probes with a predicate Select vs a matching
//	             insert.
//	cursor-read: does a writer block while a cursor sits on the row, and is
//	             it released when the cursor moves (while-current) or only
//	             at commit (long)?
func ProbeLevel(level engine.Level) (MeasuredProtocol, error) {
	mp := MeasuredProtocol{Level: level}

	// Write-item duration.
	{
		db := locking.NewDB()
		db.Load(data.Tuple{Key: "x", Row: data.Scalar(0)})
		t1, err := db.Begin(level)
		if err != nil {
			return mp, err
		}
		if err := engine.PutVal(t1, "x", 1); err != nil {
			return mp, err
		}
		t2, _ := db.Begin(level)
		blocked, done := probe(func() { _ = engine.PutVal(t2, "x", 2) })
		if blocked {
			mp.WriteItem = locking.DurLong
		} else {
			mp.WriteItem = locking.DurShort
		}
		_ = t1.Commit()
		<-done
		_ = t2.Commit()
	}

	// Read-item duration.
	{
		db := locking.NewDB()
		db.Load(data.Tuple{Key: "x", Row: data.Scalar(0)})
		t1, _ := db.Begin(level)
		_ = engine.PutVal(t1, "x", 1)
		t2, _ := db.Begin(level)
		readBlocked, done := probe(func() { _, _ = engine.GetVal(t2, "x") })
		_ = t1.Commit()
		<-done
		_ = t2.Abort()

		db2 := locking.NewDB()
		db2.Load(data.Tuple{Key: "x", Row: data.Scalar(0)})
		r, _ := db2.Begin(level)
		if _, err := engine.GetVal(r, "x"); err != nil {
			return mp, err
		}
		w, _ := db2.Begin(level)
		writerBlocked, done2 := probe(func() { _ = engine.PutVal(w, "x", 2) })
		_ = r.Commit()
		<-done2
		_ = w.Commit()

		switch {
		case writerBlocked:
			mp.ReadItem = locking.DurLong
		case readBlocked:
			mp.ReadItem = locking.DurShort
		default:
			mp.ReadItem = locking.DurNone
		}
	}

	// Predicate read duration.
	{
		p := predicate.MustParse("active == 1")
		db := locking.NewDB()
		db.Load(data.Tuple{Key: "e1", Row: data.Row{"active": 1}})
		t1, _ := db.Begin(level)
		_ = t1.Put("e9", data.Row{"active": 1})
		t2, _ := db.Begin(level)
		selBlocked, done := probe(func() { _, _ = t2.Select(p) })
		_ = t1.Commit()
		<-done
		_ = t2.Abort()

		db2 := locking.NewDB()
		db2.Load(data.Tuple{Key: "e1", Row: data.Row{"active": 1}})
		r, _ := db2.Begin(level)
		if _, err := r.Select(p); err != nil {
			return mp, err
		}
		w, _ := db2.Begin(level)
		insBlocked, done2 := probe(func() { _ = w.Put("e8", data.Row{"active": 1}) })
		_ = r.Commit()
		<-done2
		_ = w.Commit()

		switch {
		case insBlocked:
			mp.ReadPred = locking.DurLong
		case selBlocked:
			mp.ReadPred = locking.DurShort
		default:
			mp.ReadPred = locking.DurNone
		}
	}

	// Cursor read duration.
	{
		db := locking.NewDB()
		db.Load(data.Tuple{Key: "x", Row: data.Scalar(0)}, data.Tuple{Key: "y", Row: data.Scalar(0)})
		t1, _ := db.Begin(level)
		cur, err := t1.OpenCursor(predicate.True{})
		if err != nil {
			return mp, err
		}
		if _, err := cur.Fetch(); err != nil { // positioned on x
			return mp, err
		}
		t2, _ := db.Begin(level)
		blockedWhileCurrent, done := probe(func() { _ = engine.PutVal(t2, "x", 1) })
		if blockedWhileCurrent {
			// Move the cursor off x; if t2's queued write now completes the
			// lock was while-current, otherwise it is held to commit.
			if _, err := cur.Fetch(); err != nil { // move to y
				return mp, err
			}
			select {
			case <-done:
				mp.CursorRead = locking.DurCursor
			case <-time.After(probeWait):
				mp.CursorRead = locking.DurLong
			}
			_ = t1.Commit()
			<-done
			_ = t2.Commit()
		} else {
			_ = t1.Commit()
			_ = t2.Commit()
			// No lock held while current: distinguish short (a cursor fetch
			// blocks on an uncommitted write) from none (dirty fetch).
			db2 := locking.NewDB()
			db2.Load(data.Tuple{Key: "y", Row: data.Scalar(0)})
			t3, _ := db2.Begin(level)
			_ = engine.PutVal(t3, "y", 9)
			t4, _ := db2.Begin(level)
			// Open + fetch inside the probe: at READ COMMITTED either the
			// cursor's predicate lock or the fetch's row lock blocks on the
			// uncommitted write; at the no-read-lock levels neither does.
			fetchBlocked, done2 := probe(func() {
				c4, err := t4.OpenCursor(predicate.KeyEq{Key: "y"})
				if err == nil {
					_, _ = c4.Fetch()
				}
			})
			_ = t3.Commit()
			<-done2
			_ = t4.Abort()
			if fetchBlocked {
				mp.CursorRead = locking.DurShort
			} else {
				mp.CursorRead = locking.DurNone
			}
		}
	}

	return mp, nil
}

// RunTable2 regenerates Table 2: the declared protocol (the engine's
// Protocols map, i.e. the paper's table verbatim) side by side with the
// behaviorally measured durations. The returned mismatches are empty when
// every declared duration is observed live.
func RunTable2() (*report.Table, []string, error) {
	t := &report.Table{
		Title: "Table 2. Degrees of Consistency and Locking Isolation Levels (declared vs measured)",
		Headers: []string{"Consistency Level", "Read locks on items", "Read locks on predicates",
			"Write locks", "Cursor read locks", "Probe result"},
	}
	var mismatches []string
	for _, lvl := range locking.LockingLevels {
		decl := locking.Protocols[lvl]
		meas, err := ProbeLevel(lvl)
		if err != nil {
			return nil, nil, err
		}
		status := "verified"
		if meas.ReadItem != decl.ReadItem || meas.ReadPred != decl.ReadPred ||
			meas.WriteItem != decl.WriteItem || meas.CursorRead != decl.CursorRead {
			status = fmt.Sprintf("MISMATCH: measured {item:%s pred:%s write:%s cursor:%s}",
				meas.ReadItem, meas.ReadPred, meas.WriteItem, meas.CursorRead)
			mismatches = append(mismatches, fmt.Sprintf("%s: %s", lvl, status))
		}
		t.AddRow(lvl.String(), decl.ReadItem.String(), decl.ReadPred.String(),
			decl.WriteItem.String(), decl.CursorRead.String(), status)
	}
	return t, mismatches, nil
}
