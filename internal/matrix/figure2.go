package matrix

import (
	"fmt"
	"sort"
	"strings"

	"isolevel/internal/engine"
)

// Figure 2 of the paper arranges the isolation levels in a strength partial
// order, annotating each edge with the phenomena that differentiate the two
// levels. We recompute that diagram from the measured Table 4: a level's
// "allowance score" per column is 0 (Not Possible), 1 (Sometimes Possible)
// or 2 (Possible); L2 is stronger than L1 iff L2 allows no more than L1 in
// every column and strictly less in at least one.

// Relation is the measured strength relation between two levels.
type Relation int

// Relations (the paper's «, == and »« notation from §2.3's Definition).
const (
	Weaker       Relation = iota // L1 « L2
	Stronger                     // L2 « L1
	Equivalent                   // L1 == L2
	Incomparable                 // L1 »« L2
)

func (r Relation) String() string {
	switch r {
	case Weaker:
		return "«"
	case Stronger:
		return "»"
	case Equivalent:
		return "=="
	case Incomparable:
		return "»«"
	}
	return fmt.Sprintf("Relation(%d)", int(r))
}

// Edge is one Hasse-diagram edge of Figure 2: Weak « Strong, annotated
// with the differentiating phenomena.
type Edge struct {
	Weak, Strong engine.Level
	// Phenomena lists the columns the weaker level allows (at least
	// sometimes) that the stronger one forbids or allows less often.
	Phenomena []string
}

func (e Edge) String() string {
	return fmt.Sprintf("%s « %s [%s]", e.Weak, e.Strong, strings.Join(e.Phenomena, ", "))
}

// Hierarchy is the measured Figure 2.
type Hierarchy struct {
	Levels []engine.Level
	// Rel[a][b] is the relation of a to b.
	Rel map[engine.Level]map[engine.Level]Relation
	// Edges is the transitive reduction of the stronger-than order.
	Edges []Edge
	// Incomparable lists the measured »« pairs (a < b by level number).
	Incomparable [][2]engine.Level
}

func score(c Cell) int { return int(c) }

// Compare determines the relation between two levels from the measured
// matrix.
func (r *Table4Result) Compare(a, b engine.Level) Relation {
	aLeq, bLeq := true, true // a allows <= b everywhere; b allows <= a
	for _, col := range Columns {
		sa, sb := score(r.Cells[a][col].Cell), score(r.Cells[b][col].Cell)
		if sa > sb {
			aLeq = false
		}
		if sb > sa {
			bLeq = false
		}
	}
	switch {
	case aLeq && bLeq:
		return Equivalent
	case aLeq:
		return Stronger // a is stronger than b? careful: fewer allowances = stronger
	case bLeq:
		return Weaker
	default:
		return Incomparable
	}
}

// BuildHierarchy computes the measured Figure 2 from a Table 4 run.
func BuildHierarchy(r *Table4Result) *Hierarchy {
	h := &Hierarchy{Levels: r.Levels, Rel: map[engine.Level]map[engine.Level]Relation{}}
	strongerThan := map[engine.Level]map[engine.Level]bool{} // strongerThan[s][w]
	for _, a := range r.Levels {
		h.Rel[a] = map[engine.Level]Relation{}
		strongerThan[a] = map[engine.Level]bool{}
	}
	for i, a := range r.Levels {
		for j, b := range r.Levels {
			if i == j {
				h.Rel[a][b] = Equivalent
				continue
			}
			rel := r.Compare(a, b)
			h.Rel[a][b] = rel
			if rel == Stronger {
				strongerThan[a][b] = true
			}
			if rel == Incomparable && i < j {
				h.Incomparable = append(h.Incomparable, [2]engine.Level{a, b})
			}
		}
	}
	// Transitive reduction: an edge w « s survives if no intermediate m with
	// w « m « s.
	for _, s := range r.Levels {
		for w := range strongerThan[s] {
			direct := true
			for _, m := range r.Levels {
				if m == s || m == w {
					continue
				}
				if strongerThan[s][m] && strongerThan[m][w] {
					direct = false
					break
				}
			}
			if !direct {
				continue
			}
			var phen []string
			for _, col := range Columns {
				if score(r.Cells[w][col].Cell) > score(r.Cells[s][col].Cell) {
					phen = append(phen, col)
				}
			}
			h.Edges = append(h.Edges, Edge{Weak: w, Strong: s, Phenomena: phen})
		}
	}
	sort.Slice(h.Edges, func(i, j int) bool {
		if h.Edges[i].Weak != h.Edges[j].Weak {
			return h.Edges[i].Weak < h.Edges[j].Weak
		}
		return h.Edges[i].Strong < h.Edges[j].Strong
	})
	return h
}

// PaperRelations returns the relations the paper asserts (Remarks 1, 7, 8,
// 9 plus Figure 2's Oracle Read Consistency placement), as triples to
// verify against the measured hierarchy.
type AssertedRelation struct {
	A, B engine.Level
	Rel  Relation // relation of A to B
	Src  string
}

// PaperAssertions lists the strength claims made in the paper's text.
func PaperAssertions() []AssertedRelation {
	return []AssertedRelation{
		// Remark 1: Locking RU « Locking RC « Locking RR « Locking SER.
		{engine.ReadUncommitted, engine.ReadCommitted, Weaker, "Remark 1"},
		{engine.ReadCommitted, engine.RepeatableRead, Weaker, "Remark 1"},
		{engine.RepeatableRead, engine.Serializable, Weaker, "Remark 1"},
		// Remark 7: READ COMMITTED « Cursor Stability « REPEATABLE READ.
		{engine.ReadCommitted, engine.CursorStability, Weaker, "Remark 7"},
		{engine.CursorStability, engine.RepeatableRead, Weaker, "Remark 7"},
		// Remark 8: READ COMMITTED « Snapshot Isolation.
		{engine.ReadCommitted, engine.SnapshotIsolation, Weaker, "Remark 8"},
		// Remark 9: REPEATABLE READ »« Snapshot Isolation.
		{engine.RepeatableRead, engine.SnapshotIsolation, Incomparable, "Remark 9"},
		// §4.3: Read Consistency is stronger than READ COMMITTED…
		{engine.ReadCommitted, engine.ReadConsistency, Weaker, "§4.3"},
		// …and weaker than Snapshot Isolation (SI forbids P4, A5A).
		{engine.ReadConsistency, engine.SnapshotIsolation, Weaker, "§4.3"},
		// Figure 2: Degree 0 below everything (P0).
		{engine.Degree0, engine.ReadUncommitted, Weaker, "Figure 2"},
		// Figure 2: Snapshot Isolation below Serializable (A5B, P3).
		{engine.SnapshotIsolation, engine.Serializable, Weaker, "Figure 2"},
	}
}

// VerifyPaperAssertions checks every asserted relation against the measured
// hierarchy; it returns the mismatches (empty = all reproduced). Relations
// involving levels not in the measured set are skipped.
func (h *Hierarchy) VerifyPaperAssertions() []string {
	in := map[engine.Level]bool{}
	for _, l := range h.Levels {
		in[l] = true
	}
	var out []string
	for _, a := range PaperAssertions() {
		if !in[a.A] || !in[a.B] {
			continue
		}
		got := h.Rel[a.A][a.B]
		if got != a.Rel {
			out = append(out, fmt.Sprintf("%s: %s vs %s measured %s, paper says %s",
				a.Src, a.A, a.B, got, a.Rel))
		}
	}
	return out
}

// String renders the hierarchy as an edge list plus incomparabilities —
// the textual form of Figure 2.
func (h *Hierarchy) String() string {
	var b strings.Builder
	b.WriteString("Figure 2 (measured): isolation hierarchy, weaker « stronger\n")
	for _, e := range h.Edges {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	if len(h.Incomparable) > 0 {
		b.WriteString("incomparable (»«):\n")
		for _, p := range h.Incomparable {
			fmt.Fprintf(&b, "  %s »« %s\n", p[0], p[1])
		}
	}
	if diffs := h.VerifyPaperAssertions(); len(diffs) == 0 {
		b.WriteString("All strength claims from Remarks 1, 7, 8, 9 and §4.3 reproduced.\n")
	} else {
		for _, d := range diffs {
			b.WriteString("MISMATCH: " + d + "\n")
		}
	}
	return b.String()
}
