package matrix

import (
	"fmt"

	"isolevel/internal/anomalies"
	"isolevel/internal/ansi"
	"isolevel/internal/deps"
	"isolevel/internal/engine"
	"isolevel/internal/history"
	"isolevel/internal/locking"
	"isolevel/internal/phenomena"
)

// RemarkResult is the verification outcome of one of the paper's numbered
// remarks.
type RemarkResult struct {
	Number    int
	Statement string
	OK        bool
	Evidence  string
}

func (r RemarkResult) String() string {
	status := "REPRODUCED"
	if !r.OK {
		status = "FAILED"
	}
	return fmt.Sprintf("Remark %-2d [%s] %s\n           %s", r.Number, status, r.Statement, r.Evidence)
}

// VerifyRemarks checks each of the paper's Remarks 1–10 against the live
// engines and the formal machinery, returning one result per remark.
// A fresh Table 4 measurement is taken over all eight levels.
func VerifyRemarks() ([]RemarkResult, error) {
	levels := append(append([]engine.Level{}, PaperLevels...), ExtensionLevels...)
	t4, err := RunTable4(levels...)
	if err != nil {
		return nil, err
	}
	h := BuildHierarchy(t4)

	var out []RemarkResult

	// Remark 1: Locking RU « Locking RC « Locking RR « Locking SER.
	chain := [][2]engine.Level{
		{engine.ReadUncommitted, engine.ReadCommitted},
		{engine.ReadCommitted, engine.RepeatableRead},
		{engine.RepeatableRead, engine.Serializable},
	}
	ok := true
	for _, pr := range chain {
		if h.Rel[pr[0]][pr[1]] != Weaker {
			ok = false
		}
	}
	out = append(out, RemarkResult{1,
		"Locking READ UNCOMMITTED « READ COMMITTED « REPEATABLE READ « SERIALIZABLE",
		ok, "measured strictly increasing strength along the Table 2 chain"})

	// Remark 2: the locking levels are at least as strong as the same-named
	// phenomenon-based levels — every anomaly the acceptor rejects, the
	// engine prevents.
	diffs := VerifyRemark6(t4) // acceptor==engine on all shared cells implies both directions
	out = append(out, RemarkResult{2,
		"Locking levels are at least as strong as the same-named ANSI levels",
		len(diffs) == 0, fmt.Sprintf("acceptor/engine agreement on P0-P3 cells (%d mismatches)", len(diffs))})

	// Remark 3: even the weakest levels must forbid P0 — demonstrated by
	// the Degree 0 recovery corruption vs RU's long write locks.
	d0 := t4.Cells[engine.Degree0]["P0"].Cell
	ru := t4.Cells[engine.ReadUncommitted]["P0"].Cell
	out = append(out, RemarkResult{3,
		"ANSI SQL isolation should be modified to require P0 for all isolation levels",
		d0 == Possible && ru == NotPossible,
		fmt.Sprintf("Degree 0 (short write locks): P0 %s; READ UNCOMMITTED (long): P0 %s", d0, ru)})

	// Remark 4: the broad interpretations are the correct ones — H1, H2, H3
	// slip through the strict readings but not the broad ones.
	r4 := !phenomena.Exhibits(phenomena.A1, history.H1()) && phenomena.Exhibits(phenomena.P1, history.H1()) &&
		!phenomena.Exhibits(phenomena.A2, history.H2()) && phenomena.Exhibits(phenomena.P2, history.H2()) &&
		!phenomena.Exhibits(phenomena.A3, history.H3()) && phenomena.Exhibits(phenomena.P3, history.H3()) &&
		!deps.Serializable(history.H1()) && !deps.Serializable(history.H2()) && !deps.Serializable(history.H3())
	out = append(out, RemarkResult{4,
		"Strict interpretations A1, A2, A3 have unintended weaknesses; the broad ones are correct",
		r4, "H1/H2/H3 are non-serializable, exhibit P1/P2/P3, and none of A1/A2/A3"})

	// Remark 5: the restated P0-P3 define the levels of Table 3 (checked as
	// the Table 3 regeneration shape).
	t3 := RunTable3()
	r5 := len(t3.Rows) == 4 && t3.Rows[0][1] == "Not Possible" && t3.Rows[3][4] == "Not Possible"
	out = append(out, RemarkResult{5,
		"ANSI isolation levels restated with P0 required at every level (Table 3)",
		r5, "Table 3 regenerated: P0 forbidden in every row, diagonal of P1-P3"})

	// Remark 6: Table 2 locking == Table 3 phenomena.
	out = append(out, RemarkResult{6,
		"The locking levels of Table 2 and the phenomenological Table 3 are equivalent",
		len(diffs) == 0, fmt.Sprintf("%d cell mismatches between acceptors and live engine", len(diffs))})

	// Remark 7: RC « Cursor Stability « RR. CS strength over RC shows in
	// the P4C column (and the Sometimes cells); the hierarchy may route the
	// edge through Read Consistency, so check the relation, not the edge.
	r7 := h.Rel[engine.ReadCommitted][engine.CursorStability] == Weaker &&
		h.Rel[engine.CursorStability][engine.RepeatableRead] == Weaker
	out = append(out, RemarkResult{7,
		"READ COMMITTED « Cursor Stability « REPEATABLE READ",
		r7, fmt.Sprintf("P4C: RC %s vs CS %s; CS's Sometimes cells vanish at RR",
			t4.Cells[engine.ReadCommitted]["P4C"].Cell, t4.Cells[engine.CursorStability]["P4C"].Cell)})

	// Remark 8: RC « Snapshot Isolation, via A5A.
	r8 := h.Rel[engine.ReadCommitted][engine.SnapshotIsolation] == Weaker &&
		t4.Cells[engine.ReadCommitted]["A5A"].Cell == Possible &&
		t4.Cells[engine.SnapshotIsolation]["A5A"].Cell == NotPossible
	out = append(out, RemarkResult{8,
		"READ COMMITTED « Snapshot Isolation",
		r8, "A5A possible at RC, impossible under SI; SI forbids P0/P1 as well"})

	// Remark 9: RR »« SI — SI allows A5B but no A3-style phantoms; RR the
	// opposite.
	r9 := h.Rel[engine.RepeatableRead][engine.SnapshotIsolation] == Incomparable &&
		t4.Cells[engine.SnapshotIsolation]["A5B"].Cell == Possible &&
		t4.Cells[engine.RepeatableRead]["A5B"].Cell == NotPossible &&
		t4.Cells[engine.RepeatableRead]["P3"].Cell == Possible
	out = append(out, RemarkResult{9,
		"REPEATABLE READ »« Snapshot Isolation",
		r9, "SI allows write skew (H5) but no re-read phantoms; RR allows phantoms but no write skew"})

	// Remark 10: SI histories preclude A1, A2 and A3, hence ANOMALY
	// SERIALIZABLE « SNAPSHOT ISOLATION.
	//
	// Note the paper's own caveat (§2.2): "The English language statements
	// of the phenomena imply single-version histories." A flattened
	// single-valued trace of an SI run *syntactically* matches the A1/A2/A3
	// patterns (the write and the read are both in the trace), but the
	// anomaly never manifests — the snapshot read returned the old version.
	// So Remark 10 is verified on manifestations: the A1/A2/A3 scenarios
	// are all prevented at SI, each by the snapshot mechanism (no blocking,
	// no abort), with the reread/re-evaluation values provably unchanged;
	// and H5 separates the levels (admitted by ANOMALY SERIALIZABLE,
	// non-serializable, and produced live by the SI engine).
	r10 := true
	for _, id := range []string{"P1", "P2", "P3"} {
		sOut, _, err := anomalies.Run(anomalies.Primary(id), engine.SnapshotIsolation)
		if err != nil {
			return nil, err
		}
		if sOut.Anomaly || sOut.Mechanism != "snapshot" {
			r10 = false
		}
	}
	if !ansi.AnomalySerializable.Admits(history.H5()) || deps.Serializable(history.H5()) {
		r10 = false
	}
	wsOut, _, err := anomalies.Run(anomalies.Primary("A5B"), engine.SnapshotIsolation)
	if err != nil {
		return nil, err
	}
	if !wsOut.Anomaly {
		r10 = false
	}
	out = append(out, RemarkResult{10,
		"Snapshot Isolation precludes A1, A2, A3: ANOMALY SERIALIZABLE « SNAPSHOT ISOLATION",
		r10, "A1/A2/A3 scenarios prevented by snapshot reads alone; H5 (SI-producible write skew) separates the levels"})

	return out, nil
}

// LockingLevelOf maps a locking level to its declared protocol (re-export
// used by reports; nil for non-locking levels).
func LockingLevelOf(l engine.Level) *locking.Protocol {
	if p, ok := locking.Protocols[l]; ok {
		return &p
	}
	return nil
}
