package matrix

import (
	"strings"
	"testing"

	"isolevel/internal/engine"
	"isolevel/internal/locking"
)

// The centerpiece of the reproduction: the measured Table 4 matches the
// published Table 4 in every cell, for all six rows of the paper.
func TestTable4MatchesPaper(t *testing.T) {
	res, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := res.DiffPaper(); len(diffs) != 0 {
		t.Fatalf("Table 4 mismatches:\n%s", strings.Join(diffs, "\n"))
	}
}

// Individual spot checks on interesting cells, with evidence inspection.
func TestTable4SpotCells(t *testing.T) {
	cases := []struct {
		level engine.Level
		col   string
		want  Cell
	}{
		{engine.ReadUncommitted, "P1", Possible},
		{engine.ReadCommitted, "P1", NotPossible},
		{engine.CursorStability, "P4C", NotPossible},
		{engine.CursorStability, "P4", SometimesPossible},
		{engine.CursorStability, "A5B", SometimesPossible},
		{engine.RepeatableRead, "P3", Possible},
		{engine.RepeatableRead, "A5B", NotPossible},
		{engine.SnapshotIsolation, "P3", SometimesPossible},
		{engine.SnapshotIsolation, "A5B", Possible},
		{engine.SnapshotIsolation, "A5A", NotPossible},
		{engine.Serializable, "P3", NotPossible},
	}
	for _, c := range cases {
		got, err := RunCell(c.level, c.col)
		if err != nil {
			t.Fatalf("%s %s: %v", c.level, c.col, err)
		}
		if got.Cell != c.want {
			t.Errorf("%s %s = %s, want %s (primary: %s)", c.level, c.col, got.Cell, c.want, got.Primary)
		}
	}
}

// Extension rows: Degree 0 allows everything including P0; Oracle Read
// Consistency forbids P0/P1/P4C but allows the rest (§4.3).
func TestExtensionRows(t *testing.T) {
	res, err := RunTable4(engine.Degree0, engine.ReadConsistency)
	if err != nil {
		t.Fatal(err)
	}
	d0 := res.Cells[engine.Degree0]
	if d0["P0"].Cell != Possible {
		t.Errorf("Degree 0 P0 = %s, want Possible", d0["P0"].Cell)
	}
	for _, col := range Columns {
		if d0[col].Cell == NotPossible {
			t.Errorf("Degree 0 %s = Not Possible; the weakest level should allow it", col)
		}
	}
	orc := res.Cells[engine.ReadConsistency]
	for _, col := range []string{"P0", "P1", "P4C"} {
		if orc[col].Cell != NotPossible {
			t.Errorf("Read Consistency %s = %s, want Not Possible", col, orc[col].Cell)
		}
	}
	for _, col := range []string{"P2", "P3", "A5A", "A5B"} {
		if orc[col].Cell == NotPossible {
			t.Errorf("Read Consistency %s = Not Possible; §4.3 says it is allowed", col)
		}
	}
	// P4 at Read Consistency: the plain lost update occurs; the cursor form
	// is protected (row-changed check) — measured as Sometimes Possible by
	// the same convention the paper uses for Cursor Stability.
	if orc["P4"].Cell == NotPossible {
		t.Errorf("Read Consistency P4 = Not Possible; §4.3 says lost updates occur")
	}
	if !orc["P4"].Primary.Anomaly {
		t.Error("Read Consistency plain P4 should occur")
	}
}

// Figure 2: every strength claim in Remarks 1, 7, 8, 9 and §4.3 holds in
// the measured hierarchy over all eight levels.
func TestFigure2PaperAssertions(t *testing.T) {
	res, err := RunTable4(append(append([]engine.Level{}, PaperLevels...), ExtensionLevels...)...)
	if err != nil {
		t.Fatal(err)
	}
	h := BuildHierarchy(res)
	if diffs := h.VerifyPaperAssertions(); len(diffs) != 0 {
		t.Fatalf("Figure 2 mismatches:\n%s\nhierarchy:\n%s", strings.Join(diffs, "\n"), h)
	}
}

func TestFigure2HasseEdges(t *testing.T) {
	res, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	h := BuildHierarchy(res)
	// RU « RC must be a direct edge annotated with P1.
	foundRURC := false
	for _, e := range h.Edges {
		if e.Weak == engine.ReadUncommitted && e.Strong == engine.ReadCommitted {
			foundRURC = true
			hasP1 := false
			for _, p := range e.Phenomena {
				if p == "P1" {
					hasP1 = true
				}
			}
			if !hasP1 {
				t.Errorf("RU«RC edge not annotated with P1: %v", e.Phenomena)
			}
		}
		// No edge may skip over an intermediate level (transitive
		// reduction): RC « RR must NOT be direct since CS sits between.
		if e.Weak == engine.ReadCommitted && e.Strong == engine.RepeatableRead {
			t.Errorf("RC«RR should be reduced away through Cursor Stability")
		}
	}
	if !foundRURC {
		t.Error("missing RU«RC edge")
	}
	// RR »« SI must be reported incomparable.
	foundInc := false
	for _, p := range h.Incomparable {
		if (p[0] == engine.RepeatableRead && p[1] == engine.SnapshotIsolation) ||
			(p[1] == engine.RepeatableRead && p[0] == engine.SnapshotIsolation) {
			foundInc = true
		}
	}
	if !foundInc {
		t.Errorf("RR »« SI not detected; incomparable = %v", h.Incomparable)
	}
	if h.String() == "" {
		t.Error("hierarchy renders empty")
	}
}

func TestCompareSymmetry(t *testing.T) {
	res, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Levels {
		for _, b := range res.Levels {
			if a == b {
				continue
			}
			ab, ba := res.Compare(a, b), res.Compare(b, a)
			switch ab {
			case Stronger:
				if ba != Weaker {
					t.Errorf("%s stronger than %s but reverse is %s", a, b, ba)
				}
			case Weaker:
				if ba != Stronger {
					t.Errorf("%s weaker than %s but reverse is %s", a, b, ba)
				}
			case Incomparable:
				if ba != Incomparable {
					t.Errorf("incomparability not symmetric: %s vs %s", a, b)
				}
			case Equivalent:
				if ba != Equivalent {
					t.Errorf("equivalence not symmetric: %s vs %s", a, b)
				}
			}
		}
	}
}

// Table 1: the regenerated matrix has the paper's shape.
func TestTable1Regenerated(t *testing.T) {
	tbl := RunTable1()
	if len(tbl.Rows) != 4 {
		t.Fatalf("Table 1 rows = %d", len(tbl.Rows))
	}
	// Row 0 (READ UNCOMMITTED): all Possible.
	for i := 1; i <= 3; i++ {
		if tbl.Rows[0][i] != "Possible" {
			t.Errorf("RU col %d = %s", i, tbl.Rows[0][i])
		}
	}
	// Row 3 (ANOMALY SERIALIZABLE / broad SERIALIZABLE): all Not Possible.
	for i := 1; i <= 3; i++ {
		if tbl.Rows[3][i] != "Not Possible" {
			t.Errorf("SER col %d = %s", i, tbl.Rows[3][i])
		}
	}
	// Diagonal structure: level k forbids exactly the first k phenomena.
	if tbl.Rows[1][1] != "Not Possible" || tbl.Rows[1][2] != "Possible" {
		t.Error("READ COMMITTED row wrong")
	}
	if tbl.Rows[2][2] != "Not Possible" || tbl.Rows[2][3] != "Possible" {
		t.Error("REPEATABLE READ row wrong")
	}
	// The H5 note must be present: the misconception rebuttal.
	foundNote := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "H5") {
			foundNote = true
		}
	}
	if !foundNote {
		t.Error("Table 1 missing the H5 ANOMALY SERIALIZABLE note")
	}
}

// Table 3: P0 forbidden everywhere, then the diagonal.
func TestTable3Regenerated(t *testing.T) {
	tbl := RunTable3()
	if len(tbl.Rows) != 4 {
		t.Fatalf("Table 3 rows = %d", len(tbl.Rows))
	}
	for r := 0; r < 4; r++ {
		if tbl.Rows[r][1] != "Not Possible" {
			t.Errorf("row %d: P0 = %s, want Not Possible (Remark 3)", r, tbl.Rows[r][1])
		}
	}
	if tbl.Rows[0][2] != "Possible" || tbl.Rows[3][4] != "Not Possible" {
		t.Error("Table 3 diagonal wrong")
	}
}

// Remark 6: Table 3's acceptors and the live locking engine agree on
// every P0–P3 cell.
func TestRemark6Equivalence(t *testing.T) {
	res, err := RunTable4()
	if err != nil {
		t.Fatal(err)
	}
	if diffs := VerifyRemark6(res); len(diffs) != 0 {
		t.Fatalf("Remark 6 mismatches:\n%s", strings.Join(diffs, "\n"))
	}
}

// Table 2: every declared lock duration is verified by live probes.
func TestTable2ProbesVerifyDeclaredProtocols(t *testing.T) {
	tbl, mismatches, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) != 0 {
		t.Fatalf("Table 2 probe mismatches:\n%s\n%s", strings.Join(mismatches, "\n"), tbl)
	}
	if len(tbl.Rows) != len(locking.LockingLevels) {
		t.Fatalf("Table 2 rows = %d", len(tbl.Rows))
	}
}

func TestProbeLevelSpot(t *testing.T) {
	mp, err := ProbeLevel(engine.CursorStability)
	if err != nil {
		t.Fatal(err)
	}
	if mp.CursorRead != locking.DurCursor {
		t.Errorf("CS cursor lock measured %s, want while-current", mp.CursorRead)
	}
	if mp.ReadItem != locking.DurShort {
		t.Errorf("CS item read lock measured %s, want short", mp.ReadItem)
	}
	mp0, err := ProbeLevel(engine.Degree0)
	if err != nil {
		t.Fatal(err)
	}
	if mp0.WriteItem != locking.DurShort || mp0.ReadItem != locking.DurNone {
		t.Errorf("Degree 0 measured %+v", mp0)
	}
}

func TestReportRendering(t *testing.T) {
	res, err := RunTable4(engine.ReadCommitted, engine.SnapshotIsolation)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Report()
	out := tbl.String()
	if !strings.Contains(out, "READ COMMITTED") || !strings.Contains(out, "SNAPSHOT ISOLATION") {
		t.Fatalf("report missing rows:\n%s", out)
	}
	if md := tbl.Markdown(); !strings.Contains(md, "| READ COMMITTED |") {
		t.Fatalf("markdown missing rows:\n%s", md)
	}
}

func TestCellString(t *testing.T) {
	if NotPossible.String() != "Not Possible" || Possible.String() != "Possible" ||
		SometimesPossible.String() != "Sometimes Possible" {
		t.Fatal("cell strings")
	}
}
