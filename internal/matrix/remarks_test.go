package matrix

import (
	"strings"
	"testing"
)

// All ten remarks of the paper must reproduce on the live engines.
func TestAllRemarksReproduce(t *testing.T) {
	results, err := VerifyRemarks()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("got %d remark results", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("Remark %d failed: %s\n  evidence: %s", r.Number, r.Statement, r.Evidence)
		}
		if r.String() == "" || !strings.Contains(r.String(), "Remark") {
			t.Errorf("Remark %d renders badly", r.Number)
		}
	}
	// Numbered 1..10 in order.
	for i, r := range results {
		if r.Number != i+1 {
			t.Fatalf("remark order: got %d at position %d", r.Number, i)
		}
	}
}

func TestLockingLevelOf(t *testing.T) {
	if p := LockingLevelOf(PaperLevels[0]); p == nil {
		t.Fatal("READ UNCOMMITTED should have a protocol")
	}
	if p := LockingLevelOf(PaperLevels[4]); p != nil { // SNAPSHOT ISOLATION
		t.Fatal("SNAPSHOT ISOLATION has no locking protocol")
	}
}
