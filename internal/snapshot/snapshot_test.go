package snapshot

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/deps"
	"isolevel/internal/engine"
	"isolevel/internal/predicate"
)

func load(db *DB, kv map[string]int64) {
	var ts []data.Tuple
	for k, v := range kv {
		ts = append(ts, data.Tuple{Key: data.Key(k), Row: data.Scalar(v)})
	}
	db.Load(ts...)
}

func begin(t *testing.T, db *DB) engine.Tx {
	t.Helper()
	tx, err := db.Begin(engine.SnapshotIsolation)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestBeginRejectsOtherLevels(t *testing.T) {
	db := NewDB()
	if _, err := db.Begin(engine.Serializable); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("got %v", err)
	}
}

func TestSnapshotReadsAreStable(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 50})
	t1 := begin(t, db)
	if v, _ := engine.GetVal(t1, "x"); v != 50 {
		t.Fatal("initial read")
	}
	// Concurrent committed update is invisible to T1 (A2 impossible).
	t2 := begin(t, db)
	_ = engine.PutVal(t2, "x", 10)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := engine.GetVal(t1, "x"); v != 50 {
		t.Fatalf("reread = %d; snapshot must be stable", v)
	}
	_ = t1.Commit() // read-only: always commits
	// A fresh transaction sees the new value.
	t3 := begin(t, db)
	if v, _ := engine.GetVal(t3, "x"); v != 10 {
		t.Fatalf("new txn read = %d", v)
	}
	_ = t3.Commit()
}

func TestOwnWritesVisible(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 1})
	t1 := begin(t, db)
	_ = engine.PutVal(t1, "x", 2)
	if v, _ := engine.GetVal(t1, "x"); v != 2 {
		t.Fatal("own write invisible")
	}
	_ = t1.Delete("x")
	if _, err := t1.Get("x"); !errors.Is(err, engine.ErrNotFound) {
		t.Fatal("own delete invisible")
	}
	_ = t1.Abort()
	if db.ReadCommittedRow("x").Val() != 1 {
		t.Fatal("aborted writes leaked")
	}
}

// First-committer-wins: the paper's defining feature. T1 and T2 write the
// same item from overlapping intervals; the second committer aborts.
func TestFirstCommitterWins(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 100})
	t1 := begin(t, db)
	t2 := begin(t, db)
	_ = engine.PutVal(t1, "x", 120)
	_ = engine.PutVal(t2, "x", 130)
	if err := t1.Commit(); err != nil {
		t.Fatalf("first committer must win: %v", err)
	}
	err := t2.Commit()
	if !errors.Is(err, engine.ErrWriteConflict) {
		t.Fatalf("second committer got %v, want ErrWriteConflict", err)
	}
	if got := db.ReadCommittedRow("x").Val(); got != 120 {
		t.Fatalf("x = %d", got)
	}
}

// Lost update (P4) is therefore impossible: H4's interleaving aborts T1.
func TestH4LostUpdatePrevented(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 100})
	t1 := begin(t, db)
	t2 := begin(t, db)
	v1, _ := engine.GetVal(t1, "x") // r1[x=100]
	v2, _ := engine.GetVal(t2, "x") // r2[x=100]
	_ = engine.PutVal(t2, "x", v2+20)
	if err := t2.Commit(); err != nil { // c2
		t.Fatal(err)
	}
	_ = engine.PutVal(t1, "x", v1+30) // w1[x=130]
	if err := t1.Commit(); !errors.Is(err, engine.ErrWriteConflict) {
		t.Fatalf("T1 must abort (FCW), got %v", err)
	}
	if got := db.ReadCommittedRow("x").Val(); got != 120 {
		t.Fatalf("x = %d; T2's update must survive", got)
	}
}

// Disjoint write sets both commit — which is exactly why write skew (A5B)
// is possible under SI (H5).
func TestWriteSkewAllowed(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 50, "y": 50})
	t1 := begin(t, db)
	t2 := begin(t, db)
	x1, _ := engine.GetVal(t1, "x")
	y1, _ := engine.GetVal(t1, "y")
	x2, _ := engine.GetVal(t2, "x")
	y2, _ := engine.GetVal(t2, "y")
	if x1+y1 <= 0 || x2+y2 <= 0 {
		t.Fatal("setup")
	}
	_ = engine.PutVal(t1, "y", y1-90) // T1 withdraws 90 from y
	_ = engine.PutVal(t2, "x", x2-90) // T2 withdraws 90 from x
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("disjoint write sets must both commit under SI: %v", err)
	}
	x := db.ReadCommittedRow("x").Val()
	y := db.ReadCommittedRow("y").Val()
	if x+y >= 0 {
		t.Fatalf("x+y = %d; write skew should have violated the constraint", x+y)
	}
}

// Reads never block: even with a concurrent writer holding nothing back,
// readers proceed (no lock manager in the engine at all). Structural: a
// read completes while another txn has written the same key uncommitted.
func TestReadsNeverBlock(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 1})
	t1 := begin(t, db)
	_ = engine.PutVal(t1, "x", 2) // uncommitted write
	t2 := begin(t, db)
	v, err := engine.GetVal(t2, "x")
	if err != nil || v != 1 {
		t.Fatalf("reader saw %d, %v (must see committed snapshot, not block)", v, err)
	}
	_ = t1.Commit()
	_ = t2.Commit()
}

// No A3 phantoms: a re-evaluated predicate returns the same set even after
// a concurrent committed insert (Remark 10).
func TestNoA3Phantom(t *testing.T) {
	db := NewDB()
	db.Load(
		data.Tuple{Key: "t1", Row: data.Row{"hours": 4}},
		data.Tuple{Key: "t2", Row: data.Row{"hours": 3}},
	)
	p := predicate.MustParse("hours > 0")
	t1 := begin(t, db)
	rows1, _ := t1.Select(p)
	t2 := begin(t, db)
	_ = t2.Put("t3", data.Row{"hours": 1})
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	rows2, _ := t1.Select(p)
	if len(rows1) != len(rows2) {
		t.Fatalf("predicate re-evaluation changed: %d -> %d (A3 must be impossible)", len(rows1), len(rows2))
	}
	_ = t1.Commit()
}

// But P3 constraint phantoms remain possible: two transactions each check
// sum(hours) <= 8 then insert disjoint tasks; both commit; constraint broken.
func TestP3ConstraintPhantomPossible(t *testing.T) {
	db := NewDB()
	db.Load(
		data.Tuple{Key: "task:1", Row: data.Row{"hours": 4}},
		data.Tuple{Key: "task:2", Row: data.Row{"hours": 3}},
	)
	p := predicate.MustParse(`key ~ "task:"`)
	sum := func(tx engine.Tx) int64 {
		rows, err := tx.Select(p)
		if err != nil {
			t.Fatal(err)
		}
		var s int64
		for _, r := range rows {
			h, _ := r.Row.Get("hours")
			s += h
		}
		return s
	}
	t1 := begin(t, db)
	t2 := begin(t, db)
	if s := sum(t1); s+1 > 8 {
		t.Fatal("setup: T1 should believe it can add 1 hour")
	}
	if s := sum(t2); s+1 > 8 {
		t.Fatal("setup: T2 should believe it can add 1 hour")
	}
	_ = t1.Put("task:3", data.Row{"hours": 1})
	_ = t2.Put("task:4", data.Row{"hours": 1})
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("disjoint inserts are not caught by FCW: %v", err)
	}
	t3 := begin(t, db)
	if s := sum(t3); s <= 8 {
		t.Fatalf("total = %d; the P3 phantom should have broken the <= 8 constraint", s)
	}
	_ = t3.Commit()
}

// Read skew (A5A) impossible: T1 reads x and y around T2's committed
// update of both; the snapshot keeps them consistent (Remark 8's proof).
func TestNoReadSkew(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 50, "y": 50})
	t1 := begin(t, db)
	x, _ := engine.GetVal(t1, "x")
	t2 := begin(t, db)
	_ = engine.PutVal(t2, "x", 10)
	_ = engine.PutVal(t2, "y", 90)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	y, _ := engine.GetVal(t1, "y")
	if x+y != 100 {
		t.Fatalf("T1 saw x+y = %d; A5A must be impossible under SI", x+y)
	}
	_ = t1.Commit()
}

// Time travel: a transaction begun AsOf an old timestamp sees history.
func TestTimeTravelAsOf(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 1})
	ts1 := db.CurrentTS()
	t1 := begin(t, db)
	_ = engine.PutVal(t1, "x", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	old := db.BeginAsOf(ts1)
	if v, _ := engine.GetVal(old, "x"); v != 1 {
		t.Fatalf("time travel read = %d, want 1", v)
	}
	_ = old.Commit()
	// An update transaction with a very old timestamp aborts if it writes
	// data updated since ("update transactions with very old timestamps
	// would abort if they tried to update any data item that had been
	// updated by more recent transactions").
	old2 := db.BeginAsOf(ts1)
	_ = engine.PutVal(old2, "x", 9)
	if err := old2.Commit(); !errors.Is(err, engine.ErrWriteConflict) {
		t.Fatalf("stale updater got %v, want ErrWriteConflict", err)
	}
}

// First-updater-wins ablation: the conflict surfaces at write time.
func TestFirstUpdaterWinsAblation(t *testing.T) {
	db := NewDB(FirstUpdaterWins())
	load(db, map[string]int64{"x": 1})
	t1 := begin(t, db)
	t2 := begin(t, db)
	_ = engine.PutVal(t1, "x", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	err := engine.PutVal(t2, "x", 3)
	if !errors.Is(err, engine.ErrWriteConflict) {
		t.Fatalf("eager conflict got %v, want ErrWriteConflict at write time", err)
	}
	_ = t2.Abort()
}

func TestSnapshotCursor(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"a": 1, "b": 2})
	t1 := begin(t, db)
	cur, err := t1.OpenCursor(predicate.True{})
	if err != nil {
		t.Fatal(err)
	}
	tup, err := cur.Fetch()
	if err != nil || tup.Key != "a" {
		t.Fatalf("fetch = %v, %v", tup, err)
	}
	if err := cur.UpdateCurrent(data.Scalar(10)); err != nil {
		t.Fatal(err)
	}
	if v, _ := engine.GetVal(t1, "a"); v != 10 {
		t.Fatal("cursor update not visible to own reads")
	}
	if _, err := cur.Fetch(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Fetch(); !errors.Is(err, engine.ErrNotFound) {
		t.Fatal("cursor past end")
	}
	_ = cur.Close()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyAlwaysCommits(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 1})
	t1 := begin(t, db)
	_, _ = engine.GetVal(t1, "x")
	t2 := begin(t, db)
	_ = engine.PutVal(t2, "x", 2)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("read-only transaction must always commit: %v", err)
	}
}

// The MV→SV mapping of live SI executions: H1's interleaving under SI has
// serializable dataflows (H1.SI, §4.2), while the write-skew execution
// does not.
func TestLiveH1SIMappingSerializable(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 50, "y": 50})
	t1 := begin(t, db).(*Tx)
	v, _ := engine.GetVal(t1, "x") // r1[x=50]
	_ = engine.PutVal(t1, "x", v-40)
	t2 := begin(t, db).(*Tx)
	x2, _ := engine.GetVal(t2, "x") // r2[x0=50]: snapshot!
	y2, _ := engine.GetVal(t2, "y")
	if x2 != 50 || y2 != 50 {
		t.Fatalf("T2 must read the snapshot: %d, %d", x2, y2)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	vy, _ := engine.GetVal(t1, "y")
	_ = engine.PutVal(t1, "y", vy+40)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	txns := []deps.MVTxn{mvTxnOf(t1), mvTxnOf(t2)}
	if !deps.SISerializable(txns) {
		sv := deps.MapToSV(txns)
		t.Fatalf("H1.SI live run must map to a serializable SV history:\n%s", sv)
	}
}

func TestLiveWriteSkewMappingNotSerializable(t *testing.T) {
	db := NewDB()
	load(db, map[string]int64{"x": 50, "y": 50})
	t1 := begin(t, db).(*Tx)
	t2 := begin(t, db).(*Tx)
	x1, _ := engine.GetVal(t1, "x")
	y1, _ := engine.GetVal(t1, "y")
	_, _ = engine.GetVal(t2, "x")
	y2, _ := engine.GetVal(t2, "y")
	_ = engine.PutVal(t1, "y", x1+y1-140)
	_ = engine.PutVal(t2, "x", y2-90)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	txns := []deps.MVTxn{mvTxnOf(t1), mvTxnOf(t2)}
	if deps.SISerializable(txns) {
		t.Fatal("live write-skew execution must not map to a serializable SV history")
	}
}

func mvTxnOf(t *Tx) deps.MVTxn {
	start, commit, committed, reads, writes := t.MVTxn()
	return deps.MVTxn{Tx: t.ID(), Start: start, Commit: commit, Committed: committed, Reads: reads, Writes: writes}
}

// Concurrent stress: total balance is preserved by transfer transactions
// (each writes both accounts, so FCW serializes them); all aborts are
// ErrWriteConflict.
func TestConcurrentTransfersPreserveTotal(t *testing.T) {
	db := NewDB()
	const accounts = 8
	var tuples []data.Tuple
	for i := 0; i < accounts; i++ {
		tuples = append(tuples, data.Tuple{Key: data.Key(fmt.Sprintf("acct:%d", i)), Row: data.Scalar(100)})
	}
	db.Load(tuples...)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				from := data.Key(fmt.Sprintf("acct:%d", (seed+i)%accounts))
				to := data.Key(fmt.Sprintf("acct:%d", (seed+i+1)%accounts))
				tx, _ := db.Begin(engine.SnapshotIsolation)
				fv, err := engine.GetVal(tx, from)
				if err != nil {
					_ = tx.Abort()
					continue
				}
				tv, _ := engine.GetVal(tx, to)
				_ = engine.PutVal(tx, from, fv-1)
				_ = engine.PutVal(tx, to, tv+1)
				if err := tx.Commit(); err != nil && !errors.Is(err, engine.ErrWriteConflict) {
					t.Errorf("unexpected commit error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for i := 0; i < accounts; i++ {
		total += db.ReadCommittedRow(data.Key(fmt.Sprintf("acct:%d", i))).Val()
	}
	if total != accounts*100 {
		t.Fatalf("total = %d, want %d (FCW must prevent lost updates)", total, accounts*100)
	}
}
