package snapshot

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/engine"
)

// Disjoint write sets must commit in parallel through the striped commit
// path without losing or tearing anything. Run with -race: this is the
// regression test for replacing the global commit mutex with per-stripe
// latches.
func TestStripedCommitDisjointWriteSets(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := NewDB(WithShards(shards))
			if got := db.ShardCount(); got != shards {
				t.Fatalf("ShardCount = %d, want %d", got, shards)
			}
			const workers, iters, span = 6, 40, 4
			var tuples []data.Tuple
			for i := 0; i < workers*span; i++ {
				tuples = append(tuples, data.Tuple{Key: data.Key(fmt.Sprintf("k%d", i)), Row: data.Scalar(0)})
			}
			db.Load(tuples...)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						tx, _ := db.Begin(engine.SnapshotIsolation)
						for k := 0; k < span; k++ {
							key := data.Key(fmt.Sprintf("k%d", w*span+k))
							v, err := engine.GetVal(tx, key)
							if err != nil {
								t.Errorf("get %s: %v", key, err)
								return
							}
							if err := engine.PutVal(tx, key, v+1); err != nil {
								t.Errorf("put %s: %v", key, err)
								return
							}
						}
						if err := tx.Commit(); err != nil {
							t.Errorf("disjoint commit failed: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for i := 0; i < workers*span; i++ {
				key := data.Key(fmt.Sprintf("k%d", i))
				if got := db.ReadCommittedRow(key).Val(); got != iters {
					t.Fatalf("%s = %d, want %d", key, got, iters)
				}
			}
		})
	}
}

// Overlapping write sets must still serialize per key: concurrent
// increments of shared keys may abort (FCW) but never lose a committed
// update, at any stripe count. Run with -race.
func TestStripedCommitOverlappingWriteSets(t *testing.T) {
	for _, shards := range []int{1, 3, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := NewDB(WithShards(shards))
			const keys = 5
			var tuples []data.Tuple
			for i := 0; i < keys; i++ {
				tuples = append(tuples, data.Tuple{Key: data.Key(fmt.Sprintf("s%d", i)), Row: data.Scalar(0)})
			}
			db.Load(tuples...)
			var mu sync.Mutex
			committed := map[data.Key]int64{}
			var wg sync.WaitGroup
			for w := 0; w < 6; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						// Each txn bumps two overlapping keys.
						a := data.Key(fmt.Sprintf("s%d", (w+i)%keys))
						b := data.Key(fmt.Sprintf("s%d", (w+i+1)%keys))
						tx, _ := db.Begin(engine.SnapshotIsolation)
						av, _ := engine.GetVal(tx, a)
						bv, _ := engine.GetVal(tx, b)
						_ = engine.PutVal(tx, a, av+1)
						_ = engine.PutVal(tx, b, bv+1)
						err := tx.Commit()
						if err == nil {
							mu.Lock()
							committed[a]++
							committed[b]++
							mu.Unlock()
						} else if !errors.Is(err, engine.ErrWriteConflict) {
							t.Errorf("unexpected commit error: %v", err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			for key, want := range committed {
				if got := db.ReadCommittedRow(key).Val(); got != want {
					t.Fatalf("%s = %d but %d increments committed (lost update)", key, got, want)
				}
			}
		})
	}
}

// A snapshot begun while commits are in flight must be stable: it can
// never see half of a concurrent multi-key commit. Run with -race.
func TestSnapshotNeverSeesTornCommit(t *testing.T) {
	db := NewDB(WithShards(8))
	db.Load(data.Tuple{Key: "x", Row: data.Scalar(0)}, data.Tuple{Key: "y", Row: data.Scalar(0)})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer keeps x == y via paired increments
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx, _ := db.Begin(engine.SnapshotIsolation)
			xv, _ := engine.GetVal(tx, "x")
			yv, _ := engine.GetVal(tx, "y")
			_ = engine.PutVal(tx, "x", xv+1)
			_ = engine.PutVal(tx, "y", yv+1)
			_ = tx.Commit() // single writer: must always succeed
		}
	}()
	for i := 0; i < 500; i++ {
		tx, _ := db.Begin(engine.SnapshotIsolation)
		xv, _ := engine.GetVal(tx, "x")
		yv, _ := engine.GetVal(tx, "y")
		_ = tx.Commit()
		if xv != yv {
			close(stop)
			wg.Wait()
			t.Fatalf("torn snapshot: x=%d y=%d", xv, yv)
		}
	}
	close(stop)
	wg.Wait()
}
