// Package snapshot is the Snapshot Isolation facade over the unified
// multiversion engine (internal/mvcc): a DB restricted to the paper's
// §4.2 level, for callers that want a dedicated SI engine — the anomaly
// harness, the uniform fuzz families, the examples.
//
// The implementation — snapshot reads at the Start-Timestamp, private
// write sets, the striped First-Committer-Wins commit critical section,
// time travel via BeginAsOf — lives in internal/mvcc (SITx), where
// SNAPSHOT ISOLATION and READ CONSISTENCY transactions share one mv store
// and timestamp oracle so mixed-level histories can interleave them in a
// single engine. This package only narrows Begin to SNAPSHOT ISOLATION.
//
//isolint:deterministic
package snapshot

import (
	"isolevel/internal/engine"
	"isolevel/internal/mvcc"
)

// DB is a Snapshot Isolation database: the unified multiversion engine
// restricted to SNAPSHOT ISOLATION.
type DB = mvcc.DB

// Tx is a Snapshot Isolation transaction.
type Tx = mvcc.SITx

// Option configures a DB.
type Option = mvcc.Option

// FirstUpdaterWins switches conflict detection to write time: a write to a
// key already written by a concurrent committed transaction fails
// immediately with ErrWriteConflict (ablation of the paper's pure
// first-committer-wins).
func FirstUpdaterWins() Option { return mvcc.FirstUpdaterWins() }

// WithShards sets the stripe count of the underlying multiversion store
// (default mv.DefaultShards). One shard reproduces the old global-commit-
// mutex behavior and is the baseline of the shard-sweep benchmarks.
func WithShards(n int) Option { return mvcc.WithShards(n) }

// NewDB returns an empty Snapshot Isolation database.
func NewDB(opts ...Option) *DB {
	opts = append(opts, mvcc.WithLevels(engine.SnapshotIsolation))
	return mvcc.NewDB(opts...)
}
