package predicate

import (
	"fmt"
	"strconv"
	"unicode"

	"isolevel/internal/data"
)

// Parse reads a predicate in the concrete syntax produced by P.String:
//
//	pred   := or
//	or     := and { "||" and }
//	and    := unary { "&&" unary }
//	unary  := "!" unary | "(" pred ")" | atom
//	atom   := "true"
//	        | ident cmp int            (field comparison)
//	        | "key" "~" string         (key prefix)
//	        | "key" "==" string        (exact key)
//	        | "key" "in" "[" string "," string ")"
//	                                   (half-open key range)
//	cmp    := "==" | "!=" | "<" | "<=" | ">" | ">="
//
// Integer literals may be negative. Strings are double-quoted Go strings.
func Parse(src string) (P, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("predicate: trailing input at %q", p.peek().text)
	}
	return pred, nil
}

// MustParse is Parse that panics on error; intended for tests and for
// embedding canonical scenario predicates.
func MustParse(src string) P {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokInt
	tokString
	tokOp // == != < <= > >= && || ! ( ) ~ [ ,
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == '~' || c == '[' || c == ',':
			toks = append(toks, token{tokOp, string(c), i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, "!", i})
				i++
			}
		case c == '&' || c == '|':
			if i+1 >= len(src) || src[i+1] != c {
				return nil, fmt.Errorf("predicate: lone %q at %d", string(c), i)
			}
			toks = append(toks, token{tokOp, string(c) + string(c), i})
			i += 2
		case c == '=':
			if i+1 >= len(src) || src[i+1] != '=' {
				return nil, fmt.Errorf("predicate: lone '=' at %d (use ==)", i)
			}
			toks = append(toks, token{tokOp, "==", i})
			i += 2
		case c == '<' || c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, string(c) + "=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, string(c), i})
				i++
			}
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("predicate: unterminated string at %d", i)
			}
			lit, err := strconv.Unquote(src[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("predicate: bad string at %d: %v", i, err)
			}
			toks = append(toks, token{tokString, lit, i})
			i = j + 1
		case c == '-' || (c >= '0' && c <= '9'):
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			if src[i] == '-' && j == i+1 {
				return nil, fmt.Errorf("predicate: lone '-' at %d", i)
			}
			toks = append(toks, token{tokInt, src[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("predicate: unexpected byte %q at %d", string(c), i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }

func (p *parser) acceptOp(text string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == text {
		p.i++
		return true
	}
	return false
}

func (p *parser) parseOr() (P, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (P, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptOp("&&") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = And{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (P, error) {
	if p.acceptOp("!") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	}
	if p.acceptOp("(") {
		x, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.acceptOp(")") {
			return nil, fmt.Errorf("predicate: missing ')' at %q", p.peek().text)
		}
		return x, nil
	}
	return p.parseAtom()
}

var cmpOps = map[string]CmpOp{
	"==": EQ, "!=": NE, "<": LT, "<=": LE, ">": GT, ">=": GE,
}

func (p *parser) parseAtom() (P, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("predicate: expected identifier, got %q at %d", t.text, t.pos)
	}
	if t.text == "true" {
		return True{}, nil
	}
	op := p.next()
	if t.text == "key" && op.kind == tokIdent && op.text == "in" {
		return p.parseKeyRange()
	}
	if op.kind != tokOp {
		return nil, fmt.Errorf("predicate: expected operator after %q, got %q", t.text, op.text)
	}
	if t.text == "key" {
		switch op.text {
		case "~":
			s := p.next()
			if s.kind != tokString {
				return nil, fmt.Errorf("predicate: key ~ needs a string, got %q", s.text)
			}
			return KeyPrefix{Prefix: s.text}, nil
		case "==":
			s := p.next()
			if s.kind != tokString {
				return nil, fmt.Errorf("predicate: key == needs a string, got %q", s.text)
			}
			return KeyEq{Key: data.Key(s.text)}, nil
		default:
			return nil, fmt.Errorf("predicate: key supports only ~, == and in, got %q", op.text)
		}
	}
	cmp, ok := cmpOps[op.text]
	if !ok {
		return nil, fmt.Errorf("predicate: unknown comparison %q", op.text)
	}
	v := p.next()
	if v.kind != tokInt {
		return nil, fmt.Errorf("predicate: expected integer after %s %s, got %q", t.text, op.text, v.text)
	}
	n, err := strconv.ParseInt(v.text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("predicate: bad integer %q: %v", v.text, err)
	}
	return Field{Name: t.text, Op: cmp, Arg: n}, nil
}

// parseKeyRange parses the tail of `key in [ "lo" , "hi" )` — the "key in"
// prefix has already been consumed.
func (p *parser) parseKeyRange() (P, error) {
	if !p.acceptOp("[") {
		return nil, fmt.Errorf("predicate: key in needs '[', got %q", p.peek().text)
	}
	lo := p.next()
	if lo.kind != tokString {
		return nil, fmt.Errorf("predicate: key in needs a string lower bound, got %q", lo.text)
	}
	if !p.acceptOp(",") {
		return nil, fmt.Errorf("predicate: key in needs ',', got %q", p.peek().text)
	}
	hi := p.next()
	if hi.kind != tokString {
		return nil, fmt.Errorf("predicate: key in needs a string upper bound, got %q", hi.text)
	}
	if !p.acceptOp(")") {
		return nil, fmt.Errorf("predicate: key in needs ')', got %q", p.peek().text)
	}
	return KeyRange{Lo: data.Key(lo.text), Hi: data.Key(hi.text)}, nil
}
