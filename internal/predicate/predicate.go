// Package predicate implements the <search condition> language used by
// predicate reads (r1[P]) and predicate locks.
//
// Following the paper's Section 2.3, a predicate covers every row that
// satisfies it — including "phantom" rows not currently in the database but
// that an INSERT, UPDATE, or DELETE would cause to satisfy it. Conflict
// detection against writes therefore evaluates a predicate on both the
// before-image and the after-image of the write.
//
// The language is deliberately small but real: comparisons of int64 fields
// against constants, conjunction, disjunction, negation, and parentheses,
// plus key-prefix matching for table scoping (keys such as "emp:3").
//
//	active == 1 && hours < 8
//	key ~ "task:" && (dept == 1 || dept == 2)
//
//isolint:deterministic
package predicate

import (
	"fmt"
	"strings"

	"isolevel/internal/data"
)

// P is a predicate over tuples. Implementations must be immutable and
// safe for concurrent use.
type P interface {
	// Match reports whether the tuple satisfies the predicate. A nil row
	// (absent item) satisfies no predicate.
	Match(t data.Tuple) bool
	// String renders the predicate in the concrete syntax accepted by Parse.
	String() string
}

// CmpOp is a comparison operator in a field predicate.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota // ==
	NE              // !=
	LT              // <
	LE              // <=
	GT              // >
	GE              // >=
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "=="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", int(op))
}

// Eval applies the comparison to two int64 values.
func (op CmpOp) Eval(a, b int64) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	}
	return false
}

// True matches every existing row. It is the predicate behind "scan all".
type True struct{}

// Match implements P. A nil row still matches nothing.
func (True) Match(t data.Tuple) bool { return t.Row != nil }

func (True) String() string { return "true" }

// Field compares a named row field against a constant. Rows lacking the
// field do not match.
type Field struct {
	Name string
	Op   CmpOp
	Arg  int64
}

// Match implements P.
func (f Field) Match(t data.Tuple) bool {
	if t.Row == nil {
		return false
	}
	v, ok := t.Row[f.Name]
	if !ok {
		return false
	}
	return f.Op.Eval(v, f.Arg)
}

func (f Field) String() string { return fmt.Sprintf("%s %s %d", f.Name, f.Op, f.Arg) }

// KeyPrefix matches rows whose key begins with Prefix. It scopes a predicate
// to a logical table when keys follow the "table:id" convention.
type KeyPrefix struct {
	Prefix string
}

// Match implements P.
func (k KeyPrefix) Match(t data.Tuple) bool {
	return t.Row != nil && strings.HasPrefix(string(t.Key), k.Prefix)
}

func (k KeyPrefix) String() string { return fmt.Sprintf("key ~ %q", k.Prefix) }

// KeyEq matches exactly one key: the paper's "item lock is a predicate lock
// where the predicate names the specific record" (§2.3).
type KeyEq struct {
	Key data.Key
}

// Match implements P.
func (k KeyEq) Match(t data.Tuple) bool { return t.Row != nil && t.Key == k.Key }

func (k KeyEq) String() string { return fmt.Sprintf("key == %q", string(k.Key)) }

// KeyRange matches rows in the half-open key interval [Lo, Hi). It is the
// predicate behind range scans ("SCAN lo hi"): key-range locking extracts
// exactly this interval via KeyBounds, so the scan's gap fragments cover
// the scanned keys and nothing more.
//
// Empty intervals (Lo >= Hi) are legal and denote the empty set,
// uniformly: Match matches nothing, KeyBounds collapses to the
// well-formed empty interval [Lo, Lo), DisjointWith proves the range
// disjoint from every predicate, and String/Parse round-trip the
// original bounds unchanged.
type KeyRange struct {
	Lo, Hi data.Key
}

// Empty reports whether the interval denotes the empty set (Lo >= Hi).
func (k KeyRange) Empty() bool { return k.Lo >= k.Hi }

// Match implements P.
func (k KeyRange) Match(t data.Tuple) bool {
	return t.Row != nil && t.Key >= k.Lo && t.Key < k.Hi
}

func (k KeyRange) String() string {
	return fmt.Sprintf("key in [%q, %q)", string(k.Lo), string(k.Hi))
}

// And is the conjunction of its operands.
type And struct{ L, R P }

// Match implements P.
func (a And) Match(t data.Tuple) bool { return a.L.Match(t) && a.R.Match(t) }

func (a And) String() string { return fmt.Sprintf("(%s && %s)", a.L, a.R) }

// Or is the disjunction of its operands.
type Or struct{ L, R P }

// Match implements P.
func (o Or) Match(t data.Tuple) bool { return o.L.Match(t) || o.R.Match(t) }

func (o Or) String() string { return fmt.Sprintf("(%s || %s)", o.L, o.R) }

// Not negates its operand. A nil row still matches nothing: predicates
// range over (possible) rows, and "no row" satisfies no search condition.
type Not struct{ X P }

// Match implements P.
func (n Not) Match(t data.Tuple) bool { return t.Row != nil && !n.X.Match(t) }

func (n Not) String() string { return fmt.Sprintf("!(%s)", n.X) }

// MatchEither reports whether the predicate covers a write with the given
// before- and after-images on key. This is the conflict rule from §2.3: a
// predicate lock conflicts with a write if some (possibly phantom) data item
// is covered by both — operationally, if either image satisfies P.
func MatchEither(p P, key data.Key, before, after data.Row) bool {
	return p.Match(data.Tuple{Key: key, Row: before}) || p.Match(data.Tuple{Key: key, Row: after})
}

// Filter returns the tuples satisfying p, preserving input order.
func Filter(p P, ts []data.Tuple) []data.Tuple {
	var out []data.Tuple
	for _, t := range ts {
		if p.Match(t) {
			out = append(out, t)
		}
	}
	return out
}

// DisjointWith conservatively reports whether two predicates provably cover
// disjoint row sets. Predicate-overlap is undecidable in general; like
// production lock managers we only prove disjointness in easy syntactic
// cases and otherwise assume overlap (which can only strengthen, never
// weaken, a locking level):
//
//   - different KeyEq keys are disjoint;
//   - KeyEq vs KeyPrefix that does not cover the key;
//   - two KeyPrefix with incompatible prefixes;
//   - KeyRange vs KeyEq/KeyRange/KeyPrefix with non-overlapping intervals;
//   - Field comparisons on the same field with incompatible ranges
//     (e.g. dept == 1 vs dept == 2, hours < 3 vs hours > 5).
func DisjointWith(a, b P) bool {
	switch x := a.(type) {
	case KeyEq:
		switch y := b.(type) {
		case KeyEq:
			return x.Key != y.Key
		case KeyPrefix:
			return !strings.HasPrefix(string(x.Key), y.Prefix)
		}
	case KeyPrefix:
		switch y := b.(type) {
		case KeyEq:
			return !strings.HasPrefix(string(y.Key), x.Prefix)
		case KeyPrefix:
			return !strings.HasPrefix(x.Prefix, y.Prefix) && !strings.HasPrefix(y.Prefix, x.Prefix)
		}
	case KeyRange:
		if x.Empty() {
			return true // the empty set is disjoint from everything
		}
		switch y := b.(type) {
		case KeyEq:
			return y.Key < x.Lo || y.Key >= x.Hi
		case KeyRange:
			return y.Empty() || x.Hi <= y.Lo || y.Hi <= x.Lo
		case KeyPrefix:
			// The prefix block is [prefix, prefixEnd(prefix)).
			if end, ok := prefixEnd(y.Prefix); ok {
				return end <= x.Lo || x.Hi <= data.Key(y.Prefix)
			}
			return x.Hi <= data.Key(y.Prefix)
		}
	case Field:
		if y, ok := b.(Field); ok && x.Name == y.Name {
			return fieldRangesDisjoint(x, y)
		}
	case And:
		// (L && R) disjoint from b if either conjunct is.
		return DisjointWith(x.L, b) || DisjointWith(x.R, b)
	}
	if y, ok := b.(And); ok {
		return DisjointWith(y.L, a) || DisjointWith(y.R, a)
	}
	if _, ok := b.(KeyEq); ok {
		return DisjointWith(b, a)
	}
	if _, ok := b.(KeyPrefix); ok {
		return DisjointWith(b, a)
	}
	if _, ok := b.(KeyRange); ok {
		return DisjointWith(b, a)
	}
	return false
}

// fieldRangesDisjoint decides emptiness of the intersection of two
// single-field interval constraints. NE constraints are treated as
// overlapping everything (they exclude a single point).
func fieldRangesDisjoint(a, b Field) bool {
	lo := func(f Field) (int64, bool, bool) { // lower bound, inclusive, exists
		switch f.Op {
		case EQ:
			return f.Arg, true, true
		case GT:
			return f.Arg, false, true
		case GE:
			return f.Arg, true, true
		}
		return 0, false, false
	}
	hi := func(f Field) (int64, bool, bool) { // upper bound, inclusive, exists
		switch f.Op {
		case EQ:
			return f.Arg, true, true
		case LT:
			return f.Arg, false, true
		case LE:
			return f.Arg, true, true
		}
		return 0, false, false
	}
	disjoint := func(x, y Field) bool {
		xh, xhInc, xhOK := hi(x)
		yl, ylInc, ylOK := lo(y)
		if !xhOK || !ylOK {
			return false
		}
		if xh < yl {
			return true
		}
		if xh == yl && (!xhInc || !ylInc) {
			return true
		}
		return false
	}
	return disjoint(a, b) || disjoint(b, a)
}
