package predicate

import "isolevel/internal/data"

// KeyBounds conservatively extracts the key range a predicate can cover:
// every (possibly phantom) row satisfying p has lo <= key < hi when bounded
// is true; bounded == false means the predicate can match anywhere in the
// key space. Key-range locking uses the bounds to restrict the anchors of
// a range scan — any over-coverage is harmless, because conflicts are
// refined by evaluating the predicate on the writer's row images, so the
// extraction only ever trades precision for fewer locks, never soundness.
//
// Bounds come from the key-addressing predicate forms:
//
//   - KeyEq k:        [k, successor(k))      — one key
//   - KeyRange:       [Lo, Hi)               — exactly the scanned interval
//   - KeyPrefix "t:": ["t:", prefixEnd("t:")) — the prefix block
//   - And: the intersection of its operands' bounds
//   - Or: the hull of its operands' bounds (unbounded if either side is)
//
// Field comparisons, negation and True say nothing about keys.
func KeyBounds(p P) (lo, hi data.Key, bounded bool) {
	switch x := p.(type) {
	case KeyEq:
		return x.Key, x.Key + "\x00", true
	case KeyRange:
		if x.Empty() {
			return x.Lo, x.Lo, true // empty interval, kept well-formed
		}
		return x.Lo, x.Hi, true
	case KeyPrefix:
		if end, ok := prefixEnd(x.Prefix); ok {
			return data.Key(x.Prefix), end, true
		}
	case And:
		llo, lhi, lok := KeyBounds(x.L)
		rlo, rhi, rok := KeyBounds(x.R)
		switch {
		case lok && rok:
			if rlo > llo {
				llo = rlo
			}
			if rhi < lhi {
				lhi = rhi
			}
			if lhi < llo {
				lhi = llo // empty intersection, kept well-formed
			}
			return llo, lhi, true
		case lok:
			return llo, lhi, true
		case rok:
			return rlo, rhi, true
		}
	case Or:
		llo, lhi, lok := KeyBounds(x.L)
		rlo, rhi, rok := KeyBounds(x.R)
		if lok && rok {
			if rlo < llo {
				llo = rlo
			}
			if rhi > lhi {
				lhi = rhi
			}
			return llo, lhi, true
		}
	}
	return "", "", false
}

// prefixEnd returns the smallest key greater than every key with the given
// prefix: the prefix with its last byte incremented (dropping trailing
// 0xff bytes first). An all-0xff prefix has no finite end.
func prefixEnd(prefix string) (data.Key, bool) {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return data.Key(b[:i+1]), true
		}
	}
	return "", false
}
