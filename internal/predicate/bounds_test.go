package predicate

import (
	"testing"

	"isolevel/internal/data"
)

func TestKeyBounds(t *testing.T) {
	cases := []struct {
		name    string
		p       P
		lo, hi  data.Key
		bounded bool
	}{
		{"keyeq", KeyEq{Key: "x"}, "x", "x\x00", true},
		{"keyrange", KeyRange{Lo: "a", Hi: "m"}, "a", "m", true},
		{"keyrange-empty", KeyRange{Lo: "m", Hi: "a"}, "m", "m", true},
		{"and-range-intersect", And{L: KeyRange{Lo: "a", Hi: "m"}, R: KeyRange{Lo: "c", Hi: "z"}}, "c", "m", true},
		{"prefix", KeyPrefix{Prefix: "task:"}, "task:", "task;", true},
		{"prefix-ff", KeyPrefix{Prefix: "\xff\xff"}, "", "", false},
		{"field", Field{Name: "val", Op: GE, Arg: 3}, "", "", false},
		{"true", True{}, "", "", false},
		{"and-one-side", And{L: KeyPrefix{Prefix: "t:"}, R: Field{Name: "v", Op: EQ, Arg: 1}}, "t:", "t;", true},
		{"and-intersect", And{L: KeyPrefix{Prefix: "t:"}, R: KeyEq{Key: "t:5"}}, "t:5", "t:5\x00", true},
		{"and-empty", And{L: KeyEq{Key: "a"}, R: KeyEq{Key: "b"}}, "b", "b", true},
		{"or-hull", Or{L: KeyEq{Key: "a"}, R: KeyEq{Key: "c"}}, "a", "c\x00", true},
		{"or-unbounded", Or{L: KeyEq{Key: "a"}, R: True{}}, "", "", false},
		{"not", Not{X: KeyEq{Key: "a"}}, "", "", false},
	}
	for _, c := range cases {
		lo, hi, bounded := KeyBounds(c.p)
		if lo != c.lo || hi != c.hi || bounded != c.bounded {
			t.Errorf("%s: KeyBounds(%s) = (%q, %q, %v), want (%q, %q, %v)",
				c.name, c.p, lo, hi, bounded, c.lo, c.hi, c.bounded)
		}
	}
}

// TestKeyBoundsCover: bounded extractions must cover every matching key —
// the soundness contract key-range locking relies on.
func TestKeyBoundsCover(t *testing.T) {
	preds := []P{
		KeyEq{Key: "t:3"},
		KeyPrefix{Prefix: "t:"},
		KeyRange{Lo: "t:1", Hi: "t:5"},
		And{L: KeyPrefix{Prefix: "t:"}, R: Field{Name: "v", Op: GT, Arg: 0}},
		Or{L: KeyEq{Key: "a"}, R: KeyPrefix{Prefix: "t:"}},
	}
	keys := []data.Key{"a", "b", "t:", "t:0", "t:3", "t:3\x00x", "t:9", "t;", "u", "zzz"}
	for _, p := range preds {
		lo, hi, bounded := KeyBounds(p)
		if !bounded {
			continue
		}
		for _, k := range keys {
			if p.Match(data.Tuple{Key: k, Row: data.Row{"v": 1}}) && !(lo <= k && k < hi) {
				t.Errorf("KeyBounds(%s) = [%q, %q) fails to cover matching key %q", p, lo, hi, k)
			}
		}
	}
}
