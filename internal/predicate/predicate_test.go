package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"isolevel/internal/data"
)

func tup(key string, fields map[string]int64) data.Tuple {
	return data.Tuple{Key: data.Key(key), Row: data.Row(fields)}
}

func TestCmpOpEval(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b int64
		want bool
	}{
		{EQ, 1, 1, true}, {EQ, 1, 2, false},
		{NE, 1, 2, true}, {NE, 2, 2, false},
		{LT, 1, 2, true}, {LT, 2, 2, false}, {LT, 3, 2, false},
		{LE, 2, 2, true}, {LE, 3, 2, false},
		{GT, 3, 2, true}, {GT, 2, 2, false},
		{GE, 2, 2, true}, {GE, 1, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestFieldMatch(t *testing.T) {
	p := Field{Name: "dept", Op: EQ, Arg: 1}
	if !p.Match(tup("e1", map[string]int64{"dept": 1})) {
		t.Fatal("dept==1 should match {dept:1}")
	}
	if p.Match(tup("e1", map[string]int64{"dept": 2})) {
		t.Fatal("dept==1 matched {dept:2}")
	}
	if p.Match(tup("e1", map[string]int64{"other": 1})) {
		t.Fatal("missing field should not match")
	}
	if p.Match(data.Tuple{Key: "e1", Row: nil}) {
		t.Fatal("nil row should not match")
	}
}

func TestTrueMatchesOnlyExistingRows(t *testing.T) {
	if !(True{}).Match(tup("a", map[string]int64{})) {
		t.Fatal("True should match an existing empty row")
	}
	if (True{}).Match(data.Tuple{Key: "a"}) {
		t.Fatal("True should not match a nil row")
	}
}

func TestKeyPrefixAndKeyEq(t *testing.T) {
	kp := KeyPrefix{Prefix: "emp:"}
	if !kp.Match(tup("emp:3", map[string]int64{})) {
		t.Fatal("prefix should match emp:3")
	}
	if kp.Match(tup("task:3", map[string]int64{})) {
		t.Fatal("prefix matched task:3")
	}
	ke := KeyEq{Key: "x"}
	if !ke.Match(tup("x", map[string]int64{})) || ke.Match(tup("y", map[string]int64{})) {
		t.Fatal("KeyEq wrong")
	}
}

func TestBooleanCombinators(t *testing.T) {
	active := Field{Name: "active", Op: EQ, Arg: 1}
	dept1 := Field{Name: "dept", Op: EQ, Arg: 1}
	both := And{L: active, R: dept1}
	either := Or{L: active, R: dept1}
	neg := Not{X: active}

	rowBoth := tup("e", map[string]int64{"active": 1, "dept": 1})
	rowOne := tup("e", map[string]int64{"active": 1, "dept": 2})
	rowNone := tup("e", map[string]int64{"active": 0, "dept": 2})

	if !both.Match(rowBoth) || both.Match(rowOne) {
		t.Fatal("And wrong")
	}
	if !either.Match(rowOne) || either.Match(rowNone) {
		t.Fatal("Or wrong")
	}
	if neg.Match(rowBoth) || !neg.Match(rowNone) {
		t.Fatal("Not wrong")
	}
	if neg.Match(data.Tuple{Key: "e"}) {
		t.Fatal("Not must not match a nil row (no phantom universal rows)")
	}
}

func TestMatchEitherCoversBothImages(t *testing.T) {
	p := Field{Name: "active", Op: EQ, Arg: 1}
	// Update that moves a row INTO the predicate: before misses, after hits.
	if !MatchEither(p, "e1", data.Row{"active": 0}, data.Row{"active": 1}) {
		t.Fatal("predicate should cover write whose after-image matches")
	}
	// Delete that removes a matching row: before hits, after nil.
	if !MatchEither(p, "e1", data.Row{"active": 1}, nil) {
		t.Fatal("predicate should cover delete of a matching row")
	}
	// Irrelevant write.
	if MatchEither(p, "e1", data.Row{"active": 0}, data.Row{"active": 0}) {
		t.Fatal("predicate covered an irrelevant write")
	}
	// Insert of a matching row (phantom!).
	if !MatchEither(p, "e9", nil, data.Row{"active": 1}) {
		t.Fatal("predicate must cover phantom inserts")
	}
}

func TestFilter(t *testing.T) {
	p := Field{Name: "v", Op: GT, Arg: 10}
	ts := []data.Tuple{
		tup("a", map[string]int64{"v": 5}),
		tup("b", map[string]int64{"v": 15}),
		tup("c", map[string]int64{"v": 25}),
	}
	got := Filter(p, ts)
	if len(got) != 2 || got[0].Key != "b" || got[1].Key != "c" {
		t.Fatalf("Filter = %v", got)
	}
}

func TestParseSimple(t *testing.T) {
	p, err := Parse("active == 1 && hours < 8")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Match(tup("t1", map[string]int64{"active": 1, "hours": 3})) {
		t.Fatal("parsed predicate should match")
	}
	if p.Match(tup("t1", map[string]int64{"active": 1, "hours": 9})) {
		t.Fatal("parsed predicate matched hours 9")
	}
}

func TestParsePrecedenceAndParens(t *testing.T) {
	// || binds looser than &&.
	p := MustParse("a == 1 || a == 2 && b == 3")
	if !p.Match(tup("k", map[string]int64{"a": 1, "b": 0})) {
		t.Fatal("a==1 alone should satisfy (|| looser than &&)")
	}
	q := MustParse("(a == 1 || a == 2) && b == 3")
	if q.Match(tup("k", map[string]int64{"a": 1, "b": 0})) {
		t.Fatal("parens should force && over the disjunction")
	}
	if !q.Match(tup("k", map[string]int64{"a": 2, "b": 3})) {
		t.Fatal("a==2 && b==3 should match")
	}
}

func TestParseNegativeNumbersAndNot(t *testing.T) {
	p := MustParse("!(bal < -10)")
	if !p.Match(tup("k", map[string]int64{"bal": -5})) {
		t.Fatal("-5 is not < -10")
	}
	if p.Match(tup("k", map[string]int64{"bal": -50})) {
		t.Fatal("-50 is < -10, negation should reject")
	}
}

func TestParseKeyForms(t *testing.T) {
	p := MustParse(`key ~ "task:"`)
	if !p.Match(tup("task:1", map[string]int64{})) || p.Match(tup("emp:1", map[string]int64{})) {
		t.Fatal("key prefix parse wrong")
	}
	q := MustParse(`key == "x"`)
	if !q.Match(tup("x", map[string]int64{})) || q.Match(tup("x2", map[string]int64{})) {
		t.Fatal("key eq parse wrong")
	}
}

func TestParseTrue(t *testing.T) {
	p := MustParse("true")
	if !p.Match(tup("anything", map[string]int64{})) {
		t.Fatal("true should match any row")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "a ==", "== 1", "a = 1", "a & b", "a | b", "(a == 1",
		`key ~ 5`, "key < 1", "a == b", "a == 1 extra", "!", "-", "a !! 1",
		`"str" == 1`, "a == 1 &&", `key ~ "unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	preds := []P{
		True{},
		Field{Name: "dept", Op: EQ, Arg: 1},
		Field{Name: "hours", Op: LE, Arg: -3},
		KeyPrefix{Prefix: "emp:"},
		KeyEq{Key: "x"},
		KeyRange{Lo: "acct:03", Hi: "acct:17"},
		And{L: KeyRange{Lo: "a", Hi: "m"}, R: Field{Name: "dept", Op: EQ, Arg: 1}},
		And{L: Field{Name: "a", Op: GT, Arg: 0}, R: Not{X: Field{Name: "b", Op: NE, Arg: 2}}},
		Or{L: KeyPrefix{Prefix: "t:"}, R: And{L: True{}, R: Field{Name: "z", Op: GE, Arg: 100}}},
	}
	for _, p := range preds {
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("round trip %q: %v", p.String(), err)
		}
		if q.String() != p.String() {
			t.Fatalf("round trip changed: %q -> %q", p.String(), q.String())
		}
	}
}

// TestKeyRangeEmptySemantics pins the contract for lo >= hi intervals:
// they denote the empty set uniformly across Match, KeyBounds,
// DisjointWith, and the parse/String round-trip.
func TestKeyRangeEmptySemantics(t *testing.T) {
	empties := []KeyRange{
		{Lo: "m", Hi: "m"}, // degenerate
		{Lo: "z", Hi: "a"}, // inverted
		{Lo: "", Hi: ""},   // fully degenerate
	}
	tuples := []data.Tuple{
		tup("a", map[string]int64{}), tup("m", map[string]int64{}),
		tup("z", map[string]int64{}), tup("", map[string]int64{}),
	}
	others := []P{
		True{},
		KeyEq{Key: "m"},
		KeyPrefix{Prefix: "m"},
		KeyRange{Lo: "a", Hi: "z"},
		KeyRange{Lo: "z", Hi: "a"},
		Field{Name: "dept", Op: EQ, Arg: 1},
	}
	for _, kr := range empties {
		if !kr.Empty() {
			t.Errorf("%s: Empty() = false", kr)
		}
		for _, tpl := range tuples {
			if kr.Match(tpl) {
				t.Errorf("%s matched %q", kr, tpl.Key)
			}
		}
		lo, hi, bounded := KeyBounds(kr)
		if !bounded || lo != hi || lo != kr.Lo {
			t.Errorf("KeyBounds(%s) = (%q, %q, %v), want (%q, %q, true)", kr, lo, hi, bounded, kr.Lo, kr.Lo)
		}
		// Disjoint from everything, in both argument orders.
		for _, other := range others {
			if !DisjointWith(kr, other) {
				t.Errorf("DisjointWith(%s, %s) = false", kr, other)
			}
			if !DisjointWith(other, kr) {
				t.Errorf("DisjointWith(%s, %s) = false", other, kr)
			}
		}
		// String/Parse round-trips the original bounds unchanged.
		q, err := Parse(kr.String())
		if err != nil {
			t.Fatalf("round trip %q: %v", kr.String(), err)
		}
		if q.String() != kr.String() {
			t.Errorf("round trip changed %q -> %q", kr.String(), q.String())
		}
		if qr, ok := q.(KeyRange); !ok || qr != kr {
			t.Errorf("round trip of %s produced %v", kr, q)
		}
	}
	if (KeyRange{Lo: "a", Hi: "z"}).Empty() {
		t.Error("non-empty range reported Empty")
	}
}

// randomPred builds a random predicate of bounded depth for property tests.
func randomPred(r *rand.Rand, depth int) P {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(5) {
		case 0:
			return True{}
		case 1:
			return Field{Name: string(rune('a' + r.Intn(4))), Op: CmpOp(r.Intn(6)), Arg: int64(r.Intn(21) - 10)}
		case 2:
			return KeyPrefix{Prefix: string(rune('k'+r.Intn(3))) + ":"}
		case 3:
			return KeyEq{Key: data.Key(string(rune('x' + r.Intn(3))))}
		default:
			lo := data.Key(string(rune('k' + r.Intn(3))))
			return KeyRange{Lo: lo, Hi: lo + data.Key(string(rune(':'+r.Intn(3))))}
		}
	}
	switch r.Intn(3) {
	case 0:
		return And{L: randomPred(r, depth-1), R: randomPred(r, depth-1)}
	case 1:
		return Or{L: randomPred(r, depth-1), R: randomPred(r, depth-1)}
	default:
		return Not{X: randomPred(r, depth-1)}
	}
}

func randomTuple(r *rand.Rand) data.Tuple {
	row := data.Row{}
	for _, f := range []string{"a", "b", "c", "d"} {
		if r.Intn(2) == 0 {
			row[f] = int64(r.Intn(21) - 10)
		}
	}
	keys := []string{"x", "y", "z", "k:1", "l:2", "m:3"}
	return data.Tuple{Key: data.Key(keys[r.Intn(len(keys))]), Row: row}
}

// Property: Parse(String(p)) evaluates identically to p on random tuples.
func TestParsePrintSemanticRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := randomPred(r, 3)
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("parse of printed %q: %v", p.String(), err)
		}
		for j := 0; j < 20; j++ {
			tpl := randomTuple(r)
			if p.Match(tpl) != q.Match(tpl) {
				t.Fatalf("semantics changed after round trip: %q on %v", p.String(), tpl)
			}
		}
	}
}

// Property: DisjointWith is sound — if it claims disjoint, no tuple matches both.
func TestDisjointSoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := randomPred(r, 2), randomPred(r, 2)
		if !DisjointWith(a, b) {
			continue
		}
		for j := 0; j < 50; j++ {
			tpl := randomTuple(r)
			if a.Match(tpl) && b.Match(tpl) {
				t.Fatalf("DisjointWith(%q, %q) claimed disjoint but %v matches both", a, b, tpl)
			}
		}
	}
}

func TestDisjointKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{`key == "x"`, `key == "y"`, true},
		{`key == "x"`, `key == "x"`, false},
		{`key == "emp:1"`, `key ~ "task:"`, true},
		{`key == "emp:1"`, `key ~ "emp:"`, false},
		{`key ~ "emp:"`, `key ~ "task:"`, true},
		{`key ~ "emp:"`, `key ~ "emp:1"`, false},
		{"dept == 1", "dept == 2", true},
		{"dept == 1", "dept == 1", false},
		{"hours < 3", "hours > 5", true},
		{"hours < 3", "hours > 2", false},
		{"hours <= 3", "hours >= 3", false},
		{"hours <= 3", "hours > 3", true},
		{"dept == 1", "hours == 1", false}, // different fields: unknown
		{"dept == 1 && hours < 3", "dept == 2", true},
		{"dept != 1", "dept != 2", false},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := DisjointWith(a, b); got != c.want {
			t.Errorf("DisjointWith(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := DisjointWith(b, a); got != c.want {
			t.Errorf("DisjointWith(%q, %q) (swapped) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestQuickFieldEvalMatchesDirect(t *testing.T) {
	f := func(v, arg int64, opRaw uint8) bool {
		op := CmpOp(int(opRaw) % 6)
		p := Field{Name: "f", Op: op, Arg: arg}
		got := p.Match(data.Tuple{Key: "k", Row: data.Row{"f": v}})
		return got == op.Eval(v, arg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
