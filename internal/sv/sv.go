// Package sv is the single-version row store used by the locking engines.
//
// Writes are applied in place — this is deliberate: at the weaker levels of
// Table 2 (Degree 0, READ UNCOMMITTED) other transactions are allowed to
// see uncommitted data, which only works if writers mutate the shared
// current state. Rollback is implemented with a before-image undo log, as
// in the paper's §3 discussion of why Dirty Writes (P0) break recovery: if
// two uncommitted transactions write the same item, restoring either's
// before-image is wrong. The store lets that corruption happen when an
// engine fails to hold long write locks — there is a test demonstrating it.
//
// All access is guarded by a single RWMutex: the store provides atomic
// individual actions (the paper's Degree 0 "action atomicity") and nothing
// more; every stronger guarantee comes from the lock manager above it.
package sv

import (
	"sort"
	"sync"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

// Store is an in-place single-version row store.
type Store struct {
	mu   sync.RWMutex
	rows map[data.Key]data.Row
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{rows: map[data.Key]data.Row{}}
}

// Load bulk-inserts rows (setup helper; no locking protocol involved).
func (s *Store) Load(tuples ...data.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range tuples {
		s.rows[t.Key] = t.Row.Clone()
	}
}

// Get returns a copy of the current row, or nil if absent.
func (s *Store) Get(key data.Key) data.Row {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rows[key].Clone()
}

// Exists reports whether a row is present.
func (s *Store) Exists(key data.Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.rows[key]
	return ok
}

// Put installs row (insert or update) and returns the before-image (nil
// for an insert).
func (s *Store) Put(key data.Key, row data.Row) (before data.Row) {
	s.mu.Lock()
	defer s.mu.Unlock()
	before = s.rows[key]
	s.rows[key] = row.Clone()
	return before
}

// Delete removes the row and returns the before-image (nil if it was
// already absent).
func (s *Store) Delete(key data.Key) (before data.Row) {
	s.mu.Lock()
	defer s.mu.Unlock()
	before = s.rows[key]
	delete(s.rows, key)
	return before
}

// Restore writes a before-image back (undo): nil removes the row.
func (s *Store) Restore(key data.Key, before data.Row) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if before == nil {
		delete(s.rows, key)
	} else {
		s.rows[key] = before.Clone()
	}
}

// Select returns copies of all tuples satisfying p, sorted by key.
func (s *Store) Select(p predicate.P) []data.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []data.Tuple
	for k, r := range s.rows {
		t := data.Tuple{Key: k, Row: r}
		if p.Match(t) {
			out = append(out, t.Clone())
		}
	}
	data.SortTuples(out)
	return out
}

// Snapshot returns a copy of every row, sorted by key (final-state checks).
func (s *Store) Snapshot() []data.Tuple {
	return s.Select(predicate.True{})
}

// Keys returns all present keys, sorted.
func (s *Store) Keys() []data.Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]data.Key, 0, len(s.rows))
	for k := range s.rows {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of rows.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rows)
}

// UndoRecord is one entry of a transaction's undo log: the before-image of
// a write, to be restored on rollback in reverse order.
type UndoRecord struct {
	Key    data.Key
	Before data.Row
}

// UndoLog accumulates before-images for one transaction.
type UndoLog struct {
	records []UndoRecord
}

// Note appends a before-image.
func (u *UndoLog) Note(key data.Key, before data.Row) {
	u.records = append(u.records, UndoRecord{Key: key, Before: before.Clone()})
}

// Len returns the number of undo records.
func (u *UndoLog) Len() int { return len(u.records) }

// Records returns the undo records in append order (for inspection).
func (u *UndoLog) Records() []UndoRecord { return u.records }

// Rollback restores before-images in reverse order. This is exactly the
// recovery procedure the paper's §3 shows to be unsound in the presence of
// Dirty Writes — the store applies it faithfully either way.
func (u *UndoLog) Rollback(s *Store) {
	for i := len(u.records) - 1; i >= 0; i-- {
		r := u.records[i]
		s.Restore(r.Key, r.Before)
	}
	u.records = nil
}
