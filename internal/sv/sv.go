// Package sv is the single-version row store used by the locking engines.
//
// Writes are applied in place — this is deliberate: at the weaker levels of
// Table 2 (Degree 0, READ UNCOMMITTED) other transactions are allowed to
// see uncommitted data, which only works if writers mutate the shared
// current state. Rollback is implemented with a before-image undo log, as
// in the paper's §3 discussion of why Dirty Writes (P0) break recovery: if
// two uncommitted transactions write the same item, restoring either's
// before-image is wrong. The store lets that corruption happen when an
// engine fails to hold long write locks — there is a test demonstrating it.
//
// The store is striped: keys hash onto a fixed set of stripes (the same
// scheme as the lock manager's and the multiversion store's), each with
// its own RWMutex over its slice of the rows. Every stripe provides atomic
// individual actions (the paper's Degree 0 "action atomicity") and nothing
// more; every stronger guarantee comes from the lock manager above it.
// Striping matters because the store sits under the striped lock manager:
// one store latch would re-serialize the disjoint-key traffic the lock
// stripes just freed.
//
// Each stripe also maintains an ordered key index beside its hash map
// (data.OrderedSet, under the same latch), giving the store an ordered
// key space: RangeAnchors merges the per-stripe runs into the anchor set
// a key-range (next-key) lock decomposes over.
//
//isolint:deterministic
package sv

import (
	"sort"
	"sync"

	"isolevel/internal/data"
	"isolevel/internal/obs"
	"isolevel/internal/predicate"
)

// DefaultShards is the stripe count of NewStore, matching the lock
// manager's default so the engines' single shard knob means one thing.
const DefaultShards = 16

type shard struct {
	mu   sync.RWMutex
	rows map[data.Key]data.Row
	// index is the stripe's ordered key set, maintained beside the hash
	// map under the same latch. Key-range locking scans it (RangeAnchors)
	// to turn a predicate into next-key anchors; the hash paths ignore it.
	index data.OrderedSet
}

// Store is an in-place single-version row store.
type Store struct {
	striper data.Striper
	shards  []*shard
	obs     *obs.Sink
}

// SetObs attaches an observability sink; Select records its scan latency
// there. Nil (the default) keeps the scan path free of clock reads. Must
// be set before concurrent use.
func (s *Store) SetObs(sink *obs.Sink) { s.obs = sink }

// NewStore returns an empty store with DefaultShards stripes.
func NewStore() *Store { return NewStoreShards(DefaultShards) }

// NewStoreShards returns an empty store striped across n latches (n < 1 is
// treated as 1; n = 1 reproduces the old single-latch behavior).
func NewStoreShards(n int) *Store {
	striper := data.NewStriper(n)
	s := &Store{striper: striper, shards: make([]*shard, striper.Count())}
	for i := range s.shards {
		s.shards[i] = &shard{rows: map[data.Key]data.Row{}}
	}
	return s
}

// ShardCount returns the number of stripes.
func (s *Store) ShardCount() int { return len(s.shards) }

func (s *Store) shardOf(key data.Key) *shard {
	return s.shards[s.striper.Index(key)]
}

// Load bulk-inserts rows (setup helper; no locking protocol involved).
func (s *Store) Load(tuples ...data.Tuple) {
	for _, t := range tuples {
		sh := s.shardOf(t.Key)
		sh.mu.Lock()
		sh.rows[t.Key] = t.Row.Clone()
		sh.index.Insert(t.Key)
		sh.mu.Unlock()
	}
}

// Get returns a copy of the current row, or nil if absent.
func (s *Store) Get(key data.Key) data.Row {
	sh := s.shardOf(key)
	sh.mu.RLock()
	row := sh.rows[key]
	sh.mu.RUnlock()
	return row.Clone()
}

// Exists reports whether a row is present.
func (s *Store) Exists(key data.Key) bool {
	sh := s.shardOf(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.rows[key]
	return ok
}

// Put installs row (insert or update) and returns the before-image (nil
// for an insert).
func (s *Store) Put(key data.Key, row data.Row) (before data.Row) {
	clone := row.Clone() // outside the latch: cloning allocates
	sh := s.shardOf(key)
	sh.mu.Lock()
	before = sh.rows[key]
	sh.rows[key] = clone
	sh.index.Insert(key)
	sh.mu.Unlock()
	return before
}

// Delete removes the row and returns the before-image (nil if it was
// already absent).
func (s *Store) Delete(key data.Key) (before data.Row) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	before = sh.rows[key]
	delete(sh.rows, key)
	sh.index.Delete(key)
	sh.mu.Unlock()
	return before
}

// Restore writes a before-image back (undo): nil removes the row.
func (s *Store) Restore(key data.Key, before data.Row) {
	clone := before.Clone()
	sh := s.shardOf(key)
	sh.mu.Lock()
	if clone == nil {
		delete(sh.rows, key)
		sh.index.Delete(key)
	} else {
		sh.rows[key] = clone
		sh.index.Insert(key)
	}
	sh.mu.Unlock()
}

// Select returns copies of all tuples satisfying p, sorted by key.
func (s *Store) Select(p predicate.P) []data.Tuple {
	start := s.obs.Now()
	var out []data.Tuple
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, r := range sh.rows {
			t := data.Tuple{Key: k, Row: r}
			if p.Match(t) {
				out = append(out, t.Clone())
			}
		}
		sh.mu.RUnlock()
	}
	data.SortTuples(out)
	s.obs.RecordScan(start)
	return out
}

// Snapshot returns a copy of every row, sorted by key (final-state checks).
func (s *Store) Snapshot() []data.Tuple {
	return s.Select(predicate.True{})
}

// Keys returns all present keys, sorted.
func (s *Store) Keys() []data.Key {
	var out []data.Key
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k := range sh.rows {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RangeAnchors returns the anchor set of a key-range scan over [lo, hi)
// (the whole key space when bounded == false): every present key in the
// range, ascending — merged from the per-stripe ordered indexes — plus the
// smallest present key at or above hi ("" if none), the existing key that
// will anchor the scan's above-range gap coverage. The per-stripe runs are
// each read under that stripe's latch; the merge itself is latch-free, so
// a concurrent writer can slip between stripes — the lock manager's
// conflict check against live row images is what makes that race benign.
func (s *Store) RangeAnchors(lo, hi data.Key, bounded bool) (anchors []data.Key, ceiling data.Key) {
	runs := make([][]data.Key, len(s.shards))
	haveCeil := false
	for i, sh := range s.shards {
		sh.mu.RLock()
		runs[i] = sh.index.Range(lo, hi, bounded)
		if bounded {
			// Higher is strict; hi itself is a legal ceiling (hi is the
			// first key outside the half-open range).
			if sh.index.Contains(hi) {
				if !haveCeil || hi < ceiling {
					ceiling, haveCeil = hi, true
				}
			} else if c, ok := sh.index.Higher(hi); ok && (!haveCeil || c < ceiling) {
				ceiling, haveCeil = c, true
			}
		}
		sh.mu.RUnlock()
	}
	return data.MergeKeys(runs...), ceiling
}

// AppendRangeAnchors is RangeAnchors without the copies: each stripe's
// in-range run is appended to r (one closed run per stripe, in stripe
// order), and only the ceiling is returned. A lock manager that recycles r
// across acquisitions installs a scan's anchors with zero snapshot
// allocations at steady state; the same between-stripes race as
// RangeAnchors applies and is benign for the same reason.
func (s *Store) AppendRangeAnchors(r *data.KeyRuns, lo, hi data.Key, bounded bool) (ceiling data.Key) {
	haveCeil := false
	for _, sh := range s.shards {
		sh.mu.RLock()
		r.Keys = sh.index.AppendRange(r.Keys, lo, hi, bounded)
		r.EndRun()
		if bounded {
			if sh.index.Contains(hi) {
				if !haveCeil || hi < ceiling {
					ceiling, haveCeil = hi, true
				}
			} else if c, ok := sh.index.Higher(hi); ok && (!haveCeil || c < ceiling) {
				ceiling, haveCeil = c, true
			}
		}
		sh.mu.RUnlock()
	}
	return ceiling
}

// Len returns the number of rows.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.rows)
		sh.mu.RUnlock()
	}
	return n
}

// UndoRecord is one entry of a transaction's undo log: the before-image of
// a write, to be restored on rollback in reverse order.
type UndoRecord struct {
	Key    data.Key
	Before data.Row
}

// UndoLog accumulates before-images for one transaction.
type UndoLog struct {
	records []UndoRecord
}

// Note appends a before-image.
func (u *UndoLog) Note(key data.Key, before data.Row) {
	u.records = append(u.records, UndoRecord{Key: key, Before: before.Clone()})
}

// Len returns the number of undo records.
func (u *UndoLog) Len() int { return len(u.records) }

// Records returns the undo records in append order (for inspection).
func (u *UndoLog) Records() []UndoRecord { return u.records }

// Rollback restores before-images in reverse order. This is exactly the
// recovery procedure the paper's §3 shows to be unsound in the presence of
// Dirty Writes — the store applies it faithfully either way.
func (u *UndoLog) Rollback(s *Store) {
	for i := len(u.records) - 1; i >= 0; i-- {
		r := u.records[i]
		s.Restore(r.Key, r.Before)
	}
	u.records = nil
}
