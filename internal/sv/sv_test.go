package sv

import (
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

func TestPutGetDelete(t *testing.T) {
	s := NewStore()
	if s.Get("x") != nil {
		t.Fatal("empty store returned a row")
	}
	if before := s.Put("x", data.Scalar(1)); before != nil {
		t.Fatal("insert returned a before-image")
	}
	if got := s.Get("x").Val(); got != 1 {
		t.Fatalf("Get = %d", got)
	}
	if before := s.Put("x", data.Scalar(2)); before.Val() != 1 {
		t.Fatalf("update before-image = %v", before)
	}
	if before := s.Delete("x"); before.Val() != 2 {
		t.Fatalf("delete before-image = %v", before)
	}
	if s.Exists("x") {
		t.Fatal("deleted row still exists")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	s.Put("x", data.Scalar(1))
	r := s.Get("x")
	r[data.ValField] = 99
	if s.Get("x").Val() != 1 {
		t.Fatal("Get leaked internal storage")
	}
}

func TestRestore(t *testing.T) {
	s := NewStore()
	s.Put("x", data.Scalar(1))
	s.Restore("x", data.Scalar(5))
	if s.Get("x").Val() != 5 {
		t.Fatal("restore of non-nil image")
	}
	s.Restore("x", nil)
	if s.Exists("x") {
		t.Fatal("restore of nil image should delete")
	}
}

func TestSelectAndSnapshot(t *testing.T) {
	s := NewStore()
	s.Load(
		data.Tuple{Key: "e1", Row: data.Row{"active": 1}},
		data.Tuple{Key: "e2", Row: data.Row{"active": 0}},
		data.Tuple{Key: "e3", Row: data.Row{"active": 1}},
	)
	got := s.Select(predicate.MustParse("active == 1"))
	if len(got) != 2 || got[0].Key != "e1" || got[1].Key != "e3" {
		t.Fatalf("Select = %v", got)
	}
	if len(s.Snapshot()) != 3 || s.Len() != 3 {
		t.Fatal("Snapshot/Len wrong")
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "e1" || keys[2] != "e3" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestUndoLogRollback(t *testing.T) {
	s := NewStore()
	s.Put("x", data.Scalar(10))
	var u UndoLog
	u.Note("x", s.Put("x", data.Scalar(20)))
	u.Note("y", s.Put("y", data.Scalar(1))) // insert: before nil
	u.Note("x", s.Put("x", data.Scalar(30)))
	if u.Len() != 3 {
		t.Fatalf("undo len = %d", u.Len())
	}
	u.Rollback(s)
	if s.Get("x").Val() != 10 {
		t.Fatalf("x after rollback = %v", s.Get("x"))
	}
	if s.Exists("y") {
		t.Fatal("inserted row survived rollback")
	}
	if u.Len() != 0 {
		t.Fatal("undo log not cleared")
	}
}

// The paper's §3 recovery argument: with dirty writes (no long write
// locks), before-image undo corrupts the database. w1[x] w2[x] a1 —
// rolling back T1 restores T1's before-image and wipes out T2's update.
func TestDirtyWriteBreaksUndo(t *testing.T) {
	s := NewStore()
	s.Put("x", data.Scalar(0)) // initial committed value
	var u1 UndoLog
	u1.Note("x", s.Put("x", data.Scalar(1))) // w1[x=1], before-image 0
	var u2 UndoLog
	u2.Note("x", s.Put("x", data.Scalar(2))) // w2[x=2] dirty!, before-image 1
	u1.Rollback(s)                           // a1
	// T1's rollback restored 0 — T2's committed-to-be update of 2 is gone.
	if got := s.Get("x").Val(); got != 0 {
		t.Fatalf("x = %d (expected the paper's corruption: T2's write wiped)", got)
	}
	// And if T2 now also aborts, its undo restores 1 — T1's uncommitted
	// value resurrects. Either way the database is wrong.
	u2.Rollback(s)
	if got := s.Get("x").Val(); got != 1 {
		t.Fatalf("x = %d after both rollbacks (expected 1, the resurrected dirty value)", got)
	}
}

func TestUndoRecordsExposed(t *testing.T) {
	var u UndoLog
	u.Note("x", data.Scalar(1))
	rs := u.Records()
	if len(rs) != 1 || rs[0].Key != "x" || rs[0].Before.Val() != 1 {
		t.Fatalf("records = %v", rs)
	}
}
