// Package loadgen is the traffic tier's load generator: a closed- or
// open-loop client fleet driving the server package's wire protocol and
// reporting throughput, abort/retry rates, and latency percentiles from
// internal/obs histograms.
//
// All clients connect up front (so admission-control shedding is
// observed exactly once per refused client), then run transactions:
//
//   - closed loop (Rate == 0): each admitted client runs its share of
//     Txns back to back — offered load tracks service capacity;
//   - open loop (Rate > 0): arrivals are generated at the target rate
//     regardless of completions, and arrivals that find every client
//     busy are counted as dropped — offered load is independent of
//     capacity, the way real traffic is.
//
// Each transaction samples an isolation level from Levels (mixed-level
// traffic on one engine), a hot-or-cold key set per op, and retries on
// the server's "-RETRY <KIND>" replies up to Retries times. "-BUSY"
// statement sheds abort the attempt and retry. "-ERR" replies count as
// protocol errors: a healthy run reports zero.
//
// The generator is seeded (Seed) so a given config replays the same
// statement stream per client; timing, and therefore interleaving,
// remains the scheduler's. This package deliberately lives outside the
// //isolint:deterministic set: it measures wall-clock behavior of a
// live server.
package loadgen

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"isolevel/internal/engine"
	"isolevel/internal/obs"
)

// Config parameterizes a load run. Addr or Dial is required; zero
// values take defaults.
type Config struct {
	Addr      string                   // server address (tcp)
	Dial      func() (net.Conn, error) // optional custom dialer (tests)
	Clients   int                      // client connections (default 4)
	Txns      int                      // transactions across admitted clients (default 1000)
	Rate      float64                  // open-loop arrivals/sec; 0 = closed loop
	Keys      int                      // key-space size (default 64)
	HotKeys   int                      // hot-set size (default max(1, Keys/16))
	HotBias   float64                  // probability an op hits the hot set (default 0.5)
	OpsPerTxn int                      // data statements per transaction (default 4)
	ReadFrac  float64                  // fraction of ops that GET (default 0.5)
	ScanFrac  float64                  // fraction of ops that SCAN (default 0)
	DelFrac   float64                  // fraction of ops that DEL (default 0)
	Levels    []engine.Level           // per-txn level mix; empty = server default
	Retries   int                      // max retries per transaction (default 10)
	Seed      int64                    // rng seed (default 1)
}

func (c *Config) fill() {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Txns <= 0 {
		c.Txns = 1000
	}
	if c.Keys <= 0 {
		c.Keys = 64
	}
	if c.HotKeys <= 0 {
		c.HotKeys = max(1, c.Keys/16)
	}
	if c.HotBias == 0 {
		c.HotBias = 0.5
	}
	if c.OpsPerTxn <= 0 {
		c.OpsPerTxn = 4
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.5
	}
	if c.Retries == 0 {
		c.Retries = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Dial == nil {
		addr := c.Addr
		c.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
}

// Result aggregates a run. Txn and Stmt are latency snapshots in
// nanoseconds.
type Result struct {
	Clients  int   // configured clients
	Admitted int64 // clients past admission control
	Shed     int64 // clients refused with -BUSY at the greeting

	Commits   int64 // committed transactions
	Retries   int64 // -RETRY replies honored with a rerun
	GaveUp    int64 // transactions abandoned after Retries retries
	Busy      int64 // statements shed by backpressure (-BUSY mid-session)
	ProtoErrs int64 // -ERR replies, malformed replies, dead connections
	Dropped   int64 // open-loop arrivals dropped (all clients busy)

	Reads, Writes, Scans, Dels int64

	Elapsed time.Duration
	Txn     obs.HistSnapshot
	Stmt    obs.HistSnapshot
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Commits) / r.Elapsed.Seconds()
}

// String renders the run report; the serve-smoke CI target greps these
// exact field names.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: clients=%d admitted=%d shed=%d\n", r.Clients, r.Admitted, r.Shed)
	fmt.Fprintf(&b, "  commits=%d retries=%d gave-up=%d busy=%d dropped=%d proto-errors=%d reads=%d writes=%d scans=%d dels=%d\n",
		r.Commits, r.Retries, r.GaveUp, r.Busy, r.Dropped, r.ProtoErrs, r.Reads, r.Writes, r.Scans, r.Dels)
	fmt.Fprintf(&b, "  throughput=%.0f tx/s over %v\n", r.Throughput(), r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  txn latency (ns):  %s\n", r.Txn.Summary())
	fmt.Fprintf(&b, "  stmt latency (ns): %s\n", r.Stmt.Summary())
	return b.String()
}

// Run executes one load run and blocks until every client finishes.
func Run(cfg Config) (Result, error) {
	cfg.fill()
	res := Result{Clients: cfg.Clients}
	var (
		admitted, shed, commits, retries, gaveUp             atomic.Int64
		busy, protoErrs, dropped, reads, writes, scans, dels atomic.Int64
		txnHist, stmtHist                                    obs.Histogram
	)

	// Connect the whole fleet first: admission decisions land before any
	// client disconnects, so shed counts are exact.
	clients := make([]*client, 0, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		conn, err := cfg.Dial()
		if err != nil {
			return res, fmt.Errorf("loadgen: dial client %d: %w", i, err)
		}
		c := &client{
			conn: conn,
			br:   bufio.NewReader(conn),
			bw:   bufio.NewWriter(conn),
			rng:  rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			cfg:  &cfg,
			stmt: &stmtHist,
		}
		line, err := c.readLine()
		switch {
		case err != nil:
			protoErrs.Add(1)
			conn.Close()
		case strings.HasPrefix(line, "-BUSY"):
			shed.Add(1)
			conn.Close()
		case strings.HasPrefix(line, "+HELLO"):
			admitted.Add(1)
			clients = append(clients, c)
		default:
			protoErrs.Add(1)
			conn.Close()
		}
	}

	// Open loop: a dispatcher paces arrivals into a bounded queue;
	// arrivals that find it full are dropped.
	var work chan struct{}
	if cfg.Rate > 0 && len(clients) > 0 {
		work = make(chan struct{}, len(clients))
		go func() {
			defer close(work)
			interval := time.Duration(float64(time.Second) / cfg.Rate)
			for i := 0; i < cfg.Txns; i++ {
				select {
				case work <- struct{}{}:
				default:
					dropped.Add(1)
				}
				time.Sleep(interval)
			}
		}()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i, c := range clients {
		// Closed loop: split Txns across admitted clients.
		share := cfg.Txns / len(clients)
		if i < cfg.Txns%len(clients) {
			share++
		}
		wg.Add(1)
		go func(c *client, share int) {
			defer wg.Done()
			defer c.close()
			for done := 0; ; done++ {
				if work != nil {
					if _, ok := <-work; !ok {
						return
					}
				} else if done >= share {
					return
				}
				t0 := time.Now()
				switch c.runTxn(&retries, &busy, &reads, &writes, &scans, &dels) {
				case txnCommitted:
					commits.Add(1)
					txnHist.Record(time.Since(t0).Nanoseconds())
				case txnGaveUp:
					gaveUp.Add(1)
				case txnDead:
					protoErrs.Add(1)
					return
				}
			}
		}(c, share)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	res.Admitted, res.Shed = admitted.Load(), shed.Load()
	res.Commits, res.Retries, res.GaveUp = commits.Load(), retries.Load(), gaveUp.Load()
	res.Busy, res.ProtoErrs, res.Dropped = busy.Load(), protoErrs.Load(), dropped.Load()
	res.Reads, res.Writes, res.Scans, res.Dels = reads.Load(), writes.Load(), scans.Load(), dels.Load()
	res.Txn, res.Stmt = txnHist.Snapshot(), stmtHist.Snapshot()
	return res, nil
}

type txnOutcome int

const (
	txnCommitted txnOutcome = iota
	txnGaveUp
	txnDead // connection unusable; the client stops
)

type client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	rng  *rand.Rand
	cfg  *Config
	stmt *obs.Histogram
}

func (c *client) close() { c.conn.Close() }

type op struct {
	verb string // GET, SET, DEL, SCAN
	key  string
	val  int64
	hi   string // SCAN upper bound
}

// key samples a hot or cold key. Keys are zero-padded so their order
// matches the scan order.
func (c *client) key() string {
	var k int
	if c.rng.Float64() < c.cfg.HotBias {
		k = c.rng.Intn(c.cfg.HotKeys)
	} else {
		k = c.rng.Intn(c.cfg.Keys)
	}
	return fmt.Sprintf("acct:%06d", k)
}

// genTxn draws one transaction: a level from the mix and OpsPerTxn data
// statements. The ops are fixed for the transaction's lifetime so a
// retry reruns the same logical work.
func (c *client) genTxn() (level string, ops []op) {
	if len(c.cfg.Levels) > 0 {
		level = c.cfg.Levels[c.rng.Intn(len(c.cfg.Levels))].String()
	}
	ops = make([]op, c.cfg.OpsPerTxn)
	for i := range ops {
		r := c.rng.Float64()
		switch {
		case r < c.cfg.ReadFrac:
			ops[i] = op{verb: "GET", key: c.key()}
		case r < c.cfg.ReadFrac+c.cfg.ScanFrac:
			lo := c.rng.Intn(c.cfg.Keys)
			span := 1 + c.rng.Intn(8)
			ops[i] = op{verb: "SCAN", key: fmt.Sprintf("acct:%06d", lo), hi: fmt.Sprintf("acct:%06d", lo+span)}
		case r < c.cfg.ReadFrac+c.cfg.ScanFrac+c.cfg.DelFrac:
			ops[i] = op{verb: "DEL", key: c.key()}
		default:
			ops[i] = op{verb: "SET", key: c.key(), val: c.rng.Int63n(1000)}
		}
	}
	return level, ops
}

// runTxn runs one transaction including its retry loop.
func (c *client) runTxn(retries, busy, reads, writes, scans, dels *atomic.Int64) txnOutcome {
	level, ops := c.genTxn()
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		switch res := c.attempt(level, ops, reads, writes, scans, dels); res {
		case attemptOK:
			return txnCommitted
		case attemptRetry:
			retries.Add(1)
		case attemptBusy:
			busy.Add(1)
		case attemptDead:
			return txnDead
		}
	}
	return txnGaveUp
}

type attemptResult int

const (
	attemptOK    attemptResult = iota
	attemptRetry               // -RETRY: server rolled the txn back; rerun
	attemptBusy                // -BUSY statement shed; abort and rerun
	attemptDead                // protocol error or dead connection
)

// attempt runs BEGIN, the ops, COMMIT once. On -RETRY the server has
// already aborted; on -BUSY this client aborts before retrying.
func (c *client) attempt(level string, ops []op, reads, writes, scans, dels *atomic.Int64) attemptResult {
	begin := "BEGIN"
	if level != "" {
		begin = "BEGIN ISOLATION LEVEL " + level
	}
	status, _, err := c.roundTrip(begin)
	if err != nil || status != '+' {
		return attemptDead
	}
	for _, o := range ops {
		var cmd string
		switch o.verb {
		case "GET":
			cmd = "GET " + o.key
		case "SET":
			cmd = "SET " + o.key + " " + strconv.FormatInt(o.val, 10)
		case "DEL":
			cmd = "DEL " + o.key
		case "SCAN":
			cmd = "SCAN " + o.key + " " + o.hi
		}
		status, line, err := c.roundTrip(cmd)
		if err != nil {
			return attemptDead
		}
		switch {
		case status == '-' && strings.HasPrefix(line, "-RETRY"):
			return attemptRetry
		case status == '-' && strings.HasPrefix(line, "-BUSY"):
			// The statement was shed, not executed: the transaction is
			// still open and must be abandoned before the rerun.
			if st, _, err := c.roundTrip("ABORT"); err != nil || st == 0 {
				return attemptDead
			}
			return attemptBusy
		case status == '-':
			return attemptDead
		}
		switch o.verb {
		case "GET":
			reads.Add(1)
		case "SET":
			writes.Add(1)
		case "DEL":
			dels.Add(1)
		case "SCAN":
			scans.Add(1)
		}
	}
	status, line, err := c.roundTrip("COMMIT")
	switch {
	case err != nil:
		return attemptDead
	case status == '+':
		return attemptOK
	case strings.HasPrefix(line, "-RETRY"):
		return attemptRetry
	case strings.HasPrefix(line, "-BUSY"):
		if st, _, err := c.roundTrip("ABORT"); err != nil || st == 0 {
			return attemptDead
		}
		return attemptBusy
	}
	return attemptDead
}

// roundTrip sends one statement and reads its reply (consuming a
// multi-line "*<n>" array wholly). status is the reply's first byte.
func (c *client) roundTrip(cmd string) (status byte, line string, err error) {
	t0 := time.Now()
	c.bw.WriteString(cmd)
	c.bw.WriteString("\r\n")
	if err := c.bw.Flush(); err != nil {
		return 0, "", err
	}
	line, err = c.readLine()
	if err != nil || line == "" {
		return 0, line, fmt.Errorf("loadgen: empty or failed reply to %q: %w", cmd, err)
	}
	if line[0] == '*' {
		n, convErr := strconv.Atoi(line[1:])
		if convErr != nil {
			return 0, line, fmt.Errorf("loadgen: bad array header %q", line)
		}
		for i := 0; i < n; i++ {
			if _, err := c.readLine(); err != nil {
				return 0, line, err
			}
		}
		// An array reply is a successful scan.
		c.stmt.Record(time.Since(t0).Nanoseconds())
		return '+', line, nil
	}
	c.stmt.Record(time.Since(t0).Nanoseconds())
	return line[0], line, nil
}

func (c *client) readLine() (string, error) {
	line, err := c.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}
