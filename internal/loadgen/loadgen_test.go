package loadgen_test

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/loadgen"
	"isolevel/internal/mvcc"
	"isolevel/internal/server"
)

// TestLoadgenPipeRun drives a closed-loop run over net.Pipe connections
// (no listener) and checks the accounting invariants and the report
// tokens the serve-smoke CI target greps for.
func TestLoadgenPipeRun(t *testing.T) {
	db := mvcc.NewDB()
	tuples := make([]data.Tuple, 16)
	for i := range tuples {
		tuples[i] = data.Tuple{Key: data.Key(fmt.Sprintf("acct:%06d", i)), Row: data.Scalar(100)}
	}
	db.Load(tuples...)
	srv := server.New(server.Config{DB: db, DefaultLevel: engine.SnapshotIsolation, Family: "mv"})
	defer srv.Close()

	const txns = 40
	res, err := loadgen.Run(loadgen.Config{
		Dial: func() (net.Conn, error) {
			sc, cc := net.Pipe()
			go srv.ServeConn(sc)
			return cc, nil
		},
		Clients: 3, Txns: txns, Keys: 16, OpsPerTxn: 4,
		ReadFrac: 0.4, ScanFrac: 0.2,
		Levels: []engine.Level{engine.SnapshotIsolation},
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 3 || res.Shed != 0 {
		t.Fatalf("admitted=%d shed=%d, want 3/0", res.Admitted, res.Shed)
	}
	if res.ProtoErrs != 0 {
		t.Fatalf("proto errors = %d, want 0", res.ProtoErrs)
	}
	if res.Commits+res.GaveUp != txns {
		t.Fatalf("commits=%d + gave-up=%d != %d", res.Commits, res.GaveUp, txns)
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	// Committed transactions ran OpsPerTxn data statements each.
	if ops := res.Reads + res.Writes + res.Scans; ops < res.Commits*4 {
		t.Fatalf("reads+writes+scans = %d, want >= %d", ops, res.Commits*4)
	}
	if res.Stmt.Count == 0 || res.Txn.Count != res.Commits {
		t.Fatalf("histograms: stmt count=%d txn count=%d commits=%d", res.Stmt.Count, res.Txn.Count, res.Commits)
	}
	if res.Throughput() <= 0 {
		t.Fatalf("throughput = %f, want > 0", res.Throughput())
	}
	report := res.String()
	for _, tok := range []string{"proto-errors=0", "commits=", "throughput=", "txn latency (ns):", "admitted=3 shed=0"} {
		if !strings.Contains(report, tok) {
			t.Errorf("report missing %q:\n%s", tok, report)
		}
	}
}
