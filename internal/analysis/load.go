// Package loading for isolint: a minimal, hermetic replacement for
// golang.org/x/tools/go/packages. Module packages are discovered by
// walking the module tree, parsed with go/parser and type-checked with
// go/types; imports inside the module resolve recursively through the
// same loader, while standard-library imports resolve through the
// compiler-independent source importer (go/importer "source"), which
// needs no pre-built export data and no network.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("isolevel/internal/lock").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
	// Annotations are the parsed //isolint: directives.
	Annotations *Annotations
	// Srcs maps file names to raw source bytes.
	Srcs map[string][]byte
	// TypeErrors collects type-checker errors (the load still completes;
	// analyzers run best-effort over partial type information).
	TypeErrors []error
}

// A Loader loads and memoizes the packages of one module.
type Loader struct {
	// ModuleRoot is the directory holding go.mod; ModulePath its module
	// path.
	ModuleRoot, ModulePath string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package
	// loading guards against import cycles (which would be a compile
	// error anyway).
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir (dir or
// an ancestor must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found in or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// DirFor maps an import path inside the module to its directory.
func (l *Loader) DirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// PathFor maps a directory inside the module to its import path.
func (l *Loader) PathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadAll loads every package of the module: each directory under the
// module root holding at least one non-test .go file, skipping testdata,
// vendored and hidden trees. Packages are returned in import-path order.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := l.PathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// Load loads (or returns the memoized) package at the given module import
// path.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.DirFor(path)
	if !ok {
		return nil, fmt.Errorf("import path %s is outside module %s", path, l.ModulePath)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	pkg, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir loads a directory of Go files as a standalone package under a
// synthetic import path — the fixture entry point used by analysistest.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.loadDir(dir, asPath)
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	srcs := map[string][]byte{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		srcs[full] = src
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Srcs:  srcs,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(path, l.fset, files, pkg.Info)
	pkg.Annotations = parseAnnotations(l.fset, files, srcs)
	return pkg, nil
}

// moduleImporter routes module-internal imports back through the loader
// and everything else (the standard library) through the source importer.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.l.ModuleRoot, 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if _, ok := m.l.DirFor(path); ok {
		pkg, err := m.l.Load(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("type-checking %s failed", path)
		}
		return pkg.Types, nil
	}
	return m.l.std.ImportFrom(path, dir, mode)
}
