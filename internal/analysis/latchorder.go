// latchorder: the lock manager's latch hierarchy as a compiler-checked
// partial order.
//
// The package being analyzed declares its hierarchy in source (the lock
// package's docs are the single source of truth):
//
//	//isolint:latch-order Manager.gate < Manager.rangeMu < stripe.mu < WaitsFor.mu
//	//isolint:latch-order stripe.mu < footprintSlot.mu
//	//isolint:latch-leaf Manager.parkMu
//
// Latches are named Type.field (struct latches) or by package-level var
// name; the declared chains union into a partial order via transitive
// closure. The analyzer abstract-interprets every function body — tracking
// a held-latch multiset through branches, loops (to fixpoint), defers and
// calls, with interprocedural summaries for same-package callees — and
// reports:
//
//   - ordering: acquiring A while holding B when the order declares
//     A < B, directly or through any chain of same-package calls;
//   - nesting: re-acquiring a latch class already held (self-deadlock
//     with sync.Mutex; two-instance acquisition breaks the one-stripe-
//     at-a-time discipline);
//   - leaves: holding any declared latch while taking a leaf, or vice
//     versa;
//   - undeclared latches: a sync.Mutex/RWMutex lock op on a latch the
//     hierarchy does not name (the hierarchy must stay total over the
//     package's latches or the other checks silently narrow);
//   - pairing: return paths of one function that disagree on the net
//     lock/unlock delta of a latch (a conditional leak), and exported
//     functions returning with any non-zero delta. Unexported helpers
//     may transfer latch ownership to or from their callers (the striped
//     fast paths do); the consistent transfer delta is folded into every
//     caller, so the balance check happens where the API boundary is.
//   - refresh discipline: after a call to an //isolint:grant-mutator
//     function (one that installs granted lock state), every path to
//     return must pass an //isolint:waiter-refresh call — directly or
//     via a callee that always refreshes — or the waits-for graph can go
//     stale. This is the exact shape of the undetected-deadlock hang the
//     key-range PR review caught: fragments installed without
//     refreshing item waiters' edges.
//
// The analyzer is path-sensitive but bounded: per-function state sets are
// deduplicated and capped, loops iterate to a small fixpoint, and defers
// are applied at every exit (this repo's defers are unconditional
// lock/unlock pairs at function top). Interface calls (the lock
// Observer) are treated as latch-free, which the Observer contract
// demands anyway.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LatchOrder is the latch-hierarchy analyzer.
var LatchOrder = &Analyzer{
	Name: "latchorder",
	Doc:  "enforces the declared latch acquisition order, lock/unlock pairing on all paths, and the install-then-refresh waits-for discipline",
	Run:  runLatchOrder,
}

func runLatchOrder(pass *Pass) {
	ann := pass.Pkg.Annotations
	hasMarkers := len(ann.GrantMutators) > 0 || len(ann.WaiterRefreshers) > 0
	if len(ann.Chains) == 0 && len(ann.Leaves) == 0 && !hasMarkers {
		return
	}
	c := &latchChecker{
		pass:     pass,
		info:     pass.Pkg.Info,
		less:     map[string]map[string]bool{},
		declared: map[string]bool{},
		leaves:   map[string]bool{},
		funcs:    map[*types.Func]*ast.FuncDecl{},
		sums:     map[*types.Func]*latchSummary{},
		litSums:  map[*ast.FuncLit]*latchSummary{},
	}
	for name := range ann.Leaves {
		c.declared[name] = true
		c.leaves[name] = true
	}
	for i, chain := range ann.Chains {
		for _, name := range chain {
			if c.leaves[name] {
				pass.Reportf(posOf(pass, ann.ChainPos[i]), "latch %s is declared both in a chain and as a leaf", name)
			}
			c.declared[name] = true
		}
		for j := 0; j+1 < len(chain); j++ {
			if c.less[chain[j]] == nil {
				c.less[chain[j]] = map[string]bool{}
			}
			c.less[chain[j]][chain[j+1]] = true
		}
	}
	// Transitive closure.
	names := sortedKeys(c.declared)
	for _, k := range names {
		for _, i := range names {
			if c.less[i][k] {
				for _, j := range names {
					if c.less[k][j] {
						if c.less[i] == nil {
							c.less[i] = map[string]bool{}
						}
						c.less[i][j] = true
					}
				}
			}
		}
	}
	for _, n := range names {
		if c.less[n][n] {
			pass.Reportf(pass.Pkg.Files[0].Pos(), "declared latch order contains a cycle through %s", n)
			return
		}
	}

	// Index function declarations and markers.
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			fn, ok := c.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.funcs[fn] = fd
		}
	}

	// Analyze every function, in stable source order.
	var fns []*types.Func
	for fn := range c.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return c.funcs[fns[i]].Pos() < c.funcs[fns[j]].Pos() })
	for _, fn := range fns {
		c.summary(fn)
	}
}

// posOf converts an already-resolved Position back into a Pos-bearing
// report (the framework wants token.Pos; we re-report at the file/line by
// finding no better anchor, so just reuse the package's first file).
func posOf(pass *Pass, pos token.Position) token.Pos {
	for _, f := range pass.Pkg.Files {
		tf := pass.Pkg.Fset.File(f.Pos())
		if tf != nil && tf.Name() == pos.Filename && pos.Line <= tf.LineCount() {
			return tf.LineStart(pos.Line)
		}
	}
	return pass.Pkg.Files[0].Pos()
}

// latchSummary is the interprocedural summary of one function.
type latchSummary struct {
	// acquires maps each latch class the function may lock, transitively
	// through same-package calls, to the latches it has already released
	// (non-positive [r, w] deltas relative to its caller) at the
	// acquisition point — so a callee that drops the caller's latch
	// before taking another (release-then-park) is not misread as
	// nesting them. A class only keeps a release entry if the release
	// happens before every acquisition site (conservative merge).
	acquires map[string]map[string][2]int
	// delta is the net [r, w] lock count per class on return, when all
	// return paths agree. Unexported functions may have non-zero deltas
	// (ownership transfer); the caller absorbs them.
	delta map[string][2]int
	// leavesObligation / alwaysRefreshes summarize the waits-for refresh
	// discipline across return paths. A function whose pending obligation
	// was reported (or waived) propagates as neutral, so each origin is
	// reported exactly once.
	leavesObligation, alwaysRefreshes bool
	// mutator / refresher are the function's own //isolint: markers.
	mutator, refresher bool
	done               bool
}

type latchChecker struct {
	pass     *Pass
	info     *types.Info
	less     map[string]map[string]bool
	declared map[string]bool
	leaves   map[string]bool
	funcs    map[*types.Func]*ast.FuncDecl
	sums     map[*types.Func]*latchSummary
	litSums  map[*ast.FuncLit]*latchSummary
}

// lstate is one abstract path state.
type lstate struct {
	kind int // flow kind: 0 next, 1 return, 2 break, 3 continue
	held map[string][2]int
	// pending obligation plus the position of the mutator call that
	// opened it; refreshed marks a refresh with no later mutation.
	pending   bool
	refreshed bool
	mutPos    token.Pos
	mutName   string
}

const (
	flowNext = iota
	flowReturn
	flowBreak
	flowContinue
)

func (s lstate) clone() lstate {
	h := make(map[string][2]int, len(s.held))
	for k, v := range s.held {
		h[k] = v
	}
	s.held = h
	return s
}

func (s lstate) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%t|%t", s.kind, s.pending, s.refreshed)
	for _, k := range sortedDeltaKeys(s.held) {
		v := s.held[k]
		if v != [2]int{} {
			fmt.Fprintf(&b, "|%s:%d,%d", k, v[0], v[1])
		}
	}
	return b.String()
}

func sortedDeltaKeys(m map[string][2]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

const maxStates = 64

func dedup(states []lstate) []lstate {
	seen := map[string]bool{}
	out := states[:0]
	for _, s := range states {
		k := s.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	if len(out) > maxStates {
		out = out[:maxStates]
	}
	return out
}

// funcWalk carries the per-function analysis context.
type funcWalk struct {
	c    *latchChecker
	decl *ast.FuncDecl
	sum  *latchSummary
	// deferred effects, applied at every return (this repo defers
	// unconditionally at function top).
	deferred []func(*lstate)
	// reported dedupes per-function diagnostics by key.
	reported map[string]bool
}

// summary computes (and memoizes) fn's latch summary, reporting that
// function's diagnostics as a side effect of the first computation.
func (c *latchChecker) summary(fn *types.Func) *latchSummary {
	if s, ok := c.sums[fn]; ok {
		return s // done or in-progress (recursion: neutral partial summary)
	}
	s := &latchSummary{acquires: map[string]map[string][2]int{}, delta: map[string][2]int{}}
	c.sums[fn] = s
	decl := c.funcs[fn]
	if decl == nil || decl.Body == nil {
		s.done = true
		return s
	}
	fset := c.pass.Pkg.Fset
	ann := c.pass.Pkg.Annotations
	s.mutator = funcMarkedAt(fset, ann.GrantMutators, decl)
	s.refresher = funcMarkedAt(fset, ann.WaiterRefreshers, decl)
	c.analyzeBody(decl, decl.Body, s)
	s.done = true
	return s
}

// litSummary analyzes a function literal (for when it is invoked at its
// use site, e.g. a sort.Slice comparator running under a latch).
func (c *latchChecker) litSummary(lit *ast.FuncLit) *latchSummary {
	if s, ok := c.litSums[lit]; ok {
		return s
	}
	s := &latchSummary{acquires: map[string]map[string][2]int{}, delta: map[string][2]int{}}
	c.litSums[lit] = s
	c.analyzeBody(nil, lit.Body, s)
	s.done = true
	return s
}

// analyzeBody runs the abstract interpretation and fills sum, reporting
// diagnostics against decl (nil for literals: report positionally only).
func (c *latchChecker) analyzeBody(decl *ast.FuncDecl, body *ast.BlockStmt, sum *latchSummary) {
	w := &funcWalk{c: c, decl: decl, sum: sum, reported: map[string]bool{}}
	init := lstate{held: map[string][2]int{}}
	outs := w.execStmts(body.List, []lstate{init})
	// Falling off the end is a return.
	var rets []lstate
	for _, s := range outs {
		if s.kind == flowNext || s.kind == flowReturn {
			s.kind = flowReturn
			rets = append(rets, s)
		}
	}
	if len(rets) == 0 {
		rets = []lstate{{kind: flowReturn, held: map[string][2]int{}}}
	}
	// Apply deferred effects at each exit.
	for i := range rets {
		st := rets[i].clone()
		for j := len(w.deferred) - 1; j >= 0; j-- {
			w.deferred[j](&st)
		}
		rets[i] = st
	}

	// Pairing: return paths must agree per class; exported functions must
	// be balanced.
	classes := map[string]bool{}
	for _, r := range rets {
		for cl, v := range r.held {
			if v != [2]int{} {
				classes[cl] = true
			}
		}
	}
	name := "func literal"
	exported := false
	if decl != nil {
		name = decl.Name.Name
		exported = ast.IsExported(decl.Name.Name)
	}
	for _, cl := range sortedKeys(classes) {
		first := rets[0].held[cl]
		consistent := true
		for _, r := range rets[1:] {
			if r.held[cl] != first {
				consistent = false
				break
			}
		}
		pos := body.Pos()
		if decl != nil {
			pos = decl.Pos()
		}
		switch {
		case !consistent:
			w.reportFunc(pos, "latchorder-pairing-"+cl, "%s: latch %s is held/released inconsistently across return paths (conditional leak)", name, cl)
		case exported && first != [2]int{}:
			w.reportFunc(pos, "latchorder-balance-"+cl, "%s: exported function returns with a net %s delta of r=%d w=%d; API entry points must be latch-balanced", name, cl, first[0], first[1])
		default:
			sum.delta[cl] = first
		}
	}

	// Refresh discipline.
	leaves, refreshedAll := false, true
	var pendingState lstate
	for _, r := range rets {
		if r.pending {
			if !leaves {
				pendingState = r
			}
			leaves = true
		}
		if !r.refreshed || r.pending {
			refreshedAll = false
		}
	}
	if leaves {
		pos := pendingState.mutPos
		if pos == token.NoPos && decl != nil {
			pos = decl.Pos()
		}
		w.reportFunc(pos, "latchorder-refresh", "%s: grant state mutated by %s can reach return without a waits-for refresh on some path; stale wait edges are undetected deadlocks (call a //isolint:waiter-refresh function on every path)", name, pendingState.mutName)
		// Origin reported here; propagate as neutral so callers don't
		// re-report the same obligation.
		leaves = false
	}
	sum.leavesObligation = leaves
	sum.alwaysRefreshes = refreshedAll
}

func (w *funcWalk) reportFunc(pos token.Pos, key, format string, args ...any) {
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	if w.decl != nil {
		w.c.pass.ReportFuncf(w.decl, pos, format, args...)
	} else {
		w.c.pass.Reportf(pos, format, args...)
	}
}

func (w *funcWalk) reportOnce(pos token.Pos, key, format string, args ...any) {
	w.reportFunc(pos, key, format, args...)
}

// --- statement walking ---

func (w *funcWalk) execStmts(stmts []ast.Stmt, in []lstate) []lstate {
	cur := in
	var settled []lstate // flows that left the straight line (ret/brk/cont)
	for _, stmt := range stmts {
		var next []lstate
		for _, s := range w.execStmt(stmt, cur) {
			if s.kind == flowNext {
				next = append(next, s)
			} else {
				settled = append(settled, s)
			}
		}
		cur = dedup(next)
		if len(cur) == 0 {
			break
		}
	}
	return dedup(append(settled, cur...))
}

func (w *funcWalk) execStmt(stmt ast.Stmt, in []lstate) []lstate {
	if len(in) == 0 {
		return nil
	}
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		return w.exprEach(in, s.X)
	case *ast.SendStmt:
		return w.exprEach(in, s.Chan, s.Value)
	case *ast.IncDecStmt:
		return w.exprEach(in, s.X)
	case *ast.AssignStmt:
		exprs := append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
		return w.exprEach(in, exprs...)
	case *ast.DeclStmt:
		var out []lstate
		for _, st := range in {
			cp := st.clone()
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							w.execExpr(&cp, v)
						}
					}
				}
			}
			out = append(out, cp)
		}
		return dedup(out)
	case *ast.ReturnStmt:
		var out []lstate
		for _, st := range in {
			cp := st.clone()
			for _, r := range s.Results {
				w.execExpr(&cp, r)
			}
			cp.kind = flowReturn
			out = append(out, cp)
		}
		return dedup(out)
	case *ast.BranchStmt:
		var out []lstate
		for _, st := range in {
			cp := st.clone()
			switch s.Tok {
			case token.BREAK:
				cp.kind = flowBreak
			case token.CONTINUE:
				cp.kind = flowContinue
			default: // goto/fallthrough: treat as fallthrough-next
			}
			out = append(out, cp)
		}
		return out
	case *ast.BlockStmt:
		return w.execStmts(s.List, in)
	case *ast.IfStmt:
		cur := in
		if s.Init != nil {
			cur = keepNext(w.execStmt(s.Init, cur))
		}
		cur = w.exprEach(cur, s.Cond)
		thenOut := w.execStmts(s.Body.List, cloneAll(cur))
		var elseOut []lstate
		if s.Else != nil {
			elseOut = w.execStmt(s.Else, cloneAll(cur))
		} else {
			elseOut = cur
		}
		return dedup(append(thenOut, elseOut...))
	case *ast.ForStmt:
		cur := in
		if s.Init != nil {
			cur = keepNext(w.execStmt(s.Init, cur))
		}
		if s.Cond != nil {
			cur = w.exprEach(cur, s.Cond)
		}
		return w.execLoop(s.Body, s.Post, s.Cond != nil, cur)
	case *ast.RangeStmt:
		cur := w.exprEach(in, s.X)
		return w.execLoop(s.Body, nil, true, cur)
	case *ast.SwitchStmt:
		cur := in
		if s.Init != nil {
			cur = keepNext(w.execStmt(s.Init, cur))
		}
		if s.Tag != nil {
			cur = w.exprEach(cur, s.Tag)
		}
		return w.execClauses(s.Body, cur)
	case *ast.TypeSwitchStmt:
		cur := in
		if s.Init != nil {
			cur = keepNext(w.execStmt(s.Init, cur))
		}
		return w.execClauses(s.Body, cur)
	case *ast.SelectStmt:
		return w.execClauses(s.Body, in)
	case *ast.GoStmt:
		// A spawned goroutine holds no relationship to this path's
		// latches; argument expressions still evaluate here.
		var exprs []ast.Expr
		exprs = append(exprs, s.Call.Args...)
		return w.exprEach(in, exprs...)
	case *ast.DeferStmt:
		// Evaluate arguments now; the call's effect applies at exits.
		cur := w.exprEach(in, s.Call.Args...)
		call := s.Call
		w.deferred = append(w.deferred, func(st *lstate) {
			w.applyCall(st, call, true)
		})
		return cur
	case *ast.LabeledStmt:
		return w.execStmt(s.Stmt, in)
	case *ast.EmptyStmt:
		return in
	default:
		return in
	}
}

// execClauses runs each clause of a switch/select body as an alternative
// branch (including the implicit no-case path when no default exists).
func (w *funcWalk) execClauses(body *ast.BlockStmt, in []lstate) []lstate {
	var out []lstate
	hasDefault := false
	for _, clause := range body.List {
		switch cc := clause.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			cur := cloneAll(in)
			cur = w.exprEach(cur, cc.List...)
			out = append(out, breaksToNext(w.execStmts(cc.Body, cur))...)
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			cur := cloneAll(in)
			if cc.Comm != nil {
				cur = keepNext(w.execStmt(cc.Comm, cur))
			}
			out = append(out, breaksToNext(w.execStmts(cc.Body, cur))...)
		}
	}
	if !hasDefault || len(body.List) == 0 {
		out = append(out, in...)
	}
	return dedup(out)
}

// execLoop iterates body (+post) to a bounded fixpoint. mayskip states
// whether the loop can execute zero times.
func (w *funcWalk) execLoop(body *ast.BlockStmt, post ast.Stmt, mayskip bool, in []lstate) []lstate {
	var out []lstate
	if mayskip {
		out = append(out, in...)
	}
	cur := cloneAll(in)
	seen := map[string]bool{}
	for iter := 0; iter < 8 && len(cur) > 0; iter++ {
		res := w.execStmts(body.List, cur)
		var back []lstate
		for _, s := range res {
			switch s.kind {
			case flowNext, flowContinue:
				s.kind = flowNext
				back = append(back, s)
			case flowBreak:
				s.kind = flowNext
				out = append(out, s)
			case flowReturn:
				out = append(out, s)
			}
		}
		if post != nil {
			back = keepNext(w.execStmt(post, back))
		}
		// Loop exit after any complete iteration.
		out = append(out, back...)
		var fresh []lstate
		for _, s := range back {
			k := s.key()
			if !seen[k] {
				seen[k] = true
				fresh = append(fresh, s)
			}
		}
		cur = dedup(fresh)
	}
	return dedup(out)
}

func keepNext(states []lstate) []lstate {
	out := states[:0]
	for _, s := range states {
		if s.kind == flowNext {
			out = append(out, s)
		}
	}
	return out
}

func breaksToNext(states []lstate) []lstate {
	for i := range states {
		if states[i].kind == flowBreak {
			states[i].kind = flowNext
		}
	}
	return states
}

func cloneAll(states []lstate) []lstate {
	out := make([]lstate, len(states))
	for i, s := range states {
		out[i] = s.clone()
	}
	return out
}

// exprEach applies the call effects of each expression to every state.
func (w *funcWalk) exprEach(in []lstate, exprs ...ast.Expr) []lstate {
	out := make([]lstate, 0, len(in))
	for _, st := range in {
		cp := st.clone()
		for _, e := range exprs {
			if e != nil {
				w.execExpr(&cp, e)
			}
		}
		out = append(out, cp)
	}
	return dedup(out)
}

// execExpr walks e in evaluation order applying call effects in place.
func (w *funcWalk) execExpr(st *lstate, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// Children first (arguments evaluate before the call).
			for _, arg := range x.Args {
				w.execExpr(st, arg)
			}
			if fun, ok := x.Fun.(*ast.SelectorExpr); ok {
				w.execExpr(st, fun.X)
			}
			w.applyCall(st, x, false)
			return false
		case *ast.FuncLit:
			// Not invoked here (invocation is modeled at the enclosing
			// call via applyCall's literal-argument handling).
			_ = x
			return false
		}
		return true
	})
}

// applyCall applies one call's latch effects to st.
func (w *funcWalk) applyCall(st *lstate, call *ast.CallExpr, deferred bool) {
	c := w.c
	if class, method, ok := c.lockOp(call); ok {
		w.applyLockOp(st, call.Pos(), class, method)
		return
	}
	// Function literal invoked directly.
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.applySummary(st, call.Pos(), "func literal", c.litSummary(lit))
		return
	}
	// Literal arguments to unknown callees (sort.Slice and friends) run
	// at this point, under whatever is held.
	for _, arg := range call.Args {
		if lit, ok := arg.(*ast.FuncLit); ok {
			w.applySummary(st, call.Pos(), "func literal", c.litSummary(lit))
		}
	}
	fn := c.calleeFunc(call)
	if fn == nil || c.funcs[fn] == nil {
		return
	}
	sum := c.summary(fn)
	w.applySummary(st, call.Pos(), fn.Name(), sum)
	_ = deferred
}

// applySummary folds a callee summary into the current state: ordering
// checks for everything the callee may acquire, then the delta and the
// refresh-obligation transfer.
func (w *funcWalk) applySummary(st *lstate, pos token.Pos, name string, sum *latchSummary) {
	for _, cl := range sortedAcqKeys(sum.acquires) {
		rel := sum.acquires[cl]
		eff := st.held
		if rel != nil {
			eff = make(map[string][2]int, len(st.held))
			for k, v := range st.held {
				eff[k] = v
			}
			for k, r := range rel {
				cur := eff[k]
				eff[k] = [2]int{cur[0] + r[0], cur[1] + r[1]}
			}
		}
		w.checkAcquire(eff, pos, cl, "via call to "+name)
		w.sum.recordAcquire(cl, releasedPart(st.held, rel))
	}
	for cl, d := range sum.delta {
		cur := st.held[cl]
		st.held[cl] = [2]int{cur[0] + d[0], cur[1] + d[1]}
	}
	switch {
	case sum.mutator:
		st.pending = true
		st.refreshed = false
		st.mutPos = pos
		st.mutName = name
	case sum.refresher:
		st.pending = false
		st.refreshed = true
	case sum.leavesObligation:
		st.pending = true
		st.refreshed = false
		st.mutPos = pos
		st.mutName = name + " (transitively)"
	case sum.alwaysRefreshes:
		st.pending = false
		st.refreshed = true
	}
}

// applyLockOp applies a direct Lock/Unlock/RLock/RUnlock.
func (w *funcWalk) applyLockOp(st *lstate, pos token.Pos, class, method string) {
	acquire := method == "Lock" || method == "RLock" || method == "TryLock" || method == "TryRLock"
	reader := method == "RLock" || method == "RUnlock" || method == "TryRLock"
	if acquire {
		w.checkAcquire(st.held, pos, class, "")
		w.sum.recordAcquire(class, releasedPart(st.held, nil))
	}
	cur := st.held[class]
	idx := 1
	if reader {
		idx = 0
	}
	if acquire {
		cur[idx]++
	} else {
		cur[idx]--
	}
	st.held[class] = cur
}

// releasedPart returns the non-positive component of held folded with
// extra (a callee's own pre-acquisition releases): the latches already
// released, relative to the caller, at an acquisition point. Nil when
// nothing is released.
func releasedPart(held, extra map[string][2]int) map[string][2]int {
	var out map[string][2]int
	record := func(k string) {
		v, e := held[k], extra[k]
		r, w := v[0]+e[0], v[1]+e[1]
		if r > 0 {
			r = 0
		}
		if w > 0 {
			w = 0
		}
		if r == 0 && w == 0 {
			return
		}
		if out == nil {
			out = map[string][2]int{}
		}
		out[k] = [2]int{r, w}
	}
	for k := range held {
		record(k)
	}
	for k := range extra {
		if _, dup := held[k]; !dup {
			record(k)
		}
	}
	return out
}

// recordAcquire merges one acquisition site's released-latch snapshot
// into the summary. A latch only stays recorded as released-before-
// acquire if it is released at every site: componentwise max toward
// zero, so any site that still holds it wins.
func (s *latchSummary) recordAcquire(class string, released map[string][2]int) {
	prev, seen := s.acquires[class]
	if !seen {
		s.acquires[class] = released
		return
	}
	if prev == nil || released == nil {
		s.acquires[class] = nil
		return
	}
	merged := map[string][2]int{}
	for k, p := range prev {
		r := released[k]
		mr, mw := p[0], p[1]
		if r[0] > mr {
			mr = r[0]
		}
		if r[1] > mw {
			mw = r[1]
		}
		if mr == 0 && mw == 0 {
			continue
		}
		merged[k] = [2]int{mr, mw}
	}
	if len(merged) == 0 {
		merged = nil
	}
	s.acquires[class] = merged
}

func sortedAcqKeys(m map[string]map[string][2]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// checkAcquire reports ordering violations for acquiring class while the
// latches in held (the effective held set at the acquisition point) are
// held.
func (w *funcWalk) checkAcquire(held map[string][2]int, pos token.Pos, class, via string) {
	c := w.c
	suffix := ""
	if via != "" {
		suffix = " " + via
	}
	if len(c.declared) > 0 && !c.declared[class] {
		w.reportOnce(pos, "undeclared-"+class,
			"latch %s is not in the declared hierarchy; add it to an //isolint:latch-order chain or //isolint:latch-leaf", class)
	}
	for _, heldCl := range sortedDeltaKeys(held) {
		v := held[heldCl]
		if v[0] <= 0 && v[1] <= 0 {
			continue
		}
		switch {
		case heldCl == class:
			w.reportOnce(pos, "nested-"+class,
				"acquires latch %s while already holding it%s: self-deadlock for a second instance and a violation of the one-instance-at-a-time discipline", class, suffix)
		case c.leaves[class]:
			w.reportOnce(pos, "leaf-"+class+"-"+heldCl,
				"acquires leaf latch %s while holding %s%s: leaves are declared to be taken with no other latch held", class, heldCl, suffix)
		case c.leaves[heldCl]:
			w.reportOnce(pos, "under-leaf-"+class+"-"+heldCl,
				"acquires latch %s while holding leaf latch %s%s", class, heldCl, suffix)
		case c.less[class][heldCl]:
			w.reportOnce(pos, "order-"+class+"-"+heldCl,
				"acquires latch %s while holding %s%s: the declared order is %s < %s", class, heldCl, suffix, class, heldCl)
		}
	}
}

// --- call and latch classification ---

// calleeFunc resolves a call to a same-package *types.Func with a body.
func (c *latchChecker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := c.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// lockOp reports whether call is a sync.Mutex / sync.RWMutex lock
// operation, and on which latch class.
func (c *latchChecker) lockOp(call *ast.CallExpr) (class, method string, ok bool) {
	fun, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	method = fun.Sel.Name
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	fn, isFn := c.info.Uses[fun.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	class = c.latchClass(fun.X)
	if class == "" {
		return "", "", false
	}
	return class, method, true
}

// latchClass names the latch an expression denotes: Type.field for struct
// fields, the var name for package-level or local mutex vars, or
// Type.<embedded> for embedded mutexes.
func (c *latchChecker) latchClass(x ast.Expr) string {
	switch e := x.(type) {
	case *ast.SelectorExpr:
		// holder.field — field must be the mutex.
		obj, _ := c.info.Uses[e.Sel].(*types.Var)
		if obj == nil || !obj.IsField() {
			// Could be a chain like a.b.mu handled by the same logic: the
			// last selector is what matters.
			return ""
		}
		owner := namedOf(c.info.Types[e.X].Type)
		if owner == "" {
			return obj.Name()
		}
		return owner + "." + obj.Name()
	case *ast.Ident:
		obj := c.info.Uses[e]
		if obj == nil {
			return e.Name
		}
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			// Embedded-receiver shorthand inside methods.
			return v.Name()
		}
		return e.Name
	default:
		// Embedded mutex: x.Lock() where x's named type embeds
		// sync.Mutex. The selection machinery resolved the method; name
		// the class after the holder type.
		if owner := namedOf(c.info.Types[x].Type); owner != "" {
			return owner + ".Mutex"
		}
		return ""
	}
}

func namedOf(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
