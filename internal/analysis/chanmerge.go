// chanmerge: events of one causal domain must travel on one channel.
//
// The fuzzer's controller once observed causally-ordered events inverted:
// step completions and lock wait/grant notifications traveled on two
// separate channels, and the controller's select picked whichever was
// ready first — so a TxGranted could be observed before the TxWaiting
// that caused it, and run output depended on scheduling. The fix merged
// both into one event stream with emission-ordering guarantees. The
// analyzer mechanizes that rule for deterministic packages:
//
//   - a struct type with two or more channel fields of the same element
//     type, where at least two of those fields are actually sent on in
//     the package, is a split causal domain: nothing orders the two
//     streams at the observer;
//   - a select statement with two or more receive cases from channels of
//     the same element type merges streams nondeterministically — which
//     case fires for simultaneously-ready channels is a runtime coin
//     toss. (Receives of different element types — e.g. an event channel
//     against a timeout timer — are fine.)
package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ChanMerge is the split-event-channel analyzer.
var ChanMerge = &Analyzer{
	Name: "chanmerge",
	Doc:  "flags same-typed channel pairs (struct fields both sent on; selects merging same-typed receives) whose observation order is scheduler-dependent",
	Run:  runChanMerge,
}

func runChanMerge(pass *Pass) {
	if !pass.Pkg.Annotations.Deterministic {
		return
	}
	info := pass.Pkg.Info

	// Rule 1: struct types with multiple same-element-type channel fields
	// that the package sends on.
	sent := map[*types.Var]bool{} // channel fields used as send targets
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if sel, ok := send.Chan.(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
					if v, ok := s.Obj().(*types.Var); ok {
						sent[v] = true
					}
				} else if obj, ok := info.Uses[sel.Sel].(*types.Var); ok && obj.IsField() {
					sent[obj] = true
				}
			}
			return true
		})
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// Group channel fields by element type.
			groups := map[string][]*types.Var{}
			var order []string
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					ch, ok := v.Type().Underlying().(*types.Chan)
					if !ok {
						continue
					}
					key := ch.Elem().String()
					if _, seen := groups[key]; !seen {
						order = append(order, key)
					}
					groups[key] = append(groups[key], v)
				}
			}
			for _, key := range order {
				fields := groups[key]
				if len(fields) < 2 {
					continue
				}
				var sentNames []string
				for _, v := range fields {
					if sent[v] {
						sentNames = append(sentNames, v.Name())
					}
				}
				if len(sentNames) < 2 {
					continue
				}
				sort.Strings(sentNames)
				pass.Reportf(ts.Pos(), "struct %s splits one causal domain across channels %s (element type %s, all sent on): the observer's merge order is scheduler-dependent; emit on one channel", ts.Name.Name, strings.Join(sentNames, ", "), key)
			}
			return true
		})
	}

	// Rule 2: selects merging same-element-type receives.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			elems := map[string][]ast.Expr{}
			var order []string
			for _, clause := range sel.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok || comm.Comm == nil {
					continue
				}
				chExpr := receiveChan(comm.Comm)
				if chExpr == nil {
					continue
				}
				tv, ok := info.Types[chExpr]
				if !ok {
					continue
				}
				ch, ok := tv.Type.Underlying().(*types.Chan)
				if !ok {
					continue
				}
				key := ch.Elem().String()
				if _, seen := elems[key]; !seen {
					order = append(order, key)
				}
				elems[key] = append(elems[key], chExpr)
			}
			for _, key := range order {
				if len(elems[key]) >= 2 {
					pass.Reportf(sel.Pos(), "select receives from %d channels of the same element type %s: which fires for simultaneously-ready events is a scheduler coin toss; merge them into one stream", len(elems[key]), key)
				}
			}
			return true
		})
	}
}

// receiveChan extracts the channel expression of a receive comm clause
// (`<-ch`, `v := <-ch`, `v, ok := <-ch`), or nil for sends.
func receiveChan(comm ast.Stmt) ast.Expr {
	var recv ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	if u, ok := recv.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
		return u.X
	}
	return nil
}
