// Package analysis is isolint's analyzer framework: a self-contained
// go/parser + go/types reimplementation of the golang.org/x/tools
// go/analysis surface this repo needs, built entirely on the standard
// library so the linter runs in hermetic build environments with no module
// downloads.
//
// The repo's two hardest-won properties are enforced only at runtime:
// byte-for-byte fuzz determinism (four real nondeterminism bugs fixed in
// the fuzzer PR — map-order drains, a random maphash stripe seed, split
// event channels) and the lock manager's latch ordering (the key-range PR
// review caught an undetected-deadlock hang from a missed waits-for
// refresh). This package mechanizes those implementation invariants as
// compile-time-checked rules, so new engines inherit them instead of
// re-fixing them by hand. Four domain analyzers ship:
//
//   - detrange (detrange.go): `for range` over a map in a deterministic
//     package leaks map iteration order into the trace/output path unless
//     the loop provably collects-then-sorts or is commutative.
//   - seededrand (seededrand.go): global math/rand, maphash.MakeSeed and
//     time.Now/Since are forbidden in deterministic packages — every
//     random or temporal input must be an explicit seeded source.
//   - latchorder (latchorder.go): the lock manager's declared latch
//     hierarchy is a checkable partial order; acquisition paths, lock/
//     unlock pairing across all control-flow paths, and the
//     install-then-refresh waits-for discipline are verified by abstract
//     interpretation over function bodies with interprocedural summaries.
//   - chanmerge (chanmerge.go): completion/notification events of one
//     causal domain must travel on one channel; split same-typed channel
//     fields and selects merging same-typed receives are flagged.
//
// # Annotations
//
// Analyzers are configured and findings waived by //isolint: comment
// directives. Every waiver carries a justification; a directive without
// one is itself a diagnostic (zero silent waivers):
//
//	//isolint:deterministic
//	    Package marker (any file of the package): enables detrange,
//	    seededrand and chanmerge for the package.
//	//isolint:ordered <why order cannot reach observable output>
//	    On (or on the line above) a `for range` over a map: asserts the
//	    iteration order is harmless. detrange-specific waiver.
//	//isolint:allow <analyzer> <justification>
//	    General waiver for one diagnostic on this (or the next) line; in a
//	    function's doc comment it waives that analyzer's function-level
//	    findings for the function.
//	//isolint:latch-order A < B < C
//	    Declares a chain of the latch acquisition partial order (latch
//	    names are Type.field for struct latches, or a package-level var
//	    name). Multiple chains union; the order is their transitive
//	    closure. Lives in the lock package's docs — the single source of
//	    truth the latchorder analyzer parses.
//	//isolint:latch-leaf X
//	    Declares X a leaf latch: held only while no other declared latch
//	    is held, and no declared latch may be acquired under it.
//	//isolint:grant-mutator
//	//isolint:waiter-refresh
//	    Function markers for the waits-for refresh discipline: after a
//	    call to a grant-mutator (a function that installs granted lock
//	    state waiters may conflict with), every path to return must pass a
//	    waiter-refresh call, or the waits-for graph can go stale — the
//	    exact undetected-deadlock shape the key-range PR review caught.
//
// Suppressed and reported diagnostics are reconciled after every run:
// a waiver that suppressed nothing is reported as unused, so annotations
// cannot rot into silence.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one isolint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //isolint:allow
	// directives.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run reports the analyzer's findings on one package via pass.Report*.
	Run func(pass *Pass)
}

// All is the isolint analyzer suite, in report order.
var All = []*Analyzer{DetRange, SeededRand, LatchOrder, ChanMerge}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Diagnostic is one finding, positioned in the analyzed package.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// funcDecl is non-zero for function-level findings: the position of
	// the enclosing function declaration, where an //isolint:allow in the
	// doc comment can waive the finding.
	funcDecl token.Position
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass connects one analyzer run to one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFuncf records a function-level finding: it points at pos but is
// waivable from decl's doc comment.
func (p *Pass) ReportFuncf(decl *ast.FuncDecl, pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		funcDecl: p.Pkg.Fset.Position(decl.Pos()),
	})
}

// Run runs one analyzer over one package and returns the surviving
// diagnostics: the analyzer's findings minus waived ones, plus directive
// hygiene findings (malformed or unused waivers) owned by this analyzer.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{Analyzer: a, Pkg: pkg}
	a.Run(pass)
	return reconcile(a, pkg, pass.diags)
}

// reconcile applies waiver directives to diags and appends hygiene
// diagnostics for this analyzer's malformed or unused waivers.
func reconcile(a *Analyzer, pkg *Package, diags []Diagnostic) []Diagnostic {
	waivers := pkg.Annotations.waiversFor(a.Name)
	used := make([]bool, len(waivers))
	var out []Diagnostic
	for _, d := range diags {
		waived := false
		for i, w := range waivers {
			if w.covers(d) {
				used[i] = true
				waived = true
			}
		}
		if !waived {
			out = append(out, d)
		}
	}
	for i, w := range waivers {
		if w.Reason == "" {
			out = append(out, Diagnostic{
				Pos:      w.Pos,
				Analyzer: a.Name,
				Message:  fmt.Sprintf("//isolint:%s waiver has no justification (zero silent waivers: state why this is safe)", w.Directive),
			})
			continue
		}
		if !used[i] {
			out = append(out, Diagnostic{
				Pos:      w.Pos,
				Analyzer: a.Name,
				Message:  fmt.Sprintf("unused //isolint:%s waiver: nothing here is flagged by %s anymore — delete it", w.Directive, a.Name),
			})
		}
	}
	sortDiagnostics(out)
	return out
}

// SortDiagnostics orders findings by file, line, column, message.
func SortDiagnostics(ds []Diagnostic) { sortDiagnostics(ds) }

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// RunAll runs every analyzer in All over pkg and returns the merged,
// position-sorted diagnostics.
func RunAll(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, a := range All {
		out = append(out, Run(a, pkg)...)
	}
	sortDiagnostics(out)
	return out
}

// --- //isolint: directive parsing ---

// A waiver is one //isolint:ordered or //isolint:allow directive.
type waiver struct {
	Pos       token.Position
	Directive string // "ordered" or "allow <name>"
	Analyzer  string
	Reason    string
	// Line/NextLine is the waived source region: the directive's own line
	// and, for a directive comment standing on its own line, the next one.
	File           string
	Line, NextLine int
	// FuncLine is set for directives inside a function doc comment: the
	// line of the function declaration, waiving function-level findings.
	FuncLine int
}

func (w waiver) covers(d Diagnostic) bool {
	if d.Analyzer != w.Analyzer || d.Pos.Filename != w.File {
		return false
	}
	if w.FuncLine != 0 && d.funcDecl.Line == w.FuncLine && d.funcDecl.Filename == w.File {
		return true
	}
	return d.Pos.Line == w.Line || d.Pos.Line == w.NextLine
}

// Annotations is the parsed //isolint: directive set of one package.
type Annotations struct {
	// Deterministic reports whether any file carries
	// //isolint:deterministic.
	Deterministic bool
	// Chains are the declared latch-order chains, in source order.
	Chains [][]string
	// ChainPos positions each chain (for error reporting).
	ChainPos []token.Position
	// Leaves are the declared leaf latches.
	Leaves map[string]token.Position
	// GrantMutators / WaiterRefreshers are the lines of function markers;
	// latchorder binds them to the FuncDecl whose doc contains them.
	GrantMutators    map[string]map[int]bool // file -> marker line set
	WaiterRefreshers map[string]map[int]bool
	// Malformed are directive parse errors, reported by cmd/isolint
	// regardless of analyzer selection.
	Malformed []Diagnostic

	waivers []waiver
}

func (a *Annotations) waiversFor(analyzer string) []waiver {
	var out []waiver
	for _, w := range a.waivers {
		if w.Analyzer == analyzer {
			out = append(out, w)
		}
	}
	return out
}

// directiveText extracts the text after "isolint:" if c is a directive
// comment, like ast.Comment handling of //go: directives: no space after
// //, single-line comment only.
func directiveText(c *ast.Comment) (string, bool) {
	if !strings.HasPrefix(c.Text, "//isolint:") {
		return "", false
	}
	text := strings.TrimPrefix(c.Text, "//isolint:")
	// A second "//" starts a nested comment (used by fixtures for // want
	// declarations); directive arguments end there.
	if i := strings.Index(text, "//"); i >= 0 {
		text = text[:i]
	}
	return strings.TrimSpace(text), true
}

// parseAnnotations scans every comment of the package. srcs maps each
// file's name (as in fset positions) to its raw bytes, used to decide
// whether a directive stands on its own line.
func parseAnnotations(fset *token.FileSet, files []*ast.File, srcs map[string][]byte) *Annotations {
	ann := &Annotations{
		Leaves:           map[string]token.Position{},
		GrantMutators:    map[string]map[int]bool{},
		WaiterRefreshers: map[string]map[int]bool{},
	}
	for _, f := range files {
		src := srcs[fset.Position(f.Pos()).Filename]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					ann.malformedf(pos, "empty //isolint: directive")
					continue
				}
				switch fields[0] {
				case "deterministic":
					ann.Deterministic = true
				case "ordered":
					ann.waivers = append(ann.waivers, waiver{
						Pos: pos, Directive: "ordered", Analyzer: "detrange",
						Reason: strings.TrimSpace(strings.TrimPrefix(text, "ordered")),
						File:   pos.Filename, Line: pos.Line, NextLine: nextWaivedLine(fset, src, c),
					})
				case "allow":
					if len(fields) < 2 || ByName(fields[1]) == nil {
						ann.malformedf(pos, "//isolint:allow needs an analyzer name (one of %s)", analyzerNames())
						continue
					}
					w := waiver{
						Pos: pos, Directive: "allow " + fields[1], Analyzer: fields[1],
						Reason: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(text, "allow")), fields[1])),
						File:   pos.Filename, Line: pos.Line, NextLine: nextWaivedLine(fset, src, c),
					}
					if decl := docOwner(f, c); decl != nil {
						w.FuncLine = fset.Position(decl.Pos()).Line
					}
					ann.waivers = append(ann.waivers, w)
				case "latch-order":
					chain, err := parseChain(strings.TrimSpace(strings.TrimPrefix(text, "latch-order")))
					if err != nil {
						ann.malformedf(pos, "bad //isolint:latch-order: %v", err)
						continue
					}
					ann.Chains = append(ann.Chains, chain)
					ann.ChainPos = append(ann.ChainPos, pos)
				case "latch-leaf":
					if len(fields) != 2 {
						ann.malformedf(pos, "//isolint:latch-leaf wants exactly one latch name")
						continue
					}
					ann.Leaves[fields[1]] = pos
				case "grant-mutator":
					addLine(ann.GrantMutators, pos)
				case "waiter-refresh":
					addLine(ann.WaiterRefreshers, pos)
				default:
					ann.malformedf(pos, "unknown //isolint: directive %q", fields[0])
				}
			}
		}
	}
	return ann
}

func (a *Annotations) malformedf(pos token.Position, format string, args ...any) {
	a.Malformed = append(a.Malformed, Diagnostic{
		Pos: pos, Analyzer: "isolint", Message: fmt.Sprintf(format, args...),
	})
}

func addLine(m map[string]map[int]bool, pos token.Position) {
	if m[pos.Filename] == nil {
		m[pos.Filename] = map[int]bool{}
	}
	m[pos.Filename][pos.Line] = true
}

// funcMarkedAt reports whether decl's doc comment contains a marker line
// recorded in m.
func funcMarkedAt(fset *token.FileSet, m map[string]map[int]bool, decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		pos := fset.Position(c.Pos())
		if m[pos.Filename][pos.Line] {
			return true
		}
	}
	return false
}

// nextWaivedLine returns the line after c when c stands on its own line
// (so `//isolint:ordered why` above a loop waives the loop), or c's own
// line when it trails code. The raw source decides: a directive is on its
// own line iff only whitespace precedes it.
func nextWaivedLine(fset *token.FileSet, src []byte, c *ast.Comment) int {
	pos := fset.Position(c.Pos())
	// Offset of the start of the comment's line.
	lineStart := pos.Offset - (pos.Column - 1)
	if lineStart < 0 || pos.Offset > len(src) {
		return pos.Line
	}
	for _, b := range src[lineStart:pos.Offset] {
		if b != ' ' && b != '\t' {
			return pos.Line
		}
	}
	return pos.Line + 1
}

// docOwner returns the FuncDecl whose doc comment group contains c, if any.
func docOwner(f *ast.File, c *ast.Comment) *ast.FuncDecl {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, dc := range fd.Doc.List {
			if dc == c {
				return fd
			}
		}
	}
	return nil
}

func parseChain(s string) ([]string, error) {
	parts := strings.Split(s, "<")
	if len(parts) < 2 {
		return nil, fmt.Errorf("want at least two latches separated by '<', got %q", s)
	}
	chain := make([]string, 0, len(parts))
	for _, p := range parts {
		name := strings.TrimSpace(p)
		if name == "" {
			return nil, fmt.Errorf("empty latch name in %q", s)
		}
		chain = append(chain, name)
	}
	return chain, nil
}

func analyzerNames() string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
