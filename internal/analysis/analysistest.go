// Fixture harness: the analysistest idiom reimplemented for isolint's
// self-contained framework. A fixture is a directory of Go files under
// testdata/src/<name>; expected findings are declared inline with
//
//	code // want "regexp"
//
// comments (several per line allowed). The harness loads the fixture as a
// package, runs one analyzer (including waiver reconciliation, so
// fixtures can also assert on unused or unjustified //isolint: waivers)
// and diffs actual findings against the declarations both ways.
package analysis

import (
	"fmt"
	"regexp"
	"strings"
)

// TB is the subset of testing.TB the fixture harness needs (kept tiny so
// this file doesn't import testing into the non-test build).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

var wantRE = regexp.MustCompile(`// want (".*?[^\\]")`)

// RunFixture loads testdata/src/<name> relative to dir and checks a's
// findings against the fixture's // want declarations.
func RunFixture(t TB, a *Analyzer, dir, name string) {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	fixDir := dir + "/testdata/src/" + name
	pkg, err := loader.LoadDir(fixDir, "fixture/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", name, terr)
	}

	type want struct {
		file string
		line int
		re   *regexp.Regexp
		used bool
	}
	var wants []*want
	for file, src := range pkg.Srcs {
		for i, lineText := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(lineText, -1) {
				pattern, err := unquoteWant(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want %s: %v", file, i+1, m[1], err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, pattern, err)
				}
				wants = append(wants, &want{file: file, line: i + 1, re: re})
			}
		}
	}

	diags := Run(a, pkg)
	diags = append(diags, pkg.Annotations.Malformed...)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("fixture %s: unexpected finding: %s", name, d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("fixture %s: %s:%d: expected finding matching %q, got none", name, w.file, w.line, w.re)
		}
	}
}

// unquoteWant undoes the Go-string quoting of a want pattern without
// mangling regexp escapes: only \" and \\ are unescaped.
func unquoteWant(q string) (string, error) {
	if len(q) < 2 || q[0] != '"' || q[len(q)-1] != '"' {
		return "", fmt.Errorf("not a quoted string")
	}
	body := q[1 : len(q)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) && (body[i+1] == '"' || body[i+1] == '\\') {
			i++
		}
		b.WriteByte(body[i])
	}
	return b.String(), nil
}
