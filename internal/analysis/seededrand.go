// seededrand: deterministic packages take randomness and time only from
// explicit, seeded sources.
//
// The generalization of the data.Striper bug: the striper once keyed its
// stripe hash with hash/maphash.MakeSeed, whose per-process random seed
// re-randomized ReleaseAll's stripe visit order — and with it the lock
// manager's grant order — on every invocation, breaking cross-process
// byte-for-byte reproducibility of the fuzzer. The same failure mode
// hides in the global math/rand source (seeded randomly since Go 1.20)
// and in wall-clock reads that feed computed state.
//
// In packages marked //isolint:deterministic the analyzer flags:
//
//   - calls to math/rand (and math/rand/v2) package-level functions —
//     they draw from the process-global, randomly-seeded source; the
//     explicit-source constructors rand.New/NewSource (v2: NewPCG,
//     NewChaCha8) stay allowed, which is exactly the
//     rand.New(rand.NewSource(seed)) idiom the fuzzer uses;
//   - hash/maphash.MakeSeed (a fresh random seed every call);
//   - time.Now, time.Since and time.Until (wall-clock values; timers and
//     timeouts remain allowed — they bound waiting without producing
//     values that flow into traces).
package analysis

import (
	"go/ast"
	"go/types"
)

// SeededRand is the unseeded-randomness analyzer.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "forbids global math/rand, maphash.MakeSeed and time.Now/Since in deterministic packages",
	Run:  runSeededRand,
}

// allowedRandFuncs are the explicit-source constructors of math/rand and
// math/rand/v2 that remain legal in deterministic packages.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

// bannedTimeFuncs produce wall-clock values.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runSeededRand(pass *Pass) {
	if !pass.Pkg.Annotations.Deterministic {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[name] && exportedFunc(pn.Imported(), name) {
					pass.Reportf(sel.Pos(), "%s.%s draws from the process-global randomly-seeded source in a deterministic package; use rand.New(rand.NewSource(seed))", id.Name, name)
				}
			case "hash/maphash":
				if name == "MakeSeed" {
					pass.Reportf(sel.Pos(), "maphash.MakeSeed returns a fresh random seed each call, re-randomizing hashed orders per process in a deterministic package; use a fixed hash (e.g. FNV-1a)")
				}
			case "time":
				if bannedTimeFuncs[name] {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic package; plumb an explicit clock or move timing to the workload/bench layer", name)
				}
			}
			return true
		})
	}
}

// exportedFunc reports whether pkg exports a function (not a type or
// const) named name — rand.Int63 is a func, rand.Source is a type that
// must stay referencable.
func exportedFunc(pkg *types.Package, name string) bool {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return false
	}
	_, ok := obj.(*types.Func)
	return ok
}
