// Fixture for the latchorder analyzer: a miniature of the lock manager's
// latch landscape with its hierarchy declared, plus one latch of every
// violation shape.
//
//isolint:latch-order Manager.gate < Manager.rangeMu < stripe.mu < WaitsFor.mu
//isolint:latch-leaf Manager.parkMu
package latchorder

import "sync"

var errFail = &failure{}

type failure struct{}

func (*failure) Error() string { return "fail" }

type WaitsFor struct {
	mu  sync.Mutex
	out map[int][]int
}

type stripe struct {
	mu    sync.Mutex
	queue []int
}

type Manager struct {
	gate    sync.RWMutex
	rangeMu sync.Mutex
	parkMu  sync.Mutex
	other   sync.Mutex
	wf      *WaitsFor
}

// Ordered walks the full declared chain in order, with a deferred gate
// release: clean.
func (m *Manager) Ordered(sp *stripe) {
	m.gate.RLock()
	defer m.gate.RUnlock()
	m.rangeMu.Lock()
	sp.mu.Lock()
	m.wf.mu.Lock()
	m.wf.mu.Unlock()
	sp.mu.Unlock()
	m.rangeMu.Unlock()
}

// Inverted acquires against the declared order.
func (m *Manager) Inverted(sp *stripe) {
	sp.mu.Lock()
	m.rangeMu.Lock() // want "declared order is Manager.rangeMu < stripe.mu"
	m.rangeMu.Unlock()
	sp.mu.Unlock()
}

// Nested takes two stripes at once: same-class self-deadlock risk.
func (m *Manager) Nested(a, b *stripe) {
	a.mu.Lock()
	b.mu.Lock() // want "already holding it"
	b.mu.Unlock()
	a.mu.Unlock()
}

// ParkUnderGate takes the declared leaf under another latch.
func (m *Manager) ParkUnderGate() {
	m.gate.RLock()
	m.parkMu.Lock() // want "leaf latch"
	m.parkMu.Unlock()
	m.gate.RUnlock()
}

// Undeclared locks a latch the hierarchy does not name.
func (m *Manager) Undeclared() {
	m.other.Lock() // want "not in the declared hierarchy"
	m.other.Unlock()
}

// condLeak releases rangeMu on one path only.
func (m *Manager) condLeak(fail bool) error { // want "held/released inconsistently"
	m.rangeMu.Lock()
	if fail {
		return errFail
	}
	m.rangeMu.Unlock()
	return nil
}

// LeakGate returns holding the gate on every path: exported functions
// must be latch-balanced.
func (m *Manager) LeakGate() { // want "latch-balanced"
	m.gate.RLock()
}

// Acquire hands the gate to transfer, which releases it: the ownership
// transfer nets out at the exported boundary.
func (m *Manager) Acquire(sp *stripe) {
	m.gate.RLock()
	m.transfer(sp)
}

// transfer inherits the caller's gate and releases it after its work.
func (m *Manager) transfer(sp *stripe) {
	sp.mu.Lock()
	sp.queue = append(sp.queue, 1)
	sp.mu.Unlock()
	m.gate.RUnlock()
}

// lockRange acquires rangeMu for its caller.
func (m *Manager) lockRange() {
	m.rangeMu.Lock()
}

// ViaCall inverts the order through an intermediate call.
func (m *Manager) ViaCall(sp *stripe) {
	sp.mu.Lock()
	m.lockRange() // want "via call to lockRange"
	m.rangeMu.Unlock()
	sp.mu.Unlock()
}

// WaivedInversion is condLeak's shape with a function-level waiver.
//
//isolint:allow latchorder the caller finishes the release on the error path, checked by its tests
func (m *Manager) WaivedInversion(fail bool) error {
	m.rangeMu.Lock()
	if fail {
		return errFail
	}
	m.rangeMu.Unlock()
	return nil
}
