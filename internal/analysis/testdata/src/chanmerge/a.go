// Fixture for the chanmerge analyzer. Both flagged shapes reconstruct the
// fuzzer controller's real bug: step completions and lock notifications
// traveled on two same-typed channels, and the controller's select
// observed them in scheduler order — TxGranted before the TxWaiting that
// caused it.
//
//isolint:deterministic
package chanmerge

type stepEvent struct{ tx, seq int }

// controller is the PR 3 regression: one causal domain, two channels.
type controller struct { // want "splits one causal domain"
	done   chan stepEvent
	notify chan stepEvent
	stop   chan struct{}
}

func (c *controller) emit(e stepEvent, notified bool) {
	if notified {
		c.notify <- e
	} else {
		c.done <- e
	}
}

func (c *controller) run() {
	for {
		select { // want "coin toss"
		case e := <-c.done:
			_ = e
		case e := <-c.notify:
			_ = e
		case <-c.stop:
			return
		}
	}
}

// merged is the fixed shape: one ordered stream per causal domain.
type merged struct {
	events chan stepEvent
	stop   chan struct{}
}

func (m *merged) emit(e stepEvent) { m.events <- e }

func (m *merged) run(timeout <-chan struct{}) {
	select { // ok: the receives have different element types
	case e := <-m.events:
		_ = e
	case <-timeout:
	}
}

// twoDomains has two channel fields of the same type but only one is ever
// sent on in this package: not a split domain.
type twoDomains struct {
	in  chan stepEvent
	out chan stepEvent
}

func (t *twoDomains) produce(e stepEvent) { t.out <- e }
