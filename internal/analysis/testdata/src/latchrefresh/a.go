// Fixture for latchorder's refresh discipline: the key-range PR's
// undetected-deadlock shape. Installing granted lock state without
// refreshing waiters' waits-for edges leaves the deadlock detector blind
// to cycles through the new holder.
package latchrefresh

import "sync"

type Manager struct {
	mu      sync.Mutex
	granted map[int][]int
	waiters map[int][]int
}

// installLocked installs granted state that waiters may conflict with.
//
//isolint:grant-mutator
func (m *Manager) installLocked(tx int) {
	m.granted[tx] = append(m.granted[tx], tx)
}

// refreshWaitersLocked recomputes every waiter's waits-for edges.
//
//isolint:waiter-refresh
func (m *Manager) refreshWaitersLocked() {
	for w := range m.waiters {
		_ = w
	}
}

// GrantSkippingRefresh is the regression: the grant is installed but the
// refresh is skipped when the queue looks empty — exactly the hang the
// key-range review caught.
func (m *Manager) GrantSkippingRefresh(tx int, queued bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.installLocked(tx) // want "without a waits-for refresh"
	if queued {
		m.refreshWaitersLocked()
	}
}

// GrantAlways refreshes unconditionally after the install: clean.
func (m *Manager) GrantAlways(tx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.installLocked(tx)
	m.refreshWaitersLocked()
}

// drainLocked installs every queued grant and refreshes once at the end;
// its always-refreshes guarantee is its callers' to inherit.
func (m *Manager) drainLocked() {
	for tx := range m.granted {
		m.installLocked(tx)
	}
	m.refreshWaitersLocked()
}

// GrantViaDrain discharges its obligation through drainLocked.
func (m *Manager) GrantViaDrain(tx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.installLocked(tx)
	m.drainLocked()
}

// GrantDeferred installs without refreshing by contract: its only caller
// drains a batch and refreshes once after the loop.
//
//isolint:allow latchorder the batch caller refreshes once after its grant loop
func (m *Manager) GrantDeferred(tx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.installLocked(tx)
}
