// Fixture for the obs clock discipline under the seededrand analyzer:
// latency instrumentation inside //isolint:deterministic packages must
// read time through an injected Clock — the fuzzer wires a virtual
// clock whose Now is an atomic tick counter — never the wall clock.
// The clean shapes mirror internal/obs.Sink; the findings are what the
// hooks would look like without the Clock seam.
//
//isolint:deterministic
package obsclock

import (
	"sync/atomic"
	"time"
)

// Clock is the seam: real time in the bench CLI, virtual ticks in the
// fuzzer, so instrumented packages never touch package time.
type Clock interface {
	Now() int64
}

// VirtualClock advances one tick per reading — deterministic under the
// lockstep schedule runner.
type VirtualClock struct {
	ticks atomic.Int64
}

func (c *VirtualClock) Now() int64 { return c.ticks.Add(1) }

// Sink is the miniature obs sink: all timing flows through its clock.
type Sink struct {
	clock Clock
}

// RecordOp is the sanctioned hook shape: latency measured on the
// injected clock. Clean.
func (s *Sink) RecordOp(start int64) int64 {
	if s == nil {
		return 0
	}
	return s.clock.Now() - start
}

// recordWall is RecordOp without the seam: wall-clock durations leak
// nondeterminism into anything that renders them.
func recordWall(start time.Time) time.Duration {
	return time.Since(start) // want "wall clock"
}

// stampWall timestamps events off the wall clock directly.
func stampWall() int64 {
	return time.Now().UnixNano() // want "wall clock"
}
