// Fixture for the obs instrumentation pattern under the latchorder
// analyzer: flight-recorder hooks run while engine latches are held, so
// the recorder's ring mutex must sit strictly innermost — recorded
// under a stripe latch, never the other way around. The clean shapes
// here mirror internal/obs.FlightRecorder and the lock-manager call
// sites; the findings are the two ways the contract breaks (re-entering
// the engine while holding the ring, and dumping under the ring).
//
//isolint:latch-order stripe.mu < Ring.mu
package obslatch

import "sync"

// Ring is the miniature flight recorder: a bounded event buffer behind
// one internal mutex.
type Ring struct {
	mu  sync.Mutex
	buf []int
}

// add records one event. Nil-safe, like every obs hook: a disabled sink
// costs one pointer check.
func (r *Ring) add(ev int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf = append(r.buf, ev)
	r.mu.Unlock()
}

// snapshot copies the retained events out under the ring mutex and
// releases before the caller does anything else with them.
func (r *Ring) snapshot() []int {
	r.mu.Lock()
	out := append([]int(nil), r.buf...)
	r.mu.Unlock()
	return out
}

type stripe struct {
	mu    sync.Mutex
	queue []int
	ring  *Ring
}

// Grant is the sanctioned hook shape: the grant decision happens under
// the stripe latch and the event is recorded right there, ring mutex
// strictly innermost (via the add call). Clean.
func (s *stripe) Grant(tx int) {
	s.mu.Lock()
	s.queue = append(s.queue, tx)
	s.ring.add(tx)
	s.mu.Unlock()
}

// Dump is the sanctioned dump shape: copy the events out first, then
// consult engine state with no ring mutex held. Clean.
func (s *stripe) Dump() int {
	evs := s.ring.snapshot()
	s.mu.Lock()
	n := len(s.queue) + len(evs)
	s.mu.Unlock()
	return n
}

// DumpUnderRing re-enters the engine while holding the ring mutex:
// a grant hook on another goroutine holds stripe.mu and wants Ring.mu.
func (s *stripe) DumpUnderRing() int {
	s.ring.mu.Lock()
	s.mu.Lock() // want "declared order is stripe.mu < Ring.mu"
	n := len(s.queue)
	s.mu.Unlock()
	s.ring.mu.Unlock()
	return n
}

// notifyLocked models a deadlock-dump callback fired while the ring
// mutex is still held; the callback walks the stripe queue.
func (s *stripe) notifyLocked() {
	s.ring.mu.Lock()
	s.countQueue() // want "via call to countQueue"
	s.ring.mu.Unlock()
}

// countQueue takes the stripe latch for its caller.
func (s *stripe) countQueue() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}
