// Fixture for directive hygiene: malformed //isolint: lines are findings
// no matter which analyzer runs.
package hygiene

//isolint:nonsense // want "unknown //isolint: directive"

//isolint:allow bogus because reasons // want "needs an analyzer name"

//isolint:latch-order justone // want "bad //isolint:latch-order"

//isolint:latch-leaf a b // want "exactly one latch name"

var placeholder = 0
