// Fixture for the seededrand analyzer. The first case reconstructs the
// data.Striper regression: a maphash seed drawn fresh per process
// re-randomized stripe visit order — and grant order — on every run.
//
//isolint:deterministic
package seededrand

import (
	"hash/maphash"
	"math/rand"
	"time"
)

// newStriperSeed is the PR 3 regression shape.
func newStriperSeed() maphash.Seed {
	return maphash.MakeSeed() // want "fresh random seed"
}

// globalDraw uses the process-global, randomly-seeded source.
func globalDraw() int {
	return rand.Intn(64) // want "process-global"
}

// shuffleGlobal also draws from the global source.
func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global"
}

// wallClock reads wall time into computed state.
func wallClock() time.Time {
	return time.Now() // want "wall clock"
}

// elapsed is the same leak via Since.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall clock"
}

// seeded is the sanctioned idiom: an explicit seeded source.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// timer bounds waiting without producing values that flow into traces.
func timer(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}

// sourceRef references a type, not a function: allowed.
var sourceRef rand.Source

// warmup is waived with a justification on the offending line.
func warmup() int {
	return rand.Int() //isolint:allow seededrand warmup only, the value never reaches a trace
}
