// Fixture for the detrange analyzer. The first case reconstructs the
// schedule runner's real bug: leftover transactions drained in map order,
// leaking iteration order into the emitted abort events.
//
//isolint:deterministic
package detrange

import "sort"

type tx struct{ id int }

// drainLeftovers is the PR 3 regression: emit runs in map order.
func drainLeftovers(active map[int]*tx, emit func(int)) {
	for id := range active { // want "leaks iteration order"
		emit(id)
		delete(active, id)
	}
}

// drainSorted is the fixed shape: collect, sort, then emit.
func drainSorted(active map[int]*tx, emit func(int)) {
	ids := make([]int, 0, len(active))
	for id := range active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		emit(id)
		delete(active, id)
	}
}

// tally only folds commutatively: order-insensitive.
func tally(m map[string]int) int {
	total := 0
	n := 0
	for _, v := range m {
		total += v
		n++
	}
	return total + n
}

// union builds a set: per-key writes commute.
func union(dst map[string]bool, src map[string]struct{}) {
	for k := range src {
		dst[k] = true
	}
}

// anyNil is an existence test: every iteration returns the same constant.
func anyNil(m map[int]*tx) bool {
	for _, v := range m {
		if v == nil {
			return true
		}
	}
	return false
}

// replay is order-sensitive but waived with a justification.
func replay(active map[int]*tx, emit func(int)) {
	//isolint:ordered the replay harness counts events and ignores order
	for id := range active {
		emit(id)
	}
}

// unjustified is waived without a reason: the waiver itself is a finding.
func unjustified(active map[int]*tx, emit func(int)) {
	//isolint:ordered // want "no justification"
	for id := range active {
		emit(id)
	}
}

// stale carries a waiver on a loop detrange no longer flags.
func stale(ids []int, emit func(int)) {
	//isolint:ordered ids were sorted by the caller // want "unused"
	for _, id := range ids {
		emit(id)
	}
}
