package analysis_test

import (
	"testing"

	"isolevel/internal/analysis"
)

// Each fixture under testdata/src reconstructs a real bug class this repo
// fixed by hand before isolint existed:
//
//   - detrange:     the schedule runner's map-order leftover drain (PR 3)
//   - seededrand:   the striper's random maphash seed (PR 3)
//   - chanmerge:    the controller's split completion/notify channels and
//     same-typed select merge (PR 3)
//   - latchrefresh: the key-range grant path's missed waits-for refresh
//     (caught in PR 5 review)
//   - latchorder:   one of each hierarchy violation shape
//   - hygiene:      malformed //isolint: directives are findings
//   - obslatch:     the flight-recorder hook contract (ring mutex
//     strictly innermost) and the two ways it breaks (PR 8)
//   - obsclock:     obs timing through an injected Clock passes the
//     deterministic-package wall-clock ban; direct time.Now does not

func TestDetRangeFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.DetRange, ".", "detrange")
}

func TestSeededRandFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.SeededRand, ".", "seededrand")
}

func TestChanMergeFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.ChanMerge, ".", "chanmerge")
}

func TestLatchOrderFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.LatchOrder, ".", "latchorder")
}

func TestLatchRefreshFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.LatchOrder, ".", "latchrefresh")
}

func TestDirectiveHygieneFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.DetRange, ".", "hygiene")
}

func TestObsLatchFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.LatchOrder, ".", "obslatch")
}

func TestObsClockFixture(t *testing.T) {
	analysis.RunFixture(t, analysis.SeededRand, ".", "obsclock")
}
