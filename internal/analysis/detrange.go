// detrange: deterministic packages must not leak map iteration order.
//
// The fuzzer's byte-for-byte reproducibility was once broken by exactly
// this bug class: the schedule runner drained leftover transactions with
// `for id := range m` and emitted their abort events in map order, so the
// same seed produced different traces run to run. The analyzer flags
// every `for range` over a map in a package marked //isolint:deterministic
// unless the loop is provably order-insensitive:
//
//   - collect-then-sort: the body only accumulates into slices that a
//     later statement of the function (same block or any enclosing one)
//     passes to a sorting call — package sort, or any Sort*-named
//     function, which covers slices.SortFunc and the repo's own
//     data.SortTuples;
//   - commutative body: every statement is an order-insensitive sink —
//     set/map insertion, delete, +=/-=/counter updates, local temps,
//     monotone constant flags (x = false in one arm), constant-result
//     early returns, and calls to same-package helpers whose bodies are
//     themselves commutative (the phenomena checker's hit/putPair set
//     inserters) — so any iteration order computes the same final state.
//
// Anything else needs an //isolint:ordered waiver with a justification.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetRange is the map-iteration-order analyzer.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "flags for-range over maps in deterministic packages unless provably order-insensitive",
	Run:  runDetRange,
}

// detChecker carries the package-wide context detrange needs: type info
// plus the same-package function index for interprocedural commutativity.
type detChecker struct {
	info  *types.Info
	funcs map[*types.Func]*ast.FuncDecl
	// commut memoizes per-function commutativity: +1 yes, -1 no or
	// in-progress (recursion is conservatively non-commutative).
	commut map[*types.Func]int
}

func runDetRange(pass *Pass) {
	if !pass.Pkg.Annotations.Deterministic {
		return
	}
	c := &detChecker{
		info:   pass.Pkg.Info,
		funcs:  map[*types.Func]*ast.FuncDecl{},
		commut: map[*types.Func]int{},
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if fn, ok := c.info.Defs[fd.Name].(*types.Func); ok {
					c.funcs[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := c.info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if c.clean(f, rs) {
				return true
			}
			pass.Reportf(rs.For, "for-range over map %s leaks iteration order in a deterministic package; sort the keys first or waive with //isolint:ordered <why>", exprString(pass, rs.X))
			return true
		})
	}
}

func exprString(pass *Pass, e ast.Expr) string {
	file := pass.Pkg.Fset.Position(e.Pos()).Filename
	src := pass.Pkg.Srcs[file]
	start := pass.Pkg.Fset.Position(e.Pos()).Offset
	end := pass.Pkg.Fset.Position(e.End()).Offset
	if src == nil || start < 0 || end > len(src) || start >= end {
		return "?"
	}
	return string(src[start:end])
}

// clean reports whether the map range is provably order-insensitive by one
// of the two structural rules.
func (c *detChecker) clean(f *ast.File, rs *ast.RangeStmt) bool {
	env := c.loopEnv(rs)
	if c.commutativeBody(rs.Body, env) {
		return true
	}
	return c.collectThenSort(f, rs, env)
}

// loopEnv is the per-loop analysis environment.
type loopEnv struct {
	// locals are objects declared inside the loop body: plain assignment
	// to them is harmless.
	locals map[types.Object]bool
	// monotone are outer variables every loop-body assignment writes the
	// same constant to (allTerminated = false): idempotent across
	// iterations, so order-free.
	monotone map[types.Object]bool
}

// loopEnv precomputes the monotone-flag set: outer idents assigned exactly
// one distinct constant throughout the body.
func (c *detChecker) loopEnv(rs *ast.RangeStmt) *loopEnv {
	consts := map[types.Object]map[string]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			obj := c.info.Uses[id]
			if obj == nil {
				continue
			}
			if consts[obj] == nil {
				consts[obj] = map[string]bool{}
			}
			if constantResult(as.Rhs[i]) {
				consts[obj][types.ExprString(as.Rhs[i])] = true
			} else {
				consts[obj]["<non-const>"] = true
			}
		}
		return true
	})
	env := &loopEnv{locals: map[types.Object]bool{}, monotone: map[types.Object]bool{}}
	for obj, vals := range consts {
		if len(vals) == 1 && !vals["<non-const>"] {
			env.monotone[obj] = true
		}
	}
	return env
}

// commutativeBody reports whether every statement in the block is an
// order-insensitive sink.
func (c *detChecker) commutativeBody(block *ast.BlockStmt, env *loopEnv) bool {
	for _, stmt := range block.List {
		if !c.commutativeStmt(stmt, env) {
			return false
		}
	}
	return true
}

func (c *detChecker) commutativeStmt(stmt ast.Stmt, env *loopEnv) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		return c.commutativeAssign(s, env)
	case *ast.IncDecStmt:
		// counter++ / counter-- commute across iterations.
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		// The delete and close builtins: removing a set of keys, or closing
		// each entry's own channel, is order-insensitive.
		if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "delete" || id.Name == "close") && isBuiltin(c.info, id) {
			return true
		}
		return c.commutativeCall(call)
	case *ast.IfStmt:
		// Conditions are treated as pure guards (a side-effecting
		// condition would already be suspect code); both arms must be
		// commutative.
		if s.Init != nil && !c.commutativeStmt(s.Init, env) {
			return false
		}
		if !c.commutativeBody(s.Body, env) {
			return false
		}
		if s.Else != nil {
			if eb, ok := s.Else.(*ast.BlockStmt); ok {
				return c.commutativeBody(eb, env)
			}
			return c.commutativeStmt(s.Else, env)
		}
		return true
	case *ast.BlockStmt:
		return c.commutativeBody(s, env)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.ReturnStmt:
		// Early return with constant results: an existence test —
		// whichever iteration fires returns the same value.
		for _, r := range s.Results {
			if !constantResult(r) {
				return false
			}
		}
		return true
	case *ast.DeclStmt:
		// var declarations introduce body-locals.
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if obj := c.info.Defs[name]; obj != nil {
							env.locals[obj] = true
						}
					}
				}
			}
		}
		return true
	case *ast.RangeStmt:
		// A nested range is fine when its operand needs no per-iteration
		// side effect (no calls) and its body is itself commutative.
		if c.hasCall(s.X) {
			return false
		}
		return c.commutativeBody(s.Body, env)
	default:
		return false
	}
}

// commutativeCall reports whether a discarded-result call is itself an
// order-insensitive sink: a same-package function whose body is entirely
// commutative (the set-insert helper idiom: hit, putPair, ...), with
// call-free arguments so no order-sensitive value is computed en route.
func (c *detChecker) commutativeCall(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if c.hasCall(arg) {
			return false
		}
	}
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ = c.info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if c.hasCall(fun.X) {
			return false
		}
		fn, _ = c.info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil {
		return false
	}
	if v, ok := c.commut[fn]; ok {
		return v > 0
	}
	decl := c.funcs[fn]
	if decl == nil || decl.Body == nil {
		c.commut[fn] = -1
		return false
	}
	c.commut[fn] = -1 // recursion guard: conservative while analyzing
	env := &loopEnv{locals: map[types.Object]bool{}, monotone: map[types.Object]bool{}}
	if c.commutativeBody(decl.Body, env) {
		c.commut[fn] = 1
		return true
	}
	return false
}

func (c *detChecker) commutativeAssign(s *ast.AssignStmt, env *loopEnv) bool {
	switch s.Tok {
	case token.DEFINE:
		// New loop-local temps; remember them so later plain assignment
		// to them stays allowed.
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := c.info.Defs[id]; obj != nil {
					env.locals[obj] = true
				}
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation.
		return true
	case token.ASSIGN:
		for _, lhs := range s.Lhs {
			switch l := lhs.(type) {
			case *ast.IndexExpr:
				// m[k] = v — a set/map insertion; the per-key final value
				// does not depend on which iteration wrote it, as long as
				// the loop writes each key once (the overwhelmingly common
				// seen[k] = true shape).
				if tv, ok := c.info.Types[l.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						continue
					}
				}
				return false
			case *ast.Ident:
				if l.Name == "_" {
					continue
				}
				if obj := c.info.Uses[l]; obj != nil && (env.locals[obj] || env.monotone[obj]) {
					continue
				}
				return false
			case *ast.SelectorExpr:
				// st.field = v where st is a body-local: the target object
				// was picked by this iteration (the per-entry state idiom).
				if base, ok := l.X.(*ast.Ident); ok {
					if obj := c.info.Uses[base]; obj != nil && env.locals[obj] {
						continue
					}
				}
				return false
			default:
				return false
			}
		}
		return true
	default:
		return false
	}
}

func constantResult(e ast.Expr) bool {
	switch r := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return r.Name == "true" || r.Name == "false" || r.Name == "nil"
	default:
		return false
	}
}

// isBuiltin reports whether id resolves to the predeclared builtin of the
// same name (and not some shadowing declaration).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return true // unresolved: only builtins escape Uses in practice
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// hasCall reports whether e contains a real call; type conversions
// (string(x), TxID(n)) are value-preserving and don't count.
func (c *detChecker) hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
				return true // conversion: keep scanning its operand
			}
			found = true
		}
		return !found
	})
	return found
}

// collectThenSort reports whether the loop only appends to accumulators
// (plus commutative noise) that are each sorted by a later statement of
// the function — in the loop's own block or any enclosing one (the
// shard-walk idiom appends inside a nested loop and sorts once at the
// end).
func (c *detChecker) collectThenSort(f *ast.File, rs *ast.RangeStmt, env *loopEnv) bool {
	// Gather the append targets, keyed by printed expression so selector
	// targets (h.Edges) work; any non-append, non-commutative statement
	// disqualifies the loop.
	appended := map[string]bool{}
	if !c.collectAppends(rs.Body, env, appended) || len(appended) == 0 {
		return false
	}
	for _, stmt := range followingStmts(f, rs) {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isSortCall(c.info, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if e, ok := m.(ast.Expr); ok {
						delete(appended, types.ExprString(e))
					}
					return true
				})
			}
			return true
		})
	}
	return len(appended) == 0
}

// collectAppends walks the body accepting commutative statements and
// `x = append(x, ...)` accumulation, recording the appended-to targets.
func (c *detChecker) collectAppends(block *ast.BlockStmt, env *loopEnv, appended map[string]bool) bool {
	for _, stmt := range block.List {
		if as, ok := stmt.(*ast.AssignStmt); ok && isAppendTo(c.info, as, appended) {
			continue
		}
		if ifs, ok := stmt.(*ast.IfStmt); ok {
			if ifs.Init != nil && !c.commutativeStmt(ifs.Init, env) {
				return false
			}
			if !c.collectAppends(ifs.Body, env, appended) {
				return false
			}
			if ifs.Else != nil {
				eb, ok := ifs.Else.(*ast.BlockStmt)
				if !ok || !c.collectAppends(eb, env, appended) {
					return false
				}
			}
			continue
		}
		if !c.commutativeStmt(stmt, env) {
			return false
		}
	}
	return true
}

// isAppendTo matches `x = append(x, ...)` for any target expression x
// (ident or selector), recording x's printed form.
func isAppendTo(info *types.Info, as *ast.AssignStmt, appended map[string]bool) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || !isBuiltin(info, fn) {
		return false
	}
	target := types.ExprString(as.Lhs[0])
	if target != types.ExprString(call.Args[0]) {
		return false
	}
	switch as.Lhs[0].(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return false
	}
	appended[target] = true
	return true
}

// isSortCall recognizes sorting calls: anything in package sort, plus any
// function whose name starts with Sort (slices.SortFunc, data.SortTuples —
// the repo's domain sorters follow the stdlib naming).
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if strings.HasPrefix(sel.Sel.Name, "Sort") {
		return true
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	return pn.Imported().Path() == "sort"
}

// followingStmts returns the statements after rs in its innermost
// enclosing statement list and every enclosing list up the same function —
// all of them run after the loop completes.
func followingStmts(f *ast.File, rs *ast.RangeStmt) []ast.Stmt {
	var out []ast.Stmt
	var walk func(n ast.Node) bool
	contains := func(s ast.Stmt) bool {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if n == ast.Node(rs) {
				found = true
			}
			return !found
		})
		return found
	}
	walk = func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i, stmt := range list {
			if contains(stmt) {
				out = append(out, list[i+1:]...)
				// Keep descending into the containing statement to collect
				// inner-enclosing lists too.
			}
		}
		return true
	}
	ast.Inspect(f, walk)
	return out
}
