package data

// Striper is the one key-striping scheme shared by every sharded component
// (the multiversion store, the single-version store, and the lock
// manager's lock tables): keys hash onto a fixed set of stripes. Sharing
// the implementation keeps the clamp-to-one and single-stripe fast-path
// semantics identical everywhere one `-shards` knob is exposed.
//
// The hash is a fixed FNV-1a, deliberately not seeded: stripe placement
// decides the order striped components visit stripes (ReleaseAll's grant
// batches above all), and the differential fuzzer's byte-for-byte
// reproducibility across *processes* requires the same key to land on the
// same stripe in every run. A per-instance random seed (hash/maphash)
// would re-randomize lock-release order on every invocation.
type Striper struct {
	n int
}

// NewStriper returns a striper over n stripes (n < 1 is treated as 1).
func NewStriper(n int) Striper {
	if n < 1 {
		n = 1
	}
	return Striper{n: n}
}

// Count returns the number of stripes.
func (s Striper) Count() int { return s.n }

// Index returns key's stripe, in [0, Count()).
func (s Striper) Index(key Key) int {
	if s.n == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(s.n))
}
