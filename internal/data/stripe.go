package data

import "hash/maphash"

// Striper is the one key-striping scheme shared by every sharded component
// (the multiversion store, the single-version store, and the lock
// manager's lock tables): keys hash onto a fixed set of stripes under a
// per-instance random seed. Sharing the implementation keeps the
// clamp-to-one and single-stripe fast-path semantics identical everywhere
// one `-shards` knob is exposed.
type Striper struct {
	seed maphash.Seed
	n    int
}

// NewStriper returns a striper over n stripes (n < 1 is treated as 1).
func NewStriper(n int) Striper {
	if n < 1 {
		n = 1
	}
	return Striper{seed: maphash.MakeSeed(), n: n}
}

// Count returns the number of stripes.
func (s Striper) Count() int { return s.n }

// Index returns key's stripe, in [0, Count()).
func (s Striper) Index(key Key) int {
	if s.n == 1 {
		return 0
	}
	return int(maphash.String(s.seed, string(key)) % uint64(s.n))
}
