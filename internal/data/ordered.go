package data

import "sort"

// OrderedSet is an ordered index over keys: the sorted key space that
// key-range (next-key) locking ranges over. Each store stripe maintains one
// beside its hash map, under the stripe's existing latch, so range scans
// and successor lookups need no global ordered structure — a cross-stripe
// range is the merge of the per-stripe runs (MergeKeys).
//
// The representation is a sorted slice with binary-search insert/delete:
// stores here hold at most a few thousand rows per stripe, where a flat
// slice beats a skiplist on every operation that matters (ordered range
// copy above all) and costs O(n) only on insertion shifts.
//
// The zero value is an empty set, ready to use.
type OrderedSet struct {
	keys []Key
}

// search returns the insertion index of k and whether k is present.
func (s *OrderedSet) search(k Key) (int, bool) {
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= k })
	return i, i < len(s.keys) && s.keys[i] == k
}

// Insert adds k; inserting a present key is a no-op.
func (s *OrderedSet) Insert(k Key) {
	i, ok := s.search(k)
	if ok {
		return
	}
	s.keys = append(s.keys, "")
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = k
}

// Delete removes k; deleting an absent key is a no-op.
func (s *OrderedSet) Delete(k Key) {
	i, ok := s.search(k)
	if !ok {
		return
	}
	s.keys = append(s.keys[:i], s.keys[i+1:]...)
}

// Contains reports whether k is present.
func (s *OrderedSet) Contains(k Key) bool {
	_, ok := s.search(k)
	return ok
}

// Len returns the number of keys.
func (s *OrderedSet) Len() int { return len(s.keys) }

// Range returns a copy of the keys in the half-open interval [lo, hi),
// ascending; with bounded == false it returns every key (the whole key
// space, the range of an unbounded predicate).
func (s *OrderedSet) Range(lo, hi Key, bounded bool) []Key {
	if !bounded {
		return append([]Key(nil), s.keys...)
	}
	i, _ := s.search(lo)
	j, _ := s.search(hi)
	return append([]Key(nil), s.keys[i:j]...)
}

// Higher returns the smallest key strictly greater than k, and whether one
// exists — the successor lookup of next-key locking: the existing key that
// owns the gap an absent key falls into.
func (s *OrderedSet) Higher(k Key) (Key, bool) {
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] > k })
	if i == len(s.keys) {
		return "", false
	}
	return s.keys[i], true
}

// Ceiling returns the smallest key greater than or equal to k, and whether
// one exists — the covering-anchor lookup of a gap check (a fragment at k
// itself covers the record, one above covers the gap).
func (s *OrderedSet) Ceiling(k Key) (Key, bool) {
	i, _ := s.search(k)
	if i == len(s.keys) {
		return "", false
	}
	return s.keys[i], true
}

// MergeKeys merges ascending runs (one per stripe) into one ascending key
// slice. Runs must each be sorted and duplicate-free across runs (stripes
// partition the key space, so they are).
func MergeKeys(runs ...[]Key) []Key {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return append([]Key(nil), runs[0]...)
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]Key, 0, total)
	pos := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if pos[i] >= len(r) {
				continue
			}
			if best < 0 || r[pos[i]] < runs[best][pos[best]] {
				best = i
			}
		}
		out = append(out, runs[best][pos[best]])
		pos[best]++
	}
	return out
}
