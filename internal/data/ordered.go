package data

import "sort"

// OrderedSet is an ordered index over keys: the sorted key space that
// key-range (next-key) locking ranges over. Each store stripe maintains one
// beside its hash map, under the stripe's existing latch, so range scans
// and successor lookups need no global ordered structure — a cross-stripe
// range is the merge of the per-stripe runs (MergeKeys).
//
// The representation is a sorted slice with binary-search insert/delete:
// stores here hold at most a few thousand rows per stripe, where a flat
// slice beats a skiplist on every operation that matters (ordered range
// copy above all) and costs O(n) only on insertion shifts.
//
// The zero value is an empty set, ready to use.
type OrderedSet struct {
	keys []Key
}

// search returns the insertion index of k and whether k is present.
func (s *OrderedSet) search(k Key) (int, bool) {
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] >= k })
	return i, i < len(s.keys) && s.keys[i] == k
}

// Insert adds k; inserting a present key is a no-op.
func (s *OrderedSet) Insert(k Key) {
	i, ok := s.search(k)
	if ok {
		return
	}
	s.keys = append(s.keys, "")
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = k
}

// Delete removes k; deleting an absent key is a no-op.
func (s *OrderedSet) Delete(k Key) {
	i, ok := s.search(k)
	if !ok {
		return
	}
	s.keys = append(s.keys[:i], s.keys[i+1:]...)
}

// Contains reports whether k is present.
func (s *OrderedSet) Contains(k Key) bool {
	_, ok := s.search(k)
	return ok
}

// Len returns the number of keys.
func (s *OrderedSet) Len() int { return len(s.keys) }

// Range returns a copy of the keys in the half-open interval [lo, hi),
// ascending; with bounded == false it returns every key (the whole key
// space, the range of an unbounded predicate).
func (s *OrderedSet) Range(lo, hi Key, bounded bool) []Key {
	if !bounded {
		return append([]Key(nil), s.keys...)
	}
	i, _ := s.search(lo)
	j, _ := s.search(hi)
	return append([]Key(nil), s.keys[i:j]...)
}

// AppendRange appends the keys in the half-open interval [lo, hi) to dst,
// ascending, and returns the extended slice; with bounded == false it
// appends every key. The allocation-free sibling of Range: a caller that
// recycles dst pays nothing once its capacity has grown to the working
// set, which is what keeps a steady-state key-range lock install O(1)
// allocations (lock.Manager feeds per-stripe runs into a reused KeyRuns).
func (s *OrderedSet) AppendRange(dst []Key, lo, hi Key, bounded bool) []Key {
	if !bounded {
		return append(dst, s.keys...)
	}
	i, _ := s.search(lo)
	j, _ := s.search(hi)
	return append(dst, s.keys[i:j]...)
}

// Higher returns the smallest key strictly greater than k, and whether one
// exists — the successor lookup of next-key locking: the existing key that
// owns the gap an absent key falls into.
func (s *OrderedSet) Higher(k Key) (Key, bool) {
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i] > k })
	if i == len(s.keys) {
		return "", false
	}
	return s.keys[i], true
}

// Ceiling returns the smallest key greater than or equal to k, and whether
// one exists — the covering-anchor lookup of a gap check (a fragment at k
// itself covers the record, one above covers the gap).
func (s *OrderedSet) Ceiling(k Key) (Key, bool) {
	i, _ := s.search(k)
	if i == len(s.keys) {
		return "", false
	}
	return s.keys[i], true
}

// KeyRuns collects per-stripe sorted key runs in one reusable buffer: all
// runs share a single backing slice, with Ends recording where each run
// stops. Resetting and refilling a KeyRuns reuses both backing arrays, so
// a producer that snapshots the same store shape repeatedly (a key-range
// scan re-installing its anchors) allocates nothing at steady state —
// unlike a [][]Key of per-stripe copies, which costs one allocation per
// stripe per snapshot.
type KeyRuns struct {
	// Keys holds every run back to back, in run order.
	Keys []Key
	// Ends[i] is the end offset of run i in Keys (run i starts at
	// Ends[i-1], or 0 for the first run).
	Ends []int
}

// Reset empties the collection, keeping both backing arrays.
func (r *KeyRuns) Reset() {
	r.Keys = r.Keys[:0]
	r.Ends = r.Ends[:0]
}

// EndRun closes the current run: everything appended to Keys since the
// previous EndRun becomes one run.
func (r *KeyRuns) EndRun() { r.Ends = append(r.Ends, len(r.Keys)) }

// NumRuns returns the number of closed runs.
func (r *KeyRuns) NumRuns() int { return len(r.Ends) }

// Run returns run i as a view into the shared buffer (valid until the next
// Reset or append).
func (r *KeyRuns) Run(i int) []Key {
	start := 0
	if i > 0 {
		start = r.Ends[i-1]
	}
	return r.Keys[start:r.Ends[i]]
}

// MergeKeys merges ascending runs (one per stripe) into one ascending key
// slice. Runs must each be sorted and duplicate-free across runs (stripes
// partition the key space, so they are).
func MergeKeys(runs ...[]Key) []Key {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return append([]Key(nil), runs[0]...)
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]Key, 0, total)
	pos := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if pos[i] >= len(r) {
				continue
			}
			if best < 0 || r[pos[i]] < runs[best][pos[best]] {
				best = i
			}
		}
		out = append(out, runs[best][pos[best]])
		pos[best]++
	}
	return out
}
