// Package data defines the row and tuple model shared by every engine in
// the repository.
//
// The paper ("A Critique of ANSI SQL Isolation Levels", SIGMOD 1995) takes a
// broad interpretation of "data item": a row, a page, a whole table, or a
// message on a queue. We model a data item as a keyed row of named int64
// fields. Simple histories such as w1[x=10] address a row by key and use the
// conventional field "val"; predicate scenarios (phantoms, job tasks) use
// richer rows such as {dept:1, hours:3, active:1}.
//
// Besides the row model the package holds the two structural primitives
// every striped component shares: Striper (the fixed key-to-stripe hash)
// and OrderedSet (the per-stripe ordered key index that key-range locking
// ranges over).
//
//isolint:deterministic
package data

import (
	"fmt"
	"sort"
	"strings"
)

// ValField is the conventional field name used when a data item is a plain
// scalar, as in the paper's histories over items x, y, z.
const ValField = "val"

// Key identifies a data item (a row) in a store.
type Key string

// Row is a set of named int64 fields. A nil Row denotes "no row" (used for
// before-images of inserts and after-images of deletes).
type Row map[string]int64

// Scalar builds a one-field row holding v under ValField, the shape used by
// the paper's single-item histories.
func Scalar(v int64) Row { return Row{ValField: v} }

// Val returns the scalar value of the row (its ValField), or 0 if absent.
func (r Row) Val() int64 { return r[ValField] }

// Get returns the named field and whether it is present.
func (r Row) Get(field string) (int64, bool) {
	v, ok := r[field]
	return v, ok
}

// Clone returns a deep copy of the row. Clone of nil is nil.
func (r Row) Clone() Row {
	if r == nil {
		return nil
	}
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// Equal reports whether two rows have identical field sets and values.
// Two nil rows are equal; nil differs from any non-nil row (even empty).
func (r Row) Equal(o Row) bool {
	if (r == nil) != (o == nil) {
		return false
	}
	if len(r) != len(o) {
		return false
	}
	for k, v := range r {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// With returns a copy of the row with field set to v.
func (r Row) With(field string, v int64) Row {
	c := r.Clone()
	if c == nil {
		c = Row{}
	}
	c[field] = v
	return c
}

// String renders the row deterministically as {a:1, b:2}.
func (r Row) String() string {
	if r == nil {
		return "<nil>"
	}
	fields := make([]string, 0, len(r))
	for k := range r {
		fields = append(fields, k)
	}
	sort.Strings(fields)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", k, r[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Tuple pairs a key with its row.
type Tuple struct {
	Key Key
	Row Row
}

// Clone deep-copies the tuple.
func (t Tuple) Clone() Tuple { return Tuple{Key: t.Key, Row: t.Row.Clone()} }

// String renders the tuple as key{fields}.
func (t Tuple) String() string { return string(t.Key) + t.Row.String() }

// SortTuples orders tuples by key, in place, for deterministic output.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key < ts[j].Key })
}

// Keys extracts the key set of a tuple slice, sorted.
func Keys(ts []Tuple) []Key {
	ks := make([]Key, len(ts))
	for i, t := range ts {
		ks[i] = t.Key
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
