package data

import (
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	r := Scalar(42)
	if got := r.Val(); got != 42 {
		t.Fatalf("Val() = %d, want 42", got)
	}
	if v, ok := r.Get(ValField); !ok || v != 42 {
		t.Fatalf("Get(val) = %d,%v", v, ok)
	}
}

func TestValOfNilRow(t *testing.T) {
	var r Row
	if got := r.Val(); got != 0 {
		t.Fatalf("nil row Val() = %d, want 0", got)
	}
}

func TestGetMissingField(t *testing.T) {
	r := Row{"a": 1}
	if _, ok := r.Get("b"); ok {
		t.Fatal("Get of missing field reported ok")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := Row{"a": 1, "b": 2}
	c := r.Clone()
	c["a"] = 99
	if r["a"] != 1 {
		t.Fatalf("mutation of clone leaked into original: %v", r)
	}
	if !r.Equal(Row{"a": 1, "b": 2}) {
		t.Fatalf("original changed: %v", r)
	}
}

func TestCloneNil(t *testing.T) {
	var r Row
	if r.Clone() != nil {
		t.Fatal("Clone of nil row should be nil")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Row
		want bool
	}{
		{nil, nil, true},
		{nil, Row{}, false},
		{Row{}, Row{}, true},
		{Row{"a": 1}, Row{"a": 1}, true},
		{Row{"a": 1}, Row{"a": 2}, false},
		{Row{"a": 1}, Row{"b": 1}, false},
		{Row{"a": 1}, Row{"a": 1, "b": 2}, false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal(%v,%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("case %d: Equal not symmetric", i)
		}
	}
}

func TestWithDoesNotMutate(t *testing.T) {
	r := Row{"a": 1}
	r2 := r.With("a", 5).With("b", 6)
	if r["a"] != 1 {
		t.Fatalf("With mutated receiver: %v", r)
	}
	if r2["a"] != 5 || r2["b"] != 6 {
		t.Fatalf("With result wrong: %v", r2)
	}
}

func TestWithOnNil(t *testing.T) {
	var r Row
	r2 := r.With("x", 1)
	if r2["x"] != 1 {
		t.Fatalf("With on nil row: %v", r2)
	}
}

func TestRowStringDeterministic(t *testing.T) {
	r := Row{"b": 2, "a": 1, "c": 3}
	want := "{a:1, b:2, c:3}"
	for i := 0; i < 10; i++ {
		if got := r.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
	var nilRow Row
	if nilRow.String() != "<nil>" {
		t.Fatalf("nil row String() = %q", nilRow.String())
	}
}

func TestTupleCloneAndString(t *testing.T) {
	tp := Tuple{Key: "x", Row: Scalar(7)}
	c := tp.Clone()
	c.Row[ValField] = 9
	if tp.Row.Val() != 7 {
		t.Fatal("Tuple.Clone shares row storage")
	}
	if tp.String() != "x{val:7}" {
		t.Fatalf("Tuple.String() = %q", tp.String())
	}
}

func TestSortTuplesAndKeys(t *testing.T) {
	ts := []Tuple{{Key: "c"}, {Key: "a"}, {Key: "b"}}
	SortTuples(ts)
	if ts[0].Key != "a" || ts[1].Key != "b" || ts[2].Key != "c" {
		t.Fatalf("SortTuples order: %v", ts)
	}
	ks := Keys([]Tuple{{Key: "z"}, {Key: "m"}})
	if len(ks) != 2 || ks[0] != "m" || ks[1] != "z" {
		t.Fatalf("Keys: %v", ks)
	}
}

func TestCloneEqualProperty(t *testing.T) {
	f := func(m map[string]int64) bool {
		r := Row(m)
		return r.Clone().Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualReflexiveProperty(t *testing.T) {
	f := func(m map[string]int64) bool {
		r := Row(m)
		return r.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
