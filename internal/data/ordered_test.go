package data

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestOrderedSetBasics(t *testing.T) {
	var s OrderedSet
	for _, k := range []Key{"m", "a", "z", "m", "c"} {
		s.Insert(k)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (duplicate insert must be a no-op)", s.Len())
	}
	if got := s.Range("", "", false); !reflect.DeepEqual(got, []Key{"a", "c", "m", "z"}) {
		t.Fatalf("full Range = %v", got)
	}
	if got := s.Range("b", "n", true); !reflect.DeepEqual(got, []Key{"c", "m"}) {
		t.Fatalf("Range[b,n) = %v", got)
	}
	if got := s.Range("a", "a", true); len(got) != 0 {
		t.Fatalf("empty Range = %v", got)
	}
	s.Delete("m")
	s.Delete("nope")
	if s.Contains("m") || !s.Contains("a") {
		t.Fatal("Delete/Contains wrong")
	}
	if k, ok := s.Higher("a"); !ok || k != "c" {
		t.Fatalf("Higher(a) = %q,%v, want c", k, ok)
	}
	if k, ok := s.Higher("z"); ok {
		t.Fatalf("Higher(z) = %q, want none", k)
	}
	// Higher is strict: the successor of a present key is the next key.
	s.Insert("m")
	if k, ok := s.Higher("c"); !ok || k != "m" {
		t.Fatalf("Higher(c) = %q,%v, want m", k, ok)
	}
}

func TestOrderedSetRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s OrderedSet
	ref := map[Key]bool{}
	alpha := "abcdefghij"
	for i := 0; i < 2000; i++ {
		k := Key(alpha[rng.Intn(len(alpha))]) + Key(alpha[rng.Intn(len(alpha))])
		if rng.Intn(3) == 0 {
			s.Delete(k)
			delete(ref, k)
		} else {
			s.Insert(k)
			ref[k] = true
		}
	}
	var want []Key
	for k := range ref {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := s.Range("", "", false)
	if len(want) == 0 {
		want = nil
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ordered set diverged from reference map:\n got %v\nwant %v", got, want)
	}
}

func TestMergeKeys(t *testing.T) {
	got := MergeKeys([]Key{"a", "m"}, nil, []Key{"c"}, []Key{"b", "z"})
	if !reflect.DeepEqual(got, []Key{"a", "b", "c", "m", "z"}) {
		t.Fatalf("MergeKeys = %v", got)
	}
	if MergeKeys() != nil {
		t.Fatal("MergeKeys() should be nil")
	}
}
