// Package history implements the paper's history formalism (§2.1–2.2): a
// history is a linear ordering of the actions of a set of transactions —
// reads, writes, predicate reads, predicate-affecting writes, commits,
// aborts, and (for Cursor Stability, §4.1) cursor reads and writes.
//
// Histories are both syntax (parsed from the paper's shorthand, e.g.
// "w1[x] r2[x] c1 a2") and the trace format produced by live engine runs,
// so the same phenomenon matchers and dependency-graph analyses apply to
// hand-written counterexamples and to recorded executions.
//
//isolint:deterministic
package history

import (
	"fmt"
	"sort"
	"strings"

	"isolevel/internal/data"
)

// Kind enumerates the action kinds that may appear in a history.
type Kind int

// Action kinds. ReadCursor/WriteCursor are the rc/wc actions the paper
// introduces for Cursor Stability (§4.1).
const (
	Read        Kind = iota // r1[x]    read of a data item
	Write                   // w1[x=5]  write (insert, update, or delete) of a data item
	PredRead                // r1[P]    read of the set of items satisfying predicate P
	PredWrite               // w1[P]    write over a predicate (update/delete where P)
	Commit                  // c1
	Abort                   // a1
	ReadCursor              // rc1[x]   read through a cursor, lock held while current
	WriteCursor             // wc1[x]   write the current item of the cursor
	Delete                  // d1[x]    delete of a data item (a write that removes the row)
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "r"
	case Write:
		return "w"
	case PredRead:
		return "rP"
	case PredWrite:
		return "wP"
	case Commit:
		return "c"
	case Abort:
		return "a"
	case ReadCursor:
		return "rc"
	case WriteCursor:
		return "wc"
	case Delete:
		return "d"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsTerminal reports whether the kind ends a transaction.
func (k Kind) IsTerminal() bool { return k == Commit || k == Abort }

// IsRead reports whether the kind observes data (r, rP, rc).
func (k Kind) IsRead() bool { return k == Read || k == PredRead || k == ReadCursor }

// IsWrite reports whether the kind mutates data (w, wP, wc, d). A delete
// is a write in every conflict sense — it changes what any later read or
// predicate evaluation sees — it just leaves no row behind.
func (k Kind) IsWrite() bool {
	return k == Write || k == PredWrite || k == WriteCursor || k == Delete
}

// Op is a single action in a history.
type Op struct {
	// Tx is the transaction number (the subscript in w1[x]).
	Tx int
	// Kind is the action kind.
	Kind Kind
	// Item is the data item for item actions (r, w, rc, wc) and for
	// predicate-affecting writes ("w2[y in P]" has Item y).
	Item data.Key
	// Pred names the predicate for PredRead/PredWrite, and for item writes
	// that are marked as falling inside previously read predicates
	// (the "y in P" annotation). Multiple predicates may be affected.
	Preds []string
	// Value is the value annotation (w1[x=10], r2[x=50]); HasValue says
	// whether one was given/observed.
	Value    int64
	HasValue bool
	// Version is the version subscript in multiversion histories
	// (r2[x0=50] reads version 0 of x): -1 when absent.
	Version int
}

// NewOp builds an Op with no version annotation.
func NewOp(tx int, kind Kind, item data.Key) Op {
	return Op{Tx: tx, Kind: kind, Item: item, Version: -1}
}

// WithValue returns a copy of the op carrying a value annotation.
func (o Op) WithValue(v int64) Op {
	o.Value = v
	o.HasValue = true
	return o
}

// WithPreds returns a copy of the op annotated with predicate names.
func (o Op) WithPreds(names ...string) Op {
	o.Preds = append([]string(nil), names...)
	return o
}

// WithVersion returns a copy of the op with a multiversion subscript.
func (o Op) WithVersion(v int) Op {
	o.Version = v
	return o
}

// InPred reports whether the op is annotated as affecting predicate name.
func (o Op) InPred(name string) bool {
	for _, p := range o.Preds {
		if p == name {
			return true
		}
	}
	return false
}

// String renders the op in the paper's shorthand. PredRead/PredWrite print
// as r1[P]/w1[P] exactly as in the paper; the uppercase operand marks them
// as predicate actions for the parser.
func (o Op) String() string {
	var b strings.Builder
	switch o.Kind {
	case PredRead:
		b.WriteString("r")
	case PredWrite:
		b.WriteString("w")
	default:
		b.WriteString(o.Kind.String())
	}
	fmt.Fprintf(&b, "%d", o.Tx)
	switch o.Kind {
	case Commit, Abort:
		return b.String()
	case PredRead, PredWrite:
		b.WriteByte('[')
		if len(o.Preds) > 0 {
			b.WriteString(o.Preds[0])
		} else {
			b.WriteString("P")
		}
		b.WriteByte(']')
		return b.String()
	}
	b.WriteByte('[')
	b.WriteString(string(o.Item))
	if o.Version >= 0 {
		fmt.Fprintf(&b, ".%d", o.Version)
	}
	if o.HasValue {
		fmt.Fprintf(&b, "=%d", o.Value)
	}
	if len(o.Preds) > 0 {
		fmt.Fprintf(&b, " in %s", strings.Join(o.Preds, ","))
	}
	b.WriteByte(']')
	return b.String()
}

// History is a linear ordering of actions.
type History []Op

// String renders the history in the paper's shorthand.
func (h History) String() string {
	parts := make([]string, len(h))
	for i, op := range h {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ")
}

// Txns returns the sorted set of transaction numbers appearing in h.
func (h History) Txns() []int {
	seen := map[int]bool{}
	for _, op := range h {
		seen[op.Tx] = true
	}
	out := make([]int, 0, len(seen))
	for tx := range seen {
		out = append(out, tx)
	}
	sort.Ints(out)
	return out
}

// OpsOf returns the subsequence of ops belonging to tx.
func (h History) OpsOf(tx int) History {
	var out History
	for _, op := range h {
		if op.Tx == tx {
			out = append(out, op)
		}
	}
	return out
}

// Committed returns the set of transactions that commit in h.
func (h History) Committed() map[int]bool {
	out := map[int]bool{}
	for _, op := range h {
		if op.Kind == Commit {
			out[op.Tx] = true
		}
	}
	return out
}

// Aborted returns the set of transactions that abort in h.
func (h History) Aborted() map[int]bool {
	out := map[int]bool{}
	for _, op := range h {
		if op.Kind == Abort {
			out[op.Tx] = true
		}
	}
	return out
}

// TerminalIndex returns the index of tx's commit/abort, or -1 if tx never
// terminates in h.
func (h History) TerminalIndex(tx int) int {
	for i, op := range h {
		if op.Tx == tx && op.Kind.IsTerminal() {
			return i
		}
	}
	return -1
}

// Items returns the sorted set of data items touched by item actions.
func (h History) Items() []data.Key {
	seen := map[data.Key]bool{}
	for _, op := range h {
		if op.Item != "" {
			seen[op.Item] = true
		}
	}
	out := make([]data.Key, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WellFormedError describes a structural defect in a history.
type WellFormedError struct {
	Index int
	Op    Op
	Msg   string
}

func (e *WellFormedError) Error() string {
	return fmt.Sprintf("history: op %d (%s): %s", e.Index, e.Op, e.Msg)
}

// Validate checks structural sanity: no actions after a transaction's
// terminal, at most one terminal per transaction, ops have items/predicates
// where required.
func (h History) Validate() error {
	done := map[int]bool{}
	for i, op := range h {
		if done[op.Tx] {
			return &WellFormedError{i, op, "action after transaction terminated"}
		}
		switch op.Kind {
		case Commit, Abort:
			done[op.Tx] = true
		case Read, Write, ReadCursor, WriteCursor, Delete:
			if op.Item == "" {
				return &WellFormedError{i, op, "item action without item"}
			}
		case PredRead, PredWrite:
			if len(op.Preds) == 0 {
				return &WellFormedError{i, op, "predicate action without predicate"}
			}
		default:
			return &WellFormedError{i, op, "unknown kind"}
		}
	}
	return nil
}

// CommittedProjection returns the history restricted to committed
// transactions — the paper's dependency graphs are over committed
// transactions only (§2.1).
func (h History) CommittedProjection() History {
	committed := h.Committed()
	var out History
	for _, op := range h {
		if committed[op.Tx] {
			out = append(out, op)
		}
	}
	return out
}

// Serial reports whether the history is serial: each transaction's actions
// form a contiguous block.
func (h History) Serial() bool {
	seen := map[int]bool{}
	cur := 0
	started := false
	for _, op := range h {
		if !started || op.Tx != cur {
			if seen[op.Tx] {
				return false
			}
			seen[op.Tx] = true
			cur = op.Tx
			started = true
		}
	}
	return true
}

// SerialOrder builds the serial history that runs the given transactions'
// op-blocks one after another in the given order. Transactions keep their
// internal op order from h. Transactions not listed are dropped.
func (h History) SerialOrder(txOrder ...int) History {
	var out History
	for _, tx := range txOrder {
		out = append(out, h.OpsOf(tx)...)
	}
	return out
}
