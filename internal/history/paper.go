package history

// The canonical histories from the paper, used throughout the test suite
// and the table regenerators. Comments quote the paper's section where each
// history appears.

// H1 (§3): the classical inconsistent analysis. T1 transfers 40 from x to y
// (total balance 100); T2 reads a state where the total is 60. H1 is
// non-serializable yet violates none of the strict anomalies A1, A2, A3 —
// it does violate the broad phenomenon P1. This is the paper's argument
// that the broad interpretation of Dirty Read is the intended one.
//
//	H1: r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1
func H1() History {
	return MustParse("r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1")
}

// H2 (§3): inconsistent analysis without dirty reads; T1 sees a total of
// 140. Violates broad P2 but not strict A2 (no item is read twice).
//
//	H2: r1[x=50] r2[x=50] w2[x=10] r2[y=50] w2[y=90] c2 r1[y=90] c1
func H2() History {
	return MustParse("r1[x=50] r2[x=50] w2[x=10] r2[y=50] w2[y=90] c2 r1[y=90] c1")
}

// H3 (§3): phantom without a repeated predicate evaluation. T1 lists active
// employees (predicate P) and then checks the employee counter z; T2
// inserts a new employee into P and updates z in between. Violates broad P3
// but not strict A3.
//
//	H3: r1[P] w2[y in P] r2[z] w2[z] c2 r1[z] c1
func H3() History {
	return MustParse("r1[P] w2[y in P] r2[z] w2[z] c2 r1[z] c1")
}

// H4 (§4.1): lost update at READ COMMITTED. T2's increment of 20 is wiped
// out by T1's write of 130 computed from its stale read of 100.
//
//	H4: r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1
func H4() History {
	return MustParse("r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1")
}

// H4C (§4.1): the cursor form of H4. The cursor read rc1[x] holds a lock on
// the current item until the cursor moves, so Cursor Stability blocks w2[x]
// and prevents the lost update (phenomenon P4C).
//
//	H4C: rc1[x=100] r2[x=100] w2[x=120] c2 wc1[x=130] c1
func H4C() History {
	return MustParse("rc1[x=100] r2[x=100] w2[x=120] c2 wc1[x=130] c1")
}

// H5 (§4.2): write skew. Constraint x+y > 0; each transaction alone
// preserves it, but T1 writes y and T2 writes x from the same snapshot and
// the committed state violates the constraint. H5 has the dataflows of a
// Snapshot Isolation execution and exhibits neither A1, A2 nor A3 — the
// paper's proof that ANOMALY SERIALIZABLE is weaker than serializability
// and that SI is non-serializable.
//
//	H5: r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2
func H5() History {
	return MustParse("r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2")
}

// H1SI (§4.2): the multiversion history produced when H1's action sequence
// runs under Snapshot Isolation. Version subscripts follow the paper:
// x0/y0 are the versions committed before both transactions start; x1/y1
// are T1's new versions. H1.SI has serializable dataflows.
//
//	H1.SI: r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1
func H1SI() History {
	return MustParse("r1[x.0=50] w1[x.1=10] r2[x.0=50] r2[y.0=50] c2 r1[y.0=50] w1[y.1=90] c1")
}

// H1SISV (§4.2): the single-valued history that H1.SI maps to under the
// paper's MV→SV mapping — reads at the start timestamp, writes at the
// commit timestamp. It is serializable.
//
//	H1.SI.SV: r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1
func H1SISV() History {
	return MustParse("r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1")
}

// DirtyWrite (§3, P0 discussion): w1[x] w2[x] w2[y] c2 w1[y] c1. T1 writes
// 1 into x and y, T2 writes 2; interleaved dirty writes leave x=2, y=1,
// violating the constraint x == y.
func DirtyWrite() History {
	return MustParse("w1[x=1] w2[x=2] w2[y=2] c2 w1[y=1] c1")
}

// DirtyWriteUndo (§3, Remark 3 discussion): w1[x] w2[x] a1 — rolling back
// T1 by restoring its before-image wipes out T2's update; recovery is
// impossible without long write locks.
func DirtyWriteUndo() History {
	return MustParse("w1[x=1] w2[x=2] a1")
}

// ReadSkew (A5A, §4.2): r1[x]...w2[x]...w2[y]...c2...r1[y] — T1 sees x
// before and y after T2's consistent update of both.
func ReadSkew() History {
	return MustParse("r1[x=50] w2[x=10] w2[y=90] c2 r1[y=90] c1")
}

// WriteSkew (A5B, §4.2): r1[x]...r2[y]...w1[y]...w2[x] with both commits.
func WriteSkew() History {
	return MustParse("r1[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2")
}
