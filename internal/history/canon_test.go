package history

import "testing"

func TestCanonicalizePreds(t *testing.T) {
	// Engine-recorded predicate names use concrete syntax the parser
	// rejects as identifiers; canonicalization maps them to P/Q/R by
	// first appearance, consistently across reads and write annotations.
	h := History{
		{Tx: 1, Kind: PredRead, Preds: []string{"val >= 1000"}, Version: -1},
		{Tx: 2, Kind: Write, Item: "x", Preds: []string{"val >= 1000", "true"}, Version: -1},
		{Tx: 1, Kind: PredRead, Preds: []string{"key ~ \"x\""}, Version: -1},
		{Tx: 2, Kind: Commit, Version: -1},
		{Tx: 1, Kind: Commit, Version: -1},
	}
	c := CanonicalizePreds(h)
	if got, want := c.String(), `r1[P] w2[x in P,Q] r1[R] c2 c1`; got != want {
		t.Fatalf("canonicalized = %q, want %q", got, want)
	}
	// The result round-trips through the parser.
	parsed, err := Parse(c.String())
	if err != nil {
		t.Fatalf("canonical history does not parse: %v", err)
	}
	if parsed.String() != c.String() {
		t.Errorf("round trip changed the history: %q vs %q", parsed, c)
	}
	// The input is untouched.
	if h[0].Preds[0] != "val >= 1000" {
		t.Error("CanonicalizePreds mutated its input")
	}
}

func TestCanonicalizePredsManyNames(t *testing.T) {
	var h History
	for i := 0; i < 5; i++ {
		h = append(h, Op{Tx: 1, Kind: PredRead, Preds: []string{string(rune('a' + i))}, Version: -1})
	}
	h = append(h, Op{Tx: 1, Kind: Commit, Version: -1})
	c := CanonicalizePreds(h)
	want := []string{"P", "Q", "R", "P3", "P4"}
	for i, name := range want {
		if c[i].Preds[0] != name {
			t.Errorf("pred %d renamed to %q, want %q", i, c[i].Preds[0], name)
		}
	}
	if _, err := Parse(c.String()); err != nil {
		t.Errorf("canonical history does not parse: %v", err)
	}
}
