package history

import "fmt"

// CanonicalizePreds returns a copy of h with every predicate name rewritten
// to the paper's P/Q/R convention, assigned in order of first appearance
// (P, Q, R, then P3, P4, ...). Recorded engine traces name predicates by
// their concrete syntax ("val >= 100"), which the history parser does not
// accept as a predicate identifier; canonicalized histories round-trip
// through Parse, so fuzz findings and corpus entries can be replayed with
// `isolevel check`.
func CanonicalizePreds(h History) History {
	names := map[string]string{}
	canon := func(name string) string {
		if c, ok := names[name]; ok {
			return c
		}
		var c string
		switch len(names) {
		case 0:
			c = "P"
		case 1:
			c = "Q"
		case 2:
			c = "R"
		default:
			c = fmt.Sprintf("P%d", len(names))
		}
		names[name] = c
		return c
	}
	out := make(History, len(h))
	for i, op := range h {
		if len(op.Preds) > 0 {
			renamed := make([]string, len(op.Preds))
			for j, p := range op.Preds {
				renamed[j] = canon(p)
			}
			op.Preds = renamed
		}
		out[i] = op
	}
	return out
}
