package history

import (
	"fmt"
	"strconv"
	"strings"

	"isolevel/internal/data"
)

// Parse reads a history in the paper's shorthand. Ops are separated by
// whitespace. Supported forms:
//
//	r1[x]         read of item x by transaction 1
//	r1[x=50]      read observing value 50
//	r1[x.0=50]    multiversion read of version 0 (the paper's r1[x0=50])
//	w1[x]         write of item x
//	w1[x=10]      write of value 10
//	w2[y in P]    write of item y noted to fall in predicate P
//	w2[y in P,Q]  ... in several predicates
//	d1[x]         delete of item x (a write leaving no row)
//	d2[y in P]    delete noted to fall in predicate P
//	r1[P]         predicate read of P (single uppercase identifier)
//	w1[P]         predicate write of P
//	rc1[x]        cursor read  (§4.1)
//	wc1[x]        cursor write (§4.1)
//	c1            commit
//	a1            abort (ROLLBACK)
//
// A bare bracket operand that is a single uppercase identifier (P, Q, P1…)
// is treated as a predicate name; anything else is an item key.
func Parse(src string) (History, error) {
	fields, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	var h History
	for _, f := range fields {
		op, err := parseOp(f)
		if err != nil {
			return nil, err
		}
		h = append(h, op)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// MustParse is Parse that panics on error; for canonical histories and tests.
func MustParse(src string) History {
	h, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return h
}

// tokenize splits src on whitespace, but whitespace inside [...] does not
// separate tokens (so "w2[y in P]" is one op).
func tokenize(src string) ([]string, error) {
	var toks []string
	var cur strings.Builder
	depth := 0
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, c := range src {
		switch {
		case c == '[':
			depth++
			cur.WriteRune(c)
		case c == ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("history: unbalanced ']' in %q", src)
			}
			cur.WriteRune(c)
		case (c == ' ' || c == '\t' || c == '\n' || c == '\r') && depth == 0:
			flush()
		default:
			cur.WriteRune(c)
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("history: unbalanced '[' in %q", src)
	}
	flush()
	return toks, nil
}

func parseOp(f string) (Op, error) {
	var kind Kind
	var rest string
	switch {
	case strings.HasPrefix(f, "rc"):
		kind, rest = ReadCursor, f[2:]
	case strings.HasPrefix(f, "wc"):
		kind, rest = WriteCursor, f[2:]
	case strings.HasPrefix(f, "r"):
		kind, rest = Read, f[1:]
	case strings.HasPrefix(f, "w"):
		kind, rest = Write, f[1:]
	case strings.HasPrefix(f, "d"):
		kind, rest = Delete, f[1:]
	case strings.HasPrefix(f, "c"):
		kind, rest = Commit, f[1:]
	case strings.HasPrefix(f, "a"):
		kind, rest = Abort, f[1:]
	default:
		return Op{}, fmt.Errorf("history: unknown op %q", f)
	}

	// Transaction number: digits up to '[' or end.
	digitEnd := 0
	for digitEnd < len(rest) && rest[digitEnd] >= '0' && rest[digitEnd] <= '9' {
		digitEnd++
	}
	if digitEnd == 0 {
		return Op{}, fmt.Errorf("history: op %q lacks transaction number", f)
	}
	tx, err := strconv.Atoi(rest[:digitEnd])
	if err != nil {
		return Op{}, fmt.Errorf("history: op %q: %v", f, err)
	}
	rest = rest[digitEnd:]

	if kind.IsTerminal() {
		if rest != "" {
			return Op{}, fmt.Errorf("history: terminal op %q has operand", f)
		}
		return Op{Tx: tx, Kind: kind, Version: -1}, nil
	}

	if len(rest) < 2 || rest[0] != '[' || rest[len(rest)-1] != ']' {
		return Op{}, fmt.Errorf("history: op %q needs [operand]", f)
	}
	body := rest[1 : len(rest)-1]
	if body == "" {
		return Op{}, fmt.Errorf("history: op %q has empty operand", f)
	}

	op := Op{Tx: tx, Kind: kind, Version: -1}

	// "y in P" / "y in P,Q" annotation.
	if idx := strings.Index(body, " in "); idx >= 0 {
		names := strings.Split(body[idx+4:], ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
			if !isPredName(names[i]) {
				return Op{}, fmt.Errorf("history: op %q: bad predicate name %q", f, names[i])
			}
		}
		op.Preds = names
		body = strings.TrimSpace(body[:idx])
	}

	// Value annotation item=val.
	if idx := strings.IndexByte(body, '='); idx >= 0 {
		v, err := strconv.ParseInt(body[idx+1:], 10, 64)
		if err != nil {
			return Op{}, fmt.Errorf("history: op %q: bad value: %v", f, err)
		}
		op.Value, op.HasValue = v, true
		body = body[:idx]
	}

	// Version annotation item.n.
	if idx := strings.LastIndexByte(body, '.'); idx >= 0 {
		if n, err := strconv.Atoi(body[idx+1:]); err == nil {
			op.Version = n
			body = body[:idx]
		}
	}

	if body == "" {
		return Op{}, fmt.Errorf("history: op %q has empty item", f)
	}

	// A single uppercase identifier with no predicate annotation is a
	// predicate operand: r1[P].
	if len(op.Preds) == 0 && isPredName(body) && (kind == Read || kind == Write) {
		op.Preds = []string{body}
		if kind == Read {
			op.Kind = PredRead
		} else {
			op.Kind = PredWrite
		}
		return op, nil
	}
	if kind == ReadCursor || kind == WriteCursor || kind == Delete {
		if isPredName(body) && len(op.Preds) == 0 {
			return Op{}, fmt.Errorf("history: op %q cannot take a predicate operand", f)
		}
	}
	op.Item = data.Key(body)
	return op, nil
}

// isPredName reports whether s looks like a predicate name: an uppercase
// letter optionally followed by digits (P, Q, P1, ...).
func isPredName(s string) bool {
	if s == "" || s[0] < 'A' || s[0] > 'Z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
