package history

import (
	"math/rand"
	"strings"
	"testing"

	"isolevel/internal/data"
)

func TestParseSimpleOps(t *testing.T) {
	h := MustParse("w1[x] r2[x] c1 a2")
	if len(h) != 4 {
		t.Fatalf("len = %d", len(h))
	}
	if h[0].Kind != Write || h[0].Tx != 1 || h[0].Item != "x" {
		t.Fatalf("op0 = %+v", h[0])
	}
	if h[1].Kind != Read || h[1].Tx != 2 {
		t.Fatalf("op1 = %+v", h[1])
	}
	if h[2].Kind != Commit || h[2].Tx != 1 {
		t.Fatalf("op2 = %+v", h[2])
	}
	if h[3].Kind != Abort || h[3].Tx != 2 {
		t.Fatalf("op3 = %+v", h[3])
	}
}

func TestParseValues(t *testing.T) {
	h := MustParse("w1[x=10] r2[x=-5]")
	if !h[0].HasValue || h[0].Value != 10 {
		t.Fatalf("op0 value: %+v", h[0])
	}
	if !h[1].HasValue || h[1].Value != -5 {
		t.Fatalf("op1 value: %+v", h[1])
	}
}

func TestParsePredicateOps(t *testing.T) {
	h := MustParse("r1[P] w2[y in P] w1[Q]")
	if h[0].Kind != PredRead || h[0].Preds[0] != "P" {
		t.Fatalf("op0 = %+v", h[0])
	}
	if h[1].Kind != Write || h[1].Item != "y" || !h[1].InPred("P") {
		t.Fatalf("op1 = %+v", h[1])
	}
	if h[2].Kind != PredWrite || h[2].Preds[0] != "Q" {
		t.Fatalf("op2 = %+v", h[2])
	}
}

func TestParseDeleteOps(t *testing.T) {
	h := MustParse("d1[x] d2[y in P] c1 c2")
	if h[0].Kind != Delete || h[0].Tx != 1 || h[0].Item != "x" || h[0].HasValue {
		t.Fatalf("op0 = %+v", h[0])
	}
	if h[1].Kind != Delete || h[1].Item != "y" || !h[1].InPred("P") {
		t.Fatalf("op1 = %+v", h[1])
	}
}

func TestParseMultiPredAnnotation(t *testing.T) {
	h := MustParse("w1[y in P,Q2]")
	if !h[0].InPred("P") || !h[0].InPred("Q2") || h[0].InPred("R") {
		t.Fatalf("op = %+v", h[0])
	}
}

func TestParseCursorOps(t *testing.T) {
	h := MustParse("rc1[x=100] wc1[x=130] c1")
	if h[0].Kind != ReadCursor || h[1].Kind != WriteCursor {
		t.Fatalf("cursor kinds: %+v %+v", h[0], h[1])
	}
	if h[0].Value != 100 || h[1].Value != 130 {
		t.Fatal("cursor values lost")
	}
}

func TestParseVersionSubscripts(t *testing.T) {
	h := MustParse("r1[x.0=50] w1[x.1=10]")
	if h[0].Version != 0 || h[1].Version != 1 {
		t.Fatalf("versions: %+v %+v", h[0], h[1])
	}
	if h[0].Item != "x" || h[1].Item != "x" {
		t.Fatal("item lost with version subscript")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x1[y]",     // unknown op
		"r[x]",      // no tx number
		"c1[x]",     // terminal with operand
		"r1",        // missing operand
		"r1[]",      // empty operand
		"w1[x=abc]", // bad value
		"rc1[P]",    // cursor op on predicate
		"d1[P]",     // delete of a predicate operand
		"w1[y in lowercase]",
		"r1[x] r1[x] c1 r1[x]", // op after terminal
		"c1 c1",                // double terminal
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"w1[x] r2[x] c1 a2",
		"w1[x=10] r2[x=-5] c1 c2",
		"r1[P] w2[y in P] c2 c1",
		"rc1[x=100] wc1[x=130] c1",
		"r1[x.0=50] w1[x.1=10] c1",
		"r1[P] d2[y in P] c2 d1[x] c1",
	}
	for _, src := range srcs {
		h := MustParse(src)
		h2 := MustParse(h.String())
		if h.String() != h2.String() {
			t.Errorf("round trip changed %q -> %q", h.String(), h2.String())
		}
	}
}

func TestPaperHistoriesParse(t *testing.T) {
	for name, fn := range map[string]func() History{
		"H1": H1, "H2": H2, "H3": H3, "H4": H4, "H4C": H4C, "H5": H5,
		"H1SI": H1SI, "H1SISV": H1SISV, "DirtyWrite": DirtyWrite,
		"DirtyWriteUndo": DirtyWriteUndo, "ReadSkew": ReadSkew, "WriteSkew": WriteSkew,
	} {
		h := fn()
		if err := h.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
		if len(h) == 0 {
			t.Errorf("%s empty", name)
		}
	}
}

func TestH1Shape(t *testing.T) {
	h := H1()
	if got := h.String(); got != "r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1" {
		t.Fatalf("H1 = %q", got)
	}
	if txns := h.Txns(); len(txns) != 2 || txns[0] != 1 || txns[1] != 2 {
		t.Fatalf("H1 txns = %v", txns)
	}
}

func TestTxnsAndOpsOf(t *testing.T) {
	h := MustParse("r3[x] w1[y] c3 c1")
	if txns := h.Txns(); len(txns) != 2 || txns[0] != 1 || txns[1] != 3 {
		t.Fatalf("Txns = %v", txns)
	}
	ops := h.OpsOf(3)
	if len(ops) != 2 || ops[0].Kind != Read || ops[1].Kind != Commit {
		t.Fatalf("OpsOf(3) = %v", ops)
	}
}

func TestCommittedAbortedTerminal(t *testing.T) {
	h := MustParse("w1[x] r2[x] a1 c2")
	if !h.Committed()[2] || h.Committed()[1] {
		t.Fatalf("Committed = %v", h.Committed())
	}
	if !h.Aborted()[1] || h.Aborted()[2] {
		t.Fatalf("Aborted = %v", h.Aborted())
	}
	if h.TerminalIndex(1) != 2 || h.TerminalIndex(2) != 3 {
		t.Fatal("TerminalIndex wrong")
	}
	if h.TerminalIndex(9) != -1 {
		t.Fatal("TerminalIndex of absent tx should be -1")
	}
}

func TestItems(t *testing.T) {
	h := MustParse("w1[x] r1[z] r1[P] w2[y in P] c1 c2")
	items := h.Items()
	want := []data.Key{"x", "y", "z"}
	if len(items) != len(want) {
		t.Fatalf("Items = %v", items)
	}
	for i := range want {
		if items[i] != want[i] {
			t.Fatalf("Items = %v, want %v", items, want)
		}
	}
}

func TestCommittedProjection(t *testing.T) {
	h := MustParse("w1[x] r2[x] a1 c2")
	p := h.CommittedProjection()
	for _, op := range p {
		if op.Tx != 2 {
			t.Fatalf("projection kept aborted tx op %v", op)
		}
	}
	if len(p) != 2 {
		t.Fatalf("projection len = %d", len(p))
	}
}

func TestSerial(t *testing.T) {
	if !MustParse("r1[x] w1[y] c1 r2[x] c2").Serial() {
		t.Fatal("contiguous blocks should be serial")
	}
	if MustParse("r1[x] r2[x] w1[y] c1 c2").Serial() {
		t.Fatal("interleaved history claimed serial")
	}
	if !(History{}).Serial() {
		t.Fatal("empty history is serial")
	}
}

func TestSerialOrder(t *testing.T) {
	h := MustParse("r1[x] r2[y] w1[x] c1 c2")
	s := h.SerialOrder(2, 1)
	want := "r2[y] c2 r1[x] w1[x] c1"
	if s.String() != want {
		t.Fatalf("SerialOrder = %q, want %q", s.String(), want)
	}
	if !s.Serial() {
		t.Fatal("SerialOrder result not serial")
	}
}

func TestValidateCatchesPostTerminalOps(t *testing.T) {
	h := History{
		NewOp(1, Commit, ""),
		NewOp(1, Read, "x"),
	}
	if err := h.Validate(); err == nil {
		t.Fatal("Validate accepted op after commit")
	}
}

func TestOpBuilders(t *testing.T) {
	op := NewOp(1, Write, "x").WithValue(5).WithPreds("P").WithVersion(2)
	if op.Value != 5 || !op.HasValue || !op.InPred("P") || op.Version != 2 {
		t.Fatalf("builders: %+v", op)
	}
	if op.String() != "w1[x.2=5 in P]" {
		t.Fatalf("String = %q", op.String())
	}
}

func TestKindPredicates(t *testing.T) {
	if !Read.IsRead() || !PredRead.IsRead() || !ReadCursor.IsRead() {
		t.Fatal("IsRead wrong")
	}
	if !Write.IsWrite() || !PredWrite.IsWrite() || !WriteCursor.IsWrite() || !Delete.IsWrite() {
		t.Fatal("IsWrite wrong")
	}
	if Read.IsWrite() || Write.IsRead() || Commit.IsRead() || Commit.IsWrite() || Delete.IsRead() {
		t.Fatal("kind predicate cross-talk")
	}
	if !Commit.IsTerminal() || !Abort.IsTerminal() || Read.IsTerminal() {
		t.Fatal("IsTerminal wrong")
	}
}

// randomHistory builds a structurally valid random history.
func randomHistory(r *rand.Rand, ntx, nops int) History {
	items := []data.Key{"x", "y", "z"}
	var h History
	done := map[int]bool{}
	for i := 0; i < nops; i++ {
		tx := 1 + r.Intn(ntx)
		if done[tx] {
			continue
		}
		switch r.Intn(6) {
		case 0:
			h = append(h, NewOp(tx, Read, items[r.Intn(len(items))]))
		case 1:
			h = append(h, NewOp(tx, Write, items[r.Intn(len(items))]).WithValue(int64(r.Intn(100))))
		case 2:
			h = append(h, Op{Tx: tx, Kind: PredRead, Preds: []string{"P"}, Version: -1})
		case 3:
			h = append(h, NewOp(tx, Write, items[r.Intn(len(items))]).WithPreds("P"))
		case 4:
			h = append(h, Op{Tx: tx, Kind: Commit, Version: -1})
			done[tx] = true
		case 5:
			h = append(h, Op{Tx: tx, Kind: Abort, Version: -1})
			done[tx] = true
		}
	}
	return h
}

// Property: every random structurally valid history round-trips through
// String/Parse with identical rendering, and stays valid.
func TestRandomHistoryRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		h := randomHistory(r, 3, 12)
		if err := h.Validate(); err != nil {
			t.Fatalf("random history invalid: %v\n%s", err, h)
		}
		if strings.TrimSpace(h.String()) == "" {
			continue
		}
		h2, err := Parse(h.String())
		if err != nil {
			t.Fatalf("parse of %q: %v", h.String(), err)
		}
		if h2.String() != h.String() {
			t.Fatalf("round trip changed %q -> %q", h.String(), h2.String())
		}
	}
}
