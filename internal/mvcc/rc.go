package mvcc

// Oracle-style Read Consistency transactions, per the paper's §4.3:
//
//   - "Oracle Read Consistency isolation gives each SQL statement the most
//     recent committed database value at the time the statement began" —
//     every Get/Select takes a fresh statement-level snapshot ("it is as if
//     the start-timestamp of the transaction is advanced at each SQL
//     statement").
//   - "Row inserts, updates, and deletes are covered by Write locks to give
//     a first-writer-wins rather than a first-committer-wins policy" —
//     writes acquire long exclusive locks and block, rather than abort, on
//     conflict; after the lock is granted the write proceeds against the
//     then-current committed state.
//   - "The members of a cursor set are as of the time of the Open Cursor";
//     cursor updates re-check the row against the cursor snapshot so cursor
//     lost updates (P4C) cannot occur, while plain lost updates (P4), fuzzy
//     reads (P2), phantoms (P3) and read skew (A5A) all remain possible.

import (
	"errors"
	"fmt"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/history"
	"isolevel/internal/lock"
	"isolevel/internal/mv"
	"isolevel/internal/predicate"
)

// RCTx is a Read Consistency transaction.
type RCTx struct {
	db     *DB
	id     int
	writes map[data.Key]data.Row // own uncommitted writes (overlay), nil = delete
	order  []data.Key
	done   bool

	// reads records each statement's item reads with the statement
	// snapshot they executed at, for the statement-level SV mapping
	// (SVTrace). commitTS/committed are set at Commit.
	reads     []TimedRead
	commitTS  mv.TS
	committed bool

	// rangeReads records each key-range scan's result set with its
	// statement-snapshot slot for the harness's range-read certification.
	rangeReads []RangeRead
}

// TimedRead is one recorded read together with the statement-snapshot
// timestamp it executed at.
type TimedRead struct {
	TS mv.TS
	Op history.Op
}

var _ engine.Tx = (*RCTx)(nil)

// ID implements engine.Tx.
func (t *RCTx) ID() int { return t.id }

// Level implements engine.Tx.
func (t *RCTx) Level() engine.Level { return engine.ReadConsistency }

func (t *RCTx) lockErr(err error) error {
	if errors.Is(err, lock.ErrDeadlock) {
		return fmt.Errorf("%w (T%d)", engine.ErrDeadlock, t.id)
	}
	return err
}

// statementTS returns a fresh statement-level snapshot: the most recent
// fully installed committed timestamp right now (the watermark, so a
// statement never sees a torn concurrent commit).
func (t *RCTx) statementTS() mv.TS { return t.db.oracle.Safe() }

// Get implements engine.Tx: a single-row statement; reads the latest
// committed value as of statement start, overlaid by own writes.
func (t *RCTx) Get(key data.Key) (data.Row, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	start := t.db.obs.Now()
	if row, ok := t.writes[key]; ok {
		if row == nil {
			t.db.obs.RecordOp(start)
			return nil, engine.ErrNotFound
		}
		t.db.rec.Record(history.Op{Tx: t.id, Kind: history.Read, Item: key, Version: -1}.WithValue(row.Val()))
		t.db.obs.RecordOp(start)
		return row.Clone(), nil
	}
	ts := t.statementTS()
	v, ok := t.db.store.ReadAt(key, ts)
	if !ok {
		op := history.Op{Tx: t.id, Kind: history.Read, Item: key, Version: -1}
		t.reads = append(t.reads, TimedRead{TS: ts, Op: op})
		t.db.rec.Record(op)
		t.db.obs.RecordOp(start)
		return nil, engine.ErrNotFound
	}
	op := history.Op{Tx: t.id, Kind: history.Read, Item: key, Version: -1}.WithValue(v.Row.Val())
	t.reads = append(t.reads, TimedRead{TS: ts, Op: op})
	t.db.rec.Record(op)
	t.db.obs.RecordOp(start)
	return v.Row, nil
}

// Put implements engine.Tx: take a long write lock (first-writer-wins —
// block, don't abort), then buffer the write; versions install at commit.
func (t *RCTx) Put(key data.Key, row data.Row) error {
	return t.write(key, row.Clone())
}

// Delete implements engine.Tx.
func (t *RCTx) Delete(key data.Key) error { return t.write(key, nil) }

func (t *RCTx) write(key data.Key, row data.Row) error {
	if t.done {
		return engine.ErrTxDone
	}
	start := t.db.obs.Now()
	var before data.Row
	if v, ok := t.db.store.ReadAt(key, t.statementTS()); ok {
		before = v.Row
	}
	if err := t.db.lm.AcquireItem(lock.TxID(t.id), key, lock.X, lock.Images{Before: before, After: row}); err != nil {
		t.db.obs.RecordOp(start)
		return t.lockErr(err)
	}
	if _, ok := t.writes[key]; !ok {
		t.order = append(t.order, key)
	}
	t.writes[key] = row
	t.db.rec.RecordWrite(t.id, key, before, row)
	t.db.obs.RecordOp(start)
	return nil
}

// Select implements engine.Tx: statement-level snapshot scan with own
// writes overlaid. Two Selects in the same transaction may see different
// committed states — that is the P2/P3-permitting behavior of §4.3.
func (t *RCTx) Select(p predicate.P) ([]data.Tuple, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	start := t.db.obs.Now()
	out, err := t.selectAt(p, t.statementTS())
	t.db.obs.RecordOp(start)
	return out, err
}

func (t *RCTx) selectAt(p predicate.P, ts mv.TS) ([]data.Tuple, error) {
	base := t.db.store.SelectAt(p, ts)
	merged := make(map[data.Key]data.Row, len(base))
	for _, b := range base {
		merged[b.Key] = b.Row
	}
	for key, row := range t.writes {
		if row == nil {
			delete(merged, key)
			continue
		}
		if p.Match(data.Tuple{Key: key, Row: row}) {
			merged[key] = row
		} else {
			delete(merged, key)
		}
	}
	out := make([]data.Tuple, 0, len(merged))
	for key, row := range merged {
		out = append(out, data.Tuple{Key: key, Row: row.Clone()})
	}
	data.SortTuples(out)
	t.db.rec.RecordPredRead(t.id, p)
	if kr, ok := p.(predicate.KeyRange); ok && t.db.rec.Enabled() {
		rr := RangeRead{Slot: 2*int64(ts) + 1, Lo: kr.Lo, Hi: kr.Hi}
		for _, tp := range out {
			rr.Keys = append(rr.Keys, tp.Key)
			rr.Vals = append(rr.Vals, tp.Row.Val())
		}
		t.rangeReads = append(t.rangeReads, rr)
	}
	return out, nil
}

// RangeReads exports the recorded key-range scans for certification.
func (t *RCTx) RangeReads() []RangeRead { return t.rangeReads }

// OpenCursor implements engine.Tx: "The members of a cursor set are as of
// the time of the Open Cursor" — the cursor pins the statement snapshot of
// its open.
func (t *RCTx) OpenCursor(p predicate.P) (engine.Cursor, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	ts := t.statementTS()
	tuples, err := t.selectAt(p, ts)
	if err != nil {
		return nil, err
	}
	return &rcCursor{tx: t, snapTS: ts, tuples: tuples, pos: -1}, nil
}

type rcCursor struct {
	tx     *RCTx
	snapTS mv.TS
	tuples []data.Tuple
	pos    int
	closed bool
}

func (c *rcCursor) Fetch() (data.Tuple, error) {
	if c.closed || c.tx.done {
		return data.Tuple{}, engine.ErrTxDone
	}
	c.pos++
	if c.pos >= len(c.tuples) {
		return data.Tuple{}, engine.ErrNotFound
	}
	cur := c.tuples[c.pos]
	op := history.Op{Tx: c.tx.id, Kind: history.ReadCursor, Item: cur.Key, Version: -1}.WithValue(cur.Row.Val())
	c.tx.reads = append(c.tx.reads, TimedRead{TS: c.snapTS, Op: op})
	c.tx.db.rec.Record(op)
	return cur.Clone(), nil
}

func (c *rcCursor) Current() (data.Tuple, error) {
	if c.pos < 0 || c.pos >= len(c.tuples) {
		return data.Tuple{}, engine.ErrNoCursor
	}
	return c.tuples[c.pos].Clone(), nil
}

// UpdateCurrent write-locks the row, then re-checks it against the cursor
// snapshot: if another transaction committed a change to this row after
// the cursor opened, the update fails with ErrRowChanged (Oracle's write
// consistency restart, surfaced as an error). This is what makes P4C "Not
// Possible" at Read Consistency while plain P4 remains possible.
func (c *rcCursor) UpdateCurrent(row data.Row) error {
	if c.closed || c.tx.done {
		return engine.ErrTxDone
	}
	cur, err := c.Current()
	if err != nil {
		return err
	}
	t := c.tx
	var before data.Row
	if v, ok := t.db.store.ReadAt(cur.Key, t.statementTS()); ok {
		before = v.Row
	}
	if err := t.db.lm.AcquireItem(lock.TxID(t.id), cur.Key, lock.X, lock.Images{Before: before, After: row}); err != nil {
		return t.lockErr(err)
	}
	if ts := t.db.store.LatestCommitTS(cur.Key); ts > c.snapTS {
		t.db.lm.ReleaseItem(lock.TxID(t.id), cur.Key)
		return fmt.Errorf("%w: %s committed at ts %d after cursor snapshot %d", engine.ErrRowChanged, cur.Key, ts, c.snapTS)
	}
	if _, ok := t.writes[cur.Key]; !ok {
		t.order = append(t.order, cur.Key)
	}
	t.writes[cur.Key] = row.Clone()
	t.db.rec.Record(history.Op{Tx: t.id, Kind: history.WriteCursor, Item: cur.Key, Version: -1}.WithValue(row.Val()))
	return nil
}

func (c *rcCursor) Close() error { c.closed = true; return nil }

// Commit implements engine.Tx: install versions at a fresh commit
// timestamp under the write set's store stripe latches, then release
// locks. The long write locks — held until after Install — guarantee two
// RC commits writing the same key never overlap; the stripe latches
// additionally fence the install against concurrent Snapshot Isolation
// validate+install critical sections on the shared store (SI transactions
// take no write locks, so the locks alone would not order an RC install
// against an SI validation of the same key). The oracle watermark keeps
// in-flight installs invisible to readers.
func (t *RCTx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	start := t.db.obs.Now()
	t.done = true
	if len(t.writes) > 0 {
		release := t.db.store.LockWriteSet(t.order)
		ts := t.db.oracle.Next()
		t.db.store.Install(ts, t.id, t.writes)
		release()
		t.db.oracle.Done(ts)
		t.commitTS = ts
	} else {
		t.commitTS = t.db.oracle.Safe()
	}
	t.committed = true
	t.db.rec.Record(history.Op{Tx: t.id, Kind: history.Commit, Version: -1})
	t.db.obs.Commit(t.id)
	t.db.lm.ReleaseAll(lock.TxID(t.id))
	t.db.obs.RecordCommitLatency(start)
	return nil
}

// SVTrace exports the transaction's execution for the statement-level
// single-valued mapping: each read op with the statement snapshot it
// executed at, plus the write set with its commit timestamp. Valid after
// the transaction terminated.
//
// A statement at snapshot s sees exactly the versions committed at
// timestamps <= s, so (as in SITx's MVTxn export) commits map to even
// slots (2*ts) and statement reads to the odd slot just above their
// snapshot (2*ts+1).
func (t *RCTx) SVTrace() (committed bool, commitSlot int64, reads []TimedRead, writes history.History) {
	committed = t.committed
	commitSlot = 2 * int64(t.commitTS)
	reads = make([]TimedRead, len(t.reads))
	for i, r := range t.reads {
		r.TS = mv.TS(2*int64(r.TS) + 1)
		reads[i] = r
	}
	if committed && len(t.order) == 0 && len(reads) > 0 {
		// Read-only transactions commit "at" their last statement snapshot;
		// pinning the commit to that read's slot (callers order same-slot
		// events by emission) keeps the mapped history well-formed, with the
		// commit after the transaction's own reads.
		commitSlot = int64(reads[len(reads)-1].TS)
	}
	for _, key := range t.order {
		op := history.Op{Tx: t.id, Kind: history.Write, Item: key, Version: -1}
		if row := t.writes[key]; row != nil {
			op = op.WithValue(row.Val())
		} else {
			op.Kind = history.Delete
		}
		writes = append(writes, op)
	}
	return committed, commitSlot, reads, writes
}

// Abort implements engine.Tx: drop buffered writes, release locks. No undo
// needed — versions were never installed.
func (t *RCTx) Abort() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.done = true
	t.writes = nil
	t.db.rec.Record(history.Op{Tx: t.id, Kind: history.Abort, Version: -1})
	t.db.obs.Abort(t.id)
	t.db.lm.ReleaseAll(lock.TxID(t.id))
	return nil
}
