package mvcc

import (
	"errors"
	"testing"

	"isolevel/internal/data"
	"isolevel/internal/engine"
)

func load(db *DB) {
	db.Load(data.Tuple{Key: "x", Row: data.Scalar(1)}, data.Tuple{Key: "y", Row: data.Scalar(2)})
}

// TestMixedSnapshotVsStatementReads: one SI and one RC transaction read the
// same store while a third commits — the SI snapshot stays pinned, the RC
// statement snapshot advances.
func TestMixedSnapshotVsStatementReads(t *testing.T) {
	db := NewDB()
	load(db)
	si, err := db.Begin(engine.SnapshotIsolation)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := db.Begin(engine.ReadConsistency)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := engine.GetVal(si, "x"); v != 1 {
		t.Fatalf("SI first read: %d", v)
	}
	if v, _ := engine.GetVal(rc, "x"); v != 1 {
		t.Fatalf("RC first read: %d", v)
	}

	w, _ := db.Begin(engine.ReadConsistency)
	if err := engine.PutVal(w, "x", 100); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	if v, _ := engine.GetVal(si, "x"); v != 1 {
		t.Errorf("SI reread moved off its snapshot: %d", v)
	}
	if v, _ := engine.GetVal(rc, "x"); v != 100 {
		t.Errorf("RC statement snapshot did not advance: %d", v)
	}
	if err := si.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := rc.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestRCCommitTriggersSIFirstCommitterWins: an RC transaction's commit
// inside an SI writer's execution interval must fail the SI commit — the
// cross-kind conflict the shared store and stripe-latched installs exist
// for.
func TestRCCommitTriggersSIFirstCommitterWins(t *testing.T) {
	db := NewDB()
	load(db)
	si, _ := db.Begin(engine.SnapshotIsolation)
	if err := engine.PutVal(si, "x", 10); err != nil {
		t.Fatal(err)
	}
	rc, _ := db.Begin(engine.ReadConsistency)
	if err := engine.PutVal(rc, "x", 20); err != nil {
		t.Fatal(err) // SI buffers privately, so the RC write lock is free
	}
	if err := rc.Commit(); err != nil {
		t.Fatal(err)
	}
	err := si.Commit()
	if !errors.Is(err, engine.ErrWriteConflict) {
		t.Fatalf("SI commit after RC commit of the same key: err = %v, want first-committer-wins", err)
	}
	if v := db.ReadCommittedRow("x").Val(); v != 20 {
		t.Fatalf("committed x = %d, want the RC writer's 20", v)
	}
}

// TestLevelRestriction: the facades' WithLevels narrowing rejects the
// other multiversion level with ErrUnsupported.
func TestLevelRestriction(t *testing.T) {
	db := NewDB(WithLevels(engine.SnapshotIsolation))
	if _, err := db.Begin(engine.ReadConsistency); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("restricted Begin: %v", err)
	}
	if _, err := db.Begin(engine.SnapshotIsolation); err != nil {
		t.Fatalf("allowed Begin: %v", err)
	}
	if got := db.Levels(); len(got) != 1 || got[0] != engine.SnapshotIsolation {
		t.Fatalf("Levels() = %v", got)
	}
	if _, err := NewDB().Begin(engine.Serializable); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatal("locking level accepted by the multiversion engine")
	}
}

// TestSharedIDSequence: transaction ids stay unique across the two kinds.
func TestSharedIDSequence(t *testing.T) {
	db := NewDB()
	load(db)
	a, _ := db.Begin(engine.SnapshotIsolation)
	b, _ := db.Begin(engine.ReadConsistency)
	c, _ := db.Begin(engine.SnapshotIsolation)
	if a.ID() == b.ID() || b.ID() == c.ID() || a.ID() == c.ID() {
		t.Fatalf("duplicate ids: %d %d %d", a.ID(), b.ID(), c.ID())
	}
}
