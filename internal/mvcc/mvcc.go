// Package mvcc is the unified multiversion engine behind both of the
// paper's multiversion isolation levels: Snapshot Isolation (§4.2) and
// Oracle-style Read Consistency (§4.3). One DB holds one mv.Store, one
// timestamp mv.Oracle and one write-lock manager, and Begin hands out
// either transaction kind — so SI and RC transactions genuinely interleave
// against the same committed version chains, the way the paper's histories
// mix isolation degrees inside a single scheduler.
//
//   - A SNAPSHOT ISOLATION transaction (SITx) pins its snapshot at its
//     Start-Timestamp, buffers writes privately, and commits through the
//     striped First-Committer-Wins critical section: latch the store
//     stripes of the write set, validate per-key LatestCommitTS against
//     the start timestamp, install, release.
//   - A READ CONSISTENCY transaction (RCTx) takes a fresh statement-level
//     snapshot per Get/Select/OpenCursor, covers writes with long
//     exclusive locks (first-writer-wins: block, don't abort), and
//     installs its versions at commit.
//
// Because both kinds commit into the same store, RC commits also install
// under the store's write-set stripe latches (mv.Store.LockWriteSet): an
// RC commit that merely relied on its write locks could otherwise slip a
// version under a concurrent SI validate+install critical section — SI
// transactions take no write locks, so the stripe latch is the only fence
// between an RC install and an SI validation of the same key. Snapshots
// (transaction- and statement-level alike) start at the oracle's
// installed watermark (Oracle.Safe), so neither kind can observe half of
// a concurrent commit.
//
// The historical packages internal/snapshot and internal/oraclerc remain
// as facades restricted to their single level; their types alias the ones
// here. The differential fuzzer's mixed mode (internal/exerciser) runs
// this DB unrestricted as the "mv" family.
//
//isolint:deterministic
package mvcc

import (
	"fmt"
	"sync/atomic"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/lock"
	"isolevel/internal/mv"
	"isolevel/internal/obs"
)

// Option configures a DB.
type Option func(*DB)

// FirstUpdaterWins switches SI conflict detection to write time: a write
// to a key already written by a concurrent committed transaction fails
// immediately with ErrWriteConflict (ablation of the paper's pure
// first-committer-wins; RC transactions are unaffected).
func FirstUpdaterWins() Option {
	return func(db *DB) { db.firstUpdaterWins = true }
}

// WithShards sets the stripe count of the underlying multiversion store
// and of the write-lock manager's lock tables (default mv.DefaultShards).
func WithShards(n int) Option {
	return func(db *DB) { db.shards = n }
}

// WithLevels restricts which multiversion levels Begin accepts (default:
// both SNAPSHOT ISOLATION and READ CONSISTENCY). The snapshot and
// oraclerc facades use it to keep their historical single-level contract.
func WithLevels(levels ...engine.Level) Option {
	return func(db *DB) { db.allowed = levels }
}

// DB is a unified multiversion database serving Snapshot Isolation and
// Read Consistency transactions over one store.
type DB struct {
	store  *mv.Store
	oracle *mv.Oracle
	lm     *lock.Manager
	seq    atomic.Int64
	rec    *engine.Recorder
	shards int

	allowed          []engine.Level
	firstUpdaterWins bool
	obs              *obs.Sink
}

// SetObs attaches an observability sink to the engine and its write-lock
// manager. Nil (the default) keeps every hot path free of clock reads and
// event appends. Must be set before concurrent use.
func (db *DB) SetObs(s *obs.Sink) {
	db.obs = s
	db.lm.SetObs(s)
}

// Obs returns the attached observability sink (nil when disabled).
func (db *DB) Obs() *obs.Sink { return db.obs }

// NewDB returns an empty multiversion database.
func NewDB(opts ...Option) *DB {
	db := &DB{
		shards:  mv.DefaultShards,
		oracle:  &mv.Oracle{},
		rec:     engine.NewRecorder(),
		allowed: []engine.Level{engine.SnapshotIsolation, engine.ReadConsistency},
	}
	for _, o := range opts {
		o(db)
	}
	db.store = mv.NewStoreShards(db.shards)
	db.lm = lock.NewManagerShards(db.shards)
	return db
}

// ShardCount reports the stripe count of the underlying store.
func (db *DB) ShardCount() int { return db.store.ShardCount() }

// Chain exposes a key's committed version chain (tests probe it to assert
// ascending-timestamp installs across the striped commit paths).
func (db *DB) Chain(key data.Key) []mv.Version { return db.store.Chain(key) }

// Recorder exposes the execution recorder.
func (db *DB) Recorder() *engine.Recorder { return db.rec }

// LockStats returns the write-lock manager's counters (RC traffic only;
// SI transactions never touch the lock manager).
func (db *DB) LockStats() lock.Stats { return db.lm.Stats() }

// SetObserver forwards a wait observer to the lock manager.
func (db *DB) SetObserver(o lock.Observer) { db.lm.SetObserver(o) }

// ParkGrants forwards grant parking to the lock manager (the schedule
// runner's one-op-at-a-time delivery of lock grants).
func (db *DB) ParkGrants(on bool) { db.lm.ParkGrants(on) }

// DeliverNextGrant wakes the oldest parked waiter, if any.
func (db *DB) DeliverNextGrant() (lock.TxID, bool) { return db.lm.DeliverNextGrant() }

// Load implements engine.DB: initial rows commit at a fresh timestamp.
func (db *DB) Load(tuples ...data.Tuple) {
	ts := db.oracle.Next()
	db.store.Load(ts, tuples...)
	db.oracle.Done(ts)
}

// ReadCommittedRow implements engine.DB.
func (db *DB) ReadCommittedRow(key data.Key) data.Row {
	v, ok := db.store.ReadAt(key, db.oracle.Safe())
	if !ok {
		return nil
	}
	return v.Row
}

// Levels implements engine.DB.
func (db *DB) Levels() []engine.Level {
	return append([]engine.Level{}, db.allowed...)
}

// Begin implements engine.DB: either multiversion transaction kind, per
// the requested level.
func (db *DB) Begin(level engine.Level) (engine.Tx, error) {
	ok := false
	for _, l := range db.allowed {
		if l == level {
			ok = true
		}
	}
	if !ok {
		return nil, fmt.Errorf("%w: this multiversion engine implements %s, got %s",
			engine.ErrUnsupported, levelList(db.allowed), level)
	}
	switch level {
	case engine.SnapshotIsolation:
		// Start at the installed watermark, not the allocation counter: a
		// commit timestamp is allocated before its versions finish
		// installing, and a snapshot taken in that window would watch the
		// commit appear piecemeal (and could even slip past
		// first-committer-wins validation).
		return db.beginSI(db.oracle.Safe()), nil
	case engine.ReadConsistency:
		id := int(db.seq.Add(1))
		db.obs.Begin(id, level.Code())
		return &RCTx{db: db, id: id, writes: map[data.Key]data.Row{}}, nil
	}
	return nil, fmt.Errorf("%w: %s is not a multiversion level", engine.ErrUnsupported, level)
}

// BeginAsOf starts a read-snapshot SI transaction at an explicit
// historical timestamp — the paper's "time travel — taking a historical
// perspective of the database — while never blocking or being blocked by
// writes". Updates are allowed but will abort at commit if they conflict
// with anything committed after ts.
func (db *DB) BeginAsOf(ts mv.TS) engine.Tx {
	return db.beginSI(ts)
}

// CurrentTS returns the newest fully installed committed timestamp (for
// AsOf bookkeeping).
func (db *DB) CurrentTS() mv.TS { return db.oracle.Safe() }

func (db *DB) beginSI(start mv.TS) *SITx {
	id := int(db.seq.Add(1))
	db.obs.Begin(id, engine.SnapshotIsolation.Code())
	return &SITx{db: db, id: id, start: start, writes: map[data.Key]data.Row{}}
}

func levelList(levels []engine.Level) string {
	out := ""
	for i, l := range levels {
		if i > 0 {
			out += " and "
		}
		out += l.String()
	}
	return out
}
