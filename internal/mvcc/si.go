package mvcc

// Snapshot Isolation transactions, exactly as defined in the paper's §4.2:
//
//   - Each transaction reads from a snapshot of the committed data as of
//     its Start-Timestamp; its own writes overlay the snapshot ("to be read
//     again if the transaction accesses the data a second time").
//   - Reads never block and are never blocked ("A transaction running in
//     Snapshot Isolation is never blocked attempting a read").
//   - At commit the transaction receives a Commit-Timestamp larger than any
//     existing Start- or Commit-Timestamp and commits only if no other
//     transaction with a Commit-Timestamp inside its execution interval
//     [Start-TS, Commit-TS] wrote data it also wrote — First-Committer-Wins,
//     which prevents Lost Updates (P4).
//
// The implementation follows Reed's multiversion scheme [REE] as the paper
// suggests: committed version chains in the shared mv.Store, private write
// sets, and a short striped commit critical section for validation +
// install (see the package comment for how it fences against concurrent
// Read Consistency installs).

import (
	"fmt"

	"isolevel/internal/data"
	"isolevel/internal/engine"
	"isolevel/internal/history"
	"isolevel/internal/mv"
	"isolevel/internal/predicate"
)

// SITx is a Snapshot Isolation transaction.
type SITx struct {
	db     *DB
	id     int
	start  mv.TS
	writes map[data.Key]data.Row // nil row = delete
	order  []data.Key            // write order, for deterministic install
	done   bool

	// reads records each snapshot read for the MV-history export (MVTxn).
	reads []readRecord
	// rangeReads records each key-range scan's result set for the
	// harness's range-read certification (RangeReads).
	rangeReads []RangeRead
	// commitTS is set on successful commit (for MV-history export).
	commitTS  mv.TS
	committed bool
}

type readRecord struct {
	key    data.Key
	val    int64
	found  bool
	cursor bool // read through a cursor Fetch (rc in the MV export)
}

// RangeRead is one recorded key-range scan: the scanned interval, the
// result set (own-write overlay included), and the single-valued slot of
// the snapshot it evaluated against — 2*snapshotTS+1, the same odd-slot
// convention the MV→SV mapping uses for item reads. The fuzz harness
// certifies each result set against the newest committed state below the
// slot across the whole interval, which is the absent-row generalization
// of the per-item snapshot-read check.
type RangeRead struct {
	Slot   int64
	Lo, Hi data.Key
	Keys   []data.Key
	Vals   []int64
}

var _ engine.Tx = (*SITx)(nil)

// ID implements engine.Tx.
func (t *SITx) ID() int { return t.id }

// Level implements engine.Tx.
func (t *SITx) Level() engine.Level { return engine.SnapshotIsolation }

// StartTS returns the transaction's snapshot timestamp.
func (t *SITx) StartTS() mv.TS { return t.start }

// Get implements engine.Tx: own writes first, then the snapshot. Never
// blocks.
func (t *SITx) Get(key data.Key) (data.Row, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	start := t.db.obs.Now()
	if row, ok := t.writes[key]; ok {
		if row == nil {
			t.db.obs.RecordOp(start)
			return nil, engine.ErrNotFound
		}
		t.db.rec.Record(history.Op{Tx: t.id, Kind: history.Read, Item: key, Version: -1}.WithValue(row.Val()))
		t.db.obs.RecordOp(start)
		return row.Clone(), nil
	}
	v, ok := t.db.store.ReadAt(key, t.start)
	if !ok {
		t.reads = append(t.reads, readRecord{key: key})
		t.db.rec.Record(history.Op{Tx: t.id, Kind: history.Read, Item: key, Version: -1})
		t.db.obs.RecordOp(start)
		return nil, engine.ErrNotFound
	}
	t.reads = append(t.reads, readRecord{key: key, val: v.Row.Val(), found: true})
	t.db.rec.Record(history.Op{Tx: t.id, Kind: history.Read, Item: key, Version: -1}.WithValue(v.Row.Val()))
	t.db.obs.RecordOp(start)
	return v.Row, nil
}

// Put implements engine.Tx: buffer the write privately. Under
// First-Updater-Wins the conflict check happens here instead of commit.
func (t *SITx) Put(key data.Key, row data.Row) error {
	return t.write(key, row.Clone())
}

// Delete implements engine.Tx.
func (t *SITx) Delete(key data.Key) error {
	return t.write(key, nil)
}

func (t *SITx) write(key data.Key, row data.Row) error {
	if t.done {
		return engine.ErrTxDone
	}
	start := t.db.obs.Now()
	if t.db.firstUpdaterWins {
		if ts := t.db.store.LatestCommitTS(key); ts > t.start {
			t.db.obs.RecordOp(start)
			return fmt.Errorf("%w: %s updated at ts %d after start %d (first-updater-wins)",
				engine.ErrWriteConflict, key, ts, t.start)
		}
	}
	if _, ok := t.writes[key]; !ok {
		t.order = append(t.order, key)
	}
	t.writes[key] = row
	var before data.Row
	if v, ok := t.db.store.ReadAt(key, t.start); ok {
		before = v.Row
	}
	t.db.rec.RecordWrite(t.id, key, before, row)
	t.db.obs.RecordOp(start)
	return nil
}

// Select implements engine.Tx: scan the snapshot, overlay own writes.
// "Each transaction never sees the updates of concurrent transactions" —
// so a re-evaluation always returns the same set (no A3 phantoms, Remark
// 10) even though P3 constraint phantoms remain possible.
func (t *SITx) Select(p predicate.P) ([]data.Tuple, error) {
	if t.done {
		return nil, engine.ErrTxDone
	}
	start := t.db.obs.Now()
	base := t.db.store.SelectAt(p, t.start)
	merged := make(map[data.Key]data.Row, len(base))
	for _, b := range base {
		merged[b.Key] = b.Row
	}
	for key, row := range t.writes {
		if row == nil {
			delete(merged, key)
			continue
		}
		if p.Match(data.Tuple{Key: key, Row: row}) {
			merged[key] = row
		} else {
			delete(merged, key)
		}
	}
	out := make([]data.Tuple, 0, len(merged))
	for key, row := range merged {
		out = append(out, data.Tuple{Key: key, Row: row.Clone()})
	}
	data.SortTuples(out)
	t.db.rec.RecordPredRead(t.id, p)
	if kr, ok := p.(predicate.KeyRange); ok && t.db.rec.Enabled() {
		rr := RangeRead{Slot: 2*int64(t.start) + 1, Lo: kr.Lo, Hi: kr.Hi}
		for _, tp := range out {
			rr.Keys = append(rr.Keys, tp.Key)
			rr.Vals = append(rr.Vals, tp.Row.Val())
		}
		t.rangeReads = append(t.rangeReads, rr)
	}
	t.db.obs.RecordOp(start)
	return out, nil
}

// RangeReads exports the recorded key-range scans for certification.
func (t *SITx) RangeReads() []RangeRead { return t.rangeReads }

// OpenCursor implements engine.Tx. Snapshot cursors are trivially stable
// (the snapshot never moves), so the cursor is a simple iterator over the
// Select result; UpdateCurrent is a buffered write.
func (t *SITx) OpenCursor(p predicate.P) (engine.Cursor, error) {
	tuples, err := t.Select(p)
	if err != nil {
		return nil, err
	}
	return &siCursor{tx: t, tuples: tuples, pos: -1}, nil
}

type siCursor struct {
	tx     *SITx
	tuples []data.Tuple
	pos    int
	closed bool
}

func (c *siCursor) Fetch() (data.Tuple, error) {
	if c.closed || c.tx.done {
		return data.Tuple{}, engine.ErrTxDone
	}
	c.pos++
	if c.pos >= len(c.tuples) {
		return data.Tuple{}, engine.ErrNotFound
	}
	cur := c.tuples[c.pos]
	c.tx.reads = append(c.tx.reads, readRecord{key: cur.Key, val: cur.Row.Val(), found: true, cursor: true})
	c.tx.db.rec.Record(history.Op{Tx: c.tx.id, Kind: history.ReadCursor, Item: cur.Key, Version: -1}.WithValue(cur.Row.Val()))
	return cur.Clone(), nil
}

func (c *siCursor) Current() (data.Tuple, error) {
	if c.pos < 0 || c.pos >= len(c.tuples) {
		return data.Tuple{}, engine.ErrNoCursor
	}
	return c.tuples[c.pos].Clone(), nil
}

func (c *siCursor) UpdateCurrent(row data.Row) error {
	cur, err := c.Current()
	if err != nil {
		return err
	}
	return c.tx.Put(cur.Key, row)
}

func (c *siCursor) Close() error { c.closed = true; return nil }

// Commit implements engine.Tx: the First-Committer-Wins critical section.
func (t *SITx) Commit() error {
	if t.done {
		return engine.ErrTxDone
	}
	start := t.db.obs.Now()
	if len(t.writes) == 0 {
		// Read-only transactions always commit, at their snapshot.
		t.done, t.committed = true, true
		t.commitTS = t.start
		t.db.rec.Record(history.Op{Tx: t.id, Kind: history.Commit, Version: -1})
		t.db.obs.Commit(t.id)
		t.db.obs.RecordCommitLatency(start)
		return nil
	}
	// Latch only the stripes the write set covers: disjoint-stripe
	// committers run this whole critical section in parallel, same-key
	// committers serialize here.
	release := t.db.store.LockWriteSet(t.order)
	// Validation: no key in the write set may have a committed version
	// newer than our snapshot ("wrote data that T1 also wrote"). RC
	// commits install under the same stripe latches, so a concurrent
	// first-writer-wins commit can never slip a version past this check.
	for _, key := range t.order {
		if ts := t.db.store.LatestCommitTS(key); ts > t.start {
			release()
			t.done = true
			t.db.rec.Record(history.Op{Tx: t.id, Kind: history.Abort, Version: -1})
			t.db.obs.Abort(t.id)
			t.db.obs.RecordCommitLatency(start)
			return fmt.Errorf("%w: %s committed at ts %d inside execution interval (start %d)",
				engine.ErrWriteConflict, key, ts, t.start)
		}
	}
	ts := t.db.oracle.Next() // larger than any existing start or commit TS
	t.db.store.Install(ts, t.id, t.writes)
	release()
	t.db.oracle.Done(ts) // advance the watermark: the commit is now readable
	t.done, t.committed = true, true
	t.commitTS = ts
	t.db.rec.Record(history.Op{Tx: t.id, Kind: history.Commit, Version: -1})
	t.db.obs.Commit(t.id)
	t.db.obs.RecordCommitLatency(start)
	return nil
}

// Abort implements engine.Tx: drop the private write set.
func (t *SITx) Abort() error {
	if t.done {
		return engine.ErrTxDone
	}
	t.done = true
	t.writes = nil
	t.db.rec.Record(history.Op{Tx: t.id, Kind: history.Abort, Version: -1})
	t.db.obs.Abort(t.id)
	return nil
}

// MVTxn exports the transaction's execution as a deps.MVTxn-shaped record
// (start/commit timestamps plus read and write ops) for the paper's MV→SV
// mapping. Valid after the transaction terminated.
//
// A snapshot at start timestamp s sees exactly the versions committed at
// timestamps <= s, so in the single-valued ordering the reads of a
// transaction with start s must come after the commit event of timestamp s
// and before the commit event of timestamp s+1: commits map to even slots
// (2*ts) and starts to the odd slot just above (2*ts+1).
func (t *SITx) MVTxn() (start, commit int64, committed bool, reads, writes history.History) {
	start = 2*int64(t.start) + 1
	commit = 2 * int64(t.commitTS)
	if t.committed && len(t.order) == 0 {
		// Read-only transactions commit at their snapshot: same slot as the
		// reads, and MapToSV's stable tie-break keeps reads before commit.
		commit = start
	}
	committed = t.committed
	for _, r := range t.reads {
		kind := history.Read
		if r.cursor {
			kind = history.ReadCursor
		}
		op := history.Op{Tx: t.id, Kind: kind, Item: r.key, Version: -1}
		if r.found {
			op = op.WithValue(r.val)
		}
		reads = append(reads, op)
	}
	for _, key := range t.order {
		op := history.Op{Tx: t.id, Kind: history.Write, Item: key, Version: -1}
		if row := t.writes[key]; row != nil {
			op = op.WithValue(row.Val())
		} else {
			op.Kind = history.Delete
		}
		writes = append(writes, op)
	}
	return start, commit, committed, reads, writes
}
