// The waits-for graph is the lock manager's standalone deadlock detector.
// It used to live inline in the manager's single mutex; with the lock
// tables striped there is no longer one latch under which the whole graph
// can be rebuilt per request, so the graph is maintained incrementally
// under its own lock instead:
//
//   - When a request is about to start waiting, AddWaiter atomically runs
//     the cycle check and, only if no cycle would form, records the
//     requester's out-edges. The check-and-insert is atomic so that two
//     requests admitted concurrently from different stripes can never both
//     miss the cycle they jointly close.
//   - Whenever the granted state a waiter conflicts with changes (a
//     release drained its stripe, a fresh grant slid past it in the queue,
//     a predicate lock appeared), the drain recomputes the waiter's
//     conflict set and calls Refresh.
//   - When a waiter is granted, cancelled, or its transaction releases
//     everything, Remove deletes its node.
//
// Edges always point from a waiting transaction to the transactions whose
// granted locks block it. Every cycle is closed by the newest request —
// grants only add edges toward a transaction that is not waiting at that
// moment, and releases only remove edges — so checking at AddWaiter time
// is sufficient, and the requester-is-victim rule stays deterministic: the
// transaction whose request would close the cycle is the one refused.
package lock

import "sync"

// WaitsFor is a waits-for graph over transactions, safe for concurrent use
// by all lock-table stripes. Each transaction has at most one pending lock
// request, so the graph stores one out-edge set per transaction.
type WaitsFor struct {
	mu  sync.Mutex
	out map[TxID][]TxID
}

// NewWaitsFor returns an empty waits-for graph.
func NewWaitsFor() *WaitsFor {
	return &WaitsFor{out: map[TxID][]TxID{}}
}

// AddWaiter atomically checks whether tx waiting on the transactions in
// `on` would close a cycle. If it would, nothing is recorded and AddWaiter
// returns false: the requester is the deadlock victim. Otherwise tx's
// out-edges are set to `on` and AddWaiter returns true.
func (g *WaitsFor) AddWaiter(tx TxID, on []TxID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cycleLocked(tx, on) {
		return false
	}
	g.out[tx] = append([]TxID(nil), on...)
	return true
}

// Refresh replaces the out-edges of an already-admitted waiter with its
// recomputed conflict set. No cycle check runs: the victim rule applies
// only to new requests, and a refresh cannot close a cycle (see the
// package comment above).
func (g *WaitsFor) Refresh(tx TxID, on []TxID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(on) == 0 {
		delete(g.out, tx)
		return
	}
	g.out[tx] = append([]TxID(nil), on...)
}

// Remove deletes tx's node: its request was granted or cancelled, or the
// transaction terminated.
func (g *WaitsFor) Remove(tx TxID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.out, tx)
}

// Empty reports whether no transaction has recorded out-edges — i.e. no
// admitted waiter is blocked on anyone. The range-aware drain uses it to
// skip its all-stripe edge refresh on releases that granted nothing.
func (g *WaitsFor) Empty() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.out) == 0
}

// Waiting reports whether tx currently has recorded out-edges (tests and
// debugging).
func (g *WaitsFor) Waiting(tx TxID) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.out[tx]
	return ok
}

// CycleFrom returns the waits-for cycle that refusing tx's request
// avoided: the path tx -> on... -> tx, as a transaction list starting and
// ending with tx. It exists for the flight recorder's deadlock dump —
// AddWaiter only reports *that* a cycle would close; this recovers *which*
// transactions close it. Called right after a failed AddWaiter, before
// any latch is dropped, so the graph still holds the refusing state.
// Returns nil if no cycle is found (the caller raced a refresh; the dump
// then just names the victim).
func (g *WaitsFor) CycleFrom(tx TxID, on []TxID) []TxID {
	g.mu.Lock()
	defer g.mu.Unlock()
	// DFS from each direct blocker back to tx, keeping the path. Blockers
	// are sorted (conflict sets are), so the recovered cycle is
	// deterministic.
	visited := map[TxID]bool{}
	var path []TxID
	var dfs func(n TxID) bool
	dfs = func(n TxID) bool {
		path = append(path, n)
		if n == tx {
			return true
		}
		if !visited[n] {
			visited[n] = true
			for _, next := range g.out[n] {
				if dfs(next) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		return false
	}
	for _, first := range on {
		if dfs(first) {
			return append([]TxID{tx}, path...)
		}
	}
	return nil
}

// cycleLocked reports whether adding tx -> on would create a path back to
// tx. Called with mu held.
func (g *WaitsFor) cycleLocked(tx TxID, on []TxID) bool {
	stack := append([]TxID(nil), on...)
	visited := map[TxID]bool{}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == tx {
			return true
		}
		if visited[n] {
			continue
		}
		visited[n] = true
		stack = append(stack, g.out[n]...)
	}
	return false
}
