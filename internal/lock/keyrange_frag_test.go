package lock

// Tests for the fragment-storage internals layered on the key-range
// protocol: lock escalation (coarse stripe entries, install-time and
// inheritance-time), the dead-anchor fragment GC, and the above-range
// stale-anchor shadowing rule the coalesced install has to honor.

import (
	"testing"
	"time"

	"isolevel/internal/data"
	"isolevel/internal/predicate"
)

// boundedSpec builds a bounded [lo, hi) spec with a static anchor list
// and ceiling (the store-free test shape).
func boundedSpec(p predicate.P, lo, hi, ceiling data.Key, anchors ...data.Key) RangeSpec {
	return RangeSpec{Pred: p, Anchors: anchors, Ceiling: ceiling, Lo: lo, Hi: hi, Bounded: true}
}

// A stale anchor sitting between a bounded scan's Hi and its ceiling —
// left behind by an aborted insert under an older scan — owns every gap
// position below it, so the newer scan must install a fragment there too:
// anchoring only at the ceiling would let the stale anchor shadow the
// scan's uppermost-gap coverage.
func TestStaleAnchorAboveRangeDoesNotShadowCeiling(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		m := NewManagerShards(shards)
		// T5 holds a whole-space scan anchored at {a}; T0 inserts r and
		// aborts, leaving the anchor r carrying T5's inherited fragment.
		mustRange(t, m, 5, rangeSpec(ge(50), "a"))
		if err := m.AcquireGap(0, "r", Images{After: row(1)}); err != nil {
			t.Fatal(err)
		}
		if err := m.AcquireItem(0, "r", X, Images{After: row(1)}); err != nil {
			t.Fatal(err)
		}
		m.ReleaseAll(0)
		// T4 scans [a, p) with ceiling z: the store knows nothing of r
		// (the row is gone), but the gap below the stale anchor r is part
		// of T4's protected space — insert positions in [p, r) are not,
		// yet positions in [a, p) resolve to the covering anchor r.
		mustRange(t, m, 4, boundedSpec(ge(10), "a", "p", "z", "a"))
		got := make(chan error, 1)
		go func() { got <- m.AcquireGap(6, "g", Images{After: row(20)}) }()
		select {
		case <-got:
			t.Fatalf("shards=%d: stale above-range anchor shadowed the ceiling — matching insert admitted", shards)
		case <-time.After(50 * time.Millisecond):
		}
		m.ReleaseAll(4)
		if err := <-got; err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		m.ReleaseAll(5)
		m.ReleaseAll(6)
	}
}

// Install-time escalation: a scan whose per-stripe anchor run reaches the
// threshold installs one coarse stripe entry instead, which blocks even
// non-matching writes (and inserts anywhere) until release.
func TestEscalationCoarsensBlocking(t *testing.T) {
	m := NewManagerShards(1)
	m.SetEscalation(3)
	mustRange(t, m, 1, rangeSpec(ge(100), "a", "b", "c", "d"))
	if st := m.Stats(); st.Escalations != 1 {
		t.Fatalf("Escalations = %d, want 1", st.Escalations)
	}
	// Non-matching write on a covered key: the exact protocol admits it
	// (see TestRangeIgnoresNonMatchingWrite); the coarse entry blocks it.
	wGot := make(chan error, 1)
	go func() { wGot <- m.AcquireItem(2, "c", X, Images{Before: row(1), After: row(2)}) }()
	// Non-matching insert far from any anchor: blocked by the global
	// coarse gap entry.
	gGot := make(chan error, 1)
	go func() { gGot <- m.AcquireGap(3, "zz", Images{After: row(1)}) }()
	select {
	case <-wGot:
		t.Fatal("non-matching write admitted under an escalated stripe")
	case <-gGot:
		t.Fatal("insert admitted under an escalated handle's gap entry")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-wGot; err != nil {
		t.Fatal(err)
	}
	if err := <-gGot; err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.GateAcquires != 0 {
		t.Fatalf("GateAcquires = %d, want 0", st.GateAcquires)
	}
	// After release nothing coarse lingers: a fresh write sails through.
	if err := m.AcquireItem(4, "b", X, Images{Before: row(1), After: row(2)}); err != nil {
		t.Fatal(err)
	}
}

// Inheritance-time escalation: a handle below the threshold at install
// crosses it as inserts inherit its fragments, collapsing the stripe and
// deduplicating against re-inheritance (the coarse entry covers the whole
// stripe, so later inserts must not re-copy fragments into it).
func TestEscalationOnInheritance(t *testing.T) {
	m := NewManagerShards(1)
	m.SetEscalation(4)
	mustRange(t, m, 1, rangeSpec(ge(100), "b", "d"))
	if st := m.Stats(); st.Escalations != 0 {
		t.Fatalf("escalated at install with run 2 < threshold 4: %d", st.Escalations)
	}
	// Two non-matching inserts inherit the covering fragment: counts go
	// 2 -> 3 -> 4, crossing the threshold on the second.
	for i, key := range []data.Key{"a", "c"} {
		if err := m.AcquireGap(TxID(10+i), key, Images{After: row(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.Escalations != 1 {
		t.Fatalf("Escalations = %d, want 1", st.Escalations)
	}
	// Further inserts find the coarse entry and block (T1's handle now
	// blocks unrefined) rather than re-inheriting per-key fragments.
	got := make(chan error, 1)
	go func() { got <- m.AcquireGap(12, "cc", Images{After: row(1)}) }()
	select {
	case <-got:
		t.Fatal("insert admitted under the escalated handle")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Escalations != 1 {
		t.Fatalf("Escalations moved after the collapse: %d", st.Escalations)
	}
}

// Fragment GC: anchors with no row, no item lock and no queued request
// are swept during drains, their fragments migrating to the successor
// anchor (deduplicated per handle) without any change in blocking.
func TestFragmentGCSweepsDeadAnchors(t *testing.T) {
	m := NewManagerShards(4)
	live := map[data.Key]bool{"b": true, "y": true}
	m.SetRowPresent(func(k data.Key) bool { return live[k] })
	mustRange(t, m, 1, rangeSpec(ge(100), "b", "y"))
	// An insert storm: each round inherits fragments onto a fresh key,
	// then aborts (the row never appears), leaving a dead anchor. Past
	// gcInheritThreshold inheritances, the drain inside ReleaseAll sweeps
	// them.
	for i := 0; i < 2*gcInheritThreshold; i++ {
		key := data.Key([]byte{'c', byte('a' + i%26), byte('a' + i/26)})
		tx := TxID(100 + i)
		if err := m.AcquireGap(tx, key, Images{After: row(1)}); err != nil {
			t.Fatal(err)
		}
		if err := m.AcquireItem(tx, key, X, Images{After: row(1)}); err != nil {
			t.Fatal(err)
		}
		m.ReleaseAll(tx)
	}
	st := m.Stats()
	if st.FragGCs == 0 {
		t.Fatalf("no GC sweep after %d inheritances", 2*gcInheritThreshold)
	}
	if st.FragsReclaimed == 0 {
		t.Fatal("sweep reclaimed nothing despite duplicate coverage at the successor")
	}
	// Blocking is unchanged: a matching insert below the live anchor y
	// still waits on the scan's (migrated) coverage...
	got := make(chan error, 1)
	go func() { got <- m.AcquireGap(2, "x", Images{After: row(200)}) }()
	select {
	case <-got:
		t.Fatal("matching insert admitted after GC — coverage lost")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	// ...and release leaves no residue behind (the migrated fragments
	// were re-registered under their handle).
	m.ReleaseAll(2)
	if m.HoldingRange(1) {
		t.Fatal("range hold survived ReleaseAll")
	}
	if err := m.AcquireGap(3, "x", Images{After: row(200)}); err != nil {
		t.Fatal(err)
	}
}

// The supremum path of the GC: with every anchor dead and no successor,
// fragments migrate to the supremum and still cover the space above.
func TestFragmentGCMigratesToSupremum(t *testing.T) {
	m := NewManagerShards(2)
	m.SetRowPresent(func(data.Key) bool { return false })
	// Whole-space scan anchored only at a stale anchor (static spec): the
	// anchor is dead from the start.
	mustRange(t, m, 1, rangeSpec(ge(100), "m"))
	for i := 0; i < gcInheritThreshold+2; i++ {
		key := data.Key([]byte{'d', byte('a' + i%26), byte('a' + i/26)})
		tx := TxID(200 + i)
		if err := m.AcquireGap(tx, key, Images{After: row(1)}); err != nil {
			t.Fatal(err)
		}
		if err := m.AcquireItem(tx, key, X, Images{After: row(1)}); err != nil {
			t.Fatal(err)
		}
		m.ReleaseAll(tx)
	}
	if st := m.Stats(); st.FragGCs == 0 {
		t.Fatal("no GC sweep")
	}
	// All anchors are gone; the whole-space scan's coverage now rests on
	// the supremum — a matching insert anywhere must still block.
	got := make(chan error, 1)
	go func() { got <- m.AcquireGap(2, "zz", Images{After: row(150)}) }()
	select {
	case <-got:
		t.Fatal("matching insert admitted after supremum migration")
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}
